// Replicaselection: once DAS's estimator exists, it can do more than
// order queues — it can pick which replica serves each read. This
// example simulates a cluster with 3-way replication where a quarter of
// the servers run at 40% speed, and compares:
//
//   - single copy, primary routing (the paper's base model);
//   - 3 replicas, random routing (classic load spreading);
//   - 3 replicas, estimator-fastest routing (the DAS extension).
//
// go run ./examples/replicaselection
package main

import (
	"fmt"
	"log"
	"time"

	daskv "github.com/daskv/daskv"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		servers  = 16
		requests = 25000
		rho      = 0.45
	)
	fanout := dist.UniformInt{Lo: 1, Hi: 7}
	demand := dist.Exponential{M: time.Millisecond}
	slowSet := func(id daskv.ServerID) daskv.SpeedProfile {
		if id < 4 {
			return daskv.ConstantSpeed{V: 0.4}
		}
		return daskv.ConstantSpeed{V: 1}
	}
	meanSpeed := (12.0 + 4*0.4) / 16
	rate, err := daskv.RateForLoad(rho, servers, meanSpeed, fanout.Mean(), demand.Mean())
	if err != nil {
		return err
	}

	cases := []struct {
		name     string
		replicas int
		policy   sim.ReplicaPolicy
	}{
		{"primary, 1 copy", 1, daskv.PrimaryReplica},
		{"random, 3 copies", 3, daskv.RandomReplica},
		{"fastest, 3 copies", 3, daskv.FastestReplica},
	}
	fmt.Printf("cluster of %d servers, 4 at 0.4x speed; DAS scheduling everywhere\n\n", servers)
	fmt.Printf("%-18s %12s %12s %14s\n", "routing", "mean RCT", "p99", "slow-srv util")
	for _, c := range cases {
		res, err := daskv.RunSim(daskv.SimConfig{
			Servers:       servers,
			Policy:        daskv.DASFactory(daskv.DefaultDASOptions()),
			Adaptive:      true,
			SpeedFor:      slowSet,
			Replicas:      c.replicas,
			ReplicaSelect: c.policy,
			Workload: daskv.WorkloadConfig{
				Keys: 100_000, KeySkew: 0.9,
				Fanout: fanout, Demand: demand, RatePerSec: rate,
			},
			Requests: requests,
			Warmup:   time.Second,
			Seed:     3,
		})
		if err != nil {
			return err
		}
		var slowUtil float64
		for _, sl := range res.Servers {
			if sl.Server < 4 {
				slowUtil += sl.Utilization / 4
			}
		}
		fmt.Printf("%-18s %12v %12v %13.0f%%\n",
			c.name,
			res.RCT.Mean().Round(time.Microsecond),
			res.RCT.P99().Round(time.Microsecond),
			slowUtil*100)
	}
	fmt.Println("\nestimator-fastest routing drains load away from the slow servers;")
	fmt.Println("queue scheduling then handles what routing alone cannot.")
	return nil
}
