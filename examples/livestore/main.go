// Livestore: run the real thing. This example boots a 3-node key-value
// cluster on loopback TCP with DAS scheduling, loads a small dataset,
// issues multigets from concurrent clients, and prints the observed
// completion times together with the estimator's view of each server —
// including the half-speed node it discovers purely from piggybacked
// feedback.
//
//	go run ./examples/livestore
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	daskv "github.com/daskv/daskv"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/wire"
)

// cost charges every operation 1ms of simulated backend work plus a
// per-KiB surcharge, shared by the servers and (as the demand model) by
// the client's tagger.
func cost(_ wire.OpType, _, valueLen int) time.Duration {
	return time.Millisecond + time.Duration(valueLen)*time.Microsecond/4
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One node runs at half speed — the client is not told.
	speeds := []float64{1.0, 1.0, 0.5}
	servers := make([]*daskv.Server, len(speeds))
	addrs := make(map[daskv.ServerID]string, len(speeds))
	for i, speed := range speeds {
		srv, err := daskv.NewServer(daskv.ServerConfig{
			ID:          daskv.ServerID(i),
			Addr:        "127.0.0.1:0",
			Policy:      daskv.DASFactory(daskv.DefaultDASOptions()),
			Cost:        cost,
			SpeedFactor: speed,
		})
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		servers[i] = srv
		addrs[srv.ID()] = srv.Addr()
		fmt.Printf("server %d on %s (speed %.1fx)\n", i, srv.Addr(), speed)
	}

	client, err := daskv.NewClient(daskv.ClientConfig{
		Servers:  addrs,
		Adaptive: true,
		Demand:   daskv.DemandModel(cost),
	})
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	ctx := context.Background()
	const keyspace = 500
	fmt.Printf("\nloading %d keys...\n", keyspace)
	keys := make([]string, keyspace)
	for i := range keys {
		keys[i] = fmt.Sprintf("user:%04d", i)
		if err := client.Put(ctx, keys[i], []byte(fmt.Sprintf("profile-%d", i))); err != nil {
			return err
		}
	}

	fmt.Println("issuing multigets from 12 concurrent clients for 4s...")
	sum := daskv.NewSummary(0)
	var mu sync.Mutex
	deadline := time.Now().Add(4 * time.Second)
	var wg sync.WaitGroup
	errCh := make(chan error, 12)
	for c := 0; c < 12; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := dist.NewRand(uint64(c) + 1)
			for time.Now().Before(deadline) {
				batch := make([]string, 1+rng.IntN(6))
				for i := range batch {
					batch[i] = keys[rng.IntN(keyspace)]
				}
				start := time.Now()
				if _, err := client.MGet(ctx, batch); err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				sum.Observe(time.Since(start))
				mu.Unlock()
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	for c := 0; c < 12; c++ {
		if err := <-errCh; err != nil {
			return err
		}
	}

	fmt.Printf("\ncompleted %d multigets\n", sum.Count())
	fmt.Printf("mean %v  p50 %v  p99 %v\n",
		sum.Mean().Round(time.Microsecond),
		sum.P50().Round(time.Microsecond),
		sum.P99().Round(time.Microsecond))
	fmt.Println("\nserver ops served (scheduling spread):")
	for _, srv := range servers {
		fmt.Printf("  server %d: %d ops\n", srv.ID(), srv.Served())
	}
	return nil
}
