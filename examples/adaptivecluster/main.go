// Adaptivecluster: the scenario DAS was built for. A quarter of the
// cluster degrades to 40% speed three seconds into the run (a co-located
// batch job, a failing disk, a noisy neighbor). Static schedulers keep
// tagging requests with healthy-cluster estimates; DAS's piggybacked
// feedback re-learns every server's speed and re-targets the true
// bottlenecks.
//
// The example prints windowed mean completion time around the
// degradation instant for FCFS, Rein-SBF, adaptive DAS, and DAS with
// feedback disabled.
//
//	go run ./examples/adaptivecluster
package main

import (
	"fmt"
	"log"
	"time"

	daskv "github.com/daskv/daskv"
	"github.com/daskv/daskv/internal/dist"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		servers  = 16
		requests = 40000
		slowAt   = 3 * time.Second
	)
	fanout := dist.UniformInt{Lo: 1, Hi: 9}
	demand := dist.Exponential{M: time.Millisecond}

	// Size the load so the degraded cluster stays stable: after the
	// step, 4 of 16 servers run at 0.4x.
	meanSpeedAfter := (12.0 + 4*0.4) / 16
	rate, err := daskv.RateForLoad(0.30, servers, 1.0, fanout.Mean(), demand.Mean())
	if err != nil {
		return err
	}
	speedFor := func(id daskv.ServerID) daskv.SpeedProfile {
		if int(id) < 4 {
			return daskv.StepSpeed{Before: 1.0, After: 0.4, Switch: slowAt}
		}
		return daskv.ConstantSpeed{V: 1}
	}

	policies := []struct {
		name     string
		factory  daskv.PolicyFactory
		adaptive bool
	}{
		{"FCFS", daskv.FCFS, false},
		{"Rein-SBF", daskv.ReinSBF, false},
		{"DAS", daskv.DASFactory(daskv.DefaultDASOptions()), true},
		{"DAS-static", daskv.DASFactory(daskv.DefaultDASOptions()), false},
	}
	series := make(map[string][]string)
	var starts []time.Duration
	overall := make(map[string]time.Duration)
	for _, p := range policies {
		res, err := daskv.RunSim(daskv.SimConfig{
			Servers:      servers,
			Policy:       p.factory,
			Adaptive:     p.adaptive,
			SpeedFor:     speedFor,
			Workload:     daskv.WorkloadConfig{Keys: 100_000, KeySkew: 0.9, Fanout: fanout, Demand: demand, RatePerSec: rate},
			Requests:     requests,
			Warmup:       500 * time.Millisecond,
			Seed:         11,
			SeriesWindow: time.Second,
		})
		if err != nil {
			return err
		}
		overall[p.name] = res.RCT.Mean()
		pts := res.Series.Points()
		if starts == nil {
			for _, pt := range pts {
				starts = append(starts, pt.Start)
			}
		}
		row := make([]string, 0, len(pts))
		for _, pt := range pts {
			row = append(row, fmt.Sprintf("%.2f", float64(pt.Mean)/float64(time.Millisecond)))
		}
		series[p.name] = row
	}

	fmt.Printf("cluster of %d servers; servers 0-3 drop to 0.4x speed at t=%v\n", servers, slowAt)
	fmt.Printf("(effective post-degradation utilization %.0f%%)\n\n", 0.30/meanSpeedAfter*100)
	fmt.Println("windowed mean RCT (ms) per 1s window:")
	fmt.Printf("%-12s", "t(s)")
	for _, st := range starts {
		fmt.Printf(" %8.0f", st.Seconds())
	}
	fmt.Println()
	for _, p := range policies {
		fmt.Printf("%-12s", p.name)
		for i := range starts {
			if i < len(series[p.name]) {
				fmt.Printf(" %8s", series[p.name][i])
			}
		}
		fmt.Println()
	}
	fmt.Println("\noverall mean RCT:")
	for _, p := range policies {
		fmt.Printf("  %-12s %v\n", p.name, overall[p.name].Round(time.Microsecond))
	}
	fmt.Println("\nafter the step, only adaptive DAS re-learns the slow servers'")
	fmt.Println("speeds from piggybacked feedback and keeps completion times flat.")
	return nil
}
