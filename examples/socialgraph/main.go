// Socialgraph: the workload that motivates multiget scheduling.
// Rendering one profile page fans a request out over a user's friend
// list — a few friends for most users, hundreds for hubs — so request
// widths follow a heavy-tailed distribution and the page's latency is
// its slowest fetched friend.
//
// This example sweeps load and prints how FCFS, Rein-SBF and DAS handle
// the page-load completion time.
//
//	go run ./examples/socialgraph
package main

import (
	"fmt"
	"log"
	"time"

	daskv "github.com/daskv/daskv"
	"github.com/daskv/daskv/internal/dist"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		servers  = 24
		requests = 20000
	)
	// Friend-list widths: Zipf up to 64 friends fetched per page.
	fanout, err := dist.NewZipfInt(64, 1.05)
	if err != nil {
		return err
	}
	// Per-friend record fetch: mostly small, some heavy profiles.
	demand := dist.Bimodal{
		Small:  600 * time.Microsecond,
		Large:  4600 * time.Microsecond,
		PSmall: 0.9,
	}

	policies := []struct {
		name     string
		factory  daskv.PolicyFactory
		adaptive bool
	}{
		{"FCFS", daskv.FCFS, false},
		{"Rein-SBF", daskv.ReinSBF, false},
		{"DAS", daskv.DASFactory(daskv.DefaultDASOptions()), true},
	}

	fmt.Println("page-load completion time (ms) vs load; friends/page ~ zipf(64), records bimodal")
	fmt.Printf("%-6s", "load")
	for _, p := range policies {
		fmt.Printf(" %18s", p.name+" mean/p99")
	}
	fmt.Println()

	for _, load := range []float64{0.5, 0.7, 0.9} {
		rate, err := daskv.RateForLoad(load, servers, 1.0, fanout.Mean(), demand.Mean())
		if err != nil {
			return err
		}
		fmt.Printf("%-6.1f", load)
		for _, p := range policies {
			res, err := daskv.RunSim(daskv.SimConfig{
				Servers:  servers,
				Policy:   p.factory,
				Adaptive: p.adaptive,
				Workload: daskv.WorkloadConfig{
					Keys:       200_000,
					KeySkew:    0.8,
					Fanout:     fanout,
					Demand:     demand,
					RatePerSec: rate,
				},
				Requests: requests,
				Warmup:   time.Second,
				Seed:     7,
			})
			if err != nil {
				return err
			}
			fmt.Printf(" %18s", fmt.Sprintf("%.2f/%.1f",
				float64(res.RCT.Mean())/float64(time.Millisecond),
				float64(res.RCT.P99())/float64(time.Millisecond)))
		}
		fmt.Println()
	}
	fmt.Println("\nwide pages are only as fast as their slowest friend fetch;")
	fmt.Println("request-aware scheduling (Rein, DAS) finishes narrow pages fast")
	fmt.Println("without letting hub pages straggle.")
	return nil
}
