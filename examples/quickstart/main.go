// Quickstart: simulate a 16-server key-value cluster at 80% load and
// compare the default FCFS scheduling against the paper's DAS.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	daskv "github.com/daskv/daskv"
	"github.com/daskv/daskv/internal/dist"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		servers  = 16
		load     = 0.8
		requests = 20000
	)
	fanout := dist.UniformInt{Lo: 1, Hi: 9}         // 1-9 keys per request
	demand := dist.Exponential{M: time.Millisecond} // ~1ms per op

	rate, err := daskv.RateForLoad(load, servers, 1.0, fanout.Mean(), demand.Mean())
	if err != nil {
		return err
	}
	baseCfg := daskv.SimConfig{
		Servers: servers,
		Workload: daskv.WorkloadConfig{
			Keys:       50_000,
			KeySkew:    0.9,
			Fanout:     fanout,
			Demand:     demand,
			RatePerSec: rate,
		},
		Requests: requests,
		Warmup:   time.Second,
		Seed:     42,
	}

	fmt.Printf("simulating %d requests on %d servers at %.0f%% load...\n\n",
		requests, servers, load*100)
	fmt.Printf("%-8s %12s %12s %12s\n", "policy", "mean RCT", "p50", "p99")

	var fcfsMean time.Duration
	for _, pol := range []struct {
		name     string
		factory  daskv.PolicyFactory
		adaptive bool
	}{
		{"FCFS", daskv.FCFS, false},
		{"DAS", daskv.DASFactory(daskv.DefaultDASOptions()), true},
	} {
		cfg := baseCfg
		cfg.Policy = pol.factory
		cfg.Adaptive = pol.adaptive
		res, err := daskv.RunSim(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %12v %12v %12v\n", pol.name,
			res.RCT.Mean().Round(time.Microsecond),
			res.RCT.P50().Round(time.Microsecond),
			res.RCT.P99().Round(time.Microsecond))
		if pol.name == "FCFS" {
			fcfsMean = res.RCT.Mean()
		} else {
			fmt.Printf("\nDAS cut the mean request completion time by %.1f%%.\n",
				(1-float64(res.RCT.Mean())/float64(fcfsMean))*100)
		}
	}
	return nil
}
