module github.com/daskv/daskv

go 1.24
