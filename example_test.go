package daskv_test

import (
	"fmt"
	"time"

	daskv "github.com/daskv/daskv"
	"github.com/daskv/daskv/internal/dist"
)

// ExampleNewDAS shows the DAS queue ordering directly: SRPT-first across
// requests, slack demotion within a request, FIFO ties.
func ExampleNewDAS() {
	q, err := daskv.NewDAS(daskv.DefaultDASOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	// Request 1 has 40ms of bottleneck work left; request 2 only 5ms.
	q.Push(&daskv.Op{Request: 1, Demand: time.Millisecond,
		Tags: daskv.Tags{RemainingTime: 40 * time.Millisecond}}, 0)
	q.Push(&daskv.Op{Request: 2, Demand: time.Millisecond,
		Tags: daskv.Tags{RemainingTime: 5 * time.Millisecond}}, 0)
	for q.Len() > 0 {
		fmt.Println("serve request", q.Pop(0).Request)
	}
	// Output:
	// serve request 2
	// serve request 1
}

// ExampleTagRequest shows client-side tagging with an adaptive view:
// the estimator has learned that server 1 runs at half speed, flipping
// the request's bottleneck away from the statically larger op.
func ExampleTagRequest() {
	est, err := daskv.NewEstimator(daskv.DefaultEstimatorConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	est.Observe(daskv.Feedback{Server: 1, Speed: 0.5})

	ops := []*daskv.Op{
		{Server: 0, Demand: 6 * time.Millisecond},
		{Server: 1, Demand: 4 * time.Millisecond},
	}
	daskv.TagRequest(ops, est, 0)
	fmt.Println("static bottleneck:", ops[0].Tags.DemandBottleneck)
	fmt.Println("adaptive remaining:", ops[0].Tags.RemainingTime)
	// Output:
	// static bottleneck: 6ms
	// adaptive remaining: 8ms
}

// ExampleRunSim compares FCFS and DAS on a small simulated cluster.
func ExampleRunSim() {
	fanout := dist.UniformInt{Lo: 1, Hi: 7}
	demand := dist.Exponential{M: time.Millisecond}
	rate, err := daskv.RateForLoad(0.8, 8, 1.0, fanout.Mean(), demand.Mean())
	if err != nil {
		fmt.Println(err)
		return
	}
	mean := func(factory daskv.PolicyFactory, adaptive bool) time.Duration {
		res, err := daskv.RunSim(daskv.SimConfig{
			Servers:  8,
			Policy:   factory,
			Adaptive: adaptive,
			Workload: daskv.WorkloadConfig{
				Keys: 10_000, KeySkew: 0.9,
				Fanout: fanout, Demand: demand, RatePerSec: rate,
			},
			Requests: 5000,
			Seed:     1,
		})
		if err != nil {
			return 0
		}
		return res.RCT.Mean()
	}
	fcfs := mean(daskv.FCFS, false)
	das := mean(daskv.DASFactory(daskv.DefaultDASOptions()), true)
	fmt.Println("DAS beats FCFS on mean RCT:", das < fcfs)
	// Output:
	// DAS beats FCFS on mean RCT: true
}

// ExampleExactOptimal checks a policy against the exact optimum of a
// tiny offline instance of the paper's NP-hard scheduling problem.
func ExampleExactOptimal() {
	inst := daskv.OfflineInstance{
		Servers: 2,
		Requests: []daskv.OfflineRequest{
			{Ops: []daskv.OfflineOp{{Server: 0, Demand: 3 * time.Millisecond}}},
			{Ops: []daskv.OfflineOp{{Server: 0, Demand: 1 * time.Millisecond}, {Server: 1, Demand: 2 * time.Millisecond}}},
		},
	}
	opt, err := daskv.ExactOptimal(inst)
	if err != nil {
		fmt.Println(err)
		return
	}
	rein, err := daskv.EvaluateOffline(inst, daskv.ReinSBF)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("optimal mean RCT:", opt)
	fmt.Println("Rein-SBF matches optimum:", rein == opt)
	// Output:
	// optimal mean RCT: 3ms
	// Rein-SBF matches optimum: true
}

// ExampleMM1MeanSojourn shows the queueing-theory helpers used to
// validate the simulator.
func ExampleMM1MeanSojourn() {
	// A server handling 1ms requests at 50% utilization.
	t, err := daskv.MM1MeanSojourn(500, time.Millisecond)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("mean time in system:", t)
	// Output:
	// mean time in system: 2ms
}

// ExampleNewRing shows consistent-hash key routing.
func ExampleNewRing() {
	ring, err := daskv.NewRing([]daskv.ServerID{0, 1, 2, 3}, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	owner := ring.Lookup("user:42")
	replicas := ring.LookupN("user:42", 3)
	fmt.Println("stable owner:", owner == replicas[0])
	fmt.Println("replica count:", len(replicas))
	// Output:
	// stable owner: true
	// replica count: 3
}
