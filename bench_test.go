// Benchmarks mirroring the paper's evaluation: one testing.B target per
// reconstructed table/figure (E1-E20, see DESIGN.md), plus per-policy
// scheduling micro-benchmarks. Each iteration executes a reduced-scale
// version of the experiment; `cmd/dasbench` runs the full-scale tables.
package daskv_test

import (
	"io"
	"testing"
	"time"

	daskv "github.com/daskv/daskv"
	"github.com/daskv/daskv/internal/bench"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/workload"
)

// benchParams is the reduced scale used per benchmark iteration.
func benchParams() bench.Params {
	return bench.Params{
		Servers:  8,
		Requests: 4000,
		Seeds:    1,
		Seed:     1,
		Live:     800 * time.Millisecond,
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(p, io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkE1DefaultSummary regenerates the default-scenario table.
func BenchmarkE1DefaultSummary(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE2LoadSweep regenerates the mean-RCT-vs-load figure.
func BenchmarkE2LoadSweep(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE3TailSweep regenerates the p99-vs-load figure.
func BenchmarkE3TailSweep(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE4CDF regenerates the RCT CDF figure.
func BenchmarkE4CDF(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5FanoutSweep regenerates the request-width figure.
func BenchmarkE5FanoutSweep(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE6DemandDists regenerates the traffic-pattern figure.
func BenchmarkE6DemandDists(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7SkewSweep regenerates the hot-partition figure.
func BenchmarkE7SkewSweep(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8Heterogeneous regenerates the slow-server figure.
func BenchmarkE8Heterogeneous(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE9TimeVarying regenerates the adaptivity-over-time figure.
func BenchmarkE9TimeVarying(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkE10Ablation regenerates the design-choice ablation.
func BenchmarkE10Ablation(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkE11PolicyOverhead measures per-operation scheduling cost
// (push+pop) at a steady queue depth, per policy — the deployability
// table, here with allocation counts via -benchmem.
func BenchmarkE11PolicyOverhead(b *testing.B) {
	policies := []struct {
		name    string
		factory daskv.PolicyFactory
	}{
		{"FCFS", daskv.FCFS},
		{"SJF", daskv.SJF},
		{"ReinSBF", daskv.ReinSBF},
		{"ReinML", daskv.ReinML(2 * time.Millisecond)},
		{"DAS", daskv.DASFactory(daskv.DefaultDASOptions())},
	}
	for _, pc := range policies {
		for _, depth := range []int{16, 1024, 65536} {
			b.Run(pc.name+"/depth="+itoa(depth), func(b *testing.B) {
				q := pc.factory(1)
				for i := 0; i < depth; i++ {
					q.Push(newBenchOp(i), time.Duration(i))
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op := q.Pop(time.Duration(i))
					q.Push(op, time.Duration(i))
				}
			})
		}
	}
}

// BenchmarkE12LiveStore runs the live-cluster validation (shortened).
func BenchmarkE12LiveStore(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkE13Optimality regenerates the optimality-gap comparison.
func BenchmarkE13Optimality(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkSimulatorThroughput measures raw simulator speed in
// requests simulated per second — the substrate cost.
func BenchmarkSimulatorThroughput(b *testing.B) {
	fanout := dist.UniformInt{Lo: 1, Hi: 7}
	demand := dist.Exponential{M: time.Millisecond}
	rate, err := workload.RateForLoad(0.7, 8, 1.0, fanout.Mean(), demand.Mean())
	if err != nil {
		b.Fatal(err)
	}
	const requests = 5000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := daskv.RunSim(daskv.SimConfig{
			Servers:  8,
			Policy:   daskv.DASFactory(daskv.DefaultDASOptions()),
			Adaptive: true,
			Workload: daskv.WorkloadConfig{
				Keys: 50000, KeySkew: 0.9, Fanout: fanout, Demand: demand, RatePerSec: rate,
			},
			Requests: requests,
			Seed:     uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "requests/s")
}

// BenchmarkTagRequest measures the client-side tagging cost per
// multiget, the other hot path DAS adds.
func BenchmarkTagRequest(b *testing.B) {
	est, err := daskv.NewEstimator(daskv.DefaultEstimatorConfig())
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		est.Observe(daskv.Feedback{
			Server: daskv.ServerID(s), QueueLen: 10,
			Backlog: 5 * time.Millisecond, Speed: 1, At: 0,
		})
	}
	ops := make([]*daskv.Op, 8)
	for i := range ops {
		ops[i] = &daskv.Op{
			Server: daskv.ServerID(i * 2),
			Demand: time.Duration(i+1) * time.Millisecond,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		daskv.TagRequest(ops, est, time.Duration(i))
	}
}

func newBenchOp(i int) *sched.Op {
	d := time.Duration(1+i%7) * time.Millisecond
	return &sched.Op{
		Request: sched.RequestID(i),
		Demand:  d,
		Tags: sched.Tags{
			DemandBottleneck: d * 2,
			ScaledDemand:     d,
			RemainingTime:    d * 2,
			ExpectedFinish:   time.Duration(i) * time.Microsecond,
			RequestFinish:    time.Duration(i)*time.Microsecond + d,
			Fanout:           4,
		},
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkE14ScaleSweep regenerates the cluster-size sweep.
func BenchmarkE14ScaleSweep(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkE15Presets regenerates the workload-preset comparison.
func BenchmarkE15Presets(b *testing.B) { runExperiment(b, "E15") }

// BenchmarkE16TheoryValidation regenerates the substrate validation.
func BenchmarkE16TheoryValidation(b *testing.B) { runExperiment(b, "E16") }

// BenchmarkE17Hedging regenerates the hedging/routing comparison.
func BenchmarkE17Hedging(b *testing.B) { runExperiment(b, "E17") }

// BenchmarkE18Preemption regenerates the preemption ablation.
func BenchmarkE18Preemption(b *testing.B) { runExperiment(b, "E18") }

// BenchmarkE19Chaos runs the crash/restart resilience experiment
// (shortened live run).
func BenchmarkE19Chaos(b *testing.B) { runExperiment(b, "E19") }

// BenchmarkE20Replication runs the replica-selection sweep and the live
// crash-masking comparison (shortened live run).
func BenchmarkE20Replication(b *testing.B) { runExperiment(b, "E20") }
