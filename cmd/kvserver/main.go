// Command kvserver runs one live key-value node with a pluggable
// scheduling policy in front of its worker pool.
//
// Example — a two-node cluster on one machine:
//
//	kvserver -id 0 -addr 127.0.0.1:7100 -policy das &
//	kvserver -id 1 -addr 127.0.0.1:7101 -policy das -speed 0.5 &
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/daskv/daskv/internal/cli"
	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/fault"
	"github.com/daskv/daskv/internal/kv"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sizeclass"
	"github.com/daskv/daskv/internal/wal"
	"github.com/daskv/daskv/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id          = flag.Int("id", 0, "server identity on the cluster ring")
		addr        = flag.String("addr", "127.0.0.1:7100", "listen address")
		policyName  = flag.String("policy", "das", "scheduling policy: "+fmt.Sprint(cli.PolicyNames()))
		workers     = flag.Int("workers", 1, "worker pool size")
		baseCost    = flag.Duration("cost", 0, "synthetic per-op service cost (0 = none); value bytes add cost/KiB")
		speed       = flag.Float64("speed", 1.0, "speed factor (0.5 = half-speed server)")
		dataPath    = flag.String("data", "", "snapshot file: loaded at startup, written on shutdown")
		walDir      = flag.String("wal", "", "write-ahead-log directory: mutations are durable before acknowledgement, crash recovery replays at startup (mutually exclusive with -data)")
		walSync     = flag.String("wal-sync", "always", "WAL fsync policy: always | batch[:<window>] | none")
		walSegSize  = flag.Int64("wal-segment-size", 16<<20, "WAL segment size in bytes before rotation")
		sweep       = flag.Duration("sweep", 30*time.Second, "how often expired keys are reclaimed (0 = default, negative = never)")
		replication = flag.Int("replication", 1, "replication factor the cluster runs with (informational; placement is client-side)")
		metrics     = flag.String("metrics", "", "optional HTTP listen address for /stats, /metrics, /healthz")
		pprofOn     = flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on the -metrics listener")
		faultSpec   = flag.String("fault", "", "inject a connection fault, MODE[:ARG][:PROB] — e.g. delay:5ms:0.5, corrupt, stall, drop:0.1")
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for fault-injection randomness")
		poolSplit   = flag.Float64("pool-split", 0, "fraction of workers dedicated to small ops (0 = single pool; requires -workers >= 2)")
		sizeQuant   = flag.Float64("size-quantile", 0, "payload-size quantile the learned small/large threshold tracks (0 = default 0.9)")
		sizeOverr   = flag.Int64("size-threshold", 0, "fixed small/large threshold in bytes, overriding the learned quantile (0 = learn online)")
		sizeDecay   = flag.Float64("size-decay", 0, "per-observation decay of the size sketch, closer to 1 = longer memory (0 = default 0.999)")
	)
	flag.Parse()

	policy, err := cli.ParsePolicy(*policyName, core.LiveOptions())
	if err != nil {
		return err
	}
	var wrapConn func(net.Conn) net.Conn
	if *faultSpec != "" {
		spec, serr := fault.ParseSpec(*faultSpec)
		if serr != nil {
			return serr
		}
		injector := fault.NewInjector(*faultSeed)
		spec.Apply(injector)
		wrapConn = injector.Conn
	}
	var cost kv.CostModel
	if *baseCost > 0 {
		base := *baseCost
		cost = func(_ wire.OpType, _, valueLen int) time.Duration {
			return base + base*time.Duration(valueLen)/1024
		}
	}
	syncPolicy, err := wal.ParseSyncPolicy(*walSync)
	if err != nil {
		return err
	}
	srv, err := kv.NewServer(kv.ServerConfig{
		ID:             sched.ServerID(*id),
		Addr:           *addr,
		Policy:         policy.Factory,
		Workers:        *workers,
		Cost:           cost,
		SpeedFactor:    *speed,
		DataPath:       *dataPath,
		WALDir:         *walDir,
		WALSync:        syncPolicy,
		WALSegmentSize: *walSegSize,
		SweepInterval:  *sweep,
		WrapConn:       wrapConn,
		Replication:    *replication,
		PoolSplit:      *poolSplit,
		SizeClass: sizeclass.Config{
			Quantile: *sizeQuant,
			Override: *sizeOverr,
			Decay:    *sizeDecay,
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("kvserver %d listening on %s (policy=%s workers=%d speed=%.2f)\n",
		*id, srv.Addr(), policy.Name, *workers, *speed)
	if *poolSplit > 0 {
		fmt.Printf("kvserver %d size-class pools enabled (split=%.2f threshold=%s)\n",
			*id, *poolSplit, thresholdDesc(*sizeOverr, *sizeQuant))
	}
	if rep := srv.WALRecovery(); rep != nil {
		fmt.Printf("kvserver %d wal recovery: %s\n", *id, rep)
		fmt.Printf("kvserver %d wal on %s (sync=%s segment=%d)\n", *id, *walDir, syncPolicy, *walSegSize)
	}
	if *faultSpec != "" {
		fmt.Printf("kvserver %d injecting fault %q on every connection\n", *id, *faultSpec)
	}

	var metricsSrv *http.Server
	if *metrics != "" {
		handler := kv.NewMetricsHandlerWith(srv, kv.MetricsHandlerConfig{EnablePprof: *pprofOn})
		metricsSrv = &http.Server{Addr: *metrics, Handler: handler}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "kvserver: metrics listener:", err)
			}
		}()
		fmt.Printf("kvserver %d metrics on http://%s/metrics\n", *id, *metrics)
		if *pprofOn {
			fmt.Printf("kvserver %d pprof on http://%s/debug/pprof/\n", *id, *metrics)
		}
	} else if *pprofOn {
		return fmt.Errorf("-pprof requires -metrics to name a listen address")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("kvserver %d shutting down after %d ops\n", *id, srv.Served())
	if metricsSrv != nil {
		_ = metricsSrv.Close()
	}
	return srv.Close()
}

// thresholdDesc renders the effective small/large boundary for the
// startup banner: a fixed byte override, or the quantile being learned.
func thresholdDesc(override int64, quantile float64) string {
	if override > 0 {
		return fmt.Sprintf("%dB fixed", override)
	}
	if quantile == 0 {
		quantile = 0.9
	}
	return fmt.Sprintf("p%.0f learned", quantile*100)
}
