// Command kvserver runs one live key-value node with a pluggable
// scheduling policy in front of its worker pool.
//
// Example — a two-node cluster on one machine:
//
//	kvserver -id 0 -addr 127.0.0.1:7100 -policy das &
//	kvserver -id 1 -addr 127.0.0.1:7101 -policy das -speed 0.5 &
//
// With -gossip-port the nodes form a gossip cluster: membership is
// discovered (no static server list), a joiner streams its owned keys
// from the existing members before serving a complete dataset, and a
// SIGTERM drains keys to the survivors before departing:
//
//	kvserver -id 0 -addr 127.0.0.1:7100 -gossip-port 7946 &
//	kvserver -id 1 -addr 127.0.0.1:7101 -gossip-port 7947 -join 127.0.0.1:7946 &
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/daskv/daskv/internal/cli"
	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/fault"
	"github.com/daskv/daskv/internal/kv"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sizeclass"
	"github.com/daskv/daskv/internal/wal"
	"github.com/daskv/daskv/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id          = flag.Int("id", 0, "server identity on the cluster ring")
		addr        = flag.String("addr", "127.0.0.1:7100", "listen address")
		policyName  = flag.String("policy", "das", "scheduling policy: "+fmt.Sprint(cli.PolicyNames()))
		workers     = flag.Int("workers", 1, "worker pool size")
		baseCost    = flag.Duration("cost", 0, "synthetic per-op service cost (0 = none); value bytes add cost/KiB")
		speed       = flag.Float64("speed", 1.0, "speed factor (0.5 = half-speed server)")
		dataPath    = flag.String("data", "", "snapshot file: loaded at startup, written on shutdown")
		walDir      = flag.String("wal", "", "write-ahead-log directory: mutations are durable before acknowledgement, crash recovery replays at startup (mutually exclusive with -data)")
		walSync     = flag.String("wal-sync", "always", "WAL fsync policy: always | batch[:<window>] | coalesce[:<window>] | none (coalesce folds a window's mutations to one record per distinct key; writes ack at window close)")
		walSegSize  = flag.Int64("wal-segment-size", 16<<20, "WAL segment size in bytes before rotation")
		sweep       = flag.Duration("sweep", 30*time.Second, "how often expired keys are reclaimed (0 = default, negative = never)")
		replication = flag.Int("replication", 1, "replication factor the cluster runs with (informational; placement is client-side)")
		metrics     = flag.String("metrics", "", "optional HTTP listen address for /stats, /metrics, /healthz")
		pprofOn     = flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on the -metrics listener")
		faultSpec   = flag.String("fault", "", "inject a connection fault, MODE[:ARG][:PROB] — e.g. delay:5ms:0.5, corrupt, stall, drop:0.1")
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for fault-injection randomness")
		poolSplit   = flag.Float64("pool-split", 0, "fraction of workers dedicated to small ops (0 = single pool; requires -workers >= 2)")
		sizeQuant   = flag.Float64("size-quantile", 0, "payload-size quantile the learned small/large threshold tracks (0 = default 0.9)")
		sizeOverr   = flag.Int64("size-threshold", 0, "fixed small/large threshold in bytes, overriding the learned quantile (0 = learn online)")
		sizeDecay   = flag.Float64("size-decay", 0, "per-observation decay of the size sketch, closer to 1 = longer memory (0 = default 0.999)")
		gossipPort  = flag.Int("gossip-port", 0, "UDP port for gossip membership on the -addr host (0 = no cluster fabric, static ring)")
		join        = flag.String("join", "", "comma-separated gossip addresses of existing cluster members to join through (requires -gossip-port)")
		leaveWait   = flag.Duration("leave-timeout", 30*time.Second, "how long a SIGTERM shutdown may spend draining keys to the remaining members")
	)
	flag.Parse()

	policy, err := cli.ParsePolicy(*policyName, core.LiveOptions())
	if err != nil {
		return err
	}
	var wrapConn func(net.Conn) net.Conn
	if *faultSpec != "" {
		spec, serr := fault.ParseSpec(*faultSpec)
		if serr != nil {
			return serr
		}
		injector := fault.NewInjector(*faultSeed)
		spec.Apply(injector)
		wrapConn = injector.Conn
	}
	var cost kv.CostModel
	if *baseCost > 0 {
		base := *baseCost
		cost = func(_ wire.OpType, _, valueLen int) time.Duration {
			return base + base*time.Duration(valueLen)/1024
		}
	}
	syncPolicy, err := wal.ParseSyncPolicy(*walSync)
	if err != nil {
		return err
	}
	var cluster *kv.ClusterConfig
	if *gossipPort > 0 {
		host, _, herr := net.SplitHostPort(*addr)
		if herr != nil {
			return fmt.Errorf("-gossip-port needs a host:port -addr to bind on: %w", herr)
		}
		cluster = &kv.ClusterConfig{
			GossipBind: net.JoinHostPort(host, strconv.Itoa(*gossipPort)),
			Seeds:      splitSeeds(*join),
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}
	} else if *join != "" {
		return fmt.Errorf("-join requires -gossip-port to enable the cluster fabric")
	}
	srv, err := kv.NewServer(kv.ServerConfig{
		ID:             sched.ServerID(*id),
		Addr:           *addr,
		Policy:         policy.Factory,
		Workers:        *workers,
		Cost:           cost,
		SpeedFactor:    *speed,
		DataPath:       *dataPath,
		WALDir:         *walDir,
		WALSync:        syncPolicy,
		WALSegmentSize: *walSegSize,
		SweepInterval:  *sweep,
		WrapConn:       wrapConn,
		Replication:    *replication,
		PoolSplit:      *poolSplit,
		SizeClass: sizeclass.Config{
			Quantile: *sizeQuant,
			Override: *sizeOverr,
			Decay:    *sizeDecay,
		},
		Cluster: cluster,
	})
	if err != nil {
		return err
	}
	fmt.Printf("kvserver %d listening on %s (policy=%s workers=%d speed=%.2f)\n",
		*id, srv.Addr(), policy.Name, *workers, *speed)
	if *poolSplit > 0 {
		fmt.Printf("kvserver %d size-class pools enabled (split=%.2f threshold=%s)\n",
			*id, *poolSplit, thresholdDesc(*sizeOverr, *sizeQuant))
	}
	if cluster != nil {
		if *join == "" {
			fmt.Printf("kvserver %d gossip on %s (bootstrap: no seeds)\n", *id, srv.GossipAddr())
		} else {
			fmt.Printf("kvserver %d gossip on %s joining via %s\n", *id, srv.GossipAddr(), *join)
		}
	}
	if rep := srv.WALRecovery(); rep != nil {
		fmt.Printf("kvserver %d wal recovery: %s\n", *id, rep)
		fmt.Printf("kvserver %d wal on %s (sync=%s segment=%d)\n", *id, *walDir, syncPolicy, *walSegSize)
	}
	if *faultSpec != "" {
		fmt.Printf("kvserver %d injecting fault %q on every connection\n", *id, *faultSpec)
	}

	var metricsSrv *http.Server
	if *metrics != "" {
		handler := kv.NewMetricsHandlerWith(srv, kv.MetricsHandlerConfig{EnablePprof: *pprofOn})
		metricsSrv = &http.Server{Addr: *metrics, Handler: handler}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "kvserver: metrics listener:", err)
			}
		}()
		fmt.Printf("kvserver %d metrics on http://%s/metrics\n", *id, *metrics)
		if *pprofOn {
			fmt.Printf("kvserver %d pprof on http://%s/debug/pprof/\n", *id, *metrics)
		}
	} else if *pprofOn {
		return fmt.Errorf("-pprof requires -metrics to name a listen address")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("kvserver %d shutting down after %d ops\n", *id, srv.Served())
	if metricsSrv != nil {
		_ = metricsSrv.Close()
	}
	if cluster != nil {
		// Graceful exit: drain owned keys to the surviving members and
		// gossip the departure, so peers rebalance without a suspicion
		// round. Errors are reported but never block shutdown.
		if lerr := srv.Leave(*leaveWait); lerr != nil {
			fmt.Fprintln(os.Stderr, "kvserver: leave:", lerr)
		}
	}
	return srv.Close()
}

// splitSeeds parses the -join flag: comma-separated, blanks dropped.
func splitSeeds(s string) []string {
	var seeds []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			seeds = append(seeds, part)
		}
	}
	return seeds
}

// thresholdDesc renders the effective small/large boundary for the
// startup banner: a fixed byte override, or the quantile being learned.
func thresholdDesc(override int64, quantile float64) string {
	if override > 0 {
		return fmt.Sprintf("%dB fixed", override)
	}
	if quantile == 0 {
		quantile = 0.9
	}
	return fmt.Sprintf("p%.0f learned", quantile*100)
}
