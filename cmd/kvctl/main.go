// Command kvctl is the client tool for the live store: single-key
// operations, multigets, and a closed-loop latency benchmark.
//
// Cluster addresses are given as id=host:port pairs:
//
//	kvctl -servers 0=127.0.0.1:7100,1=127.0.0.1:7101 put greeting hello
//	kvctl -servers 0=127.0.0.1:7100,1=127.0.0.1:7101 get greeting
//	kvctl -servers ...                              mget k1 k2 k3
//	kvctl -servers ...                              trace k1 k2 k3
//	kvctl -servers ...                              bench -clients 16 -seconds 10
//
// Against a gossip-clustered deployment (kvserver -gossip-port), the
// server list can be discovered from any live member, reads and writes
// take a -consistency level, and `members` / `ring` inspect the
// membership table and keyspace ownership:
//
//	kvctl -discover 127.0.0.1:7100 members
//	kvctl -discover 127.0.0.1:7100 ring
//	kvctl -discover 127.0.0.1:7100 -replicas 2 -consistency quorum get greeting
//
// `wal DIR` inspects a server's write-ahead-log directory offline:
// it lists segments and the newest snapshot, verifies every record
// checksum, and exits nonzero on corruption beyond a torn tail.
//
// `trace` runs a multiget and then renders its recorded per-operation
// timeline — which replica served each key, queue wait vs service time,
// scheduling class, and which op was the straggler that set the request
// completion time (see docs/OBSERVABILITY.md).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/daskv/daskv/internal/cli"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/kv"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/topology"
	"github.com/daskv/daskv/internal/wal"
	"github.com/daskv/daskv/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kvctl:", err)
		if errors.Is(err, cli.ErrDegraded) {
			// Partial results were already rendered; exit 2 so scripts
			// can tell "degraded" from outright failure.
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run() error {
	var (
		serversFlag = flag.String("servers", "0=127.0.0.1:7100", "comma-separated id=addr pairs")
		clusterFile = flag.String("cluster", "", "JSON cluster file (overrides -servers)")
		adaptive    = flag.Bool("adaptive", true, "tag requests with DAS feedback estimates")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-operation deadline, forwarded to servers so they shed doomed work")
		retries     = flag.Int("retries", 1, "extra attempts for idempotent reads after a transport failure")
		replicas    = flag.Int("replicas", 1, "how many servers hold each key (writes fan out, reads fail over)")
		readFrom    = flag.String("read", "", "replica read routing: "+fmt.Sprint(cli.ReadPolicyNames()))
		consistency = flag.String("consistency", "", "consistency level for get/put/del: one | quorum | all (empty = legacy: reads one replica, writes wait for all)")
		discover    = flag.String("discover", "", "data-plane address of any cluster member; the server list is discovered from its gossip membership table (overrides -servers and -cluster)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: kvctl -servers ... <get|put|del|incr|mget|trace|cas|stats|members|ring|replicas|repair|fill|watch|bench|wal> [args]")
	}
	if args[0] == "wal" {
		// Offline inspection of a server's log directory: no cluster
		// connection wanted (or needed).
		if len(args) != 2 {
			return fmt.Errorf("usage: kvctl wal DIR")
		}
		return walCmd(args[1])
	}

	var servers map[sched.ServerID]string
	var err error
	switch {
	case *discover != "":
		servers, err = discoverServers(*discover, *timeout)
	case *clusterFile != "":
		servers, err = cli.LoadCluster(*clusterFile)
	default:
		servers, err = cli.ParseServers(*serversFlag)
	}
	if err != nil {
		return err
	}
	level, err := wire.ParseConsistency(*consistency)
	if err != nil {
		return err
	}

	// members and ring talk the membership protocol directly — no kv
	// client wanted (its replica bookkeeping is irrelevant here).
	switch args[0] {
	case "members":
		return membersCmd(servers, *timeout)
	case "ring":
		return ringCmd(servers, *replicas, *timeout)
	}

	readPolicy, err := cli.ParseReadPolicy(*readFrom)
	if err != nil {
		return err
	}
	client, err := kv.NewClient(kv.ClientConfig{
		Servers:            servers,
		Adaptive:           *adaptive,
		RequestTimeout:     *timeout,
		ReadRetries:        *retries,
		Replicas:           *replicas,
		ReadFrom:           readPolicy,
		DefaultConsistency: level,
	})
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch args[0] {
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: kvctl get KEY")
		}
		v, err := client.Get(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Println(string(v))
		return nil
	case "put":
		if len(args) != 3 {
			return fmt.Errorf("usage: kvctl put KEY VALUE")
		}
		return client.Put(ctx, args[1], []byte(args[2]))
	case "del":
		if len(args) != 2 {
			return fmt.Errorf("usage: kvctl del KEY")
		}
		return client.Delete(ctx, args[1])
	case "mget":
		if len(args) < 2 {
			return fmt.Errorf("usage: kvctl mget KEY...")
		}
		res, err := client.MGet(ctx, args[1:])
		return cli.RenderMGet(os.Stdout, args[1:], res, err)
	case "trace":
		if len(args) < 2 {
			return fmt.Errorf("usage: kvctl trace KEY...")
		}
		res, err := client.MGet(ctx, args[1:])
		renderErr := cli.RenderMGet(os.Stdout, args[1:], res, err)
		if renderErr != nil && !errors.Is(renderErr, cli.ErrDegraded) {
			return renderErr
		}
		traces := client.Traces(1)
		if len(traces) == 0 {
			return fmt.Errorf("no trace recorded (tracing disabled?)")
		}
		fmt.Println()
		cli.RenderTrace(os.Stdout, traces[0])
		return renderErr
	case "stats":
		stats := make([]wire.ServerStats, 0, len(client.Servers()))
		pooled := false
		for _, id := range client.Servers() {
			st, err := client.Stats(ctx, id)
			if err != nil {
				return err
			}
			pooled = pooled || st.Pools != nil
			stats = append(stats, st)
		}
		fmt.Printf("%-7s %-10s %8s %8s %8s %8s %12s %8s %8s %10s\n",
			"server", "policy", "served", "shed", "errors", "queue", "backlog", "speed", "keys", "uptime")
		for _, st := range stats {
			fmt.Printf("%-7d %-10s %8d %8d %8d %8d %12v %8.2f %8d %10v\n",
				st.Server, st.Policy, st.Served, st.Shed, st.Errors, st.QueueLen,
				time.Duration(st.BacklogNanos).Round(time.Microsecond),
				st.Speed, st.Keys,
				time.Duration(st.UptimeNanos).Round(time.Second))
		}
		// Connection-scaling view: live/lifetime connections, the
		// goroutines serving them, and in-flight depth (total and the
		// busiest single connection) — the server-side readout for
		// diagnosing harness-driven saturation.
		fmt.Printf("\n%-7s %7s %9s %11s %11s %10s %14s\n",
			"server", "conns", "accepted", "conn-gors", "goroutines", "inflight", "conn-max-infl")
		for _, st := range stats {
			fmt.Printf("%-7d %7d %9d %11d %11d %10d %14d\n",
				st.Server, st.OpenConns, st.ConnsTotal, st.ConnGoroutines,
				st.Goroutines, st.InFlight, st.ConnInFlightMax)
		}
		if pooled {
			// Per-pool breakdown for servers running split worker pools:
			// queue depth and busy workers per size class, the learned (or
			// fixed) threshold, and the routing/steal counters.
			fmt.Printf("\n%-7s %11s %11s %9s %11s %9s %12s %12s %8s\n",
				"server", "threshold", "sm-queue", "sm-busy", "lg-queue", "lg-busy", "sm-routed", "lg-routed", "stolen")
			for _, st := range stats {
				ps := st.Pools
				if ps == nil {
					continue
				}
				fmt.Printf("%-7d %11d %11d %3d/%-5d %11d %3d/%-5d %12d %12d %8d\n",
					st.Server, ps.ThresholdBytes,
					ps.SmallQueueLen, ps.SmallBusy, ps.SmallWorkers,
					ps.LargeQueueLen, ps.LargeBusy, ps.LargeWorkers,
					ps.SmallRouted, ps.LargeRouted, ps.Stolen)
			}
		}
		return nil
	case "cas":
		if len(args) != 4 {
			return fmt.Errorf("usage: kvctl cas KEY OLD NEW (OLD of '-' means expect-absent)")
		}
		var old []byte
		if args[2] != "-" {
			old = []byte(args[2])
		}
		if err := client.CompareAndSwap(ctx, args[1], old, []byte(args[3])); err != nil {
			return err
		}
		fmt.Println("swapped")
		return nil
	case "incr":
		if len(args) != 2 && len(args) != 3 {
			return fmt.Errorf("usage: kvctl incr KEY [DELTA] (default delta 1)")
		}
		delta := int64(1)
		if len(args) == 3 {
			d, perr := strconv.ParseInt(args[2], 10, 64)
			if perr != nil {
				return fmt.Errorf("incr delta %q: %w", args[2], perr)
			}
			delta = d
		}
		total, err := client.Incr(ctx, args[1], delta)
		if err != nil {
			return err
		}
		fmt.Println(total)
		return nil
	case "replicas":
		if len(args) != 2 {
			return fmt.Errorf("usage: kvctl replicas KEY")
		}
		return replicasCmd(client, args[1])
	case "repair":
		if len(args) != 2 {
			return fmt.Errorf("usage: kvctl repair KEY")
		}
		fixed, err := client.Repair(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Printf("repaired %d replica(s) of %q\n", fixed, args[1])
		return nil
	case "fill":
		return fillCmd(client, args[1:])
	case "watch":
		return watchCmd(client, args[1:])
	case "bench":
		return benchCmd(client, args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// discoverServers builds the client's server map from a live member's
// gossip table: routable (alive or suspect) members that advertise a
// data-plane address. A static node answers with an empty table; that
// is an error here — there is nothing to discover.
func discoverServers(addr string, timeout time.Duration) (map[sched.ServerID]string, error) {
	doc, err := kv.FetchMembers(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("discover via %s: %w", addr, err)
	}
	servers := make(map[sched.ServerID]string)
	for _, m := range doc.Members {
		if (m.State == "alive" || m.State == "suspect") && m.DataAddr != "" {
			servers[sched.ServerID(m.ID)] = m.DataAddr
		}
	}
	if len(servers) == 0 {
		return nil, fmt.Errorf("discover via %s: no routable members (is the node clustered? lifecycle=%s)", addr, doc.Lifecycle)
	}
	return servers, nil
}

// fetchAnyMembers queries the configured servers in id order and
// returns the first membership view that answers.
func fetchAnyMembers(servers map[sched.ServerID]string, timeout time.Duration) (wire.MembersDoc, error) {
	ids := make([]sched.ServerID, 0, len(servers))
	for id := range servers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var firstErr error
	for _, id := range ids {
		doc, err := kv.FetchMembers(servers[id], timeout)
		if err == nil {
			return doc, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return wire.MembersDoc{}, fmt.Errorf("no server answered a members request: %w", firstErr)
}

// membersCmd renders one node's gossip membership table.
func membersCmd(servers map[sched.ServerID]string, timeout time.Duration) error {
	doc, err := fetchAnyMembers(servers, timeout)
	if err != nil {
		return err
	}
	fmt.Printf("view from server %d (lifecycle: %s)\n", doc.Self, doc.Lifecycle)
	if len(doc.Members) == 0 {
		fmt.Println("no cluster fabric: node runs a static ring")
		return nil
	}
	sort.Slice(doc.Members, func(i, j int) bool { return doc.Members[i].ID < doc.Members[j].ID })
	fmt.Printf("%-7s %-9s %-6s %12s %-22s %-22s\n",
		"server", "state", "ready", "incarnation", "gossip", "data")
	for _, m := range doc.Members {
		fmt.Printf("%-7d %-9s %-6v %12d %-22s %-22s\n",
			m.ID, m.State, m.Ready, m.Incarnation, m.GossipAddr, m.DataAddr)
	}
	return nil
}

// ringCmd renders the dynamic ring's ownership as one node sees it:
// each routable member's keyspace share. The ring is rebuilt locally
// from the membership table — placement hashing is deterministic across
// processes, so this is exactly the ring clients route by.
func ringCmd(servers map[sched.ServerID]string, replicas int, timeout time.Duration) error {
	doc, err := fetchAnyMembers(servers, timeout)
	if err != nil {
		return err
	}
	var ids []sched.ServerID
	for _, m := range doc.Members {
		if m.State == "alive" || m.State == "suspect" {
			ids = append(ids, sched.ServerID(m.ID))
		}
	}
	if len(ids) == 0 {
		// Static node: the configured server list is the ring.
		for id := range servers {
			ids = append(ids, id)
		}
	}
	ring, err := topology.NewRing(ids, 0)
	if err != nil {
		return err
	}
	own := ring.Ownership()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Printf("ring of %d server(s), replication factor %d, ideal share %.1f%%\n",
		len(ids), replicas, 100.0/float64(len(ids)))
	fmt.Printf("%-7s %8s\n", "server", "share")
	for _, id := range ids {
		fmt.Printf("%-7d %7.1f%%\n", id, own[id]*100)
	}
	return nil
}

// walCmd lists a write-ahead-log directory's segments and snapshot,
// verifying every record checksum, and exits nonzero when corruption
// beyond an expected torn tail is found.
func walCmd(dir string) error {
	info, err := wal.Inspect(dir)
	if err != nil {
		return err
	}
	if info.HasSnapshot {
		fmt.Printf("snapshot %s  covers seq <= %d  (%d bytes)\n",
			info.SnapshotName, info.SnapshotSeq, info.SnapshotBytes)
	} else {
		fmt.Println("snapshot: none")
	}
	fmt.Printf("%-24s %12s %12s %8s %10s %9s %8s %8s %6s\n",
		"segment", "first-seq", "last-seq", "records", "bytes", "coalesced", "folded", "skipped", "torn")
	var records, skipped, coalesced int
	var folded uint64
	for _, seg := range info.Segments {
		fmt.Printf("%-24s %12d %12d %8d %10d %9d %8d %8d %6v\n",
			seg.Name, seg.FirstSeq, seg.LastSeq, seg.Records, seg.Bytes,
			seg.Coalesced, seg.FoldedOps, seg.Skipped, seg.Torn)
		records += seg.Records
		skipped += seg.Skipped
		coalesced += seg.Coalesced
		folded += seg.FoldedOps
	}
	fmt.Printf("%d segment(s), %d record(s) verified (%d coalesced, standing for %d op(s)), %d span(s) unreadable\n",
		len(info.Segments), records, coalesced, folded, skipped)
	if info.Corrupt() {
		return fmt.Errorf("wal directory %s has corrupt records beyond a torn tail", dir)
	}
	return nil
}

// replicasCmd prints a key's replica placement and the selector's
// current ranking of each holder.
func replicasCmd(client *kv.Client, key string) error {
	holders := client.KeyReplicas(key)
	fmt.Printf("key %q -> %d replica(s), primary first: %v\n", key, len(holders), holders)
	fmt.Printf("%-7s %6s %12s %12s %8s %12s %6s\n",
		"rank", "server", "finish", "backlog", "speed", "outstanding", "down")
	for i, sc := range client.ReplicaScores(key) {
		fmt.Printf("%-7d %6d %12v %12v %8.2f %12d %6v\n",
			i+1, sc.Server,
			sc.Finish.Round(time.Microsecond),
			sc.Backlog.Round(time.Microsecond),
			sc.Speed, sc.Outstanding, sc.Down)
	}
	return nil
}

// fillCmd bulk-loads synthetic keys.
func fillCmd(client *kv.Client, args []string) error {
	fs := flag.NewFlagSet("fill", flag.ContinueOnError)
	var (
		keys      = fs.Int("keys", 10000, "number of keys to load")
		valueSize = fs.Int("value", 64, "value size in bytes")
		prefix    = fs.String("prefix", "bench-", "key prefix")
		batch     = fs.Int("batch", 128, "keys per MSet batch")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	value := bytes.Repeat([]byte("x"), *valueSize)
	ctx := context.Background()
	start := time.Now()
	for base := 0; base < *keys; base += *batch {
		n := *batch
		if base+n > *keys {
			n = *keys - base
		}
		pairs := make(map[string][]byte, n)
		for i := 0; i < n; i++ {
			pairs[fmt.Sprintf("%s%06d", *prefix, base+i)] = value
		}
		if err := client.MSet(ctx, pairs); err != nil {
			return fmt.Errorf("fill at key %d: %w", base, err)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("loaded %d keys (%d B values) in %v (%.0f keys/s)\n",
		*keys, *valueSize, elapsed.Round(time.Millisecond),
		float64(*keys)/elapsed.Seconds())
	return nil
}

// watchCmd polls cluster stats until interrupted.
func watchCmd(client *kv.Client, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	var (
		interval = fs.Duration("interval", 2*time.Second, "poll interval")
		count    = fs.Int("count", 0, "iterations (0 = forever)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		fmt.Printf("-- %s --\n", time.Now().Format(time.TimeOnly))
		for _, id := range client.Servers() {
			ctx, cancel := context.WithTimeout(context.Background(), *interval)
			st, err := client.Stats(ctx, id)
			cancel()
			if err != nil {
				fmt.Printf("server %d: %v\n", id, err)
				continue
			}
			fmt.Printf("server %d: served=%d queue=%d backlog=%v speed=%.2f keys=%d\n",
				st.Server, st.Served, st.QueueLen,
				time.Duration(st.BacklogNanos).Round(time.Microsecond), st.Speed, st.Keys)
		}
	}
	return nil
}

// benchCmd drives closed-loop multigets and prints latency stats.
func benchCmd(client *kv.Client, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		clients = fs.Int("clients", 16, "concurrent closed-loop clients")
		seconds = fs.Int("seconds", 10, "run duration")
		keys    = fs.Int("keys", 5000, "keyspace size (preloaded)")
		fanout  = fs.Int("fanout", 5, "max keys per multiget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	fmt.Printf("preloading %d keys...\n", *keys)
	names := make([]string, *keys)
	for i := range names {
		names[i] = fmt.Sprintf("bench-%06d", i)
		if err := client.Put(ctx, names[i], []byte("v")); err != nil {
			return err
		}
	}
	fmt.Printf("running %d clients for %ds...\n", *clients, *seconds)
	var (
		mu    sync.Mutex
		sum   = metrics.NewSummary(0)
		count uint64
	)
	deadline := time.Now().Add(time.Duration(*seconds) * time.Second)
	var wg sync.WaitGroup
	errCh := make(chan error, *clients)
	for c := 0; c < *clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := dist.NewRand(uint64(c) + 1)
			for time.Now().Before(deadline) {
				k := 1 + rng.IntN(*fanout)
				batch := make([]string, k)
				for i := range batch {
					batch[i] = names[rng.IntN(len(names))]
				}
				start := time.Now()
				if _, err := client.MGet(ctx, batch); err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				sum.Observe(time.Since(start))
				count++
				mu.Unlock()
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	for c := 0; c < *clients; c++ {
		if err := <-errCh; err != nil {
			return err
		}
	}
	fmt.Printf("requests  %d (%.0f req/s)\n", count, float64(count)/float64(*seconds))
	fmt.Printf("mean      %v\n", sum.Mean().Round(time.Microsecond))
	fmt.Printf("p50/p95/p99  %v / %v / %v\n",
		sum.P50().Round(time.Microsecond),
		sum.P95().Round(time.Microsecond),
		sum.P99().Round(time.Microsecond))
	return nil
}
