// Command kvmetricslint checks a Prometheus text exposition for
// structural problems: duplicate series, samples missing a TYPE
// declaration, duplicate or malformed TYPE lines, and unparseable
// values. CI's metrics-smoke job runs it against a live kvserver's
// /metrics endpoint; it also reads files or stdin:
//
//	kvmetricslint http://127.0.0.1:7900/metrics
//	kvmetricslint exposition.txt
//	curl -s host:port/metrics | kvmetricslint
//
// It exits 0 on a clean exposition and 1 with one problem per line on
// stderr otherwise.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"github.com/daskv/daskv/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kvmetricslint:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 1 {
		return fmt.Errorf("usage: kvmetricslint [URL|FILE] (default stdin)")
	}
	var src io.Reader = os.Stdin
	name := "stdin"
	if len(args) == 1 {
		name = args[0]
		switch {
		case strings.HasPrefix(name, "http://"), strings.HasPrefix(name, "https://"):
			resp, err := http.Get(name)
			if err != nil {
				return err
			}
			defer func() { _ = resp.Body.Close() }()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("%s: HTTP %s", name, resp.Status)
			}
			src = resp.Body
		default:
			f, err := os.Open(name)
			if err != nil {
				return err
			}
			defer func() { _ = f.Close() }()
			src = f
		}
	}
	problems := metrics.LintExposition(src)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%s: %d problem(s)", name, len(problems))
	}
	fmt.Printf("%s: exposition clean\n", name)
	return nil
}
