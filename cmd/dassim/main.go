// Command dassim runs one key-value store simulation and prints the
// request-completion-time summary — the workhorse for ad-hoc scheduling
// experiments beyond the canned dasbench tables.
//
// Example:
//
//	dassim -policy das -load 0.8 -servers 32 -requests 50000 \
//	       -fanout zipf:20:1.0 -demand exp:1ms -skew 0.9
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/daskv/daskv/internal/cli"
	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sim"
	"github.com/daskv/daskv/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dassim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		policyName = flag.String("policy", "das", "scheduling policy: "+fmt.Sprint(cli.PolicyNames()))
		load       = flag.Float64("load", 0.7, "offered load (utilization of the nominal cluster)")
		rateSpec   = flag.String("rate", "", "absolute offered rate in req/s (k/M suffixes); overrides -load")
		servers    = flag.Int("servers", 16, "cluster size")
		workers    = flag.Int("workers", 1, "worker threads per server")
		requests   = flag.Int("requests", 30000, "requests to simulate")
		keys       = flag.Int("keys", 100000, "keyspace size")
		skew       = flag.Float64("skew", 0.9, "Zipf exponent of key popularity")
		preset     = flag.String("preset", "", "workload preset ("+strings.Join(workload.PresetNames(), "|")+"); overrides fanout/demand/skew/keys")
		fanoutSpec = flag.String("fanout", "zipf:20:1.0", "fanout distribution (const:N | unif:LO:HI | zipf:MAX:S | geom:MEAN)")
		demandSpec = flag.String("demand", "exp:1ms", "demand distribution (exp:M | det:V | unif:LO:HI | bimodal:S:L:P | pareto:LO:HI:A | lognorm:M:SIGMA)")
		valueSpec  = flag.String("value-size", "", "value-size distribution in bytes (const:N | pareto:LO:HI:A | lognorm:M:SIGMA[:CAP]); empty = size-oblivious")
		sizeDemand = flag.Bool("size-demand", false, "scale each op's demand by its sampled value size relative to the mean (requires -value-size)")
		netDelay   = flag.Duration("net", 50*time.Microsecond, "one-way network delay")
		warmup     = flag.Duration("warmup", time.Second, "measurement warmup")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		alpha      = flag.Float64("das-alpha", core.DefaultOptions().Alpha, "DAS aging weight")
		beta       = flag.Float64("das-beta", core.DefaultOptions().Beta, "DAS slack-demotion weight")
		maxDelay   = flag.Duration("das-maxdelay", core.DefaultOptions().MaxDelay, "DAS starvation bound (0 = off)")
		cdf        = flag.Bool("cdf", false, "also print the RCT CDF")
		record     = flag.String("record", "", "write the generated request trace to this file")
		replay     = flag.String("replay", "", "replay a recorded trace instead of generating (workload flags ignored)")
	)
	flag.Parse()

	policy, err := cli.ParsePolicy(*policyName, core.Options{Alpha: *alpha, Beta: *beta, MaxDelay: *maxDelay})
	if err != nil {
		return err
	}
	fanout, err := cli.ParseFanout(*fanoutSpec)
	if err != nil {
		return err
	}
	demand, err := cli.ParseDemand(*demandSpec)
	if err != nil {
		return err
	}
	var valueSize dist.ByteSize
	if *valueSpec != "" {
		valueSize, err = cli.ParseByteSize(*valueSpec)
		if err != nil {
			return err
		}
	} else if *sizeDemand {
		return fmt.Errorf("-size-demand requires -value-size")
	}
	if *preset != "" {
		pcfg, err := workload.Preset(*preset)
		if err != nil {
			return err
		}
		fanout, demand = pcfg.Fanout, pcfg.Demand
		*skew = pcfg.KeySkew
		*keys = pcfg.Keys
	}
	rate, err := workload.RateForLoad(*load, *servers, 1.0, fanout.Mean(), demand.Mean())
	if err != nil {
		return err
	}
	if *rateSpec != "" {
		abs, err := cli.ParseRate(*rateSpec)
		if err != nil {
			return fmt.Errorf("-rate: %w", err)
		}
		rate = abs
		// Recompute the implied utilization so the summary stays honest.
		nominal, err := workload.RateForLoad(1.0, *servers, 1.0, fanout.Mean(), demand.Mean())
		if err != nil {
			return err
		}
		*load = rate / nominal
	}
	// Cap warmup at a fifth of the expected run so fast workloads still
	// record measurements.
	if expected := time.Duration(float64(*requests) / rate * float64(time.Second)); *warmup > expected/5 {
		*warmup = expected / 5
	}
	cfg := sim.Config{
		Servers:  *servers,
		Workers:  *workers,
		Policy:   policy.Factory,
		Adaptive: policy.Adaptive,
		Workload: workload.Config{
			Keys:       *keys,
			KeySkew:    *skew,
			Fanout:     fanout,
			Demand:     demand,
			RatePerSec: rate,
			ValueSize:  valueSize,
			SizeDemand: *sizeDemand,
		},
		Requests: *requests,
		Warmup:   *warmup,
		NetDelay: dist.Deterministic{V: *netDelay},
		Seed:     *seed,
	}
	switch {
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			return fmt.Errorf("open trace: %w", err)
		}
		trace, err := workload.ReadTrace(f)
		_ = f.Close()
		if err != nil {
			return err
		}
		cfg.Trace = trace
		cfg.Requests = 0
		fmt.Printf("replaying %d requests from %s\n", len(trace), *replay)
	case *record != "":
		gen, err := workload.NewGenerator(cfg.Workload, cfg.Seed)
		if err != nil {
			return err
		}
		trace := gen.Take(*requests)
		f, err := os.Create(*record)
		if err != nil {
			return fmt.Errorf("create trace: %w", err)
		}
		if err := workload.WriteTrace(f, trace); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close trace: %w", err)
		}
		cfg.Trace = trace
		fmt.Printf("recorded %d requests to %s\n", len(trace), *record)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("policy        %s\n", res.Policy)
	fmt.Printf("load          %.2f  (rate %.1f req/s, %d servers)\n", *load, rate, *servers)
	fmt.Printf("requests      %d completed of %d (ops %d)\n",
		res.Completed, res.GeneratedRequests, res.GeneratedOps)
	fmt.Printf("simulated     %v\n", res.SimulatedTime.Round(time.Millisecond))
	fmt.Printf("mean RCT      %v\n", res.RCT.Mean().Round(time.Microsecond))
	fmt.Printf("p50 / p95 / p99   %v / %v / %v\n",
		res.RCT.P50().Round(time.Microsecond),
		res.RCT.P95().Round(time.Microsecond),
		res.RCT.P99().Round(time.Microsecond))
	fmt.Printf("op queue wait mean %v, mean queue length %.1f\n",
		res.QueueWait.Mean().Round(time.Microsecond), res.MeanQueueLen)
	if d := res.Decisions; d != nil {
		fmt.Printf("sched decisions   %d pushed: %d srpt-first, %d lrpt-last (%d near boundary), %d promoted\n",
			d.Pushed, d.SRPTFirst, d.LRPTDemoted, d.NearBoundary, d.Promotions)
	}
	if *cdf {
		fmt.Println("fraction  rct")
		for _, pt := range res.RCT.CDF(21) {
			fmt.Printf("%.2f      %v\n", pt.Fraction, pt.Value.Round(time.Microsecond))
		}
	}
	return nil
}
