// Command dasbench regenerates the paper's evaluation tables and
// figures (E1-E20, see DESIGN.md for the mapping).
//
// Usage:
//
//	dasbench -exp all                 # every experiment, paper scale
//	dasbench -exp E2,E8 -requests 10000 -seeds 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/daskv/daskv/internal/bench"
	"github.com/daskv/daskv/internal/cli"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dasbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs (E1..E20) or 'all'")
		servers   = flag.Int("servers", 16, "cluster size")
		requests  = flag.Int("requests", 30000, "requests per simulation run")
		seeds     = flag.Int("seeds", 3, "independent seeds averaged per data point")
		seed      = flag.Uint64("seed", 1, "base RNG seed")
		list      = flag.Bool("list", false, "list experiments and exit")
		outDir    = flag.String("out", "", "also write each experiment's output to <dir>/<ID>.txt")
		liveDur   = flag.Duration("live", 0, "wall-clock duration per live-store policy run (default 6s)")
		liveRate  = flag.String("live-rate", "", "pace live clients to this total offered rate in req/s (k/M suffixes); empty = pure closed loop")
		liveJSON  = flag.String("live-json", "", "run only the live-store benchmark and write JSON results to this path")
		liveGate  = flag.Float64("live-gate", 0, "run the live tail-latency gate: fail unless DAS p99 <= this ratio x FCFS p99 (0 disables)")
		liveSizes = flag.Bool("live-sizes", false, "use the heavy-tailed Pareto value-size mix for -live-gate: compare small-op p99 of DAS with split pools vs FCFS")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return nil
	}

	params := bench.Params{
		Servers:  *servers,
		Requests: *requests,
		Seeds:    *seeds,
		Seed:     *seed,
		Live:     *liveDur,
	}
	if *liveRate != "" {
		rate, err := cli.ParseRate(*liveRate)
		if err != nil {
			return fmt.Errorf("-live-rate: %w", err)
		}
		params.LiveRate = rate
	}
	if *liveJSON != "" {
		return writeLiveJSON(params, *liveJSON)
	}
	if *liveGate > 0 {
		if *liveSizes {
			return bench.RunLiveSizedGate(params, os.Stdout, *liveGate, 1)
		}
		return bench.RunLiveGate(params, os.Stdout, *liveGate, 1)
	}
	if *liveSizes {
		return fmt.Errorf("-live-sizes requires -live-gate to set a ratio")
	}
	var selected []bench.Experiment
	if *expFlag == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
	}
	for _, e := range selected {
		start := time.Now()
		var sink io.Writer = os.Stdout
		var file *os.File
		if *outDir != "" {
			f, err := os.Create(filepath.Join(*outDir, e.ID+".txt"))
			if err != nil {
				return fmt.Errorf("create %s output: %w", e.ID, err)
			}
			file = f
			sink = io.MultiWriter(os.Stdout, f)
		}
		err := e.Run(params, sink)
		if file != nil {
			if cerr := file.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("(%s completed in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// writeLiveJSON runs the live loopback benchmark and writes the
// per-policy results as a benchstat-friendly JSON document.
func writeLiveJSON(params bench.Params, path string) error {
	start := time.Now()
	results, err := bench.RunLiveJSON(params)
	if err != nil {
		return err
	}
	sized, err := bench.RunLiveSizedJSON(params)
	if err != nil {
		return err
	}
	uniformPools, err := bench.RunLiveUniformPoolsJSON(params)
	if err != nil {
		return err
	}
	doc := struct {
		Benchmark        string                  `json:"benchmark"`
		Note             string                  `json:"note"`
		Results          []bench.LiveResult      `json:"results"`
		SizedNote        string                  `json:"sized_note"`
		SizedResults     []bench.LiveSizedResult `json:"sized_results"`
		UniformPoolsNote string                  `json:"uniform_pools_note"`
		UniformPools     []bench.LiveResult      `json:"uniform_pools_results"`
	}{
		Benchmark:        "live-store multiget RCT",
		Note:             "4 loopback servers, 24 closed-loop multiget clients; per-server batch frames (wire v3)",
		Results:          results,
		SizedNote:        "E23: heavy-tailed mix — Zipf(0.9) keys, Pareto value sizes (1KiB..4MiB, a=0.5), single-key gets, per-op-size latency split at 64KiB",
		SizedResults:     sized,
		UniformPoolsNote: "uniform-size E22 workload with the size-class split enabled (2 workers/server both sides): the split must cost nothing when every value is small",
		UniformPools:     uniformPools,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("(live benchmark completed in %v, wrote %s)\n",
		time.Since(start).Round(time.Millisecond), path)
	return nil
}
