// Command dasload is the open-loop load harness: it drives one
// scenario of the evaluation matrix at a fixed offered rate per sweep
// point, measuring intended-start-to-completion latency so coordinated
// omission is counted, and emits throughput-vs-latency frontier curves
// per scheduling policy.
//
// Usage:
//
//	dasload -list-scenarios
//	dasload -scenario base -policies all -rates 2k,4k,8k,12k
//	dasload -scenario ci -policies das,fcfs -rates 1k,2k -duration 2s \
//	        -json BENCH_frontier.json -gate 800
//
// See docs/BENCHMARKING.md for the methodology.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/daskv/daskv/internal/cli"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/load"
	"github.com/daskv/daskv/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dasload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario  = flag.String("scenario", "base", "scenario matrix cell to drive (see -list-scenarios)")
		list      = flag.Bool("list-scenarios", false, "list the scenario matrix and exit")
		policies  = flag.String("policies", "all", "comma-separated policies: das, fcfs, rein-sbf, das+pools, or 'all'")
		arrival   = flag.String("arrival", "poisson", "arrival process: poisson | fixed | onoff:ONMEAN:OFFMEAN")
		rates     = flag.String("rates", "2k,4k,8k,12k,16k", "offered request rates to sweep, ascending (k/M suffixes)")
		duration  = flag.Duration("duration", 5*time.Second, "measured window per sweep point")
		warmup    = flag.Duration("warmup", 0, "schedule prefix excluded from stats (default duration/5)")
		workers   = flag.Int("workers", 64, "open-loop executor pool size")
		conns     = flag.Int("conns", 8, "kv client pool width (connections per server = conns)")
		queue     = flag.Int("queue", 128, "per-worker pending-request queue depth")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		p99Budget = flag.Duration("p99-budget", 5*time.Millisecond, "p99 latency budget defining sustainability")
		errBudget = flag.Float64("error-budget", 0.01, "max (errors+drops)/sent for a sustainable point")
		lateness  = flag.Duration("lateness-budget", 50*time.Millisecond, "max harness dispatch-lateness p99 for a sustainable point")
		keepGoing = flag.Bool("keep-going", false, "run every rate even after the first unsustainable point")
		seed      = flag.Uint64("seed", 1, "RNG seed shared by every point and policy")
		jsonOut   = flag.String("json", "", "write the frontier document to this path")
		gate      = flag.Float64("gate", 0, "fail unless every policy sustains at least this many req/s within budget (0 disables)")
		walSync   = flag.String("wal-sync", "", "override the scenario's WAL sync policy (always | batch[:w] | coalesce[:w] | none) for A/B disk-economics runs")
	)
	flag.Parse()

	if *list {
		for _, sc := range load.Matrix() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Note)
		}
		return nil
	}

	sc, ok := load.ByName(*scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q (use -list-scenarios)", *scenario)
	}
	if *walSync != "" {
		if _, err := wal.ParseSyncPolicy(*walSync); err != nil {
			return err
		}
		sc.WALSync = *walSync
	}
	pols, err := load.ParsePolicies(*policies)
	if err != nil {
		return err
	}
	rateList, err := cli.ParseRates(*rates)
	if err != nil {
		return err
	}
	arrFactory, err := cli.ParseArrival(*arrival)
	if err != nil {
		return err
	}

	cfg := load.SweepConfig{
		Rates:            rateList,
		Arrival:          func(rate float64) (dist.Arrival, error) { return arrFactory(rate) },
		Duration:         *duration,
		Warmup:           *warmup,
		Workers:          *workers,
		QueueDepth:       *queue,
		Timeout:          *timeout,
		Clients:          *conns,
		P99Budget:        *p99Budget,
		MaxErrorFraction: *errBudget,
		MaxLatenessP99:   *lateness,
		KeepGoing:        *keepGoing,
		Seed:             *seed,
		Log:              os.Stdout,
	}

	start := time.Now()
	frontiers := make([]load.Frontier, 0, len(pols))
	for _, pol := range pols {
		f, err := load.RunSweep(sc, pol, cfg)
		if err != nil {
			return fmt.Errorf("sweep %s/%s: %w", sc.Name, pol.Name, err)
		}
		frontiers = append(frontiers, f)
	}

	fmt.Printf("\nscenario %s (%s), arrival %s, p99 budget %v\n", sc.Name, sc.Note, *arrival, *p99Budget)
	for _, f := range frontiers {
		fmt.Printf("  %-10s sustains %8.0f req/s within budget (%d points)\n",
			f.Policy, f.SustainableRPS, len(f.Points))
	}
	fmt.Printf("(swept in %v)\n", time.Since(start).Round(time.Millisecond))

	if *jsonOut != "" {
		doc := struct {
			Benchmark   string          `json:"benchmark"`
			Scenario    string          `json:"scenario"`
			Note        string          `json:"note"`
			Arrival     string          `json:"arrival"`
			DurationS   float64         `json:"duration_s"`
			Workers     int             `json:"workers"`
			Conns       int             `json:"conns"`
			P99BudgetMs float64         `json:"p99_budget_ms"`
			Seed        uint64          `json:"seed"`
			Frontiers   []load.Frontier `json:"frontiers"`
		}{
			Benchmark:   "open-loop multiget latency-vs-throughput frontier",
			Scenario:    sc.Name,
			Note:        sc.Note,
			Arrival:     *arrival,
			DurationS:   duration.Seconds(),
			Workers:     *workers,
			Conns:       *conns,
			P99BudgetMs: float64(*p99Budget) / float64(time.Millisecond),
			Seed:        *seed,
			Frontiers:   frontiers,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *jsonOut, err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	if *gate > 0 {
		for _, f := range frontiers {
			if f.SustainableRPS < *gate {
				return fmt.Errorf("gate: policy %s sustains %.0f req/s, below the %.0f req/s floor",
					f.Policy, f.SustainableRPS, *gate)
			}
		}
		fmt.Printf("gate ok: every policy sustains >= %.0f req/s\n", *gate)
	}
	return nil
}
