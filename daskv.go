// Package daskv is the public API of the DAS key-value scheduling
// library: a reproduction of "Cutting the Request Completion Time in
// Key-value Stores with Distributed Adaptive Scheduler" (ICDCS 2021).
//
// The package re-exports the stable surface of the internal packages:
//
//   - scheduling policies (FCFS, SJF, Rein-SBF, Rein-ML, LRPT,
//     least-slack, and the paper's DAS) behind one Policy interface;
//   - the client-side DAS machinery (Estimator, Tag) that turns
//     piggybacked feedback into scheduling tags;
//   - the discrete-event cluster simulator used for the paper's
//     evaluation;
//   - a live TCP key-value store (server + multiget client) running the
//     same policies on real sockets;
//   - workload generation (Zipf popularity, fan-out and demand
//     distributions, time-varying load profiles).
//
// Start with RunSim for simulation studies or NewServer/NewClient for
// the live store; see examples/ for complete programs.
package daskv

import (
	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/kv"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/optimal"
	"github.com/daskv/daskv/internal/queueing"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sim"
	"github.com/daskv/daskv/internal/topology"
	"github.com/daskv/daskv/internal/workload"
)

// Scheduling primitives.
type (
	// Policy orders the pending operations of one server; every
	// scheduler in this library implements it.
	Policy = sched.Policy
	// PolicyFactory builds one Policy instance per server.
	PolicyFactory = sched.Factory
	// Op is one key-value access operation in a server queue.
	Op = sched.Op
	// Tags is the client-attached scheduling metadata on an Op.
	Tags = sched.Tags
	// ServerID identifies a server on the cluster ring.
	ServerID = sched.ServerID
	// RequestID identifies an end-user multiget request.
	RequestID = sched.RequestID
)

// Baseline policy factories.
var (
	// FCFS is first-come-first-served, the deployed-store default.
	FCFS = sched.FCFSFactory
	// SJF is shortest-own-demand-first.
	SJF = sched.SJFFactory
	// ReinSBF is Rein's shortest-bottleneck-first (EuroSys 2017).
	ReinSBF = sched.ReinSBFFactory
	// LRPT is largest-bottleneck-first (an ablation endpoint).
	LRPT = sched.LRPTFactory
	// LeastSlack serves minimum-slack operations first.
	LeastSlack = sched.LeastSlackFactory
	// RandomPolicy serves a uniformly random pending operation.
	RandomPolicy = sched.RandomFactory
)

// ReinML builds Rein's multilevel-queue approximation of SBF with the
// given base bottleneck threshold.
var ReinML = sched.ReinMLFactory

// DAS — the paper's contribution.
type (
	// DASOptions tunes the DAS policy (SRPT-first + LRPT-last slack
	// demotion + starvation controls).
	DASOptions = core.Options
	// DAS is the Distributed Adaptive Scheduler queue.
	DAS = core.DAS
	// Estimator is the client-side per-server load/speed view built
	// from piggybacked feedback.
	Estimator = core.Estimator
	// EstimatorConfig tunes the estimator.
	EstimatorConfig = core.EstimatorConfig
	// Feedback is the server snapshot piggybacked on responses.
	Feedback = core.Feedback
)

// DAS constructors and helpers.
var (
	// NewDAS builds a DAS queue with the given options.
	NewDAS = core.New
	// DASFactory adapts DASOptions into a PolicyFactory.
	DASFactory = core.Factory
	// DefaultDASOptions are the evaluation defaults.
	DefaultDASOptions = core.DefaultOptions
	// NewEstimator builds a feedback estimator.
	NewEstimator = core.NewEstimator
	// DefaultEstimatorConfig are the evaluation defaults.
	DefaultEstimatorConfig = core.DefaultEstimatorConfig
	// TagRequest stamps a request's operations with DAS metadata.
	TagRequest = core.Tag
)

// Simulation.
type (
	// SimConfig describes one simulated cluster run.
	SimConfig = sim.Config
	// SimResult is the measured outcome.
	SimResult = sim.Result
	// SpeedProfile is a server's speed over virtual time.
	SpeedProfile = sim.SpeedProfile
	// ConstantSpeed, StepSpeed and SquareSpeed are canned profiles.
	ConstantSpeed = sim.ConstantSpeed
	// StepSpeed switches speed once at a set instant.
	StepSpeed = sim.StepSpeed
	// SquareSpeed oscillates between two speeds.
	SquareSpeed = sim.SquareSpeed
)

// RunSim executes one simulation run.
var RunSim = sim.Run

// Workload generation.
type (
	// WorkloadConfig describes a multiget request stream.
	WorkloadConfig = workload.Config
	// WorkloadGenerator produces the stream deterministically.
	WorkloadGenerator = workload.Generator
	// Request is one generated multiget.
	WorkloadRequest = workload.Request
)

// Workload helpers.
var (
	// NewWorkload builds a generator.
	NewWorkload = workload.NewGenerator
	// RateForLoad converts a target utilization into a request rate.
	RateForLoad = workload.RateForLoad
	// WorkloadPreset returns a named canned workload shape
	// (social / cache / analytics / uniform).
	WorkloadPreset = workload.Preset
	// WorkloadPresets lists the preset names.
	WorkloadPresets = workload.PresetNames
	// WriteTrace and ReadTrace archive request streams as JSON lines.
	WriteTrace = workload.WriteTrace
	// ReadTrace parses an archived request stream.
	ReadTrace = workload.ReadTrace
)

// Replica selection in the simulator.
const (
	// PrimaryReplica reads the ring primary.
	PrimaryReplica = sim.PrimaryReplica
	// RandomReplica spreads reads uniformly over replicas.
	RandomReplica = sim.RandomReplica
	// FastestReplica reads the estimator-fastest replica with in-flight
	// compensation.
	FastestReplica = sim.FastestReplica
	// RoundRobinReplica rotates reads over the replica set.
	RoundRobinReplica = sim.RoundRobinReplica
	// LeastOutstandingReplica reads the replica with the fewest
	// in-flight operations.
	LeastOutstandingReplica = sim.LeastOutstandingReplica
)

// Live store.
type (
	// ServerConfig configures a live key-value node.
	ServerConfig = kv.ServerConfig
	// Server is a live node.
	Server = kv.Server
	// ClientConfig configures a cluster client.
	ClientConfig = kv.ClientConfig
	// Client is a partition-aware multiget client.
	Client = kv.Client
	// CostModel prices an operation's service demand server-side.
	CostModel = kv.CostModel
	// DemandModel estimates demands client-side for tagging.
	DemandModel = kv.DemandModel
)

// Live-store constructors and sentinel errors.
var (
	// NewServer starts a live node.
	NewServer = kv.NewServer
	// NewClient connects to a cluster.
	NewClient = kv.NewClient
	// ErrNotFound reports a missing key.
	ErrNotFound = kv.ErrNotFound
	// NewMetricsHandler exposes a live server over HTTP
	// (/stats, /metrics, /healthz).
	NewMetricsHandler = kv.NewMetricsHandler
)

// Live-store read routing.
const (
	// PrimaryRead reads the ring primary.
	PrimaryRead = kv.PrimaryRead
	// FastestRead reads the estimator-fastest replica with in-flight
	// compensation.
	FastestRead = kv.FastestRead
	// RoundRobinRead rotates reads over the replica set.
	RoundRobinRead = kv.RoundRobinRead
	// LeastOutstandingRead reads the replica with the fewest in-flight
	// requests.
	LeastOutstandingRead = kv.LeastOutstandingRead
	// RandomRead spreads reads uniformly over the replica set.
	RandomRead = kv.RandomRead
)

// Measurement and distributions (for building custom studies).
type (
	// Summary is a streaming latency summary (mean + percentiles).
	Summary = metrics.Summary
	// DurationDist samples service demands or delays.
	DurationDist = dist.Duration
	// DiscreteDist samples request fan-outs.
	DiscreteDist = dist.Discrete
	// LoadProfile modulates offered load over time.
	LoadProfile = dist.LoadProfile
	// Ring is the consistent-hash key-to-server mapping.
	Ring = topology.Ring
)

// NewSummary builds a latency summary with the given reservoir size
// (0 = default).
var NewSummary = metrics.NewSummary

// NewRing builds a consistent-hash ring over the given servers.
var NewRing = topology.NewRing

// Offline ground truth (the paper's NP-hard formalization).
type (
	// OfflineInstance is a static scheduling problem: requests already
	// queued, per-server orders to be chosen jointly.
	OfflineInstance = optimal.Instance
	// OfflineRequest is one multiget of an offline instance.
	OfflineRequest = optimal.Request
	// OfflineOp is one operation of an offline request.
	OfflineOp = optimal.Op
)

// Offline solvers.
var (
	// ExactOptimal enumerates the joint schedule space of a small
	// offline instance and returns the minimum mean RCT.
	ExactOptimal = optimal.Exact
	// EvaluateOffline runs a queueing policy on an offline instance.
	EvaluateOffline = optimal.Evaluate
)

// Queueing-theory references (substrate validation).
var (
	// MM1MeanSojourn is the exact M/M/1 mean time in system.
	MM1MeanSojourn = queueing.MM1MeanSojourn
	// MG1MeanSojourn is the exact Pollaczek-Khinchine mean sojourn.
	MG1MeanSojourn = queueing.MG1MeanSojourn
	// MD1MeanSojourn is the exact M/D/1 mean sojourn.
	MD1MeanSojourn = queueing.MD1MeanSojourn
)
