package queueing

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sim"
	"github.com/daskv/daskv/internal/workload"
)

func TestMM1KnownValues(t *testing.T) {
	// rho=0.5, E[S]=1ms -> E[T]=2ms.
	got, err := MM1MeanSojourn(500, time.Millisecond)
	if err != nil {
		t.Fatalf("MM1MeanSojourn: %v", err)
	}
	if got != 2*time.Millisecond {
		t.Fatalf("E[T] = %v, want 2ms", got)
	}
	// rho=0.9 -> 10ms.
	got, err = MM1MeanSojourn(900, time.Millisecond)
	if err != nil {
		t.Fatalf("MM1MeanSojourn: %v", err)
	}
	if got != 10*time.Millisecond {
		t.Fatalf("E[T] = %v, want 10ms", got)
	}
}

func TestStabilityErrors(t *testing.T) {
	if _, err := MM1MeanSojourn(1000, time.Millisecond); !errors.Is(err, ErrUnstable) {
		t.Fatalf("rho=1 should be unstable, got %v", err)
	}
	if _, err := MM1MeanSojourn(-1, time.Millisecond); err == nil {
		t.Fatal("negative rate should error")
	}
	if _, err := MM1MeanSojourn(100, 0); err == nil {
		t.Fatal("zero service should error")
	}
}

func TestMG1ReducesToMM1ForExponential(t *testing.T) {
	lambda := 700.0
	mean := time.Millisecond
	mg1, err := MG1MeanSojourn(lambda, mean, ExponentialSecondMoment(mean))
	if err != nil {
		t.Fatalf("MG1MeanSojourn: %v", err)
	}
	mm1, err := MM1MeanSojourn(lambda, mean)
	if err != nil {
		t.Fatalf("MM1MeanSojourn: %v", err)
	}
	if d := math.Abs(float64(mg1 - mm1)); d > float64(time.Microsecond) {
		t.Fatalf("M/G/1 with exponential moments %v != M/M/1 %v", mg1, mm1)
	}
}

func TestMD1IsPKWithZeroVariance(t *testing.T) {
	lambda := 600.0
	v := time.Millisecond
	md1, err := MD1MeanSojourn(lambda, v)
	if err != nil {
		t.Fatalf("MD1MeanSojourn: %v", err)
	}
	pk, err := MG1MeanSojourn(lambda, v, DeterministicSecondMoment(v))
	if err != nil {
		t.Fatalf("MG1MeanSojourn: %v", err)
	}
	if d := math.Abs(float64(md1 - pk)); d > float64(time.Microsecond) {
		t.Fatalf("M/D/1 %v != P-K with zero variance %v", md1, pk)
	}
}

func TestSecondMoments(t *testing.T) {
	if got := ExponentialSecondMoment(time.Second); math.Abs(got-2) > 1e-12 {
		t.Fatalf("exp second moment = %v, want 2", got)
	}
	if got := DeterministicSecondMoment(2 * time.Second); math.Abs(got-4) > 1e-12 {
		t.Fatalf("det second moment = %v, want 4", got)
	}
	// Bimodal with p=1 degenerates to deterministic.
	if got := BimodalSecondMoment(time.Second, 5*time.Second, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("bimodal p=1 = %v, want 1", got)
	}
	// Uniform[0,1s]: E[S^2] = 1/3.
	if got := UniformSecondMoment(0, time.Second); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("uniform second moment = %v, want 1/3", got)
	}
}

func TestHarmonicNumber(t *testing.T) {
	if HarmonicNumber(1) != 1 {
		t.Fatal("H_1 != 1")
	}
	if got := HarmonicNumber(4); math.Abs(got-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Fatalf("H_4 = %v", got)
	}
}

func TestForkJoinIndependent(t *testing.T) {
	got, err := ForkJoinIndependent(4, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("ForkJoinIndependent: %v", err)
	}
	want := time.Duration(float64(2*time.Millisecond) * HarmonicNumber(4))
	if got != want {
		t.Fatalf("fork-join = %v, want %v", got, want)
	}
	if _, err := ForkJoinIndependent(0, time.Millisecond); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := ForkJoinIndependent(3, 0); err == nil {
		t.Fatal("zero sojourn should error")
	}
}

// simSojourn runs the simulator as a single queue and returns the mean
// sojourn, validating the simulation substrate against theory.
func simSojourn(t *testing.T, demand dist.Duration, lambda float64, requests int) time.Duration {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Servers:  1,
		Policy:   sched.FCFSFactory,
		NetDelay: dist.Deterministic{V: 0},
		Workload: workload.Config{
			Keys:       1000,
			Fanout:     dist.ConstInt{N: 1},
			Demand:     demand,
			RatePerSec: lambda,
		},
		Requests: requests,
		Warmup:   2 * time.Second,
		Seed:     17,
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res.RCT.Mean()
}

func TestSimulatorMatchesMM1(t *testing.T) {
	mean := time.Millisecond
	for _, lambda := range []float64{300, 600, 800} {
		theory, err := MM1MeanSojourn(lambda, mean)
		if err != nil {
			t.Fatalf("theory: %v", err)
		}
		got := simSojourn(t, dist.Exponential{M: mean}, lambda, 80000)
		if rel := math.Abs(float64(got-theory)) / float64(theory); rel > 0.08 {
			t.Fatalf("lambda=%v: sim %v vs M/M/1 %v (%.1f%% off)", lambda, got, theory, rel*100)
		}
	}
}

func TestSimulatorMatchesMD1(t *testing.T) {
	v := time.Millisecond
	lambda := 700.0
	theory, err := MD1MeanSojourn(lambda, v)
	if err != nil {
		t.Fatalf("theory: %v", err)
	}
	got := simSojourn(t, dist.Deterministic{V: v}, lambda, 60000)
	if rel := math.Abs(float64(got-theory)) / float64(theory); rel > 0.05 {
		t.Fatalf("sim %v vs M/D/1 %v (%.1f%% off)", got, theory, rel*100)
	}
}

func TestSimulatorMatchesMG1Bimodal(t *testing.T) {
	d := dist.Bimodal{Small: 500 * time.Microsecond, Large: 5500 * time.Microsecond, PSmall: 0.9}
	lambda := 600.0
	theory, err := MG1MeanSojourn(lambda, d.Mean(), BimodalSecondMoment(d.Small, d.Large, d.PSmall))
	if err != nil {
		t.Fatalf("theory: %v", err)
	}
	got := simSojourn(t, d, lambda, 80000)
	if rel := math.Abs(float64(got-theory)) / float64(theory); rel > 0.08 {
		t.Fatalf("sim %v vs P-K %v (%.1f%% off)", got, theory, rel*100)
	}
}

func TestSimulatorForkJoinBracketed(t *testing.T) {
	// k-way multiget over k dedicated servers: the sim's mean RCT must
	// lie between the single-queue sojourn (lower bound) and the
	// independent-exponential approximation (upper-ish).
	const k = 4
	mean := time.Millisecond
	perServerLambda := 500.0 // rho 0.5 per server
	single, err := MM1MeanSojourn(perServerLambda, mean)
	if err != nil {
		t.Fatalf("theory: %v", err)
	}
	upper, err := ForkJoinIndependent(k, single)
	if err != nil {
		t.Fatalf("theory: %v", err)
	}
	res, err := sim.Run(sim.Config{
		Servers:  k,
		Policy:   sched.FCFSFactory,
		NetDelay: dist.Deterministic{V: 0},
		Workload: workload.Config{
			Keys:       100000,
			Fanout:     dist.ConstInt{N: k},
			Demand:     dist.Exponential{M: mean},
			RatePerSec: perServerLambda, // each request puts 1 op on ~each server
		},
		Requests: 60000,
		Warmup:   2 * time.Second,
		Seed:     23,
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	got := res.RCT.Mean()
	if got <= single {
		t.Fatalf("fork-join mean %v should exceed single-queue %v", got, single)
	}
	// Keys hash independently, so a 4-key multiget sometimes lands two
	// ops on one server; those serialize, pushing the mean somewhat
	// above the collision-free independence approximation.
	if float64(got) > float64(upper)*1.4 {
		t.Fatalf("fork-join mean %v far above independence approx %v", got, upper)
	}
}
