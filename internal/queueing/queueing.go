// Package queueing provides the closed-form queueing-theory results the
// simulator is validated against (experiment E16): M/M/1 and M/G/1
// (Pollaczek-Khinchine) sojourn times, and the independence
// approximation for fork-join (multiget) completion times.
//
// A simulation-only evaluation is only as credible as its substrate;
// matching textbook formulas to within sampling error is the strongest
// cheap check available.
package queueing

import (
	"errors"
	"fmt"
	"time"
)

// Errors shared by the validators.
var (
	// ErrUnstable reports an arrival rate at or beyond service capacity.
	ErrUnstable = errors.New("queueing: utilization >= 1 (unstable queue)")
)

func utilization(lambda float64, meanService time.Duration) (float64, error) {
	if lambda <= 0 {
		return 0, fmt.Errorf("queueing: arrival rate %v must be positive", lambda)
	}
	if meanService <= 0 {
		return 0, fmt.Errorf("queueing: mean service %v must be positive", meanService)
	}
	rho := lambda * meanService.Seconds()
	if rho >= 1 {
		return rho, ErrUnstable
	}
	return rho, nil
}

// MM1MeanSojourn returns the exact mean time in system of an M/M/1
// queue: E[T] = E[S] / (1 - rho).
func MM1MeanSojourn(lambda float64, meanService time.Duration) (time.Duration, error) {
	rho, err := utilization(lambda, meanService)
	if err != nil {
		return 0, err
	}
	return time.Duration(float64(meanService) / (1 - rho)), nil
}

// MG1MeanWait returns the exact Pollaczek-Khinchine mean queueing wait
// of an M/G/1 queue given the first two moments of service time:
//
//	E[W] = lambda * E[S^2] / (2 * (1 - rho)).
//
// secondMomentSec2 is E[S^2] in seconds squared.
func MG1MeanWait(lambda float64, meanService time.Duration, secondMomentSec2 float64) (time.Duration, error) {
	rho, err := utilization(lambda, meanService)
	if err != nil {
		return 0, err
	}
	if secondMomentSec2 <= 0 {
		return 0, fmt.Errorf("queueing: second moment %v must be positive", secondMomentSec2)
	}
	m1 := meanService.Seconds()
	if secondMomentSec2 < m1*m1 {
		return 0, fmt.Errorf("queueing: second moment %v below squared mean %v", secondMomentSec2, m1*m1)
	}
	waitSec := lambda * secondMomentSec2 / (2 * (1 - rho))
	return time.Duration(waitSec * float64(time.Second)), nil
}

// MG1MeanSojourn is MG1MeanWait plus the service time itself.
func MG1MeanSojourn(lambda float64, meanService time.Duration, secondMomentSec2 float64) (time.Duration, error) {
	w, err := MG1MeanWait(lambda, meanService, secondMomentSec2)
	if err != nil {
		return 0, err
	}
	return w + meanService, nil
}

// MD1MeanSojourn returns the exact mean sojourn of an M/D/1 queue
// (deterministic service): E[T] = E[S] * (1 + rho / (2 * (1 - rho))).
func MD1MeanSojourn(lambda float64, service time.Duration) (time.Duration, error) {
	rho, err := utilization(lambda, service)
	if err != nil {
		return 0, err
	}
	return time.Duration(float64(service) * (1 + rho/(2*(1-rho)))), nil
}

// Second moments (in seconds squared) for the library's demand
// distributions, for feeding MG1MeanWait.

// ExponentialSecondMoment returns E[S^2] = 2 * mean^2.
func ExponentialSecondMoment(mean time.Duration) float64 {
	m := mean.Seconds()
	return 2 * m * m
}

// DeterministicSecondMoment returns E[S^2] = v^2.
func DeterministicSecondMoment(v time.Duration) float64 {
	s := v.Seconds()
	return s * s
}

// BimodalSecondMoment returns E[S^2] for a two-point distribution.
func BimodalSecondMoment(small, large time.Duration, pSmall float64) float64 {
	s, l := small.Seconds(), large.Seconds()
	return pSmall*s*s + (1-pSmall)*l*l
}

// UniformSecondMoment returns E[S^2] for Uniform[lo, hi].
func UniformSecondMoment(lo, hi time.Duration) float64 {
	a, b := lo.Seconds(), hi.Seconds()
	return (a*a + a*b + b*b) / 3
}

// HarmonicNumber returns H_k = sum_{i=1..k} 1/i.
func HarmonicNumber(k int) float64 {
	h := 0.0
	for i := 1; i <= k; i++ {
		h += 1 / float64(i)
	}
	return h
}

// ForkJoinIndependent approximates the mean completion time of a k-way
// fork-join over queues with exponential-ish sojourn time T as
// T * H_k — the expected maximum of k independent exponentials. Queue
// sojourns are positively correlated in a real fork-join system, and
// actual sojourns are not exactly exponential, so this is an
// approximation that upper-bounds the independent-exponential case; the
// true mean lies between T (the k=1 case) and roughly this value.
func ForkJoinIndependent(k int, sojourn time.Duration) (time.Duration, error) {
	if k <= 0 {
		return 0, fmt.Errorf("queueing: fork width %d must be positive", k)
	}
	if sojourn <= 0 {
		return 0, fmt.Errorf("queueing: sojourn %v must be positive", sojourn)
	}
	return time.Duration(float64(sojourn) * HarmonicNumber(k)), nil
}
