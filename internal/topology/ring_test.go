package topology

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/daskv/daskv/internal/sched"
)

func servers(n int) []sched.ServerID {
	out := make([]sched.ServerID, n)
	for i := range out {
		out[i] = sched.ServerID(i)
	}
	return out
}

func TestNewRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring should error")
	}
	if _, err := NewRing([]sched.ServerID{1, 1}, 0); err == nil {
		t.Fatal("duplicate servers should error")
	}
}

func TestLookupDeterministic(t *testing.T) {
	r, err := NewRing(servers(10), 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if r.Lookup(k) != r.Lookup(k) {
			t.Fatal("Lookup not deterministic")
		}
	}
}

func TestLookupBalance(t *testing.T) {
	const n = 20
	r, err := NewRing(servers(n), 256)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	counts := make(map[sched.ServerID]int, n)
	const keys = 100000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%08d", i))]++
	}
	if len(counts) != n {
		t.Fatalf("only %d servers own keys, want %d", len(counts), n)
	}
	want := keys / n
	for s, c := range counts {
		if c < want*2/5 || c > want*5/2 {
			t.Fatalf("server %d owns %d keys, want within [%d,%d]", s, c, want*2/5, want*5/2)
		}
	}
}

func TestLookupNDistinct(t *testing.T) {
	r, err := NewRing(servers(10), 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	got := r.LookupN("some-key", 3)
	if len(got) != 3 {
		t.Fatalf("LookupN returned %d servers, want 3", len(got))
	}
	seen := map[sched.ServerID]bool{}
	for _, s := range got {
		if seen[s] {
			t.Fatal("LookupN returned duplicate server")
		}
		seen[s] = true
	}
	if got[0] != r.Lookup("some-key") {
		t.Fatal("first replica should be the primary")
	}
}

func TestLookupNClampsToClusterSize(t *testing.T) {
	r, err := NewRing(servers(3), 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	if got := r.LookupN("k", 10); len(got) != 3 {
		t.Fatalf("LookupN = %d servers, want clamp to 3", len(got))
	}
	if got := r.LookupN("k", 0); got != nil {
		t.Fatal("LookupN(0) should be nil")
	}
}

func TestAddRemoveServer(t *testing.T) {
	r, err := NewRing(servers(3), 64)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	if err := r.AddServer(99); err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	if err := r.AddServer(99); err == nil {
		t.Fatal("duplicate AddServer should error")
	}
	if r.Size() != 4 {
		t.Fatalf("Size = %d, want 4", r.Size())
	}
	owns := false
	for i := 0; i < 10000; i++ {
		if r.Lookup(fmt.Sprintf("key-%d", i)) == 99 {
			owns = true
			break
		}
	}
	if !owns {
		t.Fatal("added server owns no keys")
	}
	if err := r.RemoveServer(99); err != nil {
		t.Fatalf("RemoveServer: %v", err)
	}
	if err := r.RemoveServer(99); err == nil {
		t.Fatal("removing absent server should error")
	}
	for i := 0; i < 10000; i++ {
		if r.Lookup(fmt.Sprintf("key-%d", i)) == 99 {
			t.Fatal("removed server still owns keys")
		}
	}
}

func TestRemoveLastServerRefused(t *testing.T) {
	r, err := NewRing(servers(1), 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	if err := r.RemoveServer(0); err == nil {
		t.Fatal("removing the last server should error")
	}
}

func TestRemovalOnlyMovesAffectedKeys(t *testing.T) {
	r, err := NewRing(servers(10), 128)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	before := make(map[string]sched.ServerID)
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Lookup(k)
	}
	if err := r.RemoveServer(4); err != nil {
		t.Fatalf("RemoveServer: %v", err)
	}
	moved := 0
	for k, s := range before {
		got := r.Lookup(k)
		if s == 4 {
			if got == 4 {
				t.Fatal("key still maps to removed server")
			}
			continue
		}
		if got != s {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed server moved; consistent hashing should move none", moved)
	}
}

func TestServersSorted(t *testing.T) {
	r, err := NewRing([]sched.ServerID{5, 1, 3}, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	got := r.Servers()
	want := []sched.ServerID{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Servers = %v, want %v", got, want)
		}
	}
}

func TestLookupAlwaysMemberQuick(t *testing.T) {
	r, err := NewRing(servers(7), 32)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	f := func(key string) bool {
		s := r.Lookup(key)
		return s >= 0 && s < 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
