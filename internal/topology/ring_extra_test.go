package topology

import (
	"fmt"
	"testing"

	"github.com/daskv/daskv/internal/sched"
)

func TestLookupNWrapAroundStable(t *testing.T) {
	r, err := NewRing(servers(5), 64)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("wrap-%d", i)
		a := r.LookupN(k, 3)
		b := r.LookupN(k, 3)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("LookupN unstable for %s: %v vs %v", k, a, b)
			}
		}
	}
}

func TestLookupNPrefixConsistency(t *testing.T) {
	// LookupN(k, 2) must be a prefix of LookupN(k, 4): replica sets
	// grow, they don't reshuffle.
	r, err := NewRing(servers(8), 64)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("prefix-%d", i)
		two := r.LookupN(k, 2)
		four := r.LookupN(k, 4)
		for j := range two {
			if two[j] != four[j] {
				t.Fatalf("replica prefix broke for %s: %v vs %v", k, two, four)
			}
		}
	}
}

func TestAddServerMovesOnlyNewOwnership(t *testing.T) {
	r, err := NewRing(servers(6), 64)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	before := make(map[string]sched.ServerID)
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("mv-%d", i)
		before[k] = r.Lookup(k)
	}
	if err := r.AddServer(42); err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	for k, was := range before {
		now := r.Lookup(k)
		if now != was && now != 42 {
			t.Fatalf("key %s moved %d -> %d, not to the new server", k, was, now)
		}
	}
}

// TestLookupNDistinctExhaustive is the regression net for successor-set
// deduplication: with many virtual nodes per server, consecutive ring
// positions frequently belong to the same server, and a dedup bug would
// hand replica placement the same physical server twice. Checked for
// every replication factor up to the cluster size, across membership
// churn (vnode arrays are rebuilt on add/remove).
func TestLookupNDistinctExhaustive(t *testing.T) {
	r, err := NewRing(servers(6), 256)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	check := func(stage string, members int) {
		t.Helper()
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("churn-key-%d", i)
			for n := 1; n <= members; n++ {
				set := r.LookupN(k, n)
				if len(set) != n {
					t.Fatalf("%s: LookupN(%q,%d) = %d servers", stage, k, n, len(set))
				}
				for a := 0; a < len(set); a++ {
					for b := a + 1; b < len(set); b++ {
						if set[a] == set[b] {
							t.Fatalf("%s: LookupN(%q,%d) duplicate server %d in %v",
								stage, k, n, set[a], set)
						}
					}
				}
			}
		}
	}
	check("initial", 6)
	if err := r.RemoveServer(sched.ServerID(2)); err != nil {
		t.Fatalf("RemoveServer: %v", err)
	}
	check("after remove", 5)
	if err := r.AddServer(sched.ServerID(9)); err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	check("after add", 6)
}
