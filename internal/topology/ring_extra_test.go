package topology

import (
	"fmt"
	"testing"

	"github.com/daskv/daskv/internal/sched"
)

func TestLookupNWrapAroundStable(t *testing.T) {
	r, err := NewRing(servers(5), 64)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("wrap-%d", i)
		a := r.LookupN(k, 3)
		b := r.LookupN(k, 3)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("LookupN unstable for %s: %v vs %v", k, a, b)
			}
		}
	}
}

func TestLookupNPrefixConsistency(t *testing.T) {
	// LookupN(k, 2) must be a prefix of LookupN(k, 4): replica sets
	// grow, they don't reshuffle.
	r, err := NewRing(servers(8), 64)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("prefix-%d", i)
		two := r.LookupN(k, 2)
		four := r.LookupN(k, 4)
		for j := range two {
			if two[j] != four[j] {
				t.Fatalf("replica prefix broke for %s: %v vs %v", k, two, four)
			}
		}
	}
}

func TestAddServerMovesOnlyNewOwnership(t *testing.T) {
	r, err := NewRing(servers(6), 64)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	before := make(map[string]sched.ServerID)
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("mv-%d", i)
		before[k] = r.Lookup(k)
	}
	if err := r.AddServer(42); err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	for k, was := range before {
		now := r.Lookup(k)
		if now != was && now != 42 {
			t.Fatalf("key %s moved %d -> %d, not to the new server", k, was, now)
		}
	}
}
