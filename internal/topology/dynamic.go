package topology

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/daskv/daskv/internal/sched"
)

// Dynamic is a ring whose membership changes at runtime: a gossip
// control plane adds and removes servers while the data plane keeps
// routing lookups. Readers obtain an immutable *Ring via Snapshot and
// route any number of lookups against it; writers build a fresh ring
// copy and publish it atomically (copy-on-write), so a lookup never
// observes a half-recomputed vnode table. This is the guard behind the
// LookupN vnode-dedup invariant under concurrent membership change: a
// snapshot's hashes/owners arrays are frozen at publish time, making
// every Lookup/LookupN against it exactly as correct as against a
// statically-built ring.
type Dynamic struct {
	mu     sync.Mutex // serializes membership writers
	vnodes int
	cur    atomic.Pointer[Ring]
}

// NewDynamic builds a dynamic ring over the initial servers with vnodes
// virtual nodes per server (DefaultVnodes if <= 0).
func NewDynamic(servers []sched.ServerID, vnodes int) (*Dynamic, error) {
	r, err := NewRing(servers, vnodes)
	if err != nil {
		return nil, err
	}
	d := &Dynamic{vnodes: r.vnodes}
	d.cur.Store(r)
	return d, nil
}

// Snapshot returns the current immutable ring. Callers may route any
// number of lookups against it; it is never mutated after publication.
func (d *Dynamic) Snapshot() *Ring {
	return d.cur.Load()
}

// Add joins a server, publishing a fresh ring snapshot. Adding a server
// already present is a no-op.
func (d *Dynamic) Add(s sched.ServerID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.cur.Load()
	if cur.members[s] {
		return
	}
	next := cur.Clone()
	_ = next.AddServer(s)
	d.cur.Store(next)
}

// Remove drops a server, publishing a fresh ring snapshot. Removing an
// absent server is a no-op; removing the last server is refused (the
// previous snapshot stays current) so lookups always have an owner.
func (d *Dynamic) Remove(s sched.ServerID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.cur.Load()
	if !cur.members[s] {
		return nil
	}
	if len(cur.members) == 1 {
		return errors.New("topology: cannot remove the last server")
	}
	next := cur.Clone()
	if err := next.RemoveServer(s); err != nil {
		return err
	}
	d.cur.Store(next)
	return nil
}

// SetMembers reconciles the ring to exactly the given server set in one
// publish, reporting whether the membership changed. An empty target set
// is refused, keeping the previous snapshot current.
func (d *Dynamic) SetMembers(servers []sched.ServerID) (changed bool, err error) {
	if len(servers) == 0 {
		return false, errors.New("topology: ring needs at least one server")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.cur.Load()
	want := make(map[sched.ServerID]bool, len(servers))
	for _, s := range servers {
		want[s] = true
	}
	if len(want) == len(cur.members) {
		same := true
		for s := range want {
			if !cur.members[s] {
				same = false
				break
			}
		}
		if same {
			return false, nil
		}
	}
	next, err := NewRing(servers, d.vnodes)
	if err != nil {
		return false, err
	}
	d.cur.Store(next)
	return true, nil
}

// Clone returns a deep copy of the ring that shares no mutable state
// with the receiver — the copy-on-write step behind Dynamic's updates.
func (r *Ring) Clone() *Ring {
	c := &Ring{
		vnodes:  r.vnodes,
		hashes:  append([]uint64(nil), r.hashes...),
		owners:  append([]sched.ServerID(nil), r.owners...),
		members: make(map[sched.ServerID]bool, len(r.members)),
	}
	for s := range r.members {
		c.members[s] = true
	}
	return c
}

// Ownership returns the fraction of the hash space each member owns as
// primary — the load-balance view behind `kvctl ring`. Fractions sum to
// 1 (within float rounding).
func (r *Ring) Ownership() map[sched.ServerID]float64 {
	out := make(map[sched.ServerID]float64, len(r.members))
	n := len(r.hashes)
	if n == 0 {
		return out
	}
	const space = float64(1 << 63) * 2 // 2^64 without overflow
	for i := 0; i < n; i++ {
		// The vnode at hashes[i] owns the arc (hashes[i-1], hashes[i]];
		// the first vnode additionally owns the wraparound arc.
		var arc uint64
		if i == 0 {
			arc = r.hashes[0] + (^r.hashes[n-1] + 1)
		} else {
			arc = r.hashes[i] - r.hashes[i-1]
		}
		out[r.owners[i]] += float64(arc) / space
	}
	return out
}

// MovedFraction estimates the fraction of a sampled keyspace whose
// primary owner differs between two rings — the bounded-key-movement
// check for join/leave rebalancing. Consistent hashing's promise is
// that adding one node to an N-node ring moves about 1/(N+1) of the
// keys, never a full reshuffle.
func MovedFraction(a, b *Ring, samples int) float64 {
	if samples <= 0 {
		samples = 4096
	}
	moved := 0
	for i := 0; i < samples; i++ {
		k := "moved-sample-" + strconv.Itoa(i)
		if a.Lookup(k) != b.Lookup(k) {
			moved++
		}
	}
	return float64(moved) / float64(samples)
}
