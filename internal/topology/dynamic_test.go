package topology

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/daskv/daskv/internal/sched"
)

func TestDynamicSnapshotImmutable(t *testing.T) {
	d, err := NewDynamic([]sched.ServerID{0, 1, 2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Snapshot()
	owner := before.Lookup("some-key")
	d.Add(9)
	if got := before.Lookup("some-key"); got != owner {
		t.Fatalf("held snapshot changed its answer after Add: %d -> %d", owner, got)
	}
	if before.Size() != 3 {
		t.Fatalf("held snapshot grew: size %d", before.Size())
	}
	if d.Snapshot().Size() != 4 {
		t.Fatalf("new snapshot missing joined server")
	}
}

func TestDynamicRemoveLastRefused(t *testing.T) {
	d, err := NewDynamic([]sched.ServerID{7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(7); err == nil {
		t.Fatal("removing the last server succeeded; lookups would have no owner")
	}
	if d.Snapshot().Size() != 1 {
		t.Fatal("refused removal still changed the snapshot")
	}
}

func TestDynamicSetMembers(t *testing.T) {
	d, err := NewDynamic([]sched.ServerID{0, 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := d.SetMembers([]sched.ServerID{0, 1})
	if err != nil || changed {
		t.Fatalf("identical membership reported changed=%v err=%v", changed, err)
	}
	changed, err = d.SetMembers([]sched.ServerID{0, 2, 3})
	if err != nil || !changed {
		t.Fatalf("new membership reported changed=%v err=%v", changed, err)
	}
	got := d.Snapshot().Servers()
	want := []sched.ServerID{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members = %v, want %v", got, want)
		}
	}
	if _, err := d.SetMembers(nil); err == nil {
		t.Fatal("empty membership accepted")
	}
}

// TestDynamicLookupNDedupUnderChurn is the PR 2 vnode-dedup regression
// re-asserted under concurrent membership change: while one goroutine
// joins and removes servers through the copy-on-write publisher, readers
// must never observe a successor set containing the same physical server
// twice, nor one longer than the snapshot's membership. Run with -race.
func TestDynamicLookupNDedupUnderChurn(t *testing.T) {
	d, err := NewDynamic([]sched.ServerID{0, 1, 2, 3}, 32)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			id := sched.ServerID(4 + i%4)
			d.Add(id)
			_ = d.Remove(id)
		}
		close(done)
	}()
	const readers = 4
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				ring := d.Snapshot()
				key := fmt.Sprintf("churn-%d-%d", r, i)
				i++
				n := ring.Size()
				got := ring.LookupN(key, n)
				if len(got) != n {
					t.Errorf("LookupN(%q, %d) returned %d servers on a %d-member snapshot",
						key, n, len(got), n)
					return
				}
				seen := make(map[sched.ServerID]bool, len(got))
				for _, s := range got {
					if seen[s] {
						t.Errorf("LookupN(%q) repeated server %d: %v", key, s, got)
						return
					}
					seen[s] = true
				}
			}
		}()
	}
	wg.Wait()
}

// TestMovedFractionBounded checks the rebalancing acceptance bound: one
// join into an N-node ring must move at most 2x the ideal 1/(N+1)
// fraction of the keyspace, and a leave the symmetric bound.
func TestMovedFractionBounded(t *testing.T) {
	for _, n := range []int{3, 4, 8} {
		servers := make([]sched.ServerID, n)
		for i := range servers {
			servers[i] = sched.ServerID(i)
		}
		before, err := NewRing(servers, DefaultVnodes)
		if err != nil {
			t.Fatal(err)
		}
		after := before.Clone()
		if err := after.AddServer(sched.ServerID(n)); err != nil {
			t.Fatal(err)
		}
		moved := MovedFraction(before, after, 8192)
		ideal := 1.0 / float64(n+1)
		if moved > 2*ideal {
			t.Errorf("join onto %d nodes moved %.3f of keys, bound 2/(n+1) = %.3f", n, moved, 2*ideal)
		}
		if moved == 0 {
			t.Errorf("join onto %d nodes moved nothing; the new server owns no keys", n)
		}
	}
}

func TestOwnershipSumsToOne(t *testing.T) {
	r, err := NewRing([]sched.ServerID{0, 1, 2, 3, 4}, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	own := r.Ownership()
	if len(own) != 5 {
		t.Fatalf("ownership covers %d servers, want 5", len(own))
	}
	sum := 0.0
	for s, f := range own {
		if f <= 0 {
			t.Errorf("server %d owns %.4f of the ring", s, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ownership fractions sum to %.12f, want 1", sum)
	}
}
