// Package topology models how keys map onto servers: a consistent-hash
// ring with virtual nodes, plus replica enumeration. Both the simulator
// and the live store route multiget operations through a Ring, so hot
// partitions under skewed key popularity emerge naturally instead of
// being injected by hand.
package topology

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"github.com/daskv/daskv/internal/sched"
)

// DefaultVnodes is the per-server virtual-node count: enough to spread
// load within a few percent for cluster sizes in the evaluation.
const DefaultVnodes = 128

// Ring is a consistent-hash ring. It is immutable after construction
// apart from AddServer/RemoveServer, which callers must serialize; reads
// (Lookup) are safe to share once the membership is fixed.
type Ring struct {
	vnodes  int
	hashes  []uint64
	owners  []sched.ServerID
	members map[sched.ServerID]bool
}

// NewRing builds a ring over the given servers with vnodes virtual nodes
// per server (DefaultVnodes if <= 0).
func NewRing(servers []sched.ServerID, vnodes int) (*Ring, error) {
	if len(servers) == 0 {
		return nil, errors.New("topology: ring needs at least one server")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{vnodes: vnodes, members: make(map[sched.ServerID]bool, len(servers))}
	for _, s := range servers {
		if r.members[s] {
			return nil, fmt.Errorf("topology: duplicate server %d", s)
		}
		r.members[s] = true
		r.addVnodes(s)
	}
	r.sortRing()
	return r, nil
}

func (r *Ring) addVnodes(s sched.ServerID) {
	for v := 0; v < r.vnodes; v++ {
		h := hashString("srv-" + strconv.Itoa(int(s)) + "-vn-" + strconv.Itoa(v))
		r.hashes = append(r.hashes, h)
		r.owners = append(r.owners, s)
	}
}

func (r *Ring) sortRing() {
	idx := make([]int, len(r.hashes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.hashes[idx[a]] < r.hashes[idx[b]] })
	hashes := make([]uint64, len(r.hashes))
	owners := make([]sched.ServerID, len(r.owners))
	for i, j := range idx {
		hashes[i] = r.hashes[j]
		owners[i] = r.owners[j]
	}
	r.hashes, r.owners = hashes, owners
}

// Size returns the number of member servers.
func (r *Ring) Size() int { return len(r.members) }

// Servers returns the member servers in ascending ID order.
func (r *Ring) Servers() []sched.ServerID {
	out := make([]sched.ServerID, 0, len(r.members))
	for s := range r.members {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Lookup returns the server owning key.
func (r *Ring) Lookup(key string) sched.ServerID {
	i := r.search(hashString(key))
	return r.owners[i]
}

// LookupN returns up to n distinct servers for key, walking the ring
// clockwise: the primary followed by replica holders. Virtual nodes of
// a server already collected are skipped, so the successor set never
// contains the same physical server twice — the invariant replica
// placement depends on. Deduplication scans the small result slice
// instead of allocating a set: n is the replication factor (single
// digits), and this sits on the per-operation routing path.
func (r *Ring) LookupN(key string, n int) []sched.ServerID {
	if n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]sched.ServerID, 0, n)
	start := r.search(hashString(key))
walk:
	for i := 0; len(out) < n && i < len(r.hashes); i++ {
		s := r.owners[(start+i)%len(r.hashes)]
		for _, have := range out {
			if have == s {
				continue walk
			}
		}
		out = append(out, s)
	}
	return out
}

func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		return 0
	}
	return i
}

// AddServer joins a server to the ring.
func (r *Ring) AddServer(s sched.ServerID) error {
	if r.members[s] {
		return fmt.Errorf("topology: server %d already in ring", s)
	}
	r.members[s] = true
	r.addVnodes(s)
	r.sortRing()
	return nil
}

// RemoveServer removes a server; the ring must not become empty.
func (r *Ring) RemoveServer(s sched.ServerID) error {
	if !r.members[s] {
		return fmt.Errorf("topology: server %d not in ring", s)
	}
	if len(r.members) == 1 {
		return errors.New("topology: cannot remove the last server")
	}
	delete(r.members, s)
	hashes := r.hashes[:0]
	owners := r.owners[:0]
	for i, o := range r.owners {
		if o != s {
			hashes = append(hashes, r.hashes[i])
			owners = append(owners, o)
		}
	}
	r.hashes, r.owners = hashes, owners
	return nil
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	// FNV-1a avalanches poorly on short, similar strings (our vnode
	// labels), which skews arc lengths badly; finish with the
	// MurmurHash3 fmix64 finalizer to spread the bits.
	return fmix64(h.Sum64())
}

func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
