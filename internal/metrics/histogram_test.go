package metrics

import (
	"math"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/dist"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 16)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 16)
	for _, v := range []time.Duration{time.Millisecond, 3 * time.Millisecond} {
		h.Observe(v)
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("Mean = %v, want 2ms", h.Mean())
	}
}

func TestHistogramQuantileBoundedError(t *testing.T) {
	h := NewHistogram(10*time.Microsecond, 10*time.Second, 32)
	rng := dist.NewRand(7)
	d := dist.Exponential{M: 5 * time.Millisecond}
	s := NewSummary(0)
	for i := 0; i < 50000; i++ {
		v := d.Sample(rng)
		h.Observe(v)
		s.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := float64(s.Quantile(q))
		approx := float64(h.Quantile(q))
		if exact == 0 {
			continue
		}
		if math.Abs(approx-exact)/exact > 0.10 {
			t.Fatalf("q=%v: histogram %v vs exact %v (>10%% error)",
				q, time.Duration(approx), time.Duration(exact))
		}
	}
}

func TestHistogramOverflowClamped(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Millisecond, 8)
	h.Observe(time.Hour)
	if h.Overflow() != 1 {
		t.Fatalf("Overflow = %d, want 1", h.Overflow())
	}
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if q := h.Quantile(1); q > 2*time.Millisecond {
		// Clamped into last bucket; upper edge is near the range top.
		t.Fatalf("Quantile(1) = %v, want clamped near 1ms", q)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 16)
	h.Observe(-time.Second)
	if h.Count() != 1 {
		t.Fatal("negative observation should still count")
	}
	if h.Mean() != 0 {
		t.Fatalf("Mean = %v, want 0", h.Mean())
	}
}

func TestHistogramDefaults(t *testing.T) {
	h := NewHistogram(0, 0, 0) // all defaulted
	h.Observe(time.Millisecond)
	if h.Count() != 1 {
		t.Fatal("defaulted histogram should accept observations")
	}
}

func TestHistogramQuantileClampsQ(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 16)
	h.Observe(time.Millisecond)
	if h.Quantile(-1) == 0 || h.Quantile(2) == 0 {
		t.Fatal("out-of-range q should clamp, not zero")
	}
}
