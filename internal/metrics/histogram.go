package metrics

import (
	"math"
	"time"
)

// Histogram is a fixed-memory logarithmic latency histogram in the style
// of HDR histograms: buckets grow geometrically from Smallest so that the
// relative quantile error is bounded by the per-octave subdivision.
type Histogram struct {
	smallest   time.Duration
	growth     float64
	buckets    []uint64
	count      uint64
	sum        time.Duration
	max        time.Duration
	overflow   uint64
	maxTracked time.Duration
}

// NewHistogram covers [smallest, largest] with the given number of
// buckets per factor-of-two; 16 sub-buckets bounds quantile error to
// about 4%.
func NewHistogram(smallest, largest time.Duration, perOctave int) *Histogram {
	if smallest <= 0 {
		smallest = time.Microsecond
	}
	if largest < smallest {
		largest = smallest * 2
	}
	if perOctave <= 0 {
		perOctave = 16
	}
	growth := math.Pow(2, 1/float64(perOctave))
	n := int(math.Ceil(math.Log(float64(largest)/float64(smallest))/math.Log(growth))) + 1
	return &Histogram{
		smallest:   smallest,
		growth:     growth,
		buckets:    make([]uint64, n),
		maxTracked: largest,
	}
}

func (h *Histogram) index(v time.Duration) int {
	if v <= h.smallest {
		return 0
	}
	i := int(math.Log(float64(v)/float64(h.smallest)) / math.Log(h.growth))
	if i >= len(h.buckets) {
		return len(h.buckets) - 1
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v time.Duration) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v > h.maxTracked {
		h.overflow++
	}
	h.buckets[h.index(v)]++
}

// Max returns the exact largest observation (0 when empty) — unlike
// quantiles it is not subject to bucket rounding, so tail readouts
// (p999/max) can distinguish "one 2s straggler" from "a 2s bucket".
func (h *Histogram) Max() time.Duration { return h.max }

// Merge folds other into h. Both histograms must share a bucket layout
// (same smallest bound and per-octave subdivision — i.e. built by the
// same NewHistogram call site); Merge panics otherwise, since silently
// misfiling another layout's buckets would corrupt every quantile. It
// is the aggregation step for sharded histograms: concurrent writers
// each own one, a reader merges into a scratch copy.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.smallest != other.smallest || h.growth != other.growth || len(h.buckets) != len(other.buckets) {
		panic("metrics: Merge of histograms with different bucket layouts")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	h.overflow += other.overflow
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Overflow returns how many observations exceeded the tracked range
// (they are clamped into the last bucket).
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Mean returns the exact running mean.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile returns an estimate of the q-quantile using the upper edge of
// the bucket containing the target rank.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return h.upperEdge(i)
		}
	}
	return h.upperEdge(len(h.buckets) - 1)
}

func (h *Histogram) upperEdge(i int) time.Duration {
	return time.Duration(float64(h.smallest) * math.Pow(h.growth, float64(i+1)))
}

// HistogramBucket is one cumulative exposition bucket: Count
// observations were <= UpperBound (Prometheus "le" semantics).
type HistogramBucket struct {
	UpperBound time.Duration
	Count      uint64
}

// HistogramSnapshot is an export-ready copy of a histogram: cumulative
// non-empty buckets, total observation count, and exact sum. It is a
// value type — safe to hand across goroutines once taken.
type HistogramSnapshot struct {
	Buckets []HistogramBucket
	Count   uint64
	Sum     time.Duration
}

// Mean returns the snapshot's exact mean (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile from the cumulative buckets, using
// each bucket's upper edge (the same bound the live histogram reports).
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	for _, b := range s.Buckets {
		if b.Count >= target {
			return b.UpperBound
		}
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// Max returns the highest bucket edge that saw observations — an upper
// estimate of the true maximum (0 when empty).
func (s HistogramSnapshot) Max() time.Duration {
	if len(s.Buckets) == 0 {
		return 0
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// Snapshot copies the histogram into exposition form. Only buckets
// whose cumulative count changed are emitted, so a sparse histogram
// stays small on the wire; the implicit +Inf bucket (written by
// Expo.Histogram) equals Count. The caller must serialize Snapshot
// against concurrent Observe calls.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{Count: h.count, Sum: h.sum}
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += c
		snap.Buckets = append(snap.Buckets, HistogramBucket{
			UpperBound: h.upperEdge(i),
			Count:      cum,
		})
	}
	return snap
}
