// Package metrics provides the measurement machinery for simulations and
// the live store: streaming moment accumulators, percentile reservoirs,
// logarithmic latency histograms, windowed time series, lock-free event
// counters, and a dependency-free Prometheus text-exposition writer
// (Expo) with a structural linter (LintExposition) that CI runs against
// live scrapes.
//
// The live server's metric families built on this package are documented
// in docs/OBSERVABILITY.md.
package metrics

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"
)

// Summary accumulates durations with Welford's online algorithm for mean
// and variance plus a bounded uniform reservoir for percentiles. Not safe
// for concurrent use; wrap with a mutex or use one per goroutine.
type Summary struct {
	count    uint64
	mean     float64
	m2       float64
	min, max time.Duration

	cap  int
	res  []time.Duration
	rng  *rand.Rand
	sort bool // res is sorted (cached)
}

// DefaultReservoirSize bounds percentile-reservoir memory; below this
// count percentiles are exact.
const DefaultReservoirSize = 100_000

// NewSummary returns a summary with the given reservoir capacity
// (DefaultReservoirSize if cap <= 0). Percentiles are exact until the
// reservoir fills, then estimated by uniform sampling.
func NewSummary(capacity int) *Summary {
	if capacity <= 0 {
		capacity = DefaultReservoirSize
	}
	return &Summary{
		cap: capacity,
		res: make([]time.Duration, 0, min(capacity, 1024)),
		rng: rand.New(rand.NewPCG(0x5ca1ab1e, 0xdeadbeef)),
		min: math.MaxInt64,
	}
}

// Observe records one value.
func (s *Summary) Observe(v time.Duration) {
	s.count++
	delta := float64(v) - s.mean
	s.mean += delta / float64(s.count)
	s.m2 += delta * (float64(v) - s.mean)
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.sort = false
	if len(s.res) < s.cap {
		s.res = append(s.res, v)
		return
	}
	// Vitter's algorithm R.
	if j := s.rng.Uint64N(s.count); j < uint64(s.cap) {
		s.res[j] = v
	}
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 { return s.count }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() time.Duration { return time.Duration(s.mean) }

// Stddev returns the sample standard deviation (0 for fewer than two
// observations).
func (s *Summary) Stddev() time.Duration {
	if s.count < 2 {
		return 0
	}
	return time.Duration(math.Sqrt(s.m2 / float64(s.count-1)))
}

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() time.Duration {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation.
func (s *Summary) Max() time.Duration { return s.max }

// Quantile returns the q-quantile (0 <= q <= 1) from the reservoir using
// nearest-rank interpolation. Returns 0 when empty.
func (s *Summary) Quantile(q float64) time.Duration {
	if len(s.res) == 0 {
		return 0
	}
	if !s.sort {
		sort.Slice(s.res, func(i, j int) bool { return s.res[i] < s.res[j] })
		s.sort = true
	}
	if q <= 0 {
		return s.res[0]
	}
	if q >= 1 {
		return s.res[len(s.res)-1]
	}
	pos := q * float64(len(s.res)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.res[lo]
	}
	frac := pos - float64(lo)
	return s.res[lo] + time.Duration(frac*float64(s.res[hi]-s.res[lo]))
}

// P50, P95, P99 are the common report percentiles.
func (s *Summary) P50() time.Duration { return s.Quantile(0.50) }

// P95 returns the 95th percentile.
func (s *Summary) P95() time.Duration { return s.Quantile(0.95) }

// P99 returns the 99th percentile.
func (s *Summary) P99() time.Duration { return s.Quantile(0.99) }

// CDF returns (value, cumulative-fraction) pairs at the given number of
// evenly spaced quantiles, suitable for plotting the RCT CDF figure.
func (s *Summary) CDF(points int) []CDFPoint {
	if points < 2 || len(s.res) == 0 {
		return nil
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		q := float64(i) / float64(points-1)
		out = append(out, CDFPoint{Fraction: q, Value: s.Quantile(q)})
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Fraction float64
	Value    time.Duration
}

// String renders a one-line report.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.count, s.Mean(), s.P50(), s.P95(), s.P99(), s.Max())
}
