package metrics

import "sync/atomic"

// Counter is a monotonically increasing event count, safe for
// concurrent use. The zero value is ready; embed it by value and take
// its address to observe.
type Counter struct{ v atomic.Uint64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }
