package metrics

import (
	"testing"
	"time"
)

func TestTimeSeriesBuckets(t *testing.T) {
	ts := NewTimeSeries(time.Second, 10*time.Second)
	ts.Observe(500*time.Millisecond, 10*time.Millisecond)
	ts.Observe(700*time.Millisecond, 20*time.Millisecond)
	ts.Observe(2500*time.Millisecond, 40*time.Millisecond)
	pts := ts.Points()
	if len(pts) != 2 {
		t.Fatalf("len(Points) = %d, want 2", len(pts))
	}
	if pts[0].Start != 0 || pts[0].Mean != 15*time.Millisecond || pts[0].Count != 2 {
		t.Fatalf("window 0 = %+v", pts[0])
	}
	if pts[1].Start != 2*time.Second || pts[1].Mean != 40*time.Millisecond {
		t.Fatalf("window 2 = %+v", pts[1])
	}
}

func TestTimeSeriesClampsOutOfRange(t *testing.T) {
	ts := NewTimeSeries(time.Second, 2*time.Second)
	ts.Observe(time.Hour, time.Millisecond)
	ts.Observe(-time.Second, 3*time.Millisecond)
	pts := ts.Points()
	if len(pts) != 2 {
		t.Fatalf("len(Points) = %d, want 2 (first and last windows)", len(pts))
	}
}

func TestTimeSeriesDefaults(t *testing.T) {
	ts := NewTimeSeries(0, 0)
	ts.Observe(0, time.Millisecond)
	if got := ts.Window(); got != time.Second {
		t.Fatalf("Window = %v, want default 1s", got)
	}
	if len(ts.Points()) != 1 {
		t.Fatal("defaulted series should hold the observation")
	}
}
