package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestExpoGolden(t *testing.T) {
	var sb strings.Builder
	e := NewExpo(&sb)
	e.Family("x_total", "A counter.", "counter")
	e.IntSample("x_total", []Label{{Name: "op", Value: "get"}}, 3)
	e.IntSample("x_total", []Label{{Name: "op", Value: "put"}}, 1)
	e.Family("x_total", "redeclared — must be dropped", "counter")
	e.Family("g", "A gauge.", "gauge")
	e.Sample("g", nil, 0.25)
	if err := e.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	want := "# HELP x_total A counter.\n" +
		"# TYPE x_total counter\n" +
		`x_total{op="get"} 3` + "\n" +
		`x_total{op="put"} 1` + "\n" +
		"# HELP g A gauge.\n" +
		"# TYPE g gauge\n" +
		"g 0.25\n"
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExpoLabelEscaping(t *testing.T) {
	var sb strings.Builder
	e := NewExpo(&sb)
	e.Family("m", "has \\ and\nnewline", "gauge")
	e.Sample("m", []Label{{Name: "k", Value: "a\"b\\c\nd"}}, 1)
	out := sb.String()
	if !strings.Contains(out, `# HELP m has \\ and\nnewline`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `m{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if problems := LintExposition(strings.NewReader(out)); len(problems) > 0 {
		t.Fatalf("escaped exposition should lint clean: %v", problems)
	}
}

// TestExpoHistogramRoundTrip drives observations through a Histogram,
// exports the snapshot, and checks the exposition's cumulative-bucket
// invariants numerically.
func TestExpoHistogramRoundTrip(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 4)
	obs := []time.Duration{
		5 * time.Microsecond, 5 * time.Microsecond,
		300 * time.Microsecond, 40 * time.Millisecond, 2 * time.Second,
	}
	var sum time.Duration
	for _, d := range obs {
		h.Observe(d)
		sum += d
	}
	snap := h.Snapshot()
	if snap.Count != uint64(len(obs)) || snap.Sum != sum {
		t.Fatalf("snapshot count/sum = %d/%v, want %d/%v", snap.Count, snap.Sum, len(obs), sum)
	}
	prev := uint64(0)
	prevBound := time.Duration(-1)
	for _, b := range snap.Buckets {
		if b.Count < prev {
			t.Fatalf("bucket counts not cumulative: %v", snap.Buckets)
		}
		if b.UpperBound <= prevBound {
			t.Fatalf("bucket bounds not increasing: %v", snap.Buckets)
		}
		prev, prevBound = b.Count, b.UpperBound
	}

	var sb strings.Builder
	e := NewExpo(&sb)
	e.Family("lat_seconds", "Latency.", "histogram")
	e.Histogram("lat_seconds", []Label{{Name: "op", Value: "get"}}, snap)
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{op="get",le="+Inf"} 5`,
		`lat_seconds_count{op="get"} 5`,
		`lat_seconds_sum{op="get"} `,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram exposition missing %q:\n%s", want, out)
		}
	}
	if problems := LintExposition(strings.NewReader(out)); len(problems) > 0 {
		t.Fatalf("histogram exposition should lint clean: %v\n%s", problems, out)
	}
}

func TestExpoSummary(t *testing.T) {
	s := NewSummary(0)
	for i := 1; i <= 100; i++ {
		s.Observe(time.Duration(i) * time.Millisecond)
	}
	var sb strings.Builder
	e := NewExpo(&sb)
	e.Family("err_seconds", "Error.", "summary")
	e.Summary("err_seconds", nil, s, 0.5, 0.99)
	out := sb.String()
	for _, want := range []string{
		`err_seconds{quantile="0.5"}`,
		`err_seconds{quantile="0.99"}`,
		"err_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary exposition missing %q:\n%s", want, out)
		}
	}
	if problems := LintExposition(strings.NewReader(out)); len(problems) > 0 {
		t.Fatalf("summary exposition should lint clean: %v\n%s", problems, out)
	}
}

func TestLintExpositionFindsProblems(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"duplicate series",
			"# TYPE a counter\na 1\na 2\n", "duplicate series"},
		{"untyped series",
			"b 1\n", "untyped series"},
		{"duplicate TYPE",
			"# TYPE a counter\n# TYPE a counter\na 1\n", "duplicate TYPE"},
		{"malformed TYPE",
			"# TYPE a\n", "malformed TYPE"},
		{"unknown type",
			"# TYPE a zebra\na 1\n", "unknown metric type"},
		{"unparseable value",
			"# TYPE a gauge\na one\n", "unparseable value"},
		{"summary must not have buckets",
			"# TYPE a summary\na_bucket{le=\"1\"} 1\n", "untyped series"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := LintExposition(strings.NewReader(tc.in))
			found := false
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want problem containing %q, got %v", tc.want, problems)
			}
		})
	}
	clean := "# TYPE h histogram\n" +
		"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.3\nh_count 2\n" +
		"# TYPE s summary\ns{quantile=\"0.5\"} 0.1\ns_sum 0.2\ns_count 2\n" +
		"# TYPE spaced gauge\nspaced{k=\"a b{c\"} 1\n"
	if problems := LintExposition(strings.NewReader(clean)); len(problems) > 0 {
		t.Fatalf("clean exposition flagged: %v", problems)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	for in, want := range map[string]string{
		"plain":      "plain",
		`back\slash`: `back\\slash`,
		`"quoted"`:   `\"quoted\"`,
		"new\nline":  `new\nline`,
	} {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExpoCountHistogram(t *testing.T) {
	// A histogram of counts (batch sizes), not durations: observations
	// are raw integers smuggled through the Duration-typed API.
	h := NewHistogram(1, 4096, 4)
	for _, n := range []int{1, 1, 3, 17, 200} {
		h.Observe(time.Duration(n))
	}
	var sb strings.Builder
	e := NewExpo(&sb)
	e.Family("batch_records", "Batch sizes.", "histogram")
	e.CountHistogram("batch_records", []Label{{Name: "server", Value: "0"}}, h.Snapshot())
	out := sb.String()
	for _, want := range []string{
		`batch_records_bucket{server="0",le="+Inf"} 5`,
		`batch_records_count{server="0"} 5`,
		`batch_records_sum{server="0"} 222`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("count-histogram exposition missing %q:\n%s", want, out)
		}
	}
	// Bounds are raw numbers, never seconds: no bound below 1 may
	// appear (the seconds conversion would have produced e-06 bounds).
	if strings.Contains(out, "e-0") {
		t.Fatalf("count-histogram bounds look like seconds:\n%s", out)
	}
	if problems := LintExposition(strings.NewReader(out)); len(problems) > 0 {
		t.Fatalf("count-histogram exposition should lint clean: %v\n%s", problems, out)
	}
}

func TestHistogramSnapshotSummaryHelpers(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 4)
	for _, d := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 100 * time.Millisecond,
	} {
		h.Observe(d)
	}
	snap := h.Snapshot()
	if got, want := snap.Mean(), 22*time.Millisecond; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	p50 := snap.Quantile(0.5)
	if p50 < 2*time.Millisecond || p50 > 4*time.Millisecond {
		t.Fatalf("P50 = %v, want about 3ms", p50)
	}
	if max := snap.Max(); max < 100*time.Millisecond {
		t.Fatalf("Max = %v, want >= 100ms", max)
	}
	var empty HistogramSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.99) != 0 || empty.Max() != 0 {
		t.Fatal("empty snapshot helpers must return 0")
	}
}
