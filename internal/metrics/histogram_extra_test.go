package metrics

import (
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 16)
	// Values at and below the smallest land in bucket 0.
	h.Observe(0)
	h.Observe(time.Microsecond)
	if got := h.Quantile(0.5); got > 2*time.Microsecond {
		t.Fatalf("Quantile(0.5) = %v, want within the first bucket's edge", got)
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 16)
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
	}
	prev := time.Duration(0)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at %v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestTimeSeriesWindowAccessor(t *testing.T) {
	ts := NewTimeSeries(250*time.Millisecond, time.Second)
	if ts.Window() != 250*time.Millisecond {
		t.Fatalf("Window = %v", ts.Window())
	}
}
