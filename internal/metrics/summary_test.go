package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/daskv/daskv/internal/dist"
)

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary(0)
	if s.Count() != 0 || s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary should report zeros")
	}
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	if s.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestSummaryBasicStats(t *testing.T) {
	s := NewSummary(0)
	for _, v := range []time.Duration{1, 2, 3, 4, 5} {
		s.Observe(v * time.Millisecond)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
	if s.Mean() != 3*time.Millisecond {
		t.Fatalf("Mean = %v, want 3ms", s.Mean())
	}
	if s.Min() != time.Millisecond || s.Max() != 5*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Sample stddev of 1..5 ms is sqrt(2.5) ms.
	want := time.Duration(math.Sqrt(2.5) * float64(time.Millisecond))
	if d := s.Stddev() - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("Stddev = %v, want ~%v", s.Stddev(), want)
	}
}

func TestSummaryExactQuantilesSmall(t *testing.T) {
	s := NewSummary(0)
	for i := 1; i <= 100; i++ {
		s.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := s.Quantile(0); got != time.Millisecond {
		t.Fatalf("Q(0) = %v, want 1ms", got)
	}
	if got := s.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("Q(1) = %v, want 100ms", got)
	}
	if got := s.P50(); got < 50*time.Millisecond || got > 51*time.Millisecond {
		t.Fatalf("P50 = %v, want ~50.5ms", got)
	}
	if got := s.P99(); got < 99*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("P99 = %v, want ~99ms", got)
	}
}

func TestSummaryReservoirSampling(t *testing.T) {
	s := NewSummary(1000)
	rng := dist.NewRand(3)
	d := dist.Exponential{M: time.Millisecond}
	const n = 200000
	for i := 0; i < n; i++ {
		s.Observe(d.Sample(rng))
	}
	if s.Count() != n {
		t.Fatalf("Count = %d, want %d", s.Count(), n)
	}
	// p50 of exp(1ms) is ln(2) ms ~ 0.693ms; reservoir estimate should
	// be in the ballpark.
	p50 := float64(s.P50())
	want := math.Ln2 * float64(time.Millisecond)
	if math.Abs(p50-want)/want > 0.15 {
		t.Fatalf("reservoir P50 = %v, want ~%v", s.P50(), time.Duration(want))
	}
	// Mean is exact regardless of reservoir.
	if mean := float64(s.Mean()); math.Abs(mean-float64(time.Millisecond))/float64(time.Millisecond) > 0.02 {
		t.Fatalf("Mean = %v, want ~1ms", s.Mean())
	}
}

func TestSummaryCDFMonotone(t *testing.T) {
	s := NewSummary(0)
	rng := dist.NewRand(5)
	for i := 0; i < 10000; i++ {
		s.Observe(dist.Exponential{M: time.Millisecond}.Sample(rng))
	}
	cdf := s.CDF(50)
	if len(cdf) != 50 {
		t.Fatalf("len(CDF) = %d, want 50", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value {
			t.Fatalf("CDF values not monotone at %d", i)
		}
		if cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatalf("CDF fractions not increasing at %d", i)
		}
	}
}

func TestSummaryQuantileOrderedQuick(t *testing.T) {
	f := func(seed uint64) bool {
		s := NewSummary(0)
		rng := dist.NewRand(seed)
		for i := 0; i < 500; i++ {
			s.Observe(time.Duration(rng.Int64N(int64(time.Second))))
		}
		return s.Quantile(0.1) <= s.Quantile(0.5) &&
			s.Quantile(0.5) <= s.Quantile(0.9) &&
			s.Quantile(0.9) <= s.Max() &&
			s.Min() <= s.Quantile(0.1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSummary(0)
	s.Observe(time.Millisecond)
	if got := s.String(); got == "" {
		t.Fatal("String should not be empty")
	}
}
