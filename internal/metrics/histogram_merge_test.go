package metrics

import (
	"testing"
	"time"
)

func TestHistogramExactMax(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 16)
	if h.Max() != 0 {
		t.Fatalf("empty Max = %v, want 0", h.Max())
	}
	h.Observe(3 * time.Millisecond)
	h.Observe(1537 * time.Microsecond)
	h.Observe(200 * time.Microsecond)
	if h.Max() != 3*time.Millisecond {
		t.Fatalf("Max = %v, want exactly 3ms", h.Max())
	}
	// Exact even past the tracked range (the bucket clamps, max does not).
	h.Observe(7 * time.Second)
	if h.Max() != 7*time.Second {
		t.Fatalf("Max = %v, want exactly 7s", h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	mk := func() *Histogram { return NewHistogram(time.Microsecond, time.Second, 16) }
	a, b, whole := mk(), mk(), mk()
	samples := []time.Duration{
		50 * time.Microsecond, 400 * time.Microsecond, 3 * time.Millisecond,
		9 * time.Millisecond, 120 * time.Millisecond, 800 * time.Millisecond,
		2 * time.Second, // overflow
	}
	for i, v := range samples {
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		whole.Observe(v)
	}
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), whole.Count())
	}
	if a.Mean() != whole.Mean() {
		t.Fatalf("merged mean %v, want %v", a.Mean(), whole.Mean())
	}
	if a.Max() != whole.Max() {
		t.Fatalf("merged max %v, want %v", a.Max(), whole.Max())
	}
	if a.Overflow() != whole.Overflow() {
		t.Fatalf("merged overflow %d, want %d", a.Overflow(), whole.Overflow())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merged q%.3f = %v, want %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 16)
	h.Observe(time.Millisecond)
	h.Merge(nil)
	h.Merge(NewHistogram(time.Microsecond, time.Second, 16))
	if h.Count() != 1 {
		t.Fatalf("count %d after no-op merges, want 1", h.Count())
	}
}

func TestHistogramMergeLayoutMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging different layouts should panic")
		}
	}()
	a := NewHistogram(time.Microsecond, time.Second, 16)
	b := NewHistogram(time.Microsecond, time.Second, 4)
	b.Observe(time.Millisecond)
	a.Merge(b)
}
