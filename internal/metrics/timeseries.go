package metrics

import "time"

// TimeSeries buckets observations into fixed windows and reports the
// per-window mean, used for the time-varying-load figure where mean RCT
// is plotted over simulation time.
type TimeSeries struct {
	window  time.Duration
	sums    []float64
	counts  []uint64
	horizon time.Duration
}

// NewTimeSeries covers [0, horizon) with windows of the given width.
func NewTimeSeries(window, horizon time.Duration) *TimeSeries {
	if window <= 0 {
		window = time.Second
	}
	n := int(horizon/window) + 1
	if n < 1 {
		n = 1
	}
	return &TimeSeries{
		window:  window,
		sums:    make([]float64, n),
		counts:  make([]uint64, n),
		horizon: horizon,
	}
}

// Observe records a value at virtual time t. Out-of-range times clamp to
// the last window.
func (ts *TimeSeries) Observe(t time.Duration, v time.Duration) {
	i := int(t / ts.window)
	if i < 0 {
		i = 0
	}
	if i >= len(ts.sums) {
		i = len(ts.sums) - 1
	}
	ts.sums[i] += float64(v)
	ts.counts[i]++
}

// Window returns the configured window width.
func (ts *TimeSeries) Window() time.Duration { return ts.window }

// Points returns one (start-time, mean, count) tuple per non-empty
// window in time order.
type TimePoint struct {
	Start time.Duration
	Mean  time.Duration
	Count uint64
}

// Points returns the series.
func (ts *TimeSeries) Points() []TimePoint {
	out := make([]TimePoint, 0, len(ts.sums))
	for i := range ts.sums {
		if ts.counts[i] == 0 {
			continue
		}
		out = append(out, TimePoint{
			Start: time.Duration(i) * ts.window,
			Mean:  time.Duration(ts.sums[i] / float64(ts.counts[i])),
			Count: ts.counts[i],
		})
	}
	return out
}
