package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ExpositionContentType is the Content-Type of the Prometheus text
// exposition format this package emits.
const ExpositionContentType = "text/plain; version=0.0.4"

// Label is one name="value" pair attached to an exposition sample.
// Values are escaped on output; names must be valid Prometheus label
// names (the writer does not validate them).
type Label struct {
	Name  string
	Value string
}

// Expo writes the Prometheus text exposition format (version 0.0.4):
// HELP/TYPE headers, escaped labels, and the bucket/sum/count triplet
// expansion for histograms and summaries. It exists so the live store
// can export real metric families without an external client library;
// LintExposition checks the invariants scrapers rely on.
//
// Usage: declare each family once with Family, then emit its samples.
// Errors on the underlying writer are latched; check Err once at the
// end. Not safe for concurrent use.
type Expo struct {
	w        io.Writer
	err      error
	declared map[string]string // family -> type
}

// NewExpo returns an exposition writer over w.
func NewExpo(w io.Writer) *Expo {
	return &Expo{w: w, declared: make(map[string]string)}
}

// Err returns the first write error encountered, if any.
func (e *Expo) Err() error { return e.err }

func (e *Expo) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Family declares one metric family: its HELP and TYPE lines. typ is
// one of "counter", "gauge", "histogram", "summary", "untyped".
// Redeclaring a family is a no-op so callers can emit per-entity loops
// without tracking what they already declared.
func (e *Expo) Family(name, help, typ string) {
	if _, ok := e.declared[name]; ok {
		return
	}
	e.declared[name] = typ
	e.printf("# HELP %s %s\n", name, escapeHelp(help))
	e.printf("# TYPE %s %s\n", name, typ)
}

// Sample emits one sample line: name{labels} value.
func (e *Expo) Sample(name string, labels []Label, value float64) {
	e.printf("%s%s %s\n", name, formatLabels(labels), formatFloat(value))
}

// IntSample emits one sample line with an integer value (counters and
// discrete gauges render without an exponent).
func (e *Expo) IntSample(name string, labels []Label, value uint64) {
	e.printf("%s%s %d\n", name, formatLabels(labels), value)
}

// Histogram expands one histogram snapshot into the conventional
// cumulative series: name_bucket{...,le="u"} lines for every non-empty
// bucket plus the +Inf bucket, then name_sum and name_count. Bucket
// bounds and the sum are converted to seconds, the unit Prometheus
// histograms conventionally carry. The family must have been declared
// with type "histogram".
func (e *Expo) Histogram(name string, labels []Label, snap HistogramSnapshot) {
	for _, b := range snap.Buckets {
		bl := append(append([]Label(nil), labels...),
			Label{Name: "le", Value: formatFloat(b.UpperBound.Seconds())})
		e.IntSample(name+"_bucket", bl, b.Count)
	}
	inf := append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"})
	e.IntSample(name+"_bucket", inf, snap.Count)
	e.Sample(name+"_sum", labels, snap.Sum.Seconds())
	e.IntSample(name+"_count", labels, snap.Count)
}

// CountHistogram expands a histogram snapshot whose observations are
// unit-less counts (e.g. group-commit batch sizes): bucket bounds and
// the sum are emitted as raw numbers, not converted to seconds the way
// Histogram does for latency distributions.
func (e *Expo) CountHistogram(name string, labels []Label, snap HistogramSnapshot) {
	for _, b := range snap.Buckets {
		bl := append(append([]Label(nil), labels...),
			Label{Name: "le", Value: formatFloat(float64(b.UpperBound))})
		e.IntSample(name+"_bucket", bl, b.Count)
	}
	inf := append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"})
	e.IntSample(name+"_bucket", inf, snap.Count)
	e.Sample(name+"_sum", labels, float64(snap.Sum))
	e.IntSample(name+"_count", labels, snap.Count)
}

// Summary expands a quantile summary: name{...,quantile="q"} lines for
// the given quantiles plus name_sum and name_count, in seconds. The
// family must have been declared with type "summary". quantile
// extraction runs against the summary's reservoir, so pass a stable
// snapshot (hold the owner's lock while calling).
func (e *Expo) Summary(name string, labels []Label, s *Summary, quantiles ...float64) {
	for _, q := range quantiles {
		ql := append(append([]Label(nil), labels...),
			Label{Name: "quantile", Value: formatFloat(q)})
		e.Sample(name, ql, s.Quantile(q).Seconds())
	}
	sum := float64(s.Mean()) * float64(s.Count()) / float64(time.Second)
	e.Sample(name+"_sum", labels, sum)
	e.IntSample(name+"_count", labels, s.Count())
}

// formatLabels renders {a="x",b="y"} ("" when empty).
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// EscapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// LintExposition checks a text exposition for the mistakes that break
// scrapers silently: duplicate series (same name and label set emitted
// twice), samples whose family has no TYPE declaration, duplicate or
// malformed TYPE lines, and unparseable sample values. It returns one
// human-readable problem per finding (empty = clean). CI's
// metrics-smoke step runs it against a live /metrics scrape via
// cmd/kvmetricslint; the exposition golden test runs it in-process.
func LintExposition(r io.Reader) []string {
	var problems []string
	types := make(map[string]string)
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				problems = append(problems, fmt.Sprintf("line %d: malformed TYPE line %q", lineNo, line))
				continue
			}
			name, typ := fields[2], fields[3]
			if _, dup := types[name]; dup {
				problems = append(problems, fmt.Sprintf("line %d: duplicate TYPE declaration for %s", lineNo, name))
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				problems = append(problems, fmt.Sprintf("line %d: unknown metric type %q for %s", lineNo, typ, name))
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") || strings.TrimSpace(line) == "" {
			continue
		}
		series, value, ok := splitSample(line)
		if !ok {
			problems = append(problems, fmt.Sprintf("line %d: malformed sample %q", lineNo, line))
			continue
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			problems = append(problems, fmt.Sprintf("line %d: unparseable value %q", lineNo, value))
		}
		if seen[series] {
			problems = append(problems, fmt.Sprintf("line %d: duplicate series %s", lineNo, series))
		}
		seen[series] = true
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if familyOf(name, types) == "" {
			problems = append(problems, fmt.Sprintf("line %d: untyped series %s (no TYPE for its family)", lineNo, name))
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("read: %v", err))
	}
	return problems
}

// splitSample splits a sample line into its series (name plus label
// set) and value text. Timestamps (a third field) are accepted and
// ignored.
func splitSample(line string) (series, value string, ok bool) {
	// The value starts after the space that follows the name or the
	// closing brace; label values may themselves contain spaces.
	end := 0
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line[i:], '}')
		if j < 0 {
			return "", "", false
		}
		end = i + j + 1
	} else if i := strings.IndexByte(line, ' '); i >= 0 {
		end = i
	} else {
		return "", "", false
	}
	series = line[:end]
	rest := strings.Fields(line[end:])
	if len(rest) < 1 || len(rest) > 2 {
		return "", "", false
	}
	return series, rest[0], true
}

// familyOf resolves a sample name to its declared family, honoring the
// _bucket/_sum/_count expansions of histograms and summaries.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		switch types[base] {
		case "histogram":
			return base
		case "summary":
			if suffix != "_bucket" {
				return base
			}
		}
	}
	return ""
}
