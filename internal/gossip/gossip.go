// Package gossip implements SWIM-style cluster membership: each node
// probes a peer every interval over UDP (falling back to indirect
// ping-req probes through witnesses), marks unresponsive peers Suspect,
// and declares them Dead if the suspicion timeout passes without the
// peer refuting by re-asserting itself at a higher incarnation number.
// Every message piggybacks the sender's full member table, so verdicts
// disseminate epidemically without a separate broadcast channel.
//
// The package is the control plane behind the dynamic vnode ring in
// internal/topology: the Agent's OnChange callback fires with a fresh
// membership snapshot whenever the routable set changes, and the kv
// server reconciles the ring from it. Data-plane addresses ride along
// in each Member's DataAddr field so joiners learn where to stream from.
package gossip

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// Config configures an Agent. ID, BindAddr and DataAddr are required.
type Config struct {
	// ID is this node's identity on the cluster ring.
	ID sched.ServerID
	// BindAddr is the UDP address to listen on ("127.0.0.1:7946";
	// port 0 picks an ephemeral port).
	BindAddr string
	// AdvertiseAddr is the gossip address other nodes should dial.
	// Defaults to the bound address.
	AdvertiseAddr string
	// DataAddr is this node's data-plane TCP address, disseminated so
	// peers (and joining nodes) know where to reach the kv server.
	DataAddr string
	// Seeds are gossip addresses of existing members to contact on Join.
	Seeds []string

	// ProbeInterval is how often the failure detector probes one peer
	// (default 250ms).
	ProbeInterval time.Duration
	// AckTimeout is how long a direct probe waits for an ack before
	// falling back to indirect probes (default ProbeInterval/3).
	AckTimeout time.Duration
	// SuspicionTimeout is how long a Suspect member has to refute before
	// being declared Dead (default 6x ProbeInterval).
	SuspicionTimeout time.Duration
	// DeadRetention is how long Dead/Left entries stay in the table for
	// dissemination before being purged (default 20x SuspicionTimeout).
	DeadRetention time.Duration
	// IndirectProbes is how many witnesses a failed direct probe is
	// retried through (default 2).
	IndirectProbes int
	// Fanout is how many random peers a state change is pushed to
	// immediately, ahead of the regular probe schedule (default 3).
	Fanout int

	// OnChange, if set, is called from a single dedicated goroutine with
	// a full membership snapshot after any accepted state change. The
	// callback must not call back into the Agent's mutating methods.
	OnChange func([]Member)
	// Logf, if set, receives diagnostic messages.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = 250 * time.Millisecond
	}
	if out.AckTimeout <= 0 {
		out.AckTimeout = out.ProbeInterval / 3
	}
	if out.SuspicionTimeout <= 0 {
		out.SuspicionTimeout = 6 * out.ProbeInterval
	}
	if out.DeadRetention <= 0 {
		out.DeadRetention = 20 * out.SuspicionTimeout
	}
	if out.IndirectProbes <= 0 {
		out.IndirectProbes = 2
	}
	if out.Fanout <= 0 {
		out.Fanout = 3
	}
	return out
}

// Stats is a point-in-time counter snapshot for the metrics exposition.
type Stats struct {
	// Sent and Received count gossip datagrams.
	Sent, Received uint64
	// Refutations counts incarnation bumps made to override a false
	// suspicion or death verdict about this node.
	Refutations uint64
	// Incarnation is this node's current self-asserted epoch.
	Incarnation uint64
	// Members tallies the table by state.
	Members map[State]int
}

type kind string

const (
	kindPing    kind = "ping"
	kindAck     kind = "ack"
	kindPingReq kind = "ping-req"
)

// packet is the on-wire gossip message. JSON keeps the control plane
// debuggable (tcpdump + eyeballs); at a handful of small datagrams per
// probe interval the encoding cost is irrelevant next to the data plane.
type packet struct {
	Kind kind           `json:"kind"`
	From sched.ServerID `json:"from"`
	Seq  uint32         `json:"seq"`
	// TargetID/TargetAddr name the node to probe on behalf of the sender
	// (ping-req only).
	TargetID   sched.ServerID `json:"targetId,omitempty"`
	TargetAddr string         `json:"targetAddr,omitempty"`
	// Members piggybacks the sender's full table. Clusters this package
	// targets are small (units to tens of nodes), so the whole table
	// fits one datagram and full-state gossip converges in O(log n)
	// rounds without anti-entropy bookkeeping.
	Members []Member `json:"members,omitempty"`
}

// Agent is one node's gossip endpoint: a UDP listener, a probe loop and
// the merged membership table. Create with Start, stop with Close.
type Agent struct {
	cfg  Config
	conn *net.UDPConn

	mu   sync.Mutex
	tab  *table
	self Member // mirrored into tab; authoritative copy for incarnation bumps
	seq  uint32
	acks map[uint32]func() // seq -> callback run on matching ack
	left bool

	probeRot []sched.ServerID // shuffled probe order, consumed front-to-back

	sent        atomic.Uint64
	received    atomic.Uint64
	refutations atomic.Uint64

	events  chan struct{}
	stopped chan struct{}
	wg      sync.WaitGroup
}

// Start binds the UDP listener and launches the probe, read and event
// loops. The agent knows only itself until Join (or inbound gossip)
// populates the table.
func Start(cfg Config) (*Agent, error) {
	cfg = cfg.withDefaults()
	if cfg.BindAddr == "" {
		return nil, errors.New("gossip: BindAddr required")
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.BindAddr)
	if err != nil {
		return nil, fmt.Errorf("gossip: resolve bind addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("gossip: listen: %w", err)
	}
	if cfg.AdvertiseAddr == "" {
		cfg.AdvertiseAddr = conn.LocalAddr().String()
	}
	a := &Agent{
		cfg:     cfg,
		conn:    conn,
		tab:     newTable(),
		acks:    make(map[uint32]func()),
		events:  make(chan struct{}, 1),
		stopped: make(chan struct{}),
	}
	a.self = Member{
		ID:          cfg.ID,
		Addr:        cfg.AdvertiseAddr,
		DataAddr:    cfg.DataAddr,
		Incarnation: 1,
		State:       StateAlive,
	}
	a.tab.apply(a.self, time.Now())
	a.wg.Add(3)
	go a.readLoop()
	go a.probeLoop()
	go a.eventLoop()
	return a, nil
}

// Addr returns the agent's advertised gossip address (useful when bound
// to an ephemeral port).
func (a *Agent) Addr() string { return a.cfg.AdvertiseAddr }

// Join contacts the seed addresses; their acks carry the cluster's
// member table. It returns nil if at least one seed was reachable (or
// none were configured — a bootstrap node is its own cluster).
func (a *Agent) Join() error {
	if len(a.cfg.Seeds) == 0 {
		return nil
	}
	var ok bool
	for _, s := range a.cfg.Seeds {
		if a.pingWait(s, 4*a.cfg.AckTimeout) {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("gossip: no seed reachable among %v", a.cfg.Seeds)
	}
	return nil
}

// Leave broadcasts a graceful departure (StateLeft at a bumped
// incarnation) to every known member, then returns. The caller should
// Close afterwards; until then the agent keeps answering probes so the
// goodbye has time to disseminate.
func (a *Agent) Leave() {
	a.mu.Lock()
	a.left = true
	a.self.Incarnation++
	a.self.State = StateLeft
	a.tab.apply(a.self, time.Now())
	peers := a.tab.snapshot()
	pkt := a.packetLocked(kindPing)
	a.mu.Unlock()
	a.notify()
	for _, m := range peers {
		if m.ID == a.cfg.ID {
			continue
		}
		a.send(m.Addr, pkt)
	}
}

// Close shuts the agent down: the listener closes and all loops exit.
func (a *Agent) Close() error {
	select {
	case <-a.stopped:
		return nil
	default:
	}
	close(a.stopped)
	err := a.conn.Close()
	a.wg.Wait()
	return err
}

// Members returns the full table (all states), sorted by ID.
func (a *Agent) Members() []Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tab.snapshot()
}

// Routable returns the IDs that belong on the vnode ring right now
// (alive and suspect members), sorted.
func (a *Agent) Routable() []sched.ServerID {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tab.routable()
}

// Self returns this node's own current entry.
func (a *Agent) Self() Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.self
}

// SetReady flips this node's Ready flag (rebalance complete) and
// re-announces at a bumped incarnation so the change supersedes every
// older assertion in flight.
func (a *Agent) SetReady(ready bool) {
	a.mu.Lock()
	if a.self.Ready == ready {
		a.mu.Unlock()
		return
	}
	a.self.Incarnation++
	a.self.Ready = ready
	a.tab.apply(a.self, time.Now())
	peers := a.pushTargetsLocked()
	pkt := a.packetLocked(kindPing)
	a.mu.Unlock()
	a.notify()
	for _, addr := range peers {
		a.send(addr, pkt)
	}
}

// Stats returns a counter snapshot for the metrics exposition.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	members := a.tab.countByState()
	inc := a.self.Incarnation
	a.mu.Unlock()
	return Stats{
		Sent:        a.sent.Load(),
		Received:    a.received.Load(),
		Refutations: a.refutations.Load(),
		Incarnation: inc,
		Members:     members,
	}
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// notify schedules one OnChange delivery; coalesces bursts.
func (a *Agent) notify() {
	select {
	case a.events <- struct{}{}:
	default:
	}
}

func (a *Agent) eventLoop() {
	defer a.wg.Done()
	for {
		select {
		case <-a.stopped:
			return
		case <-a.events:
			if a.cfg.OnChange != nil {
				a.cfg.OnChange(a.Members())
			}
		}
	}
}

// ---- transport ----

func (a *Agent) send(addr string, pkt packet) {
	raw, err := json.Marshal(pkt)
	if err != nil {
		a.logf("gossip: marshal: %v", err)
		return
	}
	udp, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		a.logf("gossip: resolve %s: %v", addr, err)
		return
	}
	if _, err := a.conn.WriteToUDP(raw, udp); err != nil {
		select {
		case <-a.stopped:
		default:
			a.logf("gossip: send to %s: %v", addr, err)
		}
		return
	}
	a.sent.Add(1)
}

// packetLocked builds an outgoing packet carrying the full table.
// Callers hold a.mu.
func (a *Agent) packetLocked(k kind) packet {
	return packet{Kind: k, From: a.cfg.ID, Members: a.tab.snapshot()}
}

func (a *Agent) readLoop() {
	defer a.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, src, err := a.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-a.stopped:
				return
			default:
			}
			a.logf("gossip: read: %v", err)
			return
		}
		a.received.Add(1)
		var pkt packet
		if err := json.Unmarshal(buf[:n], &pkt); err != nil {
			a.logf("gossip: bad packet from %s: %v", src, err)
			continue
		}
		a.handle(pkt, src)
	}
}

func (a *Agent) handle(pkt packet, src *net.UDPAddr) {
	a.merge(pkt.Members)
	switch pkt.Kind {
	case kindPing:
		a.mu.Lock()
		reply := a.packetLocked(kindAck)
		reply.Seq = pkt.Seq
		a.mu.Unlock()
		a.send(src.String(), reply)
	case kindAck:
		a.mu.Lock()
		cb := a.acks[pkt.Seq]
		delete(a.acks, pkt.Seq)
		a.mu.Unlock()
		if cb != nil {
			cb()
		}
	case kindPingReq:
		// Probe the target on the requester's behalf: our own ping with a
		// fresh seq, whose ack forwards as an ack for the requester's seq.
		origSeq, requester := pkt.Seq, src.String()
		a.mu.Lock()
		a.seq++
		seq := a.seq
		probe := a.packetLocked(kindPing)
		probe.Seq = seq
		a.acks[seq] = func() {
			a.mu.Lock()
			fwd := a.packetLocked(kindAck)
			fwd.Seq = origSeq
			a.mu.Unlock()
			a.send(requester, fwd)
		}
		a.mu.Unlock()
		a.send(pkt.TargetAddr, probe)
		// Unregister quietly if the target never answers.
		time.AfterFunc(4*a.cfg.AckTimeout, func() {
			a.mu.Lock()
			delete(a.acks, seq)
			a.mu.Unlock()
		})
	}
}

// pingWait sends a direct ping to addr and waits up to timeout for the
// matching ack.
func (a *Agent) pingWait(addr string, timeout time.Duration) bool {
	done := make(chan struct{})
	a.mu.Lock()
	a.seq++
	seq := a.seq
	var once sync.Once
	a.acks[seq] = func() { once.Do(func() { close(done) }) }
	pkt := a.packetLocked(kindPing)
	pkt.Seq = seq
	a.mu.Unlock()
	a.send(addr, pkt)
	select {
	case <-done:
		return true
	case <-time.After(timeout):
	case <-a.stopped:
	}
	a.mu.Lock()
	delete(a.acks, seq)
	a.mu.Unlock()
	return false
}

// ---- failure detection ----

func (a *Agent) probeLoop() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.cfg.ProbeInterval)
	defer ticker.Stop()
	purgeEvery := 16
	tick := 0
	for {
		select {
		case <-a.stopped:
			return
		case <-ticker.C:
		}
		if m, ok := a.nextProbeTarget(); ok {
			go a.probe(m)
		}
		if tick++; tick%purgeEvery == 0 {
			a.mu.Lock()
			a.tab.purge(time.Now(), a.cfg.DeadRetention)
			a.mu.Unlock()
		}
	}
}

// nextProbeTarget walks a shuffled rotation of routable peers so every
// member is probed within one round-robin pass (SWIM's bounded-time
// detection property), reshuffling when the rotation is exhausted.
func (a *Agent) nextProbeTarget() (Member, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if len(a.probeRot) == 0 {
			ids := a.tab.routable()
			rot := make([]sched.ServerID, 0, len(ids))
			for _, id := range ids {
				if id != a.cfg.ID {
					rot = append(rot, id)
				}
			}
			rand.Shuffle(len(rot), func(i, j int) { rot[i], rot[j] = rot[j], rot[i] })
			a.probeRot = rot
			if len(rot) == 0 {
				return Member{}, false
			}
		}
		id := a.probeRot[0]
		a.probeRot = a.probeRot[1:]
		if e, ok := a.tab.members[id]; ok && e.State.routable() {
			return e.Member, true
		}
	}
}

func (a *Agent) probe(m Member) {
	if a.pingWait(m.Addr, a.cfg.AckTimeout) {
		return
	}
	// Direct probe failed; try through witnesses in case the loss was on
	// our own path to the target.
	witnesses := a.pickWitnesses(m.ID)
	if len(witnesses) > 0 {
		done := make(chan struct{})
		a.mu.Lock()
		a.seq++
		seq := a.seq
		var once sync.Once
		a.acks[seq] = func() { once.Do(func() { close(done) }) }
		req := a.packetLocked(kindPingReq)
		req.Seq = seq
		req.TargetID = m.ID
		req.TargetAddr = m.Addr
		a.mu.Unlock()
		for _, w := range witnesses {
			a.send(w.Addr, req)
		}
		select {
		case <-done:
			return
		case <-time.After(2 * a.cfg.AckTimeout):
		case <-a.stopped:
			return
		}
		a.mu.Lock()
		delete(a.acks, seq)
		a.mu.Unlock()
	}
	a.suspect(m)
}

func (a *Agent) pickWitnesses(target sched.ServerID) []Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	cands := make([]Member, 0, len(a.tab.members))
	for id, e := range a.tab.members {
		if id != a.cfg.ID && id != target && e.State.routable() {
			cands = append(cands, e.Member)
		}
	}
	rand.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > a.cfg.IndirectProbes {
		cands = cands[:a.cfg.IndirectProbes]
	}
	return cands
}

// suspect marks m Suspect at its current incarnation and starts the
// refutation clock. If the timeout passes with the member still suspect
// at that incarnation, it is declared Dead.
func (a *Agent) suspect(m Member) {
	a.mu.Lock()
	e, ok := a.tab.members[m.ID]
	if !ok || !e.State.routable() {
		a.mu.Unlock()
		return
	}
	u := e.Member
	u.State = StateSuspect
	accepted, _ := a.tab.apply(u, time.Now())
	var peers []string
	var pkt packet
	if accepted {
		a.logf("gossip: suspecting %d (incarnation %d)", u.ID, u.Incarnation)
		a.scheduleDeathLocked(u.ID, u.Incarnation)
		peers = a.pushTargetsLocked()
		pkt = a.packetLocked(kindPing)
	}
	a.mu.Unlock()
	if accepted {
		a.notify()
		for _, addr := range peers {
			a.send(addr, pkt)
		}
	}
}

// scheduleDeathLocked arms the suspicion timer for id at incarnation
// inc. Callers hold a.mu.
func (a *Agent) scheduleDeathLocked(id sched.ServerID, inc uint64) {
	time.AfterFunc(a.cfg.SuspicionTimeout, func() {
		select {
		case <-a.stopped:
			return
		default:
		}
		a.mu.Lock()
		e, ok := a.tab.members[id]
		if !ok || e.State != StateSuspect || e.Incarnation != inc {
			a.mu.Unlock()
			return
		}
		u := e.Member
		u.State = StateDead
		a.tab.apply(u, time.Now())
		a.logf("gossip: declaring %d dead (incarnation %d)", id, inc)
		peers := a.pushTargetsLocked()
		pkt := a.packetLocked(kindPing)
		a.mu.Unlock()
		a.notify()
		for _, addr := range peers {
			a.send(addr, pkt)
		}
	})
}

// pushTargetsLocked picks up to Fanout random routable peers for an
// immediate push of a fresh state change. Callers hold a.mu.
func (a *Agent) pushTargetsLocked() []string {
	cands := make([]string, 0, len(a.tab.members))
	for id, e := range a.tab.members {
		if id != a.cfg.ID && e.State.routable() {
			cands = append(cands, e.Addr)
		}
	}
	rand.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > a.cfg.Fanout {
		cands = cands[:a.cfg.Fanout]
	}
	return cands
}

// ---- merge ----

// merge folds received member updates into the table, refuting any
// claim about this node that is not our own live assertion.
func (a *Agent) merge(updates []Member) {
	if len(updates) == 0 {
		return
	}
	now := time.Now()
	changed := false
	var pushPeers []string
	var pushPkt packet
	a.mu.Lock()
	for _, u := range updates {
		if u.State < StateAlive || u.State > StateLeft {
			continue
		}
		if u.ID == a.cfg.ID {
			if a.refuteLocked(u, now) {
				changed = true
			}
			continue
		}
		accepted, prev := a.tab.apply(u, now)
		if !accepted {
			continue
		}
		if u.State == StateSuspect {
			a.scheduleDeathLocked(u.ID, u.Incarnation)
		}
		if prev != u.State {
			changed = true
			if prev == 0 {
				a.logf("gossip: learned member %d at %s (%s)", u.ID, u.Addr, u.State)
			}
		}
	}
	if changed {
		pushPeers = a.pushTargetsLocked()
		pushPkt = a.packetLocked(kindPing)
	}
	a.mu.Unlock()
	if changed {
		a.notify()
		for _, addr := range pushPeers {
			a.send(addr, pushPkt)
		}
	}
}

// refuteLocked handles an update naming this node. Anything that
// supersedes or contradicts our live self-assertion is overridden by
// bumping our incarnation past it and re-announcing Alive — the SWIM
// refutation that lets a falsely-suspected node clear its name. Returns
// whether the self entry changed. Callers hold a.mu.
func (a *Agent) refuteLocked(u Member, now time.Time) bool {
	if a.left {
		// We are deliberately leaving; let the Left verdict stand.
		return false
	}
	harmless := u.Incarnation < a.self.Incarnation ||
		(u.Incarnation == a.self.Incarnation && u.State == StateAlive)
	if harmless {
		return false
	}
	a.self.Incarnation = u.Incarnation + 1
	a.self.State = StateAlive
	a.tab.apply(a.self, now)
	a.refutations.Add(1)
	a.logf("gossip: refuting %s verdict about self; incarnation now %d", u.State, a.self.Incarnation)
	return true
}
