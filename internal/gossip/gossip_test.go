package gossip

import (
	"fmt"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

func testConfig(id sched.ServerID, seeds []string) Config {
	return Config{
		ID:               id,
		BindAddr:         "127.0.0.1:0",
		DataAddr:         fmt.Sprintf("127.0.0.1:%d", 9000+int(id)),
		Seeds:            seeds,
		ProbeInterval:    25 * time.Millisecond,
		SuspicionTimeout: 200 * time.Millisecond,
	}
}

func startAgent(t *testing.T, id sched.ServerID, seeds []string) *Agent {
	t.Helper()
	a, err := Start(testConfig(id, seeds))
	if err != nil {
		t.Fatalf("start agent %d: %v", id, err)
	}
	t.Cleanup(func() { _ = a.Close() })
	if err := a.Join(); err != nil {
		t.Fatalf("join agent %d: %v", id, err)
	}
	return a
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func stateOf(a *Agent, id sched.ServerID) (State, bool) {
	for _, m := range a.Members() {
		if m.ID == id {
			return m.State, true
		}
	}
	return 0, false
}

func allSee(agents []*Agent, id sched.ServerID, want State) bool {
	for _, a := range agents {
		st, ok := stateOf(a, id)
		if !ok || st != want {
			return false
		}
	}
	return true
}

// TestClusterConvergesAndDetectsDeath is the live SWIM test: three
// agents bootstrap off one seed, a fourth joins, one is killed without a
// goodbye, and every survivor must move it Alive -> Suspect -> Dead
// within the suspicion timeout (plus probe slack).
func TestClusterConvergesAndDetectsDeath(t *testing.T) {
	a0 := startAgent(t, 0, nil)
	seed := []string{a0.Addr()}
	a1 := startAgent(t, 1, seed)
	a2 := startAgent(t, 2, seed)
	agents := []*Agent{a0, a1, a2}

	waitFor(t, 2*time.Second, "3-node convergence", func() bool {
		for _, a := range agents {
			if len(a.Routable()) != 3 {
				return false
			}
		}
		return true
	})

	// Late joiner discovers everyone through one seed's piggyback.
	a3 := startAgent(t, 3, seed)
	agents = append(agents, a3)
	waitFor(t, 2*time.Second, "4-node convergence", func() bool {
		for _, a := range agents {
			if len(a.Routable()) != 4 {
				return false
			}
		}
		return true
	})

	// Kill a3 without a goodbye: survivors must converge on Dead.
	_ = a3.Close()
	survivors := agents[:3]
	waitFor(t, 3*time.Second, "death detection of killed node", func() bool {
		return allSee(survivors, 3, StateDead)
	})
	for _, a := range survivors {
		for _, id := range a.Routable() {
			if id == 3 {
				t.Fatalf("dead node still routable on agent %d", a.cfg.ID)
			}
		}
	}
}

// TestGracefulLeave checks a deliberate departure disseminates as Left,
// not Dead — no suspicion round involved.
func TestGracefulLeave(t *testing.T) {
	a0 := startAgent(t, 0, nil)
	a1 := startAgent(t, 1, []string{a0.Addr()})
	a2 := startAgent(t, 2, []string{a0.Addr()})
	waitFor(t, 2*time.Second, "3-node convergence", func() bool {
		return len(a0.Routable()) == 3 && len(a1.Routable()) == 3 && len(a2.Routable()) == 3
	})
	a2.Leave()
	waitFor(t, 2*time.Second, "left dissemination", func() bool {
		return allSee([]*Agent{a0, a1}, 2, StateLeft)
	})
	_ = a2.Close()
}

// TestReadyFlagDisseminates checks the rebalance-completion flag rides
// the normal dissemination path with an incarnation bump.
func TestReadyFlagDisseminates(t *testing.T) {
	a0 := startAgent(t, 0, nil)
	a1 := startAgent(t, 1, []string{a0.Addr()})
	waitFor(t, 2*time.Second, "2-node convergence", func() bool {
		return len(a0.Routable()) == 2 && len(a1.Routable()) == 2
	})
	before := a1.Self().Incarnation
	a1.SetReady(true)
	if a1.Self().Incarnation <= before {
		t.Fatal("SetReady did not bump incarnation")
	}
	waitFor(t, 2*time.Second, "ready dissemination", func() bool {
		for _, m := range a0.Members() {
			if m.ID == 1 {
				return m.Ready
			}
		}
		return false
	})
}

// TestRefutationClearsFalseSuspicion injects a forged suspicion about a
// live node directly into a peer's table and checks the subject clears
// its name: the accused bumps its incarnation and every table returns to
// Alive instead of progressing to Dead.
func TestRefutationClearsFalseSuspicion(t *testing.T) {
	a0 := startAgent(t, 0, nil)
	a1 := startAgent(t, 1, []string{a0.Addr()})
	waitFor(t, 2*time.Second, "2-node convergence", func() bool {
		return len(a0.Routable()) == 2 && len(a1.Routable()) == 2
	})
	inc := a1.Self().Incarnation
	// Forge: a0 hears that a1 is suspect at its current incarnation.
	a0.merge([]Member{{ID: 1, Addr: a1.Addr(), Incarnation: inc, State: StateSuspect}})
	// a1 must hear of the accusation via gossip, refute it, and a0 must
	// accept the higher-incarnation Alive before the suspicion timeout
	// could have declared a1 dead.
	waitFor(t, 2*time.Second, "refutation", func() bool {
		st, ok := stateOf(a0, 1)
		return ok && st == StateAlive && a1.Self().Incarnation > inc
	})
	if got := a1.Stats().Refutations; got == 0 {
		t.Fatal("refutation counter did not increment")
	}
	// And the refuted node must never be declared dead afterwards.
	time.Sleep(300 * time.Millisecond)
	if st, _ := stateOf(a0, 1); st != StateAlive {
		t.Fatalf("falsely-suspected node ended %s, want alive", st)
	}
}
