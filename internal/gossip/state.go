package gossip

import (
	"fmt"
	"sort"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// State is a member's liveness as this node believes it.
type State uint8

// Member liveness states. The zero value is deliberately invalid so an
// uninitialized Member is never mistaken for a live one.
const (
	// StateAlive: the member answers probes (directly or through an
	// indirect ping-req witness).
	StateAlive State = iota + 1
	// StateSuspect: a probe round failed; the member has until the
	// suspicion timeout to refute with a higher incarnation before it is
	// declared dead.
	StateSuspect
	// StateDead: the suspicion timeout expired without refutation. Dead
	// members leave the ring and are purged from the table after a
	// retention window (kept that long so the verdict disseminates).
	StateDead
	// StateLeft: the member announced a graceful departure. Like dead
	// for routing, but intentional — operators read it differently and
	// no suspicion machinery was involved.
	StateLeft
)

// String returns the state's operator-facing name.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// routable reports whether a member in this state belongs on the vnode
// ring. Suspects stay routable: most suspicions are transient (a lost
// datagram), and evicting on suspicion would churn the ring on every
// network hiccup.
func (s State) routable() bool { return s == StateAlive || s == StateSuspect }

// Member is one node's entry in the membership table.
type Member struct {
	// ID is the member's identity on the cluster ring.
	ID sched.ServerID `json:"id"`
	// Addr is the member's gossip UDP address.
	Addr string `json:"addr"`
	// DataAddr is the member's data-plane TCP address (the one kv
	// clients dial).
	DataAddr string `json:"dataAddr"`
	// Incarnation is the member's self-asserted liveness epoch. Only the
	// member itself increments it — the refutation mechanism that lets a
	// falsely-suspected node override the accusation.
	Incarnation uint64 `json:"incarnation"`
	// State is the liveness verdict this update asserts.
	State State `json:"state"`
	// Ready reports the member has finished streaming its owned ranges
	// and serves a complete dataset (the Pending/Streaming -> Ready
	// transition of a join).
	Ready bool `json:"ready"`
}

// supersedes reports whether update u should replace current c under
// SWIM's precedence rules:
//
//   - a higher incarnation always wins — it is a fresher self-assertion
//     by the member (this is how refutation beats suspicion);
//   - at equal incarnation the stronger verdict wins: dead and left
//     override suspect, suspect overrides alive. Alive never overrides
//     anything at equal incarnation — only the member itself can
//     re-assert liveness, and it does so by incrementing.
//
// The rule is deliberately symmetric and deterministic: every node
// applying the same update stream converges on the same table.
func (u Member) supersedes(c Member) bool {
	if u.Incarnation != c.Incarnation {
		return u.Incarnation > c.Incarnation
	}
	return statePrecedence(u.State) > statePrecedence(c.State)
}

// statePrecedence orders verdicts at equal incarnation: the more
// damning claim wins, because only the subject can refute (by
// incrementing its incarnation).
func statePrecedence(s State) int {
	switch s {
	case StateAlive:
		return 0
	case StateSuspect:
		return 1
	case StateDead:
		return 2
	case StateLeft:
		// Left outranks dead: a deliberate goodbye is a statement by the
		// member itself, which no third-party death verdict at the same
		// incarnation should overwrite.
		return 3
	default:
		return -1
	}
}

// memberEntry is the table's record for one member: the latest accepted
// update plus local bookkeeping the update itself does not carry.
type memberEntry struct {
	Member
	// changedAt is when this node last accepted a state change for the
	// member (drives suspicion timeouts and dead-entry purging).
	changedAt time.Time
}

// table is the membership map plus merge logic. It is not safe for
// concurrent use; the Agent serializes access under its mutex. The merge
// functions are pure with respect to the clock they are handed, which is
// what makes the conflict-resolution rules table-testable.
type table struct {
	members map[sched.ServerID]*memberEntry
}

func newTable() *table {
	return &table{members: make(map[sched.ServerID]*memberEntry)}
}

// apply merges one received update into the table, returning whether the
// update was accepted (superseded what was held) and the entry's
// previous state (StateDead-zero-value semantics: prev == 0 means the
// member was unknown).
func (t *table) apply(u Member, now time.Time) (accepted bool, prev State) {
	cur, ok := t.members[u.ID]
	if !ok {
		t.members[u.ID] = &memberEntry{Member: u, changedAt: now}
		return true, 0
	}
	if !u.supersedes(cur.Member) {
		return false, cur.State
	}
	prev = cur.State
	cur.Member = u
	cur.changedAt = now
	return true, prev
}

// snapshot returns the table's members sorted by ID.
func (t *table) snapshot() []Member {
	out := make([]Member, 0, len(t.members))
	for _, e := range t.members {
		out = append(out, e.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// routable returns the IDs of members currently on the ring (alive or
// suspect), sorted.
func (t *table) routable() []sched.ServerID {
	out := make([]sched.ServerID, 0, len(t.members))
	for id, e := range t.members {
		if e.State.routable() {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// countByState tallies the table for the kv_gossip_members gauge.
func (t *table) countByState() map[State]int {
	out := make(map[State]int, 4)
	for _, e := range t.members {
		out[e.State]++
	}
	return out
}

// purge drops dead and left entries older than retain, returning how
// many were removed. Retention exists so the verdict keeps
// disseminating for a while; the incarnation rules make a purged
// member's stale alive updates harmless anyway (a genuinely returning
// node re-joins with a fresh, higher incarnation).
func (t *table) purge(now time.Time, retain time.Duration) int {
	n := 0
	for id, e := range t.members {
		if (e.State == StateDead || e.State == StateLeft) && now.Sub(e.changedAt) > retain {
			delete(t.members, id)
			n++
		}
	}
	return n
}
