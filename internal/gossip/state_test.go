package gossip

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

func mem(id sched.ServerID, inc uint64, st State) Member {
	return Member{ID: id, Addr: "127.0.0.1:0", Incarnation: inc, State: st}
}

// TestSupersedes pins the SWIM conflict-resolution rules: incarnation
// dominates, and at equal incarnation the stronger verdict wins with
// alive never overriding anything.
func TestSupersedes(t *testing.T) {
	cases := []struct {
		name     string
		update   Member
		current  Member
		accepted bool
	}{
		{"higher incarnation alive beats suspect", mem(1, 3, StateAlive), mem(1, 2, StateSuspect), true},
		{"higher incarnation alive beats dead", mem(1, 5, StateAlive), mem(1, 4, StateDead), true},
		{"lower incarnation suspect loses to alive", mem(1, 1, StateSuspect), mem(1, 2, StateAlive), false},
		{"lower incarnation dead loses to alive", mem(1, 1, StateDead), mem(1, 2, StateAlive), false},
		{"equal incarnation suspect beats alive", mem(1, 2, StateSuspect), mem(1, 2, StateAlive), true},
		{"equal incarnation dead beats alive", mem(1, 2, StateDead), mem(1, 2, StateAlive), true},
		{"equal incarnation dead beats suspect", mem(1, 2, StateDead), mem(1, 2, StateSuspect), true},
		{"equal incarnation left beats dead", mem(1, 2, StateLeft), mem(1, 2, StateDead), true},
		{"equal incarnation alive never beats alive", mem(1, 2, StateAlive), mem(1, 2, StateAlive), false},
		{"equal incarnation alive never beats suspect", mem(1, 2, StateAlive), mem(1, 2, StateSuspect), false},
		{"equal incarnation suspect idempotent", mem(1, 2, StateSuspect), mem(1, 2, StateSuspect), false},
		{"higher incarnation suspect beats dead", mem(1, 3, StateSuspect), mem(1, 2, StateDead), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.update.supersedes(tc.current); got != tc.accepted {
				t.Fatalf("supersedes(%v over %v) = %v, want %v",
					tc.update.State, tc.current.State, got, tc.accepted)
			}
		})
	}
}

// TestTableApplyConvergence feeds the same updates to two tables in
// different orders and checks they converge on the same verdicts — the
// determinism the epidemic dissemination relies on.
func TestTableApplyConvergence(t *testing.T) {
	updates := []Member{
		mem(1, 1, StateAlive),
		mem(1, 1, StateSuspect),
		mem(1, 2, StateAlive), // refutation
		mem(2, 1, StateAlive),
		mem(2, 1, StateDead),
		mem(3, 4, StateLeft),
		mem(3, 3, StateAlive), // stale, must lose in both orders
	}
	now := time.Now()
	forward, backward := newTable(), newTable()
	for _, u := range updates {
		forward.apply(u, now)
	}
	for i := len(updates) - 1; i >= 0; i-- {
		backward.apply(updates[i], now)
	}
	f, b := forward.snapshot(), backward.snapshot()
	if len(f) != len(b) {
		t.Fatalf("tables diverged in size: %d vs %d", len(f), len(b))
	}
	for i := range f {
		if f[i] != b[i] {
			t.Fatalf("tables diverged at %d: %+v vs %+v", i, f[i], b[i])
		}
	}
	want := map[sched.ServerID]State{1: StateAlive, 2: StateDead, 3: StateLeft}
	for _, m := range f {
		if m.State != want[m.ID] {
			t.Errorf("member %d converged to %s, want %s", m.ID, m.State, want[m.ID])
		}
	}
}

// TestSuspicionRefutation walks the refutation cycle on one table:
// suspect at incarnation N is cleared by alive at N+1, and a re-suspicion
// must carry the new incarnation to take effect.
func TestSuspicionRefutation(t *testing.T) {
	tab := newTable()
	now := time.Now()
	tab.apply(mem(7, 1, StateAlive), now)
	if ok, _ := tab.apply(mem(7, 1, StateSuspect), now); !ok {
		t.Fatal("suspicion at current incarnation rejected")
	}
	// The refutation: the subject bumps its incarnation and re-asserts.
	if ok, _ := tab.apply(mem(7, 2, StateAlive), now); !ok {
		t.Fatal("refutation at higher incarnation rejected")
	}
	// A replayed stale suspicion must now bounce off.
	if ok, _ := tab.apply(mem(7, 1, StateSuspect), now); ok {
		t.Fatal("stale suspicion accepted after refutation")
	}
	if got := tab.members[7].State; got != StateAlive {
		t.Fatalf("member state = %s after refutation, want alive", got)
	}
	// Fresh suspicion at the new incarnation works again.
	if ok, _ := tab.apply(mem(7, 2, StateSuspect), now); !ok {
		t.Fatal("fresh suspicion at refuted incarnation rejected")
	}
}

func TestRoutableExcludesDeadAndLeft(t *testing.T) {
	tab := newTable()
	now := time.Now()
	tab.apply(mem(1, 1, StateAlive), now)
	tab.apply(mem(2, 1, StateSuspect), now)
	tab.apply(mem(3, 1, StateDead), now)
	tab.apply(mem(4, 1, StateLeft), now)
	got := tab.routable()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("routable = %v, want [1 2] (alive + suspect)", got)
	}
}

func TestPurgeRetainsFreshVerdicts(t *testing.T) {
	tab := newTable()
	base := time.Now()
	tab.apply(mem(1, 1, StateDead), base)
	tab.apply(mem(2, 1, StateLeft), base)
	tab.apply(mem(3, 1, StateAlive), base)
	if n := tab.purge(base.Add(time.Second), 10*time.Second); n != 0 {
		t.Fatalf("purged %d fresh entries", n)
	}
	if n := tab.purge(base.Add(time.Minute), 10*time.Second); n != 2 {
		t.Fatalf("purged %d old dead/left entries, want 2", n)
	}
	if _, ok := tab.members[3]; !ok {
		t.Fatal("purge removed an alive member")
	}
}
