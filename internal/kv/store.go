// Package kv is a live distributed key-value store built around the same
// scheduling machinery the simulator evaluates: servers front their
// worker pools with a pluggable sched.Policy queue, clients tag multiget
// operations with DAS metadata, and every response piggybacks the
// feedback that drives the adaptive estimator.
//
// This package goes beyond the paper (whose evaluation is simulation
// only): it demonstrates the scheduler on real sockets and real
// goroutines with the identical policy implementations.
package kv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/maphash"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// storeShards is the shard count of the in-memory store; a power of two
// keeps the index computation a mask.
const storeShards = 64

// entry is one stored value with optional expiry and its last-writer-
// wins version tag (unversioned writes get small local monotonic tags;
// replicated writes carry wall-anchored tags from replica.Clock).
type entry struct {
	value     []byte
	version   uint64
	expiresAt time.Time // zero = never
}

func (e entry) expired(now time.Time) bool {
	return !e.expiresAt.IsZero() && !now.Before(e.expiresAt)
}

// Mutation describes one applied store mutation as a MutationHook sees
// it: the exact state now held for the key (Delete true means the key
// was removed). Version and ExpiresAt are the values the map stores, so
// replaying mutations in per-key order reproduces the map exactly.
// Value aliases the stored slice — hooks must use it synchronously and
// never retain or modify it.
type Mutation struct {
	Key       string
	Value     []byte
	Version   uint64
	ExpiresAt time.Time // zero = no TTL
	Delete    bool
	// Merge marks a read-modify-write increment: Value/Version still
	// carry the absolute resulting state (so replay stays idempotent),
	// and Delta the signed amount this op added. The durability layer
	// uses the pair to fold increments in a coalescing window.
	Merge bool
	Delta int64
}

// MutationHook observes every applied mutation. It runs while the key's
// shard lock is held — so a hook sees each key's mutations in apply
// order, which is what lets the durability subsystem assign
// write-ahead-log sequence numbers that match map state — and returns
// an ack the store waits on after releasing the lock (nil = nothing to
// wait for). Keep the locked portion short; the expensive part (fsync)
// belongs in the ack.
type MutationHook func(Mutation) func() error

// Store is a sharded in-memory key-value map with optional per-key TTL,
// safe for concurrent use. Expired keys are hidden immediately and
// reclaimed lazily on access or via Sweep.
type Store struct {
	seed   maphash.Seed
	now    func() time.Time
	shards [storeShards]storeShard

	hook atomic.Pointer[MutationHook]

	durMu  sync.Mutex
	durErr error
}

type storeShard struct {
	mu sync.RWMutex
	m  map[string]entry
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{seed: maphash.MakeSeed(), now: time.Now}
	for i := range s.shards {
		s.shards[i].m = make(map[string]entry)
	}
	return s
}

func (s *Store) shard(key string) *storeShard {
	h := maphash.String(s.seed, key)
	return &s.shards[h&(storeShards-1)]
}

// SetMutationHook installs h (nil removes the hook). Install before the
// store starts serving traffic: mutations racing the change may miss
// it.
func (s *Store) SetMutationHook(h MutationHook) {
	if h == nil {
		s.hook.Store(nil)
		return
	}
	s.hook.Store(&h)
}

// notify invokes the mutation hook (if any); callers hold the key's
// shard lock.
func (s *Store) notify(m Mutation) func() error {
	hp := s.hook.Load()
	if hp == nil {
		return nil
	}
	return (*hp)(m)
}

// awaitDurable waits on a mutation's ack outside the shard lock. The
// first failure latches into DurabilityErr: the map is already mutated
// when an ack fails, so the store keeps serving reads but the server
// fails stop on further writes.
func (s *Store) awaitDurable(ack func() error) {
	if ack == nil {
		return
	}
	if err := ack(); err != nil {
		s.durMu.Lock()
		if s.durErr == nil {
			s.durErr = err
		}
		s.durMu.Unlock()
	}
}

// DurabilityErr returns the sticky first error any mutation ack
// reported (nil while healthy). Once set, the in-memory map may be
// ahead of the log and writes must not be acknowledged as durable.
func (s *Store) DurabilityErr() error {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	return s.durErr
}

// applyMutation replays one logged mutation verbatim — exact version
// and expiry, no hook, no version arbitration (the log is already in
// win order). A record whose expiry has passed by replay time removes
// the key instead, matching what a live sweep would have done.
func (s *Store) applyMutation(m Mutation) {
	sh := s.shard(m.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if m.Delete || (!m.ExpiresAt.IsZero() && !s.now().Before(m.ExpiresAt)) {
		delete(sh.m, m.Key)
		return
	}
	v := make([]byte, len(m.Value))
	copy(v, m.Value)
	sh.m[m.Key] = entry{value: v, version: m.Version, expiresAt: m.ExpiresAt}
}

// Get returns a copy of the value for key.
func (s *Store) Get(key string) ([]byte, bool) {
	now := s.now()
	sh := s.shard(key)
	sh.mu.RLock()
	e, ok := sh.m[key]
	if !ok || e.expired(now) {
		sh.mu.RUnlock()
		return nil, false
	}
	out := make([]byte, len(e.value))
	copy(out, e.value)
	sh.mu.RUnlock()
	return out, true
}

// ValueLen returns the stored value's length in bytes without copying
// it (0 for absent or expired keys). The size-class admission path uses
// it to classify a hint-less get by the payload it will actually move —
// one shard read-lock and a map probe, no allocation.
func (s *Store) ValueLen(key string) int {
	now := s.now()
	sh := s.shard(key)
	sh.mu.RLock()
	e, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok || e.expired(now) {
		return 0
	}
	return len(e.value)
}

// Put stores a copy of value under key with no expiry.
func (s *Store) Put(key string, value []byte) {
	s.PutTTL(key, value, 0)
}

// PutTTL stores a copy of value under key, expiring after ttl
// (0 = never).
func (s *Store) PutTTL(key string, value []byte, ttl time.Duration) {
	s.PutVersioned(key, value, ttl, 0)
}

// GetVersioned returns a copy of the value for key along with its
// stored version tag (0 for entries written unversioned).
func (s *Store) GetVersioned(key string) (value []byte, version uint64, ok bool) {
	now := s.now()
	sh := s.shard(key)
	sh.mu.RLock()
	e, exists := sh.m[key]
	if !exists || e.expired(now) {
		sh.mu.RUnlock()
		return nil, 0, false
	}
	out := make([]byte, len(e.value))
	copy(out, e.value)
	sh.mu.RUnlock()
	return out, e.version, true
}

// GetVersionedAppend is GetVersioned appending into buf (reusing its
// capacity) instead of allocating — the server's hot read path pairs it
// with a recycled buffer. The returned slice is buf's reallocation when
// capacity grew; on a miss buf comes back unchanged for recycling.
func (s *Store) GetVersionedAppend(key string, buf []byte) (value []byte, version uint64, ok bool) {
	now := s.now()
	sh := s.shard(key)
	sh.mu.RLock()
	e, exists := sh.m[key]
	if !exists || e.expired(now) {
		sh.mu.RUnlock()
		return buf, 0, false
	}
	out := append(buf[:0], e.value...)
	sh.mu.RUnlock()
	return out, e.version, true
}

// PutVersioned stores a copy of value under key iff version is not
// older than the version currently held — the last-writer-wins rule
// that makes replicated write fan-out and read-repair idempotent and
// convergent. version 0 means "unversioned": always applied, stamped
// one past the stored version so a repair never clobbers it with an
// equal tag. It reports whether the write was applied and the version
// now stored (the winner's, either way).
func (s *Store) PutVersioned(key string, value []byte, ttl time.Duration, version uint64) (applied bool, stored uint64) {
	v := make([]byte, len(value))
	copy(v, value)
	now := s.now()
	var exp time.Time
	if ttl > 0 {
		exp = now.Add(ttl)
	}
	sh := s.shard(key)
	sh.mu.Lock()
	e, exists := sh.m[key]
	live := exists && !e.expired(now)
	switch {
	case version == 0:
		if live {
			version = e.version + 1
		} else {
			version = 1
		}
	case live && version < e.version:
		sh.mu.Unlock()
		return false, e.version // stale write loses
	}
	sh.m[key] = entry{value: v, version: version, expiresAt: exp}
	ack := s.notify(Mutation{Key: key, Value: v, Version: version, ExpiresAt: exp})
	sh.mu.Unlock()
	s.awaitDurable(ack)
	return true, version
}

// Merge atomically adds delta to the integer stored under key,
// treating an absent (or expired) key as zero. The stored
// representation is ASCII decimal — the same bytes a GET returns — so
// counters interoperate with plain puts. A live value that does not
// parse as a signed 64-bit integer fails the op without mutating. The
// new total and version are returned; ttl (0 = keep alive forever)
// restamps the entry's expiry like a put would.
func (s *Store) Merge(key string, delta int64, ttl time.Duration) (total int64, version uint64, err error) {
	now := s.now()
	var exp time.Time
	if ttl > 0 {
		exp = now.Add(ttl)
	}
	sh := s.shard(key)
	sh.mu.Lock()
	e, exists := sh.m[key]
	live := exists && !e.expired(now)
	if live {
		total, err = strconv.ParseInt(string(e.value), 10, 64)
		if err != nil {
			sh.mu.Unlock()
			return 0, 0, fmt.Errorf("kv: merge %q: existing value is not an integer", key)
		}
		version = e.version + 1
	} else {
		version = 1
		if exists {
			version = e.version + 1 // don't reuse a dead entry's tag
		}
	}
	total += delta
	v := strconv.AppendInt(nil, total, 10)
	sh.m[key] = entry{value: v, version: version, expiresAt: exp}
	ack := s.notify(Mutation{Key: key, Value: v, Version: version, ExpiresAt: exp, Merge: true, Delta: delta})
	sh.mu.Unlock()
	s.awaitDurable(ack)
	return total, version, nil
}

// CompareAndSwap atomically replaces key's value with newValue iff the
// current live value equals oldValue. An empty/nil oldValue means
// "expect the key to be absent (or expired)". It reports whether the
// swap happened. A successful swap clears any TTL.
func (s *Store) CompareAndSwap(key string, oldValue, newValue []byte) bool {
	now := s.now()
	sh := s.shard(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	live := ok && !e.expired(now)
	if len(oldValue) == 0 {
		if live && len(e.value) > 0 {
			sh.mu.Unlock()
			return false
		}
	} else {
		if !live || !bytesEqual(e.value, oldValue) {
			sh.mu.Unlock()
			return false
		}
	}
	v := make([]byte, len(newValue))
	copy(v, newValue)
	sh.m[key] = entry{value: v, version: e.version + 1}
	ack := s.notify(Mutation{Key: key, Value: v, Version: e.version + 1})
	sh.mu.Unlock()
	s.awaitDurable(ack)
	return true
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Delete removes key, reporting whether a live (non-expired) entry
// existed.
func (s *Store) Delete(key string) bool {
	now := s.now()
	sh := s.shard(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	var ack func() error
	if ok {
		delete(sh.m, key)
		ack = s.notify(Mutation{Key: key, Delete: true})
	}
	sh.mu.Unlock()
	s.awaitDurable(ack)
	return ok && !e.expired(now)
}

// Len returns the number of live keys (expired-but-unswept keys are
// excluded).
func (s *Store) Len() int {
	now := s.now()
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.m {
			if !e.expired(now) {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// Sweep removes expired entries, returning how many were reclaimed.
func (s *Store) Sweep() int {
	now := s.now()
	reclaimed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			if e.expired(now) {
				delete(sh.m, k)
				reclaimed++
			}
		}
		sh.mu.Unlock()
	}
	return reclaimed
}

// snapshotRecord is one persisted key-value pair (value base64-encoded
// by encoding/json's []byte handling). ExpiresAtUnixNano is 0 for keys
// without TTL.
type snapshotRecord struct {
	Key               string `json:"k"`
	Value             []byte `json:"v"`
	ExpiresAtUnixNano int64  `json:"exp,omitempty"`
	Version           uint64 `json:"ver,omitempty"`
}

// SaveTo writes a point-in-time snapshot as JSON lines. Expired entries
// are skipped. Shards are locked one at a time, so the snapshot is
// per-shard consistent.
func (s *Store) SaveTo(w io.Writer) error {
	now := s.now()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, e := range sh.m {
			if e.expired(now) {
				continue
			}
			rec := snapshotRecord{Key: k, Value: e.value, Version: e.version}
			if !e.expiresAt.IsZero() {
				rec.ExpiresAtUnixNano = e.expiresAt.UnixNano()
			}
			if err := enc.Encode(rec); err != nil {
				sh.mu.RUnlock()
				return fmt.Errorf("kv: snapshot encode: %w", err)
			}
		}
		sh.mu.RUnlock()
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("kv: snapshot flush: %w", err)
	}
	return nil
}

// ApplyIfNewer applies one streamed handoff record under the
// last-writer-wins rule: the record lands only if the key is absent,
// expired, or stored at a version <= the record's (<=, unlike
// PutVersioned's <, so re-pulling an interrupted stream is idempotent
// without redundant log writes for records already applied). Deletes
// and already-expired records are dropped — handoff streams only live
// state, and a concurrent client delete must not be resurrected by a
// version-0 record. Applied records flow through the mutation hook, so
// transferred keys are as durable as written ones.
func (s *Store) ApplyIfNewer(m Mutation) bool {
	if m.Delete {
		return false
	}
	now := s.now()
	if !m.ExpiresAt.IsZero() && !now.Before(m.ExpiresAt) {
		return false
	}
	v := make([]byte, len(m.Value))
	copy(v, m.Value)
	sh := s.shard(m.Key)
	sh.mu.Lock()
	e, exists := sh.m[m.Key]
	if exists && !e.expired(now) && m.Version <= e.version {
		sh.mu.Unlock()
		return false
	}
	sh.m[m.Key] = entry{value: v, version: m.Version, expiresAt: m.ExpiresAt}
	ack := s.notify(Mutation{Key: m.Key, Value: v, Version: m.Version, ExpiresAt: m.ExpiresAt})
	sh.mu.Unlock()
	s.awaitDurable(ack)
	return true
}

// ShardCount is the store's fixed shard count, exported for the
// rebalancer's shard-at-a-time handoff cursors. Shard membership is
// seeded per process, so a shard index is only meaningful to the store
// that produced it — handoff requests therefore address the
// *responder's* shards, never the requester's.
func (s *Store) ShardCount() int { return storeShards }

// HandoffChunk encodes up to limit live records of one shard — key >
// after, include(key) true — as snapshot JSON lines in ascending key
// order. It returns the encoded chunk, the cursor for the next pull,
// and whether more matching records remain. Values are copied into the
// chunk under the shard read-lock, so the stream is per-shard
// consistent without blocking writers for the whole transfer.
func (s *Store) HandoffChunk(shard int, after string, limit int, include func(string) bool) (data []byte, next string, more bool, count int) {
	if shard < 0 || shard >= storeShards || limit <= 0 {
		return nil, "", false, 0
	}
	now := s.now()
	sh := &s.shards[shard]
	sh.mu.RLock()
	keys := make([]string, 0, len(sh.m))
	for k, e := range sh.m {
		if k > after && !e.expired(now) && include(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) > limit {
		keys, more = keys[:limit], true
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, k := range keys {
		e := sh.m[k]
		rec := snapshotRecord{Key: k, Value: e.value, Version: e.version}
		if !e.expiresAt.IsZero() {
			rec.ExpiresAtUnixNano = e.expiresAt.UnixNano()
		}
		if err := enc.Encode(rec); err != nil {
			sh.mu.RUnlock()
			return nil, "", false, 0
		}
	}
	sh.mu.RUnlock()
	if len(keys) > 0 {
		next = keys[len(keys)-1]
	}
	return buf.Bytes(), next, more, len(keys)
}

// LoadFrom replays a snapshot into the store (existing keys are
// overwritten; records already expired at load time are dropped).
func (s *Store) LoadFrom(r io.Reader) error {
	now := s.now()
	dec := json.NewDecoder(bufio.NewReader(r))
	n := 0
	for {
		var rec snapshotRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("kv: snapshot record %d: %w", n+1, err)
		}
		n++
		var exp time.Time
		if rec.ExpiresAtUnixNano != 0 {
			exp = time.Unix(0, rec.ExpiresAtUnixNano)
			if !now.Before(exp) {
				continue
			}
		}
		v := make([]byte, len(rec.Value))
		copy(v, rec.Value)
		sh := s.shard(rec.Key)
		sh.mu.Lock()
		sh.m[rec.Key] = entry{value: v, version: rec.Version, expiresAt: exp}
		sh.mu.Unlock()
	}
}
