package kv

import (
	"bytes"
	"testing"
	"time"
)

func TestPutVersionedLastWriterWins(t *testing.T) {
	s := NewStore()
	if applied, stored := s.PutVersioned("k", []byte("v20"), 0, 20); !applied || stored != 20 {
		t.Fatalf("first versioned put: applied=%v stored=%d", applied, stored)
	}
	// A stale write loses and reports the winner.
	if applied, stored := s.PutVersioned("k", []byte("v10"), 0, 10); applied || stored != 20 {
		t.Fatalf("stale put: applied=%v stored=%d, want rejected at 20", applied, stored)
	}
	if v, ver, ok := s.GetVersioned("k"); !ok || ver != 20 || !bytes.Equal(v, []byte("v20")) {
		t.Fatalf("after stale put: %q ver=%d ok=%v", v, ver, ok)
	}
	// An equal version re-applies (idempotent repair replay).
	if applied, _ := s.PutVersioned("k", []byte("v20"), 0, 20); !applied {
		t.Fatal("equal-version replay rejected")
	}
	// A newer write wins.
	if applied, stored := s.PutVersioned("k", []byte("v30"), 0, 30); !applied || stored != 30 {
		t.Fatalf("newer put: applied=%v stored=%d", applied, stored)
	}
}

func TestPutUnversionedStampsMonotonically(t *testing.T) {
	s := NewStore()
	s.Put("k", []byte("a"))
	_, v1, _ := s.GetVersioned("k")
	if v1 == 0 {
		t.Fatal("unversioned put left version 0")
	}
	s.Put("k", []byte("b"))
	_, v2, _ := s.GetVersioned("k")
	if v2 <= v1 {
		t.Fatalf("unversioned overwrite did not advance version: %d then %d", v1, v2)
	}
	// A repair replaying the old version must not clobber the newer
	// unversioned write.
	if applied, _ := s.PutVersioned("k", []byte("a"), 0, v1); applied {
		t.Fatal("stale repair clobbered a newer unversioned write")
	}
	if got, _ := s.Get("k"); !bytes.Equal(got, []byte("b")) {
		t.Fatalf("value = %q, want %q", got, "b")
	}
}

func TestCASAdvancesVersion(t *testing.T) {
	s := NewStore()
	s.Put("k", []byte("old"))
	_, before, _ := s.GetVersioned("k")
	if !s.CompareAndSwap("k", []byte("old"), []byte("new")) {
		t.Fatal("CAS failed")
	}
	_, after, _ := s.GetVersioned("k")
	if after <= before {
		t.Fatalf("CAS did not advance version: %d then %d", before, after)
	}
}

func TestVersionSurvivesSnapshot(t *testing.T) {
	s := NewStore()
	s.PutVersioned("k", []byte("v"), 0, 1234)
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	restored := NewStore()
	if err := restored.LoadFrom(&buf); err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if _, ver, ok := restored.GetVersioned("k"); !ok || ver != 1234 {
		t.Fatalf("restored version %d ok=%v, want 1234", ver, ok)
	}
}

func TestVersionedPutOverExpiredEntry(t *testing.T) {
	s := NewStore()
	s.now = func() time.Time { return time.Unix(100, 0) }
	s.PutVersioned("k", []byte("old"), time.Second, 50)
	s.now = func() time.Time { return time.Unix(200, 0) }
	// The stored entry expired: even an older version applies (the
	// expired tag carries no authority).
	if applied, stored := s.PutVersioned("k", []byte("new"), 0, 10); !applied || stored != 10 {
		t.Fatalf("put over expired entry: applied=%v stored=%d", applied, stored)
	}
}
