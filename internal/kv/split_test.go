package kv

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sizeclass"
	"github.com/daskv/daskv/internal/wire"
)

// splitFixture starts one split-pool server (2 workers, one per pool,
// 64 KiB fixed threshold) and a connected hint-less client.
func splitFixture(t *testing.T, cost CostModel) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		ID:        5,
		Addr:      "127.0.0.1:0",
		Policy:    core.Factory(core.LiveOptions()),
		Workers:   2,
		Cost:      cost,
		PoolSplit: 0.5,
		SizeClass: sizeclass.Config{Override: 64 << 10},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := NewClient(ClientConfig{Servers: map[sched.ServerID]string{5: srv.Addr()}})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return srv, client
}

func TestPoolSplitConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		split   float64
		workers int
	}{
		{split: 0.5, workers: 1}, // split needs a worker per pool
		{split: -0.1, workers: 2},
		{split: 1.0, workers: 4}, // 1.0 would leave the large pool empty
	} {
		_, err := NewServer(ServerConfig{
			ID:        1,
			Addr:      "127.0.0.1:0",
			Policy:    core.Factory(core.LiveOptions()),
			Workers:   tc.workers,
			PoolSplit: tc.split,
		})
		if err == nil {
			t.Fatalf("PoolSplit %v with %d workers accepted", tc.split, tc.workers)
		}
	}
}

func TestPoolSplitWorkerPartition(t *testing.T) {
	// The rounded split must always leave at least one worker per pool.
	for _, tc := range []struct {
		split              float64
		workers            int
		wantSmall, wantLge int
	}{
		{split: 0.5, workers: 2, wantSmall: 1, wantLge: 1},
		{split: 0.5, workers: 4, wantSmall: 2, wantLge: 2},
		{split: 0.9, workers: 2, wantSmall: 1, wantLge: 1},
		{split: 0.9, workers: 4, wantSmall: 3, wantLge: 1},
		{split: 0.1, workers: 4, wantSmall: 1, wantLge: 3},
	} {
		srv, err := NewServer(ServerConfig{
			ID:        1,
			Addr:      "127.0.0.1:0",
			Policy:    core.Factory(core.LiveOptions()),
			Workers:   tc.workers,
			PoolSplit: tc.split,
		})
		if err != nil {
			t.Fatalf("split %v/%d: %v", tc.split, tc.workers, err)
		}
		if srv.smallWorkers != tc.wantSmall || srv.largeWorkers != tc.wantLge {
			t.Fatalf("split %v/%d: partition %d/%d, want %d/%d", tc.split, tc.workers,
				srv.smallWorkers, srv.largeWorkers, tc.wantSmall, tc.wantLge)
		}
		_ = srv.Close()
	}
}

// TestSplitEndToEndHintless drives a split server through a client that
// offers no size hints: puts classify by the value they carry, and gets
// classify by the stored value's length (the server owns the store, so
// it can tell mice from elephants without client cooperation).
func TestSplitEndToEndHintless(t *testing.T) {
	srv, client := splitFixture(t, nil)
	ctx := context.Background()
	large := bytes.Repeat([]byte("x"), 256<<10)
	if err := client.Put(ctx, "elephant", large); err != nil {
		t.Fatalf("Put large: %v", err)
	}
	for i := 0; i < 8; i++ {
		if err := client.Put(ctx, "mouse", []byte("cheese")); err != nil {
			t.Fatalf("Put small: %v", err)
		}
		if got, err := client.Get(ctx, "mouse"); err != nil || string(got) != "cheese" {
			t.Fatalf("Get small = %q, %v", got, err)
		}
	}
	if got, err := client.Get(ctx, "elephant"); err != nil || !bytes.Equal(got, large) {
		t.Fatalf("Get large: %d bytes, %v", len(got), err)
	}
	ps := srv.poolStats()
	if ps == nil {
		t.Fatal("split server reports no pool stats")
	}
	if ps.ThresholdBytes != 64<<10 {
		t.Fatalf("threshold = %d, want the 64KiB override", ps.ThresholdBytes)
	}
	if ps.SmallWorkers != 1 || ps.LargeWorkers != 1 {
		t.Fatalf("worker partition %d/%d, want 1/1", ps.SmallWorkers, ps.LargeWorkers)
	}
	if ps.SmallRouted == 0 {
		t.Fatal("no ops routed small")
	}
	// The large put carries its payload and the hint-less large get is
	// classified from the store — both must land in the large pool.
	if ps.LargeRouted < 2 {
		t.Fatalf("large routed = %d, want >= 2 (put + store-classified get)", ps.LargeRouted)
	}
}

// TestSplitSmallOpsNotBlockedByLarge is the subsystem's reason to
// exist, as a liveness check: with the single large worker pinned by a
// slow op, small gets must still complete promptly through the
// reserved small worker.
func TestSplitSmallOpsNotBlockedByLarge(t *testing.T) {
	cost := func(_ wire.OpType, _, valueLen int) time.Duration {
		if valueLen >= 64<<10 {
			return 500 * time.Millisecond
		}
		return time.Millisecond
	}
	_, client := splitFixture(t, cost)
	ctx := context.Background()
	large := bytes.Repeat([]byte("x"), 128<<10)
	if err := client.Put(ctx, "elephant", large); err != nil {
		t.Fatalf("Put large: %v", err)
	}
	if err := client.Put(ctx, "mouse", []byte("cheese")); err != nil {
		t.Fatalf("Put small: %v", err)
	}
	// Pin the large worker with two elephant gets (one serving, one
	// queued), then time a small get racing them.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Get(ctx, "elephant"); err != nil {
				t.Errorf("Get large: %v", err)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the elephants reach the queue
	start := time.Now()
	if _, err := client.Get(ctx, "mouse"); err != nil {
		t.Fatalf("Get small: %v", err)
	}
	if rct := time.Since(start); rct > 250*time.Millisecond {
		t.Fatalf("small get took %v behind a pinned large worker", rct)
	}
	wg.Wait()
}

// TestSplitStatsAndMetricsExposition checks the observability surface:
// /stats carries the pools section and /metrics carries the kv_pool_*
// families, lint-clean.
func TestSplitStatsAndMetricsExposition(t *testing.T) {
	srv, client := splitFixture(t, nil)
	ctx := context.Background()
	if err := client.Put(ctx, "m", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := client.Put(ctx, "big", bytes.Repeat([]byte("x"), 128<<10)); err != nil {
		t.Fatalf("Put big: %v", err)
	}
	h := NewMetricsHandler(srv)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var st wire.ServerStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.Pools == nil {
		t.Fatal("/stats missing the pools section on a split server")
	}
	if st.Pools.SmallRouted == 0 || st.Pools.LargeRouted == 0 {
		t.Fatalf("pools = %+v, want routing on both sides", st.Pools)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`kv_pool_size_threshold_bytes{server="5"} 65536`,
		`kv_pool_workers{server="5",pool="small"} 1`,
		`kv_pool_workers{server="5",pool="large"} 1`,
		`kv_pool_queue_length{server="5",pool="small"}`,
		`kv_pool_backlog_seconds{server="5",pool="large"}`,
		`kv_pool_busy_workers{server="5",pool="small"}`,
		`kv_pool_routed_total{server="5",pool="small"}`,
		`kv_pool_routed_total{server="5",pool="large"}`,
		`kv_pool_stolen_total{server="5"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if problems := metrics.LintExposition(strings.NewReader(body)); len(problems) > 0 {
		t.Fatalf("exposition lint problems: %v", problems)
	}
	// An unsplit server must not emit the pool families.
	plain, plainClient := metricsFixture(t)
	if err := plainClient.Put(ctx, "m", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	rec = httptest.NewRecorder()
	NewMetricsHandler(plain).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rec.Body.String(), "kv_pool_") {
		t.Fatal("unsplit server emitted kv_pool_* metrics")
	}
}
