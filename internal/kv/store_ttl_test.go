package kv

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// fakeClock lets TTL tests control time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newClockedStore() (*Store, *fakeClock) {
	s := NewStore()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s.now = clk.now
	return s, clk
}

func TestPutTTLExpires(t *testing.T) {
	s, clk := newClockedStore()
	s.PutTTL("session", []byte("token"), time.Minute)
	if _, ok := s.Get("session"); !ok {
		t.Fatal("fresh TTL key should be visible")
	}
	clk.advance(59 * time.Second)
	if _, ok := s.Get("session"); !ok {
		t.Fatal("key expired early")
	}
	clk.advance(2 * time.Second)
	if _, ok := s.Get("session"); ok {
		t.Fatal("key should be expired")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0 (expired hidden)", s.Len())
	}
}

func TestPutWithoutTTLNeverExpires(t *testing.T) {
	s, clk := newClockedStore()
	s.Put("forever", []byte("v"))
	clk.advance(1000 * time.Hour)
	if _, ok := s.Get("forever"); !ok {
		t.Fatal("no-TTL key expired")
	}
}

func TestDeleteExpiredReportsNotFound(t *testing.T) {
	s, clk := newClockedStore()
	s.PutTTL("k", []byte("v"), time.Second)
	clk.advance(2 * time.Second)
	if s.Delete("k") {
		t.Fatal("deleting an expired key should report false")
	}
}

func TestSweepReclaims(t *testing.T) {
	s, clk := newClockedStore()
	for i := 0; i < 10; i++ {
		s.PutTTL(KeyFor(i), []byte("v"), time.Second)
	}
	s.Put("keeper", []byte("v"))
	clk.advance(2 * time.Second)
	if got := s.Sweep(); got != 10 {
		t.Fatalf("Sweep reclaimed %d, want 10", got)
	}
	if got := s.Sweep(); got != 0 {
		t.Fatalf("second Sweep reclaimed %d, want 0", got)
	}
	if _, ok := s.Get("keeper"); !ok {
		t.Fatal("Sweep removed a live key")
	}
}

func TestOverwriteClearsTTL(t *testing.T) {
	s, clk := newClockedStore()
	s.PutTTL("k", []byte("v1"), time.Second)
	s.Put("k", []byte("v2")) // plain put removes expiry
	clk.advance(time.Hour)
	v, ok := s.Get("k")
	if !ok || string(v) != "v2" {
		t.Fatalf("overwritten key = %q/%v", v, ok)
	}
}

func TestSnapshotPreservesTTL(t *testing.T) {
	s, clk := newClockedStore()
	s.PutTTL("short", []byte("v"), time.Minute)
	s.PutTTL("gone", []byte("v"), time.Second)
	s.Put("stable", []byte("v"))
	clk.advance(2 * time.Second) // "gone" expires before the save
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	restored, clk2 := newClockedStore()
	clk2.t = clk.t
	if err := restored.LoadFrom(&buf); err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if restored.Len() != 2 {
		t.Fatalf("restored %d live keys, want 2", restored.Len())
	}
	clk2.advance(2 * time.Minute)
	if _, ok := restored.Get("short"); ok {
		t.Fatal("restored TTL did not survive the round trip")
	}
	if _, ok := restored.Get("stable"); !ok {
		t.Fatal("stable key lost")
	}
}

// KeyFor formats a small test key.
func KeyFor(i int) string { return "ttl-key-" + string(rune('a'+i)) }

func TestClientPutTTLEndToEnd(t *testing.T) {
	srv, err := NewServer(ServerConfig{ID: 0, Addr: "127.0.0.1:0", SweepInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := NewClient(ClientConfig{Servers: map[sched.ServerID]string{0: srv.Addr()}})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()
	if err := client.PutTTL(ctx, "ephemeral", []byte("v"), 50*time.Millisecond); err != nil {
		t.Fatalf("PutTTL: %v", err)
	}
	if _, err := client.Get(ctx, "ephemeral"); err != nil {
		t.Fatalf("fresh Get: %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, err := client.Get(ctx, "ephemeral")
		if err == ErrNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("TTL key never expired end-to-end")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := client.PutTTL(ctx, "bad", []byte("v"), -time.Second); err == nil {
		t.Fatal("negative TTL should error")
	}
}
