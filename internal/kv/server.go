package kv

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sizeclass"
	"github.com/daskv/daskv/internal/wal"
	"github.com/daskv/daskv/internal/wire"
)

// CostModel estimates the service demand of one operation; the live
// server busy-waits this long per operation (scaled by SpeedFactor) so
// scheduling experiments have meaningful service times, mirroring CPU-
// or storage-bound backends. A nil model means operations cost only
// their actual map access.
type CostModel func(op wire.OpType, keyLen, valueLen int) time.Duration

// ServerConfig configures one live key-value server.
type ServerConfig struct {
	// ID is the server's identity on the cluster ring.
	ID sched.ServerID
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// Policy builds the scheduling queue fronting the workers
	// (FCFS when nil).
	Policy sched.Factory
	// Workers is the service concurrency (default 1).
	Workers int
	// Cost simulates per-operation service demand (nil = none).
	Cost CostModel
	// SpeedFactor scales service speed: 0.5 halves throughput,
	// emulating a degraded server (default 1.0).
	SpeedFactor float64
	// DataPath, when set, loads a snapshot at startup (if the file
	// exists) and writes one on Close.
	DataPath string
	// WALDir, when set, enables the durability subsystem: every applied
	// mutation is appended to a segmented write-ahead log in this
	// directory before the client is acknowledged (per WALSync), startup
	// replays snapshot plus log, and a graceful Close compacts the log
	// into a fresh snapshot. Mutually exclusive with DataPath — the
	// log's own snapshots subsume it.
	WALDir string
	// WALSync is the log's fsync policy (zero value = fsync before
	// every acknowledgement).
	WALSync wal.SyncPolicy
	// WALSegmentSize caps each log segment file (default 16 MiB).
	WALSegmentSize int64
	// WALWrapFile wraps every segment file the log opens — the hook
	// torn-write and failed-fsync chaos tests (internal/fault) use to
	// corrupt durability without touching real disks.
	WALWrapFile func(wal.File) wal.File
	// SweepInterval is how often expired keys are reclaimed in the
	// background (default 30s; negative disables the janitor).
	SweepInterval time.Duration
	// WrapConn, when set, wraps every accepted connection — the hook
	// fault injection (internal/fault) uses to corrupt, stall, or kill
	// a server's traffic in chaos tests without touching the data path.
	WrapConn func(net.Conn) net.Conn
	// Replication is the cluster's intended replication factor,
	// advertised in stats so operators and tooling can see what R the
	// deployment was provisioned for (default 1). Placement itself is
	// client-side; the server's only replication duty is the versioned
	// store, which is always on.
	Replication int
	// PoolSplit enables the size-class execution split
	// (internal/sizeclass): the fraction of Workers reserved for the
	// small-op pool, in (0, 1). Zero disables the split (one undivided
	// pool, the pre-split behavior). Requires Workers >= 2; the worker
	// partition is rounded so each pool keeps at least one worker.
	PoolSplit float64
	// SizeClass tunes the split's admission classifier (zero value =
	// the sizeclass defaults: learn the 90th-percentile size threshold
	// from a decayed sketch of observed payload sizes).
	SizeClass sizeclass.Config
	// Cluster, when set, enables the gossip-driven cluster fabric:
	// SWIM membership, a dynamic vnode ring, and join/leave key
	// rebalancing (see ClusterConfig). Nil runs the node standalone
	// with a static client-side ring — the pre-fabric behavior.
	Cluster *ClusterConfig
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Policy == nil {
		c.Policy = sched.FCFSFactory
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.SpeedFactor <= 0 {
		c.SpeedFactor = 1
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 30 * time.Second
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	return c
}

// Server is one live key-value node: an accept loop feeding a
// policy-ordered operation queue drained by a worker pool.
type Server struct {
	cfg         ServerConfig
	store       *Store
	ln          net.Listener
	start       time.Time
	metrics     *serverMetrics
	wal         *wal.WAL
	walRecovery *wal.RecoveryReport
	// cluster is the gossip fabric runtime (nil when cfg.Cluster is):
	// set once in NewServer before the server is published, read-only
	// after.
	cluster *cluster

	mu     sync.Mutex
	queue  sched.Policy
	closed bool
	conns  map[net.Conn]bool
	// scs registers each connection's serverConn so stats can report
	// per-connection in-flight depth; keyed separately from conns
	// because the serverConn is born in the read loop, after accept.
	scs       map[*serverConn]struct{}
	speedEWMA float64
	served    uint64

	// connsTotal counts accepted connections over the server's life;
	// inflight is ops admitted to the queue but not yet answered. Both
	// feed the stats/metrics saturation readout the load harness uses
	// to tell server overload from connection-scaling limits.
	connsTotal metrics.Counter
	inflight   atomic.Int64

	// split is the size-class pool structure when PoolSplit is enabled
	// (nil otherwise); queue then points at the same object, so every
	// whole-queue path (feedback, stats, admission) works unchanged.
	split        *sizeclass.Queue
	smallWorkers int
	largeWorkers int
	// poolWake replaces wake in split mode: one wake token per pool, so
	// a small-pool wake is never consumed by a large worker that then
	// goes back to sleep (and vice versa).
	poolWake [sizeclass.NumPools]chan struct{}
	// busy counts each pool's workers currently executing an operation
	// (the occupancy surfaced on /stats and /metrics).
	busy [sizeclass.NumPools]atomic.Int32

	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// pendingOp carries a queued operation's connection context.
type pendingOp struct {
	conn     *serverConn
	typ      wire.OpType
	key      string
	value    []byte
	id       uint64
	ttl      time.Duration
	oldValue []byte
	version  uint64
	// deadline is the server-clock instant after which the op is shed
	// instead of served (0 = none), anchored at arrival from the
	// client's remaining-budget duration.
	deadline time.Duration
}

// queuedOp bundles an admitted operation's scheduler entry and its
// connection payload into one pooled allocation; workers recycle it
// after the response is handed off. Ops still queued when the server
// closes are simply dropped to the garbage collector.
type queuedOp struct {
	op sched.Op
	p  pendingOp
}

var queuedOpPool = sync.Pool{New: func() any { return new(queuedOp) }}

// releaseOp recycles a served operation: its payload byte buffers go
// back to the value pool (the store copied what it keeps) and the
// combined allocation returns for reuse. Recycling may overwrite the
// op while a DAS queue's lazy aging/FIFO entry still holds the old
// pointer — that is safe because such entries are validated against
// the queue's live map, never by reading the op (see core.DAS).
func releaseOp(qo *queuedOp) {
	putValueBuf(qo.p.value)
	putValueBuf(qo.p.oldValue)
	*qo = queuedOp{}
	queuedOpPool.Put(qo)
}

// serverConn is one accepted connection's response side: workers hand
// finished responses to a per-connection writer goroutine over out;
// the writer encodes every response it can drain in one pass and
// flushes once, so a burst of sibling completions costs one syscall
// instead of one per op.
type serverConn struct {
	conn net.Conn
	out  chan *wire.Response
	// stop is closed by the read loop when the connection's inbound
	// side ends; the writer drains what it can and exits.
	stop chan struct{}
	// dead is closed by the writer on exit so senders never block on a
	// connection that will not write again.
	dead chan struct{}
	// version is the negotiated protocol version (the version byte of
	// the client's frames), echoed on every response; 0 until the first
	// frame decodes.
	version atomic.Uint32
	// inflight is this connection's admitted-but-unanswered op count,
	// the per-connection saturation gauge the stats document surfaces.
	inflight atomic.Int64
	w        *wire.Writer
}

// respBacklog is the per-connection response channel depth. A full
// channel applies backpressure to workers exactly where the old
// per-response mutex serialized them.
const respBacklog = 256

func newServerConn(conn net.Conn) *serverConn {
	return &serverConn{
		conn: conn,
		out:  make(chan *wire.Response, respBacklog),
		stop: make(chan struct{}),
		dead: make(chan struct{}),
		w:    wire.NewWriter(conn),
	}
}

// send hands one response to the connection's writer goroutine. It
// drops the response if the writer is gone — the client is too, and
// the op's effect on the store stands either way.
func (c *serverConn) send(r *wire.Response) {
	select {
	case c.out <- r:
	case <-c.dead:
	}
}

// respPool recycles response structs between workers and connection
// writers so the steady-state serve path stops allocating one per op.
var respPool = sync.Pool{New: func() any { return new(wire.Response) }}

// maxCoalesce bounds how many responses one flush may carry, so a hot
// connection cannot grow the write buffer without bound or starve its
// peer of latency-sensitive early responses.
const maxCoalesce = 64

// connWriter drains sc.out, encoding responses back-to-back and
// flushing once per drained burst (the syscall coalescing half of the
// batch data plane). It exits on write error or when the read loop
// signals the connection is done.
func (s *Server) connWriter(sc *serverConn) {
	defer s.wg.Done()
	defer close(sc.dead)
	defer sc.w.Release()
	flush := func(frames int) bool {
		if frames == 0 {
			return true
		}
		if err := sc.w.Flush(); err != nil {
			_ = sc.conn.Close()
			return false
		}
		s.metrics.respFlushes.Inc()
		s.metrics.respFrames.Add(uint64(frames))
		return true
	}
	for {
		var resp *wire.Response
		select {
		case resp = <-sc.out:
		case <-sc.stop:
			// Inbound side is gone; best-effort flush of what's queued.
			n := 0
			for {
				select {
				case r := <-sc.out:
					if s.encodeResponse(sc, r) != nil {
						return
					}
					n++
				default:
					flush(n)
					return
				}
			}
		}
		if s.encodeResponse(sc, resp) != nil {
			_ = sc.conn.Close()
			return
		}
		n := 1
	drain:
		for n < maxCoalesce {
			select {
			case r := <-sc.out:
				if s.encodeResponse(sc, r) != nil {
					_ = sc.conn.Close()
					return
				}
				n++
			default:
				break drain
			}
		}
		if !flush(n) {
			return
		}
	}
}

// encodeResponse buffers one response at the connection's negotiated
// protocol version and returns the struct to the pool.
func (s *Server) encodeResponse(sc *serverConn, r *wire.Response) error {
	if v := sc.version.Load(); v != 0 {
		sc.w.SetVersion(byte(v))
	}
	err := sc.w.EncodeResponse(r)
	putValueBuf(r.Value) // always an owned copy; the frame is encoded
	*r = wire.Response{}
	respPool.Put(r)
	return err
}

// NewServer starts listening and serving on cfg.Addr.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.WALDir != "" && cfg.DataPath != "" {
		return nil, fmt.Errorf("kv: WALDir and DataPath are mutually exclusive (the log keeps its own snapshots)")
	}
	if cfg.PoolSplit < 0 || cfg.PoolSplit >= 1 {
		return nil, fmt.Errorf("kv: PoolSplit %v outside [0, 1)", cfg.PoolSplit)
	}
	if cfg.PoolSplit > 0 && cfg.Workers < 2 {
		return nil, fmt.Errorf("kv: PoolSplit needs Workers >= 2 (got %d) so each size-class pool keeps a worker", cfg.Workers)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("kv: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:       cfg,
		store:     NewStore(),
		ln:        ln,
		start:     time.Now(),
		metrics:   newServerMetrics(),
		queue:     cfg.Policy(uint64(cfg.ID)),
		conns:     make(map[net.Conn]bool),
		scs:       make(map[*serverConn]struct{}),
		speedEWMA: cfg.SpeedFactor,
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if cfg.PoolSplit > 0 {
		s.split = sizeclass.New(cfg.Policy, cfg.SizeClass, uint64(cfg.ID))
		s.queue = s.split
		s.smallWorkers = int(float64(cfg.Workers)*cfg.PoolSplit + 0.5)
		if s.smallWorkers < 1 {
			s.smallWorkers = 1
		}
		if s.smallWorkers > cfg.Workers-1 {
			s.smallWorkers = cfg.Workers - 1
		}
		s.largeWorkers = cfg.Workers - s.smallWorkers
		for p := range s.poolWake {
			s.poolWake[p] = make(chan struct{}, 1)
		}
	}
	if cfg.DataPath != "" {
		if err := s.loadSnapshot(); err != nil {
			_ = ln.Close()
			return nil, err
		}
	}
	if cfg.WALDir != "" {
		w, werr := wal.Open(wal.Options{
			Dir:         cfg.WALDir,
			SegmentSize: cfg.WALSegmentSize,
			Sync:        cfg.WALSync,
			WrapFile:    cfg.WALWrapFile,
		})
		if werr != nil {
			_ = ln.Close()
			return nil, werr
		}
		rep, rerr := w.Recover(s.store.LoadFrom, func(rec wal.Record) error {
			s.store.applyMutation(mutationFromRecord(rec))
			return nil
		})
		if rerr != nil {
			_ = w.Close()
			_ = ln.Close()
			return nil, rerr
		}
		s.wal, s.walRecovery = w, rep
		s.store.SetMutationHook(s.logMutation)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if s.split != nil {
		for i := 0; i < s.smallWorkers; i++ {
			s.wg.Add(1)
			go s.poolWorker(sizeclass.Small)
		}
		for i := 0; i < s.largeWorkers; i++ {
			s.wg.Add(1)
			go s.poolWorker(sizeclass.Large)
		}
	} else {
		for i := 0; i < cfg.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	if cfg.SweepInterval > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	if cfg.Cluster != nil {
		// The fabric starts last: joiners stream through the data plane,
		// so the accept loop must already be live.
		if err := s.startCluster(); err != nil {
			_ = s.Close()
			return nil, err
		}
	}
	return s, nil
}

// janitor reclaims expired keys periodically until shutdown.
func (s *Server) janitor() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.store.Sweep()
		case <-s.done:
			return
		}
	}
}

// mutationFromRecord converts a logged record back into the store
// mutation it captured.
func mutationFromRecord(rec wal.Record) Mutation {
	// A coalesced merge record carries the absolute resulting state
	// (final value, exact version), so replay treats it like the put —
	// or, when the window ended on a delete, the delete — it folds to.
	m := Mutation{
		Key:     rec.Key,
		Value:   rec.Value,
		Version: rec.Version,
		Delete:  rec.Op == wal.OpDelete || (rec.Op == wal.OpMerge && rec.Tombstone),
	}
	if rec.ExpiresAtUnixNano != 0 {
		m.ExpiresAt = time.Unix(0, rec.ExpiresAtUnixNano)
	}
	return m
}

// logMutation is the store's MutationHook when the WAL is enabled: it
// enqueues the mutation — assigning its log sequence while the shard
// lock is still held, so per-key order on disk matches apply order —
// and returns the group-commit ack the store waits on before the
// client sees success.
func (s *Server) logMutation(m Mutation) func() error {
	rec := wal.Record{Key: m.Key, Value: m.Value, Version: m.Version}
	switch {
	case m.Delete:
		rec.Op = wal.OpDelete
		rec.Value = nil
	case m.Merge:
		// Merges log as delta records so a coalescing window can fold a
		// hot counter's increments into one frame; the absolute state
		// (Value/Version) still rides along, keeping replay idempotent.
		rec.Op = wal.OpMerge
		rec.Delta = m.Delta
	default:
		rec.Op = wal.OpPut
	}
	if !m.ExpiresAt.IsZero() {
		rec.ExpiresAtUnixNano = m.ExpiresAt.UnixNano()
	}
	ack, err := s.wal.AppendRecord(rec)
	if err != nil {
		return func() error { return err }
	}
	return ack
}

// WALRecovery returns the startup crash-recovery report (nil when the
// server runs without a write-ahead log).
func (s *Server) WALRecovery() *wal.RecoveryReport { return s.walRecovery }

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ID returns the server's ring identity.
func (s *Server) ID() sched.ServerID { return s.cfg.ID }

// Store exposes the backing store (for tests and tooling).
func (s *Server) Store() *Store { return s.store }

// Served returns the number of operations completed.
func (s *Server) Served() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// QueueLen returns the number of operations waiting.
func (s *Server) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// StatsSnapshot returns the server's current statistics document.
func (s *Server) StatsSnapshot() wire.ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// statsLocked builds the stats document; s.mu must be held. The
// metrics state has its own lock, always acquired after s.mu (never
// the reverse), so the nesting is deadlock-free.
func (s *Server) statsLocked() wire.ServerStats {
	st := wire.ServerStats{
		Server:       int(s.cfg.ID),
		Served:       s.served,
		QueueLen:     s.queue.Len(),
		BacklogNanos: int64(s.queue.BacklogDemand()),
		Speed:        s.speedEWMA,
		Keys:         s.store.Len(),
		UptimeNanos:  int64(time.Since(s.start)),
		Policy:       s.queue.Name(),
		Replication:  s.cfg.Replication,
		ServedByOp:   s.metrics.servedByOp(),
		Shed:         s.metrics.shed.Value(),
		Errors:       s.metrics.errors.Value(),
		Batches:      s.metrics.batches.Value(),
		BatchOps:     s.metrics.batchOps.Value(),
		RespFrames:   s.metrics.respFrames.Value(),
		RespFlushes:  s.metrics.respFlushes.Value(),
		DemandError:  s.metrics.demandErrorSummary(),
		OpenConns:    len(s.conns),
		ConnsTotal:   s.connsTotal.Value(),
		// One reader plus one writer goroutine per open connection.
		ConnGoroutines: 2 * len(s.conns),
		Goroutines:     runtime.NumGoroutine(),
		InFlight:       s.inflight.Load(),
	}
	for sc := range s.scs {
		if n := sc.inflight.Load(); n > st.ConnInFlightMax {
			st.ConnInFlightMax = n
		}
	}
	if s.wal != nil {
		ws := s.wal.Stats()
		st.WAL = &wire.WALStats{
			Segments:     ws.Segments,
			Bytes:        ws.Bytes,
			LastSeq:      ws.LastSeq,
			SnapshotSeq:  ws.SnapshotSeq,
			Appended:     ws.Appended,
			Fsyncs:       ws.Fsyncs,
			Policy:       ws.Policy,
			FsyncLatency: durationSummary(ws.FsyncLatency),
			BatchRecords: valueSummary(ws.BatchRecords),
		}
		if ws.CoalesceWindows > 0 {
			st.WAL.CoalescedOps = ws.CoalescedOps
			st.WAL.CoalescedRecords = ws.CoalescedRecords
			st.WAL.CoalesceWindows = ws.CoalesceWindows
			st.WAL.WindowKeys = valueSummary(ws.WindowKeys)
		}
	}
	if dr, ok := s.queue.(sched.DecisionReporter); ok {
		d := dr.Decisions()
		st.Decisions = &wire.SchedDecisions{
			Pushed:       d.Pushed,
			SRPTFirst:    d.SRPTFirst,
			LRPTDemoted:  d.LRPTDemoted,
			NearBoundary: d.NearBoundary,
			Promotions:   d.Promotions,
		}
	}
	if s.split != nil {
		st.Pools = s.poolStatsLocked()
	}
	return st
}

// poolStatsLocked snapshots the size-class split; s.mu must be held.
func (s *Server) poolStatsLocked() *wire.PoolStats {
	return &wire.PoolStats{
		ThresholdBytes:    s.split.Threshold(),
		SmallWorkers:      s.smallWorkers,
		LargeWorkers:      s.largeWorkers,
		SmallQueueLen:     s.split.LenPool(sizeclass.Small),
		LargeQueueLen:     s.split.LenPool(sizeclass.Large),
		SmallBacklogNanos: int64(s.split.BacklogPool(sizeclass.Small)),
		LargeBacklogNanos: int64(s.split.BacklogPool(sizeclass.Large)),
		SmallBusy:         int(s.busy[sizeclass.Small].Load()),
		LargeBusy:         int(s.busy[sizeclass.Large].Load()),
		SmallRouted:       s.split.Routed(sizeclass.Small),
		LargeRouted:       s.split.Routed(sizeclass.Large),
		Stolen:            s.split.Stolen(),
	}
}

// poolStats returns the size-class split snapshot (nil when the server
// runs one undivided pool) — the metrics exposition's view.
func (s *Server) poolStats() *wire.PoolStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.split == nil {
		return nil
	}
	return s.poolStatsLocked()
}

// decisionStats returns the queue's scheduling decision counters (ok
// false when the policy does not report them).
func (s *Server) decisionStats() (sched.DecisionStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dr, ok := s.queue.(sched.DecisionReporter)
	if !ok {
		return sched.DecisionStats{}, false
	}
	return dr.Decisions(), true
}

// Close stops accepting, disconnects clients, and waits for workers.
// On a clustered node Close stops the gossip agent without announcing a
// departure — peers detect the silence via suspicion, exactly like a
// failure. The graceful path is Leave then Close.
func (s *Server) Close() error {
	if s.cluster != nil {
		s.cluster.shutdown()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	close(s.done)
	s.wg.Wait()
	if s.cfg.DataPath != "" {
		if serr := s.saveSnapshot(); serr != nil && err == nil {
			err = serr
		}
	}
	if s.wal != nil {
		// A graceful shutdown compacts the log into a snapshot — the
		// next start loads one file instead of replaying every segment —
		// then closes it, flushing and fsyncing whatever the group
		// committer still holds.
		if _, cerr := s.wal.Compact(s.store.SaveTo); cerr != nil && err == nil {
			err = cerr
		}
		if cerr := s.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Crash tears the server down like a kill -9: the write-ahead log is
// abandoned (no flush, no final fsync — only bytes already handed to
// the OS survive), connections drop, and no snapshot or compaction
// runs. It exists so crash-recovery tests can exercise the real
// recovery path in-process; production shutdown is Close.
func (s *Server) Crash() {
	if s.cluster != nil {
		// No Leave, no goodbye: peers must discover the death through
		// the failure detector, the scenario the chaos tests exercise.
		s.cluster.shutdown()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.wal != nil {
		s.wal.Abandon() // unblocks workers waiting on group-commit acks
	}
	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	close(s.done)
	s.wg.Wait()
}

// loadSnapshot restores the store from DataPath; a missing file is a
// fresh start, not an error.
func (s *Server) loadSnapshot() error {
	f, err := os.Open(s.cfg.DataPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("kv: open snapshot: %w", err)
	}
	defer func() { _ = f.Close() }()
	if err := s.store.LoadFrom(f); err != nil {
		return err
	}
	return nil
}

// saveSnapshot writes the store to DataPath atomically.
func (s *Server) saveSnapshot() error {
	return writeFileAtomic(s.cfg.DataPath, s.store.SaveTo)
}

// writeFileAtomic publishes path via temp file, fsync, and rename: a
// crash or write error mid-save never leaves a truncated or corrupt
// file at path — the previous contents survive untouched.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("kv: create %s: %w", tmp, err)
	}
	if err := write(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("kv: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("kv: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("kv: publish %s: %w", path, err)
	}
	return nil
}

func (s *Server) now() time.Duration { return time.Since(s.start) }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.cfg.WrapConn != nil {
			conn = s.cfg.WrapConn(conn)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.connsTotal.Inc()
		s.wg.Add(1)
		go s.readLoop(conn)
	}
}

func (s *Server) readLoop(conn net.Conn) {
	defer s.wg.Done()
	sc := newServerConn(conn)
	s.mu.Lock()
	s.scs[sc] = struct{}{}
	s.mu.Unlock()
	s.wg.Add(1)
	go s.connWriter(sc)
	r := wire.NewReader(conn)
	defer func() {
		close(sc.stop) // retire the writer goroutine
		r.Release()
		s.mu.Lock()
		delete(s.conns, conn)
		delete(s.scs, sc)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	var reqs []wire.Request
	var ops []*sched.Op
	for {
		version, err := r.ReadRequests(&reqs)
		if err != nil {
			return // EOF, peer reset, or protocol error: drop the conn
		}
		sc.version.Store(uint32(version))
		ops = s.enqueueBatch(sc, reqs, ops[:0])
	}
}

// minDemand floors operation demand so queue backlog stays meaningful
// even for un-costed operations.
const minDemand = time.Microsecond

// buildOp converts one decoded request into a queued operation,
// copying the payload byte fields out of the reader's reused buffers.
func (s *Server) buildOp(sc *serverConn, req *wire.Request, now time.Duration) *sched.Op {
	demand := time.Duration(req.Tags.DemandNanos)
	if s.cfg.Cost != nil {
		if d := s.cfg.Cost(req.Type, len(req.Key), len(req.Value)); d > demand {
			demand = d
		}
	}
	if demand < minDemand {
		demand = minDemand
	}
	var value []byte
	if len(req.Value) > 0 {
		value = getValueBuf(len(req.Value))
		copy(value, req.Value)
	}
	var oldValue []byte
	if len(req.OldValue) > 0 {
		oldValue = getValueBuf(len(req.OldValue))
		copy(oldValue, req.OldValue)
	}
	// The op's payload size drives size-class admission: a put's is its
	// value; a get's is the client's size hint, or — when the pool is
	// split and no hint came — the stored value's actual length, which
	// the server alone knows before service. That lookup is what lets
	// the split protect small ops from clients that cannot predict
	// response sizes; it also re-floors the demand tag so the pool's
	// internal ordering sees the transfer the op implies.
	size := int64(len(req.Value))
	if size == 0 {
		size = int64(req.Tags.SizeHintBytes)
	}
	if s.split != nil {
		if size == 0 && req.Type == wire.OpGet {
			size = int64(s.store.ValueLen(req.Key))
		}
		if size > 0 && s.cfg.Cost != nil {
			if d := s.cfg.Cost(req.Type, len(req.Key), int(size)); d > demand {
				demand = d
			}
		}
	}
	qo := queuedOpPool.Get().(*queuedOp)
	qo.op = sched.Op{
		Server: s.cfg.ID,
		Key:    req.Key,
		Demand: demand,
		Tags: sched.Tags{
			IssuedAt:         now,
			Fanout:           int(req.Tags.Fanout),
			DemandBottleneck: time.Duration(req.Tags.BottleneckNanos),
			ScaledDemand:     demand,
			RemainingTime:    time.Duration(req.Tags.RemainingNanos),
			ExpectedFinish:   now,
			RequestFinish:    now + time.Duration(req.Tags.SlackNanos),
			SizeBytes:        size,
		},
		Payload: qo,
	}
	qo.p = pendingOp{
		conn: sc, typ: req.Type, key: req.Key, value: value,
		id: req.ID, ttl: time.Duration(req.TTLNanos),
		oldValue: oldValue,
		deadline: arrivalDeadline(now, req.DeadlineNanos),
		version:  req.Version,
	}
	return &qo.op
}

// enqueueBatch admits one frame's operations — a multiget's whole
// per-server batch — into the scheduling queue under a single lock
// acquisition, with payload copies built outside the critical section.
// When the queue is batch-capable and the frame's tags are coherent
// (one RemainingNanos/SlackNanos for the whole frame, which a
// batch-aware tagger guarantees), the frame is admitted as a single
// scheduling unit so per-op estimate noise can never shuffle it
// through the queue. It returns the reusable op scratch slice.
func (s *Server) enqueueBatch(sc *serverConn, reqs []wire.Request, ops []*sched.Op) []*sched.Op {
	if len(reqs) == 0 {
		return ops
	}
	now := s.now()
	for i := range reqs {
		ops = append(ops, s.buildOp(sc, &reqs[i], now))
	}
	if len(reqs) > 1 {
		s.metrics.batches.Inc()
		s.metrics.batchOps.Add(uint64(len(reqs)))
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ops
	}
	if bq, ok := s.queue.(sched.BatchPolicy); ok && len(reqs) > 1 && wire.CoherentTags(reqs) {
		bq.PushBatch(ops, now)
	} else {
		for _, op := range ops {
			s.queue.Push(op, now)
		}
	}
	s.mu.Unlock()
	s.inflight.Add(int64(len(reqs)))
	sc.inflight.Add(int64(len(reqs)))
	s.wakeWorkers()
	return ops
}

// wakeWorkers hands out wake tokens after an enqueue. In split mode
// both pools are woken: the frame may hold either class, and an idle
// large pool wants to hear about small work it could steal — a
// spurious wake costs one queue probe, a missed one strands work.
func (s *Server) wakeWorkers() {
	if s.split == nil {
		select {
		case s.wake <- struct{}{}:
		default:
		}
		return
	}
	for p := range s.poolWake {
		select {
		case s.poolWake[p] <- struct{}{}:
		default:
		}
	}
}

// arrivalDeadline anchors a client-supplied remaining-time budget to
// the server clock (0 budget = no deadline).
func arrivalDeadline(now time.Duration, budgetNanos int64) time.Duration {
	if budgetNanos <= 0 {
		return 0
	}
	return now + time.Duration(budgetNanos)
}

var errServerClosed = errors.New("kv: server closed")

// popNext blocks until an operation is available or the server closes.
func (s *Server) popNext() (*sched.Op, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, errServerClosed
		}
		op := s.queue.Pop(s.now())
		s.mu.Unlock()
		if op != nil {
			return op, nil
		}
		select {
		case <-s.wake:
		case <-s.done:
			return nil, errServerClosed
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		op, err := s.popNext()
		if err != nil {
			return
		}
		s.serve(op)
		// Chain wakeups: more work may be queued while all workers
		// were busy and the wake token was consumed.
		s.mu.Lock()
		pending := s.queue.Len() > 0
		s.mu.Unlock()
		if pending {
			select {
			case s.wake <- struct{}{}:
			default:
			}
		}
	}
}

// popNextPool blocks until the pool (or, for a stealing large worker,
// the small pool) has work, or the server closes.
func (s *Server) popNextPool(pool sizeclass.Pool) (*sched.Op, error) {
	steal := pool == sizeclass.Large
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, errServerClosed
		}
		op := s.split.PopPool(pool, s.now(), steal)
		s.mu.Unlock()
		if op != nil {
			return op, nil
		}
		select {
		case <-s.poolWake[pool]:
		case <-s.done:
			return nil, errServerClosed
		}
	}
}

// poolWorker is one size-class pool's service loop: small workers serve
// only small-pool ops (the protection the split exists for); large
// workers serve their own pool first and steal small work when idle so
// the split never leaves capacity unused that an undivided pool would
// have spent.
func (s *Server) poolWorker(pool sizeclass.Pool) {
	defer s.wg.Done()
	for {
		op, err := s.popNextPool(pool)
		if err != nil {
			return
		}
		s.busy[pool].Add(1)
		s.serve(op)
		s.busy[pool].Add(-1)
		// Chain wakeups, pool-aware: small work re-wakes both pools
		// (large workers may be the only idle ones), large work only
		// its own.
		s.mu.Lock()
		small := s.split.LenPool(sizeclass.Small) > 0
		large := s.split.LenPool(sizeclass.Large) > 0
		s.mu.Unlock()
		if small {
			select {
			case s.poolWake[sizeclass.Small] <- struct{}{}:
			default:
			}
		}
		if small || large {
			select {
			case s.poolWake[sizeclass.Large] <- struct{}{}:
			default:
			}
		}
	}
}

// serve executes one operation and writes its response with feedback
// and its server-side timeline (queue wait, service time, scheduling
// class) for client-side straggler attribution.
func (s *Server) serve(op *sched.Op) {
	qo, ok := op.Payload.(*queuedOp)
	if !ok {
		return
	}
	p := &qo.p
	began := time.Now()
	waited := s.now() - op.Enqueued
	if waited < 0 {
		waited = 0
	}
	resp := respPool.Get().(*wire.Response)
	resp.ID, resp.Status = p.id, wire.StatusOK
	resp.Timing = wire.Timing{
		WaitNanos:  int64(waited),
		SchedClass: uint8(op.Class),
	}
	if p.deadline > 0 && s.now() > p.deadline {
		// The client has already given up on this op: shed it without
		// touching the store or burning service time, so live capacity
		// goes to requests that can still meet their deadlines.
		resp.Status = wire.StatusDeadlineExceeded
		s.metrics.observeShed(p.typ, waited)
		s.finishResponse(p, resp)
		releaseOp(qo)
		return
	}
	switch p.typ {
	case wire.OpGet:
		// The response value rides a pooled buffer; the connection
		// writer recycles it after encoding.
		v, ver, found := s.store.GetVersionedAppend(p.key, getValueBuf(0))
		if found {
			resp.Value = v
			resp.Version = ver
		} else {
			putValueBuf(v)
			resp.Status = wire.StatusNotFound
		}
	case wire.OpPut:
		// A stale versioned put is not an error: last-writer-wins means
		// the caller's write was simply superseded; the response carries
		// the winning version either way.
		_, resp.Version = s.store.PutVersioned(p.key, p.value, p.ttl, p.version)
	case wire.OpDelete:
		if !s.store.Delete(p.key) {
			resp.Status = wire.StatusNotFound
		}
	case wire.OpCAS:
		if !s.store.CompareAndSwap(p.key, p.oldValue, p.value) {
			resp.Status = wire.StatusCASMismatch
		}
	case wire.OpIncr:
		// The request value is the signed delta as 8 big-endian bytes;
		// the response value is the resulting total in ASCII decimal,
		// the representation a GET of the same key returns.
		if len(p.value) != 8 {
			resp.Status = wire.StatusError
			break
		}
		delta := int64(binary.BigEndian.Uint64(p.value))
		total, ver, merr := s.store.Merge(p.key, delta, p.ttl)
		if merr != nil {
			resp.Status = wire.StatusError
			break
		}
		resp.Value = strconv.AppendInt(getValueBuf(0), total, 10)
		resp.Version = ver
	case wire.OpStats:
		// Filled below under the stats lock.
	case wire.OpMembers:
		s.serveMembers(resp)
	case wire.OpHandoff:
		s.serveHandoff(p, resp)
	default:
		resp.Status = wire.StatusError
	}
	if isMutation(p.typ) && resp.Status != wire.StatusError {
		if derr := s.store.DurabilityErr(); derr != nil {
			// Fail stop: some mutation's log append failed, so the map
			// may be ahead of disk. Refuse every write from here on
			// rather than acknowledge data a restart would lose.
			resp.Status = wire.StatusError
		}
	}
	if s.cfg.Cost != nil {
		// The payload that moved prices the op: a get costs the bytes it
		// returns, a mutation the bytes it wrote.
		vlen := len(p.value)
		if n := len(resp.Value); n > vlen {
			vlen = n
		}
		s.burn(time.Duration(float64(s.cfg.Cost(p.typ, len(p.key), vlen)) / s.cfg.SpeedFactor))
	}
	elapsed := time.Since(began)
	resp.Timing.ServiceNanos = int64(elapsed)
	if resp.Status == wire.StatusError {
		s.metrics.errors.Inc()
	}
	s.metrics.observe(p.typ, waited, elapsed, op.Demand)

	s.mu.Lock()
	if s.cfg.Cost != nil && elapsed > 0 {
		observed := float64(op.Demand) / float64(elapsed)
		s.speedEWMA += 0.2 * (observed - s.speedEWMA)
	}
	if s.split != nil {
		// Ground truth for the admission classifier: the payload that
		// actually moved, which for a hint-less get is the size the
		// admission decision could only guess at.
		size := len(resp.Value)
		if size == 0 {
			size = len(p.value)
		}
		if size > 0 {
			s.split.ObserveSize(int64(size))
		}
	}
	s.mu.Unlock()
	s.finishResponse(p, resp)
	releaseOp(qo)
}

// finishResponse stamps piggybacked feedback, counts the op, and hands
// the response to the connection's writer goroutine (which owns the
// response from here and recycles it after encoding). A dead
// connection drops the response; the op's effect on the store stands
// either way.
func (s *Server) finishResponse(p *pendingOp, resp *wire.Response) {
	s.mu.Lock()
	resp.Feedback = wire.Feedback{
		QueueLen:     uint32(s.queue.Len()),
		BacklogNanos: int64(s.queue.BacklogDemand()),
		SpeedMilli:   uint32(s.speedEWMA * 1000),
	}
	s.served++
	if p.typ == wire.OpStats && resp.Status == wire.StatusOK {
		if b, err := json.Marshal(s.statsLocked()); err == nil {
			resp.Value = b
		} else {
			resp.Status = wire.StatusError
		}
	}
	s.mu.Unlock()
	s.inflight.Add(-1)
	p.conn.inflight.Add(-1)
	p.conn.send(resp)
}

// burn consumes about d of wall time. Sleeping models I/O-bound
// backends; granularity is fine for the millisecond-scale demands the
// experiments use.
func (s *Server) burn(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
}
