package kv

import (
	"sync"
	"time"

	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/wire"
)

// histSmallest/histLargest bound the server's latency histograms: 1µs
// resolution up to 10s, 4 sub-buckets per octave (~19% relative
// quantile error — plenty for operational dashboards, and small enough
// that a full exposition stays a few KiB).
const (
	histSmallest  = time.Microsecond
	histLargest   = 10 * time.Second
	histPerOctave = 4
)

// demandErrReservoir bounds the demand-error summary's memory.
const demandErrReservoir = 4096

// serverMetrics is the server's measurement state: per-op-type service
// and queue-wait latency histograms, shed/error counters, and the
// demand-estimate error summary. It has its own lock, deliberately
// separate from the server's queue lock, so observation cost never
// extends scheduling critical sections; counters are atomic and free
// of any lock.
type serverMetrics struct {
	shed   metrics.Counter
	errors metrics.Counter
	// Data-plane transport counters: multi-op request frames admitted
	// (batches) and the ops they carried (batchOps); response frames
	// written (respFrames) per transport flush (respFlushes). The ratios
	// are the batching and flush-coalescing factors.
	batches     metrics.Counter
	batchOps    metrics.Counter
	respFrames  metrics.Counter
	respFlushes metrics.Counter

	mu        sync.Mutex
	service   map[wire.OpType]*metrics.Histogram
	wait      map[wire.OpType]*metrics.Histogram
	served    map[wire.OpType]uint64
	demandErr *metrics.Summary
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		service:   make(map[wire.OpType]*metrics.Histogram),
		wait:      make(map[wire.OpType]*metrics.Histogram),
		served:    make(map[wire.OpType]uint64),
		demandErr: metrics.NewSummary(demandErrReservoir),
	}
}

func newOpHistogram() *metrics.Histogram {
	return metrics.NewHistogram(histSmallest, histLargest, histPerOctave)
}

// observe records one served operation: its queue wait, service time,
// and the absolute error of the tagged demand estimate against the
// measured service time.
func (m *serverMetrics) observe(op wire.OpType, waited, service, demand time.Duration) {
	errAbs := service - demand
	if errAbs < 0 {
		errAbs = -errAbs
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.service[op]
	if h == nil {
		h = newOpHistogram()
		m.service[op] = h
	}
	h.Observe(service)
	w := m.wait[op]
	if w == nil {
		w = newOpHistogram()
		m.wait[op] = w
	}
	w.Observe(waited)
	m.served[op]++
	m.demandErr.Observe(errAbs)
}

// observeShed records one operation dropped past its deadline: it
// still waited in the queue (that wait is the evidence an operator
// needs) but was never serviced.
func (m *serverMetrics) observeShed(op wire.OpType, waited time.Duration) {
	m.shed.Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.wait[op]
	if w == nil {
		w = newOpHistogram()
		m.wait[op] = w
	}
	w.Observe(waited)
}

// opMetricsSnapshot is one op type's exported histograms.
type opMetricsSnapshot struct {
	Op      wire.OpType
	Served  uint64
	Service metrics.HistogramSnapshot
	Wait    metrics.HistogramSnapshot
}

// snapshot copies the histogram state out for exposition, ordered by
// op type so the output is deterministic.
func (m *serverMetrics) snapshot() []opMetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]opMetricsSnapshot, 0, len(m.wait))
	for op := wire.OpGet; op <= wire.OpIncr; op++ {
		if m.service[op] == nil && m.wait[op] == nil {
			continue
		}
		s := opMetricsSnapshot{Op: op, Served: m.served[op]}
		if h := m.service[op]; h != nil {
			s.Service = h.Snapshot()
		}
		if w := m.wait[op]; w != nil {
			s.Wait = w.Snapshot()
		}
		out = append(out, s)
	}
	return out
}

// servedByOp copies the per-op-type served counts for the stats
// document ("get" -> n, ...), nil when nothing was served yet.
func (m *serverMetrics) servedByOp() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.served) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(m.served))
	for op, n := range m.served {
		out[op.String()] = n
	}
	return out
}

// demandErrorSummary exports the demand-estimate error distribution
// for the stats document, nil before the first observation.
func (m *serverMetrics) demandErrorSummary() *wire.DurationSummary {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.demandErr.Count() == 0 {
		return nil
	}
	return &wire.DurationSummary{
		Count:     m.demandErr.Count(),
		MeanNanos: int64(m.demandErr.Mean()),
		P50Nanos:  int64(m.demandErr.P50()),
		P99Nanos:  int64(m.demandErr.P99()),
		MaxNanos:  int64(m.demandErr.Max()),
	}
}

// summarizeDemandErr runs fn with the demand-error summary under the
// metrics lock, for exposition (Summary is not concurrency-safe).
func (m *serverMetrics) summarizeDemandErr(fn func(*metrics.Summary)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fn(m.demandErr)
}

// isMutation reports whether an op type writes the store.
func isMutation(t wire.OpType) bool {
	return t == wire.OpPut || t == wire.OpDelete || t == wire.OpCAS || t == wire.OpIncr
}

// durationSummary compresses a latency histogram snapshot into the
// stats document's nanosecond summary shape (nil when empty).
func durationSummary(s metrics.HistogramSnapshot) *wire.DurationSummary {
	if s.Count == 0 {
		return nil
	}
	return &wire.DurationSummary{
		Count:     s.Count,
		MeanNanos: int64(s.Mean()),
		P50Nanos:  int64(s.Quantile(0.5)),
		P99Nanos:  int64(s.Quantile(0.99)),
		MaxNanos:  int64(s.Max()),
	}
}

// valueSummary is durationSummary for histograms whose observations are
// unit-less counts (group-commit batch sizes), nil when empty.
func valueSummary(s metrics.HistogramSnapshot) *wire.ValueSummary {
	if s.Count == 0 {
		return nil
	}
	return &wire.ValueSummary{
		Count: s.Count,
		Mean:  float64(s.Sum) / float64(s.Count),
		P50:   float64(s.Quantile(0.5)),
		P99:   float64(s.Quantile(0.99)),
		Max:   float64(s.Max()),
	}
}
