package kv

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/replica"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/topology"
	"github.com/daskv/daskv/internal/wire"
)

// Errors returned by the client.
var (
	ErrNotFound     = errors.New("kv: key not found")
	ErrClientClosed = errors.New("kv: client closed")
	// ErrUnavailable classifies transport-level failures — failed
	// dials, torn connections, redial backoff — the class the client
	// retries for idempotent reads.
	ErrUnavailable = errors.New("kv: server unavailable")
)

// PartialError reports a degraded multiget: the result map holds every
// key that completed; Errs maps each failed key to its cause. It
// unwraps to the per-key causes, so errors.Is(err,
// context.DeadlineExceeded) and errors.Is(err, ErrUnavailable) answer
// "did anything time out / did a server die" directly.
type PartialError struct {
	Errs map[string]error
}

// Error summarizes the failure; per-key detail is in Errs.
func (e *PartialError) Error() string {
	keys := make([]string, 0, len(e.Errs))
	for k := range e.Errs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 1 {
		return fmt.Sprintf("kv: degraded multiget: key %q: %v", keys[0], e.Errs[keys[0]])
	}
	return fmt.Sprintf("kv: degraded multiget: %d keys failed (first %q: %v)",
		len(keys), keys[0], e.Errs[keys[0]])
}

// Unwrap exposes the per-key causes to errors.Is/As.
func (e *PartialError) Unwrap() []error {
	errs := make([]error, 0, len(e.Errs))
	for _, err := range e.Errs {
		errs = append(errs, err)
	}
	return errs
}

// DemandModel estimates an operation's service demand client-side, used
// for scheduling tags. It should approximate the server's CostModel.
type DemandModel func(op wire.OpType, keyLen, valueLen int) time.Duration

// ReadPolicy selects which replica serves a read when Replicas > 1.
// Each maps onto a replica.Selector policy; the simulator evaluates the
// same selection code.
type ReadPolicy int

// Read-routing strategies.
const (
	// PrimaryRead reads the ring primary, stepping past holders the
	// estimator has quarantined as down.
	PrimaryRead ReadPolicy = iota
	// FastestRead reads the replica with the earliest estimated finish
	// per the client's adaptive view, with Tars-style in-flight
	// compensation (falls back to primary order when tagging is
	// static).
	FastestRead
	// RoundRobinRead rotates reads over the replica set.
	RoundRobinRead
	// LeastOutstandingRead reads the replica with the fewest of this
	// client's requests in flight.
	LeastOutstandingRead
	// RandomRead spreads reads uniformly over the replica set.
	RandomRead
)

// selectorPolicy maps the client's read policy onto the replica
// package's selector, honoring the adaptive/static tagging mode.
func (cfg ClientConfig) selectorPolicy() replica.Policy {
	switch cfg.ReadFrom {
	case FastestRead:
		if cfg.Adaptive {
			return replica.Adaptive
		}
		return replica.Primary
	case RoundRobinRead:
		return replica.RoundRobin
	case LeastOutstandingRead:
		return replica.LeastOutstanding
	case RandomRead:
		return replica.Random
	default:
		return replica.Primary
	}
}

// ClientConfig configures a cluster client.
type ClientConfig struct {
	// Servers maps ring identities to dial addresses.
	Servers map[sched.ServerID]string
	// Vnodes per server on the ring (topology.DefaultVnodes if 0).
	Vnodes int
	// Adaptive enables DAS tagging from piggybacked feedback
	// (static demand tags otherwise).
	Adaptive bool
	// Estimator configures the adaptive view (defaults if zero).
	Estimator core.EstimatorConfig
	// Demand estimates operation demands (a small constant if nil).
	Demand DemandModel
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// Replicas is how many servers hold each key (default 1). Writes
	// fan out synchronously to every replica holder stamped with one
	// last-writer-wins version; reads go to one holder per ReadFrom and
	// fail over to siblings on transport errors (see ReadRetries).
	// Failover reads trigger asynchronous read-repair so replicas that
	// missed a write converge (disable with NoReadRepair).
	Replicas int
	// ReadFrom picks the serving replica for reads (default primary).
	ReadFrom ReadPolicy
	// DefaultConsistency is the level applied when an operation is
	// issued without an explicit one (Get/Put/Delete, or a *Level call
	// passing wire.ConsistencyDefault). Zero keeps the legacy
	// pre-cluster semantics: writes fan out to every holder and wait
	// for all, reads consult one selector-chosen holder.
	DefaultConsistency wire.Consistency
	// NoReadRepair disables the automatic read-repair issued after a
	// read had to fail over to a sibling replica. Explicit Repair calls
	// still work.
	NoReadRepair bool
	// ReconnectBackoff is the minimum gap between redial attempts to a
	// dead server (default 500ms). Operations targeting a dead server
	// inside the backoff window fail fast.
	ReconnectBackoff time.Duration
	// RequestTimeout is the default per-request deadline applied when a
	// caller's context carries none (0 = none). The remaining budget is
	// forwarded on the wire so servers shed operations that can no
	// longer meet it.
	RequestTimeout time.Duration
	// ReadRetries is how many extra attempts an idempotent read (Get /
	// MGet operation) gets after a transport failure, each preceded by
	// jittered exponential backoff and re-routed around servers marked
	// down (default 0 = fail on first error). Writes are never retried.
	ReadRetries int
	// RetryBackoff is the base of the read-retry backoff: attempt n
	// sleeps RetryBackoff * 2^n, jittered uniformly in [0.5x, 1.5x)
	// (default 5ms when ReadRetries > 0).
	RetryBackoff time.Duration
	// Seed drives client-side randomness (retry jitter); 0 derives a
	// seed from the clock. Fix it for reproducible chaos tests.
	Seed uint64
	// Dial, when set, replaces net.DialTimeout for server connections —
	// the hook fault injection uses to corrupt or stall client-side
	// traffic in tests.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// TraceDepth is how many recent multiget traces the client retains
	// for Client.Traces and kvctl's `trace` subcommand (0 = the
	// default of 64; negative disables tracing). Each retained trace
	// costs one OpTrace per operation.
	TraceDepth int
	// ProtocolVersion pins the wire protocol the client speaks (0 =
	// current, wire.Version). Pin wire.Version2 to interoperate with
	// pre-batching servers: multiget batches then degrade to runs of
	// single-op v2 frames that still share one flush per server.
	ProtocolVersion int
	// MaxBatchOps caps how many operations ride in one batch frame
	// (default DefaultMaxBatchOps, hard-capped at wire.MaxBatchOps).
	// Larger per-server groups split into several frames.
	MaxBatchOps int
	// WriteFanoutLimit bounds how many per-server write batches MSet
	// keeps in flight concurrently (default 2× the server count). It is
	// the replacement for the old goroutine-per-key fan-out: a large
	// multiset now costs O(servers) goroutines, never O(keys).
	WriteFanoutLimit int
	// SizeHint predicts a read's payload size in bytes (0 = unknown).
	// When set, the expected size rides the wire as Tags.SizeHintBytes —
	// what lets a size-class server keep a large get out of its
	// small-op pool before the store has looked the key up — and, under
	// Adaptive tagging, feeds the estimator's learned size model so the
	// op's demand tag reflects its payload instead of the static Demand
	// heuristic. Writes need no hint; their value length is the size.
	SizeHint func(op wire.OpType, key string) int
}

// DefaultMaxBatchOps is the batch frame width when MaxBatchOps is 0.
const DefaultMaxBatchOps = 512

// maxBatchBytes soft-bounds one batch frame's payload so multisets of
// large values split well below the 16 MiB wire frame limit.
const maxBatchBytes = 4 << 20

// reqOverhead approximates one encoded operation's fixed framing cost,
// for the byte-aware batch splitting.
const reqOverhead = 96

// batchLimit returns the effective per-frame operation cap.
func (cfg ClientConfig) batchLimit() int {
	n := cfg.MaxBatchOps
	if n <= 0 {
		n = DefaultMaxBatchOps
	}
	if n > wire.MaxBatchOps {
		n = wire.MaxBatchOps
	}
	return n
}

// writeLimit returns the effective concurrent write-batch cap.
func (cfg ClientConfig) writeLimit() int {
	if cfg.WriteFanoutLimit > 0 {
		return cfg.WriteFanoutLimit
	}
	return 2 * len(cfg.Servers)
}

// DefaultTraceDepth is the trace ring size when TraceDepth is 0.
const DefaultTraceDepth = 64

// Client is a partition-aware key-value client: single-key operations
// plus the multiget that the scheduling work is all about.
type Client struct {
	cfg    ClientConfig
	ring   *topology.Ring
	est    *core.Estimator
	place  *replica.Placement
	sel    *replica.Selector
	vclock *replica.Clock
	start  time.Time
	traces *traceRing
	cm     *clientMetrics

	mu       sync.Mutex
	conns    map[sched.ServerID]*clientConn
	redialAt map[sched.ServerID]time.Time
	closed   bool

	rngMu sync.Mutex
	rng   *rand.Rand

	repairMu     sync.Mutex
	repairing    map[string]bool
	repairClosed bool
	repairWG     sync.WaitGroup

	nextID atomic.Uint64
}

// defaultDemand is the fallback client-side demand estimate.
func defaultDemand(wire.OpType, int, int) time.Duration { return 100 * time.Microsecond }

// NewClient connects to every server in cfg.Servers.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Servers) == 0 {
		return nil, errors.New("kv: client needs at least one server")
	}
	if cfg.Demand == nil {
		cfg.Demand = defaultDemand
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if (cfg.Estimator == core.EstimatorConfig{}) {
		cfg.Estimator = core.DefaultEstimatorConfig()
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas < 0 || cfg.Replicas > len(cfg.Servers) {
		return nil, fmt.Errorf("kv: replicas %d must be within [1, %d servers]",
			cfg.Replicas, len(cfg.Servers))
	}
	if cfg.ReadFrom < PrimaryRead || cfg.ReadFrom > RandomRead {
		return nil, fmt.Errorf("kv: unknown read policy %d", cfg.ReadFrom)
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = 500 * time.Millisecond
	}
	if cfg.RequestTimeout < 0 {
		return nil, fmt.Errorf("kv: negative request timeout %v", cfg.RequestTimeout)
	}
	if cfg.ReadRetries < 0 {
		return nil, fmt.Errorf("kv: negative read retries %d", cfg.ReadRetries)
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	switch cfg.ProtocolVersion {
	case 0:
		cfg.ProtocolVersion = wire.Version
	case wire.Version2, wire.Version3, wire.Version4:
	default:
		return nil, fmt.Errorf("kv: unsupported protocol version %d", cfg.ProtocolVersion)
	}
	if cfg.DefaultConsistency > wire.ConsistencyAll {
		return nil, fmt.Errorf("kv: unknown consistency level %d", cfg.DefaultConsistency)
	}
	if cfg.MaxBatchOps < 0 {
		return nil, fmt.Errorf("kv: negative batch limit %d", cfg.MaxBatchOps)
	}
	if cfg.WriteFanoutLimit < 0 {
		return nil, fmt.Errorf("kv: negative write fan-out limit %d", cfg.WriteFanoutLimit)
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	ids := make([]sched.ServerID, 0, len(cfg.Servers))
	for id := range cfg.Servers {
		ids = append(ids, id)
	}
	ring, err := topology.NewRing(ids, cfg.Vnodes)
	if err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	est, err := core.NewEstimator(cfg.Estimator)
	if err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	place, err := replica.NewPlacement(ring, cfg.Replicas)
	if err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	sel, err := replica.NewSelector(cfg.selectorPolicy(), est, seed^0x5e1ec7)
	if err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	c := &Client{
		cfg:       cfg,
		ring:      ring,
		est:       est,
		place:     place,
		sel:       sel,
		vclock:    replica.NewClock(nil),
		start:     time.Now(),
		cm:        newClientMetrics(),
		conns:     make(map[sched.ServerID]*clientConn, len(cfg.Servers)),
		redialAt:  make(map[sched.ServerID]time.Time, len(cfg.Servers)),
		repairing: make(map[string]bool),
		rng:       rand.New(rand.NewPCG(seed, seed^0xda5c0def00d)),
	}
	if cfg.TraceDepth >= 0 {
		depth := cfg.TraceDepth
		if depth == 0 {
			depth = DefaultTraceDepth
		}
		c.traces = newTraceRing(depth)
	}
	for id, addr := range cfg.Servers {
		cc, err := c.dial(id, addr)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		c.conns[id] = cc
	}
	return c, nil
}

func (c *Client) now() time.Duration { return time.Since(c.start) }

// opCtx applies the configured default per-request deadline when the
// caller's context carries none.
func (c *Client) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.cfg.RequestTimeout <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.cfg.RequestTimeout)
}

// deadlineBudget converts a context deadline into the remaining-time
// budget carried on the wire (0 = no deadline).
func deadlineBudget(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	rem := time.Until(dl)
	if rem <= 0 {
		return 1 // already expired; the server sheds it on arrival
	}
	return int64(rem)
}

// taggingEst returns the estimator used for tagging, nil when the
// client runs static tags.
func (c *Client) taggingEst() *core.Estimator {
	if c.cfg.Adaptive {
		return c.est
	}
	return nil
}

// noteServerFailure marks a server down in the adaptive view so
// subsequent routing and tagging treat it as a last resort until it
// answers again or its quarantine ages out.
func (c *Client) noteServerFailure(id sched.ServerID) {
	c.est.MarkDown(id, c.now())
}

// observeService feeds one server-reported service time back into the
// adaptive demand estimator, closing the calibration loop: the
// estimator learns the per-server ratio between predicted demand and
// actual service, so tags converge toward true service times even when
// the configured demand model is wrong. Only genuinely served
// operations teach — shed ops (ServiceNanos 0) and server errors carry
// no service-time signal, and v2 peers that report no Timing block are
// ignored. NotFound and CASMismatch are real service — full lookups
// that merely found nothing to change — so they count.
func (c *Client) observeService(server sched.ServerID, predicted time.Duration, tm wire.Timing, status wire.Status, sizeBytes int64) {
	if !c.cfg.Adaptive || tm.ServiceNanos <= 0 {
		return
	}
	switch status {
	case wire.StatusOK, wire.StatusNotFound, wire.StatusCASMismatch:
		c.est.ObserveService(server, predicted, time.Duration(tm.ServiceNanos))
		// The payload that actually moved also teaches the size model,
		// so future size hints map to realistic demands.
		c.est.ObserveSizedService(server, sizeBytes, time.Duration(tm.ServiceNanos))
	}
}

// demandFor estimates one operation's service demand and payload size.
// A known size (a write's value, or a read with a SizeHint) prefers the
// estimator's learned per-size-class model once it has seen enough
// traffic — so a 1 MB get is tagged with the realistically large
// demand its transfer implies — falling back to the static Demand
// heuristic before the model is ready or when size is unknown.
func (c *Client) demandFor(op wire.OpType, key string, valueLen int) (demand time.Duration, sizeBytes int64) {
	sizeBytes = int64(valueLen)
	if sizeBytes == 0 && c.cfg.SizeHint != nil {
		if n := c.cfg.SizeHint(op, key); n > 0 {
			sizeBytes = int64(n)
		}
	}
	if c.cfg.Adaptive && sizeBytes > 0 {
		if d, ok := c.est.SizedDemand(sizeBytes); ok {
			return d, sizeBytes
		}
	}
	// The static model prices a read's expected payload like a write's
	// actual one — without this a hinted 1 MB get would be tagged as a
	// tiny op until the learned model warms up, inverting SRPT order
	// and poisoning the server-speed feedback (demand vs elapsed).
	if valueLen == 0 && sizeBytes > 0 && sizeBytes <= int64(int(^uint(0)>>1)) {
		valueLen = int(sizeBytes)
	}
	return c.cfg.Demand(op, len(key), valueLen), sizeBytes
}

// retrySleep waits one jittered exponential-backoff step before retry
// attempt n (0-based): RetryBackoff * 2^n, scaled uniformly in
// [0.5, 1.5), honoring context cancellation.
func (c *Client) retrySleep(ctx context.Context, attempt int) error {
	if attempt > 16 {
		attempt = 16 // cap the exponent; backoff beyond ~5min is silly
	}
	c.rngMu.Lock()
	jitter := 0.5 + c.rng.Float64()
	c.rngMu.Unlock()
	d := time.Duration(float64(c.cfg.RetryBackoff<<uint(attempt)) * jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close tears down all connections; in-flight calls fail. Background
// read-repair goroutines are drained before Close returns.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*clientConn, 0, len(c.conns))
	for _, cc := range c.conns {
		conns = append(conns, cc)
	}
	c.mu.Unlock()
	for _, cc := range conns {
		cc.shutdown(ErrClientClosed)
	}
	// Refuse new repair launches, then wait out the in-flight ones —
	// with the connections gone they fail fast.
	c.repairMu.Lock()
	c.repairClosed = true
	c.repairMu.Unlock()
	c.repairWG.Wait()
	return nil
}

// Get fetches one key at the client's default consistency level.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	return c.GetLevel(ctx, key, wire.ConsistencyDefault)
}

// get is the single-holder read path: one selector-chosen replica via
// the multiget machinery (retries, failover, tracing included).
func (c *Client) get(ctx context.Context, key string) ([]byte, error) {
	res, err := c.MGet(ctx, []string{key})
	if err != nil {
		return nil, err
	}
	v, ok := res[key]
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

// Put stores one key on every replica (synchronous write fan-out).
func (c *Client) Put(ctx context.Context, key string, value []byte) error {
	return c.PutTTL(ctx, key, value, 0)
}

// PutTTL stores one key on every replica, expiring after ttl (0 =
// never), at the client's default consistency level.
func (c *Client) PutTTL(ctx context.Context, key string, value []byte, ttl time.Duration) error {
	return c.PutTTLLevel(ctx, key, value, ttl, wire.ConsistencyDefault)
}

// ErrCASMismatch reports a CompareAndSwap whose expected value did not
// match.
var ErrCASMismatch = errors.New("kv: compare-and-swap mismatch")

// CompareAndSwap atomically replaces key's value iff its current value
// equals oldValue (empty oldValue = "expect absent"). It returns
// ErrCASMismatch when the comparison fails. CAS is restricted to
// single-replica configurations: with write fan-out there is no
// cross-replica atomicity to offer.
func (c *Client) CompareAndSwap(ctx context.Context, key string, oldValue, newValue []byte) error {
	if c.cfg.Replicas > 1 {
		return fmt.Errorf("kv: CAS requires a single-replica configuration (have %d)", c.cfg.Replicas)
	}
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	resp, err := c.doCAS(ctx, key, oldValue, newValue)
	if err != nil {
		return err
	}
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusCASMismatch:
		return ErrCASMismatch
	default:
		return fmt.Errorf("kv: CAS on %q failed", key)
	}
}

// Incr atomically adds delta to the integer counter stored under key
// (absent = 0, stored as ASCII decimal, so Get interoperates) and
// returns the new total. Like CAS it is a read-modify-write, so it is
// restricted to single-replica configurations, and it needs protocol
// v4 on the wire. On servers running the `coalesce` WAL sync policy a
// hot counter's increments fold into one log record per commit window,
// so disk bytes track distinct keys rather than increments.
func (c *Client) Incr(ctx context.Context, key string, delta int64) (int64, error) {
	return c.IncrTTL(ctx, key, delta, 0)
}

// IncrTTL is Incr with an expiry restamp (0 = keep forever), the
// shape rate-limit windows want.
func (c *Client) IncrTTL(ctx context.Context, key string, delta int64, ttl time.Duration) (int64, error) {
	if c.cfg.Replicas > 1 {
		return 0, fmt.Errorf("kv: Incr requires a single-replica configuration (have %d)", c.cfg.Replicas)
	}
	if c.cfg.ProtocolVersion < wire.Version4 {
		return 0, fmt.Errorf("kv: Incr requires protocol v4 (client pinned to v%d)", c.cfg.ProtocolVersion)
	}
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(delta))
	resp, err := c.doTTL(ctx, wire.OpIncr, key, buf[:], c.ring.Lookup(key), ttl, 0, wire.ConsistencyDefault)
	if err != nil {
		return 0, err
	}
	if resp.Status != wire.StatusOK {
		return 0, fmt.Errorf("kv: incr on %q failed (status %d)", key, resp.Status)
	}
	total, perr := strconv.ParseInt(string(resp.Value), 10, 64)
	if perr != nil {
		return 0, fmt.Errorf("kv: incr on %q returned non-integer total %q", key, resp.Value)
	}
	return total, nil
}

// MSet stores many keys (each replicated per the client's Replicas
// setting). Writes are grouped by destination server and sent as batch
// frames — one goroutine and O(1) syscalls per server, never one per
// key — with at most WriteFanoutLimit batches in flight. It fails on
// the first error; on error some writes may have been applied.
func (c *Client) MSet(ctx context.Context, pairs map[string][]byte) error {
	if len(pairs) == 0 {
		return nil
	}
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	// Group by destination server, replica-aware: each key fans out to
	// every holder, replicated puts stamped with one last-writer-wins
	// version so partial fan-outs reconcile under read-repair.
	groups := make(map[sched.ServerID][]writeOp, len(c.cfg.Servers))
	for k, v := range pairs {
		var version uint64
		if c.cfg.Replicas > 1 {
			version = uint64(c.vclock.Next())
		}
		for _, server := range c.place.For(k) {
			groups[server] = append(groups[server], writeOp{key: k, value: v, version: version})
		}
	}
	// Split each server's run into frame-sized chunks and drain them
	// through a bounded worker pool.
	type chunk struct {
		server sched.ServerID
		ops    []writeOp
	}
	var chunks []chunk
	limit := c.cfg.batchLimit()
	for server, list := range groups {
		for start := 0; start < len(list); {
			end, bytes := start, 0
			for end < len(list) && end-start < limit {
				sz := len(list[end].key) + len(list[end].value) + reqOverhead
				if end > start && bytes+sz > maxBatchBytes {
					break
				}
				bytes += sz
				end++
			}
			chunks = append(chunks, chunk{server: server, ops: list[start:end]})
			start = end
		}
	}
	workers := c.cfg.writeLimit()
	if workers > len(chunks) {
		workers = len(chunks)
	}
	work := make(chan chunk)
	errs := make(chan error, len(chunks))
	for w := 0; w < workers; w++ {
		go func() {
			for ch := range work {
				errs <- c.putBatch(ctx, ch.server, ch.ops)
			}
		}()
	}
	for _, ch := range chunks {
		work <- ch
	}
	close(work)
	var firstErr error
	for range chunks {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// writeOp is one pending put of a multiset: a key, its value, and the
// last-writer-wins version it was stamped with.
type writeOp struct {
	key     string
	value   []byte
	version uint64
}

// putBatch sends one server's chunk of multiset writes as a single
// batch frame and waits out every acknowledgement. It returns the
// first per-op failure (transport, server error, or deadline shed).
func (c *Client) putBatch(ctx context.Context, server sched.ServerID, ops []writeOp) error {
	now := c.now()
	cc, err := c.conn(server)
	if err != nil {
		return err
	}
	dl := deadlineBudget(ctx)
	reqs := make([]wire.Request, len(ops))
	ids := make([]uint64, len(ops))
	chs := make([]chan wire.Response, len(ops))
	demands := make([]time.Duration, len(ops))
	// Writes are tagged individually (fanout 1), matching the single-key
	// path; one reusable op keeps the loop allocation-free.
	var op sched.Op
	tagBuf := []*sched.Op{&op}
	for i, wo := range ops {
		demand, size := c.demandFor(wire.OpPut, wo.key, len(wo.value))
		demands[i] = demand
		op = sched.Op{
			Server: server,
			Key:    wo.key,
			Demand: demands[i],
		}
		op.Tags.SizeBytes = size
		core.Tag(tagBuf, c.taggingEst(), now)
		id := c.nextID.Add(1)
		ids[i] = id
		chs[i] = cc.register(id)
		reqs[i] = wire.Request{
			ID: id, Type: wire.OpPut, Key: wo.key, Value: wo.value,
			Tags: wireTags(&op), DeadlineNanos: dl, Version: wo.version,
		}
	}
	if werr := cc.writeBatch(reqs); werr != nil {
		for _, id := range ids {
			cc.unregister(id)
		}
		c.noteServerFailure(server)
		return fmt.Errorf("%w: send to server %d: %w", ErrUnavailable, server, werr)
	}
	var firstErr error
	for i := range ops {
		var opErr error
		select {
		case resp, ok := <-chs[i]:
			switch {
			case !ok:
				opErr = fmt.Errorf("%w: connection to server %d lost awaiting %q",
					ErrUnavailable, server, ops[i].key)
			case resp.Status == wire.StatusError:
				opErr = fmt.Errorf("kv: server error for key %q", ops[i].key)
			case resp.Status == wire.StatusDeadlineExceeded:
				opErr = fmt.Errorf("kv: server %d shed %q past its deadline: %w",
					server, ops[i].key, context.DeadlineExceeded)
			}
			if ok {
				c.observeService(server, demands[i], resp.Timing, resp.Status, int64(len(ops[i].value)))
				putRespChan(chs[i])
				putValueBuf(resp.Value)
			}
		case <-ctx.Done():
			cc.unregister(ids[i])
			opErr = ctx.Err()
		}
		if opErr != nil && firstErr == nil {
			firstErr = opErr
		}
	}
	return firstErr
}

// Delete removes one key from every replica at the client's default
// consistency level. Deleting a key absent from all consulted replicas
// returns ErrNotFound.
func (c *Client) Delete(ctx context.Context, key string) error {
	return c.DeleteLevel(ctx, key, wire.ConsistencyDefault)
}

// fanoutWrite sends a write to every replica holder and waits for all.
// Replicated puts are stamped with one last-writer-wins version from
// the client's clock, so partial fan-outs reconcile deterministically
// under read-repair. It reports whether any replica answered StatusOK.
func (c *Client) fanoutWrite(ctx context.Context, typ wire.OpType, key string, value []byte, ttl time.Duration, level wire.Consistency) (bool, error) {
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	var version uint64
	if typ == wire.OpPut && c.cfg.Replicas > 1 {
		version = uint64(c.vclock.Next())
	}
	replicas := c.place.For(key)
	if len(replicas) == 1 {
		resp, err := c.doTTL(ctx, typ, key, value, replicas[0], ttl, version, level)
		if err != nil {
			return false, err
		}
		return resp.Status == wire.StatusOK, nil
	}
	type outcome struct {
		ok  bool
		err error
	}
	results := make(chan outcome, len(replicas))
	for _, server := range replicas {
		server := server
		go func() {
			resp, err := c.doTTL(ctx, typ, key, value, server, ttl, version, level)
			if err != nil {
				results <- outcome{err: err}
				return
			}
			results <- outcome{ok: resp.Status == wire.StatusOK}
		}()
	}
	anyOK := false
	var firstErr error
	for range replicas {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		anyOK = anyOK || r.ok
	}
	if firstErr != nil {
		return anyOK, firstErr
	}
	return anyOK, nil
}

// routeRead picks the serving replica for a read of key at time now and
// records the dispatch in the selector's in-flight accounting; every
// routeRead must be balanced by exactly one retireRead.
func (c *Client) routeRead(key string, demand, now time.Duration) sched.ServerID {
	s := c.sel.Pick(c.place.For(key), demand, now)
	c.sel.OnDispatch(s)
	return s
}

// retireRead retires one dispatched read (response arrived or the
// attempt died).
func (c *Client) retireRead(server sched.ServerID) {
	c.sel.OnComplete(server)
}

// MGet fetches many keys in parallel — the end-user request whose
// completion time DAS schedules for. Missing keys are absent from the
// result map.
//
// MGet degrades gracefully: when some operations fail (a server died
// mid-request, a deadline expired), it still returns every key that
// completed, alongside a *PartialError carrying the per-key causes. A
// nil error means every key was resolved (present or definitively
// absent). Transport failures on individual operations are retried up
// to ReadRetries times with jittered backoff, re-routed around servers
// the estimator has marked down.
func (c *Client) MGet(ctx context.Context, keys []string) (map[string][]byte, error) {
	if len(keys) == 0 {
		return map[string][]byte{}, nil
	}
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	wallStart := time.Now()
	now := c.now()
	opsBacking := make([]sched.Op, len(keys))
	ops := make([]*sched.Op, len(keys))
	scores := make([]time.Duration, len(keys))
	for i, k := range keys {
		demand, size := c.demandFor(wire.OpGet, k, 0)
		// Routing the batch sequentially lets the selector's in-flight
		// accounting spread a wide multiget across replicas instead of
		// dogpiling the holder that looked best a microsecond ago.
		opsBacking[i] = sched.Op{
			Server: c.routeRead(k, demand, now),
			Key:    k,
			Demand: demand,
		}
		opsBacking[i].Tags.SizeBytes = size
		ops[i] = &opsBacking[i]
		scores[i] = c.sel.ScoreOf(ops[i].Server, demand, now).Finish - now
	}
	core.Tag(ops, c.taggingEst(), now)

	// Group the fan-out by destination server: one goroutine and one
	// batch frame per server, instead of one goroutine and one wire
	// frame per operation. Responses stay per-op, so the server's
	// scheduler reorders freely within and across batches.
	groups := make(map[sched.ServerID][]int, len(c.cfg.Servers))
	for i, op := range ops {
		groups[op.Server] = append(groups[op.Server], i)
	}
	results := make(chan keyResult, len(ops))
	for server, idxs := range groups {
		server, idxs := server, idxs
		go c.mgetBatch(ctx, server, ops, idxs, scores, now, results)
	}
	out := make(map[string][]byte, len(keys))
	var failed map[string]error
	traces := make([]OpTrace, len(ops))
	for range ops {
		r := <-results
		traces[r.index] = r.trace
		switch {
		case r.err != nil:
			if failed == nil {
				failed = make(map[string]error)
			}
			failed[keys[r.index]] = r.err
		case r.found:
			out[keys[r.index]] = r.value
		}
	}
	c.recordRequest(wallStart, traces, failed != nil)
	if failed != nil {
		return out, &PartialError{Errs: failed}
	}
	return out, nil
}

// recordRequest finalizes a multiget's trace — flags the straggler,
// feeds the client-local histograms — and retains it in the ring.
func (c *Client) recordRequest(wallStart time.Time, traces []OpTrace, partial bool) {
	straggler := -1
	var rct time.Duration
	for i := range traces {
		if traces[i].End >= rct {
			rct = traces[i].End
			straggler = i
		}
	}
	if straggler >= 0 {
		traces[straggler].Straggler = true
	}
	c.cm.observeRequest(rct, traces, partial)
	if c.traces == nil {
		return
	}
	c.traces.add(RequestTrace{
		Start:          wallStart,
		RCT:            rct,
		Fanout:         len(traces),
		StragglerIndex: straggler,
		Partial:        partial,
		Ops:            traces,
	})
}

// keyResult is one resolved multiget operation flowing back to MGet's
// collector.
type keyResult struct {
	index int
	value []byte
	found bool
	err   error
	trace OpTrace
}

// emitResult delivers one resolved multiget operation, building its
// trace entry. A plain method with explicit arguments (no captured
// closure) so the happy path allocates nothing per group.
func (c *Client) emitResult(results chan<- keyResult, op *sched.Op, i int, score, start, reqStart time.Duration, value []byte, found bool, tm wire.Timing, attempts int, err error) {
	res := keyResult{index: i, value: value, found: found, err: err}
	res.trace = OpTrace{
		Index:          i,
		Key:            op.Key,
		Server:         op.Server,
		Replicas:       c.cfg.Replicas,
		Attempts:       attempts,
		Start:          start - reqStart,
		End:            c.now() - reqStart,
		ExpectedFinish: op.Tags.ExpectedFinish - reqStart,
		Score:          score,
		Wait:           time.Duration(tm.WaitNanos),
		Service:        time.Duration(tm.ServiceNanos),
		Class:          sched.Class(tm.SchedClass).String(),
		Bytes:          len(value),
		Found:          found,
	}
	if err != nil {
		res.trace.Err = err.Error()
	}
	results <- res
}

// retryEmit continues one failed read on the retry ladder and emits its
// final outcome — the goroutine body for ops that leave the batch path.
func (c *Client) retryEmit(ctx context.Context, op *sched.Op, i int, score, start, reqStart time.Duration, results chan<- keyResult, lastErr error, lastTm wire.Timing) {
	value, found, tm, attempts, err := c.retryGet(ctx, op, lastErr, lastTm, 1)
	c.emitResult(results, op, i, score, start, reqStart, value, found, tm, attempts, err)
}

// retryAllEmit hands every op in a group to its own retry continuation
// after a whole-batch transport failure — the rare path, so the
// goroutine-per-op cost returns only under failure. Each op's dispatch
// accounting is retired here; the retry ladder re-routes from scratch.
func (c *Client) retryAllEmit(ctx context.Context, ops []*sched.Op, idxs []int, scores []time.Duration, start, reqStart time.Duration, results chan<- keyResult, err error) {
	for _, i := range idxs {
		op := ops[i]
		c.retireRead(op.Server)
		go c.retryEmit(ctx, op, i, scores[i], start, reqStart, results, err, wire.Timing{})
	}
}

// getWaiter pairs one in-flight read's wire ID with its response
// channel.
type getWaiter struct {
	id uint64
	ch chan wire.Response
}

// mgetBatch resolves one destination server's share of a multiget: it
// registers every waiter, sends the whole group as one batch frame
// (split only past the frame limits), then collects per-op responses.
// Operations that fail in a retryable way continue individually on the
// existing re-route-and-backoff path, so batching never weakens the
// degraded-multiget guarantees.
func (c *Client) mgetBatch(ctx context.Context, server sched.ServerID, ops []*sched.Op, idxs []int, scores []time.Duration, reqStart time.Duration, results chan<- keyResult) {
	start := c.now()
	cc, err := c.conn(server)
	if err != nil {
		if !errors.Is(err, ErrClientClosed) {
			err = fmt.Errorf("%w: %w", ErrUnavailable, err)
		}
		c.retryAllEmit(ctx, ops, idxs, scores, start, reqStart, results, err)
		return
	}
	dl := deadlineBudget(ctx)
	waiters := make([]getWaiter, len(idxs))
	reqs := make([]wire.Request, len(idxs))
	for j, i := range idxs {
		op := ops[i]
		id := c.nextID.Add(1)
		waiters[j] = getWaiter{id: id, ch: cc.register(id)}
		reqs[j] = wire.Request{
			ID:            id,
			Type:          wire.OpGet,
			Key:           op.Key,
			Tags:          wireTags(op),
			DeadlineNanos: dl,
		}
	}
	if werr := c.writeChunked(cc, reqs); werr != nil {
		for _, w := range waiters {
			cc.unregister(w.id)
		}
		c.noteServerFailure(server)
		c.retryAllEmit(ctx, ops, idxs, scores, start, reqStart, results,
			fmt.Errorf("%w: send to server %d: %w", ErrUnavailable, server, werr))
		return
	}
	for j, i := range idxs {
		op := ops[i]
		value, _, found, tm, err := c.awaitGet(ctx, cc, waiters[j].id, waiters[j].ch, op)
		c.retireRead(op.Server)
		if err == nil {
			c.emitResult(results, op, i, scores[i], start, reqStart, value, found, tm, 1, nil)
			continue
		}
		go c.retryEmit(ctx, op, i, scores[i], start, reqStart, results, err, tm)
	}
}

// writeChunked sends reqs as one batch frame, splitting only when the
// group exceeds the per-frame operation or byte limits.
func (c *Client) writeChunked(cc *clientConn, reqs []wire.Request) error {
	limit := c.cfg.batchLimit()
	for start := 0; start < len(reqs); {
		end, bytes := start, 0
		for end < len(reqs) && end-start < limit {
			sz := len(reqs[end].Key) + len(reqs[end].Value) + len(reqs[end].OldValue) + reqOverhead
			if end > start && bytes+sz > maxBatchBytes {
				break
			}
			bytes += sz
			end++
		}
		if err := cc.writeBatch(reqs[start:end]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// retryGet continues a read whose dispatches so far (attempts of them,
// the last failing with lastErr) were unsuccessful, re-routing around
// servers marked down with jittered backoff between attempts — the
// same degradation ladder the pre-batching per-op path used. A read
// that succeeds only here schedules read-repair for the key: the
// failed holder may have missed writes while unreachable.
func (c *Client) retryGet(ctx context.Context, op *sched.Op, lastErr error, lastTm wire.Timing, attempts int) (value []byte, found bool, tm wire.Timing, n int, err error) {
	for {
		if ctx.Err() != nil || errors.Is(lastErr, ErrClientClosed) {
			return nil, false, lastTm, attempts, lastErr
		}
		if attempts > c.cfg.ReadRetries || !errors.Is(lastErr, ErrUnavailable) {
			return nil, false, lastTm, attempts, lastErr
		}
		if serr := c.retrySleep(ctx, attempts-1); serr != nil {
			return nil, false, lastTm, attempts, lastErr
		}
		// Re-route: the failed server is marked down now, so a
		// replicated key lands on a healthy holder; re-stamp tags for
		// the fresh dispatch.
		c.cm.noteRetry()
		rnow := c.now()
		op.Server = c.routeRead(op.Key, op.Demand, rnow)
		core.Tag([]*sched.Op{op}, c.taggingEst(), rnow)
		value, _, found, tm, err = c.tryGet(ctx, op, wire.ConsistencyDefault)
		c.retireRead(op.Server)
		attempts++
		if err == nil {
			c.maybeRepair(op.Key)
			return value, found, tm, attempts, nil
		}
		lastErr, lastTm = err, tm
	}
}

// awaitGet waits out one registered read response and maps its status
// to the read result. Value buffers that are not surfaced to the
// caller return to the shared pool here.
func (c *Client) awaitGet(ctx context.Context, cc *clientConn, id uint64, ch chan wire.Response, op *sched.Op) (value []byte, version uint64, found bool, tm wire.Timing, err error) {
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, 0, false, tm, fmt.Errorf("%w: connection to server %d lost awaiting %q",
				ErrUnavailable, op.Server, op.Key)
		}
		putRespChan(ch)
		tm = resp.Timing
		c.observeService(op.Server, op.Demand, tm, resp.Status, int64(len(resp.Value)))
		switch resp.Status {
		case wire.StatusOK:
			return resp.Value, resp.Version, true, tm, nil
		case wire.StatusNotFound:
			putValueBuf(resp.Value)
			return nil, 0, false, tm, nil
		case wire.StatusDeadlineExceeded:
			putValueBuf(resp.Value)
			return nil, 0, false, tm, fmt.Errorf("kv: server %d shed %q past its deadline: %w",
				op.Server, op.Key, context.DeadlineExceeded)
		default:
			putValueBuf(resp.Value)
			return nil, 0, false, tm, fmt.Errorf("kv: server error for key %q", op.Key)
		}
	case <-ctx.Done():
		cc.unregister(id)
		return nil, 0, false, tm, ctx.Err()
	}
}

// tryGet performs a single dispatch of one read operation; the caller
// owns the selector's in-flight accounting for op.Server. tm carries
// the server-reported timeline whenever a response arrived (including
// not-found and shed responses).
func (c *Client) tryGet(ctx context.Context, op *sched.Op, level wire.Consistency) (value []byte, version uint64, found bool, tm wire.Timing, err error) {
	cc, err := c.conn(op.Server)
	if err != nil {
		if errors.Is(err, ErrClientClosed) {
			return nil, 0, false, tm, err
		}
		return nil, 0, false, tm, fmt.Errorf("%w: %w", ErrUnavailable, err)
	}
	id := c.nextID.Add(1)
	ch := cc.register(id)
	req := wire.Request{
		ID:            id,
		Type:          wire.OpGet,
		Key:           op.Key,
		Tags:          wireTags(op),
		DeadlineNanos: deadlineBudget(ctx),
		Consistency:   level,
	}
	if err := cc.writeRequest(&req); err != nil {
		cc.unregister(id)
		c.noteServerFailure(op.Server)
		return nil, 0, false, tm, fmt.Errorf("%w: send to server %d: %w", ErrUnavailable, op.Server, err)
	}
	return c.awaitGet(ctx, cc, id, ch, op)
}

// getFrom performs one direct versioned read against a specific replica
// holder, bypassing selection (used by read-repair to audit every
// holder).
func (c *Client) getFrom(ctx context.Context, server sched.ServerID, key string, level wire.Consistency) replica.ReadResult {
	now := c.now()
	demand, size := c.demandFor(wire.OpGet, key, 0)
	op := &sched.Op{
		Server: server,
		Key:    key,
		Demand: demand,
	}
	op.Tags.SizeBytes = size
	core.Tag([]*sched.Op{op}, c.taggingEst(), now)
	value, version, found, _, err := c.tryGet(ctx, op, level)
	return replica.ReadResult{
		Server: server, Value: value, Version: replica.Version(version),
		Found: found, Err: err,
	}
}

// readRepairTimeout bounds a background repair when the client has no
// configured RequestTimeout.
const readRepairTimeout = 5 * time.Second

// Repair synchronously reconciles key's replica set: it reads every
// holder, finds the newest version, and replays that write onto
// reachable holders that missed it (last-writer-wins, so replaying is
// idempotent). It returns how many replicas were brought up to date; a
// non-nil error reports the first holder that could not be read or
// repaired, alongside whatever repairs did land. With Replicas <= 1
// there is nothing to reconcile.
func (c *Client) Repair(ctx context.Context, key string) (int, error) {
	if c.cfg.Replicas <= 1 {
		return 0, nil
	}
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	holders := c.place.For(key)
	reads := make([]replica.ReadResult, len(holders))
	var wg sync.WaitGroup
	for i, server := range holders {
		i, server := i, server
		wg.Add(1)
		go func() {
			defer wg.Done()
			reads[i] = c.getFrom(ctx, server, key, wire.ConsistencyDefault)
		}()
	}
	wg.Wait()
	var firstErr error
	for _, r := range reads {
		if r.Err != nil {
			firstErr = fmt.Errorf("kv: repair %q: read server %d: %w", key, r.Server, r.Err)
			break
		}
	}
	fixed := 0
	for _, rep := range replica.Repairs(reads) {
		resp, err := c.doTTL(ctx, wire.OpPut, key, rep.Value, rep.Server, 0, uint64(rep.Version), wire.ConsistencyDefault)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("kv: repair %q: write server %d: %w", key, rep.Server, err)
			}
			continue
		}
		if resp.Status == wire.StatusOK {
			fixed++
		}
	}
	return fixed, firstErr
}

// maybeRepair launches one background repair for key, deduplicating
// concurrent triggers and respecting NoReadRepair / single-replica
// configurations.
func (c *Client) maybeRepair(key string) {
	if c.cfg.Replicas <= 1 || c.cfg.NoReadRepair {
		return
	}
	c.repairMu.Lock()
	if c.repairClosed || c.repairing[key] {
		c.repairMu.Unlock()
		return
	}
	c.repairing[key] = true
	c.repairWG.Add(1)
	c.repairMu.Unlock()
	go func() {
		defer c.repairWG.Done()
		timeout := c.cfg.RequestTimeout
		if timeout <= 0 {
			timeout = readRepairTimeout
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		_, _ = c.Repair(ctx, key)
		cancel()
		c.repairMu.Lock()
		delete(c.repairing, key)
		c.repairMu.Unlock()
	}()
}

// KeyReplicas returns key's replica holders in placement priority order
// (the first is the ring primary).
func (c *Client) KeyReplicas(key string) []sched.ServerID {
	return c.place.For(key)
}

// ReplicaScores ranks key's replica holders by the selector's current
// adaptive view, best first — the introspection behind kvctl's
// `replicas` subcommand.
func (c *Client) ReplicaScores(key string) []replica.Score {
	demand, _ := c.demandFor(wire.OpGet, key, 0)
	return c.sel.Scores(c.place.For(key), demand, c.now())
}

// do executes one single-key operation against a specific server with
// fresh tags.
func (c *Client) do(ctx context.Context, typ wire.OpType, key string, value []byte, server sched.ServerID) (*wire.Response, error) {
	return c.doTTL(ctx, typ, key, value, server, 0, 0, wire.ConsistencyDefault)
}

// doCAS sends one compare-and-swap to the key's primary.
func (c *Client) doCAS(ctx context.Context, key string, oldValue, newValue []byte) (*wire.Response, error) {
	now := c.now()
	server := c.ring.Lookup(key)
	demand, size := c.demandFor(wire.OpCAS, key, len(newValue))
	op := &sched.Op{
		Server: server,
		Key:    key,
		Demand: demand,
	}
	op.Tags.SizeBytes = size
	core.Tag([]*sched.Op{op}, c.taggingEst(), now)
	cc, err := c.conn(server)
	if err != nil {
		return nil, err
	}
	id := c.nextID.Add(1)
	ch := cc.register(id)
	req := wire.Request{
		ID: id, Type: wire.OpCAS, Key: key, Value: newValue,
		OldValue: oldValue, Tags: wireTags(op),
		DeadlineNanos: deadlineBudget(ctx),
	}
	if err := cc.writeRequest(&req); err != nil {
		cc.unregister(id)
		c.noteServerFailure(server)
		return nil, fmt.Errorf("%w: send to server %d: %w", ErrUnavailable, server, err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("%w: connection to server %d lost", ErrUnavailable, server)
		}
		putRespChan(ch)
		c.observeService(server, op.Demand, resp.Timing, resp.Status, int64(len(newValue)))
		if resp.Status == wire.StatusDeadlineExceeded {
			return nil, fmt.Errorf("kv: server %d shed CAS on %q past its deadline: %w",
				server, key, context.DeadlineExceeded)
		}
		return &resp, nil
	case <-ctx.Done():
		cc.unregister(id)
		return nil, ctx.Err()
	}
}

// doTTL is do with an expiry and a last-writer-wins version tag for PUT
// operations (version 0 = unversioned).
func (c *Client) doTTL(ctx context.Context, typ wire.OpType, key string, value []byte, server sched.ServerID, ttl time.Duration, version uint64, level wire.Consistency) (*wire.Response, error) {
	now := c.now()
	demand, size := c.demandFor(typ, key, len(value))
	op := &sched.Op{
		Server: server,
		Key:    key,
		Demand: demand,
	}
	op.Tags.SizeBytes = size
	core.Tag([]*sched.Op{op}, c.taggingEst(), now)
	cc, err := c.conn(op.Server)
	if err != nil {
		return nil, err
	}
	id := c.nextID.Add(1)
	ch := cc.register(id)
	req := wire.Request{
		ID: id, Type: typ, Key: key, Value: value, Tags: wireTags(op),
		TTLNanos: int64(ttl), DeadlineNanos: deadlineBudget(ctx),
		Version: version, Consistency: level,
	}
	if err := cc.writeRequest(&req); err != nil {
		cc.unregister(id)
		c.noteServerFailure(op.Server)
		return nil, fmt.Errorf("%w: send to server %d: %w", ErrUnavailable, op.Server, err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("%w: connection to server %d lost", ErrUnavailable, op.Server)
		}
		putRespChan(ch)
		c.observeService(op.Server, op.Demand, resp.Timing, resp.Status, int64(len(value)))
		switch resp.Status {
		case wire.StatusError:
			return nil, fmt.Errorf("kv: server error for key %q", key)
		case wire.StatusDeadlineExceeded:
			return nil, fmt.Errorf("kv: server %d shed %q past its deadline: %w",
				op.Server, key, context.DeadlineExceeded)
		}
		return &resp, nil
	case <-ctx.Done():
		cc.unregister(id)
		return nil, ctx.Err()
	}
}

// Stats fetches one server's statistics document. The stats request
// travels through the server's scheduling queue like any operation.
func (c *Client) Stats(ctx context.Context, server sched.ServerID) (wire.ServerStats, error) {
	var stats wire.ServerStats
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	resp, err := c.do(ctx, wire.OpStats, "", nil, server)
	if err != nil {
		return stats, err
	}
	if resp.Status != wire.StatusOK {
		return stats, fmt.Errorf("kv: stats request to server %d failed", server)
	}
	if err := json.Unmarshal(resp.Value, &stats); err != nil {
		return stats, fmt.Errorf("kv: decode stats from server %d: %w", server, err)
	}
	return stats, nil
}

// Servers returns the configured server identities in ascending order.
func (c *Client) Servers() []sched.ServerID {
	return c.ring.Servers()
}

// wireTags converts tagged scheduling metadata to its wire form.
func wireTags(op *sched.Op) wire.Tags {
	size := op.Tags.SizeBytes
	if size < 0 || size > int64(^uint32(0)) {
		size = 0
	}
	return wire.Tags{
		RemainingNanos:  int64(op.Tags.RemainingTime),
		SlackNanos:      int64(op.Tags.Slack()),
		BottleneckNanos: int64(op.Tags.DemandBottleneck),
		DemandNanos:     int64(op.Demand),
		Fanout:          uint32(op.Tags.Fanout),
		SizeHintBytes:   uint32(size),
	}
}

// conn returns a live connection to the server, redialing a dead one
// outside the backoff window. Concurrent callers during a redial fail
// fast rather than queueing behind the dial.
func (c *Client) conn(id sched.ServerID) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	cc, ok := c.conns[id]
	if ok && !cc.isDead() {
		c.mu.Unlock()
		return cc, nil
	}
	addr, known := c.cfg.Servers[id]
	if !known {
		c.mu.Unlock()
		return nil, fmt.Errorf("kv: no connection for server %d", id)
	}
	if until := c.redialAt[id]; time.Now().Before(until) {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: server %d in reconnect backoff", ErrUnavailable, id)
	}
	c.redialAt[id] = time.Now().Add(c.cfg.ReconnectBackoff)
	c.mu.Unlock()

	fresh, err := c.dial(id, addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		fresh.shutdown(ErrClientClosed)
		return nil, ErrClientClosed
	}
	if cur, ok := c.conns[id]; ok && !cur.isDead() && cur != fresh {
		// Another goroutine won the race; keep its connection.
		fresh.shutdown(ErrClientClosed)
		return cur, nil
	}
	c.conns[id] = fresh
	return fresh, nil
}

// clientConn is one client-server connection: serialized writes, a
// reader goroutine fanning responses out to waiters, and feedback
// observation into the shared estimator.
type clientConn struct {
	client *Client
	server sched.ServerID
	conn   net.Conn

	wmu sync.Mutex
	w   *wire.Writer

	mu      sync.Mutex
	pending map[uint64]chan wire.Response
	dead    bool
}

func (c *Client) dial(id sched.ServerID, addr string) (*clientConn, error) {
	conn, err := c.cfg.Dial(addr, c.cfg.DialTimeout)
	if err != nil {
		c.noteServerFailure(id)
		return nil, fmt.Errorf("%w: dial server %d at %s: %w", ErrUnavailable, id, addr, err)
	}
	w := wire.NewWriter(conn)
	w.SetVersion(byte(c.cfg.ProtocolVersion))
	cc := &clientConn{
		client:  c,
		server:  id,
		conn:    conn,
		w:       w,
		pending: make(map[uint64]chan wire.Response),
	}
	go cc.readLoop()
	return cc, nil
}

func (cc *clientConn) writeRequest(req *wire.Request) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	return cc.w.WriteRequest(req)
}

// writeBatch sends a run of requests as one batch frame (or, on a
// v2-pinned connection, as a run of single frames sharing one flush).
func (cc *clientConn) writeBatch(reqs []wire.Request) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	return cc.w.WriteBatch(reqs)
}

// respChanPool recycles single-response waiter channels. A channel may
// be returned only after its waiter received a response (the readLoop
// has unregistered it, so no further send can race a reuse); channels
// abandoned on timeout or closed by shutdown are never pooled.
var respChanPool = sync.Pool{New: func() any { return make(chan wire.Response, 1) }}

// putRespChan recycles a waiter channel that has delivered.
func putRespChan(ch chan wire.Response) { respChanPool.Put(ch) }

func (cc *clientConn) register(id uint64) chan wire.Response {
	ch := respChanPool.Get().(chan wire.Response)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.dead {
		close(ch)
		return ch
	}
	cc.pending[id] = ch
	return ch
}

func (cc *clientConn) unregister(id uint64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	delete(cc.pending, id)
}

// valueFree recycles value byte buffers across the data plane: response
// copies handed from the client readLoop to waiters, server-side store
// reads, and queued-op payload copies. A buffered channel rather than a
// sync.Pool because channel transfer of a slice never allocates its
// header, so the recycle path itself costs zero allocations. Buffers
// return via putValueBuf only at sites where they are provably dead
// (write acks, non-OK reads, encoded responses); values surfaced to
// callers are theirs to keep and never re-enter the pool.
var valueFree = make(chan []byte, 512)

// maxPooledValue bounds the capacity kept on the freelist so a burst of
// huge values cannot pin gigabytes (512 × 64KiB = 32MiB worst case).
const maxPooledValue = 64 << 10

// getValueBuf returns a length-n buffer, reusing pooled capacity.
func getValueBuf(n int) []byte {
	select {
	case b := <-valueFree:
		if cap(b) >= n {
			return b[:n]
		}
		putValueBuf(b) // too small for this caller; the next may fit
	default:
	}
	return make([]byte, n)
}

// putValueBuf recycles a dead value buffer; empty and oversized buffers
// are dropped, as is everything past the freelist's depth.
func putValueBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledValue {
		return
	}
	select {
	case valueFree <- b[:0]:
	default:
	}
}

func (cc *clientConn) readLoop() {
	r := wire.NewReader(cc.conn)
	defer r.Release()
	var resp wire.Response
	for {
		if err := r.ReadResponse(&resp); err != nil {
			cc.shutdown(err)
			return
		}
		if cc.client.cfg.Adaptive {
			cc.client.est.Observe(core.Feedback{
				Server:   cc.server,
				QueueLen: int(resp.Feedback.QueueLen),
				Backlog:  time.Duration(resp.Feedback.BacklogNanos),
				Speed:    float64(resp.Feedback.SpeedMilli) / 1000,
				// Feedback freshness is tracked on the client clock at
				// receipt; one-way delay skews all servers about
				// equally, so comparisons stay meaningful.
				At: cc.client.now(),
			})
		}
		// Look the waiter up before copying: a response nobody awaits
		// (caller timed out and unregistered) costs no allocation, and
		// empty values never do.
		cc.mu.Lock()
		ch, ok := cc.pending[resp.ID]
		if ok {
			delete(cc.pending, resp.ID)
		}
		cc.mu.Unlock()
		if !ok {
			continue
		}
		// The reader's value buffer is reused; hand the waiter a copy
		// from the pool.
		var value []byte
		if len(resp.Value) > 0 {
			value = getValueBuf(len(resp.Value))
			copy(value, resp.Value)
		}
		ch <- wire.Response{
			ID: resp.ID, Status: resp.Status, Value: value,
			Feedback: resp.Feedback, Version: resp.Version,
			Timing: resp.Timing,
		}
	}
}

// isDead reports whether the connection has been torn down.
func (cc *clientConn) isDead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead
}

// shutdown closes the socket and fails all waiters. A cause other than
// a deliberate client close marks the server down in the adaptive view.
func (cc *clientConn) shutdown(cause error) {
	_ = cc.conn.Close()
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	pending := cc.pending
	cc.pending = make(map[uint64]chan wire.Response)
	cc.mu.Unlock()
	cc.wmu.Lock()
	cc.w.Release()
	cc.wmu.Unlock()
	if !errors.Is(cause, ErrClientClosed) {
		cc.client.noteServerFailure(cc.server)
	}
	for _, ch := range pending {
		close(ch)
	}
}
