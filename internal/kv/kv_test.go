package kv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wire"
	"github.com/daskv/daskv/internal/workload"
)

// startCluster launches n loopback servers and a connected client.
func startCluster(t *testing.T, n int, policy sched.Factory, cost CostModel) (*Client, []*Server) {
	t.Helper()
	servers := make([]*Server, n)
	addrs := make(map[sched.ServerID]string, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer(ServerConfig{
			ID:     sched.ServerID(i),
			Addr:   "127.0.0.1:0",
			Policy: policy,
			Cost:   cost,
		})
		if err != nil {
			t.Fatalf("NewServer %d: %v", i, err)
		}
		servers[i] = srv
		addrs[srv.ID()] = srv.Addr()
		t.Cleanup(func() { _ = srv.Close() })
	}
	client, err := NewClient(ClientConfig{Servers: addrs, Adaptive: true})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return client, servers
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key should not be found")
	}
	s.Put("a", []byte("1"))
	v, ok := s.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("Get = %q/%v", v, ok)
	}
	// Returned value is a copy.
	v[0] = 'X'
	v2, _ := s.Get("a")
	if string(v2) != "1" {
		t.Fatal("Get leaked internal buffer")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if !s.Delete("a") {
		t.Fatal("Delete existing should report true")
	}
	if s.Delete("a") {
		t.Fatal("Delete absent should report false")
	}
}

func TestStorePutCopiesInput(t *testing.T) {
	s := NewStore()
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'Z'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatal("Put aliased caller buffer")
	}
}

func TestPutGetDeleteSingleServer(t *testing.T) {
	client, _ := startCluster(t, 1, nil, nil)
	ctx := context.Background()
	if err := client.Put(ctx, "greeting", []byte("hello")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := client.Get(ctx, "greeting")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(v) != "hello" {
		t.Fatalf("Get = %q, want hello", v)
	}
	if err := client.Delete(ctx, "greeting"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := client.Get(ctx, "greeting"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := client.Delete(ctx, "greeting"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete absent = %v, want ErrNotFound", err)
	}
}

func TestMGetAcrossServers(t *testing.T) {
	client, servers := startCluster(t, 4, nil, nil)
	ctx := context.Background()
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = workload.KeyName(i)
		if err := client.Put(ctx, keys[i], []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	res, err := client.MGet(ctx, keys)
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	if len(res) != 40 {
		t.Fatalf("MGet returned %d values, want 40", len(res))
	}
	for i, k := range keys {
		if string(res[k]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %s = %q", k, res[k])
		}
	}
	// Work should have spread across all servers.
	for _, srv := range servers {
		if srv.Served() == 0 {
			t.Fatalf("server %d served nothing", srv.ID())
		}
	}
}

func TestMGetMissingKeysAbsent(t *testing.T) {
	client, _ := startCluster(t, 2, nil, nil)
	ctx := context.Background()
	if err := client.Put(ctx, "present", []byte("yes")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	res, err := client.MGet(ctx, []string{"present", "absent"})
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	if len(res) != 1 || string(res["present"]) != "yes" {
		t.Fatalf("MGet = %v", res)
	}
	if _, ok := res["absent"]; ok {
		t.Fatal("absent key should not be in result")
	}
}

func TestMGetEmpty(t *testing.T) {
	client, _ := startCluster(t, 1, nil, nil)
	res, err := client.MGet(context.Background(), nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("MGet(nil) = %v, %v", res, err)
	}
}

func TestMGetContextCancel(t *testing.T) {
	// A slow cost model so the op sits in service long enough to cancel.
	cost := func(wire.OpType, int, int) time.Duration { return 200 * time.Millisecond }
	client, _ := startCluster(t, 1, nil, cost)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := client.MGet(ctx, []string{"k"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("MGet = %v, want DeadlineExceeded", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	client, _ := startCluster(t, 3, nil, nil)
	ctx := context.Background()
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i)
				if err := client.Put(ctx, k, []byte(k)); err != nil {
					errs <- err
					return
				}
				v, err := client.Get(ctx, k)
				if err != nil {
					errs <- err
					return
				}
				if string(v) != k {
					errs <- fmt.Errorf("got %q want %q", v, k)
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFeedbackReachesEstimator(t *testing.T) {
	cost := func(wire.OpType, int, int) time.Duration { return time.Millisecond }
	client, servers := startCluster(t, 1, nil, cost)
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if err := client.Put(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	speed, _, ok := client.est.Snapshot(servers[0].ID())
	if !ok {
		t.Fatal("estimator never observed feedback")
	}
	if speed <= 0 {
		t.Fatalf("estimated speed = %v, want positive", speed)
	}
}

func TestServerQueuesUnderLoad(t *testing.T) {
	// One worker, 5ms ops: firing 20 concurrent ops must queue.
	cost := func(wire.OpType, int, int) time.Duration { return 5 * time.Millisecond }
	client, servers := startCluster(t, 1, core.Factory(core.DefaultOptions()), cost)
	ctx := context.Background()
	done := make(chan error, 20)
	for i := 0; i < 20; i++ {
		i := i
		go func() {
			done <- client.Put(ctx, fmt.Sprintf("k%d", i), []byte("v"))
		}()
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if servers[0].Served() != 20 {
		t.Fatalf("Served = %d, want 20", servers[0].Served())
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer(ServerConfig{ID: 1, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestClientFailsAfterServerClose(t *testing.T) {
	client, servers := startCluster(t, 1, nil, nil)
	ctx := context.Background()
	if err := client.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	_ = servers[0].Close()
	// The in-flight connection is dead; subsequent calls must error,
	// not hang.
	ctx2, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, err := client.Get(ctx2, "k"); err == nil {
		t.Fatal("Get after server close should error")
	}
}

func TestClientClosedErrors(t *testing.T) {
	client, _ := startCluster(t, 1, nil, nil)
	_ = client.Close()
	if _, err := client.Get(context.Background(), "k"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Get = %v, want ErrClientClosed", err)
	}
	if err := client.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Fatal("empty server set should error")
	}
	if _, err := NewClient(ClientConfig{
		Servers:     map[sched.ServerID]string{1: "127.0.0.1:1"},
		DialTimeout: 50 * time.Millisecond,
	}); err == nil {
		t.Fatal("unreachable server should error")
	}
}

func TestLargeValues(t *testing.T) {
	client, _ := startCluster(t, 2, nil, nil)
	ctx := context.Background()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := client.Put(ctx, "big", big); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := client.Get(ctx, "big")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(v) != len(big) {
		t.Fatalf("len = %d, want %d", len(v), len(big))
	}
	for i := 0; i < len(big); i += 4099 {
		if v[i] != big[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}

func TestTagsReachServerQueue(t *testing.T) {
	// Use a capture policy to verify wire tags land in sched.Tags.
	captured := make(chan sched.Tags, 64)
	capturing := func(uint64) sched.Policy { return &capturePolicy{inner: sched.NewFCFS(), tags: captured} }
	client, _ := startCluster(t, 1, capturing, nil)
	ctx := context.Background()
	keys := []string{"a", "bb", "ccc"}
	for _, k := range keys {
		if err := client.Put(ctx, k, []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if _, err := client.MGet(ctx, keys); err != nil {
		t.Fatalf("MGet: %v", err)
	}
	// 3 puts + 3 gets.
	sawFanout3 := false
	for i := 0; i < 6; i++ {
		tags := <-captured
		if tags.Fanout == 3 {
			sawFanout3 = true
			if tags.RemainingTime <= 0 {
				t.Fatal("mget op missing RemainingTime tag")
			}
		}
	}
	if !sawFanout3 {
		t.Fatal("no op carried the multiget fanout tag")
	}
}

type capturePolicy struct {
	inner sched.Policy
	tags  chan sched.Tags
}

func (p *capturePolicy) Name() string { return "capture" }

func (p *capturePolicy) Push(op *sched.Op, now time.Duration) {
	select {
	case p.tags <- op.Tags:
	default:
	}
	p.inner.Push(op, now)
}

func (p *capturePolicy) Pop(now time.Duration) *sched.Op { return p.inner.Pop(now) }

func (p *capturePolicy) Len() int { return p.inner.Len() }

func (p *capturePolicy) BacklogDemand() time.Duration { return p.inner.BacklogDemand() }

func TestReplicatedPutReachesAllReplicas(t *testing.T) {
	servers := make([]*Server, 3)
	addrs := make(map[sched.ServerID]string, 3)
	for i := 0; i < 3; i++ {
		srv, err := NewServer(ServerConfig{ID: sched.ServerID(i), Addr: "127.0.0.1:0"})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		servers[i] = srv
		addrs[srv.ID()] = srv.Addr()
		t.Cleanup(func() { _ = srv.Close() })
	}
	client, err := NewClient(ClientConfig{Servers: addrs, Adaptive: true, Replicas: 3})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()
	if err := client.Put(ctx, "replicated", []byte("everywhere")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for _, srv := range servers {
		v, ok := srv.Store().Get("replicated")
		if !ok || string(v) != "everywhere" {
			t.Fatalf("server %d missing replica (ok=%v v=%q)", srv.ID(), ok, v)
		}
	}
	// Delete removes from all replicas.
	if err := client.Delete(ctx, "replicated"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	for _, srv := range servers {
		if _, ok := srv.Store().Get("replicated"); ok {
			t.Fatalf("server %d still holds deleted key", srv.ID())
		}
	}
	if err := client.Delete(ctx, "replicated"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete absent replicated key = %v, want ErrNotFound", err)
	}
}

func TestReplicatedReadsServeFromReplicas(t *testing.T) {
	client, _ := func() (*Client, []*Server) {
		servers := make([]*Server, 2)
		addrs := make(map[sched.ServerID]string, 2)
		for i := 0; i < 2; i++ {
			srv, err := NewServer(ServerConfig{ID: sched.ServerID(i), Addr: "127.0.0.1:0"})
			if err != nil {
				t.Fatalf("NewServer: %v", err)
			}
			servers[i] = srv
			addrs[srv.ID()] = srv.Addr()
			t.Cleanup(func() { _ = srv.Close() })
		}
		c, err := NewClient(ClientConfig{Servers: addrs, Adaptive: true, Replicas: 2, ReadFrom: FastestRead})
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		t.Cleanup(func() { _ = c.Close() })
		return c, servers
	}()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("r%d", i)
		if err := client.Put(ctx, k, []byte(k)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		v, err := client.Get(ctx, k)
		if err != nil || string(v) != k {
			t.Fatalf("Get %s = %q, %v", k, v, err)
		}
	}
}

func TestFastestReadAvoidsSlowReplica(t *testing.T) {
	cost := func(wire.OpType, int, int) time.Duration { return 2 * time.Millisecond }
	servers := make([]*Server, 2)
	addrs := make(map[sched.ServerID]string, 2)
	speeds := []float64{1.0, 0.1}
	for i := 0; i < 2; i++ {
		srv, err := NewServer(ServerConfig{
			ID: sched.ServerID(i), Addr: "127.0.0.1:0", Cost: cost, SpeedFactor: speeds[i],
		})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		servers[i] = srv
		addrs[srv.ID()] = srv.Addr()
		t.Cleanup(func() { _ = srv.Close() })
	}
	client, err := NewClient(ClientConfig{
		Servers: addrs, Adaptive: true, Replicas: 2, ReadFrom: FastestRead,
		Demand: DemandModel(cost),
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()
	if err := client.Put(ctx, "hotkey", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Warm the estimator with some traffic on both servers (puts fan
	// out to both, so speed feedback arrives from each).
	for i := 0; i < 15; i++ {
		if err := client.Put(ctx, fmt.Sprintf("warm%d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	fastBefore := servers[0].Served()
	slowBefore := servers[1].Served()
	for i := 0; i < 40; i++ {
		if _, err := client.Get(ctx, "hotkey"); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	fastGets := servers[0].Served() - fastBefore
	slowGets := servers[1].Served() - slowBefore
	if fastGets <= slowGets {
		t.Fatalf("fastest-read routed %d gets to the fast server vs %d to the 0.1x server",
			fastGets, slowGets)
	}
}

func TestNewClientReplicaValidation(t *testing.T) {
	addrs := map[sched.ServerID]string{1: "127.0.0.1:1"}
	if _, err := NewClient(ClientConfig{Servers: addrs, Replicas: 5}); err == nil {
		t.Fatal("replicas > servers should error")
	}
	if _, err := NewClient(ClientConfig{Servers: addrs, Replicas: -1}); err == nil {
		t.Fatal("negative replicas should error")
	}
	if _, err := NewClient(ClientConfig{Servers: addrs, ReadFrom: ReadPolicy(9)}); err == nil {
		t.Fatal("unknown read policy should error")
	}
}

func TestStatsCommand(t *testing.T) {
	client, servers := startCluster(t, 2, nil, nil)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := client.Put(ctx, fmt.Sprintf("s%d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	total := 0
	for _, id := range client.Servers() {
		stats, err := client.Stats(ctx, id)
		if err != nil {
			t.Fatalf("Stats(%d): %v", id, err)
		}
		if stats.Server != int(id) {
			t.Fatalf("stats.Server = %d, want %d", stats.Server, id)
		}
		if stats.Policy != "FCFS" {
			t.Fatalf("stats.Policy = %q, want FCFS", stats.Policy)
		}
		if stats.Served == 0 {
			t.Fatalf("server %d reports zero served after traffic", id)
		}
		if stats.UptimeNanos <= 0 {
			t.Fatal("uptime should be positive")
		}
		total += stats.Keys
	}
	if total != 10 {
		t.Fatalf("cluster holds %d keys, want 10", total)
	}
	_ = servers
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("value-%d", i)))
	}
	s.Put("binary", []byte{0, 1, 2, 255})
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	restored := NewStore()
	if err := restored.LoadFrom(&buf); err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if restored.Len() != 101 {
		t.Fatalf("restored %d keys, want 101", restored.Len())
	}
	v, ok := restored.Get("k042")
	if !ok || string(v) != "value-42" {
		t.Fatalf("k042 = %q/%v", v, ok)
	}
	b, ok := restored.Get("binary")
	if !ok || !bytes.Equal(b, []byte{0, 1, 2, 255}) {
		t.Fatalf("binary = %v/%v", b, ok)
	}
}

func TestStoreLoadFromBadInput(t *testing.T) {
	s := NewStore()
	if err := s.LoadFrom(bytes.NewBufferString("{bad json")); err == nil {
		t.Fatal("malformed snapshot should error")
	}
}

func TestServerPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/server0.snap"
	srv, err := NewServer(ServerConfig{ID: 0, Addr: "127.0.0.1:0", DataPath: path})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	client, err := NewClient(ClientConfig{Servers: map[sched.ServerID]string{0: srv.Addr()}})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	ctx := context.Background()
	if err := client.Put(ctx, "durable", []byte("survives")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	_ = client.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Restart from the snapshot.
	srv2, err := NewServer(ServerConfig{ID: 0, Addr: "127.0.0.1:0", DataPath: path})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(func() { _ = srv2.Close() })
	v, ok := srv2.Store().Get("durable")
	if !ok || string(v) != "survives" {
		t.Fatalf("after restart: %q/%v", v, ok)
	}
}

func TestServerCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.snap"
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := NewServer(ServerConfig{ID: 0, Addr: "127.0.0.1:0", DataPath: path}); err == nil {
		t.Fatal("corrupt snapshot should fail startup")
	}
}

func TestServerRejectsGarbageFrames(t *testing.T) {
	srv, err := NewServer(ServerConfig{ID: 0, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = conn.Close() }()
	// Garbage: valid length prefix, junk payload. Server must drop the
	// connection without crashing and keep serving others.
	if _, err := conn.Write([]byte{0, 0, 0, 4, 9, 9, 9, 9}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected connection close after garbage frame")
	}
	// A fresh, well-behaved client still works.
	client, err := NewClient(ClientConfig{Servers: map[sched.ServerID]string{0: srv.Addr()}})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	if err := client.Put(context.Background(), "after-garbage", []byte("ok")); err != nil {
		t.Fatalf("Put after garbage: %v", err)
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	srv, err := NewServer(ServerConfig{ID: 0, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr := srv.Addr()
	client, err := NewClient(ClientConfig{
		Servers:          map[sched.ServerID]string{0: addr},
		ReconnectBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()
	if err := client.Put(ctx, "k", []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Restart on the same address.
	var srv2 *Server
	for attempt := 0; attempt < 50; attempt++ {
		srv2, err = NewServer(ServerConfig{ID: 0, Addr: addr})
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = srv2.Close() })

	// The client should recover within a few backoff windows.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err = client.Put(ctx, "k", []byte("v2"))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected: %v", err)
		}
		time.Sleep(15 * time.Millisecond)
	}
	v, ok := srv2.Store().Get("k")
	if !ok || string(v) != "v2" {
		t.Fatalf("after reconnect: %q/%v", v, ok)
	}
}

func TestReconnectBackoffFailsFast(t *testing.T) {
	srv, err := NewServer(ServerConfig{ID: 0, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	client, err := NewClient(ClientConfig{
		Servers:          map[sched.ServerID]string{0: srv.Addr()},
		ReconnectBackoff: time.Hour, // never expires within this test
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()
	if err := client.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	_ = srv.Close()
	// First call observes the dead conn and schedules a redial; with an
	// hour-long backoff every subsequent call must fail immediately.
	_, _ = client.Get(ctx, "k")
	start := time.Now()
	if _, err := client.Get(ctx, "k"); err == nil {
		t.Fatal("Get against dead server should fail")
	}
	if time.Since(start) > time.Second {
		t.Fatal("backoff path should fail fast, not block on dialing")
	}
}

func TestMSet(t *testing.T) {
	client, servers := startCluster(t, 3, nil, nil)
	ctx := context.Background()
	pairs := make(map[string][]byte, 60)
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("mset-%03d", i)
		pairs[k] = []byte(fmt.Sprintf("value-%d", i))
	}
	if err := client.MSet(ctx, pairs); err != nil {
		t.Fatalf("MSet: %v", err)
	}
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	got, err := client.MGet(ctx, keys)
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	if len(got) != 60 {
		t.Fatalf("MGet returned %d values, want 60", len(got))
	}
	for k, want := range pairs {
		if string(got[k]) != string(want) {
			t.Fatalf("key %s = %q, want %q", k, got[k], want)
		}
	}
	if err := client.MSet(ctx, nil); err != nil {
		t.Fatalf("MSet(nil): %v", err)
	}
	_ = servers
}
