package kv

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// countingDialer wraps the client's Dial hook with a call counter and
// two switchable behaviors: refuse (fail immediately) and block (park
// the dial until released), so tests can observe exactly when and how
// often the reconnect path dials.
type countingDialer struct {
	dials   atomic.Int32
	refuse  atomic.Bool
	block   atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func newCountingDialer() *countingDialer {
	return &countingDialer{
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (d *countingDialer) dial(addr string, timeout time.Duration) (net.Conn, error) {
	d.dials.Add(1)
	if d.block.Load() {
		d.entered <- struct{}{}
		<-d.release
		return nil, errors.New("injected dial failure")
	}
	if d.refuse.Load() {
		return nil, errors.New("injected dial refusal")
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// reconnectFixture starts one server and a client whose dials route
// through a countingDialer.
func reconnectFixture(t *testing.T, cfg ClientConfig) (*Server, *Client, *countingDialer) {
	t.Helper()
	srv, err := NewServer(ServerConfig{ID: 0, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	d := newCountingDialer()
	cfg.Servers = map[sched.ServerID]string{0: srv.Addr()}
	cfg.Dial = d.dial
	cfg.Seed = 1
	client, err := NewClient(cfg)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return srv, client, d
}

// TestConcurrentCallersDuringRedialFailFast pins the contract in
// Client.conn: while one goroutine holds the in-flight redial, every
// other caller targeting that server returns ErrUnavailable immediately
// instead of queueing behind the dial.
func TestConcurrentCallersDuringRedialFailFast(t *testing.T) {
	srv, client, d := reconnectFixture(t, ClientConfig{
		ReconnectBackoff: time.Hour, // one redial for the whole test
	})
	ctx := context.Background()
	if err := client.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	_ = srv.Close()
	d.block.Store(true)

	// Drive calls until one lands in the (blocked) redial: the conn is
	// only known-dead once the reader goroutine sees the close.
	redialDone := make(chan struct{})
	go func() {
		defer close(redialDone)
		for {
			_, err := client.Get(ctx, "k")
			if err == nil {
				continue
			}
			select {
			case <-d.entered: // our call is the one holding the dial
				return
			default: // lost conn noticed before redial; try again
			}
		}
	}()
	select {
	case <-d.entered:
		// Redial in flight; put the token back for the goroutine above.
		d.entered <- struct{}{}
	case <-time.After(5 * time.Second):
		t.Fatal("no redial attempt within 5s")
	}
	inFlight := d.dials.Load()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			_, err := client.Get(ctx, "k")
			if err == nil {
				t.Error("Get against dead server succeeded")
				return
			}
			if !errors.Is(err, ErrUnavailable) {
				t.Errorf("Get error %v, want ErrUnavailable", err)
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Errorf("caller blocked %v behind the in-flight redial", elapsed)
			}
		}()
	}
	wg.Wait()
	if got := d.dials.Load(); got != inFlight {
		t.Fatalf("concurrent callers dialed: %d dials, want %d", got, inFlight)
	}
	close(d.release)
	<-redialDone
}

// TestBackoffWindowRespected asserts no redial is attempted inside the
// ReconnectBackoff window no matter how hard callers hammer, and that
// the next attempt happens promptly once the window expires.
func TestBackoffWindowRespected(t *testing.T) {
	const window = 600 * time.Millisecond
	srv, client, d := reconnectFixture(t, ClientConfig{ReconnectBackoff: window})
	ctx := context.Background()
	if err := client.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	initial := d.dials.Load()
	_ = srv.Close()
	d.refuse.Store(true)

	// Wait for the first redial attempt (it opens the backoff window).
	deadline := time.Now().Add(5 * time.Second)
	for d.dials.Load() == initial {
		if time.Now().After(deadline) {
			t.Fatal("first redial never attempted")
		}
		_, _ = client.Get(ctx, "k")
	}
	opened := time.Now()
	afterFirst := d.dials.Load()

	// Hammer well inside the window: every call must fail fast with
	// ErrUnavailable and none may dial.
	for time.Since(opened) < window/2 {
		start := time.Now()
		_, err := client.Get(ctx, "k")
		if err == nil {
			t.Fatal("Get against dead server succeeded")
		}
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("Get error %v, want ErrUnavailable", err)
		}
		if time.Since(start) > time.Second {
			t.Fatal("in-window call did not fail fast")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := d.dials.Load(); got != afterFirst {
		t.Fatalf("dialed %d times inside the backoff window", got-afterFirst)
	}

	// Past the window the client must try again.
	time.Sleep(window)
	_, _ = client.Get(ctx, "k")
	if got := d.dials.Load(); got == afterFirst {
		t.Fatal("no redial after the backoff window expired")
	}
}

// TestSuccessfulRedialResetsState asserts a redial that lands fully
// restores the client: the fresh connection is reused (no per-call
// dialing), and the server's down-quarantine in the adaptive view is
// lifted by its first answer.
func TestSuccessfulRedialResetsState(t *testing.T) {
	srv, client, d := reconnectFixture(t, ClientConfig{
		ReconnectBackoff: 20 * time.Millisecond,
		Adaptive:         true,
	})
	addr := srv.Addr()
	ctx := context.Background()
	if err := client.Put(ctx, "k", []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	_ = srv.Close()
	// Burn a call so the failure is observed and the server marked down.
	_, _ = client.Get(ctx, "k")
	if !client.est.Down(0, client.now()) {
		t.Fatal("dead server not marked down")
	}
	srv2 := restartServer(t, ServerConfig{ID: 0}, addr)
	t.Cleanup(func() { _ = srv2.Close() })

	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := client.Put(ctx, "k", []byte("v2")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after server restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if d.dials.Load() < 2 {
		t.Fatalf("recovery without a redial? %d dials", d.dials.Load())
	}

	// Steady state: the re-established connection serves everything.
	settled := d.dials.Load()
	for i := 0; i < 20; i++ {
		v, err := client.Get(ctx, "k")
		if err != nil {
			t.Fatalf("Get after recovery: %v", err)
		}
		if string(v) != "v2" {
			t.Fatalf("Get = %q, want v2", v)
		}
	}
	if got := d.dials.Load(); got != settled {
		t.Fatalf("client kept dialing after recovery: %d extra dials", got-settled)
	}
	if client.est.Down(0, client.now()) {
		t.Fatal("server still quarantined after answering")
	}
}
