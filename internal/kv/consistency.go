package kv

import (
	"context"
	"fmt"
	"time"

	"github.com/daskv/daskv/internal/replica"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wire"
)

// This file is the client half of tunable consistency: per-request
// ONE/QUORUM/ALL levels layered on the existing last-writer-wins
// replication. The client coordinates quorums itself — writes fan out
// to every holder and the foreground call returns after W
// acknowledgements (stragglers drain in the background under the
// client's lifecycle), reads consult R-ranked holders until `need`
// definitive answers arrive and resolve conflicts with
// replica.Newest, scheduling read-repair when holders disagree. The
// wire.Consistency byte rides every request so servers and traces see
// the caller's intent, but no server-side coordination is required.

// Need returns how many of a key's replica holders must answer for a
// read or acknowledge a write at the given consistency level.
// ConsistencyDefault maps to the legacy pre-cluster behavior and needs
// one answer (writes still fan out to every holder and wait for all;
// see Client.PutTTL).
func Need(level wire.Consistency, replicas int) int {
	if replicas < 1 {
		replicas = 1
	}
	switch level {
	case wire.ConsistencyAll:
		return replicas
	case wire.ConsistencyQuorum:
		return replicas/2 + 1
	default:
		return 1
	}
}

// effectiveLevel resolves a per-call level against the client's
// configured default.
func (c *Client) effectiveLevel(level wire.Consistency) wire.Consistency {
	if level == wire.ConsistencyDefault {
		return c.cfg.DefaultConsistency
	}
	return level
}

// GetLevel fetches one key at an explicit consistency level.
//
//   - ONE (and the default) reads a single selector-chosen holder —
//     the latency-optimal path the DAS scheduling work targets.
//   - QUORUM reads ⌊R/2⌋+1 holders and returns the newest version
//     among them; paired with QUORUM writes it yields read-your-writes
//     through any single holder failure.
//   - ALL reads every holder; any unreachable holder fails the read.
//
// Multi-holder reads that observe divergent replicas schedule an
// asynchronous read-repair for the key.
func (c *Client) GetLevel(ctx context.Context, key string, level wire.Consistency) ([]byte, error) {
	eff := c.effectiveLevel(level)
	if Need(eff, c.cfg.Replicas) <= 1 {
		return c.get(ctx, key)
	}
	return c.readQuorum(ctx, key, eff)
}

// PutLevel stores one key at an explicit consistency level.
func (c *Client) PutLevel(ctx context.Context, key string, value []byte, level wire.Consistency) error {
	return c.PutTTLLevel(ctx, key, value, 0, level)
}

// PutTTLLevel stores one key with an expiry at an explicit consistency
// level. The write always fans out to every holder; the level decides
// how many acknowledgements the foreground call waits for (ONE waits
// one, QUORUM ⌊R/2⌋+1, ALL and the default wait all). Unwaited
// replicas drain in the background and are reconciled by last-writer-
// wins read-repair if they miss the write entirely.
func (c *Client) PutTTLLevel(ctx context.Context, key string, value []byte, ttl time.Duration, level wire.Consistency) error {
	if ttl < 0 {
		return fmt.Errorf("kv: negative ttl %v", ttl)
	}
	_, err := c.writeLevel(ctx, wire.OpPut, key, value, ttl, c.effectiveLevel(level))
	return err
}

// DeleteLevel removes one key at an explicit consistency level. Under
// ONE or QUORUM the not-found verdict reflects only the replicas whose
// acknowledgements were waited for; a key present solely on a slow
// straggler may report ErrNotFound even though the delete reaches it.
func (c *Client) DeleteLevel(ctx context.Context, key string, level wire.Consistency) error {
	found, err := c.writeLevel(ctx, wire.OpDelete, key, nil, 0, c.effectiveLevel(level))
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	return nil
}

// writeLevel routes one write by consistency level: the default and
// any level whose W covers the holder set use the synchronous wait-all
// fan-out; a genuine W < N quorum write waits W acknowledgements in
// the foreground and drains the stragglers in the background.
func (c *Client) writeLevel(ctx context.Context, typ wire.OpType, key string, value []byte, ttl time.Duration, level wire.Consistency) (bool, error) {
	holders := c.place.For(key)
	w := Need(level, len(holders))
	if level == wire.ConsistencyDefault || w >= len(holders) {
		return c.fanoutWrite(ctx, typ, key, value, ttl, level)
	}

	// W < N: every holder still gets the write, but the caller returns
	// after W acks. The per-holder requests run under a background
	// context so the foreground return does not cancel stragglers; a
	// collector goroutine (tracked like read-repair, drained by Close)
	// owns the channel until every holder resolved.
	var version uint64
	if typ == wire.OpPut {
		version = uint64(c.vclock.Next())
	}
	timeout := c.cfg.RequestTimeout
	if timeout <= 0 {
		timeout = readRepairTimeout
	}
	c.repairMu.Lock()
	background := !c.repairClosed
	if background {
		c.repairWG.Add(1)
	}
	c.repairMu.Unlock()
	if !background {
		// Client is closing; no background drain is available, so fall
		// back to the synchronous fan-out (which fails fast).
		return c.fanoutWrite(ctx, typ, key, value, ttl, level)
	}

	bctx, bcancel := context.WithTimeout(context.Background(), timeout)
	type outcome struct {
		ok  bool
		err error
	}
	results := make(chan outcome, len(holders))
	for _, server := range holders {
		server := server
		go func() {
			resp, err := c.doTTL(bctx, typ, key, value, server, ttl, version, level)
			if err != nil {
				results <- outcome{err: err}
				return
			}
			results <- outcome{ok: resp.Status == wire.StatusOK}
		}()
	}
	type milestone struct {
		reached bool
		anyOK   bool
		err     error
	}
	ackCh := make(chan milestone, 1)
	go func() {
		defer c.repairWG.Done()
		defer bcancel()
		acks, sent, anyOK := 0, false, false
		var firstErr error
		for range holders {
			r := <-results
			if r.err == nil {
				acks++
				anyOK = anyOK || r.ok
			} else if firstErr == nil {
				firstErr = r.err
			}
			if !sent && acks >= w {
				ackCh <- milestone{reached: true, anyOK: anyOK}
				sent = true
			}
		}
		if !sent {
			ackCh <- milestone{anyOK: anyOK, err: firstErr}
		}
	}()

	fctx, cancel := c.opCtx(ctx)
	defer cancel()
	select {
	case m := <-ackCh:
		if m.reached {
			return m.anyOK, nil
		}
		if m.err != nil {
			return m.anyOK, fmt.Errorf("kv: %s write of %q below quorum: %w", level, key, m.err)
		}
		return m.anyOK, fmt.Errorf("kv: %s write of %q below quorum", level, key)
	case <-fctx.Done():
		return false, fctx.Err()
	}
}

// readQuorum reads `need` holders of key (ranked best-first by the
// selector's adaptive view), failing over to untried holders on
// transport errors, and returns the newest version among the
// definitive answers. A definitive not-found counts toward the quorum;
// observing divergent replicas schedules read-repair.
func (c *Client) readQuorum(ctx context.Context, key string, level wire.Consistency) ([]byte, error) {
	holders := c.place.For(key)
	n := Need(level, len(holders))
	if n > len(holders) {
		n = len(holders)
	}
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	now := c.now()
	demand, _ := c.demandFor(wire.OpGet, key, 0)
	order := make([]sched.ServerID, 0, len(holders))
	for _, sc := range c.sel.Scores(holders, demand, now) {
		order = append(order, sc.Server)
	}
	results := make(chan replica.ReadResult, len(order))
	dispatched := 0
	dispatch := func() {
		server := order[dispatched]
		dispatched++
		go func() {
			results <- c.getFrom(ctx, server, key, level)
		}()
	}
	for dispatched < n {
		dispatch()
	}
	reads := make([]replica.ReadResult, 0, len(order))
	received, definitive := 0, 0
	var firstErr error
	for definitive < n && received < dispatched {
		r := <-results
		received++
		reads = append(reads, r)
		if r.Err == nil {
			definitive++
			continue
		}
		if firstErr == nil {
			firstErr = r.Err
		}
		if dispatched < len(order) {
			dispatch()
		}
	}
	if definitive < n {
		if firstErr == nil {
			firstErr = ErrUnavailable
		}
		return nil, fmt.Errorf("kv: %s read of %q: %d/%d replicas answered: %w",
			level, key, definitive, n, firstErr)
	}

	newest, found := replica.Newest(reads)
	stale := false
	for _, r := range reads {
		if r.Err != nil {
			continue
		}
		if found && (!r.Found || r.Version < newest.Version) {
			stale = true
		}
	}
	if stale {
		c.maybeRepair(key)
	}
	// Surface the winning value; every other definitive read's buffer is
	// dead and returns to the pool.
	for _, r := range reads {
		if r.Err == nil && r.Found && (!found || r.Server != newest.Server) {
			putValueBuf(r.Value)
		}
	}
	if !found {
		return nil, ErrNotFound
	}
	return newest.Value, nil
}
