package kv_test

// Data-plane hot-path benchmarks: the live multiget/multiset round trip
// over loopback TCP, with the transport costs the scheduler cannot see —
// frames flushed, bytes written, allocations per operation — surfaced as
// custom metrics. These are the before/after evidence for the per-server
// batching work (EXPERIMENTS.md "Data-plane batching"); CI's bench-smoke
// job runs them with -benchmem on every PR.

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/kv"
	"github.com/daskv/daskv/internal/sched"
)

// countingConn wraps a client-side connection and counts Write calls
// (one per bufio flush, i.e. one syscall/wire frame burst) and bytes.
type countingConn struct {
	net.Conn
	writes *atomic.Int64
	bytes  *atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	c.bytes.Add(int64(len(p)))
	return c.Conn.Write(p)
}

// liveBenchCluster starts n loopback servers with no cost model and a
// client whose outbound writes are counted.
func liveBenchCluster(tb testing.TB, n int, cfg kv.ClientConfig) (*kv.Client, []*kv.Server, *atomic.Int64, *atomic.Int64) {
	tb.Helper()
	servers := make([]*kv.Server, 0, n)
	addrs := make(map[sched.ServerID]string, n)
	for i := 0; i < n; i++ {
		srv, err := kv.NewServer(kv.ServerConfig{
			ID:   sched.ServerID(i),
			Addr: "127.0.0.1:0",
		})
		if err != nil {
			tb.Fatalf("server %d: %v", i, err)
		}
		servers = append(servers, srv)
		addrs[srv.ID()] = srv.Addr()
	}
	tb.Cleanup(func() {
		for _, s := range servers {
			_ = s.Close()
		}
	})
	writes := new(atomic.Int64)
	bytes := new(atomic.Int64)
	cfg.Servers = addrs
	cfg.TraceDepth = -1 // tracing off: measure the data plane, not the ring
	cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return &countingConn{Conn: c, writes: writes, bytes: bytes}, nil
	}
	client, err := kv.NewClient(cfg)
	if err != nil {
		tb.Fatalf("client: %v", err)
	}
	tb.Cleanup(func() { _ = client.Close() })
	return client, servers, writes, bytes
}

// benchKeys preloads fanout keys, one per ring partition walk, and
// returns them.
func benchKeys(tb testing.TB, client *kv.Client, fanout int) []string {
	tb.Helper()
	ctx := context.Background()
	keys := make([]string, fanout)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%04d", i)
		if err := client.Put(ctx, keys[i], []byte("bench-value-0123456789")); err != nil {
			tb.Fatalf("preload %s: %v", keys[i], err)
		}
	}
	return keys
}

// BenchmarkLiveMget measures one multiget round trip over loopback at
// fan-out 4/16 on a 4-server cluster: ns/op and allocs/op for the whole
// client dispatch path, plus frames/op (client Write syscalls per
// multiget — O(ops) before per-server batching, O(servers) after).
func BenchmarkLiveMget(b *testing.B) {
	for _, fanout := range []int{4, 16} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			client, _, writes, bytes := liveBenchCluster(b, 4, kv.ClientConfig{})
			keys := benchKeys(b, client, fanout)
			ctx := context.Background()
			if _, err := client.MGet(ctx, keys); err != nil {
				b.Fatalf("warmup mget: %v", err)
			}
			writes.Store(0)
			bytes.Store(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := client.MGet(ctx, keys)
				if err != nil {
					b.Fatalf("mget: %v", err)
				}
				if len(res) != fanout {
					b.Fatalf("mget returned %d/%d keys", len(res), fanout)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(writes.Load())/float64(b.N), "frames/op")
			b.ReportMetric(float64(bytes.Load())/float64(b.N), "wirebytes/op")
		})
	}
}

// BenchmarkLiveMSet measures a 64-key multiset on a 4-server cluster:
// before batching this spawns one goroutine and one frame per key.
func BenchmarkLiveMSet(b *testing.B) {
	const pairs = 64
	client, _, writes, _ := liveBenchCluster(b, 4, kv.ClientConfig{})
	batch := make(map[string][]byte, pairs)
	for i := 0; i < pairs; i++ {
		batch[fmt.Sprintf("mset-key-%04d", i)] = []byte("bench-value-0123456789")
	}
	ctx := context.Background()
	if err := client.MSet(ctx, batch); err != nil {
		b.Fatalf("warmup mset: %v", err)
	}
	writes.Store(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.MSet(ctx, batch); err != nil {
			b.Fatalf("mset: %v", err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(writes.Load())/float64(b.N), "frames/op")
}
