package kv

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"github.com/daskv/daskv/internal/gossip"
	"github.com/daskv/daskv/internal/metrics"
)

// MetricsHandlerConfig configures the observability endpoint.
type MetricsHandlerConfig struct {
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints can stall a small server and leak
	// internals, so they are opt-in (kvserver's -pprof flag).
	EnablePprof bool
}

// NewMetricsHandler exposes a server's operational state over HTTP:
//
//	GET /healthz  — 200 once serving
//	GET /stats    — the full statistics document as JSON
//	GET /metrics  — Prometheus text exposition: per-op-type service and
//	                queue-wait latency histograms, operation/shed/error
//	                counters, scheduler decision counters, the
//	                demand-estimate error summary, the queue gauges, and
//	                (when the worker pool is split by size class) the
//	                per-pool kv_pool_* gauges and counters
//
// Every metric is documented in docs/OBSERVABILITY.md. Mount the
// handler on a side listener (cmd/kvserver's -metrics flag) so
// observability traffic never competes with the data path's scheduler.
func NewMetricsHandler(s *Server) http.Handler {
	return NewMetricsHandlerWith(s, MetricsHandlerConfig{})
}

// NewMetricsHandlerWith is NewMetricsHandler with explicit options.
func NewMetricsHandlerWith(s *Server, cfg MetricsHandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.StatsSnapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", metrics.ExpositionContentType)
		writeExposition(w, s)
	})
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// writeExposition renders the server's full Prometheus exposition.
// Metric names, labels, and units follow the conventions documented in
// docs/OBSERVABILITY.md; LintExposition-clean by construction (one
// Family declaration per metric, one sample per label set).
func writeExposition(w http.ResponseWriter, s *Server) {
	st := s.StatsSnapshot()
	server := metrics.Label{Name: "server", Value: strconv.Itoa(st.Server)}
	e := metrics.NewExpo(w)

	e.Family("kv_info", "Static server identity; value is always 1.", "gauge")
	e.IntSample("kv_info", []metrics.Label{server,
		{Name: "policy", Value: st.Policy},
		{Name: "replication", Value: strconv.Itoa(st.Replication)},
	}, 1)

	e.Family("kv_ops_served_total", "Operations completed since start, by operation type.", "counter")
	snaps := s.metrics.snapshot()
	for _, snap := range snaps {
		e.IntSample("kv_ops_served_total",
			[]metrics.Label{server, {Name: "op", Value: snap.Op.String()}}, snap.Served)
	}
	e.Family("kv_deadline_shed_total", "Operations dropped past their client deadline without service.", "counter")
	e.IntSample("kv_deadline_shed_total", []metrics.Label{server}, st.Shed)
	e.Family("kv_op_errors_total", "Operations answered with a server error status.", "counter")
	e.IntSample("kv_op_errors_total", []metrics.Label{server}, st.Errors)

	e.Family("kv_open_connections", "Live client connections.", "gauge")
	e.IntSample("kv_open_connections", []metrics.Label{server}, uint64(st.OpenConns))
	e.Family("kv_connections_total", "Connections accepted since start.", "counter")
	e.IntSample("kv_connections_total", []metrics.Label{server}, st.ConnsTotal)
	e.Family("kv_conn_goroutines", "Goroutines servicing client connections (one reader plus one writer each).", "gauge")
	e.IntSample("kv_conn_goroutines", []metrics.Label{server}, uint64(st.ConnGoroutines))
	e.Family("kv_process_goroutines", "Goroutines in the whole process at scrape time.", "gauge")
	e.IntSample("kv_process_goroutines", []metrics.Label{server}, uint64(st.Goroutines))
	e.Family("kv_inflight_ops", "Operations admitted to the queue but not yet answered.", "gauge")
	e.IntSample("kv_inflight_ops", []metrics.Label{server}, uint64(max(st.InFlight, 0)))
	e.Family("kv_conn_inflight_ops_max", "Largest single connection's in-flight operation count.", "gauge")
	e.IntSample("kv_conn_inflight_ops_max", []metrics.Label{server}, uint64(max(st.ConnInFlightMax, 0)))

	e.Family("kv_queue_length", "Operations waiting in the scheduling queue.", "gauge")
	e.IntSample("kv_queue_length", []metrics.Label{server}, uint64(st.QueueLen))
	e.Family("kv_backlog_seconds", "Queued service demand in seconds.", "gauge")
	e.Sample("kv_backlog_seconds", []metrics.Label{server}, time.Duration(st.BacklogNanos).Seconds())
	e.Family("kv_speed_ratio", "Measured speed relative to nominal.", "gauge")
	e.Sample("kv_speed_ratio", []metrics.Label{server}, st.Speed)
	e.Family("kv_keys", "Live keys stored.", "gauge")
	e.IntSample("kv_keys", []metrics.Label{server}, uint64(st.Keys))
	e.Family("kv_uptime_seconds", "Seconds since the server started.", "gauge")
	e.Sample("kv_uptime_seconds", []metrics.Label{server}, time.Duration(st.UptimeNanos).Seconds())

	e.Family("kv_op_service_seconds", "Service execution time per operation, by operation type.", "histogram")
	for _, snap := range snaps {
		e.Histogram("kv_op_service_seconds",
			[]metrics.Label{server, {Name: "op", Value: snap.Op.String()}}, snap.Service)
	}
	e.Family("kv_op_queue_wait_seconds", "Time operations spent queued before service (sheds included), by operation type.", "histogram")
	for _, snap := range snaps {
		e.Histogram("kv_op_queue_wait_seconds",
			[]metrics.Label{server, {Name: "op", Value: snap.Op.String()}}, snap.Wait)
	}

	e.Family("kv_demand_error_seconds", "Absolute error of the client-tagged demand estimate vs measured service time.", "summary")
	s.metrics.summarizeDemandErr(func(sum *metrics.Summary) {
		e.Summary("kv_demand_error_seconds", []metrics.Label{server}, sum, 0.5, 0.99)
	})

	if s.wal != nil {
		ws := s.wal.Stats()
		e.Family("kv_wal_segments", "Live write-ahead-log segment files (sealed plus active).", "gauge")
		e.IntSample("kv_wal_segments", []metrics.Label{server}, uint64(ws.Segments))
		e.Family("kv_wal_bytes", "Bytes across live write-ahead-log segments.", "gauge")
		e.IntSample("kv_wal_bytes", []metrics.Label{server}, uint64(ws.Bytes))
		e.Family("kv_wal_last_seq", "Highest write-ahead-log sequence number assigned.", "gauge")
		e.IntSample("kv_wal_last_seq", []metrics.Label{server}, ws.LastSeq)
		e.Family("kv_wal_snapshot_seq", "Sequence number covered by the newest on-disk store snapshot.", "gauge")
		e.IntSample("kv_wal_snapshot_seq", []metrics.Label{server}, ws.SnapshotSeq)
		e.Family("kv_wal_records_total", "Records appended to the write-ahead log.", "counter")
		e.IntSample("kv_wal_records_total", []metrics.Label{server}, ws.Appended)
		e.Family("kv_wal_fsyncs_total", "Fsync calls on the write-ahead log's append path.", "counter")
		e.IntSample("kv_wal_fsyncs_total", []metrics.Label{server}, ws.Fsyncs)
		e.Family("kv_wal_fsync_seconds", "Write-ahead-log append-path fsync latency.", "histogram")
		e.Histogram("kv_wal_fsync_seconds", []metrics.Label{server}, ws.FsyncLatency)
		e.Family("kv_wal_batch_records", "Group-commit batch sizes: records persisted per committer write.", "histogram")
		e.CountHistogram("kv_wal_batch_records", []metrics.Label{server}, ws.BatchRecords)
		e.Family("kv_wal_coalesced_ops_total", "Mutations folded into per-key accumulators by the coalesce sync policy.", "counter")
		e.IntSample("kv_wal_coalesced_ops_total", []metrics.Label{server}, ws.CoalescedOps)
		e.Family("kv_wal_coalesced_records_total", "Records the coalesce policy flushed — one per distinct key per commit window.", "counter")
		e.IntSample("kv_wal_coalesced_records_total", []metrics.Label{server}, ws.CoalescedRecords)
		e.Family("kv_wal_coalesce_windows_total", "Commit windows the coalesce policy has closed.", "counter")
		e.IntSample("kv_wal_coalesce_windows_total", []metrics.Label{server}, ws.CoalesceWindows)
		e.Family("kv_wal_coalesce_window_keys", "Distinct keys flushed per coalesce commit window.", "histogram")
		e.CountHistogram("kv_wal_coalesce_window_keys", []metrics.Label{server}, ws.WindowKeys)
	}

	if ps := s.poolStats(); ps != nil {
		small := []metrics.Label{server, {Name: "pool", Value: "small"}}
		large := []metrics.Label{server, {Name: "pool", Value: "large"}}
		e.Family("kv_pool_size_threshold_bytes", "Current small/large payload boundary of the size-class admission classifier.", "gauge")
		e.IntSample("kv_pool_size_threshold_bytes", []metrics.Label{server}, uint64(ps.ThresholdBytes))
		e.Family("kv_pool_workers", "Workers dedicated to each size-class pool.", "gauge")
		e.IntSample("kv_pool_workers", small, uint64(ps.SmallWorkers))
		e.IntSample("kv_pool_workers", large, uint64(ps.LargeWorkers))
		e.Family("kv_pool_busy_workers", "Workers of each size-class pool currently executing an operation.", "gauge")
		e.IntSample("kv_pool_busy_workers", small, uint64(ps.SmallBusy))
		e.IntSample("kv_pool_busy_workers", large, uint64(ps.LargeBusy))
		e.Family("kv_pool_queue_length", "Operations waiting in each size-class pool's queue.", "gauge")
		e.IntSample("kv_pool_queue_length", small, uint64(ps.SmallQueueLen))
		e.IntSample("kv_pool_queue_length", large, uint64(ps.LargeQueueLen))
		e.Family("kv_pool_backlog_seconds", "Queued service demand in each size-class pool, in seconds.", "gauge")
		e.Sample("kv_pool_backlog_seconds", small, time.Duration(ps.SmallBacklogNanos).Seconds())
		e.Sample("kv_pool_backlog_seconds", large, time.Duration(ps.LargeBacklogNanos).Seconds())
		e.Family("kv_pool_routed_total", "Operations the size classifier admitted to each pool.", "counter")
		e.IntSample("kv_pool_routed_total", small, ps.SmallRouted)
		e.IntSample("kv_pool_routed_total", large, ps.LargeRouted)
		e.Family("kv_pool_stolen_total", "Small-pool operations served by an idle large-pool worker (work stealing).", "counter")
		e.IntSample("kv_pool_stolen_total", []metrics.Label{server}, ps.Stolen)
	}

	if d, ok := s.decisionStats(); ok {
		e.Family("kv_sched_decisions_total", "Scheduling policy ordering decisions, by decision class.", "counter")
		for _, dc := range []struct {
			class string
			n     uint64
		}{
			{"srpt-first", d.SRPTFirst},
			{"lrpt-last", d.LRPTDemoted},
			{"near-boundary", d.NearBoundary},
			{"promoted", d.Promotions},
		} {
			e.IntSample("kv_sched_decisions_total",
				[]metrics.Label{server, {Name: "decision", Value: dc.class}}, dc.n)
		}
		e.Family("kv_sched_promotions_total", "Operations a starvation bound (MaxDelay or AgingBound) served ahead of priority order.", "counter")
		e.IntSample("kv_sched_promotions_total", []metrics.Label{server}, d.Promotions)
	}

	if cs := s.ClusterStats(); cs != nil {
		e.Family("kv_gossip_members", "Members in this node's gossip table, by liveness state.", "gauge")
		for _, state := range []gossip.State{gossip.StateAlive, gossip.StateSuspect, gossip.StateDead, gossip.StateLeft} {
			e.IntSample("kv_gossip_members",
				[]metrics.Label{server, {Name: "state", Value: state.String()}}, uint64(cs.Members[state]))
		}
		e.Family("kv_gossip_messages_total", "Gossip datagrams exchanged, by direction.", "counter")
		e.IntSample("kv_gossip_messages_total",
			[]metrics.Label{server, {Name: "dir", Value: "sent"}}, cs.MessagesSent)
		e.IntSample("kv_gossip_messages_total",
			[]metrics.Label{server, {Name: "dir", Value: "received"}}, cs.MessagesReceived)
		e.Family("kv_gossip_refutations_total", "Incarnation bumps issued to refute false suspicions of this node.", "counter")
		e.IntSample("kv_gossip_refutations_total", []metrics.Label{server}, cs.Refutations)
		e.Family("kv_gossip_incarnation", "This node's current self-asserted incarnation number.", "gauge")
		e.IntSample("kv_gossip_incarnation", []metrics.Label{server}, cs.Incarnation)
		e.Family("kv_rebalance_state", "Join lifecycle: 1 pending, 2 streaming, 3 ready, 4 left.", "gauge")
		e.IntSample("kv_rebalance_state", []metrics.Label{server}, uint64(cs.Lifecycle))
		e.Family("kv_rebalance_keys_total", "Records applied from join handoff streams.", "counter")
		e.IntSample("kv_rebalance_keys_total", []metrics.Label{server}, cs.RebalanceKeys)
		e.Family("kv_rebalance_streams_total", "Handoff chunk round-trips completed while joining.", "counter")
		e.IntSample("kv_rebalance_streams_total", []metrics.Label{server}, cs.RebalanceStreams)
		e.Family("kv_rebalance_errors_total", "Failed handoff pulls and drain pushes.", "counter")
		e.IntSample("kv_rebalance_errors_total", []metrics.Label{server}, cs.RebalanceErrors)
		e.Family("kv_rebalance_pushed_keys_total", "Records pushed to new holders during a graceful leave.", "counter")
		e.IntSample("kv_rebalance_pushed_keys_total", []metrics.Label{server}, cs.PushedKeys)
	}
}
