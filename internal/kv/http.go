package kv

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// NewMetricsHandler exposes a server's operational state over HTTP:
//
//	GET /stats    — the full statistics document as JSON
//	GET /metrics  — Prometheus-style plain-text gauges
//	GET /healthz  — 200 once serving
//
// Mount it on a side listener (see cmd/kvserver's -metrics flag) so
// observability traffic never competes with the data path's scheduler.
func NewMetricsHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.StatsSnapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		st := s.StatsSnapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# HELP kv_ops_served_total Operations completed since start.\n")
		fmt.Fprintf(w, "# TYPE kv_ops_served_total counter\n")
		fmt.Fprintf(w, "kv_ops_served_total{server=%q} %d\n", itoa(st.Server), st.Served)
		fmt.Fprintf(w, "# HELP kv_queue_length Operations waiting in the scheduling queue.\n")
		fmt.Fprintf(w, "# TYPE kv_queue_length gauge\n")
		fmt.Fprintf(w, "kv_queue_length{server=%q} %d\n", itoa(st.Server), st.QueueLen)
		fmt.Fprintf(w, "# HELP kv_backlog_seconds Queued service demand in seconds.\n")
		fmt.Fprintf(w, "# TYPE kv_backlog_seconds gauge\n")
		fmt.Fprintf(w, "kv_backlog_seconds{server=%q} %g\n", itoa(st.Server), float64(st.BacklogNanos)/1e9)
		fmt.Fprintf(w, "# HELP kv_speed_ratio Measured speed relative to nominal.\n")
		fmt.Fprintf(w, "# TYPE kv_speed_ratio gauge\n")
		fmt.Fprintf(w, "kv_speed_ratio{server=%q} %g\n", itoa(st.Server), st.Speed)
		fmt.Fprintf(w, "# HELP kv_keys Live keys stored.\n")
		fmt.Fprintf(w, "# TYPE kv_keys gauge\n")
		fmt.Fprintf(w, "kv_keys{server=%q} %d\n", itoa(st.Server), st.Keys)
	})
	return mux
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
