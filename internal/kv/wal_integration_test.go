package kv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/fault"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wal"
)

// newWALServer starts one loopback server with the durability
// subsystem on, letting mutate tweak the config first.
func newWALServer(t *testing.T, dir string, mutate func(*ServerConfig)) *Server {
	t.Helper()
	cfg := ServerConfig{ID: 0, Addr: "127.0.0.1:0", WALDir: dir}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return srv
}

// connect returns a client wired to srv alone.
func connect(t *testing.T, srv *Server) *Client {
	t.Helper()
	client, err := NewClient(ClientConfig{
		Servers: map[sched.ServerID]string{srv.ID(): srv.Addr()},
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return client
}

// TestServerWALCrashRecovery is the end-to-end acceptance path: a
// workload of puts, deletes, CAS, and TTL writes under -wal-sync
// always, a crash (no flush, no snapshot), and a restart on the same
// directory that must yield every acknowledged write with its exact
// version.
func TestServerWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, nil)
	client := connect(t, srv)
	ctx := context.Background()

	const n = 50
	for i := 0; i < n; i++ {
		if err := client.Put(ctx, fmt.Sprintf("key-%02d", i), []byte(fmt.Sprintf("val-%02d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := client.Delete(ctx, "key-03"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := client.CompareAndSwap(ctx, "key-05", []byte("val-05"), []byte("swapped")); err != nil {
		t.Fatalf("CAS: %v", err)
	}
	if err := client.PutTTL(ctx, "ttl-key", []byte("expires"), time.Hour); err != nil {
		t.Fatalf("PutTTL: %v", err)
	}
	// Record the exact versions the live store holds; recovery must
	// reproduce them, not re-stamp.
	wantVersions := make(map[string]uint64)
	for _, k := range []string{"key-00", "key-05", "ttl-key"} {
		_, ver, ok := srv.Store().GetVersioned(k)
		if !ok {
			t.Fatalf("pre-crash %s missing", k)
		}
		wantVersions[k] = ver
	}
	_ = client.Close()
	srv.Crash()

	srv2 := newWALServer(t, dir, nil)
	defer func() { _ = srv2.Close() }()
	rep := srv2.WALRecovery()
	if rep == nil || rep.RecordsApplied == 0 {
		t.Fatalf("recovery report = %+v", rep)
	}
	st := srv2.Store()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v, ok := st.Get(k)
		switch {
		case i == 3:
			if ok {
				t.Fatalf("%s deleted pre-crash but recovered", k)
			}
		case i == 5:
			if !ok || string(v) != "swapped" {
				t.Fatalf("%s = %q/%v, want swapped", k, v, ok)
			}
		default:
			if !ok || string(v) != fmt.Sprintf("val-%02d", i) {
				t.Fatalf("%s = %q/%v", k, v, ok)
			}
		}
	}
	if v, ok := st.Get("ttl-key"); !ok || string(v) != "expires" {
		t.Fatalf("ttl-key = %q/%v", v, ok)
	}
	for k, want := range wantVersions {
		_, ver, ok := st.GetVersioned(k)
		if !ok || ver != want {
			t.Fatalf("%s recovered version %d/%v, want %d", k, ver, ok, want)
		}
	}
}

// TestServerWALGracefulCloseCompacts: a clean shutdown folds the log
// into a snapshot, so the next start loads one file and replays zero
// records.
func TestServerWALGracefulCloseCompacts(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, nil)
	client := connect(t, srv)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := client.Put(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	_ = client.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshot after graceful close (err=%v)", err)
	}

	srv2 := newWALServer(t, dir, nil)
	defer func() { _ = srv2.Close() }()
	rep := srv2.WALRecovery()
	if !rep.SnapshotLoaded || rep.RecordsApplied != 0 {
		t.Fatalf("report = %+v, want snapshot-only recovery", rep)
	}
	if got := srv2.Store().Len(); got != 10 {
		t.Fatalf("recovered %d keys, want 10", got)
	}
}

// TestServerWALConflictsWithDataPath: the legacy -data snapshot and the
// WAL are mutually exclusive, rejected at construction.
func TestServerWALConflictsWithDataPath(t *testing.T) {
	_, err := NewServer(ServerConfig{
		Addr:     "127.0.0.1:0",
		WALDir:   t.TempDir(),
		DataPath: filepath.Join(t.TempDir(), "snap.jsonl"),
	})
	if err == nil {
		t.Fatal("NewServer accepted WALDir+DataPath")
	}
}

// TestServerWALStatsAndMetrics: the stats document grows a wal section
// and /metrics exports the kv_wal_* families, lint-clean.
func TestServerWALStatsAndMetrics(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, nil)
	defer func() { _ = srv.Close() }()
	client := connect(t, srv)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := client.Put(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	st := srv.StatsSnapshot()
	if st.WAL == nil {
		t.Fatal("stats missing wal section")
	}
	if st.WAL.Appended < 5 || st.WAL.LastSeq < 5 || st.WAL.Segments < 1 {
		t.Fatalf("wal stats = %+v", st.WAL)
	}
	if st.WAL.Policy != "always" {
		t.Fatalf("policy = %q, want always", st.WAL.Policy)
	}
	if st.WAL.Fsyncs == 0 || st.WAL.FsyncLatency == nil || st.WAL.BatchRecords == nil {
		t.Fatalf("wal fsync stats = %+v", st.WAL)
	}

	rec := httptest.NewRecorder()
	NewMetricsHandler(srv).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, family := range []string{
		"kv_wal_segments", "kv_wal_bytes", "kv_wal_last_seq",
		"kv_wal_records_total", "kv_wal_fsyncs_total",
		"kv_wal_fsync_seconds_bucket", "kv_wal_batch_records_bucket",
	} {
		if !strings.Contains(body, family) {
			t.Fatalf("exposition missing %s:\n%s", family, body)
		}
	}
	if problems := metrics.LintExposition(strings.NewReader(body)); len(problems) != 0 {
		t.Fatalf("exposition lint: %v", problems)
	}
}

// TestServerWALTornWriteFailsStop drives the fault injector through
// the server: a torn segment write must fail the acknowledgement,
// latch the store's durability error, refuse subsequent writes, and
// recover cleanly (torn record absent) on restart.
func TestServerWALTornWriteFailsStop(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewFileInjector()
	srv := newWALServer(t, dir, func(cfg *ServerConfig) {
		cfg.WALWrapFile = func(f wal.File) wal.File { return inj.Wrap(f) }
	})
	client := connect(t, srv)
	ctx := context.Background()

	if err := client.Put(ctx, "durable", []byte("survives")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	inj.TearNextWrite(4)
	// The put's ack fails; client.Put only surfaces transport errors,
	// so assert fail-stop through the store and a CAS (which does
	// surface the server's error status).
	_ = client.Put(ctx, "torn", []byte("lost"))
	if srv.Store().DurabilityErr() == nil {
		t.Fatal("durability error not latched after torn write")
	}
	err := client.CompareAndSwap(ctx, "fresh", nil, []byte("x"))
	if err == nil || errors.Is(err, ErrCASMismatch) {
		t.Fatalf("CAS after durability failure = %v, want server error", err)
	}
	_ = client.Close()
	srv.Crash()

	srv2 := newWALServer(t, dir, nil)
	defer func() { _ = srv2.Close() }()
	if v, ok := srv2.Store().Get("durable"); !ok || string(v) != "survives" {
		t.Fatalf("durable = %q/%v", v, ok)
	}
	if _, ok := srv2.Store().Get("torn"); ok {
		t.Fatal("torn record recovered")
	}
}

// TestWriteFileAtomicKeepsOldOnError is the regression test for the
// legacy -data snapshot path: an injected write error mid-save must
// leave the previous snapshot untouched and no temp file behind.
func TestWriteFileAtomicKeepsOldOnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.jsonl")
	if err := writeFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("good snapshot\n"))
		return err
	}); err != nil {
		t.Fatalf("initial save: %v", err)
	}
	injected := errors.New("injected write failure")
	err := writeFileAtomic(path, func(w io.Writer) error {
		_, _ = w.Write([]byte("partial gar")) // bytes written before the failure
		return injected
	})
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || !bytes.Equal(got, []byte("good snapshot\n")) {
		t.Fatalf("snapshot after failed save = %q (%v)", got, rerr)
	}
	if _, serr := os.Stat(path + ".tmp"); !os.IsNotExist(serr) {
		t.Fatalf("temp file left behind: %v", serr)
	}
}

// TestServerDataPathAtomicSaveRoundTrip: the legacy snapshot path still
// round-trips through the atomic writer.
func TestServerDataPathAtomicSaveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.jsonl")
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", DataPath: path})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.Store().Put("k", []byte("v"))
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	srv2, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", DataPath: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = srv2.Close() }()
	if v, ok := srv2.Store().Get("k"); !ok || string(v) != "v" {
		t.Fatalf("k = %q/%v", v, ok)
	}
}
