package kv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/daskv/daskv/internal/sched"
)

func TestStoreCAS(t *testing.T) {
	s := NewStore()
	// Create-if-absent.
	if !s.CompareAndSwap("k", nil, []byte("v1")) {
		t.Fatal("CAS on absent key with empty old should succeed")
	}
	// Wrong old value.
	if s.CompareAndSwap("k", []byte("nope"), []byte("v2")) {
		t.Fatal("CAS with wrong old value should fail")
	}
	// Correct old value.
	if !s.CompareAndSwap("k", []byte("v1"), []byte("v2")) {
		t.Fatal("CAS with matching old value should succeed")
	}
	v, _ := s.Get("k")
	if !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("value = %q, want v2", v)
	}
	// Create-if-absent fails when present.
	if s.CompareAndSwap("k", nil, []byte("v3")) {
		t.Fatal("CAS expecting absent should fail on a live key")
	}
}

func TestStoreCASExpiredCountsAsAbsent(t *testing.T) {
	s, clk := newClockedStore()
	s.PutTTL("k", []byte("old"), 1e9)
	clk.advance(2e9)
	if !s.CompareAndSwap("k", nil, []byte("new")) {
		t.Fatal("CAS should treat an expired key as absent")
	}
}

func TestClientCASEndToEnd(t *testing.T) {
	client, _ := startCluster(t, 1, nil, nil)
	ctx := context.Background()
	if err := client.CompareAndSwap(ctx, "counter", nil, []byte("1")); err != nil {
		t.Fatalf("initial CAS: %v", err)
	}
	if err := client.CompareAndSwap(ctx, "counter", []byte("1"), []byte("2")); err != nil {
		t.Fatalf("CAS 1->2: %v", err)
	}
	if err := client.CompareAndSwap(ctx, "counter", []byte("1"), []byte("3")); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("stale CAS = %v, want ErrCASMismatch", err)
	}
	v, err := client.Get(ctx, "counter")
	if err != nil || string(v) != "2" {
		t.Fatalf("counter = %q, %v", v, err)
	}
}

func TestClientCASConcurrentIncrement(t *testing.T) {
	client, _ := startCluster(t, 1, nil, nil)
	ctx := context.Background()
	if err := client.Put(ctx, "n", []byte("0")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	const workers, perWorker = 6, 15
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					cur, err := client.Get(ctx, "n")
					if err != nil {
						errCh <- err
						return
					}
					var n int
					if _, err := fmt.Sscanf(string(cur), "%d", &n); err != nil {
						errCh <- err
						return
					}
					next := []byte(fmt.Sprintf("%d", n+1))
					err = client.CompareAndSwap(ctx, "n", cur, next)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrCASMismatch) {
						errCh <- err
						return
					}
					// Lost the race; retry.
				}
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	v, err := client.Get(ctx, "n")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	want := fmt.Sprintf("%d", workers*perWorker)
	if string(v) != want {
		t.Fatalf("counter = %s, want %s (lost updates)", v, want)
	}
}

func TestClientCASRejectsReplication(t *testing.T) {
	servers := make(map[sched.ServerID]string, 2)
	for i := 0; i < 2; i++ {
		srv, err := NewServer(ServerConfig{ID: sched.ServerID(i), Addr: "127.0.0.1:0"})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		servers[srv.ID()] = srv.Addr()
	}
	client, err := NewClient(ClientConfig{Servers: servers, Replicas: 2})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	if err := client.CompareAndSwap(context.Background(), "k", nil, []byte("v")); err == nil {
		t.Fatal("CAS with replication should be rejected")
	}
}
