package kv

// Chaos tests: scripted fault schedules against live loopback clusters,
// asserting the resilience invariants the client and server promise —
// partial multiget results within the caller's deadline, no lost acked
// writes across a crash/restart, dead servers quarantined by the
// estimator and routed around, and deadline ceilings honored even when
// a server stalls mid-request.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/fault"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wire"
)

// restartServer rebinds a server on addr, retrying while the OS
// releases the port.
func restartServer(t *testing.T, cfg ServerConfig, addr string) *Server {
	t.Helper()
	cfg.Addr = addr
	var srv *Server
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		srv, err = NewServer(cfg)
		if err == nil {
			return srv
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("restart on %s: %v", addr, err)
	return nil
}

// TestMultigetPartialOnServerCrash is the headline chaos scenario: one
// server of two is killed mid-multiget. The client must return every
// key the surviving server holds plus per-key errors for the dead
// server's keys — within the request deadline — the estimator must
// quarantine the corpse, and a restart from snapshot must restore both
// the data and the routing.
func TestMultigetPartialOnServerCrash(t *testing.T) {
	cost := func(wire.OpType, int, int) time.Duration { return 10 * time.Millisecond }
	dir := t.TempDir()
	servers := make([]*Server, 2)
	addrs := make(map[sched.ServerID]string, 2)
	cfgs := make([]ServerConfig, 2)
	for i := 0; i < 2; i++ {
		cfgs[i] = ServerConfig{
			ID:       sched.ServerID(i),
			Addr:     "127.0.0.1:0",
			Cost:     cost,
			DataPath: fmt.Sprintf("%s/server%d.snap", dir, i),
		}
		srv, err := NewServer(cfgs[i])
		if err != nil {
			t.Fatalf("NewServer %d: %v", i, err)
		}
		servers[i] = srv
		addrs[srv.ID()] = srv.Addr()
	}
	t.Cleanup(func() { _ = servers[1].Close() })
	client, err := NewClient(ClientConfig{
		Servers:          addrs,
		Adaptive:         true,
		ReadRetries:      1,
		RetryBackoff:     5 * time.Millisecond,
		ReconnectBackoff: 50 * time.Millisecond,
		Seed:             1,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()

	// Seed 30 keys; every put below is acked before the crash.
	keys := make([]string, 30)
	values := make(map[string]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("chaos-%03d", i)
		values[keys[i]] = fmt.Sprintf("v%d", i)
		if err := client.Put(ctx, keys[i], []byte(values[keys[i]])); err != nil {
			t.Fatalf("Put %s: %v", keys[i], err)
		}
	}
	victim := servers[0].ID()
	var victimKeys, liveKeys []string
	for _, k := range keys {
		if client.ring.Lookup(k) == victim {
			victimKeys = append(victimKeys, k)
		} else {
			liveKeys = append(liveKeys, k)
		}
	}
	if len(victimKeys) == 0 || len(liveKeys) == 0 {
		t.Fatalf("degenerate key split: %d victim, %d live", len(victimKeys), len(liveKeys))
	}

	// Fire the multiget, then kill the victim while its ops are queued
	// (10ms per op serializes them far past the kill point).
	mctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	type mgetResult struct {
		res map[string][]byte
		err error
	}
	done := make(chan mgetResult, 1)
	start := time.Now()
	go func() {
		res, merr := client.MGet(mctx, keys)
		done <- mgetResult{res, merr}
	}()
	time.Sleep(30 * time.Millisecond)
	if err := servers[0].Close(); err != nil {
		t.Fatalf("kill server 0: %v", err)
	}
	r := <-done
	elapsed := time.Since(start)
	if elapsed >= 2*time.Second {
		t.Fatalf("degraded multiget took %v, must finish within its 2s deadline", elapsed)
	}

	// Partial results: a PartialError naming only victim keys, with
	// every surviving key present and intact.
	var perr *PartialError
	if !errors.As(r.err, &perr) {
		t.Fatalf("MGet error = %v, want *PartialError", r.err)
	}
	if !errors.Is(r.err, ErrUnavailable) {
		t.Fatalf("PartialError should unwrap to ErrUnavailable, got %v", r.err)
	}
	for _, k := range liveKeys {
		if got := string(r.res[k]); got != values[k] {
			t.Fatalf("surviving key %s = %q, want %q", k, got, values[k])
		}
	}
	for _, k := range victimKeys {
		_, ok := r.res[k]
		_, failed := perr.Errs[k]
		if ok == failed {
			t.Fatalf("victim key %s: in results=%v, in errors=%v (want exactly one)", k, ok, failed)
		}
		if ok && string(r.res[k]) != values[k] {
			t.Fatalf("victim key %s completed with wrong value %q", k, r.res[k])
		}
	}
	for k := range perr.Errs {
		if client.ring.Lookup(k) != victim {
			t.Fatalf("key %s failed but lives on the healthy server", k)
		}
	}
	if len(perr.Errs) == 0 {
		t.Fatal("no victim key failed; the kill missed the multiget")
	}

	// The estimator must have quarantined the dead server.
	if !client.est.Down(victim, client.now()) {
		t.Fatal("estimator did not mark the crashed server down")
	}

	// Restart from snapshot: data and routing both recover.
	srv2 := restartServer(t, cfgs[0], addrs[victim])
	t.Cleanup(func() { _ = srv2.Close() })
	recoverCtx, rcancel := context.WithTimeout(ctx, 5*time.Second)
	defer rcancel()
	probe := victimKeys[0]
	for {
		v, gerr := client.Get(recoverCtx, probe)
		if gerr == nil {
			if string(v) != values[probe] {
				t.Fatalf("after restart %s = %q, want %q", probe, v, values[probe])
			}
			break
		}
		if recoverCtx.Err() != nil {
			t.Fatalf("client never recovered after restart: %v", gerr)
		}
		time.Sleep(15 * time.Millisecond)
	}
	if client.est.Down(victim, client.now()) {
		t.Fatal("fresh feedback should revive the restarted server")
	}
}

// TestAckedWritesSurviveRestart crashes a server under a concurrent
// write storm and checks the durability invariant: every write the
// client saw acknowledged is present after a restart from snapshot.
func TestAckedWritesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := ServerConfig{ID: 0, Addr: "127.0.0.1:0", DataPath: dir + "/acked.snap"}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr := srv.Addr()
	client, err := NewClient(ClientConfig{
		Servers:          map[sched.ServerID]string{0: addr},
		ReconnectBackoff: time.Hour, // no redials: keep the storm on one conn
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })

	var mu sync.Mutex
	acked := make(map[string]string)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				k := fmt.Sprintf("w%d-%04d", g, i)
				v := fmt.Sprintf("val-%d-%d", g, i)
				if err := client.Put(context.Background(), k, []byte(v)); err != nil {
					return // server gone; unacked writes carry no promise
				}
				mu.Lock()
				acked[k] = v
				mu.Unlock()
			}
		}(g)
	}
	time.Sleep(40 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	wg.Wait()
	if len(acked) == 0 {
		t.Fatal("no writes were acked before the crash; storm misfired")
	}

	srv2 := restartServer(t, cfg, addr)
	t.Cleanup(func() { _ = srv2.Close() })
	for k, want := range acked {
		v, ok := srv2.Store().Get(k)
		if !ok || string(v) != want {
			t.Fatalf("acked write %s lost across restart (ok=%v v=%q)", k, ok, v)
		}
	}
}

// TestReadsRouteAroundDeadReplica kills one of two replica holders and
// checks that adaptive fastest-read routing sends every subsequent read
// to the survivor — reads keep succeeding with zero per-call fuss.
func TestReadsRouteAroundDeadReplica(t *testing.T) {
	servers := make([]*Server, 2)
	addrs := make(map[sched.ServerID]string, 2)
	for i := 0; i < 2; i++ {
		srv, err := NewServer(ServerConfig{ID: sched.ServerID(i), Addr: "127.0.0.1:0"})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		servers[i] = srv
		addrs[srv.ID()] = srv.Addr()
		t.Cleanup(func() { _ = srv.Close() })
	}
	client, err := NewClient(ClientConfig{
		Servers:          addrs,
		Adaptive:         true,
		Replicas:         2,
		ReadFrom:         FastestRead,
		ReadRetries:      2,
		RetryBackoff:     2 * time.Millisecond,
		ReconnectBackoff: 20 * time.Millisecond,
		Seed:             7,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := client.Put(ctx, fmt.Sprintf("rep%d", i), []byte("both")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	_ = servers[0].Close()

	// Every read must succeed: the first attempt against the corpse is
	// retried onto the survivor, and once the estimator marks it down
	// reads go straight to the survivor.
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			k := fmt.Sprintf("rep%d", i)
			v, gerr := client.Get(ctx, k)
			if gerr != nil {
				t.Fatalf("round %d Get %s: %v", round, k, gerr)
			}
			if string(v) != "both" {
				t.Fatalf("Get %s = %q", k, v)
			}
		}
	}
	if !client.est.Down(servers[0].ID(), client.now()) {
		t.Fatal("dead replica should be quarantined after failed reads")
	}
}

// TestDeadlineCeilingUnderOverload floods a slow single-worker server
// and checks every call returns within its deadline (plus scheduling
// slop), with late operations shed as deadline-exceeded rather than
// served pointlessly.
func TestDeadlineCeilingUnderOverload(t *testing.T) {
	cost := func(wire.OpType, int, int) time.Duration { return 30 * time.Millisecond }
	srv, err := NewServer(ServerConfig{ID: 0, Addr: "127.0.0.1:0", Cost: cost})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := NewClient(ClientConfig{
		Servers:        map[sched.ServerID]string{0: srv.Addr()},
		RequestTimeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()
	if err := client.Put(ctx, "hot", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	const calls = 8
	type outcome struct {
		err     error
		elapsed time.Duration
	}
	outcomes := make(chan outcome, calls)
	for i := 0; i < calls; i++ {
		go func() {
			begin := time.Now()
			_, gerr := client.Get(ctx, "hot")
			outcomes <- outcome{gerr, time.Since(begin)}
		}()
	}
	deadlineFailures := 0
	for i := 0; i < calls; i++ {
		o := <-outcomes
		// Ceiling: the configured 60ms deadline plus generous CI slop.
		if o.elapsed > 600*time.Millisecond {
			t.Fatalf("call took %v, far past its 60ms deadline", o.elapsed)
		}
		if o.err != nil {
			if !errors.Is(o.err, context.DeadlineExceeded) {
				t.Fatalf("overloaded call failed with %v, want a deadline error", o.err)
			}
			deadlineFailures++
		}
	}
	// 8 calls x 30ms on one worker cannot all fit in 60ms.
	if deadlineFailures == 0 {
		t.Fatal("every call beat an impossible deadline; shedding never triggered")
	}
}

// TestDeadlineHonoredUnderStall stalls the server's network I/O
// entirely and checks the client still honors its deadline, then heals
// the fault and checks traffic resumes on the same connection.
func TestDeadlineHonoredUnderStall(t *testing.T) {
	inj := fault.NewInjector(11)
	srv, err := NewServer(ServerConfig{
		ID: 0, Addr: "127.0.0.1:0",
		WrapConn: func(c net.Conn) net.Conn { return inj.Conn(c) },
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := NewClient(ClientConfig{Servers: map[sched.ServerID]string{0: srv.Addr()}})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()
	if err := client.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	inj.Set(fault.Stall, 1, 0)
	start := time.Now()
	gctx, cancel := context.WithTimeout(ctx, 150*time.Millisecond)
	_, gerr := client.Get(gctx, "k")
	cancel()
	if !errors.Is(gerr, context.DeadlineExceeded) {
		t.Fatalf("Get under stall = %v, want DeadlineExceeded", gerr)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("stalled Get returned after %v, deadline ceiling is 150ms", elapsed)
	}

	inj.Heal()
	hctx, hcancel := context.WithTimeout(ctx, 5*time.Second)
	defer hcancel()
	for {
		v, gerr := client.Get(hctx, "k")
		if gerr == nil {
			if string(v) != "v" {
				t.Fatalf("after heal Get = %q", v)
			}
			return
		}
		if hctx.Err() != nil {
			t.Fatalf("traffic never resumed after heal: %v", gerr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerShedsExpiredOps drives the wire protocol directly: an
// already-expired operation queued behind a slow one must come back
// StatusDeadlineExceeded without being served.
func TestServerShedsExpiredOps(t *testing.T) {
	cost := func(wire.OpType, int, int) time.Duration { return 50 * time.Millisecond }
	srv, err := NewServer(ServerConfig{ID: 0, Addr: "127.0.0.1:0", Cost: cost})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	served := srv.Store()
	served.Put("a", []byte("slow"))
	served.Put("b", []byte("doomed"))

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = conn.Close() }()
	w := wire.NewWriter(conn)
	r := wire.NewReader(conn)
	// Op 1 occupies the single worker for 50ms; op 2's 1ns budget is
	// long dead by the time the worker reaches it.
	if err := w.WriteRequest(&wire.Request{ID: 1, Type: wire.OpGet, Key: "a"}); err != nil {
		t.Fatalf("write op 1: %v", err)
	}
	if err := w.WriteRequest(&wire.Request{ID: 2, Type: wire.OpGet, Key: "b", DeadlineNanos: 1}); err != nil {
		t.Fatalf("write op 2: %v", err)
	}
	var resp wire.Response
	if err := r.ReadResponse(&resp); err != nil {
		t.Fatalf("read response 1: %v", err)
	}
	if resp.ID != 1 || resp.Status != wire.StatusOK {
		t.Fatalf("op 1 = id %d status %d, want id 1 StatusOK", resp.ID, resp.Status)
	}
	if err := r.ReadResponse(&resp); err != nil {
		t.Fatalf("read response 2: %v", err)
	}
	if resp.ID != 2 || resp.Status != wire.StatusDeadlineExceeded {
		t.Fatalf("op 2 = id %d status %d, want id 2 StatusDeadlineExceeded", resp.ID, resp.Status)
	}
	if len(resp.Value) != 0 {
		t.Fatal("shed op must not carry a value")
	}
}

// TestServerSurvivesCorruptedTraffic runs client traffic through a
// bit-flipping injector and checks the server neither crashes nor
// wedges: once the fault heals, a fresh client gets clean service and
// the data written before the fault is intact.
func TestServerSurvivesCorruptedTraffic(t *testing.T) {
	inj := fault.NewInjector(99)
	srv, err := NewServer(ServerConfig{
		ID: 0, Addr: "127.0.0.1:0",
		WrapConn: func(c net.Conn) net.Conn { return inj.Conn(c) },
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := NewClient(ClientConfig{
		Servers:          map[sched.ServerID]string{0: srv.Addr()},
		RequestTimeout:   200 * time.Millisecond,
		ReconnectBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()
	if err := client.Put(ctx, "pristine", []byte("untouched")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	inj.Set(fault.Corrupt, 1, 0)
	// Hammer through the fault; outcomes vary (decode errors, timeouts,
	// torn connections) — the assertion is only that nothing wedges.
	for i := 0; i < 10; i++ {
		_, _ = client.Get(ctx, "pristine")
	}
	inj.Heal()

	fresh, err := NewClient(ClientConfig{Servers: map[sched.ServerID]string{0: srv.Addr()}})
	if err != nil {
		t.Fatalf("fresh client after heal: %v", err)
	}
	t.Cleanup(func() { _ = fresh.Close() })
	v, err := fresh.Get(ctx, "pristine")
	if err != nil {
		t.Fatalf("Get after heal: %v", err)
	}
	if string(v) != "untouched" {
		t.Fatalf("data corrupted at rest: %q", v)
	}
}
