package kv

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wire"
)

// This file ports the internal/schedtest property suite to the *real*
// server queue: raw wire connections drive a loopback server whose
// single worker is plugged with a long operation, so subsequent
// operations genuinely queue and the order (and scheduling class) of
// their responses reveals the live queue's service order. The sim-only
// suite let the live tail regress unnoticed (E21); these tests pin the
// live path.

// keyCost charges 1ms of service per key byte, making an operation's
// service demand controllable from the wire: a 30-byte key plugs the
// worker for ~30ms.
func keyCost(_ wire.OpType, keyLen, _ int) time.Duration {
	return time.Duration(keyLen) * time.Millisecond
}

// startLiveQueueServer launches one loopback server with a single
// worker over the given scheduling options.
func startLiveQueueServer(t *testing.T, opts core.Options, cost CostModel) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		ID:      0,
		Addr:    "127.0.0.1:0",
		Policy:  core.Factory(opts),
		Workers: 1,
		Cost:    cost,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

// rawConn speaks the wire protocol directly, bypassing the client so
// tests control every tag bit. Not safe for concurrent writers.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	w    *wire.Writer
	r    *wire.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &rawConn{t: t, conn: conn, w: wire.NewWriter(conn), r: wire.NewReader(conn)}
}

func (c *rawConn) send(req *wire.Request) {
	c.t.Helper()
	if err := c.w.WriteRequest(req); err != nil {
		c.t.Fatalf("WriteRequest: %v", err)
	}
}

func (c *rawConn) recv() wire.Response {
	c.t.Helper()
	var resp wire.Response
	if err := c.r.ReadResponse(&resp); err != nil {
		c.t.Fatalf("ReadResponse: %v", err)
	}
	return resp
}

// taggedGet builds a get whose queue behavior is fully determined by
// the test: remaining (SRPT key), slack (LRPT-last key), and service
// demand via key length under keyCost.
func taggedGet(id uint64, keyLen int, remaining, slack time.Duration) wire.Request {
	key := fmt.Sprintf("%0*d", keyLen, id)
	return wire.Request{
		ID: id, Type: wire.OpGet, Key: key,
		Tags: wire.Tags{
			RemainingNanos: int64(remaining),
			SlackNanos:     int64(slack),
			DemandNanos:    int64(time.Duration(keyLen) * time.Millisecond),
			Fanout:         1,
		},
	}
}

// plugWorker parks the server's single worker on a long operation so
// everything sent afterward queues. The sleep gives the worker time to
// pop the plug before the test's real traffic arrives.
func plugWorker(c *rawConn, id uint64, d time.Duration) {
	req := taggedGet(id, int(d/time.Millisecond), time.Microsecond, 0)
	c.send(&req)
	time.Sleep(30 * time.Millisecond)
}

// TestLiveQueueWorkConservation is work conservation on the real
// queue: every admitted operation is answered exactly once and the
// queue drains to empty.
func TestLiveQueueWorkConservation(t *testing.T) {
	srv := startLiveQueueServer(t, core.LiveOptions(), nil)
	c := dialRaw(t, srv.Addr())
	const n = 200
	for i := 1; i <= n; i++ {
		// A spread of tag shapes: untagged, SRPT-ordered, deep slack.
		req := taggedGet(uint64(i), 4, time.Duration(i%7)*time.Millisecond,
			time.Duration(i%3)*10*time.Millisecond)
		c.send(&req)
	}
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		resp := c.recv()
		if seen[resp.ID] {
			t.Fatalf("response %d delivered twice", resp.ID)
		}
		seen[resp.ID] = true
	}
	if len(seen) != n {
		t.Fatalf("answered %d of %d ops", len(seen), n)
	}
	if got := srv.QueueLen(); got != 0 {
		t.Fatalf("drained queue Len = %d", got)
	}
}

// TestLiveQueueSRPTOrder asserts the live queue actually serves its
// priority: with the worker plugged, queued operations come back in
// ascending remaining-time order regardless of arrival order.
func TestLiveQueueSRPTOrder(t *testing.T) {
	srv := startLiveQueueServer(t, core.LiveOptions(), keyCost)
	c := dialRaw(t, srv.Addr())
	plugWorker(c, 1, 50*time.Millisecond)
	// Arrival order 30ms, 10ms, 20ms; SRPT must serve 10, 20, 30.
	for _, r := range []wire.Request{
		taggedGet(2, 1, 30*time.Millisecond, 0),
		taggedGet(3, 1, 10*time.Millisecond, 0),
		taggedGet(4, 1, 20*time.Millisecond, 0),
	} {
		c.send(&r)
	}
	want := []uint64{1, 3, 4, 2}
	for _, w := range want {
		if resp := c.recv(); resp.ID != w {
			t.Fatalf("response order got id %d, want %d", resp.ID, w)
		}
	}
}

// TestLiveQueueShorterFirst is the monotonicity property live: an
// operation smaller in every size dimension is served first even when
// it arrives later.
func TestLiveQueueShorterFirst(t *testing.T) {
	srv := startLiveQueueServer(t, core.LiveOptions(), keyCost)
	c := dialRaw(t, srv.Addr())
	plugWorker(c, 1, 50*time.Millisecond)
	big := taggedGet(2, 8, 25*time.Millisecond, 0)
	small := taggedGet(3, 1, 2*time.Millisecond, 0)
	c.send(&big)
	c.send(&small)
	c.recv() // plug
	if resp := c.recv(); resp.ID != 3 {
		t.Fatalf("first queued response is id %d, want the smaller op", resp.ID)
	}
}

// TestLiveQueueStarvationBound asserts the AgingBound promise on the
// real data plane: a large-RPT operation facing a continuous stream of
// shorter arrivals is still served — promoted, not starved — and the
// server reports the promotion in both the response class and its
// decision counters. This is the exact mechanism that failed (absent)
// in E21, where live DAS p99 inverted 8.5x against FCFS.
func TestLiveQueueStarvationBound(t *testing.T) {
	srv := startLiveQueueServer(t, core.Options{Beta: 0.1, AgingBound: 4}, keyCost)
	c := dialRaw(t, srv.Addr())
	// A long plug keeps the worker busy well past the victim's and the
	// first stream ops' arrival, so the victim never meets an empty
	// queue (where it would be served unpromoted).
	plugWorker(c, 1, 60*time.Millisecond)

	const victimID = 2
	// Victim: 10ms of service and remaining time → promotion deadline
	// 40ms after enqueue under AgingBound 4.
	victim := taggedGet(victimID, 10, 10*time.Millisecond, 0)
	c.send(&victim)

	// Stream shorter ops (2ms remaining) faster than they are served,
	// so pure SRPT would defer the victim forever.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req := taggedGet(uint64(100+i), 2, 2*time.Millisecond, 0)
			if err := c.w.WriteRequest(&req); err != nil {
				return // conn torn down at test end
			}
			time.Sleep(time.Millisecond)
		}
	}()
	defer wg.Wait()
	defer close(stop)

	if err := c.conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatalf("SetReadDeadline: %v", err)
	}
	for {
		var resp wire.Response
		if err := c.r.ReadResponse(&resp); err != nil {
			t.Fatalf("victim starved: no response within 10s despite the aging bound (%v)", err)
		}
		if resp.ID != victimID {
			continue
		}
		if got := sched.Class(resp.Timing.SchedClass); got != sched.ClassPromoted {
			t.Fatalf("victim served with class %v, want %v", got, sched.ClassPromoted)
		}
		if d := srv.StatsSnapshot().Decisions; d == nil || d.Promotions < 1 {
			t.Fatalf("server decision counters missing the promotion: %+v", d)
		}
		return
	}
}

// TestLiveBatchOneSchedClass asserts a coherently tagged v3 batch
// frame is admitted under one scheduling decision: every operation of
// the frame reports the same class, while each still gets its own
// response frame.
func TestLiveBatchOneSchedClass(t *testing.T) {
	srv := startLiveQueueServer(t, core.LiveOptions(), keyCost)
	c := dialRaw(t, srv.Addr())
	plugWorker(c, 1, 60*time.Millisecond)

	// Remaining 40ms keeps the promotion deadline (AgingBound 2 ×
	// 40ms = 80ms) comfortably past the last member's wait (~45ms:
	// plug remainder plus five 2ms services), so no member is
	// promoted at pop time and the admission decision alone
	// determines every class.
	const width = 6
	reqs := make([]wire.Request, width)
	for i := range reqs {
		reqs[i] = taggedGet(uint64(10+i), 2, 40*time.Millisecond, 0)
	}
	if err := c.w.WriteBatch(reqs); err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	c.recv() // plug
	classes := make(map[uint64]uint8, width)
	for i := 0; i < width; i++ {
		resp := c.recv()
		if _, dup := classes[resp.ID]; dup {
			t.Fatalf("op %d answered twice", resp.ID)
		}
		classes[resp.ID] = resp.Timing.SchedClass
	}
	if len(classes) != width {
		t.Fatalf("answered %d ops of a %d-op batch", len(classes), width)
	}
	first := classes[10]
	for id, cl := range classes {
		if cl != first {
			t.Fatalf("batch split across classes: op %d got %d, op 10 got %d", id, cl, first)
		}
	}
	if st := srv.StatsSnapshot(); st.Batches < 1 {
		t.Fatalf("server admitted no batch frame: %+v", st)
	}
}

// TestLiveBatchIncoherentFallsBack asserts a batch frame whose tags
// disagree (a pre-batch-aware tagger, or a forged frame) still serves
// correctly through the per-op admission path.
func TestLiveBatchIncoherentFallsBack(t *testing.T) {
	srv := startLiveQueueServer(t, core.LiveOptions(), nil)
	c := dialRaw(t, srv.Addr())
	reqs := make([]wire.Request, 4)
	for i := range reqs {
		reqs[i] = taggedGet(uint64(20+i), 2, time.Duration(i+1)*5*time.Millisecond,
			time.Duration(i)*time.Millisecond)
	}
	if err := c.w.WriteBatch(reqs); err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < len(reqs); i++ {
		resp := c.recv()
		if resp.Status != wire.StatusNotFound {
			t.Fatalf("op %d status = %d, want not-found on an empty store", resp.ID, resp.Status)
		}
		seen[resp.ID] = true
	}
	if len(seen) != len(reqs) {
		t.Fatalf("answered %d of %d incoherent-batch ops", len(seen), len(reqs))
	}
}
