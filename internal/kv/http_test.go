package kv

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wire"
)

func metricsFixture(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(ServerConfig{ID: 3, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := NewClient(ClientConfig{Servers: map[sched.ServerID]string{3: srv.Addr()}})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return srv, client
}

func TestMetricsHealthz(t *testing.T) {
	srv, _ := metricsFixture(t)
	h := NewMetricsHandler(srv)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

func TestMetricsStatsJSON(t *testing.T) {
	srv, client := metricsFixture(t)
	if err := client.Put(context.Background(), "m", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	h := NewMetricsHandler(srv)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var st wire.ServerStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.Server != 3 || st.Served == 0 || st.Keys != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	srv, client := metricsFixture(t)
	if err := client.Put(context.Background(), "m", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	h := NewMetricsHandler(srv)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"kv_ops_served_total{server=\"3\"}",
		"kv_queue_length{server=\"3\"}",
		"kv_backlog_seconds",
		"kv_speed_ratio",
		"kv_keys{server=\"3\"} 1",
		"# TYPE kv_ops_served_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsUnknownPath(t *testing.T) {
	srv, _ := metricsFixture(t)
	h := NewMetricsHandler(srv)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path status = %d, want 404", rec.Code)
	}
}
