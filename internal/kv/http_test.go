package kv

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wire"
)

func metricsFixture(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(ServerConfig{ID: 3, Addr: "127.0.0.1:0", Policy: core.Factory(core.DefaultOptions())})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := NewClient(ClientConfig{Servers: map[sched.ServerID]string{3: srv.Addr()}})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return srv, client
}

func TestMetricsHealthz(t *testing.T) {
	srv, _ := metricsFixture(t)
	h := NewMetricsHandler(srv)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

func TestMetricsStatsJSON(t *testing.T) {
	srv, client := metricsFixture(t)
	if err := client.Put(context.Background(), "m", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	h := NewMetricsHandler(srv)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var st wire.ServerStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.Server != 3 || st.Served == 0 || st.Keys != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.OpenConns != 1 || st.ConnsTotal != 1 || st.ConnGoroutines != 2 {
		t.Fatalf("connection gauges = %d open, %d total, %d goroutines; want 1/1/2",
			st.OpenConns, st.ConnsTotal, st.ConnGoroutines)
	}
	if st.Goroutines <= 0 {
		t.Fatalf("process goroutines = %d", st.Goroutines)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d with nothing outstanding", st.InFlight)
	}

	// Over the wire, the stats op itself is in flight while the document
	// is built, so the in-flight gauge must read at least 1.
	wireSt, err := client.Stats(context.Background(), 3)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if wireSt.InFlight < 1 || wireSt.ConnInFlightMax < 1 {
		t.Fatalf("wire stats in-flight = %d (conn max %d), want >= 1 — the stats op itself",
			wireSt.InFlight, wireSt.ConnInFlightMax)
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	srv, client := metricsFixture(t)
	ctx := context.Background()
	if err := client.Put(ctx, "m", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := client.Get(ctx, "m"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	h := NewMetricsHandler(srv)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != metrics.ExpositionContentType {
		t.Fatalf("Content-Type = %q, want %q", got, metrics.ExpositionContentType)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`kv_ops_served_total{server="3",op="put"} 1`,
		`kv_ops_served_total{server="3",op="get"} 1`,
		`kv_queue_length{server="3"}`,
		"kv_backlog_seconds",
		"kv_speed_ratio",
		`kv_keys{server="3"} 1`,
		"# HELP kv_ops_served_total ",
		"# TYPE kv_ops_served_total counter",
		"# TYPE kv_op_service_seconds histogram",
		`kv_op_service_seconds_bucket{server="3",op="get",le="+Inf"} 1`,
		`kv_op_service_seconds_count{server="3",op="put"} 1`,
		"# TYPE kv_op_queue_wait_seconds histogram",
		`kv_op_queue_wait_seconds_count{server="3",op="get"} 1`,
		"# TYPE kv_demand_error_seconds summary",
		`kv_demand_error_seconds{server="3",quantile="0.99"}`,
		`kv_deadline_shed_total{server="3"} 0`,
		`kv_op_errors_total{server="3"} 0`,
		`decision="srpt-first"`,
		`kv_open_connections{server="3"} 1`,
		`kv_connections_total{server="3"} 1`,
		`kv_conn_goroutines{server="3"} 2`,
		"kv_process_goroutines",
		`kv_inflight_ops{server="3"} 0`,
		`kv_conn_inflight_ops_max{server="3"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if problems := metrics.LintExposition(strings.NewReader(body)); len(problems) > 0 {
		t.Fatalf("exposition lint problems: %v\n%s", problems, body)
	}
}

func TestMetricsUnknownPath(t *testing.T) {
	srv, _ := metricsFixture(t)
	h := NewMetricsHandler(srv)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path status = %d, want 404", rec.Code)
	}
}
