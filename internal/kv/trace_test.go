package kv

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

func TestMGetTraceRecorded(t *testing.T) {
	_, client := metricsFixture(t)
	ctx := context.Background()
	keys := []string{"ta", "tb", "tc"}
	for _, k := range keys {
		if err := client.Put(ctx, k, []byte("v-"+k)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if _, err := client.MGet(ctx, keys); err != nil {
		t.Fatalf("MGet: %v", err)
	}

	traces := client.Traces(1)
	if len(traces) != 1 {
		t.Fatalf("Traces(1) returned %d traces", len(traces))
	}
	tr := traces[0]
	if tr.Fanout != len(keys) || len(tr.Ops) != len(keys) {
		t.Fatalf("trace fanout = %d ops = %d, want %d", tr.Fanout, len(tr.Ops), len(keys))
	}
	if tr.RCT <= 0 {
		t.Fatalf("trace RCT = %v, want > 0", tr.RCT)
	}
	if tr.Partial {
		t.Fatalf("trace marked partial for a clean multiget")
	}
	s := tr.Straggler()
	if s == nil || !s.Straggler {
		t.Fatalf("no straggler flagged: %+v", tr)
	}
	stragglers := 0
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Straggler {
			stragglers++
			if op.End < tr.Ops[(i+1)%len(tr.Ops)].End {
				t.Fatalf("straggler %q did not finish last: %+v", op.Key, tr.Ops)
			}
		}
		if op.Key != keys[op.Index] {
			t.Fatalf("op %d key = %q, want %q", op.Index, op.Key, keys[op.Index])
		}
		if !op.Found || op.Err != "" {
			t.Fatalf("op %q found=%v err=%q", op.Key, op.Found, op.Err)
		}
		if op.Bytes != len("v-"+op.Key) {
			t.Fatalf("op %q bytes = %d", op.Key, op.Bytes)
		}
		if op.Attempts != 1 {
			t.Fatalf("op %q attempts = %d, want 1", op.Key, op.Attempts)
		}
		if op.End <= op.Start || op.Start < 0 {
			t.Fatalf("op %q timeline [%v, %v] invalid", op.Key, op.Start, op.End)
		}
		// A bare in-memory get can complete inside one clock tick, so
		// only negative service/wait values are wrong.
		if op.Service < 0 {
			t.Fatalf("op %q server-reported service = %v", op.Key, op.Service)
		}
		if op.Wait < 0 {
			t.Fatalf("op %q server-reported wait = %v", op.Key, op.Wait)
		}
		if op.Class != "srpt-first" && op.Class != "lrpt-last" && op.Class != "promoted" {
			t.Fatalf("op %q class = %q, want a DAS classification", op.Key, op.Class)
		}
		if op.Replicas != 1 {
			t.Fatalf("op %q replicas = %d, want 1", op.Key, op.Replicas)
		}
		if op.Score <= 0 {
			t.Fatalf("op %q selector score = %v, want > 0", op.Key, op.Score)
		}
	}
	if stragglers != 1 {
		t.Fatalf("%d ops flagged straggler, want exactly 1", stragglers)
	}

	// Sequence numbers advance and newest comes first.
	if _, err := client.MGet(ctx, keys[:1]); err != nil {
		t.Fatalf("MGet: %v", err)
	}
	both := client.Traces(10)
	if len(both) != 2 || both[0].Seq <= both[1].Seq {
		t.Fatalf("Traces order/seq wrong: %d traces, seqs %v",
			len(both), []uint64{both[0].Seq, both[1].Seq})
	}
}

func TestTraceNotFoundAndMetrics(t *testing.T) {
	_, client := metricsFixture(t)
	ctx := context.Background()
	if err := client.Put(ctx, "present", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := client.MGet(ctx, []string{"present", "absent"}); err != nil {
		t.Fatalf("MGet: %v", err)
	}
	tr := client.Traces(1)[0]
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Key == "absent" && op.Found {
			t.Fatalf("absent key reported found")
		}
		if op.Err != "" {
			t.Fatalf("op %q unexpected error %q", op.Key, op.Err)
		}
	}

	m := client.Metrics()
	// Writes are not traced; the one MGet is the only request.
	if m.Requests != 1 || m.Ops != 2 {
		t.Fatalf("metrics requests/ops = %d/%d, want 1/2", m.Requests, m.Ops)
	}
	if m.Partials != 0 || m.Retries != 0 {
		t.Fatalf("metrics partials/retries = %d/%d, want 0/0", m.Partials, m.Retries)
	}
	if m.RCT.Count != 1 || m.RCT.Max <= 0 || m.RCT.P99 < m.RCT.P50 {
		t.Fatalf("RCT snapshot inconsistent: %+v", m.RCT)
	}
	if m.OpLatency.Count != 2 || m.OpLatency.Mean <= 0 {
		t.Fatalf("OpLatency snapshot inconsistent: %+v", m.OpLatency)
	}
	if m.EstimatorError.Count == 0 {
		t.Fatalf("EstimatorError never observed")
	}
}

func TestTraceDepthDisablesTracing(t *testing.T) {
	srv, _ := metricsFixture(t)
	client, err := NewClient(ClientConfig{
		Servers:    map[sched.ServerID]string{3: srv.Addr()},
		TraceDepth: -1,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()
	if err := client.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := client.MGet(ctx, []string{"k"}); err != nil {
		t.Fatalf("MGet: %v", err)
	}
	if traces := client.Traces(1); traces != nil {
		t.Fatalf("tracing disabled but Traces returned %+v", traces)
	}
	// Local metrics still accumulate with tracing off.
	if m := client.Metrics(); m.Requests != 1 {
		t.Fatalf("metrics requests = %d, want 1", m.Requests)
	}
}

func TestTraceRingWrapAndConcurrency(t *testing.T) {
	r := newTraceRing(8)
	for i := 0; i < 20; i++ {
		r.add(RequestTrace{RCT: time.Duration(i)})
	}
	got := r.last(100)
	if len(got) != 8 {
		t.Fatalf("ring returned %d traces, want 8", len(got))
	}
	if got[0].Seq != 20 || got[7].Seq != 13 {
		t.Fatalf("ring order wrong: first seq %d last seq %d", got[0].Seq, got[7].Seq)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq-1 {
			t.Fatalf("seqs not contiguous newest-first: %+v", got)
		}
	}
	if r.last(0) != nil {
		t.Fatalf("last(0) should be nil")
	}

	// Hammer the ring from many goroutines; run with -race.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.add(RequestTrace{Fanout: i})
				_ = r.last(4)
			}
		}()
	}
	wg.Wait()
	if final := r.last(8); len(final) != 8 {
		t.Fatalf("ring lost capacity under concurrency: %d", len(final))
	}
}

func TestClientTracingConcurrent(t *testing.T) {
	_, client := metricsFixture(t)
	ctx := context.Background()
	keys := make([]string, 6)
	for i := range keys {
		keys[i] = fmt.Sprintf("ck%d", i)
		if err := client.Put(ctx, keys[i], []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := client.MGet(ctx, keys); err != nil {
					t.Errorf("MGet: %v", err)
					return
				}
				_ = client.Traces(3)
				_ = client.Metrics()
			}
		}()
	}
	wg.Wait()
	m := client.Metrics()
	if m.Requests < 40 {
		t.Fatalf("metrics requests = %d, want >= 40", m.Requests)
	}
}
