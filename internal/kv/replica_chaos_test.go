package kv

// Replication chaos and smoke tests: with R-way placement the client
// must mask a replica crash mid-multiget (no PartialError, unlike the
// R=1 scenario in TestMultigetPartialOnServerCrash), and read-repair
// must converge a replica that missed a write.

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wire"
)

// startReplicatedCluster boots n loopback servers with the given per-op
// cost and a client configured for R-way replication.
func startReplicatedCluster(t *testing.T, n, replicas int, cost CostModel, cc ClientConfig) ([]*Server, *Client) {
	t.Helper()
	servers := make([]*Server, n)
	addrs := make(map[sched.ServerID]string, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer(ServerConfig{
			ID:          sched.ServerID(i),
			Addr:        "127.0.0.1:0",
			Cost:        cost,
			Replication: replicas,
		})
		if err != nil {
			t.Fatalf("NewServer %d: %v", i, err)
		}
		servers[i] = srv
		addrs[srv.ID()] = srv.Addr()
		t.Cleanup(func() { _ = srv.Close() })
	}
	cc.Servers = addrs
	cc.Replicas = replicas
	client, err := NewClient(cc)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return servers, client
}

// TestReplicatedMGetMasksCrash is the replication headline: the same
// kill-one-server-mid-multiget script that produces a PartialError at
// R=1 must complete fully at R=3 — every op on the dead holder fails
// over to a sibling replica.
func TestReplicatedMGetMasksCrash(t *testing.T) {
	cost := func(wire.OpType, int, int) time.Duration { return 10 * time.Millisecond }
	servers, client := startReplicatedCluster(t, 3, 3, cost, ClientConfig{
		Adaptive:         true,
		ReadFrom:         FastestRead,
		ReadRetries:      3,
		RetryBackoff:     5 * time.Millisecond,
		ReconnectBackoff: 50 * time.Millisecond,
		Seed:             7,
	})
	ctx := context.Background()
	keys := make([]string, 24)
	values := make(map[string]string, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("masked-%03d", i)
		values[keys[i]] = fmt.Sprintf("v%d", i)
		if err := client.Put(ctx, keys[i], []byte(values[keys[i]])); err != nil {
			t.Fatalf("Put %s: %v", keys[i], err)
		}
	}

	mctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	type mgetResult struct {
		res map[string][]byte
		err error
	}
	done := make(chan mgetResult, 1)
	go func() {
		res, merr := client.MGet(mctx, keys)
		done <- mgetResult{res, merr}
	}()
	// Kill one holder while the 10ms/op queue still has most of the
	// batch pending; with every key held 3-way the client must finish
	// the request from the survivors.
	time.Sleep(30 * time.Millisecond)
	if err := servers[0].Close(); err != nil {
		t.Fatalf("kill server 0: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("replicated MGet must mask the crash, got %v", r.err)
	}
	for _, k := range keys {
		if got := string(r.res[k]); got != values[k] {
			t.Fatalf("key %s = %q, want %q", k, got, values[k])
		}
	}
}

// TestReplicatedSmoke is the CI smoke scenario: a 3-server loopback
// cluster at R=2 serving versioned writes, failover-capable reads, and
// placement introspection.
func TestReplicatedSmoke(t *testing.T) {
	_, client := startReplicatedCluster(t, 3, 2, nil, ClientConfig{
		Adaptive:     true,
		ReadFrom:     FastestRead,
		ReadRetries:  1,
		RetryBackoff: 5 * time.Millisecond,
		Seed:         3,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const n = 50
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("smoke-%03d", i)
		if err := client.Put(ctx, keys[i], []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	res, err := client.MGet(ctx, keys)
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	for i, k := range keys {
		if got := string(res[k]); got != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %s = %q", k, got)
		}
	}
	// Overwrites win: last writer's value is what reads return.
	if err := client.Put(ctx, keys[0], []byte("v0-new")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if v, err := client.Get(ctx, keys[0]); err != nil || string(v) != "v0-new" {
		t.Fatalf("after overwrite: %q, %v", v, err)
	}
	// Placement and selector introspection agree on the replica set.
	holders := client.KeyReplicas(keys[0])
	if len(holders) != 2 || holders[0] == holders[1] {
		t.Fatalf("KeyReplicas = %v, want 2 distinct servers", holders)
	}
	scores := client.ReplicaScores(keys[0])
	if len(scores) != 2 {
		t.Fatalf("ReplicaScores returned %d entries, want 2", len(scores))
	}
	// A healthy, consistent key needs no repair.
	if fixed, err := client.Repair(ctx, keys[0]); err != nil || fixed != 0 {
		t.Fatalf("Repair on consistent key: fixed=%d err=%v", fixed, err)
	}
	// Deletes propagate to every holder.
	if err := client.Delete(ctx, keys[1]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := client.Get(ctx, keys[1]); err != ErrNotFound {
		t.Fatalf("Get after Delete: %v, want ErrNotFound", err)
	}
}

// TestRepairConvergesDivergedReplica diverges one holder behind the
// client's back (as a missed write during an outage would) and checks
// that Repair pushes the newest version onto it.
func TestRepairConvergesDivergedReplica(t *testing.T) {
	servers, client := startReplicatedCluster(t, 2, 2, nil, ClientConfig{
		Adaptive: true,
		Seed:     5,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	const key = "diverged"
	if err := client.Put(ctx, key, []byte("new")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Roll one replica's copy back to an older version directly in its
	// store: the replicated put stamped both holders with the same
	// version, so halving it is strictly older.
	holders := client.KeyReplicas(key)
	var victim *Server
	for _, srv := range servers {
		if srv.ID() == holders[1] {
			victim = srv
		}
	}
	if victim == nil {
		t.Fatalf("no server for holder %v", holders[1])
	}
	_, cur, ok := victim.store.GetVersioned(key)
	if !ok || cur == 0 {
		t.Fatalf("victim copy missing or unversioned (ver=%d ok=%v)", cur, ok)
	}
	victim.store.Delete(key)
	if applied, _ := victim.store.PutVersioned(key, []byte("old"), 0, cur/2); !applied {
		t.Fatal("seeding the stale copy failed")
	}

	fixed, err := client.Repair(ctx, key)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if fixed != 1 {
		t.Fatalf("Repair fixed %d replicas, want 1", fixed)
	}
	v, ver, ok := victim.store.GetVersioned(key)
	if !ok || !bytes.Equal(v, []byte("new")) || ver != cur {
		t.Fatalf("after repair victim holds %q ver=%d (ok=%v), want %q ver=%d", v, ver, ok, "new", cur)
	}
}
