package kv

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wal"
	"github.com/daskv/daskv/internal/wire"
)

// TestStoreMerge pins the RMW contract: absent keys count from zero,
// totals accumulate under the shard lock, versions advance like puts,
// and a non-integer value fails the op without mutating.
func TestStoreMerge(t *testing.T) {
	s := NewStore()
	total, ver, err := s.Merge("ctr", 5, 0)
	if err != nil || total != 5 || ver != 1 {
		t.Fatalf("first merge = %d/%d/%v, want 5/1/nil", total, ver, err)
	}
	total, ver, err = s.Merge("ctr", -2, 0)
	if err != nil || total != 3 || ver != 2 {
		t.Fatalf("second merge = %d/%d/%v, want 3/2/nil", total, ver, err)
	}
	if v, ok := s.Get("ctr"); !ok || string(v) != "3" {
		t.Fatalf("Get after merges = %q/%v, want \"3\"", v, ok)
	}

	// A counter seeded by a plain put interoperates.
	s.Put("seeded", []byte("40"))
	if total, _, err = s.Merge("seeded", 2, 0); err != nil || total != 42 {
		t.Fatalf("merge over put = %d/%v, want 42", total, err)
	}

	// Non-integer values fail without mutating.
	s.Put("text", []byte("hello"))
	if _, _, err = s.Merge("text", 1, 0); err == nil {
		t.Fatal("merge over non-integer value succeeded")
	}
	if v, _ := s.Get("text"); string(v) != "hello" {
		t.Fatalf("failed merge mutated the value: %q", v)
	}
}

// TestClientIncrEndToEnd drives OpIncr through the live wire path:
// increments accumulate, a plain Get sees the decimal total, and the
// guard rails (replicated configs, old protocol pins, non-integer
// values) all refuse cleanly.
func TestClientIncrEndToEnd(t *testing.T) {
	srv := newWALServer(t, t.TempDir(), func(cfg *ServerConfig) {
		cfg.WALSync = wal.SyncPolicy{Mode: wal.SyncCoalesce, Window: time.Millisecond}
	})
	defer func() { _ = srv.Close() }()
	client := connect(t, srv)
	ctx := context.Background()

	if total, err := client.Incr(ctx, "hits", 1); err != nil || total != 1 {
		t.Fatalf("first incr = %d/%v, want 1", total, err)
	}
	if total, err := client.Incr(ctx, "hits", 41); err != nil || total != 42 {
		t.Fatalf("second incr = %d/%v, want 42", total, err)
	}
	if v, err := client.Get(ctx, "hits"); err != nil || string(v) != "42" {
		t.Fatalf("Get = %q/%v, want \"42\"", v, err)
	}
	if total, err := client.Incr(ctx, "hits", -2); err != nil || total != 40 {
		t.Fatalf("negative incr = %d/%v, want 40", total, err)
	}

	if err := client.Put(ctx, "text", []byte("not-a-number")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := client.Incr(ctx, "text", 1); err == nil {
		t.Fatal("incr over a non-integer value succeeded")
	}

	// A v3-pinned client cannot put OpIncr on the wire; the client
	// refuses locally rather than sending a frame the server rejects.
	old, err := NewClient(ClientConfig{
		Servers:         map[sched.ServerID]string{srv.ID(): srv.Addr()},
		ProtocolVersion: wire.Version3,
	})
	if err != nil {
		t.Fatalf("NewClient(v3): %v", err)
	}
	defer func() { _ = old.Close() }()
	if _, err := old.Incr(ctx, "hits", 1); err == nil {
		t.Fatal("v3-pinned client accepted Incr")
	}
}

// TestServerIncrCoalesceCrashRecovery is the durability acceptance
// test behind the coalesce policy's ack contract: concurrent clients
// hammer a few hot counters under `coalesce:5ms`, the server dies with
// kill -9 semantics (Crash: no flush, no snapshot), and the restarted
// server must hold every acknowledged increment exactly once — the
// folded windows replay to the exact totals, never double-counting.
func TestServerIncrCoalesceCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, func(cfg *ServerConfig) {
		cfg.WALSync = wal.SyncPolicy{Mode: wal.SyncCoalesce, Window: 5 * time.Millisecond}
		cfg.Workers = 4
	})
	client := connect(t, srv)
	ctx := context.Background()

	const (
		workers = 8
		perW    = 50
		keys    = 4
	)
	var acked [keys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := (g + i) % keys
				if _, err := client.Incr(ctx, fmt.Sprintf("ctr-%d", k), 1); err != nil {
					t.Errorf("Incr: %v", err)
					return
				}
				acked[k].Add(1)
			}
		}(g)
	}
	wg.Wait()
	st := srv.StatsSnapshot()
	if st.WAL == nil || st.WAL.CoalesceWindows == 0 {
		t.Fatalf("wal stats after coalesced load = %+v", st.WAL)
	}
	// Folding depth depends on how many acks share a window, which a
	// loaded test machine can squeeze to one op per window — strict
	// fold ratios are asserted by the deterministic WAL-package tests
	// (TestCoalesceBytesPerOpRatioGate); here only the accounting
	// invariant is load-independent.
	if st.WAL.CoalescedRecords > st.WAL.CoalescedOps {
		t.Fatalf("more records than ops: %d records for %d ops", st.WAL.CoalescedRecords, st.WAL.CoalescedOps)
	}
	_ = client.Close()
	srv.Crash()

	srv2 := newWALServer(t, dir, nil)
	defer func() { _ = srv2.Close() }()
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("ctr-%d", k)
		v, ok := srv2.Store().Get(key)
		if !ok {
			t.Fatalf("%s missing after crash recovery", key)
		}
		got, perr := strconv.ParseInt(string(v), 10, 64)
		if perr != nil {
			t.Fatalf("%s recovered non-integer %q", key, v)
		}
		if want := acked[k].Load(); got != want {
			t.Fatalf("%s = %d after recovery, want exactly %d acked increments", key, got, want)
		}
	}
}
