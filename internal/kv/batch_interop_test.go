package kv

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wire"
)

// interopKeys builds n preloadable key/value pairs.
func interopKeys(n int) map[string][]byte {
	pairs := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		pairs[fmt.Sprintf("interop-%03d", i)] = []byte(fmt.Sprintf("value-%03d", i))
	}
	return pairs
}

// TestInteropV2ClientNewServer pins the client to protocol v2 against
// current servers: every operation must work, and the servers must see
// only single-op frames (batches degrade on the wire, not semantically).
func TestInteropV2ClientNewServer(t *testing.T) {
	servers := make([]*Server, 3)
	addrs := make(map[sched.ServerID]string, len(servers))
	for i := range servers {
		srv, err := NewServer(ServerConfig{ID: sched.ServerID(i), Addr: "127.0.0.1:0"})
		if err != nil {
			t.Fatalf("NewServer %d: %v", i, err)
		}
		servers[i] = srv
		addrs[srv.ID()] = srv.Addr()
		t.Cleanup(func() { _ = srv.Close() })
	}
	client, err := NewClient(ClientConfig{
		Servers:         addrs,
		ProtocolVersion: wire.Version2,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })

	ctx := context.Background()
	pairs := interopKeys(32)
	if err := client.MSet(ctx, pairs); err != nil {
		t.Fatalf("MSet over v2: %v", err)
	}
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	got, err := client.MGet(ctx, keys)
	if err != nil {
		t.Fatalf("MGet over v2: %v", err)
	}
	for k, want := range pairs {
		if string(got[k]) != string(want) {
			t.Fatalf("key %q = %q, want %q", k, got[k], want)
		}
	}
	if err := client.Put(ctx, "v2-single", []byte("x")); err != nil {
		t.Fatalf("Put over v2: %v", err)
	}
	if err := client.CompareAndSwap(ctx, "v2-single", []byte("x"), []byte("y")); err != nil {
		t.Fatalf("CAS over v2: %v", err)
	}
	if err := client.Delete(ctx, "v2-single"); err != nil {
		t.Fatalf("Delete over v2: %v", err)
	}
	// The degraded wire carries no batch frames at all.
	for _, srv := range servers {
		stats, err := client.Stats(ctx, srv.ID())
		if err != nil {
			t.Fatalf("Stats %d: %v", srv.ID(), err)
		}
		if stats.Batches != 0 || stats.BatchOps != 0 {
			t.Fatalf("server %d saw %d batch frames (%d ops) from a v2 client",
				srv.ID(), stats.Batches, stats.BatchOps)
		}
	}
}

// strictV2Server emulates a pre-batching peer: it decodes with
// ReadRequest — which rejects batch frames outright — and answers in
// protocol v2. Shutdown via close().
type strictV2Server struct {
	ln net.Listener

	mu    sync.Mutex
	store map[string][]byte
}

func startStrictV2Server(t *testing.T) *strictV2Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &strictV2Server{ln: ln, store: make(map[string][]byte)}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	t.Cleanup(s.close)
	return s
}

func (s *strictV2Server) close() { _ = s.ln.Close() }

func (s *strictV2Server) serve(conn net.Conn) {
	defer conn.Close()
	r := wire.NewReader(conn)
	w := wire.NewWriter(conn)
	w.SetVersion(wire.Version2)
	var req wire.Request
	for {
		if err := r.ReadRequest(&req); err != nil {
			return // batch frame or torn conn: a real old server drops it too
		}
		resp := wire.Response{ID: req.ID, Status: wire.StatusOK}
		s.mu.Lock()
		switch req.Type {
		case wire.OpGet:
			v, ok := s.store[req.Key]
			if ok {
				resp.Value = v
			} else {
				resp.Status = wire.StatusNotFound
			}
		case wire.OpPut:
			s.store[req.Key] = append([]byte(nil), req.Value...)
		case wire.OpDelete:
			delete(s.store, req.Key)
		default:
			resp.Status = wire.StatusError
		}
		s.mu.Unlock()
		if err := w.WriteResponse(&resp); err != nil {
			return
		}
	}
}

// TestInteropPinnedClientStrictV2Server runs a v2-pinned client against
// a server that predates batch frames: multiget and multiset must work
// end to end, because the pinned client never emits a batch frame.
func TestInteropPinnedClientStrictV2Server(t *testing.T) {
	old := startStrictV2Server(t)
	client, err := NewClient(ClientConfig{
		Servers:         map[sched.ServerID]string{0: old.ln.Addr().String()},
		ProtocolVersion: wire.Version2,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })

	ctx := context.Background()
	pairs := interopKeys(16)
	if err := client.MSet(ctx, pairs); err != nil {
		t.Fatalf("MSet against strict-v2 server: %v", err)
	}
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	got, err := client.MGet(ctx, keys)
	if err != nil {
		t.Fatalf("MGet against strict-v2 server: %v", err)
	}
	for k, want := range pairs {
		if string(got[k]) != string(want) {
			t.Fatalf("key %q = %q, want %q", k, got[k], want)
		}
	}
}

// TestInteropV3ClientStrictV2ServerFails documents the other corner of
// the matrix: an unpinned client's batch frame is rejected by a strict
// v2 peer, surfacing as unavailability rather than silent corruption.
func TestInteropV3ClientStrictV2ServerFails(t *testing.T) {
	old := startStrictV2Server(t)
	client, err := NewClient(ClientConfig{
		Servers: map[sched.ServerID]string{0: old.ln.Addr().String()},
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })

	ctx := context.Background()
	// Single-op frames are layout-identical across versions, so
	// single-key traffic still works...
	if err := client.Put(ctx, "still-works", []byte("x")); err != nil {
		t.Fatalf("single-op Put against strict-v2 server: %v", err)
	}
	// ...but a multiget wide enough to form a batch frame is refused.
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("batch-%d", i)
	}
	if _, err := client.MGet(ctx, keys); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("batched MGet err = %v, want ErrUnavailable", err)
	}
}

// TestBatchStatsCounters checks the server accounts batch admissions and
// coalesced response flushes for a current client.
func TestBatchStatsCounters(t *testing.T) {
	srv, err := NewServer(ServerConfig{ID: 0, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := NewClient(ClientConfig{
		Servers: map[sched.ServerID]string{0: srv.Addr()},
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })

	ctx := context.Background()
	pairs := interopKeys(32)
	if err := client.MSet(ctx, pairs); err != nil {
		t.Fatalf("MSet: %v", err)
	}
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	if _, err := client.MGet(ctx, keys); err != nil {
		t.Fatalf("MGet: %v", err)
	}
	stats, err := client.Stats(ctx, 0)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Batches == 0 {
		t.Fatal("server admitted no batch frames from a v3 client")
	}
	if stats.BatchOps < uint64(len(pairs)) {
		t.Fatalf("batchOps = %d, want >= %d", stats.BatchOps, len(pairs))
	}
	if stats.RespFrames == 0 || stats.RespFlushes == 0 {
		t.Fatalf("response accounting missing: frames=%d flushes=%d",
			stats.RespFrames, stats.RespFlushes)
	}
	if stats.RespFlushes > stats.RespFrames {
		t.Fatalf("flushes=%d exceed frames=%d", stats.RespFlushes, stats.RespFrames)
	}
}

// TestDispatchAllocCeiling pins the client dispatch encode path: with
// the request slice built and the writer's scratch warmed, sending a
// per-server group must not allocate at all.
func TestDispatchAllocCeiling(t *testing.T) {
	c := &Client{cfg: ClientConfig{}}
	cc := &clientConn{client: c, w: wire.NewWriter(io.Discard)}
	reqs := make([]wire.Request, 16)
	for i := range reqs {
		reqs[i] = wire.Request{ID: uint64(i), Type: wire.OpGet, Key: fmt.Sprintf("alloc-%02d", i)}
	}
	if err := c.writeChunked(cc, reqs); err != nil { // warm the scratch buffer
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(100, func() {
		if err := c.writeChunked(cc, reqs); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("dispatch encode allocates %.1f per group in steady state, want 0", got)
	}
}
