package kv

import (
	"sync"
	"time"

	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/sched"
)

// OpTrace is one operation's timeline within a traced multiget. Start,
// End, and ExpectedFinish are offsets from the request's dispatch
// instant on the client clock; Wait and Service are the server's own
// measurements reported on the response, so the gap
// (End − Start) − Wait − Service is attributable to network and
// client-side queueing.
type OpTrace struct {
	// Index is the op's position in the multiget's key order.
	Index int
	// Key is the accessed key.
	Key string
	// Server is the replica that served the final attempt.
	Server sched.ServerID
	// Replicas is how many holders the key's placement offered the
	// selector.
	Replicas int
	// Attempts is how many dispatches the op took (1 = no retries).
	Attempts int
	// Start and End bound the op on the client clock (End covers the
	// final attempt's completion, or the moment the op gave up).
	Start, End time.Duration
	// ExpectedFinish is the tagger's predicted completion offset at
	// dispatch — compare against End to judge the estimator.
	ExpectedFinish time.Duration
	// Score is the selector's expected-finish score for the chosen
	// replica at initial dispatch (offset from request dispatch,
	// including the Tars-style in-flight compensation). The ranking the
	// oblivious policies ignored is still recorded, so a trace shows
	// what Adaptive would have thought of the pick.
	Score time.Duration
	// Wait and Service are the server-reported queue wait and service
	// execution time of the final attempt (zero when the op never got
	// a response).
	Wait, Service time.Duration
	// Class is the serving policy's scheduling classification of the
	// final attempt ("srpt-first", "lrpt-last", "promoted", or
	// "unknown" for policies that do not classify).
	Class string
	// Bytes is the returned value size.
	Bytes int
	// Found is whether the key existed.
	Found bool
	// Err is the op's failure, "" on success.
	Err string
	// Straggler marks the operation that finished last — the one that
	// set the request's completion time.
	Straggler bool
}

// RequestTrace is the end-to-end timeline of one multiget: one OpTrace
// per key, with the straggler flagged. Traces of the last N requests
// are kept in a ring buffer (ClientConfig.TraceDepth) and read with
// Client.Traces; kvctl's `trace` subcommand renders them.
type RequestTrace struct {
	// Seq numbers traced requests on this client, starting at 1.
	Seq uint64
	// Start is the request's wall-clock dispatch time.
	Start time.Time
	// RCT is the request completion time (dispatch to last op done).
	RCT time.Duration
	// Fanout is the number of operations.
	Fanout int
	// StragglerIndex is the index into Ops of the last-finishing
	// operation (-1 for an empty trace).
	StragglerIndex int
	// Partial is true when some operations failed.
	Partial bool
	// Ops holds the per-operation timelines in key order.
	Ops []OpTrace
}

// Straggler returns the last-finishing op's trace (nil for an empty
// trace).
func (t *RequestTrace) Straggler() *OpTrace {
	if t.StragglerIndex < 0 || t.StragglerIndex >= len(t.Ops) {
		return nil
	}
	return &t.Ops[t.StragglerIndex]
}

// traceRing keeps the last N request traces. Safe for concurrent use.
type traceRing struct {
	mu   sync.Mutex
	buf  []RequestTrace
	n    int // traces ever added
	size int
}

func newTraceRing(depth int) *traceRing {
	return &traceRing{buf: make([]RequestTrace, depth), size: depth}
}

// add appends one trace, overwriting the oldest when full, and stamps
// its sequence number.
func (r *traceRing) add(tr RequestTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	tr.Seq = uint64(r.n)
	r.buf[(r.n-1)%r.size] = tr
}

// last returns up to n of the most recent traces, newest first. The
// returned traces are copies; Ops slices are shared but never mutated
// after add.
func (r *traceRing) last(n int) []RequestTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || r.n == 0 {
		return nil
	}
	have := r.n
	if have > r.size {
		have = r.size
	}
	if n > have {
		n = have
	}
	out := make([]RequestTrace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(r.n-1-i)%r.size])
	}
	return out
}

// Traces returns up to n of the most recently completed multiget
// traces, newest first. Tracing is on by default (the last
// ClientConfig.TraceDepth requests are retained); it returns nil when
// tracing is disabled or nothing has completed yet.
func (c *Client) Traces(n int) []RequestTrace {
	if c.traces == nil {
		return nil
	}
	return c.traces.last(n)
}

// LatencySnapshot is a point-in-time summary of one client-local
// latency distribution.
type LatencySnapshot struct {
	Count               uint64
	Mean, P50, P95, P99 time.Duration
	Max                 time.Duration
}

// ClientMetrics is a snapshot of the client's local measurement state:
// request- and operation-level latency distributions plus the
// estimator's prediction error — the feedback-signal quality the
// paper's adaptive claims rest on.
type ClientMetrics struct {
	// Requests counts completed multigets (Get included).
	Requests uint64
	// Ops counts completed operations across all multigets.
	Ops uint64
	// Retries counts read re-dispatches after transport failures.
	Retries uint64
	// Partials counts multigets that returned a PartialError.
	Partials uint64
	// RCT is the request completion time distribution.
	RCT LatencySnapshot
	// OpLatency is the per-operation latency distribution.
	OpLatency LatencySnapshot
	// EstimatorError is the distribution of |predicted op completion −
	// actual|: how well the piggybacked-feedback view anticipates
	// reality. A drifting mean here degrades DAS tagging and adaptive
	// replica selection before it shows anywhere else.
	EstimatorError LatencySnapshot
}

// clientMetricsReservoir bounds the client summaries' memory.
const clientMetricsReservoir = 4096

// clientMetrics is the client's internal measurement state.
type clientMetrics struct {
	mu        sync.Mutex
	requests  uint64
	ops       uint64
	retries   uint64
	partials  uint64
	rct       *metrics.Summary
	opLatency *metrics.Summary
	estErr    *metrics.Summary
}

func newClientMetrics() *clientMetrics {
	return &clientMetrics{
		rct:       metrics.NewSummary(clientMetricsReservoir),
		opLatency: metrics.NewSummary(clientMetricsReservoir),
		estErr:    metrics.NewSummary(clientMetricsReservoir),
	}
}

func (m *clientMetrics) noteRetry() {
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

// observeRequest folds one completed multiget into the summaries.
func (m *clientMetrics) observeRequest(rct time.Duration, ops []OpTrace, partial bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	if partial {
		m.partials++
	}
	m.rct.Observe(rct)
	for i := range ops {
		op := &ops[i]
		m.ops++
		m.opLatency.Observe(op.End - op.Start)
		if op.Err == "" {
			err := op.End - op.ExpectedFinish
			if err < 0 {
				err = -err
			}
			m.estErr.Observe(err)
		}
	}
}

func snapshotSummary(s *metrics.Summary) LatencySnapshot {
	return LatencySnapshot{
		Count: s.Count(),
		Mean:  s.Mean(),
		P50:   s.P50(),
		P95:   s.P95(),
		P99:   s.P99(),
		Max:   s.Max(),
	}
}

// Metrics returns a snapshot of the client's local measurements.
func (c *Client) Metrics() ClientMetrics {
	m := c.cm
	m.mu.Lock()
	defer m.mu.Unlock()
	return ClientMetrics{
		Requests:       m.requests,
		Ops:            m.ops,
		Retries:        m.retries,
		Partials:       m.partials,
		RCT:            snapshotSummary(m.rct),
		OpLatency:      snapshotSummary(m.opLatency),
		EstimatorError: snapshotSummary(m.estErr),
	}
}
