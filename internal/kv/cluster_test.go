package kv

// Cluster fabric integration tests: tunable consistency round-trips,
// gossip-driven joins that stream owned ranges, live joins under load
// with no failed QUORUM reads (the acceptance bar), and a node killed
// mid-rebalance — the ring must converge and no acknowledged QUORUM
// write may be lost.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/topology"
	"github.com/daskv/daskv/internal/wire"
)

func TestConsistencyNeed(t *testing.T) {
	cases := []struct {
		level    wire.Consistency
		replicas int
		want     int
	}{
		{wire.ConsistencyDefault, 3, 1},
		{wire.ConsistencyOne, 1, 1},
		{wire.ConsistencyOne, 5, 1},
		{wire.ConsistencyQuorum, 1, 1},
		{wire.ConsistencyQuorum, 2, 2},
		{wire.ConsistencyQuorum, 3, 2},
		{wire.ConsistencyQuorum, 4, 3},
		{wire.ConsistencyQuorum, 5, 3},
		{wire.ConsistencyAll, 1, 1},
		{wire.ConsistencyAll, 3, 3},
		{wire.ConsistencyAll, 0, 1}, // degenerate: clamp to one replica
	}
	for _, c := range cases {
		if got := Need(c.level, c.replicas); got != c.want {
			t.Errorf("Need(%v, %d) = %d, want %d", c.level, c.replicas, got, c.want)
		}
	}
}

// TestConsistencyLevelsRoundTrip drives put/get/delete through every
// explicit level on a 3-way replicated static deployment: each level
// must read its own writes when all replicas are healthy.
func TestConsistencyLevelsRoundTrip(t *testing.T) {
	_, client := startReplicatedCluster(t, 3, 3, nil, ClientConfig{})
	ctx := context.Background()
	for _, level := range []wire.Consistency{wire.ConsistencyOne, wire.ConsistencyQuorum, wire.ConsistencyAll} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			key := "level-" + level.String()
			want := []byte("value@" + level.String())
			if err := client.PutLevel(ctx, key, want, level); err != nil {
				t.Fatalf("PutLevel(%v): %v", level, err)
			}
			got, err := client.GetLevel(ctx, key, level)
			if err != nil {
				t.Fatalf("GetLevel(%v): %v", level, err)
			}
			if string(got) != string(want) {
				t.Fatalf("GetLevel(%v) = %q, want %q", level, got, want)
			}
			if err := client.DeleteLevel(ctx, key, level); err != nil {
				t.Fatalf("DeleteLevel(%v): %v", level, err)
			}
			if _, err := client.GetLevel(ctx, key, level); !errors.Is(err, ErrNotFound) {
				t.Fatalf("GetLevel(%v) after delete: err = %v, want ErrNotFound", level, err)
			}
		})
	}
}

// TestQuorumSurvivesReplicaCrash is the consistency contract under
// failure: a QUORUM write followed by a holder crash must still answer
// QUORUM reads (2 of 3 holders remain), while ALL reads must fail —
// they demand the dead holder.
func TestQuorumSurvivesReplicaCrash(t *testing.T) {
	servers, client := startReplicatedCluster(t, 3, 3, nil, ClientConfig{
		RequestTimeout: 2 * time.Second,
	})
	ctx := context.Background()
	if err := client.PutLevel(ctx, "survivor", []byte("acked"), wire.ConsistencyQuorum); err != nil {
		t.Fatalf("PutLevel: %v", err)
	}
	servers[2].Crash()
	got, err := client.GetLevel(ctx, "survivor", wire.ConsistencyQuorum)
	if err != nil {
		t.Fatalf("QUORUM read after crash: %v", err)
	}
	if string(got) != "acked" {
		t.Fatalf("QUORUM read = %q, want %q", got, "acked")
	}
	if _, err := client.GetLevel(ctx, "survivor", wire.ConsistencyAll); err == nil {
		t.Fatalf("ALL read succeeded with a dead holder; want failure")
	}
}

// ---- gossip fabric helpers ----

// fabricTiming: fast enough that joins and suspicion verdicts land in
// test time, slow enough that loaded CI machines do not false-suspect.
const (
	fabricProbe     = 40 * time.Millisecond
	fabricSuspicion = 400 * time.Millisecond
)

// startFabricNode boots one clustered server with test-speed gossip.
func startFabricNode(t *testing.T, id int, replication int, seeds []string) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		ID:          sched.ServerID(id),
		Addr:        "127.0.0.1:0",
		Replication: replication,
		Cluster: &ClusterConfig{
			GossipBind:       "127.0.0.1:0",
			Seeds:            seeds,
			ProbeInterval:    fabricProbe,
			SuspicionTimeout: fabricSuspicion,
			RebalanceChunk:   32,
			Logf:             t.Logf,
		},
	})
	if err != nil {
		t.Fatalf("NewServer %d: %v", id, err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// aliveCount counts routable members in a node's membership view.
func aliveCount(s *Server) int {
	n := 0
	for _, m := range s.MembersDoc().Members {
		if m.State == "alive" {
			n++
		}
	}
	return n
}

// TestClusterJoinStreamsOwnedKeys is the rebalance tentpole: keys
// loaded on a single-node cluster must appear on a joiner — exactly the
// ones the two-node ring assigns it — before it reports Ready, and the
// key movement must stay near the ideal 1/N (bounded, not a full
// reshuffle).
func TestClusterJoinStreamsOwnedKeys(t *testing.T) {
	seed := startFabricNode(t, 0, 1, nil)
	waitUntil(t, 5*time.Second, "seed ready", func() bool {
		cs := seed.ClusterStats()
		return cs != nil && cs.Lifecycle == LifecycleReady
	})

	client, err := NewClient(ClientConfig{
		Servers: map[sched.ServerID]string{0: seed.Addr()},
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer func() { _ = client.Close() }()
	ctx := context.Background()
	const keys = 400
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("reb-%04d", i)
		if err := client.Put(ctx, k, []byte("v"+k)); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
	}

	joiner := startFabricNode(t, 1, 1, []string{seed.GossipAddr()})
	waitUntil(t, 10*time.Second, "joiner ready", func() bool {
		cs := joiner.ClusterStats()
		return cs != nil && cs.Lifecycle == LifecycleReady
	})
	waitUntil(t, 5*time.Second, "membership convergence", func() bool {
		return aliveCount(seed) == 2 && aliveCount(joiner) == 2
	})

	// The joiner must hold exactly its share of the two-node ring: every
	// owned key streamed over, and the movement bounded — well under a
	// full reshuffle, within 2x the ideal 1/N.
	ring, err := topology.NewRing([]sched.ServerID{0, 1}, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	owned, missing := 0, 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("reb-%04d", i)
		if ring.Lookup(k) != 1 {
			continue
		}
		owned++
		if _, ok := joiner.Store().Get(k); !ok {
			missing++
		}
	}
	if owned == 0 {
		t.Fatalf("ring assigned the joiner no keys out of %d — ring broken", keys)
	}
	if missing > 0 {
		t.Fatalf("joiner missing %d of %d owned keys after Ready", missing, owned)
	}
	cs := joiner.ClusterStats()
	if cs.RebalanceKeys == 0 || cs.RebalanceStreams == 0 {
		t.Fatalf("rebalance counters empty: %+v", cs)
	}
	moved := float64(cs.RebalanceKeys) / float64(keys)
	if ideal := 0.5; moved > 2*ideal {
		t.Fatalf("join moved %.0f%% of keys; want <= %.0f%% (2x ideal 1/N)", moved*100, 2*ideal*100)
	}
}

// TestClusterJoinUnderLoadNoFailedQuorumReads is the acceptance
// scenario: a 4th node joins a loaded 3-node cluster while a client
// hammers QUORUM reads and writes — not one may fail, since the join
// only copies keys (established holders keep serving throughout).
func TestClusterJoinUnderLoadNoFailedQuorumReads(t *testing.T) {
	n0 := startFabricNode(t, 0, 3, nil)
	waitUntil(t, 5*time.Second, "seed ready", func() bool {
		cs := n0.ClusterStats()
		return cs != nil && cs.Lifecycle == LifecycleReady
	})
	seeds := []string{n0.GossipAddr()}
	n1 := startFabricNode(t, 1, 3, seeds)
	n2 := startFabricNode(t, 2, 3, seeds)
	for _, s := range []*Server{n1, n2} {
		s := s
		waitUntil(t, 10*time.Second, "node ready", func() bool {
			cs := s.ClusterStats()
			return cs != nil && cs.Lifecycle == LifecycleReady
		})
	}

	client, err := NewClient(ClientConfig{
		Servers:        map[sched.ServerID]string{0: n0.Addr(), 1: n1.Addr(), 2: n2.Addr()},
		Replicas:       3,
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer func() { _ = client.Close() }()
	ctx := context.Background()
	const keys = 100
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("load-%03d", i)
		if err := client.PutLevel(ctx, k, []byte("v0"), wire.ConsistencyQuorum); err != nil {
			t.Fatalf("preload %s: %v", k, err)
		}
	}

	var failures atomic.Int64
	stop := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("load-%03d", i%keys)
			if i%5 == 0 {
				if err := client.PutLevel(ctx, k, []byte(fmt.Sprintf("v%d", i)), wire.ConsistencyQuorum); err != nil {
					failures.Add(1)
					t.Logf("QUORUM write %s: %v", k, err)
				}
			} else {
				if _, err := client.GetLevel(ctx, k, wire.ConsistencyQuorum); err != nil {
					failures.Add(1)
					t.Logf("QUORUM read %s: %v", k, err)
				}
			}
			i++
		}
	}()

	joiner := startFabricNode(t, 3, 3, seeds)
	waitUntil(t, 15*time.Second, "joiner ready under load", func() bool {
		cs := joiner.ClusterStats()
		return cs != nil && cs.Lifecycle == LifecycleReady
	})
	waitUntil(t, 5*time.Second, "4-node convergence", func() bool {
		return aliveCount(n0) == 4 && aliveCount(n1) == 4 && aliveCount(n2) == 4 && aliveCount(joiner) == 4
	})
	close(stop)
	<-loadDone
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d QUORUM operations failed during the join; want 0", n)
	}
}

// TestClusterKillMidRebalanceConverges kills an established node while
// a joiner is mid-stream: the joiner must still reach Ready (a failed
// source is an error counter, not a join abort), every survivor's
// membership must converge on the death within the suspicion timeout,
// and every acknowledged QUORUM write must still answer QUORUM reads —
// two of its three holders survive.
func TestClusterKillMidRebalanceConverges(t *testing.T) {
	n0 := startFabricNode(t, 0, 3, nil)
	waitUntil(t, 5*time.Second, "seed ready", func() bool {
		cs := n0.ClusterStats()
		return cs != nil && cs.Lifecycle == LifecycleReady
	})
	seeds := []string{n0.GossipAddr()}
	n1 := startFabricNode(t, 1, 3, seeds)
	n2 := startFabricNode(t, 2, 3, seeds)
	for _, s := range []*Server{n1, n2} {
		s := s
		waitUntil(t, 10*time.Second, "node ready", func() bool {
			cs := s.ClusterStats()
			return cs != nil && cs.Lifecycle == LifecycleReady
		})
	}

	client, err := NewClient(ClientConfig{
		Servers:        map[sched.ServerID]string{0: n0.Addr(), 1: n1.Addr(), 2: n2.Addr()},
		Replicas:       3,
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer func() { _ = client.Close() }()
	ctx := context.Background()
	const keys = 300
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("durable-%04d", i)
		if err := client.PutLevel(ctx, k, []byte("acked-"+k), wire.ConsistencyQuorum); err != nil {
			t.Fatalf("QUORUM preload %s: %v", k, err)
		}
	}

	joiner := startFabricNode(t, 3, 3, seeds)
	// Kill an established node while the joiner is (most likely) still
	// streaming. The exact interleaving does not matter for the
	// invariants under test; streaming just maximizes the chaos.
	time.Sleep(fabricProbe)
	n2.Crash()

	waitUntil(t, 15*time.Second, "joiner ready despite dead source", func() bool {
		cs := joiner.ClusterStats()
		return cs != nil && cs.Lifecycle == LifecycleReady
	})
	// Every survivor's view must converge: node 2 no longer alive, the
	// three survivors all routable.
	waitUntil(t, 4*fabricSuspicion, "survivors converge on the death", func() bool {
		for _, s := range []*Server{n0, n1, joiner} {
			alive := make(map[int]bool)
			for _, m := range s.MembersDoc().Members {
				if m.State == "alive" {
					alive[m.ID] = true
				}
			}
			if alive[2] || !alive[0] || !alive[1] || !alive[3] {
				return false
			}
		}
		return true
	})

	// No acknowledged QUORUM write may be lost: every key still answers
	// a QUORUM read through its two surviving holders.
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("durable-%04d", i)
		v, err := client.GetLevel(ctx, k, wire.ConsistencyQuorum)
		if err != nil {
			t.Fatalf("QUORUM read %s after kill: %v", k, err)
		}
		if string(v) != "acked-"+k {
			t.Fatalf("QUORUM read %s = %q, want %q", k, v, "acked-"+k)
		}
	}
}

// TestClusterLeaveDrainsKeys exercises the graceful exit: a leaver must
// push keys to holders the reduced ring elects and gossip Left — the
// survivors converge without a suspicion round.
func TestClusterLeaveDrainsKeys(t *testing.T) {
	n0 := startFabricNode(t, 0, 1, nil)
	waitUntil(t, 5*time.Second, "seed ready", func() bool {
		cs := n0.ClusterStats()
		return cs != nil && cs.Lifecycle == LifecycleReady
	})
	n1 := startFabricNode(t, 1, 1, []string{n0.GossipAddr()})
	waitUntil(t, 10*time.Second, "joiner ready", func() bool {
		cs := n1.ClusterStats()
		return cs != nil && cs.Lifecycle == LifecycleReady
	})
	waitUntil(t, 5*time.Second, "membership convergence", func() bool {
		return aliveCount(n0) == 2 && aliveCount(n1) == 2
	})

	client, err := NewClient(ClientConfig{
		Servers:  map[sched.ServerID]string{0: n0.Addr(), 1: n1.Addr()},
		Replicas: 1,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer func() { _ = client.Close() }()
	ctx := context.Background()
	const keys = 200
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("drain-%04d", i)
		if err := client.Put(ctx, k, []byte("v"+k)); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
	}

	if err := n1.Leave(10 * time.Second); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if cs := n1.ClusterStats(); cs.Lifecycle != LifecycleLeft {
		t.Fatalf("leaver lifecycle = %v, want left", cs.Lifecycle)
	}
	// Every key the leaver held at R=1 must now live on the survivor.
	missing := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("drain-%04d", i)
		if _, ok := n0.Store().Get(k); !ok {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d of %d keys missing on the survivor after leave", missing, keys)
	}
	if cs := n1.ClusterStats(); cs.PushedKeys == 0 {
		t.Fatalf("leave pushed no keys: %+v", cs)
	}
	// The survivor must see the departure as Left (graceful), not Dead.
	waitUntil(t, 4*fabricSuspicion, "survivor sees the leave", func() bool {
		for _, m := range n0.MembersDoc().Members {
			if m.ID == 1 {
				return m.State == "left"
			}
		}
		return true // already purged from the table: equally converged
	})
}
