package kv

import (
	"fmt"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/wal"
)

// BenchmarkDurablePut compares the store's put latency without
// durability against puts acknowledged through the WAL under each sync
// policy — the measurement behind the tuning guidance that batch sync
// keeps durable-put latency within a small factor of in-memory puts
// while `always` pays a full fsync round per group commit.
func BenchmarkDurablePut(b *testing.B) {
	value := make([]byte, 128)
	run := func(b *testing.B, store *Store) {
		b.SetBytes(int64(len(value)))
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				store.Put(fmt.Sprintf("key-%04d", i%8192), value)
			}
		})
	}
	b.Run("mem", func(b *testing.B) {
		run(b, NewStore())
	})
	for _, policy := range []wal.SyncPolicy{
		{Mode: wal.SyncAlways},
		{Mode: wal.SyncBatch, Window: 2 * time.Millisecond},
		{Mode: wal.SyncNone},
	} {
		b.Run("wal-"+policy.String(), func(b *testing.B) {
			w, err := wal.Open(wal.Options{Dir: b.TempDir(), Sync: policy})
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			defer func() { _ = w.Close() }()
			store := NewStore()
			store.SetMutationHook(func(m Mutation) func() error {
				op := wal.OpPut
				if m.Delete {
					op = wal.OpDelete
				}
				var exp int64
				if !m.ExpiresAt.IsZero() {
					exp = m.ExpiresAt.UnixNano()
				}
				ack, aerr := w.Append(op, m.Key, m.Value, m.Version, exp)
				if aerr != nil {
					return func() error { return aerr }
				}
				return ack
			})
			run(b, store)
		})
	}
}
