package kv

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/daskv/daskv/internal/gossip"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/topology"
	"github.com/daskv/daskv/internal/wire"
)

// This file is the server half of the cluster fabric: a SWIM gossip
// agent (internal/gossip) drives a dynamic vnode ring
// (topology.Dynamic), joiners stream their owned key ranges from
// established peers over the ordinary data plane (OpHandoff, the WAL
// snapshot record format applied idempotently under last-writer-wins),
// and leavers push their keys to the holders the reduced ring elects.
// The node lifecycle is Pending -> Streaming -> Ready; reads are served
// the whole time — a joiner merely answers NotFound for keys it has
// not pulled yet, which quorum reads paper over until the stream
// completes.

// ClusterConfig enables the gossip-driven cluster fabric on a server.
type ClusterConfig struct {
	// GossipBind is the UDP listen address for the membership protocol,
	// e.g. "127.0.0.1:7946" (required).
	GossipBind string
	// GossipAdvertise is the address peers should gossip with (defaults
	// to the bound address).
	GossipAdvertise string
	// Seeds are existing members' gossip addresses. Empty bootstraps a
	// new cluster: the node is immediately Ready.
	Seeds []string
	// AdvertiseDataAddr is the data-plane (TCP) address peers should
	// dial for handoff streams (defaults to the server's bound address).
	AdvertiseDataAddr string
	// ProbeInterval and SuspicionTimeout tune failure detection (see
	// gossip.Config; defaults 250ms and 6x the probe interval).
	ProbeInterval    time.Duration
	SuspicionTimeout time.Duration
	// RebalanceChunk caps records per handoff pull (default 512).
	RebalanceChunk int
	// Logf, if set, receives cluster diagnostic messages.
	Logf func(format string, args ...any)
}

// Lifecycle is a node's position in the join state machine.
type Lifecycle int32

// Lifecycle states, in order.
const (
	// LifecycleStatic: no cluster fabric configured; the node serves a
	// fixed, client-side ring.
	LifecycleStatic Lifecycle = iota
	// LifecyclePending: gossiping but not yet streaming owned ranges.
	LifecyclePending
	// LifecycleStreaming: pulling owned ranges from established peers.
	LifecycleStreaming
	// LifecycleReady: fully caught up and advertising readiness.
	LifecycleReady
	// LifecycleLeft: gracefully departed; keys drained to new holders.
	LifecycleLeft
)

func (l Lifecycle) String() string {
	switch l {
	case LifecycleStatic:
		return "static"
	case LifecyclePending:
		return "pending"
	case LifecycleStreaming:
		return "streaming"
	case LifecycleReady:
		return "ready"
	case LifecycleLeft:
		return "left"
	default:
		return fmt.Sprintf("lifecycle(%d)", int32(l))
	}
}

// defaultRebalanceChunk is records per handoff pull when unset.
const defaultRebalanceChunk = 512

// cluster is a server's runtime cluster state: the gossip agent, the
// dynamic ring it reconciles, and the rebalance machinery's counters.
type cluster struct {
	srv   *Server
	cfg   ClusterConfig
	agent *gossip.Agent
	dyn   *topology.Dynamic
	state atomic.Int32

	// Rebalance counters, exported on /metrics as kv_rebalance_*.
	rebalanceKeys    atomic.Uint64 // records applied from handoff pulls
	rebalanceStreams atomic.Uint64 // handoff pull round-trips
	rebalanceErrors  atomic.Uint64 // failed peer pulls / drain pushes
	pushedKeys       atomic.Uint64 // records pushed while leaving

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// startCluster wires the fabric onto a constructed server: it starts
// the gossip agent, reconciles the ring on membership changes, and
// launches the join sequence. Called from NewServer after the data
// plane is accepting (peers stream through it).
func (s *Server) startCluster() error {
	cc := *s.cfg.Cluster
	if cc.GossipBind == "" {
		return fmt.Errorf("kv: cluster config needs GossipBind")
	}
	if cc.AdvertiseDataAddr == "" {
		cc.AdvertiseDataAddr = s.Addr()
	}
	if cc.RebalanceChunk <= 0 {
		cc.RebalanceChunk = defaultRebalanceChunk
	}
	dyn, err := topology.NewDynamic([]sched.ServerID{s.cfg.ID}, 0)
	if err != nil {
		return fmt.Errorf("kv: cluster ring: %w", err)
	}
	c := &cluster{srv: s, cfg: cc, dyn: dyn, done: make(chan struct{})}
	c.state.Store(int32(LifecyclePending))
	agent, err := gossip.Start(gossip.Config{
		ID:               s.cfg.ID,
		BindAddr:         cc.GossipBind,
		AdvertiseAddr:    cc.GossipAdvertise,
		DataAddr:         cc.AdvertiseDataAddr,
		Seeds:            cc.Seeds,
		ProbeInterval:    cc.ProbeInterval,
		SuspicionTimeout: cc.SuspicionTimeout,
		OnChange:         c.onMembership,
		Logf:             cc.Logf,
	})
	if err != nil {
		return err
	}
	c.agent = agent
	s.cluster = c
	c.wg.Add(1)
	go c.bootstrap()
	return nil
}

func (c *cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *cluster) lifecycle() Lifecycle { return Lifecycle(c.state.Load()) }

func (c *cluster) setState(l Lifecycle) { c.state.Store(int32(l)) }

// onMembership reconciles the vnode ring from a gossip snapshot: alive
// and suspect members are routable (suspicion is usually transient;
// dropping a suspect from the ring would move keys twice on a lost
// packet), dead and left members are removed — the bounded key
// movement the vnode ring exists for.
func (c *cluster) onMembership(members []gossip.Member) {
	ids := make([]sched.ServerID, 0, len(members))
	for _, m := range members {
		if m.State == gossip.StateAlive || m.State == gossip.StateSuspect {
			ids = append(ids, m.ID)
		}
	}
	changed, err := c.dyn.SetMembers(ids)
	if err != nil {
		c.logf("kv: cluster %d: ring reconcile: %v", c.srv.cfg.ID, err)
		return
	}
	if changed {
		c.logf("kv: cluster %d: ring now %v", c.srv.cfg.ID, ids)
	}
}

// bootstrap runs the join sequence: gossip in via the seeds, then — for
// a joiner — stream every owned range from established peers before
// advertising Ready. A seedless start is a cluster bootstrap and is
// Ready immediately.
func (c *cluster) bootstrap() {
	defer c.wg.Done()
	if err := c.agent.Join(); err != nil {
		c.logf("kv: cluster %d: join: %v", c.srv.cfg.ID, err)
	}
	if len(c.cfg.Seeds) == 0 {
		c.setState(LifecycleReady)
		c.agent.SetReady(true)
		return
	}
	c.setState(LifecycleStreaming)
	c.pullAll()
	if c.closed() {
		return
	}
	c.setState(LifecycleReady)
	c.agent.SetReady(true)
}

func (c *cluster) closed() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// pullAll streams this node's owned ranges from every routable peer.
// Every peer is consulted — ownership under the new ring is scattered
// across all of them — and a failed peer is logged and counted, not
// fatal: read-repair and quorum reads cover stragglers.
func (c *cluster) pullAll() {
	for _, m := range c.agent.Members() {
		if m.ID == c.srv.cfg.ID || m.DataAddr == "" {
			continue
		}
		if m.State != gossip.StateAlive && m.State != gossip.StateSuspect {
			continue
		}
		if c.closed() {
			return
		}
		if err := c.pullFrom(m); err != nil {
			c.rebalanceErrors.Add(1)
			c.logf("kv: cluster %d: pull from %d (%s): %v", c.srv.cfg.ID, m.ID, m.DataAddr, err)
		}
	}
}

// pullFrom drains one peer: every responder shard, chunk by chunk,
// cursored so an interrupted stream resumes where it stopped (applies
// are idempotent under last-writer-wins, so overlap is harmless).
func (c *cluster) pullFrom(m gossip.Member) error {
	pc, err := dialPeer(m.DataAddr, 5*time.Second)
	if err != nil {
		return err
	}
	defer pc.close()
	if err := c.waitVisible(pc); err != nil {
		return err
	}
	for shard := 0; shard < c.srv.store.ShardCount(); shard++ {
		after := ""
		for {
			if c.closed() {
				return nil
			}
			body, err := json.Marshal(wire.HandoffRequest{Shard: shard, After: after, For: int(c.srv.cfg.ID)})
			if err != nil {
				return err
			}
			resp, err := pc.do(&wire.Request{Type: wire.OpHandoff, Key: "handoff", Value: body})
			if err != nil {
				return fmt.Errorf("handoff shard %d: %w", shard, err)
			}
			if resp.Status != wire.StatusOK {
				return fmt.Errorf("handoff shard %d: status %d", shard, resp.Status)
			}
			hdr, applied, err := c.applyChunk(resp.Value)
			if err != nil {
				return fmt.Errorf("handoff shard %d: %w", shard, err)
			}
			c.rebalanceStreams.Add(1)
			c.rebalanceKeys.Add(uint64(applied))
			if !hdr.More {
				break
			}
			after = hdr.Next
		}
	}
	return nil
}

// waitVisible blocks until the peer's gossip table lists this node as
// routable: the responder filters handoff streams by its own ring, so
// pulling before it has heard of us would stream nothing.
func (c *cluster) waitVisible(pc *peerConn) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		doc, err := pc.members()
		if err != nil {
			return err
		}
		for _, m := range doc.Members {
			if m.ID == int(c.srv.cfg.ID) && (m.State == "alive" || m.State == "suspect") {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("peer never saw this node in its membership table")
		}
		select {
		case <-c.done:
			return errServerClosed
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// applyChunk decodes one handoff response — header line, then Count
// snapshot records — and applies each record if newer.
func (c *cluster) applyChunk(data []byte) (wire.HandoffHeader, int, error) {
	var hdr wire.HandoffHeader
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return hdr, 0, fmt.Errorf("malformed handoff chunk: no header line")
	}
	if err := json.Unmarshal(data[:i], &hdr); err != nil {
		return hdr, 0, fmt.Errorf("handoff header: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data[i+1:]))
	applied := 0
	for n := 0; n < hdr.Count; n++ {
		var rec snapshotRecord
		if err := dec.Decode(&rec); err != nil {
			return hdr, applied, fmt.Errorf("handoff record %d/%d: %w", n+1, hdr.Count, err)
		}
		m := Mutation{Key: rec.Key, Value: rec.Value, Version: rec.Version}
		if rec.ExpiresAtUnixNano != 0 {
			m.ExpiresAt = time.Unix(0, rec.ExpiresAtUnixNano)
		}
		if c.srv.store.ApplyIfNewer(m) {
			applied++
		}
	}
	return hdr, applied, nil
}

// Leave gracefully exits the cluster: owned keys are pushed to the
// holders the ring-without-this-node elects, then the departure is
// gossiped as Left (no suspicion round, no false-failure alarm). The
// server keeps serving throughout; call Close afterwards. timeout
// bounds the drain (0 = a 30s default). Leave on a static server is a
// no-op.
func (s *Server) Leave(timeout time.Duration) error {
	c := s.cluster
	if c == nil {
		return nil
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	err := c.drain(time.Now().Add(timeout))
	c.agent.Leave()
	c.setState(LifecycleLeft)
	return err
}

// drain pushes every key this node holds under the current ring to the
// servers that gain it under the reduced ring. Only the delta is
// pushed — holders that already replicate the key have it. Pushes are
// versioned puts, so a slow or duplicate drain can never clobber newer
// client writes.
func (c *cluster) drain(deadline time.Time) error {
	self := c.srv.cfg.ID
	addrs := make(map[sched.ServerID]string)
	var survivors []sched.ServerID
	for _, m := range c.agent.Members() {
		if m.ID == self || m.DataAddr == "" {
			continue
		}
		if m.State != gossip.StateAlive && m.State != gossip.StateSuspect {
			continue
		}
		survivors = append(survivors, m.ID)
		addrs[m.ID] = m.DataAddr
	}
	if len(survivors) == 0 {
		return nil // last node out: nowhere to drain to
	}
	reduced, err := topology.NewRing(survivors, 0)
	if err != nil {
		return fmt.Errorf("kv: drain ring: %w", err)
	}
	cur := c.dyn.Snapshot()
	rf := c.srv.cfg.Replication
	conns := make(map[sched.ServerID]*peerConn)
	defer func() {
		for _, pc := range conns {
			pc.close()
		}
	}()
	var firstErr error
	ownsKey := func(key string) bool {
		for _, id := range cur.LookupN(key, rf) {
			if id == self {
				return true
			}
		}
		return false
	}
	for shard := 0; shard < c.srv.store.ShardCount(); shard++ {
		after := ""
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("kv: drain timed out with shard %d/%d pending", shard, c.srv.store.ShardCount())
			}
			data, next, more, count := c.srv.store.HandoffChunk(shard, after, c.cfg.RebalanceChunk, ownsKey)
			if count > 0 {
				if err := c.pushChunk(data, cur, reduced, conns, addrs); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			if !more {
				break
			}
			after = next
		}
	}
	return firstErr
}

// pushChunk replays one drained chunk's records onto the servers that
// gain them under the reduced ring.
func (c *cluster) pushChunk(data []byte, cur, reduced *topology.Ring, conns map[sched.ServerID]*peerConn, addrs map[sched.ServerID]string) error {
	self := c.srv.cfg.ID
	rf := c.srv.cfg.Replication
	now := time.Now()
	dec := json.NewDecoder(bytes.NewReader(data))
	var firstErr error
	for {
		var rec snapshotRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("kv: drain decode: %w", err)
		}
		var ttl time.Duration
		if rec.ExpiresAtUnixNano != 0 {
			ttl = time.Unix(0, rec.ExpiresAtUnixNano).Sub(now)
			if ttl <= 0 {
				continue // expired mid-drain; nothing to move
			}
		}
		oldHolders := cur.LookupN(rec.Key, rf)
		for _, target := range reduced.LookupN(rec.Key, rf) {
			if target == self || containsServer(oldHolders, target) {
				continue
			}
			pc := conns[target]
			if pc == nil {
				var err error
				pc, err = dialPeer(addrs[target], 5*time.Second)
				if err != nil {
					c.rebalanceErrors.Add(1)
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				conns[target] = pc
			}
			resp, err := pc.do(&wire.Request{
				Type: wire.OpPut, Key: rec.Key, Value: rec.Value,
				Version: rec.Version, TTLNanos: int64(ttl),
			})
			if err != nil {
				pc.close()
				delete(conns, target)
				c.rebalanceErrors.Add(1)
				if firstErr == nil {
					firstErr = fmt.Errorf("kv: drain push %q to %d: %w", rec.Key, target, err)
				}
				continue
			}
			if resp.Status == wire.StatusOK {
				c.pushedKeys.Add(1)
			}
		}
	}
	return firstErr
}

func containsServer(list []sched.ServerID, id sched.ServerID) bool {
	for _, s := range list {
		if s == id {
			return true
		}
	}
	return false
}

// shutdown stops the fabric: the puller exits, the gossip socket
// closes (no goodbye — Leave is the graceful path and must run
// before). Idempotent.
func (c *cluster) shutdown() {
	c.closeOnce.Do(func() {
		close(c.done)
		_ = c.agent.Close()
		c.wg.Wait()
	})
}

// ---- server-side op handling ----

// MembersDoc builds the membership document OpMembers serves: the
// node's lifecycle and its current gossip table (empty when static).
func (s *Server) MembersDoc() wire.MembersDoc {
	doc := wire.MembersDoc{Self: int(s.cfg.ID), Lifecycle: LifecycleStatic.String()}
	c := s.cluster
	if c == nil {
		return doc
	}
	doc.Lifecycle = c.lifecycle().String()
	for _, m := range c.agent.Members() {
		doc.Members = append(doc.Members, wire.MemberInfo{
			ID:          int(m.ID),
			GossipAddr:  m.Addr,
			DataAddr:    m.DataAddr,
			State:       m.State.String(),
			Incarnation: m.Incarnation,
			Ready:       m.Ready,
		})
	}
	return doc
}

// serveMembers fills an OpMembers response.
func (s *Server) serveMembers(resp *wire.Response) {
	b, err := json.Marshal(s.MembersDoc())
	if err != nil {
		resp.Status = wire.StatusError
		return
	}
	v := getValueBuf(len(b))
	copy(v, b)
	resp.Value = v
}

// serveHandoff fills an OpHandoff response: one chunk of the requested
// shard, filtered to keys the requester holds under this node's
// current ring. Ring lookups run against an immutable snapshot, so a
// concurrent membership change flips the filter between chunks, never
// inside one.
func (s *Server) serveHandoff(p *pendingOp, resp *wire.Response) {
	c := s.cluster
	if c == nil {
		resp.Status = wire.StatusError
		return
	}
	var hr wire.HandoffRequest
	if err := json.Unmarshal(p.value, &hr); err != nil {
		resp.Status = wire.StatusError
		return
	}
	requester := sched.ServerID(hr.For)
	ring := c.dyn.Snapshot()
	rf := s.cfg.Replication
	include := func(key string) bool {
		return containsServer(ring.LookupN(key, rf), requester)
	}
	data, next, more, count := s.store.HandoffChunk(hr.Shard, hr.After, c.cfg.RebalanceChunk, include)
	hdr, err := json.Marshal(wire.HandoffHeader{More: more, Next: next, Count: count})
	if err != nil {
		resp.Status = wire.StatusError
		return
	}
	v := getValueBuf(len(hdr) + 1 + len(data))
	n := copy(v, hdr)
	v[n] = '\n'
	copy(v[n+1:], data)
	resp.Value = v
}

// ClusterStats is the fabric's observability snapshot, nil-guarded by
// the caller (Server.ClusterStats returns nil when static).
type ClusterStats struct {
	Lifecycle        Lifecycle
	Members          map[gossip.State]int
	Incarnation      uint64
	MessagesSent     uint64
	MessagesReceived uint64
	Refutations      uint64
	RebalanceKeys    uint64
	RebalanceStreams uint64
	RebalanceErrors  uint64
	PushedKeys       uint64
}

// ClusterStats snapshots the cluster fabric's counters (nil when the
// server runs without one).
func (s *Server) ClusterStats() *ClusterStats {
	c := s.cluster
	if c == nil {
		return nil
	}
	gs := c.agent.Stats()
	return &ClusterStats{
		Lifecycle:        c.lifecycle(),
		Members:          gs.Members,
		Incarnation:      gs.Incarnation,
		MessagesSent:     gs.Sent,
		MessagesReceived: gs.Received,
		Refutations:      gs.Refutations,
		RebalanceKeys:    c.rebalanceKeys.Load(),
		RebalanceStreams: c.rebalanceStreams.Load(),
		RebalanceErrors:  c.rebalanceErrors.Load(),
		PushedKeys:       c.pushedKeys.Load(),
	}
}

// GossipAddr returns the gossip agent's advertised address ("" when
// static) — what other nodes pass as a seed.
func (s *Server) GossipAddr() string {
	if s.cluster == nil {
		return ""
	}
	return s.cluster.agent.Addr()
}

// RingOwnership returns the dynamic ring's per-server keyspace arc
// fractions (nil when static) — the introspection behind kvctl ring.
func (s *Server) RingOwnership() map[sched.ServerID]float64 {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.dyn.Snapshot().Ownership()
}

// ---- synchronous peer connection (handoff / drain traffic) ----

// peerConn is a minimal synchronous wire client for server-to-server
// traffic: one request in flight at a time, no tagging, no pooling. A
// fancy client is wasted here — handoff is a bulk background stream
// whose cost is the payload, not the round-trips.
type peerConn struct {
	conn net.Conn
	w    *wire.Writer
	r    *wire.Reader
	next uint64
}

func dialPeer(addr string, timeout time.Duration) (*peerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("kv: dial peer %s: %w", addr, err)
	}
	return &peerConn{conn: conn, w: wire.NewWriter(conn), r: wire.NewReader(conn)}, nil
}

// do sends one request and waits for its response. The returned
// response's Value aliases the reader's reused buffer: consume it
// before the next call.
func (pc *peerConn) do(req *wire.Request) (wire.Response, error) {
	pc.next++
	req.ID = pc.next
	var resp wire.Response
	_ = pc.conn.SetDeadline(time.Now().Add(30 * time.Second))
	if err := pc.w.WriteRequest(req); err != nil {
		return resp, err
	}
	for {
		if err := pc.r.ReadResponse(&resp); err != nil {
			return resp, err
		}
		if resp.ID == req.ID {
			return resp, nil
		}
	}
}

// FetchMembers dials a server's data-plane address and fetches its
// membership document — the discovery primitive kvctl's members/ring
// subcommands and -discover flag build on. Works against static nodes
// too (they answer with an empty table and lifecycle "static").
func FetchMembers(addr string, timeout time.Duration) (wire.MembersDoc, error) {
	pc, err := dialPeer(addr, timeout)
	if err != nil {
		return wire.MembersDoc{}, err
	}
	defer pc.close()
	return pc.members()
}

// members fetches the peer's membership document.
func (pc *peerConn) members() (wire.MembersDoc, error) {
	var doc wire.MembersDoc
	resp, err := pc.do(&wire.Request{Type: wire.OpMembers})
	if err != nil {
		return doc, err
	}
	if resp.Status != wire.StatusOK {
		return doc, fmt.Errorf("members request: status %d", resp.Status)
	}
	if err := json.Unmarshal(resp.Value, &doc); err != nil {
		return doc, fmt.Errorf("members decode: %w", err)
	}
	return doc, nil
}

func (pc *peerConn) close() {
	pc.w.Release()
	pc.r.Release()
	_ = pc.conn.Close()
}
