// Package plot renders small ASCII line charts, letting the benchmark
// harness draw the paper's figures directly in the terminal next to the
// numeric tables.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is one named line on a chart.
type Series struct {
	Name   string
	Points []Point
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%'}

// Options controls chart geometry.
type Options struct {
	// Width and Height of the plotting area in characters (default
	// 64x16).
	Width, Height int
	// LogY plots the y axis in log10 scale (all y must be positive).
	LogY bool
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	if o.Width < 16 {
		o.Width = 16
	}
	if o.Height < 4 {
		o.Height = 4
	}
	return o
}

// Render draws the chart. Series with no points are skipped; it errors
// if nothing is drawable or if LogY is requested with non-positive
// values.
func Render(w io.Writer, title string, series []Series, opts Options) error {
	opts = opts.withDefaults()
	var xs, ys []float64
	for _, s := range series {
		for _, p := range s.Points {
			xs = append(xs, p.X)
			ys = append(ys, p.Y)
		}
	}
	if len(xs) == 0 {
		return fmt.Errorf("plot: no points to draw")
	}
	yt := func(y float64) float64 { return y }
	if opts.LogY {
		for _, y := range ys {
			if y <= 0 {
				return fmt.Errorf("plot: log scale requires positive y, got %v", y)
			}
		}
		yt = math.Log10
	}
	minX, maxX := minMax(xs)
	var tys []float64
	for _, y := range ys {
		tys = append(tys, yt(y))
	}
	minY, maxY := minMax(tys)
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(opts.Width-1)))
		return clamp(c, 0, opts.Width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((yt(y) - minY) / (maxY - minY) * float64(opts.Height-1)))
		return clamp(opts.Height-1-r, 0, opts.Height-1)
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		// Connect consecutive points with linear interpolation so the
		// lines read as lines.
		for i := 0; i < len(s.Points); i++ {
			p := s.Points[i]
			grid[row(p.Y)][col(p.X)] = m
			if i == 0 {
				continue
			}
			prev := s.Points[i-1]
			steps := col(p.X) - col(prev.X)
			for step := 1; step < steps; step++ {
				frac := float64(step) / float64(steps)
				x := prev.X + frac*(p.X-prev.X)
				var y float64
				if opts.LogY {
					y = math.Pow(10, yt(prev.Y)+frac*(yt(p.Y)-yt(prev.Y)))
				} else {
					y = prev.Y + frac*(p.Y-prev.Y)
				}
				r, c := row(y), col(x)
				if grid[r][c] == ' ' {
					grid[r][c] = '.'
				}
			}
		}
	}

	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	scale := ""
	if opts.LogY {
		scale = " (log)"
	}
	// y-axis labels on the first, middle and last rows.
	for r := 0; r < opts.Height; r++ {
		label := strings.Repeat(" ", 10)
		frac := float64(opts.Height-1-r) / float64(opts.Height-1)
		switch r {
		case 0, opts.Height / 2, opts.Height - 1:
			v := minY + frac*(maxY-minY)
			if opts.LogY {
				v = math.Pow(10, v)
			}
			label = fmt.Sprintf("%9.3g ", v)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", opts.Width))
	fmt.Fprintf(w, "%s%-*.3g%*.3g\n", strings.Repeat(" ", 11), opts.Width/2, minX, opts.Width/2, maxX)
	if opts.XLabel != "" || opts.YLabel != "" {
		fmt.Fprintf(w, "%sx: %s   y: %s%s\n", strings.Repeat(" ", 11), opts.XLabel, opts.YLabel, scale)
	}
	legend := make([]string, 0, len(series))
	for si, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "%s%s\n", strings.Repeat(" ", 11), strings.Join(legend, "   "))
	return nil
}

func minMax(v []float64) (float64, float64) {
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
