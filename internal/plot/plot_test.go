package plot

import (
	"bytes"
	"strings"
	"testing"
)

func sampleSeries() []Series {
	return []Series{
		{Name: "FCFS", Points: []Point{{0.1, 2.6}, {0.5, 5.3}, {0.9, 871}}},
		{Name: "DAS", Points: []Point{{0.1, 2.6}, {0.5, 4.8}, {0.9, 419}}},
	}
}

func TestRenderBasic(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, "mean RCT vs load", sampleSeries(), Options{XLabel: "load", YLabel: "ms"}); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"mean RCT vs load", "* FCFS", "o DAS", "x: load", "y: ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 16 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestRenderLogY(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, "", sampleSeries(), Options{LogY: true}); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "(log)") && !strings.Contains(buf.String(), "*") {
		t.Fatalf("log chart missing content:\n%s", buf.String())
	}
}

func TestRenderLogYRejectsNonPositive(t *testing.T) {
	s := []Series{{Name: "bad", Points: []Point{{0, 0}}}}
	if err := Render(&bytes.Buffer{}, "", s, Options{LogY: true}); err == nil {
		t.Fatal("log scale with zero y should error")
	}
}

func TestRenderEmpty(t *testing.T) {
	if err := Render(&bytes.Buffer{}, "", nil, Options{}); err == nil {
		t.Fatal("empty chart should error")
	}
}

func TestRenderSinglePoint(t *testing.T) {
	s := []Series{{Name: "p", Points: []Point{{1, 1}}}}
	var buf bytes.Buffer
	if err := Render(&buf, "", s, Options{}); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("single point not drawn")
	}
}

func TestRenderMarkersWithinGrid(t *testing.T) {
	var buf bytes.Buffer
	opts := Options{Width: 40, Height: 10}
	if err := Render(&buf, "", sampleSeries(), opts); err != nil {
		t.Fatalf("Render: %v", err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			if len(line) > i+1+opts.Width {
				t.Fatalf("row overflows plotting area: %q", line)
			}
		}
	}
}
