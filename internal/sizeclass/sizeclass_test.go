package sizeclass_test

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sizeclass"
)

// classedOp builds an op of the given payload size whose every duration
// dimension is d, with zero slack.
func classedOp(id int, d time.Duration, sizeBytes int64) *sched.Op {
	return &sched.Op{
		Request: sched.RequestID(id),
		Demand:  d,
		Tags: sched.Tags{
			DemandBottleneck: d,
			ScaledDemand:     d,
			RemainingTime:    d,
			ExpectedFinish:   d,
			RequestFinish:    d,
			Fanout:           1,
			SizeBytes:        sizeBytes,
		},
	}
}

func TestSketchQuantileBuckets(t *testing.T) {
	s := sizeclass.NewSketch(0.999)
	if got := s.Quantile(0.9); got != 0 {
		t.Fatalf("empty sketch quantile = %d, want 0", got)
	}
	// 90 mice at 1 KiB, 10 elephants at 1 MiB. The sketch's power-of-two
	// buckets return the upper bound of the bucket holding the quantile.
	for i := 0; i < 90; i++ {
		s.Observe(1 << 10)
	}
	for i := 0; i < 10; i++ {
		s.Observe(1 << 20)
	}
	if got := s.Quantile(0.5); got != 1<<11 {
		t.Fatalf("median = %d, want %d (upper bound of the 1KiB bucket)", got, 1<<11)
	}
	if got := s.Quantile(0.99); got != 1<<21 {
		t.Fatalf("p99 = %d, want %d (upper bound of the 1MiB bucket)", got, 1<<21)
	}
}

func TestSketchDecayForgetsOldRegime(t *testing.T) {
	// Aggressive decay: after a burst of large sizes, a run of small
	// ones must pull the learned quantile back down.
	s := sizeclass.NewSketch(0.5)
	for i := 0; i < 50; i++ {
		s.Observe(1 << 20)
	}
	for i := 0; i < 50; i++ {
		s.Observe(1 << 10)
	}
	if got := s.Quantile(0.9); got > 1<<11 {
		t.Fatalf("quantile = %d after regime change, want <= %d", got, 1<<11)
	}
}

func TestSketchNegativeSizeIgnored(t *testing.T) {
	s := sizeclass.NewSketch(0.999)
	s.Observe(-5)
	if s.Weight() != 0 {
		t.Fatalf("negative observation counted: weight %v", s.Weight())
	}
}

func TestClassifierDefaultUntilLearned(t *testing.T) {
	c := sizeclass.NewClassifier(sizeclass.Config{MinWeight: 64})
	if got := c.Threshold(); got != 64<<10 {
		t.Fatalf("cold threshold = %d, want default %d", got, 64<<10)
	}
	// Below MinWeight the default must hold even with observations.
	for i := 0; i < 32; i++ {
		c.Observe(1 << 10)
	}
	if got := c.Threshold(); got != 64<<10 {
		t.Fatalf("underweight threshold = %d, want default %d", got, 64<<10)
	}
	for i := 0; i < 100; i++ {
		c.Observe(1 << 10)
	}
	if got := c.Threshold(); got != 1<<11 {
		t.Fatalf("learned threshold = %d, want %d", got, 1<<11)
	}
}

func TestClassifierOverrideWins(t *testing.T) {
	c := sizeclass.NewClassifier(sizeclass.Config{Override: 100})
	for i := 0; i < 1000; i++ {
		c.Observe(1 << 20)
	}
	if got := c.Threshold(); got != 100 {
		t.Fatalf("override threshold = %d, want 100", got)
	}
	for size, want := range map[int64]sizeclass.Pool{
		-1:  sizeclass.Small, // unknown sizes are small by design
		0:   sizeclass.Small,
		100: sizeclass.Small, // boundary is inclusive
		101: sizeclass.Large,
	} {
		if got := c.Classify(size); got != want {
			t.Fatalf("Classify(%d) = %v, want %v", size, got, want)
		}
	}
}

func TestQueueRoutesByClass(t *testing.T) {
	q := sizeclass.New(sched.FCFSFactory, sizeclass.Config{Override: 64 << 10}, 1)
	d := time.Millisecond
	q.Push(classedOp(1, d, 1<<10), 0)
	q.Push(classedOp(2, d, 1<<20), 0)
	q.Push(classedOp(3, d, 2<<10), 0)
	if got := q.LenPool(sizeclass.Small); got != 2 {
		t.Fatalf("small len = %d, want 2", got)
	}
	if got := q.LenPool(sizeclass.Large); got != 1 {
		t.Fatalf("large len = %d, want 1", got)
	}
	if got := q.Routed(sizeclass.Small); got != 2 {
		t.Fatalf("small routed = %d, want 2", got)
	}
	if got := q.Routed(sizeclass.Large); got != 1 {
		t.Fatalf("large routed = %d, want 1", got)
	}
	if got := q.BacklogPool(sizeclass.Small); got != 2*d {
		t.Fatalf("small backlog = %v, want %v", got, 2*d)
	}
	// The facade Pop prefers small work even when large arrived first.
	if op := q.Pop(0); op.Request != 1 {
		t.Fatalf("first pop = %d, want the small op 1", op.Request)
	}
}

func TestSmallPoolNeverServesLarge(t *testing.T) {
	q := sizeclass.New(sched.FCFSFactory, sizeclass.Config{Override: 64 << 10}, 1)
	q.Push(classedOp(1, time.Millisecond, 1<<20), 0)
	if op := q.PopPool(sizeclass.Small, 0, false); op != nil {
		t.Fatalf("small pool served a large op %d", op.Request)
	}
	if op := q.PopPool(sizeclass.Large, 0, false); op == nil || op.Request != 1 {
		t.Fatal("large pool lost its op")
	}
}

func TestLargePoolStealsSmallWork(t *testing.T) {
	q := sizeclass.New(sched.FCFSFactory, sizeclass.Config{Override: 64 << 10}, 1)
	q.Push(classedOp(1, time.Millisecond, 1<<10), 0)
	// Without steal the large pool refuses small work...
	if op := q.PopPool(sizeclass.Large, 0, false); op != nil {
		t.Fatalf("non-stealing large pop returned %d", op.Request)
	}
	// ...with steal it drains it, and the counter records the event.
	if op := q.PopPool(sizeclass.Large, 0, true); op == nil || op.Request != 1 {
		t.Fatal("steal failed")
	}
	if got := q.Stolen(); got != 1 {
		t.Fatalf("stolen = %d, want 1", got)
	}
	// Stealing only happens when the large pool's own queue is empty.
	q.Push(classedOp(2, time.Millisecond, 1<<10), 0)
	q.Push(classedOp(3, time.Millisecond, 1<<20), 0)
	if op := q.PopPool(sizeclass.Large, 0, true); op.Request != 3 {
		t.Fatalf("large pool stole with its own work queued (got %d)", op.Request)
	}
}

func TestPushBatchSplitsPreservingOrder(t *testing.T) {
	q := sizeclass.New(sched.FCFSFactory, sizeclass.Config{Override: 64 << 10}, 1)
	d := time.Millisecond
	batch := []*sched.Op{
		classedOp(1, d, 1<<10),
		classedOp(2, d, 1<<20),
		classedOp(3, d, 2<<10),
		classedOp(4, d, 2<<20),
		classedOp(5, d, 4<<10),
	}
	q.PushBatch(batch, 0)
	if got := q.LenPool(sizeclass.Small); got != 3 {
		t.Fatalf("small len = %d, want 3", got)
	}
	for _, want := range []sched.RequestID{1, 3, 5} {
		if op := q.PopPool(sizeclass.Small, 0, false); op == nil || op.Request != want {
			t.Fatalf("small order broken: want %d", want)
		}
	}
	for _, want := range []sched.RequestID{2, 4} {
		if op := q.PopPool(sizeclass.Large, 0, false); op == nil || op.Request != want {
			t.Fatalf("large order broken: want %d", want)
		}
	}
	if q.Len() != 0 || q.BacklogDemand() != 0 {
		t.Fatalf("drained queue: len %d backlog %v", q.Len(), q.BacklogDemand())
	}
}
