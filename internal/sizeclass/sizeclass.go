// Package sizeclass partitions one server's pending work into small-op
// and large-op pools so that small operations never wait behind a large
// value transfer occupying a worker — the Minos-style size-aware
// sharding (Didona & Zwaenepoel, "Size-aware Sharding For Improving
// Tail Latencies in In-memory Key-value Stores") composed with the
// multiserver-SRPT observation of Grosof et al. that reserving servers
// for short jobs bounds their tail almost for free.
//
// The split is driven by a size-based admission classifier: the
// boundary between "small" and "large" is a byte threshold learned
// online from a streaming quantile sketch of observed payload sizes
// (with a fixed-threshold override for operators who know their
// workload). Each pool runs its own instance of the configured
// scheduling policy (DAS in the live store), so SRPT-first ordering,
// slack demotion, and the starvation bounds all still hold within a
// pool; work-stealing lets an idle large pool drain small work so the
// split never idles capacity that FCFS would have used.
//
// Like the policies it wraps, nothing here is safe for concurrent use;
// the server's queue lock serializes access.
package sizeclass

import (
	"fmt"
	"math/bits"
)

// Pool names one side of the split.
type Pool uint8

// The two pools. Small is the protected pool: ops classified small (or
// of unknown size) go there and are never queued behind large ops.
const (
	Small Pool = iota
	Large

	// NumPools sizes per-pool arrays.
	NumPools = 2
)

// String returns the pool's metric-label name.
func (p Pool) String() string {
	switch p {
	case Small:
		return "small"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("pool(%d)", uint8(p))
	}
}

// Config tunes the admission classifier.
type Config struct {
	// Quantile is the size quantile the learned threshold tracks: ops
	// above it are large. Defaults to 0.9 — the classic mice/elephant
	// split where ~10% of ops (but most bytes) run in the large pool.
	Quantile float64
	// Override, when positive, fixes the threshold at this many bytes
	// and disables learning.
	Override int64
	// Decay is the per-observation weight retention of the streaming
	// sketch (0 < Decay < 1). Defaults to 0.999, i.e. a sliding window
	// of roughly the last thousand sized ops.
	Decay float64
	// MinWeight is the sketch weight required before the learned
	// threshold replaces Default. Defaults to 64 observations.
	MinWeight float64
	// Default is the threshold used until the sketch has seen
	// MinWeight of sized ops. Defaults to 64 KiB.
	Default int64
}

func (c Config) withDefaults() Config {
	if c.Quantile <= 0 || c.Quantile >= 1 {
		c.Quantile = 0.9
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.999
	}
	if c.MinWeight <= 0 {
		c.MinWeight = 64
	}
	if c.Default <= 0 {
		c.Default = 64 << 10
	}
	return c
}

// sketchBuckets covers sizes up to 2^39 bytes (512 GiB), far beyond the
// 16 MiB wire frame limit; anything larger saturates the top bucket.
const sketchBuckets = 40

// Sketch is a streaming quantile estimate of observed payload sizes:
// an exponentially decayed histogram over power-of-two byte buckets.
// Power-of-two resolution is exactly right for a small/large split —
// the classifier needs "is this op in the top decile by size", not the
// third significant digit — and it makes the sketch constant-space,
// allocation-free, and deterministic.
type Sketch struct {
	decay  float64
	w      [sketchBuckets]float64
	weight float64
}

// NewSketch returns a sketch with the given per-observation decay.
func NewSketch(decay float64) *Sketch {
	if decay <= 0 || decay >= 1 {
		decay = 0.999
	}
	return &Sketch{decay: decay}
}

// Observe folds one payload size into the sketch.
func (s *Sketch) Observe(sizeBytes int64) {
	if sizeBytes < 0 {
		return
	}
	b := bits.Len64(uint64(sizeBytes))
	if b >= sketchBuckets {
		b = sketchBuckets - 1
	}
	for i := range s.w {
		s.w[i] *= s.decay
	}
	s.weight = s.weight*s.decay + 1
	s.w[b]++
}

// Weight returns the decayed observation count.
func (s *Sketch) Weight() float64 { return s.weight }

// Quantile returns an upper bound on the q-quantile of observed sizes
// (the smallest bucket boundary with at least a q fraction of the
// decayed weight at or below it), or 0 if the sketch is empty.
func (s *Sketch) Quantile(q float64) int64 {
	if s.weight <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * s.weight
	var cum float64
	for i, w := range s.w {
		cum += w
		if cum >= target {
			if i == 0 {
				return 0
			}
			// Bucket i holds sizes in [2^(i-1), 2^i).
			return 1 << uint(i)
		}
	}
	return 1 << uint(sketchBuckets-1)
}

// Classifier decides, at admission, which pool an op belongs to.
type Classifier struct {
	cfg    Config
	sketch *Sketch
}

// NewClassifier builds a classifier; zero-valued cfg fields take their
// documented defaults.
func NewClassifier(cfg Config) *Classifier {
	cfg = cfg.withDefaults()
	return &Classifier{cfg: cfg, sketch: NewSketch(cfg.Decay)}
}

// Observe feeds one sized op into the threshold sketch. Unsized ops
// (sizeBytes <= 0) carry no signal and are skipped.
func (c *Classifier) Observe(sizeBytes int64) {
	if sizeBytes <= 0 || c.cfg.Override > 0 {
		return
	}
	c.sketch.Observe(sizeBytes)
}

// Threshold returns the current small/large boundary in bytes: the
// fixed override if set, the learned quantile once the sketch has
// enough weight, and the configured default until then.
func (c *Classifier) Threshold() int64 {
	if c.cfg.Override > 0 {
		return c.cfg.Override
	}
	if c.sketch.Weight() < c.cfg.MinWeight {
		return c.cfg.Default
	}
	if t := c.sketch.Quantile(c.cfg.Quantile); t > 0 {
		return t
	}
	return c.cfg.Default
}

// Classify maps a payload size to its pool. Unknown sizes (<= 0) are
// small: bare gets of never-seen keys are the latency-critical common
// case, and misrouting a rare large one costs a single stall that the
// size hint then prevents from recurring.
func (c *Classifier) Classify(sizeBytes int64) Pool {
	if sizeBytes <= 0 {
		return Small
	}
	if sizeBytes > c.Threshold() {
		return Large
	}
	return Small
}
