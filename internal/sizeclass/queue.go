package sizeclass

import (
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// Queue fronts two independent instances of an inner scheduling policy
// — one per size class — behind a size-based admission classifier.
//
// The server drives it through the pool-aware surface (PopPool, LenPool,
// BacklogPool), dedicating workers to each pool; work-stealing is the
// large pool popping small-pool work when its own queue is empty, so a
// quiet large pool never idles while small work waits. The reverse
// never happens: small workers refuse large ops by construction, which
// is the whole point of the split.
//
// Queue also implements sched.Policy (and sched.BatchPolicy) so the
// generic property suites can drive it: the facade Pop drains the small
// pool first and steals from the large pool only when the small pool is
// empty — a single consumer sees the small-preference order. It
// deliberately does not implement sched.Keyer: there is no single
// priority key across pools.
type Queue struct {
	cls   *Classifier
	pools [NumPools]sched.Policy

	routed [NumPools]uint64
	stolen uint64

	scratch [NumPools][]*sched.Op
}

var (
	_ sched.Policy           = (*Queue)(nil)
	_ sched.BatchPolicy      = (*Queue)(nil)
	_ sched.DecisionReporter = (*Queue)(nil)
)

// New builds a split queue whose pools are independent instances of the
// inner factory, seeded apart so randomized inner policies diverge.
func New(inner sched.Factory, cfg Config, seed uint64) *Queue {
	return &Queue{
		cls: NewClassifier(cfg),
		pools: [NumPools]sched.Policy{
			Small: inner(seed),
			Large: inner(seed ^ 0x5a17ec1a55b00573),
		},
	}
}

// Factory adapts New to the sched.Factory shape.
func Factory(inner sched.Factory, cfg Config) sched.Factory {
	return func(seed uint64) sched.Policy { return New(inner, cfg, seed) }
}

// Name implements sched.Policy.
func (q *Queue) Name() string {
	return "sizeclass(" + q.pools[Small].Name() + ")"
}

// Classify returns the pool an op of this payload size would be routed
// to right now (the decision Push will make, without making it).
func (q *Queue) Classify(sizeBytes int64) Pool { return q.cls.Classify(sizeBytes) }

// ObserveSize feeds one payload size into the classifier's sketch
// without admitting anything — the server calls it with the size each
// served op actually moved, so the learned threshold tracks ground
// truth even when admission could only see a hint (or nothing).
func (q *Queue) ObserveSize(sizeBytes int64) { q.cls.Observe(sizeBytes) }

// Threshold returns the classifier's current small/large boundary.
func (q *Queue) Threshold() int64 { return q.cls.Threshold() }

// Push implements sched.Policy: classify, learn, and admit to the
// matching pool.
func (q *Queue) Push(op *sched.Op, now time.Duration) {
	p := q.cls.Classify(op.Tags.SizeBytes)
	q.cls.Observe(op.Tags.SizeBytes)
	q.routed[p]++
	q.pools[p].Push(op, now)
}

// PushBatch implements sched.BatchPolicy: the batch is split by size
// class (preserving relative order) and each side is admitted as one
// unit. A tag-coherent batch stays tag-coherent after splitting, so the
// inner policies' PushBatch contract holds for both sub-batches.
func (q *Queue) PushBatch(ops []*sched.Op, now time.Duration) {
	small := q.scratch[Small][:0]
	large := q.scratch[Large][:0]
	for _, op := range ops {
		p := q.cls.Classify(op.Tags.SizeBytes)
		q.cls.Observe(op.Tags.SizeBytes)
		q.routed[p]++
		if p == Large {
			large = append(large, op)
		} else {
			small = append(small, op)
		}
	}
	q.admit(Small, small, now)
	q.admit(Large, large, now)
	q.scratch[Small] = small[:0]
	q.scratch[Large] = large[:0]
}

func (q *Queue) admit(p Pool, ops []*sched.Op, now time.Duration) {
	switch {
	case len(ops) == 0:
	case len(ops) == 1:
		q.pools[p].Push(ops[0], now)
	default:
		if bp, ok := q.pools[p].(sched.BatchPolicy); ok {
			bp.PushBatch(ops, now)
			return
		}
		for _, op := range ops {
			q.pools[p].Push(op, now)
		}
	}
}

// Pop implements sched.Policy: small-pool work first, large-pool work
// when none is queued.
func (q *Queue) Pop(now time.Duration) *sched.Op {
	if op := q.pools[Small].Pop(now); op != nil {
		return op
	}
	return q.pools[Large].Pop(now)
}

// PopPool removes the next op of one pool. A large-pool caller with
// steal set drains small-pool work when its own pool is empty (the
// work-stealing path); small-pool callers never see large ops.
func (q *Queue) PopPool(p Pool, now time.Duration, steal bool) *sched.Op {
	if op := q.pools[p].Pop(now); op != nil {
		return op
	}
	if p == Large && steal {
		if op := q.pools[Small].Pop(now); op != nil {
			q.stolen++
			return op
		}
	}
	return nil
}

// Len implements sched.Policy.
func (q *Queue) Len() int {
	return q.pools[Small].Len() + q.pools[Large].Len()
}

// LenPool returns one pool's queue depth.
func (q *Queue) LenPool(p Pool) int { return q.pools[p].Len() }

// BacklogDemand implements sched.Policy.
func (q *Queue) BacklogDemand() time.Duration {
	return q.pools[Small].BacklogDemand() + q.pools[Large].BacklogDemand()
}

// BacklogPool returns one pool's queued service demand.
func (q *Queue) BacklogPool(p Pool) time.Duration {
	return q.pools[p].BacklogDemand()
}

// Routed returns how many ops admission has sent to the pool.
func (q *Queue) Routed(p Pool) uint64 { return q.routed[p] }

// Stolen returns how many small-pool ops the large pool has drained
// through the work-stealing path.
func (q *Queue) Stolen() uint64 { return q.stolen }

// Decisions implements sched.DecisionReporter by summing both pools'
// counters (pools that report none contribute zero).
func (q *Queue) Decisions() sched.DecisionStats {
	var s sched.DecisionStats
	for _, p := range q.pools {
		if dr, ok := p.(sched.DecisionReporter); ok {
			s.Add(dr.Decisions())
		}
	}
	return s
}
