package sizeclass_test

import (
	"sync"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/schedtest"
	"github.com/daskv/daskv/internal/sizeclass"
)

// stamper wraps a split queue and stamps every pushed op's SizeBytes
// with a deterministic function of its request ID, so the generic
// schedtest suites (whose ops carry no size) exercise a chosen routing
// mix. It intentionally does not implement sched.Keyer — neither does
// the split queue it wraps.
type stamper struct {
	*sizeclass.Queue
	size func(sched.RequestID) int64
}

func (s stamper) Push(op *sched.Op, now time.Duration) {
	op.Tags.SizeBytes = s.size(op.Request)
	s.Queue.Push(op, now)
}

// splitCases is the invariants matrix for the size-class split: each
// pool alone (so the inner DAS bounds are asserted through the split),
// and a mixed stream through the facade.
var splitCases = map[string]struct {
	factory sched.Factory
	props   schedtest.Properties
}{
	// Everything classifies small: the facade degenerates to the small
	// pool, so the inner policy's AgingBound promise must survive the
	// wrapping.
	"all-small": {
		factory: sizeclass.Factory(core.Factory(core.LiveOptions()), sizeclass.Config{Override: 1 << 40}),
		props:   schedtest.Properties{AgingBound: core.LiveOptions().AgingBound},
	},
	// Everything stamps large: the same promise through the large pool.
	"all-large": {
		factory: func(seed uint64) sched.Policy {
			return stamper{
				Queue: sizeclass.New(core.Factory(core.LiveOptions()), sizeclass.Config{Override: 1}, seed),
				size:  func(sched.RequestID) int64 { return 2 },
			}
		},
		props: schedtest.Properties{AgingBound: core.LiveOptions().AgingBound},
	},
	// A quarter of ops stamp large: conservation and backlog accounting
	// must hold across the split admission path. (No aging claim here —
	// the facade prefers small work by design, so a large op facing an
	// endless small stream waits until a large-pool worker exists.)
	"mixed": {
		factory: func(seed uint64) sched.Policy {
			return stamper{
				Queue: sizeclass.New(core.Factory(core.LiveOptions()), sizeclass.Config{Override: 64 << 10}, seed),
				size: func(r sched.RequestID) int64 {
					if r%4 == 0 {
						return 1 << 20
					}
					return 1 << 10
				},
			}
		},
	},
}

func TestSplitInvariants(t *testing.T) {
	for name, tc := range splitCases {
		schedtest.RunInvariants(t, name, tc.factory)
	}
}

func TestSplitProperties(t *testing.T) {
	for name, tc := range splitCases {
		schedtest.RunProperties(t, name, tc.factory, tc.props)
	}
}

// TestStealPreservesAgingBound asserts the promotion invariant across
// the work-stealing path: a small-pool op facing an endless stream of
// higher-priority small arrivals must still be served (and marked
// promoted) within AgingBound times its own remaining time, even when
// the only consumer is a stealing large-pool worker.
func TestStealPreservesAgingBound(t *testing.T) {
	q := sizeclass.New(core.Factory(core.LiveOptions()), sizeclass.Config{Override: 64 << 10}, 53)
	const rpt = 10 * time.Millisecond
	starved := classedOp(1_000_000, rpt, 1<<10)
	q.Push(starved, 0)
	allowance := time.Duration(core.LiveOptions().AgingBound * float64(rpt))
	step := allowance / 8
	now := time.Duration(0)
	for i := 1; i <= 64; i++ {
		now += step
		q.Push(classedOp(i, time.Microsecond, 1<<10), now)
		op := q.PopPool(sizeclass.Large, now, true)
		if op == nil {
			t.Fatal("nil steal with small work queued")
		}
		if op == starved {
			if wait := now - starved.Enqueued; wait > allowance+step {
				t.Fatalf("starved op waited %v through the steal path, bound is %v (+%v step)", wait, allowance, step)
			}
			if op.Class != sched.ClassPromoted {
				t.Fatalf("rescued op classified %v, want %v", op.Class, sched.ClassPromoted)
			}
			if q.Stolen() == 0 {
				t.Fatal("steal counter did not move")
			}
			return
		}
	}
	t.Fatalf("op starved past %v despite the AgingBound through stealing", allowance)
}

// TestStealConservation drains a mixed stream through the pool-aware
// surface the server actually uses — a non-stealing small worker and a
// stealing large worker — and asserts nothing is lost, duplicated, or
// left in the backlog accounting.
func TestStealConservation(t *testing.T) {
	for _, seed := range []uint64{61, 67, 71} {
		q := sizeclass.New(core.Factory(core.LiveOptions()), sizeclass.Config{Override: 64 << 10}, seed)
		rng := dist.NewRand(seed)
		pushed, popped := 0, 0
		seen := map[sched.RequestID]bool{}
		now := time.Duration(0)
		pop := func(p sizeclass.Pool, steal bool) {
			op := q.PopPool(p, now, steal)
			if op == nil {
				return
			}
			if seen[op.Request] {
				t.Fatalf("seed %d: request %d served twice", seed, op.Request)
			}
			seen[op.Request] = true
			popped++
		}
		for i := 0; i < 4000; i++ {
			now += time.Duration(rng.Int64N(int64(time.Millisecond)))
			switch {
			case rng.Int64N(2) == 0 || q.Len() == 0:
				pushed++
				size := int64(1 << 10)
				if rng.Int64N(4) == 0 {
					size = 1 << 20
				}
				q.Push(classedOp(pushed, time.Duration(1+rng.Int64N(int64(time.Millisecond))), size), now)
			case rng.Int64N(2) == 0:
				pop(sizeclass.Small, false)
			default:
				pop(sizeclass.Large, true)
			}
		}
		for q.Len() > 0 {
			n := popped
			pop(sizeclass.Small, false)
			pop(sizeclass.Large, true)
			if popped == n {
				t.Fatalf("seed %d: no pool yielded with Len = %d", seed, q.Len())
			}
		}
		if popped != pushed {
			t.Fatalf("seed %d: popped %d of %d pushed", seed, popped, pushed)
		}
		if q.BacklogDemand() != 0 {
			t.Fatalf("seed %d: drained backlog = %v", seed, q.BacklogDemand())
		}
		if q.Routed(sizeclass.Small)+q.Routed(sizeclass.Large) != uint64(pushed) {
			t.Fatalf("seed %d: routed %d+%d, pushed %d", seed,
				q.Routed(sizeclass.Small), q.Routed(sizeclass.Large), pushed)
		}
	}
}

// TestConcurrentPoolWorkers is the race-clean version of conservation:
// dedicated small and large worker goroutines drain the queue under the
// same external lock discipline the server uses, while a producer keeps
// pushing a mixed stream. Run with -race this pins down that the split
// adds no hidden shared state beyond the lock.
func TestConcurrentPoolWorkers(t *testing.T) {
	q := sizeclass.New(core.Factory(core.LiveOptions()), sizeclass.Config{Override: 64 << 10}, 79)
	var mu sync.Mutex // stands in for the server's queue lock
	const total = 3000
	var (
		served   sync.Map
		popped   int
		poppedMu sync.Mutex
	)
	worker := func(p sizeclass.Pool, steal bool, done <-chan struct{}) {
		for {
			mu.Lock()
			op := q.PopPool(p, 0, steal)
			mu.Unlock()
			if op == nil {
				select {
				case <-done:
					return
				default:
					continue
				}
			}
			if _, dup := served.LoadOrStore(op.Request, true); dup {
				t.Errorf("request %d served twice", op.Request)
			}
			poppedMu.Lock()
			popped++
			poppedMu.Unlock()
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); worker(sizeclass.Small, false, done) }()
		go func() { defer wg.Done(); worker(sizeclass.Large, true, done) }()
	}
	rng := dist.NewRand(83)
	for i := 1; i <= total; i++ {
		size := int64(1 << 10)
		if rng.Int64N(4) == 0 {
			size = 1 << 20
		}
		mu.Lock()
		q.Push(classedOp(i, time.Duration(1+rng.Int64N(int64(time.Millisecond))), size), 0)
		mu.Unlock()
	}
	for {
		poppedMu.Lock()
		n := popped
		poppedMu.Unlock()
		if n == total {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if q.Len() != 0 || q.BacklogDemand() != 0 {
		t.Fatalf("drained queue: len %d backlog %v", q.Len(), q.BacklogDemand())
	}
}
