package replica

import (
	"fmt"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/topology"
)

func testRing(t *testing.T, n int) *topology.Ring {
	t.Helper()
	ids := make([]sched.ServerID, n)
	for i := range ids {
		ids[i] = sched.ServerID(i)
	}
	ring, err := topology.NewRing(ids, 64)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	return ring
}

func TestPlacementDistinctAndStable(t *testing.T) {
	ring := testRing(t, 5)
	p, err := NewPlacement(ring, 3)
	if err != nil {
		t.Fatalf("placement: %v", err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		holders := p.For(key)
		if len(holders) != 3 {
			t.Fatalf("key %q: %d holders, want 3", key, len(holders))
		}
		seen := map[sched.ServerID]bool{}
		for _, h := range holders {
			if seen[h] {
				t.Fatalf("key %q: duplicate holder %d in %v", key, h, holders)
			}
			seen[h] = true
		}
		if holders[0] != p.Primary(key) {
			t.Fatalf("key %q: first holder %d != primary %d", key, holders[0], p.Primary(key))
		}
		again := p.For(key)
		for j := range holders {
			if holders[j] != again[j] {
				t.Fatalf("key %q: placement not deterministic: %v vs %v", key, holders, again)
			}
		}
	}
}

func TestPlacementValidation(t *testing.T) {
	ring := testRing(t, 3)
	if _, err := NewPlacement(ring, 0); err == nil {
		t.Fatal("factor 0 accepted")
	}
	if _, err := NewPlacement(ring, 4); err == nil {
		t.Fatal("factor beyond cluster size accepted")
	}
	if _, err := NewPlacement(nil, 1); err == nil {
		t.Fatal("nil ring accepted")
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("parse %q: %v", name, err)
		}
		if p.String() != name {
			t.Fatalf("round trip %q -> %v -> %q", name, int(p), p.String())
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	sel, err := NewSelector(RoundRobin, nil, 1)
	if err != nil {
		t.Fatalf("selector: %v", err)
	}
	cands := []sched.ServerID{3, 1, 4}
	counts := map[sched.ServerID]int{}
	for i := 0; i < 99; i++ {
		counts[sel.Pick(cands, time.Millisecond, 0)]++
	}
	for _, c := range cands {
		if counts[c] != 33 {
			t.Fatalf("server %d picked %d times, want 33 (%v)", c, counts[c], counts)
		}
	}
}

func TestRandomCoversAllReplicas(t *testing.T) {
	sel, err := NewSelector(Random, nil, 42)
	if err != nil {
		t.Fatalf("selector: %v", err)
	}
	cands := []sched.ServerID{0, 1, 2}
	counts := map[sched.ServerID]int{}
	for i := 0; i < 300; i++ {
		counts[sel.Pick(cands, time.Millisecond, 0)]++
	}
	for _, c := range cands {
		if counts[c] < 50 {
			t.Fatalf("server %d picked only %d/300 times", c, counts[c])
		}
	}
}

func TestLeastOutstandingAvoidsLoadedReplica(t *testing.T) {
	sel, err := NewSelector(LeastOutstanding, nil, 1)
	if err != nil {
		t.Fatalf("selector: %v", err)
	}
	cands := []sched.ServerID{0, 1, 2}
	sel.OnDispatch(0)
	sel.OnDispatch(0)
	sel.OnDispatch(1)
	if got := sel.Pick(cands, time.Millisecond, 0); got != 2 {
		t.Fatalf("picked %d, want idle server 2", got)
	}
	sel.OnComplete(0)
	sel.OnComplete(0)
	if got := sel.Pick(cands, time.Millisecond, 0); got != 0 {
		t.Fatalf("picked %d, want drained server 0 (ties break in placement order)", got)
	}
	// Completions never drive a counter negative.
	sel.OnComplete(2)
	if got := sel.Outstanding(2); got != 0 {
		t.Fatalf("outstanding(2) = %d after spurious complete", got)
	}
}

func TestAdaptivePrefersFastIdleReplica(t *testing.T) {
	est, err := core.NewEstimator(core.DefaultEstimatorConfig())
	if err != nil {
		t.Fatalf("estimator: %v", err)
	}
	sel, err := NewSelector(Adaptive, est, 1)
	if err != nil {
		t.Fatalf("selector: %v", err)
	}
	now := 100 * time.Millisecond
	// Server 0: deep backlog. Server 1: idle but half speed. Server 2:
	// idle at nominal speed — the obvious winner.
	est.Observe(core.Feedback{Server: 0, Backlog: 500 * time.Millisecond, Speed: 1, At: now})
	est.Observe(core.Feedback{Server: 1, Backlog: 0, Speed: 0.5, At: now})
	est.Observe(core.Feedback{Server: 2, Backlog: 0, Speed: 1, At: now})
	cands := []sched.ServerID{0, 1, 2}
	if got := sel.Pick(cands, 10*time.Millisecond, now); got != 2 {
		t.Fatalf("picked %d, want idle nominal-speed server 2", got)
	}
}

func TestAdaptiveInFlightCompensation(t *testing.T) {
	est, err := core.NewEstimator(core.DefaultEstimatorConfig())
	if err != nil {
		t.Fatalf("estimator: %v", err)
	}
	sel, err := NewSelector(Adaptive, est, 1)
	if err != nil {
		t.Fatalf("selector: %v", err)
	}
	now := time.Millisecond
	est.Observe(core.Feedback{Server: 0, Backlog: 0, Speed: 1, At: now})
	est.Observe(core.Feedback{Server: 1, Backlog: 0, Speed: 1, At: now})
	cands := []sched.ServerID{0, 1}
	// Identical feedback: placement order wins.
	if got := sel.Pick(cands, time.Millisecond, now); got != 0 {
		t.Fatalf("picked %d, want primary 0 on identical views", got)
	}
	// Pile this client's own dispatches onto 0; the stale-free feedback
	// still says "idle", but the compensation term must steer away.
	for i := 0; i < 3; i++ {
		sel.OnDispatch(0)
	}
	if got := sel.Pick(cands, time.Millisecond, now); got != 1 {
		t.Fatalf("picked %d, want 1 once 0 has in-flight load", got)
	}
}

func TestAdaptiveRoutesAroundDownReplica(t *testing.T) {
	est, err := core.NewEstimator(core.DefaultEstimatorConfig())
	if err != nil {
		t.Fatalf("estimator: %v", err)
	}
	sel, err := NewSelector(Adaptive, est, 1)
	if err != nil {
		t.Fatalf("selector: %v", err)
	}
	now := time.Millisecond
	est.Observe(core.Feedback{Server: 0, Backlog: 0, Speed: 1, At: now})
	est.Observe(core.Feedback{Server: 1, Backlog: 200 * time.Millisecond, Speed: 1, At: now})
	est.MarkDown(0, now)
	if got := sel.Pick([]sched.ServerID{0, 1}, time.Millisecond, now); got != 1 {
		t.Fatalf("picked %d, want healthy-but-loaded 1 over quarantined 0", got)
	}
	scores := sel.Scores([]sched.ServerID{0, 1}, time.Millisecond, now)
	if scores[0].Server != 1 || scores[1].Server != 0 || !scores[1].Down {
		t.Fatalf("scores not ranked healthy-first: %+v", scores)
	}
}

func TestPrimaryStepsPastDownHolder(t *testing.T) {
	est, err := core.NewEstimator(core.DefaultEstimatorConfig())
	if err != nil {
		t.Fatalf("estimator: %v", err)
	}
	sel, err := NewSelector(Primary, est, 1)
	if err != nil {
		t.Fatalf("selector: %v", err)
	}
	cands := []sched.ServerID{7, 8, 9}
	if got := sel.Pick(cands, time.Millisecond, 0); got != 7 {
		t.Fatalf("picked %d, want primary 7", got)
	}
	est.MarkDown(7, 0)
	if got := sel.Pick(cands, time.Millisecond, 0); got != 8 {
		t.Fatalf("picked %d, want first healthy successor 8", got)
	}
}

func TestClockMonotonicAndWallAnchored(t *testing.T) {
	wall := int64(1000)
	c := NewClock(func() int64 { return wall })
	v1 := c.Next()
	if v1 != 1000 {
		t.Fatalf("first version %d, want wall anchor 1000", v1)
	}
	// Wall stalls: versions still advance.
	v2 := c.Next()
	if v2 <= v1 {
		t.Fatalf("version did not advance: %d then %d", v1, v2)
	}
	// Wall steps backwards: monotonic floor holds.
	wall = 5
	if v3 := c.Next(); v3 <= v2 {
		t.Fatalf("version regressed with wall clock: %d then %d", v2, v3)
	}
	// Wall jumps ahead: versions follow.
	wall = 50_000
	if v4 := c.Next(); v4 != 50_000 {
		t.Fatalf("version %d did not follow wall jump to 50000", v4)
	}
}

func TestRepairsConvergeStaleAndMissingReplicas(t *testing.T) {
	reads := []ReadResult{
		{Server: 0, Value: []byte("new"), Version: 30, Found: true},
		{Server: 1, Value: []byte("old"), Version: 10, Found: true},
		{Server: 2, Found: false},
		{Server: 3, Err: fmt.Errorf("down")},
	}
	newest, ok := Newest(reads)
	if !ok || newest.Server != 0 || string(newest.Value) != "new" {
		t.Fatalf("newest = %+v ok=%v, want server 0 'new'", newest, ok)
	}
	plan := Repairs(reads)
	if len(plan) != 2 {
		t.Fatalf("plan %+v, want repairs for servers 1 and 2", plan)
	}
	for _, r := range plan {
		if r.Server != 1 && r.Server != 2 {
			t.Fatalf("unexpected repair target %d", r.Server)
		}
		if string(r.Value) != "new" || r.Version != 30 {
			t.Fatalf("repair %+v does not push the newest write", r)
		}
	}
}

func TestRepairsNoopWhenConverged(t *testing.T) {
	reads := []ReadResult{
		{Server: 0, Value: []byte("v"), Version: 7, Found: true},
		{Server: 1, Value: []byte("v"), Version: 7, Found: true},
	}
	if plan := Repairs(reads); len(plan) != 0 {
		t.Fatalf("converged replicas produced repairs: %+v", plan)
	}
	// All-missing: nothing to push, and deletes are never resurrected.
	none := []ReadResult{{Server: 0}, {Server: 1}}
	if plan := Repairs(none); len(plan) != 0 {
		t.Fatalf("missing-everywhere produced repairs: %+v", plan)
	}
	// Unversioned values carry no order: leave them alone.
	legacy := []ReadResult{
		{Server: 0, Value: []byte("a"), Version: 0, Found: true},
		{Server: 1, Found: false},
	}
	if plan := Repairs(legacy); len(plan) != 0 {
		t.Fatalf("unversioned value produced repairs: %+v", plan)
	}
}

func TestSelectorSingleCandidateFastPath(t *testing.T) {
	for p := Primary; p <= Adaptive; p++ {
		sel, err := NewSelector(p, nil, 1)
		if err != nil {
			t.Fatalf("selector %v: %v", p, err)
		}
		if got := sel.Pick([]sched.ServerID{5}, time.Millisecond, 0); got != 5 {
			t.Fatalf("%v picked %d from single-candidate set", p, got)
		}
	}
	if _, err := NewSelector(Policy(99), nil, 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
