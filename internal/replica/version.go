package replica

import (
	"sync/atomic"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// Version is a per-key last-writer-wins tag. Writers stamp every
// replicated put with one version and fan it out; replicas apply a put
// only if its version is not older than what they hold, so replays and
// out-of-order repairs are idempotent and every replica converges to the
// newest write. Zero means "unversioned" (the seed's single-copy write
// path).
type Version uint64

// Clock issues monotonically increasing versions anchored to wall time:
// each version is max(previous+1, now-nanos). Anchoring to the wall
// clock makes versions comparable across client processes (within clock
// skew — see the consistency caveats in docs/ARCHITECTURE.md), while
// the monotonic floor keeps a single client strictly ordered even if
// its wall clock steps backwards.
type Clock struct {
	now  func() int64
	last atomic.Uint64
}

// NewClock returns a wall-anchored version clock. now may be nil (wall
// time); tests inject a fake for determinism.
func NewClock(now func() int64) *Clock {
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return &Clock{now: now}
}

// Next issues the next version.
func (c *Clock) Next() Version {
	wall := c.now()
	if wall < 1 {
		wall = 1
	}
	for {
		prev := c.last.Load()
		next := uint64(wall)
		if next <= prev {
			next = prev + 1
		}
		if c.last.CompareAndSwap(prev, next) {
			return Version(next)
		}
	}
}

// ReadResult is one replica's answer to a versioned read, the input to
// the read-repair planner.
type ReadResult struct {
	Server  sched.ServerID
	Value   []byte
	Version Version
	// Found distinguishes "holds the key" from a definitive miss.
	Found bool
	// Err marks a replica that could not be read (crashed, timed out);
	// it is never chosen as authoritative and never repaired.
	Err error
}

// Newest returns the authoritative result among reads: the highest
// version among found replicas. ok is false when no reachable replica
// holds the key.
func Newest(reads []ReadResult) (ReadResult, bool) {
	var best ReadResult
	ok := false
	for _, r := range reads {
		if r.Err != nil || !r.Found {
			continue
		}
		if !ok || r.Version > best.Version {
			best, ok = r, true
		}
	}
	return best, ok
}

// Repair is one convergence write: push Value at Version to Server.
type Repair struct {
	Server  sched.ServerID
	Value   []byte
	Version Version
}

// Repairs plans the writes that converge stale replicas onto the newest
// found version: every reachable replica that misses the key or holds an
// older version gets the newest value re-pushed (version-guarded, so a
// concurrent fresher write at the replica wins anyway). An empty plan
// means the reachable replicas already agree (or none holds the key —
// the planner never resurrects deletes).
func Repairs(reads []ReadResult) []Repair {
	newest, ok := Newest(reads)
	if !ok || newest.Version == 0 {
		// Unversioned values carry no order; rewriting them could
		// clobber a newer unversioned write.
		return nil
	}
	var plan []Repair
	for _, r := range reads {
		if r.Err != nil || r.Server == newest.Server {
			continue
		}
		if !r.Found || r.Version < newest.Version {
			plan = append(plan, Repair{Server: r.Server, Value: newest.Value, Version: newest.Version})
		}
	}
	return plan
}
