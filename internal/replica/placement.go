// Package replica is the replication layer: R-way replica placement on
// the consistent-hash ring, timeliness-aware replica selection driven by
// the DAS estimator's piggybacked feedback, and last-writer-wins version
// tags with a read-repair planner so replicas converge after partial
// write failures.
//
// The package extends the paper's single-copy model in the direction of
// Tars (Jiang et al.): the same expected-finish-time machinery DAS uses
// to order server queues also ranks replica holders at dispatch time,
// compensated for the requests this client already has in flight but
// whose load the feedback cannot reflect yet. Both the simulator and the
// live kv client route reads through a Selector, so the selection
// policies are compared under identical scoring code.
//
// The selector's live decisions are observable: `kvctl replicas KEY`
// prints the current Score ranking of a key's holders, and `kvctl
// trace` shows which replica each multiget op landed on (see
// docs/OBSERVABILITY.md).
package replica

import (
	"fmt"

	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/topology"
)

// Placement maps each key to its R distinct replica holders: the key's
// ring successor set. The primary (first holder) is the server the
// unreplicated system would pick, so R=1 degenerates to the seed's
// behavior exactly.
type Placement struct {
	ring   *topology.Ring
	factor int
}

// NewPlacement wraps ring with replication factor r (clamped to the
// cluster size by the ring itself; r must be at least 1).
func NewPlacement(ring *topology.Ring, r int) (*Placement, error) {
	if ring == nil {
		return nil, fmt.Errorf("replica: placement needs a ring")
	}
	if r < 1 {
		return nil, fmt.Errorf("replica: replication factor %d must be >= 1", r)
	}
	if r > ring.Size() {
		return nil, fmt.Errorf("replica: replication factor %d exceeds %d servers", r, ring.Size())
	}
	return &Placement{ring: ring, factor: r}, nil
}

// Factor returns the replication factor R.
func (p *Placement) Factor() int { return p.factor }

// For returns key's replica holders in ring (priority) order: the
// primary first, then the distinct clockwise successors.
func (p *Placement) For(key string) []sched.ServerID {
	return p.ring.LookupN(key, p.factor)
}

// Primary returns key's first-choice holder.
func (p *Placement) Primary(key string) sched.ServerID {
	return p.ring.Lookup(key)
}
