package replica

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/sched"
)

// Policy names a replica-selection strategy.
type Policy int

// Selection policies, from oblivious baselines to the adaptive selector
// the experiments evaluate.
const (
	// Primary reads the ring-first holder, stepping past holders the
	// estimator currently quarantines as down. R=1 behavior plus crash
	// masking, no load awareness.
	Primary Policy = iota
	// Random spreads reads uniformly over the replica set.
	Random
	// RoundRobin rotates reads over the replica set in dispatch order.
	RoundRobin
	// LeastOutstanding reads the replica with the fewest of this
	// client's own requests currently in flight (the classic
	// power-of-all-choices load balancer, feedback-free).
	LeastOutstanding
	// Adaptive reads the replica with the earliest expected finish per
	// the DAS estimator's piggybacked backlog/speed view, compensated
	// Tars-style for in-flight requests the feedback cannot see yet.
	Adaptive
)

// String returns the policy's CLI name.
func (p Policy) String() string {
	switch p {
	case Primary:
		return "primary"
	case Random:
		return "random"
	case RoundRobin:
		return "round-robin"
	case LeastOutstanding:
		return "least-outstanding"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// PolicyNames lists the parseable policy names.
func PolicyNames() []string {
	return []string{"primary", "random", "round-robin", "least-outstanding", "adaptive"}
}

// ParsePolicy resolves a CLI name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "primary", "":
		return Primary, nil
	case "random":
		return Random, nil
	case "round-robin", "roundrobin", "rr":
		return RoundRobin, nil
	case "least-outstanding", "leastoutstanding", "lo":
		return LeastOutstanding, nil
	case "adaptive", "fastest", "tars":
		return Adaptive, nil
	default:
		return 0, fmt.Errorf("replica: unknown selection policy %q (want one of %s)",
			s, strings.Join(PolicyNames(), ", "))
	}
}

// Score is one replica's selection rank, exposed for debugging and the
// kvctl `replicas` subcommand. Lower Finish wins.
type Score struct {
	Server sched.ServerID
	// Finish is the estimated absolute completion instant of the read
	// at this replica, including the in-flight compensation (and the
	// quarantine penalty when Down).
	Finish time.Duration
	// Outstanding is this client's in-flight dispatch count against the
	// replica.
	Outstanding int
	// Speed and Backlog echo the estimator's current view (estimator
	// defaults when none is attached).
	Speed   float64
	Backlog time.Duration
	// Down reports the estimator's quarantine state.
	Down bool
}

// Selector picks which replica serves each read. It is safe for
// concurrent use: the live client shares one selector across all request
// goroutines. The estimator may be nil (oblivious policies, or adaptive
// selection before any feedback exists — which then degrades to primary
// order).
type Selector struct {
	policy Policy
	est    *core.Estimator

	mu          sync.Mutex
	rng         *rand.Rand
	rr          uint64
	outstanding map[sched.ServerID]int
}

// NewSelector builds a selector. seed fixes the Random policy's stream
// (and is harmless for the others).
func NewSelector(policy Policy, est *core.Estimator, seed uint64) (*Selector, error) {
	if policy < Primary || policy > Adaptive {
		return nil, fmt.Errorf("replica: unknown selection policy %d", int(policy))
	}
	return &Selector{
		policy:      policy,
		est:         est,
		rng:         rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		outstanding: make(map[sched.ServerID]int),
	}, nil
}

// PolicyID returns the configured policy.
func (s *Selector) PolicyID() Policy { return s.policy }

// OnDispatch records one read dispatched to server; pair with
// OnComplete when its response (or failure) arrives. The counters feed
// LeastOutstanding directly and the Adaptive policy's in-flight
// compensation.
func (s *Selector) OnDispatch(server sched.ServerID) {
	s.mu.Lock()
	s.outstanding[server]++
	s.mu.Unlock()
}

// OnComplete retires one dispatch against server.
func (s *Selector) OnComplete(server sched.ServerID) {
	s.mu.Lock()
	if s.outstanding[server] > 0 {
		s.outstanding[server]--
	}
	s.mu.Unlock()
}

// Outstanding returns the current in-flight count against server.
func (s *Selector) Outstanding(server sched.ServerID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.outstanding[server]
}

// Pick chooses the serving replica among cands (in placement priority
// order) for a read of the given demand at time now. cands must be
// non-empty; the slice is not retained.
func (s *Selector) Pick(cands []sched.ServerID, demand, now time.Duration) sched.ServerID {
	if len(cands) == 1 {
		// Fast path shared by every policy — and the R=1 configuration.
		return cands[0]
	}
	switch s.policy {
	case Random:
		s.mu.Lock()
		i := s.rng.IntN(len(cands))
		s.mu.Unlock()
		return cands[i]
	case RoundRobin:
		s.mu.Lock()
		i := int(s.rr % uint64(len(cands)))
		s.rr++
		s.mu.Unlock()
		return cands[i]
	case LeastOutstanding:
		s.mu.Lock()
		best := cands[0]
		for _, c := range cands[1:] {
			if s.outstanding[c] < s.outstanding[best] {
				best = c
			}
		}
		s.mu.Unlock()
		return best
	case Adaptive:
		if s.est != nil {
			best := cands[0]
			bestFinish := s.score(best, demand, now).Finish
			for _, c := range cands[1:] {
				if f := s.score(c, demand, now).Finish; f < bestFinish {
					best, bestFinish = c, f
				}
			}
			return best
		}
		fallthrough
	default: // Primary, and Adaptive without an estimator
		if s.est != nil {
			for _, c := range cands {
				if !s.est.Down(c, now) {
					return c
				}
			}
		}
		return cands[0]
	}
}

// score ranks one candidate: the estimator's expected finish plus the
// Tars-style compensation term — each of this client's own in-flight
// dispatches adds one speed-scaled demand of queueing the piggybacked
// backlog cannot reflect yet.
func (s *Selector) score(c sched.ServerID, demand, now time.Duration) Score {
	s.mu.Lock()
	out := s.outstanding[c]
	s.mu.Unlock()
	sc := Score{Server: c, Outstanding: out, Speed: 1}
	if s.est == nil {
		sc.Finish = now + demand + time.Duration(out)*demand
		return sc
	}
	speed, backlog, _ := s.est.Snapshot(c)
	if speed <= 0 {
		speed = 1
	}
	scaled := time.Duration(float64(demand) / speed)
	sc.Finish = s.est.ExpectedFinish(c, demand, now) + time.Duration(out)*scaled
	sc.Speed = speed
	sc.Backlog = backlog
	sc.Down = s.est.Down(c, now)
	return sc
}

// ScoreOf ranks a single candidate without allocating — the hot-path
// variant of Scores for callers scoring one dispatch target at a time.
func (s *Selector) ScoreOf(c sched.ServerID, demand, now time.Duration) Score {
	return s.score(c, demand, now)
}

// Scores ranks every candidate for introspection (kvctl `replicas`),
// sorted best-first. The ranking matches what Adaptive would pick; the
// oblivious policies ignore it when selecting.
func (s *Selector) Scores(cands []sched.ServerID, demand, now time.Duration) []Score {
	out := make([]Score, len(cands))
	for i, c := range cands {
		out[i] = s.score(c, demand, now)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Finish < out[j].Finish })
	return out
}
