package sim

import (
	"fmt"
	"time"
)

// SpeedProfile gives a server's processing speed over virtual time, in
// demand-units per unit time (1.0 = nominal hardware). Speed is sampled
// when an operation starts service; demands are small relative to
// profile changes, so the approximation error is negligible.
type SpeedProfile interface {
	At(t time.Duration) float64
	String() string
}

// ConstantSpeed is a fixed speed.
type ConstantSpeed struct{ V float64 }

var _ SpeedProfile = ConstantSpeed{}

// At implements SpeedProfile.
func (s ConstantSpeed) At(time.Duration) float64 { return s.V }

func (s ConstantSpeed) String() string { return fmt.Sprintf("const(%.2f)", s.V) }

// StepSpeed switches from Before to After at instant Switch — a server
// degrading (or recovering) mid-run, the scenario where adaptivity pays.
type StepSpeed struct {
	Before, After float64
	Switch        time.Duration
}

var _ SpeedProfile = StepSpeed{}

// At implements SpeedProfile.
func (s StepSpeed) At(t time.Duration) float64 {
	if t < s.Switch {
		return s.Before
	}
	return s.After
}

func (s StepSpeed) String() string {
	return fmt.Sprintf("step(%.2f→%.2f@%v)", s.Before, s.After, s.Switch)
}

// SquareSpeed alternates between Lo and Hi each half Period, modeling
// periodic interference (co-located batch jobs, GC pauses at scale).
type SquareSpeed struct {
	Lo, Hi float64
	Period time.Duration
}

var _ SpeedProfile = SquareSpeed{}

// At implements SpeedProfile.
func (s SquareSpeed) At(t time.Duration) float64 {
	if s.Period <= 0 {
		return s.Hi
	}
	if t%s.Period < s.Period/2 {
		return s.Lo
	}
	return s.Hi
}

func (s SquareSpeed) String() string {
	return fmt.Sprintf("square(%.2f/%.2f,T=%v)", s.Lo, s.Hi, s.Period)
}
