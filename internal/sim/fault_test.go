package sim

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/fault"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/workload"
)

// A chaos schedule from internal/fault satisfies the simulator's speed
// contract structurally — the same script drives sim runs and live
// tests.
var _ SpeedProfile = (*fault.Schedule)(nil)

// faultConfig builds a 4-server run where server 0 follows the given
// chaos schedule and everyone else runs at nominal speed.
func faultConfig(t *testing.T, chaos *fault.Schedule) Config {
	t.Helper()
	const servers = 4
	fanout := dist.UniformInt{Lo: 1, Hi: 4}
	demand := dist.Exponential{M: time.Millisecond}
	rate, err := workload.RateForLoad(0.6, servers, 1.0, fanout.Mean(), demand.Mean())
	if err != nil {
		t.Fatalf("RateForLoad: %v", err)
	}
	return Config{
		Servers:  servers,
		Policy:   core.Factory(core.DefaultOptions()),
		Adaptive: true,
		Workload: workload.Config{
			Keys:       20000,
			KeySkew:    0.9,
			Fanout:     fanout,
			Demand:     demand,
			RatePerSec: rate,
		},
		Requests: 1500,
		Seed:     42,
		SpeedFor: func(id sched.ServerID) SpeedProfile {
			if id == 0 && chaos != nil {
				return chaos
			}
			return ConstantSpeed{V: 1}
		},
	}
}

func TestFaultScheduleDrivesSimulation(t *testing.T) {
	baseline, err := Run(faultConfig(t, nil))
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	chaos := fault.NewSchedule().Crash(300 * time.Millisecond).Recover(600 * time.Millisecond)
	faulty, err := Run(faultConfig(t, chaos))
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	// Work conservation survives the crash window: every request still
	// completes once the server recovers.
	if faulty.Completed != 1500 {
		t.Fatalf("chaos run completed %d of 1500 requests", faulty.Completed)
	}
	// A 300ms outage on one of four servers must cost completion time.
	if faulty.RCT.Mean() <= baseline.RCT.Mean() {
		t.Fatalf("crash did not hurt: faulty mean %v <= baseline mean %v",
			faulty.RCT.Mean(), baseline.RCT.Mean())
	}
}

func TestBrownoutScheduleSlowsServer(t *testing.T) {
	chaos := fault.NewSchedule().Brownout(0, 0.25)
	res, err := Run(faultConfig(t, chaos))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != 1500 {
		t.Fatalf("completed %d of 1500", res.Completed)
	}
	// The browned-out server serves at quarter speed for the whole run,
	// so it must log proportionally more busy time per op — visible as
	// utilization well above the cluster's ~0.6 average.
	slow := res.Servers[0].Utilization
	if slow <= 0 {
		t.Fatal("browned-out server never worked")
	}
	for _, s := range res.Servers[1:] {
		if s.Utilization <= 0 {
			t.Fatalf("server %d idle for the whole run", s.Server)
		}
	}
}
