package sim

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/workload"
)

// TestRandomConfigSpaceQuick sweeps random corners of the Config space
// and asserts the global invariants: every request completes, runs are
// deterministic, and no configuration panics or wedges.
func TestRandomConfigSpaceQuick(t *testing.T) {
	factories := []sched.Factory{
		sched.FCFSFactory,
		sched.RandomFactory,
		sched.SJFFactory,
		sched.ReinSBFFactory,
		sched.ReinMLFactory(2 * time.Millisecond),
		sched.LeastSlackFactory,
		core.Factory(core.DefaultOptions()),
	}
	f := func(seed uint64) bool {
		rng := dist.NewRand(seed)
		servers := 2 + rng.IntN(12)
		fanout := dist.UniformInt{Lo: 1, Hi: 1 + rng.IntN(9)}
		demand := dist.Exponential{M: time.Duration(200+rng.IntN(2000)) * time.Microsecond}
		rho := 0.2 + 0.6*rng.Float64()
		rate, err := workload.RateForLoad(rho, servers, 1.0, fanout.Mean(), demand.Mean())
		if err != nil {
			t.Log(err)
			return false
		}
		cfg := Config{
			Servers:  servers,
			Policy:   factories[rng.IntN(len(factories))],
			Adaptive: rng.IntN(2) == 0,
			Workers:  1 + rng.IntN(3),
			Clients:  1 + rng.IntN(4),
			Workload: workload.Config{
				Keys:    5000 + rng.IntN(50000),
				KeySkew: rng.Float64(), // < 1: keeps the hottest key stable
				Fanout:  fanout,
				Demand:  demand, RatePerSec: rate,
			},
			Requests: 300 + rng.IntN(700),
			Seed:     seed,
		}
		if rng.IntN(3) == 0 && servers >= 3 {
			cfg.Replicas = 2 + rng.IntN(2) // 2..3, always <= servers
			cfg.ReplicaSelect = ReplicaPolicy(rng.IntN(5))
		}
		if rng.IntN(4) == 0 {
			cfg.Preemptive = true
		}
		if cfg.Replicas >= 2 && rng.IntN(3) == 0 {
			cfg.HedgeDelay = time.Duration(1+rng.IntN(20)) * time.Millisecond
		}
		a, err := Run(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if a.Completed != uint64(cfg.Requests) {
			t.Logf("seed %d: completed %d of %d", seed, a.Completed, cfg.Requests)
			return false
		}
		b, err := Run(cfg)
		if err != nil || a.RCT.Mean() != b.RCT.Mean() {
			t.Logf("seed %d: nondeterministic (%v vs %v, err %v)", seed, a.RCT.Mean(), b.RCT.Mean(), err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
