package sim

import (
	"math"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/workload"
)

// testConfig builds a small cluster at the given utilization.
func testConfig(t *testing.T, policy sched.Factory, adaptive bool, rho float64, requests int) Config {
	t.Helper()
	const servers = 8
	fanout := dist.UniformInt{Lo: 1, Hi: 7} // mean 4
	demand := dist.Exponential{M: time.Millisecond}
	rate, err := workload.RateForLoad(rho, servers, 1.0, fanout.Mean(), demand.Mean())
	if err != nil {
		t.Fatalf("RateForLoad: %v", err)
	}
	return Config{
		Servers:  servers,
		Policy:   policy,
		Adaptive: adaptive,
		Workload: workload.Config{
			Keys:       50000,
			KeySkew:    0.9,
			Fanout:     fanout,
			Demand:     demand,
			RatePerSec: rate,
		},
		Requests: requests,
		Seed:     42,
	}
}

func TestRunValidation(t *testing.T) {
	base := testConfig(t, sched.FCFSFactory, false, 0.5, 10)
	bad := base
	bad.Servers = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero servers should error")
	}
	bad = base
	bad.Policy = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("nil policy should error")
	}
	bad = base
	bad.Requests = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero requests should error")
	}
	bad = base
	bad.Workload.Keys = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("bad workload should error")
	}
}

func TestRunCompletesAllRequests(t *testing.T) {
	cfg := testConfig(t, sched.FCFSFactory, false, 0.5, 2000)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != 2000 {
		t.Fatalf("Completed = %d, want 2000", res.Completed)
	}
	if res.GeneratedRequests != 2000 {
		t.Fatalf("GeneratedRequests = %d, want 2000", res.GeneratedRequests)
	}
	if res.GeneratedOps < 2000 {
		t.Fatalf("GeneratedOps = %d, want >= requests", res.GeneratedOps)
	}
	if res.Policy != "FCFS" {
		t.Fatalf("Policy = %q, want FCFS", res.Policy)
	}
	if res.RCT.Count() != 2000 {
		t.Fatalf("RCT count = %d, want 2000", res.RCT.Count())
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("SimulatedTime should be positive")
	}
}

func TestRunLowLoadRCTNearDemand(t *testing.T) {
	// At 5% load with fanout 1 and deterministic demand, RCT should be
	// demand + 2 network hops with almost no queueing.
	cfg := Config{
		Servers:  4,
		Policy:   sched.FCFSFactory,
		NetDelay: dist.Deterministic{V: 50 * time.Microsecond},
		Workload: workload.Config{
			Keys:       1000,
			Fanout:     dist.ConstInt{N: 1},
			Demand:     dist.Deterministic{V: time.Millisecond},
			RatePerSec: 200, // rho = 200*1ms/4 = 5%
		},
		Requests: 3000,
		Seed:     7,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := time.Millisecond + 100*time.Microsecond
	if res.RCT.P50() < want || res.RCT.P50() > want+500*time.Microsecond {
		t.Fatalf("P50 RCT = %v, want within [%v, %v]", res.RCT.P50(), want, want+500*time.Microsecond)
	}
}

func TestRunMM1SojournMatchesTheory(t *testing.T) {
	// Single server, fanout 1, exponential demand, rho=0.5:
	// M/M/1 mean sojourn = E[S]/(1-rho) = 2ms.
	cfg := Config{
		Servers:  1,
		Policy:   sched.FCFSFactory,
		NetDelay: dist.Deterministic{V: 0},
		Workload: workload.Config{
			Keys:       1000,
			Fanout:     dist.ConstInt{N: 1},
			Demand:     dist.Exponential{M: time.Millisecond},
			RatePerSec: 500,
		},
		Requests: 60000,
		Warmup:   2 * time.Second,
		Seed:     11,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := res.RCT.Mean().Seconds()
	want := 0.002
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("mean sojourn = %v, want ~2ms (M/M/1)", res.RCT.Mean())
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := testConfig(t, sched.ReinSBFFactory, false, 0.6, 1500)
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.RCT.Mean() != b.RCT.Mean() || a.RCT.Max() != b.RCT.Max() {
		t.Fatalf("same seed diverged: %v vs %v", a.RCT.Mean(), b.RCT.Mean())
	}
}

func TestRunSeedChangesOutcome(t *testing.T) {
	cfg := testConfig(t, sched.FCFSFactory, false, 0.6, 1500)
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg.Seed = 43
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.RCT.Mean() == b.RCT.Mean() {
		t.Fatal("different seeds produced identical means (suspicious)")
	}
}

func TestDASBeatsFCFSUnderLoad(t *testing.T) {
	const rho, n = 0.8, 8000
	fcfs, err := Run(testConfig(t, sched.FCFSFactory, false, rho, n))
	if err != nil {
		t.Fatalf("Run FCFS: %v", err)
	}
	das, err := Run(testConfig(t, core.Factory(core.DefaultOptions()), true, rho, n))
	if err != nil {
		t.Fatalf("Run DAS: %v", err)
	}
	improvement := 1 - das.RCT.Mean().Seconds()/fcfs.RCT.Mean().Seconds()
	if improvement < 0.10 {
		t.Fatalf("DAS improvement over FCFS = %.1f%%, want >= 10%% (FCFS %v, DAS %v)",
			improvement*100, fcfs.RCT.Mean(), das.RCT.Mean())
	}
}

func TestAdaptiveDASBeatsStaticWhenServerDegrades(t *testing.T) {
	const n = 6000
	slowSet := func(id sched.ServerID) SpeedProfile {
		if id < 2 { // 2 of 8 servers at 40% speed
			return ConstantSpeed{V: 0.4}
		}
		return ConstantSpeed{V: 1}
	}
	run := func(adaptive bool) time.Duration {
		cfg := testConfig(t, core.Factory(core.DefaultOptions()), adaptive, 0.55, n)
		cfg.SpeedFor = slowSet
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.RCT.Mean()
	}
	static := run(false)
	adaptive := run(true)
	if adaptive >= static {
		t.Fatalf("adaptive DAS (%v) should beat static DAS (%v) with slow servers", adaptive, static)
	}
}

func TestRunWarmupDiscards(t *testing.T) {
	cfg := testConfig(t, sched.FCFSFactory, false, 0.5, 2000)
	cfg.Warmup = 500 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed >= 2000 {
		t.Fatalf("Completed = %d, want < 2000 with warmup", res.Completed)
	}
	if res.Completed == 0 {
		t.Fatal("warmup discarded everything")
	}
}

func TestRunSeriesRecorded(t *testing.T) {
	cfg := testConfig(t, sched.FCFSFactory, false, 0.5, 3000)
	cfg.SeriesWindow = 100 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	pts := res.Series.Points()
	if len(pts) < 3 {
		t.Fatalf("series has %d points, want several", len(pts))
	}
	var total uint64
	for _, p := range pts {
		total += p.Count
	}
	if total != res.Completed {
		t.Fatalf("series counts %d, want %d", total, res.Completed)
	}
}

func TestRunMultiWorkerServers(t *testing.T) {
	cfg := testConfig(t, sched.FCFSFactory, false, 0.5, 2000)
	cfg.Workers = 4
	// 4x service capacity: recompute rate for same rho means 4x rate;
	// instead just verify it completes and is faster than 1 worker at
	// the same arrival rate.
	res4, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg.Workers = 1
	res1, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res4.Completed != 2000 || res1.Completed != 2000 {
		t.Fatal("both runs should complete all requests")
	}
	if res4.RCT.Mean() >= res1.RCT.Mean() {
		t.Fatalf("4 workers (%v) should beat 1 worker (%v)", res4.RCT.Mean(), res1.RCT.Mean())
	}
}

func TestRunQueueStats(t *testing.T) {
	res, err := Run(testConfig(t, sched.FCFSFactory, false, 0.85, 4000))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.MeanQueueLen <= 0 {
		t.Fatalf("MeanQueueLen = %v, want positive at rho=0.85", res.MeanQueueLen)
	}
	if res.QueueWait.Count() == 0 || res.OpLatency.Count() == 0 {
		t.Fatal("operation metrics missing")
	}
	if res.OpLatency.Mean() <= res.QueueWait.Mean() {
		t.Fatal("op latency must exceed queue wait (adds service time)")
	}
}

func TestRunAllPoliciesComplete(t *testing.T) {
	factories := map[string]sched.Factory{
		"fcfs":   sched.FCFSFactory,
		"random": sched.RandomFactory,
		"sjf":    sched.SJFFactory,
		"sbf":    sched.ReinSBFFactory,
		"lrpt":   sched.LRPTFactory,
		"slack":  sched.LeastSlackFactory,
		"reinml": sched.ReinMLFactory(2 * time.Millisecond),
		"das":    core.Factory(core.DefaultOptions()),
	}
	for name, f := range factories {
		adaptive := name == "das" || name == "slack"
		res, err := Run(testConfig(t, f, adaptive, 0.6, 800))
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		if res.Completed != 800 {
			t.Fatalf("%s: Completed = %d, want 800", name, res.Completed)
		}
	}
}

func TestRunReplicaValidation(t *testing.T) {
	cfg := testConfig(t, sched.FCFSFactory, false, 0.5, 10)
	cfg.Replicas = 100 // > servers
	if _, err := Run(cfg); err == nil {
		t.Fatal("replicas > servers should error")
	}
	cfg = testConfig(t, sched.FCFSFactory, false, 0.5, 10)
	cfg.Replicas = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative replicas should error")
	}
	cfg = testConfig(t, sched.FCFSFactory, false, 0.5, 10)
	cfg.ReplicaSelect = ReplicaPolicy(99)
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown replica policy should error")
	}
}

func TestRunReplicationCompletes(t *testing.T) {
	for _, sel := range []ReplicaPolicy{
		PrimaryReplica, RandomReplica, FastestReplica,
		RoundRobinReplica, LeastOutstandingReplica,
	} {
		cfg := testConfig(t, core.Factory(core.DefaultOptions()), true, 0.6, 1500)
		cfg.Replicas = 3
		cfg.ReplicaSelect = sel
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("policy %d: %v", sel, err)
		}
		if res.Completed != 1500 {
			t.Fatalf("policy %d: Completed = %d, want 1500", sel, res.Completed)
		}
	}
}

func TestFastestReplicaHelpsWithSlowServers(t *testing.T) {
	// With 3-way replication and adaptive selection, reads route around
	// the slow servers; primary-only routing cannot.
	slowSet := func(id sched.ServerID) SpeedProfile {
		if id < 2 {
			return ConstantSpeed{V: 0.3}
		}
		return ConstantSpeed{V: 1}
	}
	run := func(sel ReplicaPolicy, replicas int) time.Duration {
		cfg := testConfig(t, core.Factory(core.DefaultOptions()), true, 0.45, 5000)
		cfg.SpeedFor = slowSet
		cfg.Replicas = replicas
		cfg.ReplicaSelect = sel
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.RCT.Mean()
	}
	primary := run(PrimaryReplica, 1)
	fastest := run(FastestReplica, 3)
	if fastest >= primary {
		t.Fatalf("fastest-replica (%v) should beat primary-only (%v) with slow servers", fastest, primary)
	}
}

func TestOracleTaggingCompletesAndHelps(t *testing.T) {
	// Oracle DAS (perfect info) should do at least as well as
	// piggyback-adaptive DAS under degraded servers.
	slowSet := func(id sched.ServerID) SpeedProfile {
		if id < 2 {
			return ConstantSpeed{V: 0.4}
		}
		return ConstantSpeed{V: 1}
	}
	run := func(oracle bool) time.Duration {
		cfg := testConfig(t, core.Factory(core.DefaultOptions()), !oracle, 0.5, 6000)
		cfg.Oracle = oracle
		cfg.SpeedFor = slowSet
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Completed != 6000 {
			t.Fatalf("Completed = %d", res.Completed)
		}
		return res.RCT.Mean()
	}
	adaptive := run(false)
	oracle := run(true)
	// Oracle information can only help on average; allow a little
	// stochastic slack.
	if float64(oracle) > float64(adaptive)*1.10 {
		t.Fatalf("oracle DAS (%v) should not lose to piggyback DAS (%v)", oracle, adaptive)
	}
}

func TestTraceReplay(t *testing.T) {
	// Generate a trace, then replay it: results must match the
	// generator-driven run exactly (common random numbers aside, the
	// replay has no generator randomness left — only net-delay RNG,
	// which shares the seed).
	base := testConfig(t, sched.FCFSFactory, false, 0.6, 1200)
	gen, err := workload.NewGenerator(base.Workload, base.Seed)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	trace := gen.Take(1200)

	direct, err := Run(base)
	if err != nil {
		t.Fatalf("Run direct: %v", err)
	}
	replayCfg := base
	replayCfg.Trace = trace
	replayCfg.Requests = 0
	replayed, err := Run(replayCfg)
	if err != nil {
		t.Fatalf("Run replay: %v", err)
	}
	if direct.RCT.Mean() != replayed.RCT.Mean() {
		t.Fatalf("replay mean %v != direct mean %v", replayed.RCT.Mean(), direct.RCT.Mean())
	}
	if replayed.Completed != 1200 {
		t.Fatalf("replay completed %d, want 1200", replayed.Completed)
	}
}

func TestTraceReplayTruncated(t *testing.T) {
	base := testConfig(t, sched.FCFSFactory, false, 0.6, 500)
	gen, err := workload.NewGenerator(base.Workload, base.Seed)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	cfg := base
	cfg.Trace = gen.Take(500)
	cfg.Requests = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != 100 {
		t.Fatalf("Completed = %d, want truncation to 100", res.Completed)
	}
}

func TestTraceValidation(t *testing.T) {
	base := testConfig(t, sched.FCFSFactory, false, 0.6, 10)
	base.Trace = []workload.Request{
		{ID: 1, Arrival: 2 * time.Second, Ops: []workload.OpSpec{{Key: "a", Demand: time.Millisecond}}},
		{ID: 2, Arrival: time.Second, Ops: []workload.OpSpec{{Key: "b", Demand: time.Millisecond}}},
	}
	if _, err := Run(base); err == nil {
		t.Fatal("decreasing trace arrivals should error")
	}
}

func TestClosedLoopCompletesAll(t *testing.T) {
	cfg := testConfig(t, sched.FCFSFactory, false, 0.5, 3000)
	cfg.ClosedLoop = 16
	cfg.Workload.RatePerSec = 0 // ignored in closed loop
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != 3000 {
		t.Fatalf("Completed = %d, want 3000", res.Completed)
	}
}

func TestClosedLoopConcurrencyBounded(t *testing.T) {
	// With N slots and no think time, at most N requests are in flight,
	// so mean queue length across 8 servers is bounded by N.
	cfg := testConfig(t, sched.FCFSFactory, false, 0.5, 4000)
	cfg.ClosedLoop = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 8 slots * up to 7 ops each = 56 ops max in the system; per-server
	// queues must stay far below an open-loop overload.
	if res.MeanQueueLen > 56 {
		t.Fatalf("MeanQueueLen = %v, impossible under closed loop", res.MeanQueueLen)
	}
}

func TestClosedLoopThinkTimeSlowsThroughput(t *testing.T) {
	base := testConfig(t, sched.FCFSFactory, false, 0.5, 2000)
	base.ClosedLoop = 8
	noThink, err := Run(base)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	withThink := base
	withThink.ThinkTime = dist.Deterministic{V: 5 * time.Millisecond}
	slow, err := Run(withThink)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if slow.SimulatedTime <= noThink.SimulatedTime {
		t.Fatalf("think time should stretch the run: %v vs %v",
			slow.SimulatedTime, noThink.SimulatedTime)
	}
}

func TestClosedLoopRejectsTrace(t *testing.T) {
	cfg := testConfig(t, sched.FCFSFactory, false, 0.5, 10)
	cfg.ClosedLoop = 4
	cfg.Trace = []workload.Request{{ID: 1, Ops: []workload.OpSpec{{Key: "a", Demand: time.Millisecond}}}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("closed loop + trace should error")
	}
	cfg = testConfig(t, sched.FCFSFactory, false, 0.5, 10)
	cfg.ClosedLoop = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative closed loop should error")
	}
}

func TestPerServerStats(t *testing.T) {
	cfg := testConfig(t, sched.FCFSFactory, false, 0.6, 3000)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Servers) != 8 {
		t.Fatalf("Servers = %d entries, want 8", len(res.Servers))
	}
	var totalServed uint64
	for _, sl := range res.Servers {
		if sl.Utilization <= 0 || sl.Utilization > 1.01 {
			t.Fatalf("server %d utilization = %v", sl.Server, sl.Utilization)
		}
		totalServed += sl.Served
	}
	if totalServed != res.GeneratedOps {
		t.Fatalf("served %d ops, generated %d", totalServed, res.GeneratedOps)
	}
	// Aggregate utilization should sit near the offered load (0.6),
	// modulo drain time at the end of the run.
	var sum float64
	for _, sl := range res.Servers {
		sum += sl.Utilization
	}
	mean := sum / 8
	if mean < 0.4 || mean > 0.75 {
		t.Fatalf("mean utilization %v, want near 0.6", mean)
	}
}

func TestSkewConcentratesUtilization(t *testing.T) {
	run := func(skew float64) (maxU, minU float64) {
		cfg := testConfig(t, sched.FCFSFactory, false, 0.5, 4000)
		cfg.Workload.KeySkew = skew
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		minU = 2.0
		for _, sl := range res.Servers {
			if sl.Utilization > maxU {
				maxU = sl.Utilization
			}
			if sl.Utilization < minU {
				minU = sl.Utilization
			}
		}
		return maxU, minU
	}
	maxLow, minLow := run(0)
	maxHigh, minHigh := run(1.0)
	spreadLow := maxLow - minLow
	spreadHigh := maxHigh - minHigh
	if spreadHigh <= spreadLow {
		t.Fatalf("skew should widen utilization spread: %.3f (skew 1.0) vs %.3f (skew 0)",
			spreadHigh, spreadLow)
	}
}

func TestByFanoutBreakdown(t *testing.T) {
	cfg := testConfig(t, sched.FCFSFactory, false, 0.6, 4000)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.ByFanout) == 0 {
		t.Fatal("ByFanout empty")
	}
	var total uint64
	for bucket, s := range res.ByFanout {
		if bucket != fanoutBucket(bucket) {
			t.Fatalf("bucket %d is not a power of two", bucket)
		}
		total += s.Count()
	}
	if total != res.Completed {
		t.Fatalf("ByFanout counts %d, want %d", total, res.Completed)
	}
	// Wider requests must have higher mean RCT (max of more ops).
	if s1, s8 := res.ByFanout[1], res.ByFanout[8]; s1 != nil && s8 != nil {
		if s8.Mean() <= s1.Mean() {
			t.Fatalf("fanout-8 mean (%v) should exceed fanout-1 mean (%v)", s8.Mean(), s1.Mean())
		}
	}
}

func TestFanoutBucket(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 17: 32}
	for k, want := range cases {
		if got := fanoutBucket(k); got != want {
			t.Fatalf("fanoutBucket(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestHedgingValidation(t *testing.T) {
	cfg := testConfig(t, sched.FCFSFactory, false, 0.5, 10)
	cfg.HedgeDelay = 10 * time.Millisecond
	if _, err := Run(cfg); err == nil {
		t.Fatal("hedging without replicas should error")
	}
	cfg.HedgeDelay = -time.Second
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative hedge delay should error")
	}
}

func TestHedgingCompletesAndCountsDuplicates(t *testing.T) {
	cfg := testConfig(t, sched.FCFSFactory, false, 0.6, 3000)
	cfg.Replicas = 3
	cfg.HedgeDelay = 5 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != 3000 {
		t.Fatalf("Completed = %d, want 3000", res.Completed)
	}
	if res.HedgedOps == 0 {
		t.Fatal("expected some hedged duplicates at load 0.6 with 5ms delay")
	}
	if res.HedgedOps > res.GeneratedOps {
		t.Fatalf("hedges %d exceed primary ops %d", res.HedgedOps, res.GeneratedOps)
	}
}

func TestHedgingCutsTailUnderHeterogeneity(t *testing.T) {
	// Hedging pays when stragglers come from slow servers rather than
	// from queueing: a duplicate sent to a healthy replica finishes
	// first. In a homogeneous queue-bound cluster blind hedging only
	// adds load (that non-result is part of experiment E17).
	slowSet := func(id sched.ServerID) SpeedProfile {
		if id < 2 {
			return ConstantSpeed{V: 0.25}
		}
		return ConstantSpeed{V: 1}
	}
	base := testConfig(t, sched.FCFSFactory, false, 0.3, 8000)
	base.SpeedFor = slowSet
	base.Replicas = 3
	plain, err := Run(base)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	hedged := base
	hedged.HedgeDelay = 10 * time.Millisecond
	h, err := Run(hedged)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if h.RCT.P99() >= plain.RCT.P99() {
		t.Fatalf("hedging p99 %v should beat plain %v with slow servers", h.RCT.P99(), plain.RCT.P99())
	}
}

func TestPreemptiveCompletesAll(t *testing.T) {
	cfg := testConfig(t, sched.SJFFactory, false, 0.7, 4000)
	cfg.Preemptive = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != 4000 {
		t.Fatalf("Completed = %d, want 4000", res.Completed)
	}
}

func TestPreemptiveNoopForNonKeyer(t *testing.T) {
	// FCFS has no priority key; preemptive mode degrades to
	// non-preemptive rather than erroring mid-run.
	cfg := testConfig(t, sched.FCFSFactory, false, 0.6, 1500)
	cfg.Preemptive = true
	pre, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg.Preemptive = false
	plain, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if pre.RCT.Mean() != plain.RCT.Mean() {
		t.Fatalf("FCFS preemptive %v != plain %v", pre.RCT.Mean(), plain.RCT.Mean())
	}
}

func TestPreemptiveSRPTImprovesMean(t *testing.T) {
	// Preemptive SJF/SBF should not lose to the non-preemptive version
	// on mean (single-machine SRPT theory, lifted approximately).
	run := func(preempt bool) time.Duration {
		cfg := testConfig(t, sched.ReinSBFFactory, false, 0.8, 8000)
		cfg.Preemptive = preempt
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Completed != 8000 {
			t.Fatalf("Completed = %d", res.Completed)
		}
		return res.RCT.Mean()
	}
	plain := run(false)
	pre := run(true)
	if float64(pre) > float64(plain)*1.05 {
		t.Fatalf("preemptive SBF mean %v should not exceed non-preemptive %v", pre, plain)
	}
}

func TestPreemptiveWorkConserved(t *testing.T) {
	// Every generated op completes exactly once even with preemptions.
	cfg := testConfig(t, core.Factory(core.DefaultOptions()), true, 0.85, 5000)
	cfg.Preemptive = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var served uint64
	for _, sl := range res.Servers {
		served += sl.Served
	}
	if served != res.GeneratedOps {
		t.Fatalf("served %d ops, generated %d", served, res.GeneratedOps)
	}
	if res.Completed != 5000 {
		t.Fatalf("Completed = %d", res.Completed)
	}
}
