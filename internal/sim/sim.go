// Package sim is the distributed key-value store simulator used for the
// paper's evaluation: N servers behind a consistent-hash ring, each with
// a pluggable operation-scheduling policy, clients issuing multiget
// requests whose operations fan out in parallel, a network delay model,
// and the piggybacked feedback path that feeds DAS's adaptive estimator.
//
// A simulation is fully deterministic for a fixed Config (including
// Seed): the event engine breaks ties by scheduling order and every
// random stream is seeded independently.
package sim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/des"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/replica"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/topology"
	"github.com/daskv/daskv/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// Servers is the cluster size.
	Servers int
	// Vnodes per server on the hash ring (topology.DefaultVnodes if 0).
	Vnodes int
	// Workers is the service concurrency per server (default 1).
	Workers int

	// Policy builds each server's scheduling queue.
	Policy sched.Factory
	// Preemptive lets an arriving higher-priority operation preempt
	// one in service: the preempted op returns to the queue with its
	// remaining demand. Requires a policy implementing sched.Keyer
	// (FCFS and Random do not). Real key-value servers rarely preempt —
	// the E18 ablation quantifies what that forgoes.
	Preemptive bool
	// Adaptive enables DAS tagging from piggybacked feedback; when
	// false, tags carry only static demand information (what Rein and
	// the DAS-static ablation see).
	Adaptive bool
	// Oracle replaces feedback-based tagging with perfect,
	// zero-staleness knowledge of every server's queued backlog and
	// current speed at dispatch time — the centralized-information
	// upper bound the paper argues is too expensive to collect. Takes
	// precedence over Adaptive.
	Oracle bool
	// Estimator configures the adaptive views (defaults if zero).
	Estimator core.EstimatorConfig
	// Clients is the number of independent front-end clients, each
	// with its own estimator view (default 4). Requests are assigned
	// round-robin.
	Clients int

	// Replicas is how many servers hold each key (default 1). With
	// replication, reads go to one replica chosen per ReplicaSelect.
	Replicas int
	// ReplicaSelect picks the serving replica for each operation
	// (default PrimaryReplica).
	ReplicaSelect ReplicaPolicy

	// Workload is the request stream description. Ignored when Trace
	// is provided.
	Workload workload.Config
	// Trace, when non-empty, replays a fixed request stream (for
	// bit-exact cross-policy comparisons and archived workloads)
	// instead of generating one from Workload. Requests are replayed
	// in slice order; arrivals must be non-decreasing.
	Trace []workload.Request
	// Requests is how many requests to generate (required unless Trace
	// is set; with a trace it optionally truncates the replay).
	Requests int

	// HedgeDelay, when positive, sends a duplicate of any operation
	// still incomplete after this delay to a different replica; the
	// first copy to finish completes the op ("tail at scale" hedging).
	// Requires Replicas >= 2. Hedged duplicates consume real capacity,
	// so this trades extra load for tail — experiment E17 quantifies
	// the tradeoff against scheduling.
	HedgeDelay time.Duration

	// ClosedLoop, when positive, switches from open-loop Poisson
	// arrivals to N closed-loop request slots: each slot issues its
	// next multiget when the previous one completes (plus ThinkTime).
	// Workload.RatePerSec is ignored; total requests still honors
	// Requests. This is the regime interactive benchmarks (and E12's
	// live driver) run in, where throughput self-throttles and
	// scheduling moves the latency distribution rather than its mean.
	ClosedLoop int
	// ThinkTime is the per-slot gap between completing one request and
	// issuing the next (closed loop only; default 0).
	ThinkTime dist.Duration
	// Warmup discards requests arriving before this instant from the
	// metrics (queues still see them).
	Warmup time.Duration

	// NetDelay is the one-way network latency distribution (default:
	// deterministic 50µs).
	NetDelay dist.Duration

	// SpeedFor assigns each server a speed profile (default: constant
	// nominal speed).
	SpeedFor func(sched.ServerID) SpeedProfile

	// Seed drives every random stream in the run.
	Seed uint64

	// SeriesWindow, when positive, records a windowed mean-RCT time
	// series (for the time-varying-load figure).
	SeriesWindow time.Duration
}

// ReplicaPolicy selects which replica serves a read. Each maps onto a
// replica.Selector policy, so the simulator and the live client route
// through identical selection code.
type ReplicaPolicy int

// Replica selection strategies.
const (
	// PrimaryReplica always reads the ring primary (no replication
	// benefit; the default and the paper's single-copy model).
	PrimaryReplica ReplicaPolicy = iota
	// RandomReplica spreads reads uniformly over the replica set.
	RandomReplica
	// FastestReplica reads the replica with the earliest estimated
	// finish per the client's adaptive view, with Tars-style in-flight
	// compensation — an extension combining DAS's estimator with
	// load-aware replica selection.
	FastestReplica
	// RoundRobinReplica rotates reads over the replica set.
	RoundRobinReplica
	// LeastOutstandingReplica reads the replica with the fewest of the
	// issuing client's operations in flight.
	LeastOutstandingReplica
)

// selectorPolicy maps the simulator policy onto the replica package's.
func (p ReplicaPolicy) selectorPolicy() replica.Policy {
	switch p {
	case RandomReplica:
		return replica.Random
	case FastestReplica:
		return replica.Adaptive
	case RoundRobinReplica:
		return replica.RoundRobin
	case LeastOutstandingReplica:
		return replica.LeastOutstanding
	default:
		return replica.Primary
	}
}

func (c Config) withDefaults() Config {
	if c.Vnodes == 0 {
		c.Vnodes = topology.DefaultVnodes
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.NetDelay == nil {
		c.NetDelay = dist.Deterministic{V: 50 * time.Microsecond}
	}
	if c.SpeedFor == nil {
		c.SpeedFor = func(sched.ServerID) SpeedProfile { return ConstantSpeed{V: 1} }
	}
	if (c.Estimator == core.EstimatorConfig{}) {
		c.Estimator = core.DefaultEstimatorConfig()
	}
	if c.ClosedLoop > 0 && c.Workload.RatePerSec <= 0 {
		// Closed loop paces itself; the generator still validates rate.
		c.Workload.RatePerSec = 1
	}
	return c
}

func (c Config) validate() error {
	if c.Servers <= 0 {
		return fmt.Errorf("sim: servers %d must be positive", c.Servers)
	}
	if c.Policy == nil {
		return fmt.Errorf("sim: policy factory required")
	}
	if c.Requests <= 0 && len(c.Trace) == 0 {
		return fmt.Errorf("sim: requests %d must be positive (or provide a trace)", c.Requests)
	}
	for i := 1; i < len(c.Trace); i++ {
		if c.Trace[i].Arrival < c.Trace[i-1].Arrival {
			return fmt.Errorf("sim: trace arrivals decrease at index %d", i)
		}
	}
	if c.Workers < 0 || c.Clients < 0 {
		return fmt.Errorf("sim: workers/clients must be non-negative")
	}
	if c.Replicas < 0 || (c.Replicas > 0 && c.Replicas > c.Servers) {
		return fmt.Errorf("sim: replicas %d must be within [1, servers]", c.Replicas)
	}
	if c.ClosedLoop < 0 {
		return fmt.Errorf("sim: closed-loop clients %d must be non-negative", c.ClosedLoop)
	}
	if c.ClosedLoop > 0 && len(c.Trace) > 0 {
		return fmt.Errorf("sim: closed-loop mode cannot replay a trace (trace arrivals are open-loop)")
	}
	if c.ReplicaSelect < PrimaryReplica || c.ReplicaSelect > LeastOutstandingReplica {
		return fmt.Errorf("sim: unknown replica policy %d", c.ReplicaSelect)
	}
	if c.HedgeDelay < 0 {
		return fmt.Errorf("sim: hedge delay %v must be non-negative", c.HedgeDelay)
	}
	if c.HedgeDelay > 0 && c.Replicas < 2 {
		return fmt.Errorf("sim: hedging requires >= 2 replicas, got %d", c.Replicas)
	}
	return nil
}

// Result holds the measured outcome of one run.
type Result struct {
	// Policy is the scheduling policy name.
	Policy string
	// RCT is the request completion time distribution (client-observed,
	// arrival to last response).
	RCT *metrics.Summary
	// OpLatency is the per-operation latency distribution (enqueue to
	// completion at the server).
	OpLatency *metrics.Summary
	// QueueWait is the per-operation queueing delay distribution.
	QueueWait *metrics.Summary
	// Series is the windowed mean RCT over time (nil unless requested).
	Series *metrics.TimeSeries
	// Completed counts requests that finished and were recorded.
	Completed uint64
	// GeneratedRequests and GeneratedOps count the offered work.
	GeneratedRequests uint64
	GeneratedOps      uint64
	// HedgedOps counts duplicate operations issued by hedging.
	HedgedOps uint64
	// SimulatedTime is the virtual instant the run ended.
	SimulatedTime time.Duration
	// MeanQueueLen is the time-averaged queue length across servers,
	// sampled at operation completions.
	MeanQueueLen float64
	// Servers summarizes per-server activity (indexed by ServerID).
	Servers []ServerLoad
	// ByFanout breaks the RCT distribution down by request width,
	// bucketed to powers of two (bucket 4 holds fanouts 3-4, bucket 8
	// holds 5-8, ...). Narrow and wide requests respond very
	// differently to scheduling; this exposes who pays for whose gain.
	ByFanout map[int]*metrics.Summary
	// Decisions aggregates the scheduling policy's ordering decisions
	// across all servers — SRPT-first vs LRPT-last classifications,
	// near-boundary pushes, and MaxDelay promotions. Nil when the
	// policy does not implement sched.DecisionReporter (e.g. FCFS).
	Decisions *sched.DecisionStats
}

// fanoutBucket rounds a fanout up to its power-of-two bucket.
func fanoutBucket(k int) int {
	b := 1
	for b < k {
		b <<= 1
	}
	return b
}

// ServerLoad is one server's activity summary.
type ServerLoad struct {
	Server sched.ServerID
	// Served is the number of operations completed.
	Served uint64
	// Utilization is busy time divided by simulated time.
	Utilization float64
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	var gen *workload.Generator
	if len(cfg.Trace) == 0 {
		g, err := workload.NewGenerator(cfg.Workload, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		gen = g
	}
	serverIDs := make([]sched.ServerID, cfg.Servers)
	for i := range serverIDs {
		serverIDs[i] = sched.ServerID(i)
	}
	ring, err := topology.NewRing(serverIDs, cfg.Vnodes)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	s := &simulator{
		cfg:  cfg,
		eng:  des.New(),
		ring: ring,
		gen:  gen,
		net:  rand.New(rand.NewPCG(cfg.Seed^0x6e7e7e7e, cfg.Seed+1)),
		result: &Result{
			RCT:       metrics.NewSummary(0),
			OpLatency: metrics.NewSummary(0),
			QueueWait: metrics.NewSummary(0),
			ByFanout:  make(map[int]*metrics.Summary),
		},
	}
	s.servers = make([]*server, cfg.Servers)
	for i := range s.servers {
		id := sched.ServerID(i)
		s.servers[i] = &server{
			id:        id,
			sim:       s,
			policy:    cfg.Policy(cfg.Seed + uint64(i)*7919),
			speed:     cfg.SpeedFor(id),
			workers:   cfg.Workers,
			speedEWMA: cfg.SpeedFor(id).At(0),
		}
	}
	s.result.Policy = s.servers[0].policy.Name()
	s.clients = make([]*client, cfg.Clients)
	for i := range s.clients {
		est, cerr := core.NewEstimator(cfg.Estimator)
		if cerr != nil {
			return nil, fmt.Errorf("sim: %w", cerr)
		}
		// The selector only consults the estimator when the run is
		// adaptive; otherwise FastestReplica degrades to primary order,
		// matching the live client's static-tagging mode.
		var selEst *core.Estimator
		if cfg.Adaptive {
			selEst = est
		}
		sel, serr := replica.NewSelector(cfg.ReplicaSelect.selectorPolicy(), selEst,
			cfg.Seed^(uint64(i)*0x9e3779b9+0x5e1ec7))
		if serr != nil {
			return nil, fmt.Errorf("sim: %w", serr)
		}
		s.clients[i] = &client{sim: s, est: est, sel: sel}
	}
	if cfg.SeriesWindow > 0 {
		// Horizon estimate, padded 2x for drain.
		var horizon time.Duration
		if len(cfg.Trace) > 0 {
			horizon = 2 * cfg.Trace[len(cfg.Trace)-1].Arrival
		} else {
			horizon = time.Duration(2 * float64(cfg.Requests) / cfg.Workload.RatePerSec * float64(time.Second))
		}
		s.result.Series = metrics.NewTimeSeries(cfg.SeriesWindow, horizon)
	}

	if cfg.ClosedLoop > 0 {
		for i := 0; i < cfg.ClosedLoop; i++ {
			s.issueClosedLoop(time.Duration(i) * time.Microsecond)
		}
	} else {
		s.scheduleNextArrival()
	}
	if err := s.eng.Run(0); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s.result.SimulatedTime = s.eng.Now()
	if s.queueSamples > 0 {
		s.result.MeanQueueLen = s.queueLenSum / float64(s.queueSamples)
	}
	s.result.Servers = make([]ServerLoad, len(s.servers))
	for i, sv := range s.servers {
		util := 0.0
		if s.result.SimulatedTime > 0 {
			util = float64(sv.busyTime) / float64(s.result.SimulatedTime)
		}
		s.result.Servers[i] = ServerLoad{
			Server:      sv.id,
			Served:      sv.served,
			Utilization: util,
		}
		if dr, ok := sv.policy.(sched.DecisionReporter); ok {
			if s.result.Decisions == nil {
				s.result.Decisions = &sched.DecisionStats{}
			}
			s.result.Decisions.Add(dr.Decisions())
		}
	}
	return s.result, nil
}

// simulator wires servers, clients and the generator to the engine.
type simulator struct {
	cfg     Config
	eng     *des.Engine
	ring    *topology.Ring
	gen     *workload.Generator
	net     *rand.Rand
	servers []*server
	clients []*client
	result  *Result

	generated    int
	queueLenSum  float64
	queueSamples uint64
}

// opState tracks one logical operation; hedging can put several copies
// of it in flight, and only the first completion counts.
type opState struct {
	req  *request
	done bool
}

// request tracks one in-flight multiget.
type request struct {
	id       sched.RequestID
	arrival  time.Duration
	pending  int
	fanout   int
	client   *client
	recorded bool
}

func (s *simulator) netDelay() time.Duration {
	d := s.cfg.NetDelay.Sample(s.net)
	if d < 0 {
		d = 0
	}
	return d
}

func (s *simulator) scheduleNextArrival() {
	if s.cfg.ClosedLoop > 0 {
		return // slots re-issue on completion instead
	}
	wr, ok := s.nextRequest()
	if !ok {
		return
	}
	s.generated++
	s.eng.At(wr.Arrival, func() { s.admit(wr) })
}

// issueClosedLoop admits one request for a closed-loop slot after delay.
// In closed-loop mode the request's generated arrival instant is
// ignored; it arrives when the slot fires.
func (s *simulator) issueClosedLoop(delay time.Duration) {
	if s.generated >= s.cfg.Requests {
		return
	}
	wr := s.gen.Next()
	s.generated++
	s.eng.Schedule(delay, func() { s.admit(wr) })
}

// nextRequest pulls from the replay trace or the generator.
func (s *simulator) nextRequest() (workload.Request, bool) {
	if len(s.cfg.Trace) > 0 {
		limit := len(s.cfg.Trace)
		if s.cfg.Requests > 0 && s.cfg.Requests < limit {
			limit = s.cfg.Requests
		}
		if s.generated >= limit {
			return workload.Request{}, false
		}
		return s.cfg.Trace[s.generated], true
	}
	if s.generated >= s.cfg.Requests {
		return workload.Request{}, false
	}
	return s.gen.Next(), true
}

func (s *simulator) admit(wr workload.Request) {
	now := s.eng.Now()
	cl := s.clients[int(wr.ID)%len(s.clients)]
	req := &request{id: wr.ID, arrival: now, pending: len(wr.Ops), fanout: len(wr.Ops), client: cl}
	var est *core.Estimator
	if s.cfg.Adaptive {
		est = cl.est
	}
	ops := make([]*sched.Op, len(wr.Ops))
	for i, spec := range wr.Ops {
		ops[i] = &sched.Op{
			Request: wr.ID,
			Index:   i,
			Server:  cl.route(spec.Key, spec.Demand, now),
			Key:     spec.Key,
			Demand:  spec.Demand,
			Payload: &opState{req: req},
		}
		// Size-annotated workloads carry the payload size into the
		// scheduler tags, exactly as the live wire's size hint does.
		ops[i].Tags.SizeBytes = spec.ValueBytes
	}
	if s.cfg.Oracle {
		s.oracleTag(ops, now)
	} else {
		core.Tag(ops, est, now)
	}
	s.result.GeneratedRequests++
	s.result.GeneratedOps += uint64(len(ops))
	for _, op := range ops {
		op := op
		srv := s.servers[op.Server]
		s.eng.Schedule(s.netDelay(), func() { srv.enqueue(op) })
		if s.cfg.HedgeDelay > 0 {
			s.armHedge(op)
		}
	}
	s.scheduleNextArrival()
}

// armHedge schedules a duplicate of op to an alternate replica, fired
// only if the logical op is still incomplete after the hedge delay.
func (s *simulator) armHedge(op *sched.Op) {
	state, ok := op.Payload.(*opState)
	if !ok {
		return
	}
	s.eng.Schedule(s.cfg.HedgeDelay, func() {
		if state.done {
			return
		}
		alt := s.alternateReplica(op.Key, op.Server)
		if alt == op.Server {
			return
		}
		state.req.client.sel.OnDispatch(alt)
		dup := &sched.Op{
			Request: op.Request,
			Index:   op.Index,
			Server:  alt,
			Key:     op.Key,
			Demand:  op.Demand,
			Tags:    op.Tags,
			Payload: state,
		}
		s.result.HedgedOps++
		srv := s.servers[alt]
		s.eng.Schedule(s.netDelay(), func() { srv.enqueue(dup) })
	})
}

// alternateReplica returns a replica holder of key other than avoid.
func (s *simulator) alternateReplica(key string, avoid sched.ServerID) sched.ServerID {
	for _, c := range s.ring.LookupN(key, s.cfg.Replicas) {
		if c != avoid {
			return c
		}
	}
	return avoid
}

// oracleTag stamps ops with perfect instantaneous server state: true
// current speed and true queued backlog, no staleness, no estimation.
func (s *simulator) oracleTag(ops []*sched.Op, now time.Duration) {
	if len(ops) == 0 {
		return
	}
	var maxDemand time.Duration
	for _, op := range ops {
		if op.Demand > maxDemand {
			maxDemand = op.Demand
		}
	}
	var maxScaled, requestFinish time.Duration
	for _, op := range ops {
		srv := s.servers[op.Server]
		speed := srv.speed.At(now)
		if speed <= 0 {
			speed = 1e-6
		}
		scaled := time.Duration(float64(op.Demand) / speed)
		wait := time.Duration(float64(srv.policy.BacklogDemand()) / speed)
		op.Tags.ScaledDemand = scaled
		op.Tags.ExpectedFinish = now + wait + scaled
		if scaled > maxScaled {
			maxScaled = scaled
		}
		if op.Tags.ExpectedFinish > requestFinish {
			requestFinish = op.Tags.ExpectedFinish
		}
	}
	for _, op := range ops {
		op.Tags.IssuedAt = now
		op.Tags.Fanout = len(ops)
		op.Tags.DemandBottleneck = maxDemand
		op.Tags.RemainingTime = maxScaled
		op.Tags.RequestFinish = requestFinish
	}
}

// route picks the serving replica for one operation through the shared
// replica.Selector (identical code to the live client) and records the
// dispatch for in-flight accounting; every dispatch is retired in
// onResponse.
func (cl *client) route(key string, demand, now time.Duration) sched.ServerID {
	var server sched.ServerID
	if cl.sim.cfg.Replicas <= 1 {
		server = cl.sim.ring.Lookup(key)
	} else {
		server = cl.sel.Pick(cl.sim.ring.LookupN(key, cl.sim.cfg.Replicas), demand, now)
	}
	cl.sel.OnDispatch(server)
	return server
}

// server is one simulated key-value node.
type server struct {
	id        sched.ServerID
	sim       *simulator
	policy    sched.Policy
	speed     SpeedProfile
	workers   int
	speedEWMA float64
	busyTime  time.Duration
	served    uint64
	inService []*serving
}

// serving is one operation currently occupying a worker.
type serving struct {
	op      *sched.Op
	timer   *des.Timer
	started time.Duration
	speed   float64
	key     float64
}

func (sv *server) enqueue(op *sched.Op) {
	now := sv.sim.eng.Now()
	sv.policy.Push(op, now)
	sv.dispatch()
	if sv.sim.cfg.Preemptive {
		sv.maybePreempt(now)
	}
}

func (sv *server) dispatch() {
	now := sv.sim.eng.Now()
	for len(sv.inService) < sv.workers {
		op := sv.policy.Pop(now)
		if op == nil {
			return
		}
		sv.startService(op, now)
	}
}

// startService begins serving op on a free worker.
func (sv *server) startService(op *sched.Op, now time.Duration) {
	speed := sv.speed.At(now)
	if speed <= 0 {
		speed = 1e-6 // a dead-slow server still makes progress
	}
	entry := &serving{op: op, started: now, speed: speed}
	if keyer, ok := sv.policy.(sched.Keyer); ok {
		entry.key = keyer.Key(op)
	}
	proc := time.Duration(float64(op.Demand) / speed)
	sv.sim.result.QueueWait.Observe(now - op.Enqueued)
	entry.timer = sv.sim.eng.Schedule(proc, func() { sv.finish(entry) })
	sv.inService = append(sv.inService, entry)
}

// maybePreempt swaps the best queued operation in for the worst
// in-service one when the policy's priority key says so.
func (sv *server) maybePreempt(now time.Duration) {
	keyer, ok := sv.policy.(sched.Keyer)
	if !ok || len(sv.inService) < sv.workers || sv.policy.Len() == 0 {
		return
	}
	victimIdx := 0
	for i, e := range sv.inService {
		if e.key > sv.inService[victimIdx].key {
			victimIdx = i
		}
	}
	victim := sv.inService[victimIdx]
	cand := sv.policy.Pop(now)
	if cand == nil {
		return
	}
	if keyer.Key(cand) >= victim.key {
		sv.policy.Push(cand, now)
		return
	}
	// Preempt: bank the victim's progress and requeue its remainder.
	if !victim.timer.Stop() {
		// The completion fires at this very instant; let it win.
		sv.policy.Push(cand, now)
		return
	}
	consumed := time.Duration(float64(now-victim.started) * victim.speed)
	sv.busyTime += time.Duration(float64(consumed) / victim.speed)
	remaining := victim.op.Demand - consumed
	if remaining <= 0 {
		remaining = time.Nanosecond
	}
	victim.op.Demand = remaining
	sv.inService = append(sv.inService[:victimIdx], sv.inService[victimIdx+1:]...)
	sv.policy.Push(victim.op, now)
	sv.startService(cand, now)
}

// finish completes an in-service entry.
func (sv *server) finish(entry *serving) {
	for i, e := range sv.inService {
		if e == entry {
			sv.inService = append(sv.inService[:i], sv.inService[i+1:]...)
			break
		}
	}
	sv.complete(entry.op, entry.speed)
}

// feedbackGain smooths the server's self-reported speed; a small gain
// rides out single-op noise while still tracking step changes within a
// few tens of completions.
const feedbackGain = 0.2

func (sv *server) complete(op *sched.Op, speed float64) {
	now := sv.sim.eng.Now()
	sv.busyTime += time.Duration(float64(op.Demand) / speed)
	sv.served++
	sv.speedEWMA += feedbackGain * (speed - sv.speedEWMA)
	sv.sim.result.OpLatency.Observe(now - op.Enqueued)
	sv.sim.queueLenSum += float64(sv.policy.Len())
	sv.sim.queueSamples++

	fb := core.Feedback{
		Server:   sv.id,
		QueueLen: sv.policy.Len(),
		Backlog:  sv.policy.BacklogDemand(),
		Speed:    sv.speedEWMA,
		At:       now,
	}
	state, ok := op.Payload.(*opState)
	if ok {
		sv.sim.eng.Schedule(sv.sim.netDelay(), func() {
			state.req.client.onResponse(state, fb)
		})
	}
	sv.dispatch()
}

// client is one front-end issuing requests and absorbing responses.
type client struct {
	sim *simulator
	est *core.Estimator
	sel *replica.Selector
}

func (cl *client) onResponse(state *opState, fb core.Feedback) {
	now := cl.sim.eng.Now()
	// Retire the dispatch against the answering server (hedged
	// duplicates were each recorded, so each response balances one).
	cl.sel.OnComplete(fb.Server)
	if cl.sim.cfg.Adaptive {
		cl.est.Observe(fb)
	}
	if state.done {
		return // a hedged copy already completed this logical op
	}
	state.done = true
	req := state.req
	req.pending--
	if req.pending > 0 || req.recorded {
		return
	}
	req.recorded = true
	if cl.sim.cfg.ClosedLoop > 0 {
		var think time.Duration
		if cl.sim.cfg.ThinkTime != nil {
			think = cl.sim.cfg.ThinkTime.Sample(cl.sim.net)
		}
		cl.sim.issueClosedLoop(think)
	}
	if req.arrival < cl.sim.cfg.Warmup {
		return
	}
	rct := now - req.arrival
	cl.sim.result.RCT.Observe(rct)
	cl.sim.result.Completed++
	bucket := fanoutBucket(req.fanout)
	fs := cl.sim.result.ByFanout[bucket]
	if fs == nil {
		fs = metrics.NewSummary(10_000)
		cl.sim.result.ByFanout[bucket] = fs
	}
	fs.Observe(rct)
	if cl.sim.result.Series != nil {
		cl.sim.result.Series.Observe(req.arrival, rct)
	}
}
