package fault

import (
	"bytes"
	"errors"
	"testing"
)

// memFile is an in-memory SyncFile recording writes and syncs.
type memFile struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Sync() error                 { m.syncs++; return nil }
func (m *memFile) Close() error                { m.closed = true; return nil }

func TestFileInjectorHealthyPassThrough(t *testing.T) {
	under := &memFile{}
	f := NewFileInjector().Wrap(under)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if under.buf.String() != "hello" || under.syncs != 1 || !under.closed {
		t.Fatalf("pass-through broke: %+v", under)
	}
}

func TestFileInjectorTornWrite(t *testing.T) {
	under := &memFile{}
	fi := NewFileInjector()
	f := fi.Wrap(under)
	if _, err := f.Write([]byte("durable|")); err != nil {
		t.Fatalf("healthy Write: %v", err)
	}
	fi.TearNextWrite(3)
	n, err := f.Write([]byte("torn-record"))
	if !errors.Is(err, ErrInjectedTornWrite) {
		t.Fatalf("torn Write err = %v", err)
	}
	if n != 3 {
		t.Fatalf("torn Write persisted %d bytes, want 3", n)
	}
	if got := under.buf.String(); got != "durable|tor" {
		t.Fatalf("underlying bytes = %q", got)
	}
	// The file is dead after the tear, even once the injector heals.
	fi.Heal()
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrInjectedTornWrite) {
		t.Fatalf("write to torn file err = %v", err)
	}
	// A freshly wrapped file is healthy again.
	under2 := &memFile{}
	f2 := fi.Wrap(under2)
	if _, err := f2.Write([]byte("ok")); err != nil {
		t.Fatalf("post-heal Write: %v", err)
	}
}

func TestFileInjectorTornWriteKeepPastLength(t *testing.T) {
	under := &memFile{}
	fi := NewFileInjector()
	f := fi.Wrap(under)
	fi.TearNextWrite(100)
	n, err := f.Write([]byte("short"))
	if !errors.Is(err, ErrInjectedTornWrite) || n != 5 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestFileInjectorSyncFaults(t *testing.T) {
	under := &memFile{}
	fi := NewFileInjector()
	f := fi.Wrap(under)

	fi.FailSync()
	if err := f.Sync(); !errors.Is(err, ErrInjectedSyncFail) {
		t.Fatalf("FailSync err = %v", err)
	}
	fi.Heal()

	fi.DropSync()
	if err := f.Sync(); err != nil {
		t.Fatalf("DropSync must lie with success, got %v", err)
	}
	if under.syncs != 0 {
		t.Fatal("DropSync reached the underlying file")
	}
	fi.Heal()
	if err := f.Sync(); err != nil {
		t.Fatalf("healed Sync: %v", err)
	}
	real, dropped := fi.Syncs()
	if real != 1 || dropped != 1 {
		t.Fatalf("Syncs() = %d real, %d dropped; want 1, 1", real, dropped)
	}
	if under.syncs != 1 {
		t.Fatalf("underlying syncs = %d, want 1", under.syncs)
	}
}
