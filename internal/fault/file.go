package fault

import (
	"errors"
	"io"
	"sync"
)

// SyncFile is the durable-file surface the WAL writes through (see
// wal.File); the injector wraps it to manufacture storage failures the
// connection-level faults cannot: a write torn mid-record by a crash, a
// disk that rejects writes, an fsync that fails — or one that lies.
type SyncFile interface {
	io.Writer
	io.Closer
	Sync() error
}

// Injected storage-fault errors.
var (
	// ErrInjectedTornWrite reports a write cut short by the injector;
	// subsequent writes fail with it too (the device is gone).
	ErrInjectedTornWrite = errors.New("fault: injected torn write")
	// ErrInjectedSyncFail reports an fsync failed by the injector.
	ErrInjectedSyncFail = errors.New("fault: injected fsync failure")
)

// FileInjector manufactures storage faults on files wrapped through it.
// Like the connection Injector it is shared state, safe for concurrent
// use, so a chaos schedule can arm a fault from a control goroutine
// while the committer writes.
//
// The zero value is healthy and usable.
type FileInjector struct {
	mu sync.Mutex
	// tornKeep >= 0 arms a torn write: the next write persists only its
	// first tornKeep bytes and fails; later writes fail outright.
	tornKeep int
	torn     bool // armed or already fired
	// failSync makes Sync return ErrInjectedSyncFail.
	failSync bool
	// dropSync makes Sync return success WITHOUT syncing — the lying
	// fsync ("short fsync") of a broken controller: acknowledged
	// durability that a power cut would reveal as fiction.
	dropSync bool
	// syncs counts Sync calls that reached the underlying file.
	syncs uint64
	// droppedSyncs counts Sync calls swallowed by dropSync.
	droppedSyncs uint64
}

// NewFileInjector returns a healthy injector.
func NewFileInjector() *FileInjector { return &FileInjector{} }

// TearNextWrite arms a torn write: the next Write through the injector
// persists only its first keep bytes, then the file fails sticky —
// modeling a crash mid-append. keep may be 0 (nothing of the record
// lands).
func (fi *FileInjector) TearNextWrite(keep int) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.torn = true
	fi.tornKeep = keep
}

// FailSync makes every Sync fail until healed.
func (fi *FileInjector) FailSync() {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.failSync = true
}

// DropSync makes every Sync report success without syncing until
// healed (the lying-fsync fault).
func (fi *FileInjector) DropSync() {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.dropSync = true
}

// Heal returns the injector to the healthy state. A torn write that
// already fired stays torn for files it hit (their device "died");
// healing only disarms future faults.
func (fi *FileInjector) Heal() {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.torn = false
	fi.tornKeep = 0
	fi.failSync = false
	fi.dropSync = false
}

// Syncs reports how many Sync calls reached the underlying file and
// how many the lying-fsync fault swallowed.
func (fi *FileInjector) Syncs() (real, dropped uint64) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.syncs, fi.droppedSyncs
}

// Wrap passes f's I/O through the injector.
func (fi *FileInjector) Wrap(f SyncFile) SyncFile {
	return &faultFile{f: f, in: fi}
}

type faultFile struct {
	f    SyncFile
	in   *FileInjector
	mu   sync.Mutex
	dead bool // a torn write hit this file
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.mu.Lock()
	if ff.dead {
		ff.mu.Unlock()
		return 0, ErrInjectedTornWrite
	}
	ff.in.mu.Lock()
	tear, keep := ff.in.torn, ff.in.tornKeep
	ff.in.mu.Unlock()
	if tear {
		ff.dead = true
		ff.mu.Unlock()
		if keep > len(p) {
			keep = len(p)
		}
		n, err := ff.f.Write(p[:keep])
		if err != nil {
			return n, err
		}
		return n, ErrInjectedTornWrite
	}
	ff.mu.Unlock()
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.in.mu.Lock()
	fail, drop := ff.in.failSync, ff.in.dropSync
	if fail {
		ff.in.mu.Unlock()
		return ErrInjectedSyncFail
	}
	if drop {
		ff.in.droppedSyncs++
		ff.in.mu.Unlock()
		return nil
	}
	ff.in.syncs++
	ff.in.mu.Unlock()
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
