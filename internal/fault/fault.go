// Package fault is the repository's fault-injection layer: a composable,
// seed-deterministic Injector that corrupts, delays, stalls, drops, or
// closes the byte streams of the live store (internal/kv), plus scripted
// crash/recover speed schedules that plug into the simulator's server
// speed profiles (internal/sim).
//
// The injector sits between a net.Conn and the wire codec, so every
// failure it manufactures is one the store can encounter in production:
// a frame truncated by a dying peer, bits flipped by a broken NIC, a
// connection that hangs instead of failing, a server that silently
// blackholes writes. Tests script faults against virtual or wall-clock
// time and assert the client/server resilience machinery (deadlines,
// retries, partial multigets, estimator dead-server aging) holds its
// invariants.
//
// Determinism: all probabilistic decisions (which byte to flip, whether
// to drop a write) derive from a PCG stream seeded at construction, so a
// failing chaos run reproduces from its seed.
//
// Injected faults surface in the observability layer like real ones:
// shed operations count toward kv_deadline_shed_total, failed dispatches
// toward the client's retry counter, and a fault-lengthened op shows up
// as the straggler in `kvctl trace` (see docs/OBSERVABILITY.md).
package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Mode is one fault class applied to a connection's I/O.
type Mode int

// Fault modes. None is the healthy state.
const (
	None Mode = iota
	// Drop silently discards written bytes (a blackhole: the peer waits
	// forever for frames that never arrive).
	Drop
	// Delay adds a fixed latency to every I/O completion.
	Delay
	// Stall blocks every I/O until the injector is healed or the
	// connection is closed.
	Stall
	// Corrupt flips one random bit in each affected chunk of bytes.
	Corrupt
	// Close tears the connection down on the next I/O.
	Close
)

// String names the mode for specs and logs.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Stall:
		return "stall"
	case Corrupt:
		return "corrupt"
	case Close:
		return "close"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// parseMode is String's inverse.
func parseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "none":
		return None, nil
	case "drop":
		return Drop, nil
	case "delay":
		return Delay, nil
	case "stall":
		return Stall, nil
	case "corrupt":
		return Corrupt, nil
	case "close":
		return Close, nil
	default:
		return None, fmt.Errorf("fault: unknown mode %q", s)
	}
}

// ErrInjectedClose reports a connection torn down by the injector's
// Close mode.
var ErrInjectedClose = errors.New("fault: injected connection close")

// Injector is a shared fault state applied to every connection wrapped
// through it. It is safe for concurrent use: chaos schedules flip the
// active fault from a control goroutine while I/O goroutines run.
//
// The zero value is not usable; construct with NewInjector.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	mode  Mode
	delay time.Duration
	// prob is the probability an individual I/O call is affected, in
	// (0, 1]. 1 = every call.
	prob float64
	// gen increments on every Set/Heal so stalled I/O knows to re-check.
	gen    uint64
	healed chan struct{}
}

// NewInjector returns a healthy injector whose random decisions derive
// from seed.
func NewInjector(seed uint64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		prob:   1,
		healed: make(chan struct{}),
	}
}

// Set activates a fault mode. prob is the per-I/O probability of the
// fault firing (clamped to (0,1]; pass 1 for always). delay is used by
// the Delay mode and ignored otherwise.
func (in *Injector) Set(mode Mode, prob float64, delay time.Duration) {
	if prob <= 0 || prob > 1 {
		prob = 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.mode = mode
	in.prob = prob
	in.delay = delay
	in.gen++
	// Wake stalled I/O so it re-evaluates against the new mode.
	close(in.healed)
	in.healed = make(chan struct{})
}

// Heal returns the injector to the healthy state, releasing any stalled
// I/O.
func (in *Injector) Heal() { in.Set(None, 1, 0) }

// Mode returns the active fault mode.
func (in *Injector) Mode() Mode {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.mode
}

// decide snapshots the active fault for one I/O call, consuming one
// random draw when the mode is probabilistic.
func (in *Injector) decide() (Mode, time.Duration, chan struct{}) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.mode == None {
		return None, 0, in.healed
	}
	if in.prob < 1 && in.rng.Float64() >= in.prob {
		return None, 0, in.healed
	}
	return in.mode, in.delay, in.healed
}

// flipBit corrupts one random bit of b in place (no-op on empty b).
func (in *Injector) flipBit(b []byte) {
	if len(b) == 0 {
		return
	}
	in.mu.Lock()
	i := in.rng.IntN(len(b))
	bit := byte(1) << in.rng.IntN(8)
	in.mu.Unlock()
	b[i] ^= bit
}

// Conn wraps c so its reads and writes pass through the injector.
// Faults apply to both directions; Close on the wrapped connection
// always reaches the underlying socket (so tests can clean up even
// while stalled).
func (in *Injector) Conn(c net.Conn) net.Conn {
	return &faultConn{Conn: c, in: in}
}

// Listener wraps ln so every accepted connection passes through the
// injector — the hook internal/kv servers expose for chaos tests.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, in: in}
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(c), nil
}

// faultConn applies the injector's active fault to one connection.
type faultConn struct {
	net.Conn
	in *Injector

	mu      sync.Mutex
	closed  bool
	closeCh chan struct{}
}

// apply executes the fault protocol for one I/O call. It returns
// proceed=false with an error when the call must fail, and mutate=true
// when the caller should corrupt the buffer.
func (c *faultConn) apply() (mutate bool, err error) {
	for {
		mode, delay, healed := c.in.decide()
		switch mode {
		case None:
			return false, nil
		case Delay:
			time.Sleep(delay)
			return false, nil
		case Corrupt:
			return true, nil
		case Close:
			_ = c.Conn.Close()
			return false, ErrInjectedClose
		case Drop:
			return false, errDropped
		case Stall:
			// Block until healed or the connection is closed under us
			// (the underlying read/write will then fail immediately).
			select {
			case <-healed:
				continue
			case <-c.closedCh():
				return false, net.ErrClosed
			}
		default:
			return false, nil
		}
	}
}

// errDropped is internal: Write swallows it, Read converts it to a
// stall (a reader cannot "drop" bytes it never saw).
var errDropped = errors.New("fault: dropped")

func (c *faultConn) Read(b []byte) (int, error) {
	mutate, err := c.apply()
	if err != nil {
		if errors.Is(err, errDropped) {
			// Dropping inbound traffic means the bytes never arrive;
			// behave like a blackholed link: block until mode changes,
			// then retry.
			_, _, healed := c.in.decide()
			select {
			case <-healed:
				return c.Read(b)
			case <-c.closedCh():
				return 0, net.ErrClosed
			}
		}
		return 0, err
	}
	n, rerr := c.Conn.Read(b)
	if mutate && n > 0 {
		c.in.flipBit(b[:n])
	}
	return n, rerr
}

func (c *faultConn) Write(b []byte) (int, error) {
	mutate, err := c.apply()
	if err != nil {
		if errors.Is(err, errDropped) {
			return len(b), nil // blackhole: pretend success
		}
		return 0, err
	}
	if mutate && len(b) > 0 {
		// Corrupt a copy; callers own their buffers.
		dup := make([]byte, len(b))
		copy(dup, b)
		c.in.flipBit(dup)
		return c.Conn.Write(dup)
	}
	return c.Conn.Write(b)
}

func (c *faultConn) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		if c.closeCh != nil {
			close(c.closeCh)
		}
	}
	c.mu.Unlock()
	return c.Conn.Close()
}

// closedCh lazily creates the close-notification channel; guarded by mu.
func (c *faultConn) closedCh() chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeCh == nil {
		c.closeCh = make(chan struct{})
		if c.closed {
			close(c.closeCh)
		}
	}
	return c.closeCh
}

// Spec is a parsed command-line fault description, e.g. from kvserver's
// -fault flag:
//
//	corrupt              every I/O corrupted
//	delay:5ms            5ms added to every I/O
//	drop:0.1             10% of writes blackholed
//	delay:2ms:0.5        2ms added to half the I/O calls
//	stall                all I/O blocked until healed
//
// Grammar: MODE[:ARG][:PROB] where ARG is a duration for delay and PROB
// a float in (0,1].
type Spec struct {
	Mode  Mode
	Delay time.Duration
	Prob  float64
}

// ParseSpec parses the MODE[:ARG][:PROB] grammar.
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) == 0 || parts[0] == "" {
		return Spec{}, errors.New("fault: empty spec")
	}
	mode, err := parseMode(parts[0])
	if err != nil {
		return Spec{}, err
	}
	spec := Spec{Mode: mode, Prob: 1}
	rest := parts[1:]
	if mode == Delay {
		if len(rest) == 0 {
			return Spec{}, errors.New("fault: delay spec needs a duration, e.g. delay:5ms")
		}
		d, derr := time.ParseDuration(rest[0])
		if derr != nil || d < 0 {
			return Spec{}, fmt.Errorf("fault: bad delay duration %q", rest[0])
		}
		spec.Delay = d
		rest = rest[1:]
	}
	if len(rest) > 0 {
		p, perr := strconv.ParseFloat(rest[0], 64)
		if perr != nil || p <= 0 || p > 1 {
			return Spec{}, fmt.Errorf("fault: bad probability %q (want (0,1])", rest[0])
		}
		spec.Prob = p
		rest = rest[1:]
	}
	if len(rest) > 0 {
		return Spec{}, fmt.Errorf("fault: trailing spec fields %v", rest)
	}
	return spec, nil
}

// Apply arms the injector with the spec's fault.
func (s Spec) Apply(in *Injector) { in.Set(s.Mode, s.Prob, s.Delay) }
