package fault

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

func TestScheduleTimeline(t *testing.T) {
	s := NewSchedule().Crash(100*time.Millisecond).Recover(300*time.Millisecond).
		Brownout(500*time.Millisecond, 0.25)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1},
		{99 * time.Millisecond, 1},
		{100 * time.Millisecond, 0},
		{299 * time.Millisecond, 0},
		{300 * time.Millisecond, 1},
		{499 * time.Millisecond, 1},
		{500 * time.Millisecond, 0.25},
		{time.Hour, 0.25},
	}
	for _, c := range cases {
		if got := s.At(c.at); got != c.want {
			t.Fatalf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if s.String() == "" {
		t.Fatal("schedule must describe itself")
	}
}

func TestScheduleEventsSortedAndTiesLastWins(t *testing.T) {
	s := NewSchedule(Event{At: 10, Speed: 0.5}, Event{At: 5, Speed: 0})
	if got := s.At(7); got != 0 {
		t.Fatalf("At(7) = %v, want 0 (events must be sorted)", got)
	}
	s.Brownout(10, 0.9)
	if got := s.At(10); got != 0.9 {
		t.Fatalf("At(10) = %v, want 0.9 (later event at same instant wins)", got)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    Spec
		wantErr bool
	}{
		{in: "corrupt", want: Spec{Mode: Corrupt, Prob: 1}},
		{in: "stall", want: Spec{Mode: Stall, Prob: 1}},
		{in: "close", want: Spec{Mode: Close, Prob: 1}},
		{in: "none", want: Spec{Mode: None, Prob: 1}},
		{in: "drop:0.1", want: Spec{Mode: Drop, Prob: 0.1}},
		{in: "delay:5ms", want: Spec{Mode: Delay, Delay: 5 * time.Millisecond, Prob: 1}},
		{in: "delay:2ms:0.5", want: Spec{Mode: Delay, Delay: 2 * time.Millisecond, Prob: 0.5}},
		{in: "", wantErr: true},
		{in: "explode", wantErr: true},
		{in: "delay", wantErr: true},
		{in: "delay:nope", wantErr: true},
		{in: "drop:2", wantErr: true},
		{in: "drop:0", wantErr: true},
		{in: "corrupt:0.5:junk", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.wantErr {
			if err == nil {
				t.Fatalf("ParseSpec(%q) should error", c.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// pipePair wraps one end of a net.Pipe with the injector.
func pipePair(in *Injector) (faulty, peer net.Conn) {
	a, b := net.Pipe()
	return in.Conn(a), b
}

func TestCorruptFlipsExactlyOneBitDeterministically(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	run := func(seed uint64) []byte {
		in := NewInjector(seed)
		in.Set(Corrupt, 1, 0)
		faulty, peer := pipePair(in)
		defer func() { _ = faulty.Close() }()
		defer func() { _ = peer.Close() }()
		got := make([]byte, len(payload))
		done := make(chan error, 1)
		go func() {
			_, err := faulty.Write(payload)
			done <- err
		}()
		if _, err := peer.Read(got); err != nil {
			t.Fatalf("peer read: %v", err)
		}
		if err := <-done; err != nil {
			t.Fatalf("faulty write: %v", err)
		}
		return got
	}
	a := run(42)
	b := run(42)
	c := run(43)
	if bytes.Equal(a, payload) {
		t.Fatal("corrupt mode delivered the payload intact")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must corrupt identically")
	}
	diff := 0
	for i := range a {
		for bit := 0; bit < 8; bit++ {
			if (a[i]^payload[i])&(1<<bit) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bits, want exactly 1", diff)
	}
	_ = c // different seed may or may not pick a different bit; only determinism is asserted
}

func TestCorruptDoesNotMutateCallerBuffer(t *testing.T) {
	in := NewInjector(7)
	in.Set(Corrupt, 1, 0)
	faulty, peer := pipePair(in)
	defer func() { _ = faulty.Close() }()
	defer func() { _ = peer.Close() }()
	payload := []byte("immutable")
	orig := append([]byte(nil), payload...)
	go func() { _, _ = faulty.Write(payload) }()
	buf := make([]byte, len(payload))
	if _, err := peer.Read(buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(payload, orig) {
		t.Fatal("Write corrupted the caller's buffer")
	}
}

func TestDelayAddsLatency(t *testing.T) {
	in := NewInjector(1)
	const d = 30 * time.Millisecond
	in.Set(Delay, 1, d)
	faulty, peer := pipePair(in)
	defer func() { _ = faulty.Close() }()
	defer func() { _ = peer.Close() }()
	go func() {
		buf := make([]byte, 8)
		_, _ = peer.Read(buf)
	}()
	start := time.Now()
	if _, err := faulty.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("delayed write took %v, want >= %v", elapsed, d)
	}
}

func TestStallBlocksUntilHeal(t *testing.T) {
	in := NewInjector(2)
	in.Set(Stall, 1, 0)
	faulty, peer := pipePair(in)
	defer func() { _ = faulty.Close() }()
	defer func() { _ = peer.Close() }()
	go func() {
		buf := make([]byte, 8)
		_, _ = peer.Read(buf)
	}()
	wrote := make(chan error, 1)
	go func() {
		_, err := faulty.Write([]byte("x"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("stalled write completed early (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	in.Heal()
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatalf("write after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write never completed after heal")
	}
}

func TestStallReleasedByClose(t *testing.T) {
	in := NewInjector(3)
	in.Set(Stall, 1, 0)
	faulty, peer := pipePair(in)
	defer func() { _ = peer.Close() }()
	read := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := faulty.Read(buf)
		read <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = faulty.Close()
	select {
	case err := <-read:
		if err == nil {
			t.Fatal("read on closed stalled conn must error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not release stalled read")
	}
}

func TestCloseModeTearsDownConnection(t *testing.T) {
	in := NewInjector(4)
	in.Set(Close, 1, 0)
	faulty, peer := pipePair(in)
	defer func() { _ = peer.Close() }()
	if _, err := faulty.Write([]byte("x")); !errors.Is(err, ErrInjectedClose) {
		t.Fatalf("write = %v, want ErrInjectedClose", err)
	}
	// The underlying conn is gone too: the peer sees EOF.
	buf := make([]byte, 1)
	if _, err := peer.Read(buf); err == nil {
		t.Fatal("peer read should fail after injected close")
	}
}

func TestDropBlackholesWrites(t *testing.T) {
	in := NewInjector(5)
	in.Set(Drop, 1, 0)
	faulty, peer := pipePair(in)
	defer func() { _ = faulty.Close() }()
	defer func() { _ = peer.Close() }()
	if n, err := faulty.Write([]byte("vanishes")); err != nil || n != 8 {
		t.Fatalf("blackholed write = (%d, %v), want (8, nil)", n, err)
	}
	_ = peer.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 8)
	if _, err := peer.Read(buf); err == nil {
		t.Fatal("peer received bytes that were dropped")
	}
}

func TestHealthyInjectorPassesThrough(t *testing.T) {
	in := NewInjector(6)
	faulty, peer := pipePair(in)
	defer func() { _ = faulty.Close() }()
	defer func() { _ = peer.Close() }()
	go func() { _, _ = faulty.Write([]byte("clean")) }()
	buf := make([]byte, 5)
	if _, err := peer.Read(buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != "clean" {
		t.Fatalf("got %q", buf)
	}
	if in.Mode() != None {
		t.Fatalf("mode = %v, want None", in.Mode())
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	in := NewInjector(8)
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln := in.Listener(base)
	defer func() { _ = ln.Close() }()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, aerr := ln.Accept()
		if aerr != nil {
			return
		}
		accepted <- c
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = dial.Close() }()
	srvConn := <-accepted
	defer func() { _ = srvConn.Close() }()
	if _, ok := srvConn.(*faultConn); !ok {
		t.Fatalf("accepted conn is %T, want *faultConn", srvConn)
	}
	// Fault applies to the accepted side.
	in.Set(Corrupt, 1, 0)
	go func() { _, _ = srvConn.Write([]byte{0x00}) }()
	buf := make([]byte, 1)
	if _, err := dial.Read(buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if buf[0] == 0 {
		t.Fatal("corrupt mode must flip a bit in the single-byte payload")
	}
}
