package fault

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Event is one scripted state change of a server in a chaos schedule:
// at At, the server's speed becomes Speed (0 = crashed/stalled, 1 =
// nominal, fractions = brownout).
type Event struct {
	At    time.Duration
	Speed float64
}

// Schedule is a piecewise-constant speed timeline built from crash,
// recover, and brownout events. It implements the simulator's
// SpeedProfile contract (At/String) structurally, so a chaos script
// written once drives both internal/sim runs and live-store tests.
//
// Speed 0 means "crashed": the simulator floors service speed at a tiny
// positive value, so operations dispatched to a crashed server stall
// for effectively the rest of the run — the same observable behavior as
// a hung process, which is exactly the condition adaptive scheduling
// must route around.
type Schedule struct {
	// Base is the speed before the first event (default 1 if <= 0 and
	// there are no events at t=0).
	Base float64
	// Events are the scripted changes; Normalize sorts them by time.
	Events []Event
}

// NewSchedule returns a nominal-speed schedule with the given events,
// sorted by time.
func NewSchedule(events ...Event) *Schedule {
	s := &Schedule{Base: 1, Events: events}
	s.Normalize()
	return s
}

// Crash appends a crash (speed 0) at t, returning the schedule for
// chaining.
func (s *Schedule) Crash(t time.Duration) *Schedule {
	s.Events = append(s.Events, Event{At: t, Speed: 0})
	s.Normalize()
	return s
}

// Recover appends a recovery to nominal speed at t.
func (s *Schedule) Recover(t time.Duration) *Schedule {
	s.Events = append(s.Events, Event{At: t, Speed: 1})
	s.Normalize()
	return s
}

// Brownout appends a degradation to the given speed at t.
func (s *Schedule) Brownout(t time.Duration, speed float64) *Schedule {
	s.Events = append(s.Events, Event{At: t, Speed: speed})
	s.Normalize()
	return s
}

// Normalize sorts events by time (stable, so a later-appended event at
// the same instant wins).
func (s *Schedule) Normalize() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		return s.Events[i].At < s.Events[j].At
	})
}

// At returns the scheduled speed at virtual time t.
func (s *Schedule) At(t time.Duration) float64 {
	speed := s.Base
	if speed <= 0 {
		speed = 1
	}
	for _, e := range s.Events {
		if e.At > t {
			break
		}
		speed = e.Speed
	}
	return speed
}

// String renders the timeline for reports.
func (s *Schedule) String() string {
	if len(s.Events) == 0 {
		return fmt.Sprintf("const(%.2f)", s.Base)
	}
	parts := make([]string, 0, len(s.Events))
	for _, e := range s.Events {
		switch {
		case e.Speed == 0:
			parts = append(parts, fmt.Sprintf("crash@%v", e.At))
		case e.Speed >= 1:
			parts = append(parts, fmt.Sprintf("recover@%v", e.At))
		default:
			parts = append(parts, fmt.Sprintf("%.2fx@%v", e.Speed, e.At))
		}
	}
	return "chaos(" + strings.Join(parts, ",") + ")"
}
