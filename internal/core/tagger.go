package core

import (
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// tagGroupScan is the fan-out up to which the tagger groups ops by
// server with a quadratic scan instead of a map. Multigets are almost
// always narrow, and the scan keeps the hot path allocation-free.
const tagGroupScan = 16

// Tag stamps the operations of one request with DAS scheduling metadata
// at dispatch time now. Operations are grouped by destination server —
// a server serves its share of the request serially, so the ops of one
// group are one scheduling unit, not independent work. It fills, per
// operation:
//
//   - Tags.DemandBottleneck — the maximum sibling demand (the static
//     bottleneck Rein-SBF orders by, shared so baselines reuse tagging);
//   - Tags.ScaledDemand — the op's demand corrected by the server's
//     calibration ratio (ObserveService feedback) and scaled by its
//     estimated speed;
//   - Tags.RemainingTime — the maximum per-server *group residual*: the
//     summed ScaledDemand of the request's ops bound for one server.
//     This is DAS's SRPT-first key, and summing within a group is what
//     makes it batch-aware — three ops sharing a server take three
//     service times, not one. Queueing waits are deliberately left
//     out: wait estimates are noisy, stale by the time an op is served,
//     and largely shared across co-queued requests, so including them
//     drowns the request-size signal (verified in simulation — it
//     pushes DAS toward FCFS behavior);
//   - Tags.ExpectedFinish / Tags.RequestFinish — absolute completion
//     estimates *including* expected queueing waits. Every op of one
//     server group shares the group's finish estimate (the server
//     drains the group together), so their slack — and therefore their
//     LRPT-last demotion decision — is coherent: a batch frame is
//     demoted whole or not at all, never shuffled op by op. Waits
//     matter here — a group whose sibling sits behind a 500ms backlog
//     genuinely has hundreds of milliseconds of slack.
//
// With est == nil (the DAS-static ablation and the Rein baselines) all
// servers look idle at nominal speed and calibration 1, so
// RemainingTime degenerates to the static per-server demand sum
// (exactly Rein-SBF's information for single-op groups) and Slack to
// the within-request demand gap.
func Tag(ops []*sched.Op, est *Estimator, now time.Duration) {
	if len(ops) == 0 {
		return
	}
	var maxDemand time.Duration
	for _, op := range ops {
		if op.Demand > maxDemand {
			maxDemand = op.Demand
		}
	}
	var maxResidual time.Duration
	var requestFinish time.Duration
	if len(ops) <= tagGroupScan {
		// Narrow request: group by quadratic scan, zero allocations.
		for i, op := range ops {
			leader := true
			for j := 0; j < i; j++ {
				if ops[j].Server == op.Server {
					leader = false
					break
				}
			}
			if !leader {
				continue
			}
			speed, cal, wait := serverTagView(est, op.Server, now)
			var residual time.Duration
			for j := i; j < len(ops); j++ {
				if ops[j].Server != op.Server {
					continue
				}
				scaled := time.Duration(float64(ops[j].Demand) * cal / speed)
				ops[j].Tags.ScaledDemand = scaled
				residual += scaled
			}
			finish := now + wait + residual
			for j := i; j < len(ops); j++ {
				if ops[j].Server == op.Server {
					ops[j].Tags.ExpectedFinish = finish
				}
			}
			if residual > maxResidual {
				maxResidual = residual
			}
			if finish > requestFinish {
				requestFinish = finish
			}
		}
	} else {
		// Wide request: two passes over a per-server accumulator map.
		type group struct {
			speed, cal float64
			wait       time.Duration
			residual   time.Duration
		}
		groups := make(map[sched.ServerID]*group, 8)
		for _, op := range ops {
			g, ok := groups[op.Server]
			if !ok {
				speed, cal, wait := serverTagView(est, op.Server, now)
				g = &group{speed: speed, cal: cal, wait: wait}
				groups[op.Server] = g
			}
			scaled := time.Duration(float64(op.Demand) * g.cal / g.speed)
			op.Tags.ScaledDemand = scaled
			g.residual += scaled
		}
		for _, op := range ops {
			g := groups[op.Server]
			finish := now + g.wait + g.residual
			op.Tags.ExpectedFinish = finish
			if g.residual > maxResidual {
				maxResidual = g.residual
			}
			if finish > requestFinish {
				requestFinish = finish
			}
		}
	}
	for _, op := range ops {
		op.Tags.IssuedAt = now
		op.Tags.Fanout = len(ops)
		op.Tags.DemandBottleneck = maxDemand
		op.Tags.RemainingTime = maxResidual
		op.Tags.RequestFinish = requestFinish
	}
}

// serverTagView resolves the tagger's per-server view: nominal and
// uncalibrated when est is nil (static tagging).
func serverTagView(est *Estimator, server sched.ServerID, now time.Duration) (speed, cal float64, wait time.Duration) {
	if est == nil {
		return 1, 1, 0
	}
	return est.tagView(server, now)
}
