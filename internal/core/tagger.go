package core

import (
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// Tag stamps the operations of one request with DAS scheduling metadata
// at dispatch time now. It fills, per operation:
//
//   - Tags.DemandBottleneck — the maximum sibling demand (the static
//     bottleneck Rein-SBF orders by, shared so baselines reuse tagging);
//   - Tags.ScaledDemand — the op's demand scaled by the estimated speed
//     of its server;
//   - Tags.RemainingTime — the maximum sibling ScaledDemand: the
//     request's bottleneck processing time adjusted for server speeds.
//     This is DAS's SRPT-first key. Queueing waits are deliberately left
//     out: wait estimates are noisy, stale by the time an op is served,
//     and largely shared across co-queued requests, so including them
//     drowns the request-size signal (verified in simulation — it
//     pushes DAS toward FCFS behavior);
//   - Tags.ExpectedFinish / Tags.RequestFinish — absolute completion
//     estimates *including* expected queueing waits. Their difference,
//     Tags.Slack, is how long this op can be deferred before it delays
//     its request: the LRPT-last demotion signal. Waits matter here —
//     an op whose sibling sits behind a 500ms backlog genuinely has
//     hundreds of milliseconds of slack.
//
// With est == nil (the DAS-static ablation and the Rein baselines) all
// servers look idle at nominal speed, so RemainingTime degenerates to
// the static demand bottleneck (exactly Rein-SBF's information) and
// Slack to the within-request demand gap.
func Tag(ops []*sched.Op, est *Estimator, now time.Duration) {
	if len(ops) == 0 {
		return
	}
	var maxDemand time.Duration
	for _, op := range ops {
		if op.Demand > maxDemand {
			maxDemand = op.Demand
		}
	}
	var maxScaled time.Duration
	var requestFinish time.Duration
	for _, op := range ops {
		scaled := op.Demand
		var wait time.Duration
		if est != nil {
			scaled = time.Duration(float64(op.Demand) / est.Speed(op.Server))
			wait = est.ExpectedWait(op.Server, now)
		}
		op.Tags.ScaledDemand = scaled
		op.Tags.ExpectedFinish = now + wait + scaled
		if scaled > maxScaled {
			maxScaled = scaled
		}
		if op.Tags.ExpectedFinish > requestFinish {
			requestFinish = op.Tags.ExpectedFinish
		}
	}
	for _, op := range ops {
		op.Tags.IssuedAt = now
		op.Tags.Fanout = len(ops)
		op.Tags.DemandBottleneck = maxDemand
		op.Tags.RemainingTime = maxScaled
		op.Tags.RequestFinish = requestFinish
	}
}
