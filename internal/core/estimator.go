// Package core implements the paper's contribution: the Distributed
// Adaptive Scheduler (DAS) for multiget requests in distributed
// key-value stores.
//
// DAS has three cooperating pieces, all in this package:
//
//   - Estimator — the client-side view of every server's current load and
//     speed, maintained purely from feedback piggybacked on responses (no
//     central coordinator, no extra messages).
//   - Tag — the client-side tagger that, at dispatch time, stamps each
//     operation of a request with its expected finish time and the
//     request's expected bottleneck finish time.
//   - DAS — the server-side queueing policy combining SRPT-first across
//     requests with LRPT-last slack demotion within requests, plus
//     anti-starvation aging.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// Feedback is the load/performance snapshot a server piggybacks on every
// response. It is deliberately tiny (two numbers and a timestamp) because
// the paper's premise is that centralized information is too expensive —
// everything DAS learns rides on traffic that flows anyway.
type Feedback struct {
	Server sched.ServerID
	// QueueLen is the number of operations pending at the server.
	QueueLen int
	// Backlog is the total unserved service demand queued at the
	// server, including the remaining demand of the op in service.
	Backlog time.Duration
	// Speed is the server's recent processing speed in demand-units
	// per unit time (1.0 = nominal).
	Speed float64
	// At is the server-side generation instant.
	At time.Duration
}

// EstimatorConfig tunes the client-side view.
type EstimatorConfig struct {
	// Gain is the EWMA weight of a fresh observation in (0, 1].
	Gain float64
	// StaleAfter is the age beyond which a view's backlog information
	// is considered fully drained and only the speed estimate is kept.
	StaleAfter time.Duration
	// DefaultSpeed seeds the speed estimate for servers never heard
	// from (1.0 = nominal hardware).
	DefaultSpeed float64
	// ReviveAfter is how long a server marked down (MarkDown) stays
	// quarantined before the estimator lets traffic probe it again.
	// Until then ExpectedFinish carries a large penalty so replica
	// selection routes around the corpse; fresh feedback (Observe)
	// revives it immediately.
	ReviveAfter time.Duration
	// CalibrationGain is the EWMA weight of one service-time
	// observation in the per-server demand-calibration ratio, in
	// (0, 1]. The ratio corrects the client's demand model against the
	// service times servers actually report (ObserveService), so a
	// model that is wrong by a constant factor — or a server whose
	// speed feedback misses systematic per-op overhead — converges to
	// honest tags instead of trusting its misestimate forever.
	CalibrationGain float64
}

// DefaultEstimatorConfig returns the parameters used throughout the
// evaluation.
func DefaultEstimatorConfig() EstimatorConfig {
	return EstimatorConfig{
		Gain:            0.3,
		StaleAfter:      5 * time.Second,
		DefaultSpeed:    1.0,
		ReviveAfter:     2 * time.Second,
		CalibrationGain: 0.2,
	}
}

func (c EstimatorConfig) validate() error {
	if c.Gain <= 0 || c.Gain > 1 {
		return fmt.Errorf("estimator: gain %v outside (0,1]", c.Gain)
	}
	if c.StaleAfter <= 0 {
		return fmt.Errorf("estimator: StaleAfter %v must be positive", c.StaleAfter)
	}
	if c.DefaultSpeed <= 0 {
		return fmt.Errorf("estimator: DefaultSpeed %v must be positive", c.DefaultSpeed)
	}
	if c.ReviveAfter < 0 {
		return fmt.Errorf("estimator: ReviveAfter %v must be non-negative", c.ReviveAfter)
	}
	if c.CalibrationGain < 0 || c.CalibrationGain > 1 {
		return fmt.Errorf("estimator: CalibrationGain %v outside [0,1]", c.CalibrationGain)
	}
	return nil
}

type serverView struct {
	speed     float64
	backlog   time.Duration
	updatedAt time.Duration
	known     bool
	down      bool
	downSince time.Duration
	// cal is the demand-calibration ratio: how much larger (or smaller)
	// this server's reported service times run than the client's raw,
	// speed-scaled demand predictions. 0 means "never calibrated" and
	// reads as 1.
	cal float64
}

// Estimator maintains per-server load and speed views from piggybacked
// feedback. It is safe for concurrent use: in the live store many client
// goroutines share one estimator.
type Estimator struct {
	cfg EstimatorConfig

	mu    sync.Mutex
	views map[sched.ServerID]*serverView
	// sizes is the per-size-class service-time model fed by the
	// calibration loop (see sizemodel.go).
	sizes sizeModel
}

// NewEstimator returns an estimator with the given configuration.
func NewEstimator(cfg EstimatorConfig) (*Estimator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Estimator{cfg: cfg, views: make(map[sched.ServerID]*serverView)}, nil
}

// Observe folds one piece of piggybacked feedback into the view.
func (e *Estimator) Observe(fb Feedback) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.views[fb.Server]
	if !ok {
		v = &serverView{speed: e.cfg.DefaultSpeed}
		e.views[fb.Server] = v
	}
	if fb.Speed > 0 {
		if v.known {
			v.speed += e.cfg.Gain * (fb.Speed - v.speed)
		} else {
			v.speed = fb.Speed
		}
	}
	// Keep the freshest backlog snapshot; feedback can arrive out of
	// order over different connections.
	if fb.At >= v.updatedAt {
		v.backlog = fb.Backlog
		v.updatedAt = fb.At
	}
	v.known = true
	// A response is proof of life: revive a down-marked server.
	v.down = false
}

// calClamp bounds one calibration observation and the running ratio, so
// a single wild service report (GC pause, cold cache) cannot swing the
// demand model by more than this factor in either direction.
const calClamp = 64.0

// ObserveService folds one server-reported service time into the
// per-server demand-calibration ratio: predicted is the client's raw
// demand estimate for the operation, actual the service time the server
// measured (response Timing). The speed estimate is factored out of the
// observation so speed corrections (Observe) and demand corrections
// compose instead of double-counting. Callers must not feed shed or
// errored responses here — a zero or negative duration on either side
// is ignored, which also covers v2 peers that report no Timing block.
func (e *Estimator) ObserveService(server sched.ServerID, predicted, actual time.Duration) {
	if e.cfg.CalibrationGain <= 0 || predicted <= 0 || actual <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.views[server]
	if !ok {
		v = &serverView{speed: e.cfg.DefaultSpeed}
		e.views[server] = v
	}
	speed := v.speed
	if !v.known || speed <= 0 {
		speed = e.cfg.DefaultSpeed
	}
	// actual×speed is the demand the service time implies at the
	// current speed view; obs is its ratio to what the model predicted.
	obs := float64(actual) * speed / float64(predicted)
	if obs < 1/calClamp {
		obs = 1 / calClamp
	} else if obs > calClamp {
		obs = calClamp
	}
	if v.cal <= 0 {
		v.cal = obs
	} else {
		v.cal += e.cfg.CalibrationGain * (obs - v.cal)
	}
	if v.cal < 1/calClamp {
		v.cal = 1 / calClamp
	} else if v.cal > calClamp {
		v.cal = calClamp
	}
}

// CalibratedDemand corrects a raw demand estimate by the server's
// calibration ratio (identity for servers never calibrated or when
// calibration is disabled).
func (e *Estimator) CalibratedDemand(server sched.ServerID, demand time.Duration) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.views[server]; ok && v.cal > 0 {
		return time.Duration(float64(demand) * v.cal)
	}
	return demand
}

// CalibrationRatio returns the server's current demand-calibration
// ratio (1 when never calibrated), for introspection and tests.
func (e *Estimator) CalibrationRatio(server sched.ServerID) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.views[server]; ok && v.cal > 0 {
		return v.cal
	}
	return 1
}

// MarkDown records a server as unreachable at time at (a failed dial, a
// torn connection, a request that died on the wire). While down —
// until fresh feedback arrives or ReviveAfter elapses — ExpectedFinish
// carries a large penalty so adaptive routing and tagging treat the
// server as a last resort, and its stale backlog view is discarded.
func (e *Estimator) MarkDown(server sched.ServerID, at time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.views[server]
	if !ok {
		v = &serverView{speed: e.cfg.DefaultSpeed}
		e.views[server] = v
	}
	if !v.down {
		v.downSince = at
	}
	v.down = true
	v.known = true
	// The backlog snapshot predates the failure; a restarted server
	// comes back empty, and a hung one is unusable either way.
	v.backlog = 0
}

// Down reports whether the server is inside its down quarantine at
// time now. It ages out: after ReviveAfter the server is considered a
// probe candidate again (and a fresh failure re-quarantines it).
func (e *Estimator) Down(server sched.ServerID, now time.Duration) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.downLocked(server, now)
}

func (e *Estimator) downLocked(server sched.ServerID, now time.Duration) bool {
	v, ok := e.views[server]
	if !ok || !v.down || e.cfg.ReviveAfter <= 0 {
		return false
	}
	return now-v.downSince < e.cfg.ReviveAfter
}

// downPenalty dominates any realistic finish estimate so a down server
// loses every replica-selection comparison, while staying far from
// overflow when added to now + scaled demand.
const downPenalty = time.Hour

// Speed returns the current speed estimate for a server.
func (e *Estimator) Speed(server sched.ServerID) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.views[server]; ok && v.known {
		return v.speed
	}
	return e.cfg.DefaultSpeed
}

// ExpectedWait estimates the queueing delay a new operation would see at
// the server at virtual time now. The last backlog snapshot is drained
// forward at the estimated speed; views older than StaleAfter contribute
// no wait (the backlog has surely turned over).
func (e *Estimator) ExpectedWait(server sched.ServerID, now time.Duration) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.views[server]
	if !ok || !v.known {
		return 0
	}
	age := now - v.updatedAt
	if age < 0 {
		age = 0
	}
	if age > e.cfg.StaleAfter {
		return 0
	}
	speed := v.speed
	if speed <= 0 {
		speed = e.cfg.DefaultSpeed
	}
	wait := time.Duration(float64(v.backlog)/speed) - age
	if wait < 0 {
		return 0
	}
	return wait
}

// tagView returns one server's speed, calibration ratio, and expected
// queueing wait in a single lock acquisition — the tagger's per-group
// view (semantically Speed + CalibrationRatio + ExpectedWait).
func (e *Estimator) tagView(server sched.ServerID, now time.Duration) (speed, cal float64, wait time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	speed, cal = e.cfg.DefaultSpeed, 1.0
	v, ok := e.views[server]
	if !ok {
		return speed, cal, 0
	}
	if v.known && v.speed > 0 {
		speed = v.speed
	}
	if v.cal > 0 {
		cal = v.cal
	}
	if !v.known {
		return speed, cal, 0
	}
	age := now - v.updatedAt
	if age < 0 {
		age = 0
	}
	if age > e.cfg.StaleAfter {
		return speed, cal, 0
	}
	wait = time.Duration(float64(v.backlog)/speed) - age
	if wait < 0 {
		wait = 0
	}
	return speed, cal, wait
}

// ExpectedFinish estimates the absolute completion instant of an
// operation with the given demand dispatched to server at time now:
// now + expected queueing wait + demand scaled by the speed estimate.
func (e *Estimator) ExpectedFinish(server sched.ServerID, demand, now time.Duration) time.Duration {
	wait := e.ExpectedWait(server, now)
	speed := e.Speed(server)
	finish := now + wait + time.Duration(float64(demand)/speed)
	if e.Down(server, now) {
		finish += downPenalty
	}
	return finish
}

// Snapshot returns a copy of the current view of one server for
// introspection and tests. ok is false if the server was never observed.
func (e *Estimator) Snapshot(server sched.ServerID) (speed float64, backlog time.Duration, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, exists := e.views[server]
	if !exists || !v.known {
		return e.cfg.DefaultSpeed, 0, false
	}
	return v.speed, v.backlog, true
}

// ServerSnapshot is one server's view copied out for replica selection
// and debugging tooling.
type ServerSnapshot struct {
	Server sched.ServerID
	// Speed and Backlog are the estimator's current view (the config
	// defaults for servers never heard from).
	Speed   float64
	Backlog time.Duration
	// Calibration is the demand-calibration ratio ObserveService has
	// converged to (1 when never calibrated).
	Calibration float64
	// Age is how stale the backlog snapshot is at the query instant
	// (negative observation clocks clamp to zero).
	Age time.Duration
	// Known is false for servers never observed.
	Known bool
	// Down reports the failure quarantine at the query instant.
	Down bool
}

// SnapshotAll returns the view of every server ever observed or marked
// down, in ascending server order — one lock acquisition, cheap enough
// for the selector and for per-request debug output.
func (e *Estimator) SnapshotAll(now time.Duration) []ServerSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ServerSnapshot, 0, len(e.views))
	for id, v := range e.views {
		s := ServerSnapshot{
			Server:      id,
			Speed:       v.speed,
			Backlog:     v.backlog,
			Calibration: v.cal,
			Known:       v.known,
			Down:        e.downLocked(id, now),
		}
		if s.Calibration <= 0 {
			s.Calibration = 1
		}
		if !v.known {
			s.Speed, s.Backlog = e.cfg.DefaultSpeed, 0
		} else if age := now - v.updatedAt; age > 0 {
			s.Age = age
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Server < out[j].Server })
	return out
}
