package core

import (
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// sizeModelSplit separates the two learning cells of the size model.
// It only needs to land somewhere between "mice" and "elephants" for
// the slope fit to see two well-separated clusters; 64 KiB matches the
// size-class classifier's pre-learning default.
const sizeModelSplit = 64 << 10

// sizeModelGain is the EWMA weight of one observation in a cell.
const sizeModelGain = 0.1

// sizeModelMinWeight is the effective observation count each cell needs
// before the model starts predicting. Until then SizedDemand reports
// not-ready and callers keep their static demand heuristic.
const sizeModelMinWeight = 8.0

// sizeCell is one size class's running view of observed service.
type sizeCell struct {
	timeNanos float64 // EWMA of speed-normalized service time
	bytes     float64 // EWMA of payload size
	weight    float64 // decayed observation count, saturating at 1/gain
}

func (c *sizeCell) observe(bytes, nanos float64) {
	if c.weight == 0 {
		c.timeNanos, c.bytes = nanos, bytes
	} else {
		c.timeNanos += sizeModelGain * (nanos - c.timeNanos)
		c.bytes += sizeModelGain * (bytes - c.bytes)
	}
	if c.weight < sizeModelMinWeight {
		c.weight++
	}
}

// sizeModel is the estimator's per-size-class service-time model: two
// EWMA cells (small and large payloads) whose difference quotient gives
// a per-byte service cost, anchored by the small cell's fixed per-op
// overhead. Linear in payload size is exactly the store's service shape
// — a hash lookup plus a value copy — and two cells is the minimum that
// can fit both the intercept and the slope from live traffic alone.
type sizeModel struct {
	cells [2]sizeCell // 0 = small payloads, 1 = large
}

func (m *sizeModel) observe(sizeBytes int64, nanos float64) {
	if sizeBytes <= 0 || nanos <= 0 {
		return
	}
	i := 0
	if sizeBytes > sizeModelSplit {
		i = 1
	}
	m.cells[i].observe(float64(sizeBytes), nanos)
}

// predict returns the modeled speed-nominal service demand for a
// payload of the given size, or (0, false) before the model has seen
// enough traffic.
func (m *sizeModel) predict(sizeBytes int64) (time.Duration, bool) {
	if sizeBytes <= 0 {
		return 0, false
	}
	s, l := &m.cells[0], &m.cells[1]
	switch {
	case s.weight >= sizeModelMinWeight && l.weight >= sizeModelMinWeight:
		// Fit time = base + perByte·bytes through the two cell means.
		perByte := 0.0
		if db := l.bytes - s.bytes; db > 0 {
			perByte = (l.timeNanos - s.timeNanos) / db
			if perByte < 0 {
				perByte = 0
			}
		}
		base := s.timeNanos - perByte*s.bytes
		if base < 0 {
			base = 0
		}
		d := time.Duration(base + perByte*float64(sizeBytes))
		if d < time.Microsecond {
			d = time.Microsecond
		}
		return d, true
	case s.weight >= sizeModelMinWeight && float64(sizeBytes) <= sizeModelSplit:
		// Only small traffic seen so far: its mean covers small asks.
		return time.Duration(s.timeNanos), true
	case l.weight >= sizeModelMinWeight && sizeBytes > sizeModelSplit:
		return time.Duration(l.timeNanos), true
	default:
		return 0, false
	}
}

// ObserveSizedService feeds the size model one completed operation: the
// payload size that actually moved (value length written or returned)
// and the service time the server reported. The server's speed estimate
// is factored out, so observations from fast and slow servers train one
// coherent speed-nominal model. Degenerate inputs are ignored.
func (e *Estimator) ObserveSizedService(server sched.ServerID, sizeBytes int64, actual time.Duration) {
	if sizeBytes <= 0 || actual <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	speed := e.cfg.DefaultSpeed
	if v, ok := e.views[server]; ok && v.known && v.speed > 0 {
		speed = v.speed
	}
	e.sizes.observe(sizeBytes, float64(actual)*speed)
}

// SizedDemand predicts the speed-nominal service demand of an operation
// from its payload size, using the learned per-size-class model. ok is
// false until the model has seen enough sized traffic; callers then
// fall back to their static demand heuristic. The per-server
// calibration ratio is deliberately not applied here — the tagger
// composes it on top, exactly as it does for heuristic demands.
func (e *Estimator) SizedDemand(sizeBytes int64) (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sizes.predict(sizeBytes)
}
