package core

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// TestCalibrationGainValidation asserts the config bounds on the
// recalibration EWMA weight.
func TestCalibrationGainValidation(t *testing.T) {
	cfg := DefaultEstimatorConfig()
	cfg.CalibrationGain = -0.1
	if _, err := NewEstimator(cfg); err == nil {
		t.Fatal("negative CalibrationGain should error")
	}
	cfg.CalibrationGain = 1.5
	if _, err := NewEstimator(cfg); err == nil {
		t.Fatal("CalibrationGain > 1 should error")
	}
	cfg.CalibrationGain = 0 // disabled is valid
	if _, err := NewEstimator(cfg); err != nil {
		t.Fatalf("CalibrationGain 0 rejected: %v", err)
	}
}

// TestRecalibrationConvergesFromMisestimate is the headline property:
// a demand model that is 10x off converges to the true per-server
// ratio from Timing feedback alone.
func TestRecalibrationConvergesFromMisestimate(t *testing.T) {
	for _, tc := range []struct {
		name      string
		predicted time.Duration
		actual    time.Duration
		wantRatio float64
	}{
		{"10x-under", 100 * time.Microsecond, time.Millisecond, 10},
		{"10x-over", time.Millisecond, 100 * time.Microsecond, 0.1},
		{"accurate", time.Millisecond, time.Millisecond, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := mustEstimator(t, DefaultEstimatorConfig())
			for i := 0; i < 64; i++ {
				e.ObserveService(1, tc.predicted, tc.actual)
			}
			got := e.CalibrationRatio(1)
			if got < tc.wantRatio*0.95 || got > tc.wantRatio*1.05 {
				t.Fatalf("ratio = %v after 64 observations, want ~%v", got, tc.wantRatio)
			}
			wantDemand := time.Duration(float64(tc.predicted) * got)
			if got := e.CalibratedDemand(1, tc.predicted); got != wantDemand {
				t.Fatalf("CalibratedDemand = %v, want %v", got, wantDemand)
			}
		})
	}
}

// TestRecalibrationFirstObservationAdopted mirrors the speed EWMA: the
// first observation is adopted outright rather than blended with the
// uninformative prior, so calibration is useful from the first
// response.
func TestRecalibrationFirstObservationAdopted(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	e.ObserveService(1, time.Millisecond, 4*time.Millisecond)
	if got := e.CalibrationRatio(1); got != 4 {
		t.Fatalf("ratio after first observation = %v, want 4 (adopted outright)", got)
	}
}

// TestRecalibrationIgnoresDegenerateInputs asserts robustness to the
// signals a live client must not learn from: v2 peers report no Timing
// block (zero service), shed operations report zero service, and a
// zero predicted demand would divide away the signal entirely.
func TestRecalibrationIgnoresDegenerateInputs(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	e.ObserveService(1, 0, time.Millisecond)              // zero predicted
	e.ObserveService(1, time.Millisecond, 0)              // v2 peer / shed: no Timing
	e.ObserveService(1, -time.Millisecond, time.Second)   // negative predicted
	e.ObserveService(1, time.Millisecond, -3*time.Second) // negative actual
	if got := e.CalibrationRatio(1); got != 1 {
		t.Fatalf("ratio = %v after degenerate observations, want untouched 1", got)
	}
	if got := e.CalibratedDemand(1, time.Millisecond); got != time.Millisecond {
		t.Fatalf("CalibratedDemand = %v, want identity", got)
	}
}

// TestRecalibrationDisabledByZeroGain asserts the off switch: with
// CalibrationGain 0 observations never move the ratio.
func TestRecalibrationDisabledByZeroGain(t *testing.T) {
	cfg := DefaultEstimatorConfig()
	cfg.CalibrationGain = 0
	e := mustEstimator(t, cfg)
	for i := 0; i < 16; i++ {
		e.ObserveService(1, time.Millisecond, 10*time.Millisecond)
	}
	if got := e.CalibrationRatio(1); got != 1 {
		t.Fatalf("ratio = %v with gain 0, want 1", got)
	}
}

// TestRecalibrationClampsOutliers asserts one wild observation (a GC
// pause, a cold cache miss) cannot blow the ratio past the clamp.
func TestRecalibrationClampsOutliers(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	for i := 0; i < 256; i++ {
		e.ObserveService(1, time.Microsecond, time.Hour)
	}
	if got := e.CalibrationRatio(1); got > calClamp {
		t.Fatalf("ratio = %v, clamp is %v", got, calClamp)
	}
	e2 := mustEstimator(t, DefaultEstimatorConfig())
	for i := 0; i < 256; i++ {
		e2.ObserveService(1, time.Hour, time.Microsecond)
	}
	if got := e2.CalibrationRatio(1); got < 1/calClamp {
		t.Fatalf("ratio = %v, floor is %v", got, 1/calClamp)
	}
}

// TestRecalibrationFactorsOutSpeed asserts speed and calibration
// compose without double-counting: on a server known to run at half
// speed, an actual service of 2x the predicted demand is exactly the
// speed deficit — the demand model is right and the ratio must stay 1.
func TestRecalibrationFactorsOutSpeed(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	e.Observe(Feedback{Server: 1, Speed: 0.5, At: time.Second})
	for i := 0; i < 32; i++ {
		e.ObserveService(1, time.Millisecond, 2*time.Millisecond)
	}
	if got := e.CalibrationRatio(1); got != 1 {
		t.Fatalf("ratio = %v on a half-speed server with accurate demands, want 1", got)
	}
}

// TestRecalibrationPerServer asserts ratios are independent across
// servers — one slow disk does not inflate every server's demands.
func TestRecalibrationPerServer(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	for i := 0; i < 32; i++ {
		e.ObserveService(1, time.Millisecond, 5*time.Millisecond)
	}
	if got := e.CalibrationRatio(2); got != 1 {
		t.Fatalf("server 2 ratio = %v, want unaffected 1", got)
	}
	if got := e.CalibrationRatio(1); got < 4 {
		t.Fatalf("server 1 ratio = %v, want ~5", got)
	}
}

// TestSnapshotAllReportsCalibration asserts the observability surface:
// the per-server snapshot carries the live calibration ratio.
func TestSnapshotAllReportsCalibration(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	e.Observe(Feedback{Server: 1, Speed: 1, At: time.Second})
	e.ObserveService(1, time.Millisecond, 3*time.Millisecond)
	snaps := e.SnapshotAll(2 * time.Second)
	found := false
	for _, s := range snaps {
		if s.Server == sched.ServerID(1) {
			found = true
			if s.Calibration != 3 {
				t.Fatalf("snapshot calibration = %v, want 3", s.Calibration)
			}
		}
	}
	if !found {
		t.Fatal("server 1 missing from snapshot")
	}
}
