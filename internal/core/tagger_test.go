package core

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

func TestTagEmptyNoop(t *testing.T) {
	Tag(nil, nil, 0) // must not panic
}

func TestTagStaticFallback(t *testing.T) {
	ops := []*sched.Op{
		{Request: 1, Index: 0, Server: 0, Demand: 3 * time.Millisecond},
		{Request: 1, Index: 1, Server: 1, Demand: 7 * time.Millisecond},
	}
	now := 100 * time.Millisecond
	Tag(ops, nil, now)
	for _, op := range ops {
		if op.Tags.DemandBottleneck != 7*time.Millisecond {
			t.Fatalf("DemandBottleneck = %v, want 7ms", op.Tags.DemandBottleneck)
		}
		// Static tagging: RemainingTime degenerates to the demand
		// bottleneck (Rein-SBF's information).
		if op.Tags.RemainingTime != 7*time.Millisecond {
			t.Fatalf("RemainingTime = %v, want 7ms", op.Tags.RemainingTime)
		}
		if op.Tags.RequestFinish != now+7*time.Millisecond {
			t.Fatalf("RequestFinish = %v, want now+7ms", op.Tags.RequestFinish)
		}
		if op.Tags.IssuedAt != now || op.Tags.Fanout != 2 {
			t.Fatalf("IssuedAt/Fanout = %v/%d", op.Tags.IssuedAt, op.Tags.Fanout)
		}
	}
	if ops[0].Tags.ScaledDemand != 3*time.Millisecond {
		t.Fatalf("op0 ScaledDemand = %v, want 3ms", ops[0].Tags.ScaledDemand)
	}
	if got := ops[0].Tags.Slack(); got != 4*time.Millisecond {
		t.Fatalf("op0 Slack = %v, want 4ms", got)
	}
	if got := ops[1].Tags.Slack(); got != 0 {
		t.Fatalf("op1 (bottleneck) Slack = %v, want 0", got)
	}
}

func TestTagAdaptiveScalesBySpeed(t *testing.T) {
	est := mustEstimator(t, DefaultEstimatorConfig())
	// Server 1 runs at half speed; server 0 is nominal.
	est.Observe(Feedback{Server: 1, Speed: 0.5, At: 0})
	ops := []*sched.Op{
		{Request: 1, Index: 0, Server: 0, Demand: 6 * time.Millisecond},
		{Request: 1, Index: 1, Server: 1, Demand: 4 * time.Millisecond},
	}
	Tag(ops, est, 0)
	// Statically op0 (6ms) is the bottleneck; adaptively op1 takes
	// 4ms/0.5 = 8ms and the bottleneck flips.
	if ops[1].Tags.ScaledDemand != 8*time.Millisecond {
		t.Fatalf("op1 ScaledDemand = %v, want 8ms", ops[1].Tags.ScaledDemand)
	}
	for _, op := range ops {
		if op.Tags.RemainingTime != 8*time.Millisecond {
			t.Fatalf("RemainingTime = %v, want 8ms (speed-scaled bottleneck)", op.Tags.RemainingTime)
		}
		if op.Tags.DemandBottleneck != 6*time.Millisecond {
			t.Fatalf("DemandBottleneck = %v, want static 6ms", op.Tags.DemandBottleneck)
		}
	}
}

func TestTagAdaptiveWaitsEnterSlackNotRemaining(t *testing.T) {
	est := mustEstimator(t, DefaultEstimatorConfig())
	// Server 1 has a 10ms backlog at nominal speed.
	est.Observe(Feedback{Server: 1, Speed: 1.0, Backlog: 10 * time.Millisecond, At: 0})
	ops := []*sched.Op{
		{Request: 1, Index: 0, Server: 0, Demand: 2 * time.Millisecond},
		{Request: 1, Index: 1, Server: 1, Demand: 3 * time.Millisecond},
	}
	Tag(ops, est, 0)
	// RemainingTime ignores waits: max scaled demand = 3ms.
	if ops[0].Tags.RemainingTime != 3*time.Millisecond {
		t.Fatalf("RemainingTime = %v, want 3ms", ops[0].Tags.RemainingTime)
	}
	// ExpectedFinish includes waits: op1 = 10ms wait + 3ms = 13ms.
	if ops[1].Tags.ExpectedFinish != 13*time.Millisecond {
		t.Fatalf("op1 ExpectedFinish = %v, want 13ms", ops[1].Tags.ExpectedFinish)
	}
	// op0 finishes at 2ms, request at 13ms: 11ms of deferral headroom.
	if got := ops[0].Tags.Slack(); got != 11*time.Millisecond {
		t.Fatalf("op0 Slack = %v, want 11ms", got)
	}
	if got := ops[1].Tags.Slack(); got != 0 {
		t.Fatalf("op1 Slack = %v, want 0 (it is the bottleneck)", got)
	}
}

// TestTagSameServerGroupSumsResidual asserts batch-awareness: ops of
// one request bound for one server are one serial scheduling unit, so
// the SRPT key is their summed demand, not the max single op.
func TestTagSameServerGroupSumsResidual(t *testing.T) {
	ops := []*sched.Op{
		{Request: 1, Index: 0, Server: 0, Demand: 2 * time.Millisecond},
		{Request: 1, Index: 1, Server: 0, Demand: 3 * time.Millisecond},
		{Request: 1, Index: 2, Server: 0, Demand: 4 * time.Millisecond},
	}
	now := 50 * time.Millisecond
	Tag(ops, nil, now)
	for _, op := range ops {
		if op.Tags.RemainingTime != 9*time.Millisecond {
			t.Fatalf("RemainingTime = %v, want 9ms (group residual sum)", op.Tags.RemainingTime)
		}
		// The whole group shares the group finish estimate, so slack is
		// uniform (here zero: the group is its own bottleneck) and a
		// demotion decision can never split the batch.
		if op.Tags.ExpectedFinish != now+9*time.Millisecond {
			t.Fatalf("ExpectedFinish = %v, want now+9ms", op.Tags.ExpectedFinish)
		}
		if got := op.Tags.Slack(); got != 0 {
			t.Fatalf("Slack = %v, want 0 across the whole group", got)
		}
		// The static bottleneck stays the max single-op demand —
		// Rein-SBF's information, untouched by batch grouping.
		if op.Tags.DemandBottleneck != 4*time.Millisecond {
			t.Fatalf("DemandBottleneck = %v, want 4ms", op.Tags.DemandBottleneck)
		}
	}
}

// TestTagMixedGroupsCoherentSlack asserts that with two server groups,
// every member of one group carries identical slack — the property the
// server's batch admission relies on.
func TestTagMixedGroupsCoherentSlack(t *testing.T) {
	ops := []*sched.Op{
		{Request: 1, Index: 0, Server: 0, Demand: 2 * time.Millisecond},
		{Request: 1, Index: 1, Server: 0, Demand: 2 * time.Millisecond},
		{Request: 1, Index: 2, Server: 1, Demand: 10 * time.Millisecond},
	}
	Tag(ops, nil, 0)
	// Server 0's group: 4ms residual; server 1: 10ms → request finish 10ms.
	if ops[0].Tags.Slack() != ops[1].Tags.Slack() {
		t.Fatalf("group slack differs: %v vs %v", ops[0].Tags.Slack(), ops[1].Tags.Slack())
	}
	if got := ops[0].Tags.Slack(); got != 6*time.Millisecond {
		t.Fatalf("group slack = %v, want 6ms (10ms bottleneck - 4ms residual)", got)
	}
	if ops[0].Tags.RemainingTime != 10*time.Millisecond {
		t.Fatalf("RemainingTime = %v, want 10ms (max group residual)", ops[0].Tags.RemainingTime)
	}
}

// TestTagWideRequestMatchesNarrow asserts the map-based wide path
// computes the same tags as the quadratic narrow path.
func TestTagWideRequestMatchesNarrow(t *testing.T) {
	build := func() []*sched.Op {
		ops := make([]*sched.Op, tagGroupScan+4)
		for i := range ops {
			ops[i] = &sched.Op{
				Request: 1, Index: i,
				Server: sched.ServerID(i % 3),
				Demand: time.Duration(i+1) * time.Millisecond,
			}
		}
		return ops
	}
	wide := build()
	Tag(wide, nil, 0)
	// Recompute per-server residuals directly.
	residuals := map[sched.ServerID]time.Duration{}
	for _, op := range wide {
		residuals[op.Server] += op.Demand
	}
	var maxResidual time.Duration
	for _, r := range residuals {
		if r > maxResidual {
			maxResidual = r
		}
	}
	for _, op := range wide {
		if op.Tags.RemainingTime != maxResidual {
			t.Fatalf("RemainingTime = %v, want %v", op.Tags.RemainingTime, maxResidual)
		}
		if op.Tags.ExpectedFinish != residuals[op.Server] {
			t.Fatalf("ExpectedFinish = %v, want group residual %v", op.Tags.ExpectedFinish, residuals[op.Server])
		}
	}
}

// TestTagAppliesCalibration asserts Timing-feedback calibration reaches
// the tags: a server whose demands measured 3x the prediction tags 3x
// the scaled demand.
func TestTagAppliesCalibration(t *testing.T) {
	est := mustEstimator(t, DefaultEstimatorConfig())
	est.Observe(Feedback{Server: 0, Speed: 1, At: 0})
	est.ObserveService(0, time.Millisecond, 3*time.Millisecond)
	ops := []*sched.Op{{Request: 1, Server: 0, Demand: 2 * time.Millisecond}}
	Tag(ops, est, 0)
	if ops[0].Tags.ScaledDemand != 6*time.Millisecond {
		t.Fatalf("ScaledDemand = %v, want 6ms (2ms x ratio 3)", ops[0].Tags.ScaledDemand)
	}
	if ops[0].Tags.RemainingTime != 6*time.Millisecond {
		t.Fatalf("RemainingTime = %v, want calibrated 6ms", ops[0].Tags.RemainingTime)
	}
}

func TestTagSingleOp(t *testing.T) {
	ops := []*sched.Op{{Request: 9, Server: 2, Demand: time.Millisecond}}
	Tag(ops, nil, 0)
	if ops[0].Tags.Slack() != 0 {
		t.Fatal("single op should have zero slack")
	}
	if ops[0].Tags.Fanout != 1 {
		t.Fatal("fanout should be 1")
	}
	if ops[0].Tags.RemainingTime != time.Millisecond {
		t.Fatal("RemainingTime should equal own demand")
	}
}
