package core

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

func TestTagEmptyNoop(t *testing.T) {
	Tag(nil, nil, 0) // must not panic
}

func TestTagStaticFallback(t *testing.T) {
	ops := []*sched.Op{
		{Request: 1, Index: 0, Server: 0, Demand: 3 * time.Millisecond},
		{Request: 1, Index: 1, Server: 1, Demand: 7 * time.Millisecond},
	}
	now := 100 * time.Millisecond
	Tag(ops, nil, now)
	for _, op := range ops {
		if op.Tags.DemandBottleneck != 7*time.Millisecond {
			t.Fatalf("DemandBottleneck = %v, want 7ms", op.Tags.DemandBottleneck)
		}
		// Static tagging: RemainingTime degenerates to the demand
		// bottleneck (Rein-SBF's information).
		if op.Tags.RemainingTime != 7*time.Millisecond {
			t.Fatalf("RemainingTime = %v, want 7ms", op.Tags.RemainingTime)
		}
		if op.Tags.RequestFinish != now+7*time.Millisecond {
			t.Fatalf("RequestFinish = %v, want now+7ms", op.Tags.RequestFinish)
		}
		if op.Tags.IssuedAt != now || op.Tags.Fanout != 2 {
			t.Fatalf("IssuedAt/Fanout = %v/%d", op.Tags.IssuedAt, op.Tags.Fanout)
		}
	}
	if ops[0].Tags.ScaledDemand != 3*time.Millisecond {
		t.Fatalf("op0 ScaledDemand = %v, want 3ms", ops[0].Tags.ScaledDemand)
	}
	if got := ops[0].Tags.Slack(); got != 4*time.Millisecond {
		t.Fatalf("op0 Slack = %v, want 4ms", got)
	}
	if got := ops[1].Tags.Slack(); got != 0 {
		t.Fatalf("op1 (bottleneck) Slack = %v, want 0", got)
	}
}

func TestTagAdaptiveScalesBySpeed(t *testing.T) {
	est := mustEstimator(t, DefaultEstimatorConfig())
	// Server 1 runs at half speed; server 0 is nominal.
	est.Observe(Feedback{Server: 1, Speed: 0.5, At: 0})
	ops := []*sched.Op{
		{Request: 1, Index: 0, Server: 0, Demand: 6 * time.Millisecond},
		{Request: 1, Index: 1, Server: 1, Demand: 4 * time.Millisecond},
	}
	Tag(ops, est, 0)
	// Statically op0 (6ms) is the bottleneck; adaptively op1 takes
	// 4ms/0.5 = 8ms and the bottleneck flips.
	if ops[1].Tags.ScaledDemand != 8*time.Millisecond {
		t.Fatalf("op1 ScaledDemand = %v, want 8ms", ops[1].Tags.ScaledDemand)
	}
	for _, op := range ops {
		if op.Tags.RemainingTime != 8*time.Millisecond {
			t.Fatalf("RemainingTime = %v, want 8ms (speed-scaled bottleneck)", op.Tags.RemainingTime)
		}
		if op.Tags.DemandBottleneck != 6*time.Millisecond {
			t.Fatalf("DemandBottleneck = %v, want static 6ms", op.Tags.DemandBottleneck)
		}
	}
}

func TestTagAdaptiveWaitsEnterSlackNotRemaining(t *testing.T) {
	est := mustEstimator(t, DefaultEstimatorConfig())
	// Server 1 has a 10ms backlog at nominal speed.
	est.Observe(Feedback{Server: 1, Speed: 1.0, Backlog: 10 * time.Millisecond, At: 0})
	ops := []*sched.Op{
		{Request: 1, Index: 0, Server: 0, Demand: 2 * time.Millisecond},
		{Request: 1, Index: 1, Server: 1, Demand: 3 * time.Millisecond},
	}
	Tag(ops, est, 0)
	// RemainingTime ignores waits: max scaled demand = 3ms.
	if ops[0].Tags.RemainingTime != 3*time.Millisecond {
		t.Fatalf("RemainingTime = %v, want 3ms", ops[0].Tags.RemainingTime)
	}
	// ExpectedFinish includes waits: op1 = 10ms wait + 3ms = 13ms.
	if ops[1].Tags.ExpectedFinish != 13*time.Millisecond {
		t.Fatalf("op1 ExpectedFinish = %v, want 13ms", ops[1].Tags.ExpectedFinish)
	}
	// op0 finishes at 2ms, request at 13ms: 11ms of deferral headroom.
	if got := ops[0].Tags.Slack(); got != 11*time.Millisecond {
		t.Fatalf("op0 Slack = %v, want 11ms", got)
	}
	if got := ops[1].Tags.Slack(); got != 0 {
		t.Fatalf("op1 Slack = %v, want 0 (it is the bottleneck)", got)
	}
}

func TestTagSingleOp(t *testing.T) {
	ops := []*sched.Op{{Request: 9, Server: 2, Demand: time.Millisecond}}
	Tag(ops, nil, 0)
	if ops[0].Tags.Slack() != 0 {
		t.Fatal("single op should have zero slack")
	}
	if ops[0].Tags.Fanout != 1 {
		t.Fatal("fanout should be 1")
	}
	if ops[0].Tags.RemainingTime != time.Millisecond {
		t.Fatal("RemainingTime should equal own demand")
	}
}
