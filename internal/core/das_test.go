package core

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sched"
)

func mustDAS(t *testing.T, opts Options) *DAS {
	t.Helper()
	q, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return q
}

// dasOp builds an op with the given SRPT key and slack.
func dasOp(req sched.RequestID, remaining, slack time.Duration) *sched.Op {
	return &sched.Op{
		Request: req,
		Demand:  time.Millisecond,
		Tags: sched.Tags{
			RemainingTime:  remaining,
			ExpectedFinish: 100 * time.Millisecond,
			RequestFinish:  100*time.Millisecond + slack,
		},
	}
}

func TestDASOptionsValidation(t *testing.T) {
	if _, err := New(Options{Alpha: -0.1}); err == nil {
		t.Fatal("negative alpha should error")
	}
	if _, err := New(Options{Alpha: 1.1}); err == nil {
		t.Fatal("alpha > 1 should error")
	}
	if _, err := New(Options{Beta: -1}); err == nil {
		t.Fatal("negative beta should error")
	}
	if _, err := New(Options{MaxDelay: -time.Second}); err == nil {
		t.Fatal("negative MaxDelay should error")
	}
	if _, err := New(DefaultOptions()); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
}

func TestDASSRPTFirstOrdering(t *testing.T) {
	q := mustDAS(t, Options{})
	q.Push(dasOp(1, 100*time.Millisecond, 0), 0)
	q.Push(dasOp(2, 10*time.Millisecond, 0), 0)
	q.Push(dasOp(3, 50*time.Millisecond, 0), 0)
	want := []sched.RequestID{2, 3, 1}
	for _, w := range want {
		if got := q.Pop(0).Request; got != w {
			t.Fatalf("pop = request %d, want %d (SRPT order)", got, w)
		}
	}
}

func TestDASSlackDemotionFiresAboveThreshold(t *testing.T) {
	q := mustDAS(t, Options{Beta: 1})
	// Request 1's op is stuck behind a queue elsewhere far longer than
	// its whole remaining processing time (slack 50ms > remaining
	// 20ms): key = 20 + 1*20 = 40ms, demoted past the 21ms request.
	q.Push(dasOp(1, 20*time.Millisecond, 50*time.Millisecond), 0)
	q.Push(dasOp(2, 21*time.Millisecond, 0), 0)
	if got := q.Pop(0).Request; got != 2 {
		t.Fatalf("first pop = request %d, want 2 (high-slack op demoted)", got)
	}
}

func TestDASSlackBelowThresholdIgnored(t *testing.T) {
	q := mustDAS(t, Options{Beta: 1})
	// Slack 10ms <= remaining 20ms: below the demotion threshold, so
	// pure SRPT order holds and the smaller remaining time wins.
	q.Push(dasOp(1, 20*time.Millisecond, 10*time.Millisecond), 0)
	q.Push(dasOp(2, 21*time.Millisecond, 0), 0)
	if got := q.Pop(0).Request; got != 1 {
		t.Fatalf("first pop = request %d, want 1 (small slack must not perturb SRPT)", got)
	}
}

func TestDASSlackDemotionCapped(t *testing.T) {
	q := mustDAS(t, Options{Beta: 1})
	// Huge slack demotes by at most Beta*RemainingTime: key = 10+10 =
	// 20ms, which still beats a 25ms zero-slack request.
	q.Push(dasOp(1, 10*time.Millisecond, time.Hour), 0)
	q.Push(dasOp(2, 25*time.Millisecond, 0), 0)
	if got := q.Pop(0).Request; got != 1 {
		t.Fatalf("first pop = request %d, want 1 (demotion capped)", got)
	}
}

func TestDASNoSlackTermWhenBetaZero(t *testing.T) {
	q := mustDAS(t, Options{Beta: 0})
	q.Push(dasOp(1, 20*time.Millisecond, time.Hour), 0)
	q.Push(dasOp(2, 21*time.Millisecond, 0), 0)
	if got := q.Pop(0).Request; got != 1 {
		t.Fatalf("first pop = request %d, want 1 (beta=0 ignores slack)", got)
	}
}

func TestDASContinuousAging(t *testing.T) {
	q := mustDAS(t, Options{Alpha: 0.5})
	// Old large request vs newer slightly-smaller request:
	// key(1) = 100ms + 0.5*0 = 100ms; key(2) = 90ms + 0.5*60ms = 120ms.
	q.Push(dasOp(1, 100*time.Millisecond, 0), 0)
	q.Push(dasOp(2, 90*time.Millisecond, 0), 60*time.Millisecond)
	if got := q.Pop(60 * time.Millisecond).Request; got != 1 {
		t.Fatalf("first pop = request %d, want 1 (aging)", got)
	}
}

func TestDASNoAgingWhenAlphaZero(t *testing.T) {
	q := mustDAS(t, Options{})
	q.Push(dasOp(1, 100*time.Millisecond, 0), 0)
	q.Push(dasOp(2, 90*time.Millisecond, 0), 60*time.Millisecond)
	if got := q.Pop(60 * time.Millisecond).Request; got != 2 {
		t.Fatalf("first pop = request %d, want 2 (no aging)", got)
	}
}

func TestDASMaxDelayPromotesOldest(t *testing.T) {
	q := mustDAS(t, Options{MaxDelay: 10 * time.Millisecond})
	// A large request queued at t=0, small ones arriving later.
	q.Push(dasOp(1, time.Second, 0), 0)
	q.Push(dasOp(2, time.Millisecond, 0), 5*time.Millisecond)
	q.Push(dasOp(3, time.Millisecond, 0), 6*time.Millisecond)
	// Before the bound: SRPT order.
	if got := q.Pop(8 * time.Millisecond).Request; got != 2 {
		t.Fatalf("pop before bound = request %d, want 2", got)
	}
	// Past the bound: the starving op jumps the queue.
	if got := q.Pop(11 * time.Millisecond).Request; got != 1 {
		t.Fatalf("pop past bound = request %d, want 1 (promoted)", got)
	}
	if got := q.Pop(11 * time.Millisecond).Request; got != 3 {
		t.Fatalf("final pop = request %d, want 3", got)
	}
	if q.Len() != 0 || q.BacklogDemand() != 0 {
		t.Fatalf("queue not drained: len=%d backlog=%v", q.Len(), q.BacklogDemand())
	}
}

func TestDASMaxDelayHeapStaysConsistent(t *testing.T) {
	q := mustDAS(t, Options{MaxDelay: time.Millisecond})
	rng := dist.NewRand(5)
	now := time.Duration(0)
	pushed, popped := 0, 0
	seen := map[sched.RequestID]bool{}
	for i := 0; i < 2000; i++ {
		now += time.Duration(rng.Int64N(int64(time.Millisecond)))
		if rng.IntN(2) == 0 || q.Len() == 0 {
			pushed++
			q.Push(dasOp(sched.RequestID(pushed), time.Duration(rng.Int64N(int64(time.Second))), 0), now)
			continue
		}
		op := q.Pop(now)
		if op == nil {
			t.Fatal("nil pop with work queued")
		}
		if seen[op.Request] {
			t.Fatalf("request %d served twice", op.Request)
		}
		seen[op.Request] = true
		popped++
	}
	for q.Len() > 0 {
		op := q.Pop(now)
		if op == nil || seen[op.Request] {
			t.Fatal("drain inconsistency")
		}
		seen[op.Request] = true
		popped++
	}
	if popped != pushed {
		t.Fatalf("popped %d, pushed %d", popped, pushed)
	}
	if q.BacklogDemand() != 0 {
		t.Fatalf("backlog = %v after drain", q.BacklogDemand())
	}
}

func TestDASFIFOTieBreak(t *testing.T) {
	q := mustDAS(t, Options{})
	for i := 1; i <= 10; i++ {
		q.Push(dasOp(sched.RequestID(i), time.Second, 0), 0)
	}
	for i := 1; i <= 10; i++ {
		if got := q.Pop(0).Request; got != sched.RequestID(i) {
			t.Fatalf("tie order broken at %d: got %d", i, got)
		}
	}
}

func TestDASEmptyPop(t *testing.T) {
	q := mustDAS(t, DefaultOptions())
	if q.Pop(0) != nil {
		t.Fatal("Pop on empty should be nil")
	}
	if q.Len() != 0 || q.BacklogDemand() != 0 {
		t.Fatal("empty queue should report zero length and backlog")
	}
}

func TestDASBacklogTracking(t *testing.T) {
	q := mustDAS(t, DefaultOptions())
	a := dasOp(1, time.Second, 0)
	a.Demand = 2 * time.Millisecond
	b := dasOp(2, time.Second, 0)
	b.Demand = 3 * time.Millisecond
	q.Push(a, 0)
	q.Push(b, 0)
	if q.BacklogDemand() != 5*time.Millisecond {
		t.Fatalf("backlog = %v, want 5ms", q.BacklogDemand())
	}
	q.Pop(0)
	q.Pop(0)
	if q.BacklogDemand() != 0 {
		t.Fatalf("backlog after drain = %v, want 0", q.BacklogDemand())
	}
}

func TestDASDrainsAllQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := dist.NewRand(seed)
		q := mustDAS(t, DefaultOptions())
		const n = 200
		for i := 0; i < n; i++ {
			rem := time.Duration(rng.Int64N(int64(time.Second)))
			slack := time.Duration(rng.Int64N(int64(time.Second)))
			q.Push(dasOp(sched.RequestID(i), rem, slack), time.Duration(i)*time.Microsecond)
		}
		seen := map[sched.RequestID]bool{}
		prevKey := -1.0
		for q.Len() > 0 {
			k := q.keys[0]
			if k < prevKey {
				return false
			}
			prevKey = k
			op := q.Pop(0)
			if op == nil || seen[op.Request] {
				return false
			}
			seen[op.Request] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDASFactoryFallsBackOnBadOptions(t *testing.T) {
	p := Factory(Options{Alpha: -5})(0)
	if p == nil || p.Name() != "DAS" {
		t.Fatal("factory should fall back to defaults")
	}
}

func TestDASName(t *testing.T) {
	if mustDAS(t, DefaultOptions()).Name() != "DAS" {
		t.Fatal("Name should be DAS")
	}
}

func TestDASSlackThresholdConfigurable(t *testing.T) {
	// With threshold 3, slack of 2.5x remaining must NOT demote.
	q := mustDAS(t, Options{Beta: 1, SlackThreshold: 3})
	q.Push(dasOp(1, 20*time.Millisecond, 50*time.Millisecond), 0)
	q.Push(dasOp(2, 21*time.Millisecond, 0), 0)
	if got := q.Pop(0).Request; got != 1 {
		t.Fatalf("first pop = request %d, want 1 (below threshold)", got)
	}
	// Negative threshold is rejected.
	if _, err := New(Options{SlackThreshold: -1}); err == nil {
		t.Fatal("negative threshold should error")
	}
}

func TestDASDecisionStats(t *testing.T) {
	q := mustDAS(t, Options{Beta: 1, MaxDelay: 10 * time.Millisecond})
	// One plain SRPT push, one demoted push (slack beyond remaining).
	srpt := dasOp(1, 20*time.Millisecond, 0)
	demoted := dasOp(2, 20*time.Millisecond, 50*time.Millisecond)
	q.Push(srpt, 0)
	q.Push(demoted, 0)
	d := q.Decisions()
	if d.Pushed != 2 || d.SRPTFirst != 1 || d.LRPTDemoted != 1 {
		t.Fatalf("decisions after pushes = %+v", d)
	}
	if srpt.Class != sched.ClassSRPTFirst || demoted.Class != sched.ClassLRPTLast {
		t.Fatalf("classes = %v / %v", srpt.Class, demoted.Class)
	}
	// Let the demoted op exceed MaxDelay: it is promoted past priority.
	if got := q.Pop(0); got.Request != 1 {
		t.Fatalf("first pop = request %d, want 1", got.Request)
	}
	if got := q.Pop(20 * time.Millisecond); got.Request != 2 {
		t.Fatalf("promoted pop = request %d, want 2", got.Request)
	} else if got.Class != sched.ClassPromoted {
		t.Fatalf("promoted op class = %v, want promoted", got.Class)
	}
	if d := q.Decisions(); d.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", d.Promotions)
	}
}

func TestDASNearBoundaryCounted(t *testing.T) {
	q := mustDAS(t, Options{Beta: 1})
	// Slack at 1.05x remaining falls inside the ±10% boundary band.
	q.Push(dasOp(1, 20*time.Millisecond, 21*time.Millisecond), 0)
	// Slack at 2.5x remaining is far from the boundary.
	q.Push(dasOp(2, 20*time.Millisecond, 50*time.Millisecond), 0)
	d := q.Decisions()
	if d.NearBoundary != 1 {
		t.Fatalf("near-boundary = %d, want 1 (stats %+v)", d.NearBoundary, d)
	}
}

func TestDASBetaZeroClassifiesSRPT(t *testing.T) {
	q := mustDAS(t, Options{Beta: 0})
	op := dasOp(1, 20*time.Millisecond, time.Hour)
	q.Push(op, 0)
	// With the slack term ablated nothing is really demoted, so the
	// classification must stay honest.
	if op.Class != sched.ClassSRPTFirst {
		t.Fatalf("class = %v, want srpt-first under Beta=0", op.Class)
	}
	if d := q.Decisions(); d.LRPTDemoted != 0 || d.SRPTFirst != 1 {
		t.Fatalf("decisions = %+v", d)
	}
}

// TestDASAgingBoundPromotes asserts the relative bound: an op that
// waited past AgingBound x its remaining time is served next, out of
// key order, classified as promoted.
func TestDASAgingBoundPromotes(t *testing.T) {
	q := mustDAS(t, Options{Beta: 0.1, AgingBound: 2})
	big := dasOp(1, 10*time.Millisecond, 0) // allowance = 20ms
	q.Push(big, 0)
	q.Push(dasOp(2, time.Millisecond, 0), 19*time.Millisecond)
	// At 19ms the deadline (20ms) has not expired: SRPT order holds.
	if got := q.Pop(19 * time.Millisecond); got.Request != 2 {
		t.Fatalf("pop before deadline = request %d, want 2 (SRPT)", got.Request)
	}
	q.Push(dasOp(3, time.Millisecond, 0), 21*time.Millisecond)
	// Past the deadline the starved op jumps the shorter one.
	got := q.Pop(21 * time.Millisecond)
	if got != big {
		t.Fatalf("pop past deadline = request %d, want the aged op", got.Request)
	}
	if got.Class != sched.ClassPromoted {
		t.Fatalf("class = %v, want promoted", got.Class)
	}
	if d := q.Decisions(); d.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", d.Promotions)
	}
}

// TestDASAgingDeadlineIsStrict asserts the bound fires only strictly
// past the deadline, so frozen-time pops keep pure key order.
func TestDASAgingDeadlineIsStrict(t *testing.T) {
	q := mustDAS(t, Options{AgingBound: 2})
	big := dasOp(1, 10*time.Millisecond, 0)
	q.Push(big, 0)
	q.Push(dasOp(2, time.Millisecond, 0), 20*time.Millisecond)
	if got := q.Pop(20 * time.Millisecond); got.Request != 2 {
		t.Fatalf("pop at exact deadline = request %d, want 2 (bound must not fire)", got.Request)
	}
}

// TestDASAgingLazyDeletion asserts stale aging entries (ops already
// served through the priority heap) are skipped, and an emptied queue
// discards the leftover entries.
func TestDASAgingLazyDeletion(t *testing.T) {
	q := mustDAS(t, Options{AgingBound: 1})
	a := dasOp(1, time.Millisecond, 0)
	b := dasOp(2, 2*time.Millisecond, 0)
	q.Push(a, 0)
	q.Push(b, 0)
	if got := q.Pop(0); got != a {
		t.Fatalf("pop = request %d, want 1", got.Request)
	}
	// a's aging entry is now stale; far in the future b must still be
	// served exactly once, via promotion past its own deadline.
	got := q.Pop(time.Hour)
	if got != b {
		t.Fatalf("pop = %v, want request 2", got)
	}
	if q.Pop(time.Hour) != nil {
		t.Fatal("empty queue must pop nil")
	}
	if len(q.aging) != 0 {
		t.Fatalf("drained queue left %d aging entries", len(q.aging))
	}
}

// TestDASAgingFloorsUntaggedAtDemand asserts untagged traffic (zero
// RemainingTime) ages on its own demand, not a zero allowance.
func TestDASAgingFloorsUntaggedAtDemand(t *testing.T) {
	q := mustDAS(t, Options{AgingBound: 4})
	op := &sched.Op{Request: 1, Demand: time.Millisecond}
	if got := q.agingAllowance(op); got != 4*time.Millisecond {
		t.Fatalf("allowance = %v, want 4ms (floored at demand)", got)
	}
}

// TestDASPushBatchStaysContiguous asserts a coherently tagged batch is
// served as one contiguous run in submission order, with other work
// ordered around it by key.
func TestDASPushBatchStaysContiguous(t *testing.T) {
	q := mustDAS(t, DefaultOptions())
	q.Push(dasOp(1, 5*time.Millisecond, 0), 0)
	q.Push(dasOp(2, 20*time.Millisecond, 0), 0)
	batch := []*sched.Op{
		dasOp(10, 10*time.Millisecond, 0),
		dasOp(11, 10*time.Millisecond, 0),
		dasOp(12, 10*time.Millisecond, 0),
	}
	q.PushBatch(batch, 0)
	want := []sched.RequestID{1, 10, 11, 12, 2}
	for _, w := range want {
		if got := q.Pop(0).Request; got != w {
			t.Fatalf("pop = request %d, want %d", got, w)
		}
	}
}

// TestDASPushBatchOneDecision asserts the LRPT-last demotion is
// evaluated once per batch: every op shares the frame's classification
// and the batch demotes whole, never op by op.
func TestDASPushBatchOneDecision(t *testing.T) {
	q := mustDAS(t, DefaultOptions())
	// Slack 30ms > remaining 10ms: the frame fires the demotion.
	batch := []*sched.Op{
		dasOp(1, 10*time.Millisecond, 30*time.Millisecond),
		dasOp(2, 10*time.Millisecond, 30*time.Millisecond),
	}
	q.PushBatch(batch, 0)
	for _, op := range batch {
		if op.Class != sched.ClassLRPTLast {
			t.Fatalf("request %d class = %v, want lrpt-last", op.Request, op.Class)
		}
	}
	if d := q.Decisions(); d.LRPTDemoted != 2 || d.Pushed != 2 {
		t.Fatalf("decisions = %+v, want 2 demoted of 2 pushed", d)
	}
	// The demoted batch still pops contiguously.
	if a, b := q.Pop(0), q.Pop(0); a.Request != 1 || b.Request != 2 {
		t.Fatalf("pop order = %d,%d, want 1,2", a.Request, b.Request)
	}
}

// TestDASPushBatchEmpty asserts the degenerate frame is a no-op.
func TestDASPushBatchEmpty(t *testing.T) {
	q := mustDAS(t, DefaultOptions())
	q.PushBatch(nil, 0)
	if q.Len() != 0 {
		t.Fatalf("Len = %d after empty batch", q.Len())
	}
}
