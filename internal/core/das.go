package core

import (
	"container/heap"
	"fmt"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// Options are the DAS policy knobs. The evaluation's ablation (E10)
// switches the individual terms off through these.
type Options struct {
	// Alpha is the continuous aging weight in [0, 1]: how strongly
	// waiting time pulls an operation forward relative to newcomers
	// (prio decreases as Alpha*wait). 0 disables continuous aging; 1
	// degenerates toward FCFS. DAS's primary starvation control is
	// MaxDelay; Alpha is kept for the ablation study.
	Alpha float64
	// Beta is the LRPT-last slack-demotion weight (>= 0): how strongly
	// an operation whose request bottleneck lies elsewhere is deferred.
	// 0 disables the LRPT-last term, leaving pure request-level SRPT.
	Beta float64
	// MaxDelay bounds starvation: an operation that has waited longer
	// than MaxDelay is served next regardless of priority (oldest
	// first). 0 (the default) disables the bound. It trades mean for
	// tail: useful when an SLO caps worst-case latency, but it must be
	// sized well above typical waits — a bound that binds under normal
	// load collapses DAS to FCFS precisely where scheduling matters
	// (measured in the E10 ablation).
	MaxDelay time.Duration
	// SlackThreshold is the LRPT-last firing threshold as a multiple
	// of the request's remaining time: the demotion applies only when
	// Slack > SlackThreshold * RemainingTime. Higher values demote
	// only ops whose requests are very confidently stuck elsewhere,
	// insulating the SRPT order from slack-estimate noise (default 1).
	SlackThreshold float64
}

// DefaultOptions returns the parameters used throughout the evaluation:
// slack demotion at Beta=0.1, no continuous aging, no delay bound.
func DefaultOptions() Options {
	return Options{Alpha: 0, Beta: 0.1, MaxDelay: 0}
}

func (o Options) validate() error {
	if o.Alpha < 0 || o.Alpha > 1 {
		return fmt.Errorf("das: alpha %v outside [0,1]", o.Alpha)
	}
	if o.Beta < 0 {
		return fmt.Errorf("das: beta %v must be non-negative", o.Beta)
	}
	if o.MaxDelay < 0 {
		return fmt.Errorf("das: maxDelay %v must be non-negative", o.MaxDelay)
	}
	if o.SlackThreshold < 0 {
		return fmt.Errorf("das: slackThreshold %v must be non-negative", o.SlackThreshold)
	}
	return nil
}

// DAS is the server-side Distributed Adaptive Scheduler queue. The
// priority of operation o at time t combines (lower = served first):
//
//	prio(o,t) = RemainingTime(o)        // SRPT-first across requests
//	          + Beta  * Slack̄(o)        // LRPT-last within a request
//	          - Alpha * wait(o,t)       // optional continuous aging
//
// with the hard rule that any operation waiting beyond MaxDelay is
// served next (oldest first) — the starvation bound.
//
// RemainingTime is the request's speed-scaled bottleneck processing time
// (see Tag) and Slack̄ is the wait-aware deferral headroom capped at
// RemainingTime.
//
// The continuous-aging term shifts every queued operation by the same
// −Alpha·t at any comparison instant, so the *ordering* is fixed by the
// static key
//
//	key(o) = RemainingTime + Beta·Slack̄ + Alpha·Enqueued
//
// which lets DAS run on an ordinary binary heap with O(log n) operations
// and no periodic re-sorting — the property that makes it deployable on
// a busy server hot path. The MaxDelay check costs O(1) per Pop (FIFO
// head inspection) plus one O(log n) removal when it fires.
type DAS struct {
	opts Options
	ops  []*sched.Op
	keys []float64
	seqs []uint64
	seq  uint64

	fifo     []*sched.Op
	fifoHead int

	backlog time.Duration
	stats   sched.DecisionStats
}

var _ sched.Policy = (*DAS)(nil)

// New returns a DAS queue with the given options.
func New(opts Options) (*DAS, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &DAS{opts: opts}, nil
}

// Factory builds per-server DAS queues with the given options; invalid
// options fall back to defaults so the factory stays total (the CLI
// validates separately).
func Factory(opts Options) sched.Factory {
	if opts.validate() != nil {
		opts = DefaultOptions()
	}
	return func(uint64) sched.Policy {
		q, _ := New(opts) // options validated above
		return q
	}
}

// Name implements sched.Policy.
func (q *DAS) Name() string { return "DAS" }

// Key implements sched.Keyer, exposing the static priority key so the
// simulator's preemptive mode can compare queued against in-service
// operations.
func (q *DAS) Key(op *sched.Op) float64 { return q.key(op) }

var _ sched.Keyer = (*DAS)(nil)

// key computes the static priority key (see the type comment). The
// LRPT-last demotion is deliberately both thresholded and capped:
//
//   - thresholded — it fires only when the op's slack exceeds its
//     request's whole remaining processing time, i.e. when the request
//     is confidently stuck behind a long queue elsewhere. Small slack
//     values inherit the noise of queue-wait feedback, and letting them
//     perturb the key subdivides SBF's priority classes and destroys
//     the FIFO progress guarantee within a class (measured: a 4.7x p99
//     regression on bimodal demands);
//   - capped at Beta x RemainingTime — an uncapped penalty turns one
//     stale estimate into the request's permanent straggler.
func (q *DAS) key(op *sched.Op) float64 {
	k := float64(op.Tags.RemainingTime) + q.opts.Alpha*float64(op.Enqueued)
	if fire, _ := q.demote(op); fire {
		k += q.opts.Beta * float64(op.Tags.RemainingTime)
	}
	return k
}

// demote evaluates the LRPT-last firing rule for op: fire is whether
// the slack demotion applies, near is whether the op's slack fell
// within ±10% of the firing boundary — the band where queue-wait
// estimate noise could have flipped the decision (counted in
// DecisionStats.NearBoundary so the signal's margin is observable).
func (q *DAS) demote(op *sched.Op) (fire, near bool) {
	threshold := q.opts.SlackThreshold
	if threshold == 0 {
		threshold = 1
	}
	slack := float64(op.Tags.Slack())
	edge := threshold * float64(op.Tags.RemainingTime)
	fire = slack > edge
	near = edge > 0 && slack > 0.9*edge && slack < 1.1*edge
	return fire, near
}

// Push implements sched.Policy.
func (q *DAS) Push(op *sched.Op, now time.Duration) {
	op.Enqueued = now
	q.backlog += op.Demand
	fire, near := q.demote(op)
	q.stats.Pushed++
	if near {
		q.stats.NearBoundary++
	}
	// Beta 0 keeps the classification honest in the ablation: the
	// slack term is disabled, so nothing is really demoted.
	if fire && q.opts.Beta > 0 {
		q.stats.LRPTDemoted++
		op.Class = sched.ClassLRPTLast
	} else {
		q.stats.SRPTFirst++
		op.Class = sched.ClassSRPTFirst
	}
	heap.Push((*dasHeap)(q), op)
	if q.opts.MaxDelay > 0 {
		q.fifo = append(q.fifo, op)
	}
}

// Pop implements sched.Policy.
func (q *DAS) Pop(now time.Duration) *sched.Op {
	if len(q.ops) == 0 {
		return nil
	}
	if old := q.oldest(); old != nil && now-old.Enqueued > q.opts.MaxDelay {
		q.fifoHead++
		heap.Remove((*dasHeap)(q), dasHeapIndex(old))
		q.backlog -= old.Demand
		q.stats.Promotions++
		old.Class = sched.ClassPromoted
		return old
	}
	op, ok := heap.Pop((*dasHeap)(q)).(*sched.Op)
	if !ok {
		return nil
	}
	q.backlog -= op.Demand
	return op
}

// oldest returns the longest-waiting queued op, or nil when MaxDelay is
// disabled or the FIFO is drained.
func (q *DAS) oldest() *sched.Op {
	if q.opts.MaxDelay <= 0 {
		return nil
	}
	for q.fifoHead < len(q.fifo) {
		op := q.fifo[q.fifoHead]
		if dasHeapIndex(op) >= 0 {
			return op
		}
		// Already served through the heap path; drop and compact.
		q.fifo[q.fifoHead] = nil
		q.fifoHead++
		if q.fifoHead > 64 && q.fifoHead*2 >= len(q.fifo) {
			n := copy(q.fifo, q.fifo[q.fifoHead:])
			for i := n; i < len(q.fifo); i++ {
				q.fifo[i] = nil
			}
			q.fifo = q.fifo[:n]
			q.fifoHead = 0
		}
	}
	return nil
}

// Decisions implements sched.DecisionReporter: the queue's ordering
// decision counters since construction. The caller serializes it with
// Push/Pop like any Policy access.
func (q *DAS) Decisions() sched.DecisionStats { return q.stats }

var _ sched.DecisionReporter = (*DAS)(nil)

// Len implements sched.Policy.
func (q *DAS) Len() int { return len(q.ops) }

// BacklogDemand implements sched.Policy.
func (q *DAS) BacklogDemand() time.Duration { return q.backlog }

func dasHeapIndex(op *sched.Op) int       { return op.HeapIndex() }
func setDASHeapIndex(op *sched.Op, i int) { op.SetHeapIndex(i) }

// dasHeap adapts DAS to heap.Interface with keys cached at push. The
// op's SetHeapIndex/HeapIndex hooks keep positions current so MaxDelay
// promotion can remove an arbitrary element.
type dasHeap DAS

var _ heap.Interface = (*dasHeap)(nil)

func (h *dasHeap) Len() int { return len(h.ops) }

func (h *dasHeap) Less(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	return h.seqs[i] < h.seqs[j]
}

func (h *dasHeap) Swap(i, j int) {
	h.ops[i], h.ops[j] = h.ops[j], h.ops[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.seqs[i], h.seqs[j] = h.seqs[j], h.seqs[i]
	setDASHeapIndex(h.ops[i], i)
	setDASHeapIndex(h.ops[j], j)
}

func (h *dasHeap) Push(x any) {
	op, ok := x.(*sched.Op)
	if !ok {
		return
	}
	setDASHeapIndex(op, len(h.ops))
	h.ops = append(h.ops, op)
	h.keys = append(h.keys, (*DAS)(h).key(op))
	h.seqs = append(h.seqs, h.seq)
	h.seq++
}

func (h *dasHeap) Pop() any {
	n := len(h.ops)
	op := h.ops[n-1]
	h.ops[n-1] = nil
	h.ops = h.ops[:n-1]
	h.keys = h.keys[:n-1]
	h.seqs = h.seqs[:n-1]
	setDASHeapIndex(op, -1)
	return op
}
