package core

import (
	"container/heap"
	"fmt"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

// Options are the DAS policy knobs. The evaluation's ablation (E10)
// switches the individual terms off through these.
type Options struct {
	// Alpha is the continuous aging weight in [0, 1]: how strongly
	// waiting time pulls an operation forward relative to newcomers
	// (prio decreases as Alpha*wait). 0 disables continuous aging; 1
	// degenerates toward FCFS. DAS's primary starvation control is
	// MaxDelay; Alpha is kept for the ablation study.
	Alpha float64
	// Beta is the LRPT-last slack-demotion weight (>= 0): how strongly
	// an operation whose request bottleneck lies elsewhere is deferred.
	// 0 disables the LRPT-last term, leaving pure request-level SRPT.
	Beta float64
	// MaxDelay bounds starvation: an operation that has waited longer
	// than MaxDelay is served next regardless of priority (oldest
	// first). 0 (the default) disables the bound. It trades mean for
	// tail: useful when an SLO caps worst-case latency, but it must be
	// sized well above typical waits — a bound that binds under normal
	// load collapses DAS to FCFS precisely where scheduling matters
	// (measured in the E10 ablation).
	MaxDelay time.Duration
	// SlackThreshold is the LRPT-last firing threshold as a multiple
	// of the request's remaining time: the demotion applies only when
	// Slack > SlackThreshold * RemainingTime. Higher values demote
	// only ops whose requests are very confidently stuck elsewhere,
	// insulating the SRPT order from slack-estimate noise (default 1).
	SlackThreshold float64
	// AgingBound caps any queued operation's wait *relative to its own
	// request's remaining processing time*: an op that has waited
	// longer than its tagged slack plus AgingBound × RemainingTime is
	// served next (earliest deadline first), classified ClassPromoted.
	// Slack is deferral the request absorbs for free while bottlenecked
	// on another server, so the starvation clock starts once that
	// headroom is spent; for a bottleneck op (slack 0) the cap is
	// exactly AgingBound × RemainingTime. 0 disables the bound.
	//
	// This is the anti-starvation control the live tail needs where
	// MaxDelay cannot help: under sustained load of short requests,
	// SRPT order and LRPT-last demotion both defer large requests
	// without limit, and an absolute cutoff either never fires (sized
	// for the big requests) or collapses DAS to FCFS (sized for the
	// small ones). A relative bound scales the tolerance with request
	// size — a 2ms request is rescued after AgingBound×2ms, a 20ms
	// request after AgingBound×20ms — so short requests keep their
	// SRPT advantage while no request's wait can exceed AgingBound
	// times its service requirement.
	AgingBound float64
}

// DefaultOptions returns the parameters used throughout the simulator
// evaluation: slack demotion at Beta=0.1, no continuous aging, no
// delay or aging bound.
func DefaultOptions() Options {
	return Options{Alpha: 0, Beta: 0.1, MaxDelay: 0}
}

// LiveOptions returns the parameters the live data plane runs with:
// DefaultOptions plus the relative aging bound. The open-loop
// simulator rarely starves (arrivals pause when the system saturates
// only probabilistically), but the live store's closed-loop saturation
// starves demoted and large-RPT operations without a bound — the
// E21→E22 tail fix (see EXPERIMENTS.md).
//
// AgingBound 2 was tuned on the E21 live setup: under closed-loop
// saturation queue waits exceed every request's processing time, so
// the bound's EDF order (enqueue + slack + 2x RPT) governs the drain.
// The slack term is what pulls the tail *below* FCFS rather than
// merely matching it — ops whose request is bottlenecked on a deeper
// queue elsewhere spend that headroom waiting while bottleneck ops
// pass them, tightening request completions at no one's expense — and
// the 2x RPT term still serves shorter requests first among
// contemporaries. Larger bounds let the tail regress toward unbounded
// SRPT starvation (measured: p99 grows monotonically with the bound
// past ~4); at light load waits never reach the bound and pure DAS
// order prevails.
func LiveOptions() Options {
	o := DefaultOptions()
	o.AgingBound = 2
	return o
}

func (o Options) validate() error {
	if o.Alpha < 0 || o.Alpha > 1 {
		return fmt.Errorf("das: alpha %v outside [0,1]", o.Alpha)
	}
	if o.Beta < 0 {
		return fmt.Errorf("das: beta %v must be non-negative", o.Beta)
	}
	if o.MaxDelay < 0 {
		return fmt.Errorf("das: maxDelay %v must be non-negative", o.MaxDelay)
	}
	if o.SlackThreshold < 0 {
		return fmt.Errorf("das: slackThreshold %v must be non-negative", o.SlackThreshold)
	}
	if o.AgingBound < 0 {
		return fmt.Errorf("das: agingBound %v must be non-negative", o.AgingBound)
	}
	return nil
}

// DAS is the server-side Distributed Adaptive Scheduler queue. The
// priority of operation o at time t combines (lower = served first):
//
//	prio(o,t) = RemainingTime(o)        // SRPT-first across requests
//	          + Beta  * Slack̄(o)        // LRPT-last within a request
//	          - Alpha * wait(o,t)       // optional continuous aging
//
// with two hard starvation bounds layered on top: any operation waiting
// beyond the absolute MaxDelay is served next (oldest first), and — when
// AgingBound is on — any operation whose wait exceeds its tagged slack
// plus AgingBound times its request's remaining processing time is
// served next (earliest promotion deadline first).
//
// RemainingTime is the request's speed-scaled bottleneck processing time
// (see Tag) and Slack̄ is the wait-aware deferral headroom capped at
// RemainingTime.
//
// The continuous-aging term shifts every queued operation by the same
// −Alpha·t at any comparison instant, so the *ordering* is fixed by the
// static key
//
//	key(o) = RemainingTime + Beta·Slack̄ + Alpha·Enqueued
//
// which lets DAS run on an ordinary binary heap with O(log n) operations
// and no periodic re-sorting — the property that makes it deployable on
// a busy server hot path. The MaxDelay check costs O(1) per Pop (FIFO
// head inspection) plus one O(log n) removal when it fires; the
// AgingBound check is one deadline-heap peek plus one removal when it
// fires.
type DAS struct {
	opts Options
	ops  []*sched.Op
	keys []float64
	seqs []uint64
	seq  uint64

	// live maps each heap-resident op to its push sequence, allocated
	// only when a starvation bound keeps lazy aging/FIFO entries. It
	// exists so holds can validate an entry without dereferencing its
	// op pointer: a stale entry's op may already be recycled by the
	// caller's op pool and concurrently reinitialized by its next
	// owner — possibly another server's queue, outside this queue's
	// lock — so touching the pointed-to memory would be a data race.
	// Map lookup hashes the pointer value itself, never the pointee.
	live map[*sched.Op]uint64

	fifo     []agingEntry
	fifoHead int

	// aging orders queued ops by their promotion deadline
	// (Enqueued + Slack + AgingBound × RPT) when the relative bound
	// is on.
	// Entries of ops already served through the priority heap are
	// deleted lazily when they surface. Entries carry the op's push
	// sequence number so a recycled op struct (the live server pools
	// them) is never mistaken for the queued incarnation — see holds.
	aging agingHeap

	backlog time.Duration
	stats   sched.DecisionStats
}

var _ sched.Policy = (*DAS)(nil)

// New returns a DAS queue with the given options.
func New(opts Options) (*DAS, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	q := &DAS{opts: opts}
	if opts.MaxDelay > 0 || opts.AgingBound > 0 {
		q.live = make(map[*sched.Op]uint64)
	}
	return q, nil
}

// Factory builds per-server DAS queues with the given options; invalid
// options fall back to defaults so the factory stays total (the CLI
// validates separately).
func Factory(opts Options) sched.Factory {
	if opts.validate() != nil {
		opts = DefaultOptions()
	}
	return func(uint64) sched.Policy {
		q, _ := New(opts) // options validated above
		return q
	}
}

// Name implements sched.Policy.
func (q *DAS) Name() string { return "DAS" }

// Key implements sched.Keyer, exposing the static priority key so the
// simulator's preemptive mode can compare queued against in-service
// operations.
func (q *DAS) Key(op *sched.Op) float64 { return q.key(op) }

var _ sched.Keyer = (*DAS)(nil)

// key computes the static priority key (see the type comment). The
// LRPT-last demotion is deliberately both thresholded and capped:
//
//   - thresholded — it fires only when the op's slack exceeds its
//     request's whole remaining processing time, i.e. when the request
//     is confidently stuck behind a long queue elsewhere. Small slack
//     values inherit the noise of queue-wait feedback, and letting them
//     perturb the key subdivides SBF's priority classes and destroys
//     the FIFO progress guarantee within a class (measured: a 4.7x p99
//     regression on bimodal demands);
//   - capped at Beta x RemainingTime — an uncapped penalty turns one
//     stale estimate into the request's permanent straggler.
func (q *DAS) key(op *sched.Op) float64 {
	k := float64(op.Tags.RemainingTime) + q.opts.Alpha*float64(op.Enqueued)
	if fire, _ := q.demote(op); fire {
		k += q.opts.Beta * float64(op.Tags.RemainingTime)
	}
	return k
}

// demote evaluates the LRPT-last firing rule for op: fire is whether
// the slack demotion applies, near is whether the op's slack fell
// within ±10% of the firing boundary — the band where queue-wait
// estimate noise could have flipped the decision (counted in
// DecisionStats.NearBoundary so the signal's margin is observable).
func (q *DAS) demote(op *sched.Op) (fire, near bool) {
	threshold := q.opts.SlackThreshold
	if threshold == 0 {
		threshold = 1
	}
	slack := float64(op.Tags.Slack())
	edge := threshold * float64(op.Tags.RemainingTime)
	fire = slack > edge
	near = edge > 0 && slack > 0.9*edge && slack < 1.1*edge
	return fire, near
}

// Push implements sched.Policy.
func (q *DAS) Push(op *sched.Op, now time.Duration) {
	fire, near := q.demote(op)
	q.admit(op, now, fire, near)
}

// PushBatch implements sched.BatchPolicy: one request's per-server
// batch is admitted under a single LRPT-last decision, evaluated once
// on the frame's (coherent) tags. All ops share one priority key and
// consecutive sequence numbers, so the batch stays contiguous in
// service order instead of being shuffled through the queue by per-op
// estimate noise. Callers guarantee tag coherence (the live server
// checks the wire frame before choosing this path).
func (q *DAS) PushBatch(ops []*sched.Op, now time.Duration) {
	if len(ops) == 0 {
		return
	}
	fire, near := q.demote(ops[0])
	for _, op := range ops {
		q.admit(op, now, fire, near)
	}
}

var _ sched.BatchPolicy = (*DAS)(nil)

// admit enqueues one op under an already-made demotion decision.
func (q *DAS) admit(op *sched.Op, now time.Duration, fire, near bool) {
	op.Enqueued = now
	q.backlog += op.Demand
	q.stats.Pushed++
	if near {
		q.stats.NearBoundary++
	}
	// Beta 0 keeps the classification honest in the ablation: the
	// slack term is disabled, so nothing is really demoted.
	if fire && q.opts.Beta > 0 {
		q.stats.LRPTDemoted++
		op.Class = sched.ClassLRPTLast
	} else {
		q.stats.SRPTFirst++
		op.Class = sched.ClassSRPTFirst
	}
	heap.Push((*dasHeap)(q), op)
	seq := q.seqs[dasHeapIndex(op)]
	if q.live != nil {
		q.live[op] = seq
	}
	if q.opts.MaxDelay > 0 {
		q.fifo = append(q.fifo, agingEntry{op: op, seq: seq})
	}
	if q.opts.AgingBound > 0 {
		heap.Push(&q.aging, agingEntry{op: op, seq: seq, deadline: now + q.agingAllowance(op)})
	}
}

// holds reports whether the op of an aging/FIFO entry is still this
// queue's live incarnation: heap-resident here, at the recorded push
// sequence. A pointer that fails this check was already served and
// possibly recycled by the caller's op pool (and may even sit in
// another server's queue by now, being reinitialized concurrently) —
// which is exactly why the check consults the queue-side live map
// instead of dereferencing e.op; see the live field.
func (q *DAS) holds(e agingEntry) bool {
	seq, ok := q.live[e.op]
	return ok && seq == e.seq
}

// agingAllowance is how long an op may wait before the relative bound
// promotes it: the op's tagged slack — deferral the request absorbs
// for free while bottlenecked on another server — plus AgingBound
// times its request's remaining processing time, floored at the op's
// own demand so untagged traffic (zero RemainingTime) still ages at a
// sane rate. Spending the slack first is what lets DAS beat FCFS's
// tail under saturation instead of merely matching it: the promotion
// deadlines order bottleneck ops ahead of contemporaries that can
// afford to wait, so request completions tighten without any op
// overstaying its request's horizon.
func (q *DAS) agingAllowance(op *sched.Op) time.Duration {
	rpt := op.Tags.RemainingTime
	if rpt < op.Demand {
		rpt = op.Demand
	}
	return op.Tags.Slack() + time.Duration(q.opts.AgingBound*float64(rpt))
}

// Pop implements sched.Policy.
func (q *DAS) Pop(now time.Duration) *sched.Op {
	if len(q.ops) == 0 {
		if len(q.aging) > 0 {
			// Nothing queued: every remaining aging entry is stale.
			for i := range q.aging {
				q.aging[i] = agingEntry{}
			}
			q.aging = q.aging[:0]
		}
		return nil
	}
	if old := q.oldest(); old != nil && now-old.Enqueued > q.opts.MaxDelay {
		q.fifoHead++
		q.promote(old)
		return old
	}
	if op := q.agingExpired(now); op != nil {
		q.promote(op)
		return op
	}
	op, ok := heap.Pop((*dasHeap)(q)).(*sched.Op)
	if !ok {
		return nil
	}
	delete(q.live, op)
	q.backlog -= op.Demand
	return op
}

// promote removes op from the priority heap and serves it out of key
// order under a starvation bound.
func (q *DAS) promote(op *sched.Op) {
	heap.Remove((*dasHeap)(q), dasHeapIndex(op))
	delete(q.live, op)
	q.backlog -= op.Demand
	q.stats.Promotions++
	op.Class = sched.ClassPromoted
}

// agingExpired returns the queued op with the earliest expired
// promotion deadline, or nil when the relative bound is off or nothing
// has aged out. Entries whose ops were already served through the
// priority heap are dropped lazily here.
func (q *DAS) agingExpired(now time.Duration) *sched.Op {
	if q.opts.AgingBound <= 0 {
		return nil
	}
	for len(q.aging) > 0 {
		top := q.aging[0]
		if !q.holds(top) {
			heap.Pop(&q.aging) // served long ago; drop the stale entry
			continue
		}
		if top.deadline >= now {
			return nil // the earliest deadline has not expired yet
		}
		heap.Pop(&q.aging)
		return top.op
	}
	return nil
}

// oldest returns the longest-waiting queued op, or nil when MaxDelay is
// disabled or the FIFO is drained.
func (q *DAS) oldest() *sched.Op {
	if q.opts.MaxDelay <= 0 {
		return nil
	}
	for q.fifoHead < len(q.fifo) {
		e := q.fifo[q.fifoHead]
		if q.holds(e) {
			return e.op
		}
		// Already served through the heap path; drop and compact.
		q.fifo[q.fifoHead] = agingEntry{}
		q.fifoHead++
		if q.fifoHead > 64 && q.fifoHead*2 >= len(q.fifo) {
			n := copy(q.fifo, q.fifo[q.fifoHead:])
			for i := n; i < len(q.fifo); i++ {
				q.fifo[i] = agingEntry{}
			}
			q.fifo = q.fifo[:n]
			q.fifoHead = 0
		}
	}
	return nil
}

// Decisions implements sched.DecisionReporter: the queue's ordering
// decision counters since construction. The caller serializes it with
// Push/Pop like any Policy access.
func (q *DAS) Decisions() sched.DecisionStats { return q.stats }

var _ sched.DecisionReporter = (*DAS)(nil)

// Len implements sched.Policy.
func (q *DAS) Len() int { return len(q.ops) }

// BacklogDemand implements sched.Policy.
func (q *DAS) BacklogDemand() time.Duration { return q.backlog }

func dasHeapIndex(op *sched.Op) int       { return op.HeapIndex() }
func setDASHeapIndex(op *sched.Op, i int) { op.SetHeapIndex(i) }

// dasHeap adapts DAS to heap.Interface with keys cached at push. The
// op's SetHeapIndex/HeapIndex hooks keep positions current so MaxDelay
// promotion can remove an arbitrary element.
type dasHeap DAS

var _ heap.Interface = (*dasHeap)(nil)

func (h *dasHeap) Len() int { return len(h.ops) }

func (h *dasHeap) Less(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	return h.seqs[i] < h.seqs[j]
}

func (h *dasHeap) Swap(i, j int) {
	h.ops[i], h.ops[j] = h.ops[j], h.ops[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.seqs[i], h.seqs[j] = h.seqs[j], h.seqs[i]
	setDASHeapIndex(h.ops[i], i)
	setDASHeapIndex(h.ops[j], j)
}

func (h *dasHeap) Push(x any) {
	op, ok := x.(*sched.Op)
	if !ok {
		return
	}
	setDASHeapIndex(op, len(h.ops))
	h.ops = append(h.ops, op)
	h.keys = append(h.keys, (*DAS)(h).key(op))
	h.seqs = append(h.seqs, h.seq)
	h.seq++
}

func (h *dasHeap) Pop() any {
	n := len(h.ops)
	op := h.ops[n-1]
	h.ops[n-1] = nil
	h.ops = h.ops[:n-1]
	h.keys = h.keys[:n-1]
	h.seqs = h.seqs[:n-1]
	setDASHeapIndex(op, -1)
	return op
}

// agingEntry pairs a queued op with the push sequence identifying its
// incarnation (see holds) and, on the aging heap, its promotion
// deadline.
type agingEntry struct {
	op       *sched.Op
	seq      uint64
	deadline time.Duration
}

// agingHeap is a min-heap on promotion deadline. It does not track
// positions: ops served through the priority heap leave their entries
// behind, to be skipped lazily (HeapIndex < 0) when they surface.
type agingHeap []agingEntry

var _ heap.Interface = (*agingHeap)(nil)

func (h agingHeap) Len() int           { return len(h) }
func (h agingHeap) Less(i, j int) bool { return h[i].deadline < h[j].deadline }
func (h agingHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *agingHeap) Push(x any)        { *h = append(*h, x.(agingEntry)) }
func (h *agingHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = agingEntry{}
	*h = old[:n-1]
	return e
}
