package core

import (
	"sync"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
)

func mustEstimator(t *testing.T, cfg EstimatorConfig) *Estimator {
	t.Helper()
	e, err := NewEstimator(cfg)
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	return e
}

func TestEstimatorConfigValidation(t *testing.T) {
	bad := []EstimatorConfig{
		{Gain: 0, StaleAfter: time.Second, DefaultSpeed: 1},
		{Gain: 1.5, StaleAfter: time.Second, DefaultSpeed: 1},
		{Gain: 0.5, StaleAfter: 0, DefaultSpeed: 1},
		{Gain: 0.5, StaleAfter: time.Second, DefaultSpeed: 0},
	}
	for i, cfg := range bad {
		if _, err := NewEstimator(cfg); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, cfg)
		}
	}
	if _, err := NewEstimator(DefaultEstimatorConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestEstimatorUnknownServerDefaults(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	if got := e.Speed(5); got != 1.0 {
		t.Fatalf("Speed(unknown) = %v, want 1.0", got)
	}
	if got := e.ExpectedWait(5, time.Second); got != 0 {
		t.Fatalf("ExpectedWait(unknown) = %v, want 0", got)
	}
	now := 10 * time.Second
	if got := e.ExpectedFinish(5, 3*time.Millisecond, now); got != now+3*time.Millisecond {
		t.Fatalf("ExpectedFinish(unknown) = %v, want now+demand", got)
	}
	if _, _, ok := e.Snapshot(5); ok {
		t.Fatal("Snapshot of unknown server should report ok=false")
	}
}

func TestEstimatorFirstObservationAdoptsSpeed(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	e.Observe(Feedback{Server: 1, Speed: 0.5, At: time.Second})
	if got := e.Speed(1); got != 0.5 {
		t.Fatalf("Speed = %v, want 0.5 (first observation adopted outright)", got)
	}
}

func TestEstimatorEWMAConverges(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	e.Observe(Feedback{Server: 1, Speed: 1.0, At: 0})
	for i := 1; i <= 50; i++ {
		e.Observe(Feedback{Server: 1, Speed: 0.25, At: time.Duration(i) * time.Millisecond})
	}
	if got := e.Speed(1); got < 0.24 || got > 0.27 {
		t.Fatalf("Speed = %v, want converged near 0.25", got)
	}
}

func TestEstimatorZeroSpeedFeedbackIgnored(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	e.Observe(Feedback{Server: 1, Speed: 0.8, At: 0})
	e.Observe(Feedback{Server: 1, Speed: 0, At: time.Millisecond})
	if got := e.Speed(1); got != 0.8 {
		t.Fatalf("Speed = %v, want 0.8 (zero-speed feedback skipped)", got)
	}
}

func TestEstimatorBacklogDrainsForward(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	e.Observe(Feedback{Server: 1, Speed: 1.0, Backlog: 10 * time.Millisecond, At: 0})
	if got := e.ExpectedWait(1, 0); got != 10*time.Millisecond {
		t.Fatalf("wait at t=0 = %v, want 10ms", got)
	}
	if got := e.ExpectedWait(1, 4*time.Millisecond); got != 6*time.Millisecond {
		t.Fatalf("wait at t=4ms = %v, want 6ms (drained)", got)
	}
	if got := e.ExpectedWait(1, 20*time.Millisecond); got != 0 {
		t.Fatalf("wait past backlog = %v, want 0", got)
	}
}

func TestEstimatorSlowServerScalesWait(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	e.Observe(Feedback{Server: 1, Speed: 0.5, Backlog: 10 * time.Millisecond, At: 0})
	// 10ms of demand at speed 0.5 takes 20ms of wall time.
	if got := e.ExpectedWait(1, 0); got != 20*time.Millisecond {
		t.Fatalf("wait = %v, want 20ms", got)
	}
	finish := e.ExpectedFinish(1, 5*time.Millisecond, 0)
	if finish != 30*time.Millisecond { // 20ms wait + 5ms/0.5 processing
		t.Fatalf("ExpectedFinish = %v, want 30ms", finish)
	}
}

func TestEstimatorStaleViewDropsBacklog(t *testing.T) {
	cfg := DefaultEstimatorConfig()
	cfg.StaleAfter = 100 * time.Millisecond
	e := mustEstimator(t, cfg)
	e.Observe(Feedback{Server: 1, Speed: 1.0, Backlog: time.Hour, At: 0})
	if got := e.ExpectedWait(1, 200*time.Millisecond); got != 0 {
		t.Fatalf("stale wait = %v, want 0", got)
	}
	// Speed survives staleness.
	if got := e.Speed(1); got != 1.0 {
		t.Fatalf("stale Speed = %v, want 1.0", got)
	}
}

func TestEstimatorOutOfOrderFeedbackKeepsFreshest(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	e.Observe(Feedback{Server: 1, Speed: 1, Backlog: 5 * time.Millisecond, At: 10 * time.Millisecond})
	e.Observe(Feedback{Server: 1, Speed: 1, Backlog: 50 * time.Millisecond, At: 2 * time.Millisecond})
	_, backlog, ok := e.Snapshot(1)
	if !ok || backlog != 5*time.Millisecond {
		t.Fatalf("backlog = %v ok=%v, want 5ms from the fresher snapshot", backlog, ok)
	}
}

func TestEstimatorConcurrentAccess(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				sid := sched.ServerID(i % 16)
				e.Observe(Feedback{Server: sid, Speed: 1, Backlog: time.Millisecond, At: time.Duration(g*1000 + i)})
				e.ExpectedFinish(sid, time.Millisecond, time.Duration(i))
			}
		}()
	}
	wg.Wait()
}

func TestSnapshotAll(t *testing.T) {
	e := mustEstimator(t, DefaultEstimatorConfig())
	now := 10 * time.Millisecond
	e.Observe(Feedback{Server: 2, Backlog: 4 * time.Millisecond, Speed: 0.5, At: now})
	e.Observe(Feedback{Server: 1, Backlog: time.Millisecond, Speed: 1.5, At: now})
	e.MarkDown(3, now)

	snaps := e.SnapshotAll(now + 2*time.Millisecond)
	if len(snaps) != 3 {
		t.Fatalf("SnapshotAll returned %d views, want 3", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i-1].Server >= snaps[i].Server {
			t.Fatalf("views not sorted by server: %+v", snaps)
		}
	}
	s1, s2, s3 := snaps[0], snaps[1], snaps[2]
	if s1.Server != 1 || !s1.Known || s1.Down {
		t.Fatalf("server 1 view wrong: %+v", s1)
	}
	if s1.Speed != 1.5 || s1.Backlog != time.Millisecond {
		t.Fatalf("server 1 speed/backlog wrong: %+v", s1)
	}
	if s1.Age != 2*time.Millisecond {
		t.Fatalf("server 1 staleness %v, want 2ms", s1.Age)
	}
	if s2.Server != 2 || s2.Speed != 0.5 || s2.Backlog != 4*time.Millisecond {
		t.Fatalf("server 2 view wrong: %+v", s2)
	}
	if s3.Server != 3 || !s3.Down || s3.Backlog != 0 {
		t.Fatalf("server 3 should be down with discarded backlog: %+v", s3)
	}
	// Quarantine ages out in the snapshot view too.
	later := now + DefaultEstimatorConfig().ReviveAfter + time.Millisecond
	for _, s := range e.SnapshotAll(later) {
		if s.Server == 3 && s.Down {
			t.Fatalf("server 3 still down after ReviveAfter: %+v", s)
		}
	}
	// A query clock behind the observation clock clamps staleness to 0.
	for _, s := range e.SnapshotAll(0) {
		if s.Age != 0 {
			t.Fatalf("negative-age view leaked: %+v", s)
		}
	}
}
