package core_test

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/schedtest"
)

// dasCases is every option configuration the experiments use.
var dasCases = map[string]core.Options{
	"default":     core.DefaultOptions(),
	"pure-srpt":   {},
	"aging":       {Alpha: 0.25, Beta: 0.1},
	"maxdelay":    {Beta: 0.1, MaxDelay: 5 * time.Millisecond},
	"everything":  {Alpha: 0.1, Beta: 0.5, MaxDelay: 2 * time.Millisecond, SlackThreshold: 2},
	"big-beta":    {Beta: 3},
	"fcfs-ward":   {Alpha: 1},
	"threshold-0": {Beta: 0.1, SlackThreshold: 0.5},
	"live":        core.LiveOptions(),
	"aging-bound": {Beta: 0.1, AgingBound: 2},
	"both-bounds": {Beta: 0.1, MaxDelay: 5 * time.Millisecond, AgingBound: 4},
}

// TestDASInvariants runs the shared policy conformance suite over DAS
// in every option configuration the experiments use.
func TestDASInvariants(t *testing.T) {
	for name, opts := range dasCases {
		schedtest.RunInvariants(t, name, core.Factory(opts))
	}
}

// TestDASProperties runs the property suite over the same
// configurations. DAS is SRPT-first, so the shorter-first monotonicity
// claim holds for every configuration; configurations with a MaxDelay
// or AgingBound additionally assert the matching anti-starvation bound.
func TestDASProperties(t *testing.T) {
	for name, opts := range dasCases {
		schedtest.RunProperties(t, name, core.Factory(opts), schedtest.Properties{
			ShorterFirst: true,
			MaxDelay:     opts.MaxDelay,
			AgingBound:   opts.AgingBound,
		})
	}
}
