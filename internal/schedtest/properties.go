package schedtest

import (
	"math"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sched"
)

// Properties tunes the property suite to one policy's semantics; the
// structural properties (work conservation, key stability) always run.
type Properties struct {
	// MaxDelay, when positive, asserts the starvation bound: no
	// operation waits more than MaxDelay (plus one scheduling step)
	// while strictly higher-priority work keeps arriving.
	MaxDelay time.Duration
	// ShorterFirst, when true, asserts priority monotonicity for
	// SRPT-family policies: an operation that is smaller in every size
	// dimension never gets a worse priority key.
	ShorterFirst bool
	// AgingBound, when positive, asserts the relative starvation bound:
	// no bottleneck operation (zero slack) waits more than AgingBound
	// times its own remaining processing time (plus one scheduling
	// step) while higher-priority work keeps arriving; slack-carrying
	// ops may additionally wait out their slack first.
	AgingBound float64
}

// RunProperties drives the factory's queues through the property-based
// invariant suite. Key-based properties skip automatically for policies
// that do not expose a priority key (FCFS, Random). All randomness is
// seeded; failures reproduce bit-exactly.
func RunProperties(t *testing.T, name string, factory sched.Factory, props Properties) {
	t.Helper()
	t.Run(name+"/prop-conservation", func(t *testing.T) { testPropConservation(t, factory) })
	t.Run(name+"/prop-key-stability", func(t *testing.T) { testKeyStability(t, factory) })
	t.Run(name+"/prop-keyed-order", func(t *testing.T) { testKeyedOrder(t, factory) })
	if props.ShorterFirst {
		t.Run(name+"/prop-monotone", func(t *testing.T) { testPriorityMonotone(t, factory) })
	}
	if props.MaxDelay > 0 {
		t.Run(name+"/prop-starvation-bound", func(t *testing.T) {
			testStarvationBound(t, factory, props.MaxDelay)
		})
	}
	if props.AgingBound > 0 {
		t.Run(name+"/prop-aging-bound", func(t *testing.T) {
			testAgingBound(t, factory, props.AgingBound)
		})
	}
}

// sizedOp builds an op whose every size dimension is d, with zero slack
// (its own finish is the request bottleneck).
func sizedOp(id int, d time.Duration) *sched.Op {
	return &sched.Op{
		Request: sched.RequestID(id),
		Demand:  d,
		Tags: sched.Tags{
			DemandBottleneck: d,
			ScaledDemand:     d,
			RemainingTime:    d,
			ExpectedFinish:   d,
			RequestFinish:    d,
			Fanout:           2,
		},
	}
}

// testPropConservation is work conservation as a randomized property:
// whenever work is queued a Pop must yield it, nothing is lost or
// duplicated, and the backlog accounting returns to zero — across
// several independent seeds.
func testPropConservation(t *testing.T, factory sched.Factory) {
	for _, seed := range []uint64{23, 29, 31} {
		q := factory(seed)
		rng := dist.NewRand(seed)
		pushed, popped := 0, 0
		seen := map[sched.RequestID]bool{}
		now := time.Duration(0)
		for i := 0; i < 4000; i++ {
			now += time.Duration(rng.Int64N(int64(time.Millisecond)))
			if rng.Int64N(2) == 0 || q.Len() == 0 {
				pushed++
				q.Push(newOp(pushed, rng), now)
			} else {
				op := q.Pop(now)
				if op == nil {
					t.Fatalf("seed %d: Pop = nil with Len = %d", seed, q.Len())
				}
				if seen[op.Request] {
					t.Fatalf("seed %d: request %d served twice", seed, op.Request)
				}
				seen[op.Request] = true
				popped++
			}
		}
		for q.Len() > 0 {
			if q.Pop(now) == nil {
				t.Fatalf("seed %d: nil Pop mid-drain", seed)
			}
			popped++
		}
		if popped != pushed {
			t.Fatalf("seed %d: popped %d of %d pushed", seed, popped, pushed)
		}
		if q.BacklogDemand() != 0 {
			t.Fatalf("seed %d: drained backlog = %v", seed, q.BacklogDemand())
		}
	}
}

// testKeyStability asserts an op's priority key never changes while it
// is queued: the key recorded at push must equal the key at pop, no
// matter how much virtual time passes or what else moves through the
// queue. This is the property that lets DAS (and the heap baselines)
// run on a binary heap without periodic re-sorting.
func testKeyStability(t *testing.T, factory sched.Factory) {
	q := factory(37)
	keyer, ok := q.(sched.Keyer)
	if !ok {
		t.Skipf("%s exposes no priority key", q.Name())
	}
	rng := dist.NewRand(37)
	atPush := map[*sched.Op]float64{}
	now := time.Duration(0)
	id := 0
	for i := 0; i < 3000; i++ {
		now += time.Duration(rng.Int64N(int64(time.Millisecond)))
		if rng.Int64N(5) < 3 || q.Len() == 0 {
			id++
			op := newOp(id, rng)
			q.Push(op, now)
			atPush[op] = keyer.Key(op)
		} else {
			op := q.Pop(now)
			want, known := atPush[op]
			if !known {
				t.Fatal("popped an op that was never pushed")
			}
			if got := keyer.Key(op); got != want {
				t.Fatalf("key drifted while queued: pushed %v, popped %v", want, got)
			}
			delete(atPush, op)
		}
	}
}

// testKeyedOrder asserts that with time frozen (so neither aging nor a
// starvation bound can fire), pops come out in nondecreasing key order —
// the heap actually serves its priority.
func testKeyedOrder(t *testing.T, factory sched.Factory) {
	q := factory(41)
	keyer, ok := q.(sched.Keyer)
	if !ok {
		t.Skipf("%s exposes no priority key", q.Name())
	}
	rng := dist.NewRand(41)
	for i := 0; i < 400; i++ {
		q.Push(newOp(i, rng), 0)
	}
	prev := math.Inf(-1)
	for q.Len() > 0 {
		op := q.Pop(0)
		if op == nil {
			t.Fatal("nil Pop with work queued")
		}
		k := keyer.Key(op)
		if k < prev {
			t.Fatalf("pop order violates priority: key %v after %v", k, prev)
		}
		prev = k
	}
}

// testPriorityMonotone asserts SRPT-family monotonicity, table-driven
// over size ratios: growing an op in every size dimension (demand,
// bottleneck, remaining time) while holding slack at zero must never
// improve its priority.
func testPriorityMonotone(t *testing.T, factory sched.Factory) {
	q := factory(43)
	keyer, ok := q.(sched.Keyer)
	if !ok {
		t.Skipf("%s exposes no priority key", q.Name())
	}
	base := time.Millisecond
	for _, scale := range []int{2, 10, 100, 1000} {
		small := sizedOp(1, base)
		big := sizedOp(2, base*time.Duration(scale))
		// Push both at the same instant so enqueue-time terms cancel.
		q.Push(small, 0)
		q.Push(big, 0)
		if ks, kb := keyer.Key(small), keyer.Key(big); ks > kb {
			t.Fatalf("scale %d: smaller op keyed worse (%v > %v)", scale, ks, kb)
		}
		for q.Len() > 0 {
			q.Pop(time.Hour)
		}
	}
}

// testStarvationBound asserts the MaxDelay promise: a low-priority op
// facing an endless stream of higher-priority arrivals is still served
// within MaxDelay plus one scheduling step.
func testStarvationBound(t *testing.T, factory sched.Factory, maxDelay time.Duration) {
	q := factory(47)
	starved := sizedOp(1_000_000, time.Hour)
	q.Push(starved, 0)
	step := maxDelay / 4
	if step <= 0 {
		step = 1
	}
	now := time.Duration(0)
	for i := 1; i <= 64; i++ {
		now += step
		q.Push(sizedOp(i, time.Microsecond), now)
		op := q.Pop(now)
		if op == nil {
			t.Fatal("nil Pop with work queued")
		}
		if op == starved {
			if wait := now - starved.Enqueued; wait > maxDelay+step {
				t.Fatalf("starved op waited %v, bound is %v (+%v step)", wait, maxDelay, step)
			}
			return
		}
	}
	t.Fatalf("op starved past %v despite the MaxDelay bound", maxDelay)
}

// testAgingBound asserts the relative starvation promise: an op facing
// an endless stream of higher-priority arrivals is served within
// AgingBound times its own remaining processing time, plus one
// scheduling step. The victim is sized so the bound's deadline falls
// well inside the test horizon while the tiny-op stream would
// otherwise preempt it forever.
func testAgingBound(t *testing.T, factory sched.Factory, bound float64) {
	q := factory(53)
	const rpt = 10 * time.Millisecond
	starved := sizedOp(1_000_000, rpt)
	q.Push(starved, 0)
	allowance := time.Duration(bound * float64(rpt))
	step := allowance / 8
	if step <= 0 {
		step = 1
	}
	now := time.Duration(0)
	for i := 1; i <= 64; i++ {
		now += step
		q.Push(sizedOp(i, time.Microsecond), now)
		op := q.Pop(now)
		if op == nil {
			t.Fatal("nil Pop with work queued")
		}
		if op == starved {
			if wait := now - starved.Enqueued; wait > allowance+step {
				t.Fatalf("starved op waited %v, bound is %v (+%v step)", wait, allowance, step)
			}
			if op.Class != sched.ClassPromoted {
				t.Fatalf("rescued op classified %v, want %v", op.Class, sched.ClassPromoted)
			}
			return
		}
	}
	t.Fatalf("op starved past %v despite the AgingBound bound", allowance)
}
