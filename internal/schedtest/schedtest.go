// Package schedtest is a reusable conformance suite for sched.Policy
// implementations: every queue in the repository — baselines and DAS
// alike — must survive the same randomized push/pop schedules without
// losing, duplicating, or corrupting operations.
package schedtest

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sched"
)

// RunInvariants drives the factory's queues through randomized
// workloads and asserts the structural invariants every policy must
// hold. Call it from the package that owns the policy.
func RunInvariants(t *testing.T, name string, factory sched.Factory) {
	t.Helper()
	t.Run(name+"/empty", func(t *testing.T) { testEmpty(t, factory) })
	t.Run(name+"/conservation", func(t *testing.T) { testConservation(t, factory) })
	t.Run(name+"/interleaved", func(t *testing.T) { testInterleaved(t, factory) })
	t.Run(name+"/backlog", func(t *testing.T) { testBacklog(t, factory) })
	t.Run(name+"/reuse", func(t *testing.T) { testReuseAfterDrain(t, factory) })
}

func newOp(id int, rng interface{ Int64N(int64) int64 }) *sched.Op {
	demand := time.Duration(1+rng.Int64N(int64(10*time.Millisecond))) * 1
	remaining := demand + time.Duration(rng.Int64N(int64(20*time.Millisecond)))
	return &sched.Op{
		Request: sched.RequestID(id),
		Demand:  demand,
		Tags: sched.Tags{
			DemandBottleneck: remaining,
			ScaledDemand:     demand,
			RemainingTime:    remaining,
			ExpectedFinish:   remaining,
			RequestFinish:    remaining + time.Duration(rng.Int64N(int64(time.Millisecond))),
			Fanout:           int(1 + rng.Int64N(8)),
		},
	}
}

func testEmpty(t *testing.T, factory sched.Factory) {
	q := factory(1)
	if q.Pop(0) != nil {
		t.Fatal("Pop on a fresh queue must return nil")
	}
	if q.Len() != 0 {
		t.Fatalf("fresh Len = %d", q.Len())
	}
	if q.BacklogDemand() != 0 {
		t.Fatalf("fresh backlog = %v", q.BacklogDemand())
	}
	if q.Name() == "" {
		t.Fatal("policy must have a name")
	}
}

func testConservation(t *testing.T, factory sched.Factory) {
	q := factory(2)
	rng := dist.NewRand(11)
	const n = 500
	for i := 0; i < n; i++ {
		q.Push(newOp(i, rng), time.Duration(i)*time.Microsecond)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d after %d pushes", q.Len(), n)
	}
	seen := make(map[sched.RequestID]bool, n)
	now := time.Duration(n) * time.Microsecond
	for q.Len() > 0 {
		op := q.Pop(now)
		if op == nil {
			t.Fatal("nil Pop with Len > 0")
		}
		if seen[op.Request] {
			t.Fatalf("request %d served twice", op.Request)
		}
		seen[op.Request] = true
		now += time.Microsecond
	}
	if len(seen) != n {
		t.Fatalf("served %d ops, pushed %d", len(seen), n)
	}
	if q.Pop(now) != nil {
		t.Fatal("Pop after drain must return nil")
	}
}

func testInterleaved(t *testing.T, factory sched.Factory) {
	q := factory(3)
	rng := dist.NewRand(13)
	pushed, popped := 0, 0
	now := time.Duration(0)
	seen := map[sched.RequestID]bool{}
	for i := 0; i < 3000; i++ {
		now += time.Duration(rng.Int64N(int64(time.Millisecond)))
		if rng.Int64N(5) < 3 || q.Len() == 0 {
			pushed++
			q.Push(newOp(pushed, rng), now)
			continue
		}
		op := q.Pop(now)
		if op == nil {
			t.Fatal("nil Pop with work queued")
		}
		if seen[op.Request] {
			t.Fatalf("request %d served twice", op.Request)
		}
		seen[op.Request] = true
		popped++
		if q.Len() != pushed-popped {
			t.Fatalf("Len = %d, want %d", q.Len(), pushed-popped)
		}
	}
	for q.Len() > 0 {
		if op := q.Pop(now); op == nil || seen[op.Request] {
			t.Fatal("drain inconsistency")
		} else {
			seen[op.Request] = true
			popped++
		}
	}
	if popped != pushed {
		t.Fatalf("popped %d != pushed %d", popped, pushed)
	}
}

func testBacklog(t *testing.T, factory sched.Factory) {
	q := factory(4)
	rng := dist.NewRand(17)
	var want time.Duration
	ops := make(map[sched.RequestID]time.Duration)
	for i := 0; i < 200; i++ {
		op := newOp(i, rng)
		ops[op.Request] = op.Demand
		want += op.Demand
		q.Push(op, 0)
		if q.BacklogDemand() != want {
			t.Fatalf("backlog = %v after push, want %v", q.BacklogDemand(), want)
		}
	}
	for q.Len() > 0 {
		op := q.Pop(time.Second)
		want -= ops[op.Request]
		if q.BacklogDemand() != want {
			t.Fatalf("backlog = %v after pop, want %v", q.BacklogDemand(), want)
		}
	}
	if q.BacklogDemand() != 0 {
		t.Fatalf("final backlog = %v", q.BacklogDemand())
	}
}

func testReuseAfterDrain(t *testing.T, factory sched.Factory) {
	q := factory(5)
	rng := dist.NewRand(19)
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			q.Push(newOp(round*100+i, rng), time.Duration(round)*time.Second)
		}
		count := 0
		for q.Len() > 0 {
			if q.Pop(time.Duration(round)*time.Second+time.Minute) == nil {
				t.Fatal("nil pop mid-drain")
			}
			count++
		}
		if count != 50 {
			t.Fatalf("round %d served %d, want 50", round, count)
		}
	}
}
