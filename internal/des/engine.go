// Package des implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of scheduled
// events. Events fire in timestamp order; ties are broken by scheduling
// order, which makes runs fully deterministic for a fixed seed and event
// program. All simulated instants and intervals are expressed as
// time.Duration offsets from the simulation start.
package des

import (
	"container/heap"
	"errors"
	"time"
)

// ErrHalted is returned by Run when the simulation was stopped explicitly
// via Halt before reaching the requested horizon.
var ErrHalted = errors.New("simulation halted")

// Timer is a handle to a scheduled event. It can be used to cancel the
// event before it fires.
type Timer struct {
	at      time.Duration
	seq     uint64
	fn      func()
	index   int // heap index, -1 once fired or canceled
	stopped bool
}

// Stop cancels the timer. It reports whether the timer was still pending:
// false means the event already fired or was already stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.stopped || t.index < 0 {
		return false
	}
	t.stopped = true
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool {
	return t != nil && !t.stopped && t.index >= 0
}

// When returns the virtual time at which the timer fires (or fired).
func (t *Timer) When() time.Duration { return t.at }

// Engine is a single-threaded discrete-event executor. The zero value is
// ready to use. Engine is not safe for concurrent use; a simulation is a
// sequential program over virtual time.
type Engine struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	halted  bool
	stepped uint64
}

// New returns an engine with its clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.stepped }

// Len returns the number of pending (non-canceled) events.
func (e *Engine) Len() int {
	n := 0
	for _, t := range e.events {
		if !t.stopped {
			n++
		}
	}
	return n
}

// Schedule runs fn after delay units of virtual time. A negative delay is
// treated as zero (fire at the current instant, after already-queued
// events for that instant).
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at the absolute virtual time at. Times in the past are
// clamped to the current instant.
func (e *Engine) At(at time.Duration, fn func()) *Timer {
	if at < e.now {
		at = e.now
	}
	t := &Timer{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, t)
	return t
}

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the single next event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		t, ok := heap.Pop(&e.events).(*Timer)
		if !ok {
			return false
		}
		t.index = -1
		if t.stopped {
			continue
		}
		e.now = t.at
		e.stepped++
		t.fn()
		return true
	}
	return false
}

// Run executes events until the event queue is empty, the clock passes
// horizon, or Halt is called. A zero horizon means run until idle.
// It returns ErrHalted if stopped via Halt, nil otherwise. On return the
// clock is at the time of the last executed event (or at horizon if the
// horizon was reached with events still pending).
func (e *Engine) Run(horizon time.Duration) error {
	e.halted = false
	for {
		if e.halted {
			return ErrHalted
		}
		next, ok := e.peek()
		if !ok {
			return nil
		}
		if horizon > 0 && next.at > horizon {
			e.now = horizon
			return nil
		}
		e.Step()
	}
}

// peek returns the next non-canceled event without executing it.
func (e *Engine) peek() (*Timer, bool) {
	for len(e.events) > 0 {
		t := e.events[0]
		if !t.stopped {
			return t, true
		}
		popped, _ := heap.Pop(&e.events).(*Timer)
		if popped != nil {
			popped.index = -1
		}
	}
	return nil, false
}

// eventHeap orders timers by (at, seq).
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	t, ok := x.(*Timer)
	if !ok {
		return
	}
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

var _ heap.Interface = (*eventHeap)(nil)
