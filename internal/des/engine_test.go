package des

import (
	"testing"
	"time"
)

func TestEngineZeroValueReady(t *testing.T) {
	var e Engine
	fired := false
	e.Schedule(time.Second, func() { fired = true })
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("event did not fire")
	}
	if got, want := e.Now(), time.Second; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var at []time.Duration
	e.Schedule(time.Second, func() {
		at = append(at, e.Now())
		e.Schedule(time.Second, func() {
			at = append(at, e.Now())
		})
	})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(at) != 2 || at[0] != time.Second || at[1] != 2*time.Second {
		t.Fatalf("fire times = %v, want [1s 2s]", at)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := New()
	e.Schedule(time.Second, func() {
		e.Schedule(-time.Hour, func() {
			if e.Now() != time.Second {
				t.Errorf("clamped event fired at %v, want 1s", e.Now())
			}
		})
	})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEngineAtPastClamped(t *testing.T) {
	e := New()
	e.Schedule(2*time.Second, func() {
		e.At(time.Second, func() {
			if e.Now() != 2*time.Second {
				t.Errorf("past event fired at %v, want 2s", e.Now())
			}
		})
	})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	fired := false
	tm := e.Schedule(time.Second, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := New()
	tm := e.Schedule(time.Second, func() {})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
	if tm.Pending() {
		t.Fatal("fired timer should not be pending")
	}
}

func TestEngineHorizon(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(time.Second, func() { fired++ })
	e.Schedule(10*time.Second, func() { fired++ })
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if got := e.Now(); got != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s (clock advanced to horizon)", got)
	}
	// The remaining event still fires if we keep running.
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestEngineHalt(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(time.Second, func() {
		fired++
		e.Halt()
	})
	e.Schedule(2*time.Second, func() { fired++ })
	if err := e.Run(0); err != ErrHalted {
		t.Fatalf("Run = %v, want ErrHalted", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestEngineStepAndCounts(t *testing.T) {
	e := New()
	e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	if !e.Step() {
		t.Fatal("Step should execute an event")
	}
	if e.Steps() != 1 {
		t.Fatalf("Steps = %d, want 1", e.Steps())
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1", e.Len())
	}
	if !e.Step() {
		t.Fatal("Step should execute the second event")
	}
	if e.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestEngineLenExcludesStopped(t *testing.T) {
	e := New()
	tm := e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	tm.Stop()
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after cancel", e.Len())
	}
}

func TestEngineManyEventsDeterministic(t *testing.T) {
	run := func() []time.Duration {
		e := New()
		var fired []time.Duration
		// Interleave a deterministic but shuffled-looking schedule.
		for i := 0; i < 1000; i++ {
			d := time.Duration((i*7919)%997) * time.Millisecond
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return fired
	}
	a, b := run(), run()
	if len(a) != 1000 || len(b) != 1000 {
		t.Fatalf("lengths = %d, %d, want 1000", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("time went backwards at %d: %v after %v", i, a[i], a[i-1])
		}
	}
}
