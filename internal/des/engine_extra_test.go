package des

import (
	"testing"
	"time"
)

func TestEngineWhenAndPendingLifecycle(t *testing.T) {
	e := New()
	tm := e.Schedule(3*time.Second, func() {})
	if tm.When() != 3*time.Second {
		t.Fatalf("When = %v, want 3s", tm.When())
	}
	if !tm.Pending() {
		t.Fatal("timer should be pending before run")
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tm.Pending() {
		t.Fatal("timer should not be pending after firing")
	}
	if tm.When() != 3*time.Second {
		t.Fatal("When should still report the fire time")
	}
}

func TestEngineResumeAfterHalt(t *testing.T) {
	e := New()
	var fired []int
	e.Schedule(1*time.Second, func() { fired = append(fired, 1); e.Halt() })
	e.Schedule(2*time.Second, func() { fired = append(fired, 2) })
	if err := e.Run(0); err != ErrHalted {
		t.Fatalf("Run = %v, want ErrHalted", err)
	}
	// Resuming picks up where the halt left off.
	if err := e.Run(0); err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	if len(fired) != 2 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [1 2]", fired)
	}
}

func TestEngineCancelDuringEvent(t *testing.T) {
	e := New()
	var later *Timer
	canceled := false
	e.Schedule(time.Second, func() {
		canceled = later.Stop()
	})
	later = e.Schedule(2*time.Second, func() {
		t.Error("canceled event fired")
	})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !canceled {
		t.Fatal("Stop from within an event should succeed")
	}
}

func TestEngineStopNilTimer(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("Stop on nil timer should be false")
	}
	if tm.Pending() {
		t.Fatal("nil timer should not be pending")
	}
}

func TestEngineHeavyCancelChurn(t *testing.T) {
	e := New()
	fired := 0
	var timers []*Timer
	for i := 0; i < 2000; i++ {
		d := time.Duration(i%97+1) * time.Millisecond
		timers = append(timers, e.Schedule(d, func() { fired++ }))
	}
	// Cancel every third timer.
	canceled := 0
	for i := 0; i < len(timers); i += 3 {
		if timers[i].Stop() {
			canceled++
		}
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 2000-canceled {
		t.Fatalf("fired %d, want %d", fired, 2000-canceled)
	}
}
