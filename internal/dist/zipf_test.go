package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := NewZipf(-5, 1); err == nil {
		t.Fatal("negative n should error")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Fatal("negative exponent should error")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Fatal("NaN exponent should error")
	}
	if _, err := NewZipf(10, math.Inf(1)); err == nil {
		t.Fatal("Inf exponent should error")
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, err := NewZipf(10, 0)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	for k := 0; k < 10; k++ {
		if p := z.Prob(k); math.Abs(p-0.1) > 1e-12 {
			t.Fatalf("Prob(%d) = %v, want 0.1", k, p)
		}
	}
	if math.Abs(z.Mean()-4.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 4.5", z.Mean())
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	for _, s := range []float64{0, 0.5, 0.9, 1.0, 1.5} {
		z, err := NewZipf(1000, s)
		if err != nil {
			t.Fatalf("NewZipf: %v", err)
		}
		sum := 0.0
		for k := 0; k < 1000; k++ {
			sum += z.Prob(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("s=%v: probs sum to %v, want 1", s, sum)
		}
	}
}

func TestZipfMonotoneProbs(t *testing.T) {
	z, err := NewZipf(100, 0.99)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	for k := 1; k < 100; k++ {
		if z.Prob(k) > z.Prob(k-1)+1e-15 {
			t.Fatalf("Prob not monotone at %d: %v > %v", k, z.Prob(k), z.Prob(k-1))
		}
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	z, err := NewZipf(50, 1.0)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	rng := NewRand(23)
	const n = 500000
	counts := make([]int, 50)
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	for k := 0; k < 10; k++ { // head ranks have tight estimates
		got := float64(counts[k]) / n
		want := z.Prob(k)
		if math.Abs(got-want) > 0.004 {
			t.Fatalf("rank %d: freq %.4f vs prob %.4f", k, got, want)
		}
	}
}

func TestZipfSampleInRangeQuick(t *testing.T) {
	z, err := NewZipf(137, 0.8)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	f := func(seed uint64) bool {
		rng := NewRand(seed)
		for i := 0; i < 100; i++ {
			k := z.Sample(rng)
			if k < 0 || k >= 137 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfProbOutOfRange(t *testing.T) {
	z, err := NewZipf(5, 1)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	if z.Prob(-1) != 0 || z.Prob(5) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}
