package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// Arrival generates the instants of an arrival process. Implementations
// must be pure functions of (previous instant, rng) — never of anything
// downstream like response latency — which is what makes a load
// generator built on them open-loop: the send schedule is fixed by the
// process and the seed alone.
type Arrival interface {
	// Next returns the first arrival instant strictly after t.
	Next(t time.Duration, rng *rand.Rand) time.Duration
	String() string
}

var (
	_ Arrival = (*Poisson)(nil)
	_ Arrival = (*FixedRate)(nil)
	_ Arrival = (*OnOff)(nil)
)

// FixedRate emits perfectly periodic arrivals at Rate per second — the
// zero-variance baseline that isolates queueing noise from arrival
// noise.
type FixedRate struct {
	Rate float64
}

// NewFixedRate validates the rate.
func NewFixedRate(rate float64) (*FixedRate, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("fixedrate: rate %v must be positive and finite", rate)
	}
	return &FixedRate{Rate: rate}, nil
}

// Next implements Arrival.
func (p *FixedRate) Next(t time.Duration, _ *rand.Rand) time.Duration {
	return t + time.Duration(float64(time.Second)/p.Rate)
}

func (p *FixedRate) String() string { return fmt.Sprintf("fixed(%.1f/s)", p.Rate) }

// OnOff is a two-state Markov-modulated Poisson process (an MMPP-2 with
// a silent off state): exponentially distributed on-periods with mean
// OnMean during which arrivals are Poisson at RateOn, alternating with
// exponentially distributed off-periods with mean OffMean carrying no
// arrivals. The long-run mean rate is RateOn * OnMean / (OnMean +
// OffMean); use NewOnOff to solve RateOn from a target mean. The state
// trajectory is itself sampled from the rng, so two generators with the
// same seed see the same bursts.
type OnOff struct {
	RateOn  float64
	OnMean  time.Duration
	OffMean time.Duration

	// Sampled state trajectory, advanced lazily as Next consumes it:
	// the current on-period is [onStart, onEnd).
	onStart, onEnd time.Duration
	started        bool
}

// NewOnOff builds a bursty process whose long-run mean rate is
// meanRate: the on-state rate is scaled up by the inverse duty cycle.
func NewOnOff(meanRate float64, onMean, offMean time.Duration) (*OnOff, error) {
	if meanRate <= 0 || math.IsNaN(meanRate) || math.IsInf(meanRate, 0) {
		return nil, fmt.Errorf("onoff: mean rate %v must be positive and finite", meanRate)
	}
	if onMean <= 0 || offMean < 0 {
		return nil, fmt.Errorf("onoff: on mean %v must be positive and off mean %v non-negative", onMean, offMean)
	}
	duty := float64(onMean) / float64(onMean+offMean)
	return &OnOff{
		RateOn:  meanRate / duty,
		OnMean:  onMean,
		OffMean: offMean,
	}, nil
}

// Next implements Arrival: candidate exponential gaps at RateOn are
// folded over the sampled on-periods, skipping the silent gaps.
func (p *OnOff) Next(t time.Duration, rng *rand.Rand) time.Duration {
	if !p.started {
		p.started = true
		p.onStart = 0
		p.onEnd = expDur(rng, p.OnMean)
	}
	// Fast-forward the state trajectory to cover t.
	for t >= p.onEnd {
		p.advance(rng)
	}
	if t < p.onStart {
		t = p.onStart
	}
	for {
		gap := time.Duration(rng.ExpFloat64() / p.RateOn * float64(time.Second))
		if gap <= 0 {
			gap = 1
		}
		t += gap
		if t < p.onEnd {
			return t
		}
		// The gap ran past the end of the on-period: the unspent part
		// resumes at the start of the next one (memorylessness of the
		// exponential makes discarding vs. carrying equivalent; carrying
		// keeps the mean rate exact for short on-periods too).
		spill := t - p.onEnd
		p.advance(rng)
		t = p.onStart + spill
		for t >= p.onEnd {
			spill = t - p.onEnd
			p.advance(rng)
			t = p.onStart + spill
		}
		return t
	}
}

// advance samples the next on-period after the current one.
func (p *OnOff) advance(rng *rand.Rand) {
	p.onStart = p.onEnd + expDur(rng, p.OffMean)
	p.onEnd = p.onStart + expDur(rng, p.OnMean)
}

// expDur samples an exponential duration with the given mean (0 mean
// collapses to 0 — a degenerate always-on process).
func expDur(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d <= 0 {
		d = 1
	}
	return d
}

func (p *OnOff) String() string {
	return fmt.Sprintf("onoff(%.1f/s on, on=%v, off=%v)", p.RateOn, p.OnMean, p.OffMean)
}
