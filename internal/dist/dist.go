// Package dist provides the random-variate machinery used by the workload
// generator and the simulator: service-demand distributions, discrete
// fan-out distributions, Zipf key popularity, and (possibly time-varying)
// Poisson arrival processes.
//
// Everything is driven by an explicit *rand.Rand so simulations are
// reproducible from a single seed; nothing in this package touches global
// randomness.
package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// NewRand returns a deterministic PCG-backed generator for the seed.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Duration samples positive time intervals, e.g. service demands or
// network delays.
type Duration interface {
	// Sample draws one value. Implementations must return a
	// non-negative duration.
	Sample(rng *rand.Rand) time.Duration
	// Mean returns the distribution mean, used for load calibration.
	Mean() time.Duration
	// String describes the distribution for logs and experiment tables.
	String() string
}

// Discrete samples positive integers, e.g. request fan-out.
type Discrete interface {
	Sample(rng *rand.Rand) int
	Mean() float64
	String() string
}

// --- Duration distributions -----------------------------------------

// Deterministic always returns V.
type Deterministic struct{ V time.Duration }

var _ Duration = Deterministic{}

// Sample implements Duration.
func (d Deterministic) Sample(*rand.Rand) time.Duration { return d.V }

// Mean implements Duration.
func (d Deterministic) Mean() time.Duration { return d.V }

func (d Deterministic) String() string { return fmt.Sprintf("det(%v)", d.V) }

// Exponential has the given mean. The classic M/G/1 "exponential service
// time" used as the default demand distribution in the Rein literature.
type Exponential struct{ M time.Duration }

var _ Duration = Exponential{}

// Sample implements Duration.
func (d Exponential) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(d.M))
}

// Mean implements Duration.
func (d Exponential) Mean() time.Duration { return d.M }

func (d Exponential) String() string { return fmt.Sprintf("exp(%v)", d.M) }

// Uniform is uniform on [Lo, Hi].
type Uniform struct{ Lo, Hi time.Duration }

var _ Duration = Uniform{}

// Sample implements Duration.
func (d Uniform) Sample(rng *rand.Rand) time.Duration {
	if d.Hi <= d.Lo {
		return d.Lo
	}
	return d.Lo + time.Duration(rng.Int64N(int64(d.Hi-d.Lo)+1))
}

// Mean implements Duration.
func (d Uniform) Mean() time.Duration { return (d.Lo + d.Hi) / 2 }

func (d Uniform) String() string { return fmt.Sprintf("unif(%v,%v)", d.Lo, d.Hi) }

// Lognormal is parameterized by its mean and the sigma of the underlying
// normal; larger Sigma gives a heavier tail at the same mean.
type Lognormal struct {
	M     time.Duration
	Sigma float64
}

var _ Duration = Lognormal{}

// Sample implements Duration.
func (d Lognormal) Sample(rng *rand.Rand) time.Duration {
	// mean of lognormal = exp(mu + sigma^2/2)  =>  mu = ln(M) - sigma^2/2.
	mu := math.Log(float64(d.M)) - d.Sigma*d.Sigma/2
	v := math.Exp(mu + d.Sigma*rng.NormFloat64())
	if v < 0 {
		v = 0
	}
	return time.Duration(v)
}

// Mean implements Duration.
func (d Lognormal) Mean() time.Duration { return d.M }

func (d Lognormal) String() string { return fmt.Sprintf("lognorm(%v,s=%.2f)", d.M, d.Sigma) }

// BoundedPareto is a heavy-tailed distribution on [Lo, Hi] with shape
// Alpha (smaller Alpha = heavier tail). It models the highly variable
// value sizes seen in production key-value traces.
type BoundedPareto struct {
	Lo, Hi time.Duration
	Alpha  float64
}

var _ Duration = BoundedPareto{}

// Sample implements Duration.
func (d BoundedPareto) Sample(rng *rand.Rand) time.Duration {
	if d.Hi <= d.Lo {
		return d.Lo
	}
	l, h, a := float64(d.Lo), float64(d.Hi), d.Alpha
	u := rng.Float64()
	// Inverse CDF of the bounded Pareto.
	num := u*math.Pow(h, a) - u*math.Pow(l, a) - math.Pow(h, a)
	x := math.Pow(-num/(math.Pow(l, a)*math.Pow(h, a)), -1/a)
	if x < l {
		x = l
	}
	if x > h {
		x = h
	}
	return time.Duration(x)
}

// Mean implements Duration.
func (d BoundedPareto) Mean() time.Duration {
	l, h, a := float64(d.Lo), float64(d.Hi), d.Alpha
	if d.Hi <= d.Lo {
		return d.Lo
	}
	if a == 1 {
		m := (h * l / (h - l)) * math.Log(h/l)
		return time.Duration(m)
	}
	m := math.Pow(l, a) / (1 - math.Pow(l/h, a)) * (a / (a - 1)) *
		(1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
	return time.Duration(m)
}

func (d BoundedPareto) String() string {
	return fmt.Sprintf("bpareto(%v,%v,a=%.2f)", d.Lo, d.Hi, d.Alpha)
}

// Bimodal returns Small with probability PSmall, else Large: the classic
// "mice and elephants" mix.
type Bimodal struct {
	Small, Large time.Duration
	PSmall       float64
}

var _ Duration = Bimodal{}

// Sample implements Duration.
func (d Bimodal) Sample(rng *rand.Rand) time.Duration {
	if rng.Float64() < d.PSmall {
		return d.Small
	}
	return d.Large
}

// Mean implements Duration.
func (d Bimodal) Mean() time.Duration {
	return time.Duration(d.PSmall*float64(d.Small) + (1-d.PSmall)*float64(d.Large))
}

func (d Bimodal) String() string {
	return fmt.Sprintf("bimodal(%v@%.2f,%v)", d.Small, d.PSmall, d.Large)
}

// Empirical samples uniformly from a fixed set of observed values, for
// trace replay.
type Empirical struct{ Values []time.Duration }

var _ Duration = Empirical{}

// NewEmpirical copies values so the caller's slice stays independent.
func NewEmpirical(values []time.Duration) Empirical {
	v := make([]time.Duration, len(values))
	copy(v, values)
	return Empirical{Values: v}
}

// Sample implements Duration.
func (d Empirical) Sample(rng *rand.Rand) time.Duration {
	if len(d.Values) == 0 {
		return 0
	}
	return d.Values[rng.IntN(len(d.Values))]
}

// Mean implements Duration.
func (d Empirical) Mean() time.Duration {
	if len(d.Values) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d.Values {
		sum += v
	}
	return sum / time.Duration(len(d.Values))
}

func (d Empirical) String() string { return fmt.Sprintf("empirical(n=%d)", len(d.Values)) }

// --- Discrete distributions ------------------------------------------

// ConstInt always returns N (bare single-key gets when N==1).
type ConstInt struct{ N int }

var _ Discrete = ConstInt{}

// Sample implements Discrete.
func (d ConstInt) Sample(*rand.Rand) int { return d.N }

// Mean implements Discrete.
func (d ConstInt) Mean() float64 { return float64(d.N) }

func (d ConstInt) String() string { return fmt.Sprintf("const(%d)", d.N) }

// UniformInt is uniform on [Lo, Hi].
type UniformInt struct{ Lo, Hi int }

var _ Discrete = UniformInt{}

// Sample implements Discrete.
func (d UniformInt) Sample(rng *rand.Rand) int {
	if d.Hi <= d.Lo {
		return d.Lo
	}
	return d.Lo + rng.IntN(d.Hi-d.Lo+1)
}

// Mean implements Discrete.
func (d UniformInt) Mean() float64 { return float64(d.Lo+d.Hi) / 2 }

func (d UniformInt) String() string { return fmt.Sprintf("unif(%d,%d)", d.Lo, d.Hi) }

// GeometricInt is a shifted geometric on {1, 2, ...} with the given mean
// (>= 1): most requests touch few keys, a few touch many, matching the
// multiget width profile reported for social-network workloads.
type GeometricInt struct{ M float64 }

var _ Discrete = GeometricInt{}

// Sample implements Discrete.
func (d GeometricInt) Sample(rng *rand.Rand) int {
	if d.M <= 1 {
		return 1
	}
	p := 1 / d.M
	// Inverse transform for geometric on {1,2,...}.
	u := rng.Float64()
	k := int(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Mean implements Discrete.
func (d GeometricInt) Mean() float64 {
	if d.M <= 1 {
		return 1
	}
	return d.M
}

func (d GeometricInt) String() string { return fmt.Sprintf("geom(mean=%.1f)", d.M) }

// ZipfInt samples fan-outs from a truncated Zipf over {1..Max} with
// exponent S: many narrow requests, rare very wide ones.
type ZipfInt struct {
	Max int
	S   float64

	z *Zipf
}

var _ Discrete = (*ZipfInt)(nil)

// NewZipfInt precomputes the sampler table.
func NewZipfInt(maxV int, s float64) (*ZipfInt, error) {
	z, err := NewZipf(maxV, s)
	if err != nil {
		return nil, fmt.Errorf("zipf fanout: %w", err)
	}
	return &ZipfInt{Max: maxV, S: s, z: z}, nil
}

// Sample implements Discrete.
func (d *ZipfInt) Sample(rng *rand.Rand) int { return d.z.Sample(rng) + 1 }

// Mean implements Discrete.
func (d *ZipfInt) Mean() float64 { return d.z.Mean() + 1 }

func (d *ZipfInt) String() string { return fmt.Sprintf("zipf(max=%d,s=%.2f)", d.Max, d.S) }
