package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// ByteSize samples payload sizes in bytes, e.g. the value written by a
// put or returned by a get. The heavy-tailed implementations model the
// value-size skew of production key-value traces: most values are tiny,
// a small fraction are orders of magnitude larger, and that tail is
// what a size-aware scheduler exists to contain.
type ByteSize interface {
	// SampleBytes draws one size. Implementations return >= 1.
	SampleBytes(rng *rand.Rand) int64
	// MeanBytes returns the distribution mean, used for load
	// calibration and configuration validation.
	MeanBytes() float64
	// String describes the distribution for logs and experiment tables.
	String() string
}

// ConstBytes always returns N (clamped to at least 1): the fixed-size
// baseline against which heavy-tailed mixes are compared.
type ConstBytes struct{ N int64 }

var _ ByteSize = ConstBytes{}

// SampleBytes implements ByteSize.
func (d ConstBytes) SampleBytes(*rand.Rand) int64 {
	if d.N < 1 {
		return 1
	}
	return d.N
}

// MeanBytes implements ByteSize.
func (d ConstBytes) MeanBytes() float64 {
	if d.N < 1 {
		return 1
	}
	return float64(d.N)
}

func (d ConstBytes) String() string { return fmt.Sprintf("const(%dB)", d.N) }

// ParetoBytes is a bounded Pareto on [Lo, Hi] bytes with shape Alpha
// (smaller Alpha = heavier tail). Alpha around 1.1–1.5 with a wide
// [Lo, Hi] span reproduces the "mice and elephants" value-size mix of
// object-store and cache traces.
type ParetoBytes struct {
	Lo, Hi int64
	Alpha  float64
}

var _ ByteSize = ParetoBytes{}

// SampleBytes implements ByteSize.
func (d ParetoBytes) SampleBytes(rng *rand.Rand) int64 {
	lo := d.Lo
	if lo < 1 {
		lo = 1
	}
	if d.Hi <= lo {
		return lo
	}
	l, h, a := float64(lo), float64(d.Hi), d.Alpha
	u := rng.Float64()
	// Inverse CDF of the bounded Pareto (same form as BoundedPareto).
	num := u*math.Pow(h, a) - u*math.Pow(l, a) - math.Pow(h, a)
	x := math.Pow(-num/(math.Pow(l, a)*math.Pow(h, a)), -1/a)
	if x < l {
		x = l
	}
	if x > h {
		x = h
	}
	return int64(x)
}

// MeanBytes implements ByteSize.
func (d ParetoBytes) MeanBytes() float64 {
	lo := d.Lo
	if lo < 1 {
		lo = 1
	}
	if d.Hi <= lo {
		return float64(lo)
	}
	l, h, a := float64(lo), float64(d.Hi), d.Alpha
	if a == 1 {
		return (h * l / (h - l)) * math.Log(h/l)
	}
	return math.Pow(l, a) / (1 - math.Pow(l/h, a)) * (a / (a - 1)) *
		(1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

func (d ParetoBytes) String() string {
	return fmt.Sprintf("pareto(%dB,%dB,a=%.2f)", d.Lo, d.Hi, d.Alpha)
}

// LognormalBytes is parameterized by its mean in bytes and the sigma of
// the underlying normal; larger Sigma gives a heavier tail at the same
// mean. Samples are clamped to [1, Cap] (Cap 0 = uncapped) so a rare
// extreme draw cannot exceed what the transport can frame.
type LognormalBytes struct {
	M     float64
	Sigma float64
	Cap   int64
}

var _ ByteSize = LognormalBytes{}

// SampleBytes implements ByteSize.
func (d LognormalBytes) SampleBytes(rng *rand.Rand) int64 {
	m := d.M
	if m < 1 {
		m = 1
	}
	// mean of lognormal = exp(mu + sigma^2/2)  =>  mu = ln(M) - sigma^2/2.
	mu := math.Log(m) - d.Sigma*d.Sigma/2
	v := math.Exp(mu + d.Sigma*rng.NormFloat64())
	n := int64(v)
	if n < 1 {
		n = 1
	}
	if d.Cap > 0 && n > d.Cap {
		n = d.Cap
	}
	return n
}

// MeanBytes implements ByteSize.
func (d LognormalBytes) MeanBytes() float64 {
	if d.M < 1 {
		return 1
	}
	return d.M
}

func (d LognormalBytes) String() string {
	if d.Cap > 0 {
		return fmt.Sprintf("lognorm(%.0fB,s=%.2f,cap=%dB)", d.M, d.Sigma, d.Cap)
	}
	return fmt.Sprintf("lognorm(%.0fB,s=%.2f)", d.M, d.Sigma)
}
