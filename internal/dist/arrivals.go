package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// LoadProfile maps virtual time to a multiplier on the base arrival rate,
// modeling time-varying offered load. A profile must stay within
// [0, Peak()] for correctness of the thinning sampler.
type LoadProfile interface {
	// At returns the rate multiplier at time t (>= 0).
	At(t time.Duration) float64
	// Peak returns an upper bound on At over all t.
	Peak() float64
	String() string
}

// ConstantLoad holds the multiplier fixed at Level.
type ConstantLoad struct{ Level float64 }

var _ LoadProfile = ConstantLoad{}

// At implements LoadProfile.
func (p ConstantLoad) At(time.Duration) float64 { return p.Level }

// Peak implements LoadProfile.
func (p ConstantLoad) Peak() float64 { return p.Level }

func (p ConstantLoad) String() string { return fmt.Sprintf("const(%.2f)", p.Level) }

// SquareWaveLoad alternates between Low and High with the given Period
// (half period at each level), modeling diurnal-style load swings.
type SquareWaveLoad struct {
	Low, High float64
	Period    time.Duration
}

var _ LoadProfile = SquareWaveLoad{}

// At implements LoadProfile.
func (p SquareWaveLoad) At(t time.Duration) float64 {
	if p.Period <= 0 {
		return p.High
	}
	phase := t % p.Period
	if phase < p.Period/2 {
		return p.Low
	}
	return p.High
}

// Peak implements LoadProfile.
func (p SquareWaveLoad) Peak() float64 { return math.Max(p.Low, p.High) }

func (p SquareWaveLoad) String() string {
	return fmt.Sprintf("square(%.2f/%.2f,T=%v)", p.Low, p.High, p.Period)
}

// SineLoad oscillates around Base with the given Amplitude and Period.
type SineLoad struct {
	Base, Amplitude float64
	Period          time.Duration
}

var _ LoadProfile = SineLoad{}

// At implements LoadProfile.
func (p SineLoad) At(t time.Duration) float64 {
	if p.Period <= 0 {
		return p.Base
	}
	v := p.Base + p.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(p.Period))
	if v < 0 {
		v = 0
	}
	return v
}

// Peak implements LoadProfile.
func (p SineLoad) Peak() float64 { return p.Base + math.Abs(p.Amplitude) }

func (p SineLoad) String() string {
	return fmt.Sprintf("sine(%.2f±%.2f,T=%v)", p.Base, p.Amplitude, p.Period)
}

// BurstLoad is Base most of the time, jumping to Burst for BurstLen every
// Every interval — a flash-crowd model.
type BurstLoad struct {
	Base, Burst float64
	Every       time.Duration
	BurstLen    time.Duration
}

var _ LoadProfile = BurstLoad{}

// At implements LoadProfile.
func (p BurstLoad) At(t time.Duration) float64 {
	if p.Every <= 0 {
		return p.Base
	}
	if t%p.Every < p.BurstLen {
		return p.Burst
	}
	return p.Base
}

// Peak implements LoadProfile.
func (p BurstLoad) Peak() float64 { return math.Max(p.Base, p.Burst) }

func (p BurstLoad) String() string {
	return fmt.Sprintf("burst(%.2f→%.2f,every=%v,len=%v)", p.Base, p.Burst, p.Every, p.BurstLen)
}

// Poisson generates arrival instants of a (possibly non-homogeneous)
// Poisson process with base rate Rate (events per second) modulated by
// Profile, using Lewis-Shedler thinning against the profile peak.
type Poisson struct {
	Rate    float64 // base events/sec at multiplier 1.0
	Profile LoadProfile
}

// NewPoisson returns a process with a constant unit profile if profile is
// nil.
func NewPoisson(rate float64, profile LoadProfile) (*Poisson, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("poisson: rate %v must be positive and finite", rate)
	}
	if profile == nil {
		profile = ConstantLoad{Level: 1}
	}
	if profile.Peak() <= 0 {
		return nil, fmt.Errorf("poisson: profile peak %v must be positive", profile.Peak())
	}
	return &Poisson{Rate: rate, Profile: profile}, nil
}

func (p *Poisson) String() string {
	return fmt.Sprintf("poisson(%.1f/s, %v)", p.Rate, p.Profile)
}

// Next returns the first arrival instant strictly after t.
func (p *Poisson) Next(t time.Duration, rng *rand.Rand) time.Duration {
	peak := p.Rate * p.Profile.Peak()
	for {
		// Candidate from the homogeneous envelope process.
		gap := rng.ExpFloat64() / peak
		t += time.Duration(gap * float64(time.Second))
		accept := p.Rate * p.Profile.At(t) / peak
		if rng.Float64() < accept {
			return t
		}
	}
}
