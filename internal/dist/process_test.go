package dist

import (
	"math"
	"testing"
	"time"
)

// collectGaps runs an arrival process for n events from t=0 and returns
// the interarrival gaps in seconds.
func collectGaps(t *testing.T, p Arrival, seed uint64, n int) []float64 {
	t.Helper()
	rng := NewRand(seed)
	gaps := make([]float64, 0, n)
	var tm time.Duration
	for i := 0; i < n; i++ {
		next := p.Next(tm, rng)
		if next <= tm {
			t.Fatalf("arrival %d did not advance: %v -> %v", i, tm, next)
		}
		gaps = append(gaps, (next - tm).Seconds())
		tm = next
	}
	return gaps
}

func meanCV(gaps []float64) (mean, cv float64) {
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	var varSum float64
	for _, g := range gaps {
		varSum += (g - mean) * (g - mean)
	}
	sd := math.Sqrt(varSum / float64(len(gaps)))
	return mean, sd / mean
}

// Poisson interarrivals at rate lambda are exponential: mean 1/lambda
// and coefficient of variation 1.
func TestPoissonInterarrivalMeanAndCV(t *testing.T) {
	p, err := NewPoisson(2000, nil)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	mean, cv := meanCV(collectGaps(t, p, 41, 200000))
	if math.Abs(mean-1.0/2000)/(1.0/2000) > 0.02 {
		t.Fatalf("mean gap %.6fs, want ~%.6fs", mean, 1.0/2000)
	}
	if math.Abs(cv-1) > 0.03 {
		t.Fatalf("interarrival CV %.3f, want ~1 (exponential)", cv)
	}
}

func TestFixedRateIsDeterministic(t *testing.T) {
	p, err := NewFixedRate(500)
	if err != nil {
		t.Fatalf("NewFixedRate: %v", err)
	}
	gaps := collectGaps(t, p, 1, 1000)
	mean, cv := meanCV(gaps)
	if math.Abs(mean-1.0/500)/(1.0/500) > 1e-9 {
		t.Fatalf("mean gap %.9fs, want exactly %.9fs", mean, 1.0/500)
	}
	if cv > 1e-9 {
		t.Fatalf("fixed-rate CV %.9f, want 0", cv)
	}
}

func TestNewFixedRateErrors(t *testing.T) {
	for _, r := range []float64{0, -3, math.Inf(1), math.NaN()} {
		if _, err := NewFixedRate(r); err == nil {
			t.Fatalf("rate %v should error", r)
		}
	}
}

// The on-off process must hit its target long-run mean rate while
// showing burstier-than-Poisson interarrivals (CV > 1), and its
// arrivals must respect the duty cycle: with on and off means equal,
// roughly half of wall time carries all the arrivals at ~2x the mean
// rate.
func TestOnOffMeanRateAndBurstiness(t *testing.T) {
	const meanRate = 1000.0
	p, err := NewOnOff(meanRate, 50*time.Millisecond, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("NewOnOff: %v", err)
	}
	if math.Abs(p.RateOn-2*meanRate) > 1e-6 {
		t.Fatalf("on-state rate %.1f, want %.1f (duty 0.5)", p.RateOn, 2*meanRate)
	}
	gaps := collectGaps(t, p, 43, 200000)
	mean, cv := meanCV(gaps)
	rate := 1 / mean
	if math.Abs(rate-meanRate)/meanRate > 0.05 {
		t.Fatalf("empirical mean rate %.1f/s, want ~%.0f", rate, meanRate)
	}
	if cv <= 1.1 {
		t.Fatalf("interarrival CV %.3f, want > 1.1 (bursty)", cv)
	}
}

// With a vanishing off-period the process degenerates to plain Poisson:
// CV ~= 1 at the mean rate.
func TestOnOffDegeneratesToPoisson(t *testing.T) {
	p, err := NewOnOff(1000, 100*time.Millisecond, 0)
	if err != nil {
		t.Fatalf("NewOnOff: %v", err)
	}
	mean, cv := meanCV(collectGaps(t, p, 47, 100000))
	if math.Abs(1/mean-1000)/1000 > 0.03 {
		t.Fatalf("empirical rate %.1f/s, want ~1000", 1/mean)
	}
	if math.Abs(cv-1) > 0.05 {
		t.Fatalf("CV %.3f, want ~1", cv)
	}
}

// Duty cycle: the fraction of arrivals landing inside dense regions
// must track OnMean/(OnMean+OffMean). We measure it as the fraction of
// gaps that are "short" (under 4x the on-state mean gap): in the on
// state essentially every gap is short, across an off-period the gap is
// dominated by the silent time.
func TestOnOffDutyCycle(t *testing.T) {
	p, err := NewOnOff(2000, 40*time.Millisecond, 120*time.Millisecond) // duty 0.25 -> on rate 8000/s
	if err != nil {
		t.Fatalf("NewOnOff: %v", err)
	}
	gaps := collectGaps(t, p, 53, 100000)
	onGap := 1.0 / p.RateOn
	short := 0
	var shortTime, total float64
	for _, g := range gaps {
		total += g
		if g < 4*onGap {
			short++
			shortTime += g
		}
	}
	// Nearly all arrivals are in-burst...
	if frac := float64(short) / float64(len(gaps)); frac < 0.95 {
		t.Fatalf("in-burst arrival fraction %.3f, want > 0.95", frac)
	}
	// ...but they cover only ~the duty cycle of wall time.
	duty := shortTime / total
	if duty < 0.18 || duty > 0.32 {
		t.Fatalf("busy-time fraction %.3f, want ~0.25", duty)
	}
}

func TestNewOnOffErrors(t *testing.T) {
	if _, err := NewOnOff(0, time.Second, time.Second); err == nil {
		t.Fatal("zero mean rate should error")
	}
	if _, err := NewOnOff(100, 0, time.Second); err == nil {
		t.Fatal("zero on-mean should error")
	}
	if _, err := NewOnOff(100, time.Second, -time.Second); err == nil {
		t.Fatal("negative off-mean should error")
	}
}

// Two processes with the same seed must produce the identical schedule:
// determinism is what lets a sweep compare policies on the same
// arrival sequence.
func TestArrivalDeterminism(t *testing.T) {
	build := func() []Arrival {
		p, _ := NewPoisson(500, nil)
		f, _ := NewFixedRate(500)
		o, _ := NewOnOff(500, 20*time.Millisecond, 20*time.Millisecond)
		return []Arrival{p, f, o}
	}
	a, b := build(), build()
	for i := range a {
		ra, rb := NewRand(99), NewRand(99)
		var ta, tb time.Duration
		for j := 0; j < 5000; j++ {
			ta = a[i].Next(ta, ra)
			tb = b[i].Next(tb, rb)
			if ta != tb {
				t.Fatalf("%v: schedules diverge at %d: %v vs %v", a[i], j, ta, tb)
			}
		}
	}
}
