package dist

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"
)

// Zipf samples ranks 0..N-1 with P(rank=k) proportional to 1/(k+1)^S.
// S == 0 degenerates to the uniform distribution. The sampler precomputes
// the cumulative distribution and draws by binary search, which is exact
// and needs no rejection loop; construction is O(N), sampling O(log N).
type Zipf struct {
	n   int
	s   float64
	cdf []float64
	mu  float64 // mean rank
}

// NewZipf builds a sampler over n ranks with exponent s >= 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, errors.New("zipf: n must be positive")
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, errors.New("zipf: exponent must be finite and non-negative")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	mu := 0.0
	prev := 0.0
	for k := 0; k < n; k++ {
		p := (cdf[k] - prev) / sum
		mu += float64(k) * p
		prev = cdf[k]
	}
	// Normalize.
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1 // guard against FP drift
	return &Zipf{n: n, s: s, cdf: cdf, mu: mu}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// Mean returns the mean rank.
func (z *Zipf) Mean() float64 { return z.mu }

// Sample draws a rank in [0, N).
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns P(rank = k).
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= z.n {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}
