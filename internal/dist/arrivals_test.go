package dist

import (
	"math"
	"testing"
	"time"
)

func TestPoissonConstantRate(t *testing.T) {
	p, err := NewPoisson(1000, nil) // 1000 req/s
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	rng := NewRand(31)
	var tm time.Duration
	const n = 100000
	for i := 0; i < n; i++ {
		next := p.Next(tm, rng)
		if next <= tm {
			t.Fatalf("arrival did not advance: %v -> %v", tm, next)
		}
		tm = next
	}
	rate := float64(n) / tm.Seconds()
	if math.Abs(rate-1000)/1000 > 0.02 {
		t.Fatalf("empirical rate %.1f, want 1000", rate)
	}
}

func TestNewPoissonErrors(t *testing.T) {
	if _, err := NewPoisson(0, nil); err == nil {
		t.Fatal("zero rate should error")
	}
	if _, err := NewPoisson(-1, nil); err == nil {
		t.Fatal("negative rate should error")
	}
	if _, err := NewPoisson(math.Inf(1), nil); err == nil {
		t.Fatal("infinite rate should error")
	}
	if _, err := NewPoisson(100, ConstantLoad{Level: 0}); err == nil {
		t.Fatal("zero-peak profile should error")
	}
}

func TestPoissonSquareWaveModulation(t *testing.T) {
	profile := SquareWaveLoad{Low: 0.2, High: 1.0, Period: 2 * time.Second}
	p, err := NewPoisson(1000, profile)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	rng := NewRand(37)
	var tm time.Duration
	lowCount, highCount := 0, 0
	for tm < 100*time.Second {
		tm = p.Next(tm, rng)
		if profile.At(tm) == 0.2 {
			lowCount++
		} else {
			highCount++
		}
	}
	ratio := float64(highCount) / float64(lowCount)
	if math.Abs(ratio-5) > 0.6 {
		t.Fatalf("high/low arrival ratio = %.2f, want ~5", ratio)
	}
}

func TestSquareWaveLoad(t *testing.T) {
	p := SquareWaveLoad{Low: 0.3, High: 0.9, Period: 10 * time.Second}
	if got := p.At(time.Second); got != 0.3 {
		t.Fatalf("At(1s) = %v, want 0.3", got)
	}
	if got := p.At(6 * time.Second); got != 0.9 {
		t.Fatalf("At(6s) = %v, want 0.9", got)
	}
	if got := p.At(11 * time.Second); got != 0.3 {
		t.Fatalf("At(11s) = %v, want 0.3 (wrapped)", got)
	}
	if p.Peak() != 0.9 {
		t.Fatalf("Peak = %v, want 0.9", p.Peak())
	}
}

func TestSquareWaveZeroPeriod(t *testing.T) {
	p := SquareWaveLoad{Low: 0.3, High: 0.9}
	if p.At(5*time.Second) != 0.9 {
		t.Fatal("zero period should return High")
	}
}

func TestSineLoad(t *testing.T) {
	p := SineLoad{Base: 0.5, Amplitude: 0.4, Period: 4 * time.Second}
	if got := p.At(time.Second); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("At(T/4) = %v, want 0.9", got)
	}
	if got := p.At(3 * time.Second); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("At(3T/4) = %v, want 0.1", got)
	}
	if p.Peak() != 0.9 {
		t.Fatalf("Peak = %v, want 0.9", p.Peak())
	}
}

func TestSineLoadClampsNegative(t *testing.T) {
	p := SineLoad{Base: 0.1, Amplitude: 0.5, Period: 4 * time.Second}
	if got := p.At(3 * time.Second); got != 0 {
		t.Fatalf("At = %v, want clamp to 0", got)
	}
}

func TestBurstLoad(t *testing.T) {
	p := BurstLoad{Base: 0.4, Burst: 1.2, Every: 10 * time.Second, BurstLen: 2 * time.Second}
	if got := p.At(time.Second); got != 1.2 {
		t.Fatalf("At(1s) = %v, want burst 1.2", got)
	}
	if got := p.At(5 * time.Second); got != 0.4 {
		t.Fatalf("At(5s) = %v, want base 0.4", got)
	}
	if got := p.At(11 * time.Second); got != 1.2 {
		t.Fatalf("At(11s) = %v, want burst (wrapped)", got)
	}
	if p.Peak() != 1.2 {
		t.Fatalf("Peak = %v, want 1.2", p.Peak())
	}
}

func TestConstantLoad(t *testing.T) {
	p := ConstantLoad{Level: 0.7}
	if p.At(0) != 0.7 || p.At(time.Hour) != 0.7 || p.Peak() != 0.7 {
		t.Fatal("ConstantLoad broken")
	}
}
