package dist

import (
	"strings"
	"testing"
	"time"
)

// TestStringDescriptions pins the human-readable forms used in
// experiment tables.
func TestStringDescriptions(t *testing.T) {
	zi, err := NewZipfInt(20, 1.0)
	if err != nil {
		t.Fatalf("NewZipfInt: %v", err)
	}
	cases := []struct {
		got  string
		want string
	}{
		{Deterministic{V: time.Millisecond}.String(), "det(1ms)"},
		{Exponential{M: time.Millisecond}.String(), "exp(1ms)"},
		{Uniform{Lo: time.Millisecond, Hi: 2 * time.Millisecond}.String(), "unif(1ms,2ms)"},
		{Lognormal{M: time.Millisecond, Sigma: 1.5}.String(), "lognorm(1ms,s=1.50)"},
		{BoundedPareto{Lo: time.Millisecond, Hi: time.Second, Alpha: 1.4}.String(), "bpareto(1ms,1s,a=1.40)"},
		{Bimodal{Small: time.Millisecond, Large: time.Second, PSmall: 0.9}.String(), "bimodal(1ms@0.90,1s)"},
		{NewEmpirical([]time.Duration{1, 2}).String(), "empirical(n=2)"},
		{ConstInt{N: 3}.String(), "const(3)"},
		{UniformInt{Lo: 1, Hi: 7}.String(), "unif(1,7)"},
		{GeometricInt{M: 5}.String(), "geom(mean=5.0)"},
		{zi.String(), "zipf(max=20,s=1.00)"},
		{ConstantLoad{Level: 0.7}.String(), "const(0.70)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Fatalf("String() = %q, want %q", c.got, c.want)
		}
	}
	// Profiles with embedded durations: check shape, not exact text.
	for _, s := range []string{
		SquareWaveLoad{Low: 0.3, High: 0.9, Period: time.Second}.String(),
		SineLoad{Base: 0.5, Amplitude: 0.2, Period: time.Second}.String(),
		BurstLoad{Base: 0.4, Burst: 1.2, Every: time.Second, BurstLen: time.Millisecond}.String(),
	} {
		if !strings.Contains(s, "(") {
			t.Fatalf("profile String %q lacks parameters", s)
		}
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	d := BoundedPareto{Lo: time.Millisecond, Hi: time.Millisecond, Alpha: 1.2}
	if d.Sample(NewRand(1)) != time.Millisecond || d.Mean() != time.Millisecond {
		t.Fatal("degenerate bounded pareto should return Lo")
	}
}

func TestSineLoadZeroPeriod(t *testing.T) {
	p := SineLoad{Base: 0.4, Amplitude: 0.2}
	if p.At(time.Hour) != 0.4 {
		t.Fatal("zero period should return base")
	}
}

func TestBurstLoadZeroEvery(t *testing.T) {
	p := BurstLoad{Base: 0.4, Burst: 1.2}
	if p.At(time.Hour) != 0.4 {
		t.Fatal("zero interval should return base")
	}
}

func TestZipfIntConstructorError(t *testing.T) {
	if _, err := NewZipfInt(0, 1); err == nil {
		t.Fatal("max=0 should error")
	}
}
