package dist

import (
	"math"
	"testing"
	"time"
)

// checkMean samples n draws and verifies the empirical mean is within
// relTol of the declared mean.
func checkMean(t *testing.T, d Duration, n int, relTol float64) {
	t.Helper()
	rng := NewRand(42)
	var sum float64
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 0 {
			t.Fatalf("%s: negative sample %v", d, v)
		}
		sum += float64(v)
	}
	got := sum / float64(n)
	want := float64(d.Mean())
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s: mean = %v, want 0", d, got)
		}
		return
	}
	if math.Abs(got-want)/want > relTol {
		t.Fatalf("%s: empirical mean %v vs declared %v (tol %.2f)",
			d, time.Duration(got), time.Duration(want), relTol)
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{V: 5 * time.Millisecond}
	rng := NewRand(1)
	for i := 0; i < 10; i++ {
		if got := d.Sample(rng); got != 5*time.Millisecond {
			t.Fatalf("Sample = %v, want 5ms", got)
		}
	}
	checkMean(t, d, 100, 0)
}

func TestExponentialMean(t *testing.T) {
	checkMean(t, Exponential{M: time.Millisecond}, 200000, 0.02)
}

func TestUniformMeanAndBounds(t *testing.T) {
	d := Uniform{Lo: time.Millisecond, Hi: 3 * time.Millisecond}
	rng := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := d.Sample(rng)
		if v < d.Lo || v > d.Hi {
			t.Fatalf("sample %v outside [%v,%v]", v, d.Lo, d.Hi)
		}
	}
	checkMean(t, d, 100000, 0.02)
}

func TestUniformDegenerate(t *testing.T) {
	d := Uniform{Lo: time.Millisecond, Hi: time.Millisecond}
	if got := d.Sample(NewRand(1)); got != time.Millisecond {
		t.Fatalf("Sample = %v, want 1ms", got)
	}
}

func TestLognormalMean(t *testing.T) {
	checkMean(t, Lognormal{M: 2 * time.Millisecond, Sigma: 1.0}, 400000, 0.05)
}

func TestBoundedParetoMeanAndBounds(t *testing.T) {
	d := BoundedPareto{Lo: 100 * time.Microsecond, Hi: 100 * time.Millisecond, Alpha: 1.3}
	rng := NewRand(11)
	for i := 0; i < 10000; i++ {
		v := d.Sample(rng)
		if v < d.Lo || v > d.Hi {
			t.Fatalf("sample %v outside [%v,%v]", v, d.Lo, d.Hi)
		}
	}
	checkMean(t, d, 500000, 0.05)
}

func TestBoundedParetoAlphaOne(t *testing.T) {
	d := BoundedPareto{Lo: time.Millisecond, Hi: 10 * time.Millisecond, Alpha: 1}
	checkMean(t, d, 500000, 0.05)
}

func TestBimodal(t *testing.T) {
	d := Bimodal{Small: time.Millisecond, Large: 10 * time.Millisecond, PSmall: 0.9}
	rng := NewRand(3)
	small, large := 0, 0
	for i := 0; i < 100000; i++ {
		switch d.Sample(rng) {
		case time.Millisecond:
			small++
		case 10 * time.Millisecond:
			large++
		default:
			t.Fatal("bimodal returned a third value")
		}
	}
	frac := float64(small) / 100000
	if math.Abs(frac-0.9) > 0.01 {
		t.Fatalf("small fraction = %.3f, want 0.9", frac)
	}
	checkMean(t, d, 100000, 0.02)
}

func TestEmpirical(t *testing.T) {
	vals := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	d := NewEmpirical(vals)
	vals[0] = time.Hour // must not affect the copy
	rng := NewRand(5)
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		if v != time.Millisecond && v != 2*time.Millisecond && v != 3*time.Millisecond {
			t.Fatalf("sample %v not in source set", v)
		}
	}
	if d.Mean() != 2*time.Millisecond {
		t.Fatalf("Mean = %v, want 2ms", d.Mean())
	}
}

func TestEmpiricalEmpty(t *testing.T) {
	d := Empirical{}
	if d.Sample(NewRand(1)) != 0 || d.Mean() != 0 {
		t.Fatal("empty empirical should sample 0 with mean 0")
	}
}

func TestConstInt(t *testing.T) {
	d := ConstInt{N: 4}
	if d.Sample(NewRand(1)) != 4 || d.Mean() != 4 {
		t.Fatal("ConstInt broken")
	}
}

func TestUniformInt(t *testing.T) {
	d := UniformInt{Lo: 2, Hi: 6}
	rng := NewRand(9)
	seen := map[int]bool{}
	sum := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 2 || v > 6 {
			t.Fatalf("sample %d outside [2,6]", v)
		}
		seen[v] = true
		sum += v
	}
	if len(seen) != 5 {
		t.Fatalf("saw %d distinct values, want 5", len(seen))
	}
	if mean := float64(sum) / n; math.Abs(mean-4) > 0.05 {
		t.Fatalf("mean = %.3f, want 4", mean)
	}
}

func TestGeometricIntMean(t *testing.T) {
	d := GeometricInt{M: 5}
	rng := NewRand(13)
	sum := 0
	const n = 200000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 1 {
			t.Fatalf("sample %d < 1", v)
		}
		sum += v
	}
	if mean := float64(sum) / n; math.Abs(mean-5)/5 > 0.02 {
		t.Fatalf("mean = %.3f, want 5", mean)
	}
}

func TestGeometricIntDegenerate(t *testing.T) {
	d := GeometricInt{M: 0.5}
	if d.Sample(NewRand(1)) != 1 || d.Mean() != 1 {
		t.Fatal("mean <= 1 should degenerate to constant 1")
	}
}

func TestZipfIntRange(t *testing.T) {
	d, err := NewZipfInt(20, 1.1)
	if err != nil {
		t.Fatalf("NewZipfInt: %v", err)
	}
	rng := NewRand(17)
	counts := make([]int, 21)
	for i := 0; i < 100000; i++ {
		v := d.Sample(rng)
		if v < 1 || v > 20 {
			t.Fatalf("sample %d outside [1,20]", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[10] {
		t.Fatalf("zipf not skewed: count[1]=%d count[10]=%d", counts[1], counts[10])
	}
}
