package dist

import (
	"math"
	"sort"
	"testing"
)

// checkMeanBytes samples n draws and verifies the empirical mean is
// within relTol of the declared mean, and that every draw is >= 1.
func checkMeanBytes(t *testing.T, d ByteSize, n int, relTol float64) {
	t.Helper()
	rng := NewRand(42)
	var sum float64
	for i := 0; i < n; i++ {
		v := d.SampleBytes(rng)
		if v < 1 {
			t.Fatalf("%s: sample %d below 1 byte", d, v)
		}
		sum += float64(v)
	}
	got := sum / float64(n)
	want := d.MeanBytes()
	if math.Abs(got-want)/want > relTol {
		t.Fatalf("%s: empirical mean %.0fB vs declared %.0fB (tol %.2f)", d, got, want, relTol)
	}
}

func TestConstBytes(t *testing.T) {
	d := ConstBytes{N: 4096}
	rng := NewRand(1)
	for i := 0; i < 10; i++ {
		if got := d.SampleBytes(rng); got != 4096 {
			t.Fatalf("SampleBytes = %d, want 4096", got)
		}
	}
	checkMeanBytes(t, d, 100, 0)
	// Degenerate sizes clamp to one byte rather than producing empty values.
	zero := ConstBytes{}
	if got := zero.SampleBytes(rng); got != 1 {
		t.Fatalf("zero-const sample = %d, want 1", got)
	}
	if got := zero.MeanBytes(); got != 1 {
		t.Fatalf("zero-const mean = %v, want 1", got)
	}
}

func TestParetoBytesBoundsAndMean(t *testing.T) {
	d := ParetoBytes{Lo: 1 << 10, Hi: 1 << 20, Alpha: 1.2}
	rng := NewRand(7)
	for i := 0; i < 20000; i++ {
		v := d.SampleBytes(rng)
		if v < d.Lo || v > d.Hi {
			t.Fatalf("sample %d outside [%d,%d]", v, d.Lo, d.Hi)
		}
	}
	checkMeanBytes(t, d, 300000, 0.05)
}

func TestParetoBytesQuantileSanity(t *testing.T) {
	// Check the sampler against the analytic bounded-Pareto CDF at a few
	// quantiles — this is what pins the inverse-CDF algebra.
	d := ParetoBytes{Lo: 1 << 10, Hi: 4 << 20, Alpha: 0.5}
	const n = 200000
	rng := NewRand(11)
	samples := make([]int64, n)
	for i := range samples {
		samples[i] = d.SampleBytes(rng)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	l, h, a := float64(d.Lo), float64(d.Hi), d.Alpha
	quantile := func(p float64) float64 {
		// Inverse of F(x) = (1 - (l/x)^a) / (1 - (l/h)^a).
		return l * math.Pow(1-p*(1-math.Pow(l/h, a)), -1/a)
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		got := float64(samples[int(p*n)])
		want := quantile(p)
		if math.Abs(got-want)/want > 0.1 {
			t.Fatalf("p%.0f = %.0fB, analytic %.0fB", p*100, got, want)
		}
	}
}

func TestParetoBytesDegenerate(t *testing.T) {
	rng := NewRand(3)
	if got := (ParetoBytes{Lo: 0, Hi: 0, Alpha: 1}).SampleBytes(rng); got != 1 {
		t.Fatalf("degenerate sample = %d, want clamp to 1", got)
	}
	if got := (ParetoBytes{Lo: 100, Hi: 50, Alpha: 1}).SampleBytes(rng); got != 100 {
		t.Fatalf("inverted-bounds sample = %d, want Lo", got)
	}
	checkMeanBytes(t, ParetoBytes{Lo: 1 << 10, Hi: 1 << 20, Alpha: 1}, 300000, 0.05)
}

func TestLognormalBytesMeanAndCap(t *testing.T) {
	checkMeanBytes(t, LognormalBytes{M: 16 << 10, Sigma: 1.0}, 300000, 0.05)
	capped := LognormalBytes{M: 16 << 10, Sigma: 2.0, Cap: 64 << 10}
	rng := NewRand(13)
	hitCap := false
	for i := 0; i < 50000; i++ {
		v := capped.SampleBytes(rng)
		if v > capped.Cap {
			t.Fatalf("sample %d above cap %d", v, capped.Cap)
		}
		if v == capped.Cap {
			hitCap = true
		}
	}
	if !hitCap {
		t.Fatal("sigma=2 lognormal never reached its cap — clamp untested")
	}
}

// TestByteSizeDeterministicPerSeed mirrors the workload generator's
// per-seed reproducibility test: the same seed must yield the identical
// size stream, and different seeds must diverge.
func TestByteSizeDeterministicPerSeed(t *testing.T) {
	for _, d := range []ByteSize{
		ParetoBytes{Lo: 1 << 10, Hi: 4 << 20, Alpha: 0.5},
		LognormalBytes{M: 16 << 10, Sigma: 1.5, Cap: 4 << 20},
	} {
		draw := func(seed uint64) []int64 {
			rng := NewRand(seed)
			out := make([]int64, 200)
			for i := range out {
				out[i] = d.SampleBytes(rng)
			}
			return out
		}
		a, b := draw(77), draw(77)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at draw %d: %d vs %d", d, i, a[i], b[i])
			}
		}
		c := draw(78)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seeds 77 and 78 produced identical streams", d)
		}
	}
}

func TestByteSizeStrings(t *testing.T) {
	for _, d := range []ByteSize{
		ConstBytes{N: 100},
		ParetoBytes{Lo: 1, Hi: 2, Alpha: 1.5},
		LognormalBytes{M: 100, Sigma: 1},
		LognormalBytes{M: 100, Sigma: 1, Cap: 200},
	} {
		if d.String() == "" {
			t.Fatal("byte-size distribution must describe itself")
		}
	}
}
