package sched

import (
	"math/rand/v2"
	"time"
)

// --- FCFS --------------------------------------------------------------

// FCFS serves operations in arrival order: the default policy of
// deployed key-value stores and the paper's primary baseline.
type FCFS struct {
	ops     []*Op
	head    int
	backlog time.Duration
}

var _ Policy = (*FCFS)(nil)

// NewFCFS returns an empty FCFS queue.
func NewFCFS() *FCFS { return &FCFS{} }

// FCFSFactory builds FCFS queues.
func FCFSFactory(uint64) Policy { return NewFCFS() }

// Name implements Policy.
func (q *FCFS) Name() string { return "FCFS" }

// Push implements Policy.
func (q *FCFS) Push(op *Op, now time.Duration) {
	op.Enqueued = now
	q.ops = append(q.ops, op)
	q.backlog += op.Demand
}

// Pop implements Policy.
func (q *FCFS) Pop(time.Duration) *Op {
	if q.head >= len(q.ops) {
		return nil
	}
	op := q.ops[q.head]
	q.ops[q.head] = nil
	q.head++
	q.backlog -= op.Demand
	// Compact once the dead prefix dominates, amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.ops) {
		n := copy(q.ops, q.ops[q.head:])
		for i := n; i < len(q.ops); i++ {
			q.ops[i] = nil
		}
		q.ops = q.ops[:n]
		q.head = 0
	}
	return op
}

// Len implements Policy.
func (q *FCFS) Len() int { return len(q.ops) - q.head }

// BacklogDemand implements Policy.
func (q *FCFS) BacklogDemand() time.Duration { return q.backlog }

// --- Random ------------------------------------------------------------

// Random serves a uniformly random pending operation: a sanity baseline
// that separates "any reordering" effects from informed scheduling.
type Random struct {
	ops     []*Op
	rng     *rand.Rand
	backlog time.Duration
}

var _ Policy = (*Random)(nil)

// NewRandom returns a Random queue seeded deterministically.
func NewRandom(seed uint64) *Random {
	return &Random{rng: rand.New(rand.NewPCG(seed, seed^0xabcdef12345))}
}

// RandomFactory builds Random queues.
func RandomFactory(seed uint64) Policy { return NewRandom(seed) }

// Name implements Policy.
func (q *Random) Name() string { return "Random" }

// Push implements Policy.
func (q *Random) Push(op *Op, now time.Duration) {
	op.Enqueued = now
	q.ops = append(q.ops, op)
	q.backlog += op.Demand
}

// Pop implements Policy.
func (q *Random) Pop(time.Duration) *Op {
	n := len(q.ops)
	if n == 0 {
		return nil
	}
	i := q.rng.IntN(n)
	op := q.ops[i]
	q.ops[i] = q.ops[n-1]
	q.ops[n-1] = nil
	q.ops = q.ops[:n-1]
	q.backlog -= op.Demand
	return op
}

// Len implements Policy.
func (q *Random) Len() int { return len(q.ops) }

// BacklogDemand implements Policy.
func (q *Random) BacklogDemand() time.Duration { return q.backlog }

// --- SJF ---------------------------------------------------------------

// SJF serves the operation with the smallest own demand first: optimal
// for mean *operation* latency on one server but oblivious to request
// structure.
type SJF struct{ h *opHeap }

var _ Policy = (*SJF)(nil)

// NewSJF returns an empty SJF queue.
func NewSJF() *SJF {
	return &SJF{h: newOpHeap(func(op *Op) float64 { return float64(op.Demand) })}
}

// SJFFactory builds SJF queues.
func SJFFactory(uint64) Policy { return NewSJF() }

// Name implements Policy.
func (q *SJF) Name() string { return "SJF" }

// Push implements Policy.
func (q *SJF) Push(op *Op, now time.Duration) { q.h.push(op, now) }

// Pop implements Policy.
func (q *SJF) Pop(time.Duration) *Op { return q.h.pop() }

// Len implements Policy.
func (q *SJF) Len() int { return q.h.len() }

// BacklogDemand implements Policy.
func (q *SJF) BacklogDemand() time.Duration { return q.h.backlogDemand() }

// Key implements Keyer.
func (q *SJF) Key(op *Op) float64 { return q.h.keyOf(op) }

var _ Keyer = (*SJF)(nil)

// --- Rein SBF ----------------------------------------------------------

// ReinSBF is Rein's shortest-bottleneck-first (EuroSys 2017): operations
// are ordered by their request's *static* bottleneck demand — the largest
// sibling demand, fixed at dispatch. It exploits request structure but
// cannot react to queue state or server speed, which is exactly the gap
// DAS targets.
type ReinSBF struct{ h *opHeap }

var _ Policy = (*ReinSBF)(nil)

// NewReinSBF returns an empty Rein-SBF queue.
func NewReinSBF() *ReinSBF {
	return &ReinSBF{h: newOpHeap(func(op *Op) float64 {
		return float64(op.Tags.DemandBottleneck)
	})}
}

// ReinSBFFactory builds Rein-SBF queues.
func ReinSBFFactory(uint64) Policy { return NewReinSBF() }

// Name implements Policy.
func (q *ReinSBF) Name() string { return "Rein-SBF" }

// Push implements Policy.
func (q *ReinSBF) Push(op *Op, now time.Duration) { q.h.push(op, now) }

// Pop implements Policy.
func (q *ReinSBF) Pop(time.Duration) *Op { return q.h.pop() }

// Len implements Policy.
func (q *ReinSBF) Len() int { return q.h.len() }

// BacklogDemand implements Policy.
func (q *ReinSBF) BacklogDemand() time.Duration { return q.h.backlogDemand() }

// Key implements Keyer.
func (q *ReinSBF) Key(op *Op) float64 { return q.h.keyOf(op) }

var _ Keyer = (*ReinSBF)(nil)

// --- LRPT --------------------------------------------------------------

// LRPT serves the operation whose request has the *largest* bottleneck
// demand first. On its own it is a poor mean-RCT policy (it starves short
// requests); it exists because the paper's DAS is described as a
// combination of LRPT-last and SRPT-first, and the ablation experiments
// need the pure endpoint.
type LRPT struct{ h *opHeap }

var _ Policy = (*LRPT)(nil)

// NewLRPT returns an empty LRPT queue.
func NewLRPT() *LRPT {
	return &LRPT{h: newOpHeap(func(op *Op) float64 {
		return -float64(op.Tags.DemandBottleneck)
	})}
}

// LRPTFactory builds LRPT queues.
func LRPTFactory(uint64) Policy { return NewLRPT() }

// Name implements Policy.
func (q *LRPT) Name() string { return "LRPT" }

// Push implements Policy.
func (q *LRPT) Push(op *Op, now time.Duration) { q.h.push(op, now) }

// Pop implements Policy.
func (q *LRPT) Pop(time.Duration) *Op { return q.h.pop() }

// Len implements Policy.
func (q *LRPT) Len() int { return q.h.len() }

// BacklogDemand implements Policy.
func (q *LRPT) BacklogDemand() time.Duration { return q.h.backlogDemand() }

// Key implements Keyer.
func (q *LRPT) Key(op *Op) float64 { return q.h.keyOf(op) }

var _ Keyer = (*LRPT)(nil)

// --- Least slack -------------------------------------------------------

// LeastSlack serves the operation with the smallest tagged slack first —
// an EDF-flavored baseline that uses the adaptive tags but not the
// request-SRPT term.
type LeastSlack struct{ h *opHeap }

var _ Policy = (*LeastSlack)(nil)

// NewLeastSlack returns an empty least-slack queue.
func NewLeastSlack() *LeastSlack {
	return &LeastSlack{h: newOpHeap(func(op *Op) float64 {
		return float64(op.Tags.Slack())
	})}
}

// LeastSlackFactory builds least-slack queues.
func LeastSlackFactory(uint64) Policy { return NewLeastSlack() }

// Name implements Policy.
func (q *LeastSlack) Name() string { return "LeastSlack" }

// Push implements Policy.
func (q *LeastSlack) Push(op *Op, now time.Duration) { q.h.push(op, now) }

// Pop implements Policy.
func (q *LeastSlack) Pop(time.Duration) *Op { return q.h.pop() }

// Len implements Policy.
func (q *LeastSlack) Len() int { return q.h.len() }

// BacklogDemand implements Policy.
func (q *LeastSlack) BacklogDemand() time.Duration { return q.h.backlogDemand() }

// Key implements Keyer.
func (q *LeastSlack) Key(op *Op) float64 { return q.h.keyOf(op) }

var _ Keyer = (*LeastSlack)(nil)
