package sched

import (
	"testing"
	"time"
)

func op(req RequestID, demand, bottleneck time.Duration) *Op {
	return &Op{
		Request: req,
		Demand:  demand,
		Tags: Tags{
			DemandBottleneck: bottleneck,
			ExpectedFinish:   time.Duration(req) * time.Millisecond,
			RequestFinish:    bottleneck,
		},
	}
}

func drain(t *testing.T, p Policy) []RequestID {
	t.Helper()
	var out []RequestID
	for p.Len() > 0 {
		o := p.Pop(0)
		if o == nil {
			t.Fatal("Pop returned nil with Len > 0")
		}
		out = append(out, o.Request)
	}
	if p.Pop(0) != nil {
		t.Fatal("Pop on empty should return nil")
	}
	return out
}

func TestFCFSOrder(t *testing.T) {
	q := NewFCFS()
	for i := 1; i <= 5; i++ {
		q.Push(op(RequestID(i), time.Millisecond, time.Millisecond), time.Duration(i))
	}
	got := drain(t, q)
	for i, r := range got {
		if r != RequestID(i+1) {
			t.Fatalf("FCFS order = %v", got)
		}
	}
}

func TestFCFSEnqueuedStamped(t *testing.T) {
	q := NewFCFS()
	o := op(1, time.Millisecond, time.Millisecond)
	q.Push(o, 42*time.Millisecond)
	if o.Enqueued != 42*time.Millisecond {
		t.Fatalf("Enqueued = %v, want 42ms", o.Enqueued)
	}
}

func TestFCFSCompaction(t *testing.T) {
	q := NewFCFS()
	// Interleave pushes and pops past the compaction threshold.
	next := RequestID(1)
	for i := 0; i < 500; i++ {
		q.Push(op(RequestID(i+1000), time.Millisecond, 0), 0)
		if i%2 == 1 {
			o := q.Pop(0)
			if o.Request != RequestID(next+999) {
				t.Fatalf("pop %d: got request %d, want %d", i, o.Request, next+999)
			}
			next++
		}
	}
	if q.Len() != 250 {
		t.Fatalf("Len = %d, want 250", q.Len())
	}
}

func TestSJFOrder(t *testing.T) {
	q := NewSJF()
	q.Push(op(1, 3*time.Millisecond, 0), 0)
	q.Push(op(2, 1*time.Millisecond, 0), 0)
	q.Push(op(3, 2*time.Millisecond, 0), 0)
	got := drain(t, q)
	want := []RequestID{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SJF order = %v, want %v", got, want)
		}
	}
}

func TestSJFTiesAreFIFO(t *testing.T) {
	q := NewSJF()
	for i := 1; i <= 10; i++ {
		q.Push(op(RequestID(i), time.Millisecond, 0), 0)
	}
	got := drain(t, q)
	for i := range got {
		if got[i] != RequestID(i+1) {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestReinSBFOrder(t *testing.T) {
	q := NewReinSBF()
	q.Push(op(1, time.Millisecond, 9*time.Millisecond), 0)
	q.Push(op(2, 5*time.Millisecond, 2*time.Millisecond), 0)
	q.Push(op(3, time.Millisecond, 4*time.Millisecond), 0)
	got := drain(t, q)
	want := []RequestID{2, 3, 1} // ordered by bottleneck, not own demand
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SBF order = %v, want %v", got, want)
		}
	}
}

func TestLRPTOrder(t *testing.T) {
	q := NewLRPT()
	q.Push(op(1, time.Millisecond, 2*time.Millisecond), 0)
	q.Push(op(2, time.Millisecond, 9*time.Millisecond), 0)
	got := drain(t, q)
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("LRPT order = %v, want [2 1]", got)
	}
}

func TestLeastSlackOrder(t *testing.T) {
	q := NewLeastSlack()
	a := op(1, time.Millisecond, 0)
	a.Tags.ExpectedFinish = 2 * time.Millisecond
	a.Tags.RequestFinish = 10 * time.Millisecond // slack 8ms
	b := op(2, time.Millisecond, 0)
	b.Tags.ExpectedFinish = 9 * time.Millisecond
	b.Tags.RequestFinish = 10 * time.Millisecond // slack 1ms
	q.Push(a, 0)
	q.Push(b, 0)
	got := drain(t, q)
	if got[0] != 2 {
		t.Fatalf("LeastSlack order = %v, want request 2 first", got)
	}
}

func TestTagsSlackNonNegative(t *testing.T) {
	tags := Tags{ExpectedFinish: 10 * time.Millisecond, RequestFinish: 5 * time.Millisecond}
	if tags.Slack() != 0 {
		t.Fatalf("Slack = %v, want clamped 0", tags.Slack())
	}
}

func TestRandomServesAll(t *testing.T) {
	q := NewRandom(1)
	seen := map[RequestID]bool{}
	for i := 1; i <= 100; i++ {
		q.Push(op(RequestID(i), time.Millisecond, 0), 0)
	}
	for q.Len() > 0 {
		seen[q.Pop(0).Request] = true
	}
	if len(seen) != 100 {
		t.Fatalf("served %d distinct, want 100", len(seen))
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	run := func() []RequestID {
		q := NewRandom(7)
		for i := 1; i <= 50; i++ {
			q.Push(op(RequestID(i), time.Millisecond, 0), 0)
		}
		var out []RequestID
		for q.Len() > 0 {
			out = append(out, q.Pop(0).Request)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different orders")
		}
	}
}

func TestBacklogDemandTracked(t *testing.T) {
	policies := []Policy{NewFCFS(), NewRandom(1), NewSJF(), NewReinSBF(), NewLRPT(), NewLeastSlack()}
	for _, p := range policies {
		p.Push(op(1, 2*time.Millisecond, 0), 0)
		p.Push(op(2, 3*time.Millisecond, 0), 0)
		if got := p.BacklogDemand(); got != 5*time.Millisecond {
			t.Fatalf("%s: backlog = %v, want 5ms", p.Name(), got)
		}
		p.Pop(0)
		if got := p.BacklogDemand(); got >= 5*time.Millisecond || got <= 0 {
			t.Fatalf("%s: backlog after pop = %v", p.Name(), got)
		}
		p.Pop(0)
		if got := p.BacklogDemand(); got != 0 {
			t.Fatalf("%s: backlog after drain = %v, want 0", p.Name(), got)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]Policy{
		"FCFS":       NewFCFS(),
		"Random":     NewRandom(1),
		"SJF":        NewSJF(),
		"Rein-SBF":   NewReinSBF(),
		"LRPT":       NewLRPT(),
		"LeastSlack": NewLeastSlack(),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Fatalf("Name = %q, want %q", p.Name(), want)
		}
	}
}
