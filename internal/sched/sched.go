// Package sched defines the server-side operation-scheduling abstraction
// shared by the simulator (internal/sim) and the live key-value store
// (internal/kv), together with every baseline policy the paper's
// evaluation compares against: FCFS, Random, SJF, LRPT, Rein's
// shortest-bottleneck-first (SBF), Rein's multilevel-queue approximation,
// and least-slack-first. The paper's contribution, DAS, implements the
// same Policy interface in internal/core.
//
// A Policy instance orders the pending key-value access operations of one
// server. Policies are not safe for concurrent use; callers (the
// simulator event loop or a server's queue lock) serialize access.
package sched

import (
	"fmt"
	"time"
)

// ServerID identifies one key-value server in the cluster.
type ServerID int

// RequestID identifies one end-user (multiget) request.
type RequestID uint64

// Op is one key-value access operation pending at a server. An end
// request fans out into one Op per touched server; the request completes
// when its last Op completes.
type Op struct {
	Request RequestID
	Index   int           // position within the request's fan-out
	Server  ServerID      // owning server
	Key     string        // accessed key (informational for policies)
	Demand  time.Duration // service demand at unit server speed

	// Enqueued is stamped by the policy on Push with the caller's now.
	Enqueued time.Duration

	Tags Tags

	// Class records how the serving policy classified this operation
	// when ordering it (ClassUnknown for policies that make no such
	// distinction). The owning policy maintains it while the op is
	// queued; the live server reports it back to clients for tracing.
	Class Class

	// Payload carries caller context (e.g. the live store's pending
	// connection state) through the queue untouched.
	Payload any

	heapIndex int
	seq       uint64
	prioKey   float64
}

// Tags is the scheduling metadata attached by the client-side tagger at
// dispatch time. Absolute times are virtual-clock instants.
type Tags struct {
	// IssuedAt is when the request was dispatched.
	IssuedAt time.Duration
	// Fanout is the request's operation count.
	Fanout int
	// DemandBottleneck is the maximum sibling demand of the request:
	// the static, load-oblivious bottleneck used by Rein-SBF.
	DemandBottleneck time.Duration
	// ExpectedFinish is the adaptive estimate of this operation's
	// completion instant, from the client's per-server load/speed view.
	ExpectedFinish time.Duration
	// RequestFinish is max over siblings of ExpectedFinish: the
	// adaptive estimate of when the whole request completes.
	RequestFinish time.Duration
	// ScaledDemand is this operation's demand scaled by the estimated
	// speed of its server (demand at nominal speed when untagged).
	ScaledDemand time.Duration
	// RemainingTime is the request's remaining bottleneck *processing*
	// time: the maximum sibling ScaledDemand (including this op's own).
	// It is the speed-adaptive generalization of DemandBottleneck and
	// the quantity DAS's SRPT-first term orders by. Queueing waits are
	// deliberately excluded here — wait estimates are noisy and shared
	// across co-queued requests, so folding them in drowns the size
	// signal; waits influence scheduling through Slack instead.
	RemainingTime time.Duration
	// SizeBytes is the operation's payload size in bytes: the value
	// written for puts, the expected value size for gets (the wire
	// size hint). Zero means unknown; the size-class admission
	// classifier (internal/sizeclass) treats unknown as small.
	SizeBytes int64
}

// Slack is how long this operation could be delayed without (by current
// estimates) delaying its request: the gap between the request's expected
// completion and this operation's own.
func (t Tags) Slack() time.Duration {
	s := t.RequestFinish - t.ExpectedFinish
	if s < 0 {
		return 0
	}
	return s
}

// HeapIndex returns the op's position in the owning policy's internal
// heap (-1 when not heap-resident). Together with SetHeapIndex it lets
// policies outside this package (DAS in internal/core) implement
// O(log n) removal of arbitrary elements. The owning policy maintains
// these values while the op is queued; other code must not touch them.
// Callers that retain op pointers past service (the live server pools
// and recycles ops) must never read a recycled op's fields — DAS's
// lazy aging bookkeeping validates such pointers against a queue-side
// live map for exactly this reason.
func (o *Op) HeapIndex() int { return o.heapIndex }

// SetHeapIndex records the op's heap position; see HeapIndex.
func (o *Op) SetHeapIndex(i int) { o.heapIndex = i }

// Policy orders the pending operations of one server.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Push admits an operation at virtual time now.
	Push(op *Op, now time.Duration)
	// Pop removes and returns the next operation to serve, or nil when
	// the queue is empty.
	Pop(now time.Duration) *Op
	// Len returns the number of pending operations.
	Len() int
	// BacklogDemand returns the total service demand currently queued,
	// used in piggybacked feedback.
	BacklogDemand() time.Duration
}

// Factory builds one policy instance per server. The seed lets
// randomized policies stay deterministic while differing across servers.
type Factory func(seed uint64) Policy

// BatchPolicy is implemented by policies that can admit one request's
// whole per-server batch as a single scheduling unit: every operation
// of the batch receives one coherent ordering decision instead of N
// independent ones, so a multiget's frame is never shuffled through
// the queue by per-op estimate noise. Callers must only use PushBatch
// for operations that genuinely share their scheduling tags (same
// RemainingTime, same Slack); incoherent batches go through Push.
type BatchPolicy interface {
	Policy
	// PushBatch admits every op at virtual time now under one ordering
	// decision, preserving the ops' relative submission order.
	PushBatch(ops []*Op, now time.Duration)
}

// Class is a policy's classification of one queued operation — which
// term of its priority function decided the op's place in line. DAS
// assigns it on Push (and overrides it when the starvation bound fires
// on Pop); simpler policies leave ClassUnknown.
type Class uint8

// Operation scheduling classes.
const (
	// ClassUnknown means the policy recorded no classification.
	ClassUnknown Class = iota
	// ClassSRPTFirst marks an op ordered purely by its request's
	// remaining bottleneck processing time (DAS's SRPT-first term).
	ClassSRPTFirst
	// ClassLRPTLast marks an op demoted by the LRPT-last slack term:
	// its request is confidently stuck behind a longer queue elsewhere,
	// so serving it early would not speed the request up.
	ClassLRPTLast
	// ClassPromoted marks an op served out of priority order by a
	// starvation bound — the absolute MaxDelay cutoff or the relative
	// AgingBound wait cap.
	ClassPromoted
)

// String returns the class's metric-label name.
func (c Class) String() string {
	switch c {
	case ClassUnknown:
		return "unknown"
	case ClassSRPTFirst:
		return "srpt-first"
	case ClassLRPTLast:
		return "lrpt-last"
	case ClassPromoted:
		return "promoted"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// DecisionStats counts the ordering decisions a scheduling policy has
// made since construction, making the DAS heuristic's behavior
// inspectable in both the simulator and the live store: how the
// SRPT/LRPT split is trending, how often the slack signal sits near
// its firing boundary (where estimate noise could flip the decision),
// and how often the starvation bound overrides priority order.
type DecisionStats struct {
	// Pushed counts ops admitted to the queue.
	Pushed uint64
	// SRPTFirst counts ops queued on remaining time alone.
	SRPTFirst uint64
	// LRPTDemoted counts ops the LRPT-last slack term demoted.
	LRPTDemoted uint64
	// NearBoundary counts ops whose slack fell within ±10% of the
	// demotion threshold — decisions that a small estimate error would
	// have flipped. A high ratio of NearBoundary to Pushed means the
	// slack signal is too noisy for the configured SlackThreshold.
	NearBoundary uint64
	// Promotions counts ops a starvation bound (MaxDelay or AgingBound)
	// served ahead of their priority order.
	Promotions uint64
}

// Add accumulates other into s (for aggregating across servers).
func (s *DecisionStats) Add(other DecisionStats) {
	s.Pushed += other.Pushed
	s.SRPTFirst += other.SRPTFirst
	s.LRPTDemoted += other.LRPTDemoted
	s.NearBoundary += other.NearBoundary
	s.Promotions += other.Promotions
}

// DecisionReporter is implemented by policies that count their
// ordering decisions (DAS does; the oblivious baselines have no
// decisions to count). Access follows the Policy locking contract:
// the caller serializes Decisions with Push/Pop.
type DecisionReporter interface {
	// Decisions returns the counters accumulated since construction.
	Decisions() DecisionStats
}

// Keyer is implemented by policies whose service order is a static
// numeric priority key (lower = served first). Exposing the key lets
// the simulator compare a queued operation against operations already
// in service, which is what preemptive scheduling needs. FCFS and
// Random deliberately do not implement it.
type Keyer interface {
	// Key returns the priority key Push would order op by.
	Key(op *Op) float64
}
