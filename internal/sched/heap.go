package sched

import (
	"container/heap"
	"time"
)

// keyFunc computes a static priority key for an operation; smaller keys
// are served first. Keys must not depend on the current time so the heap
// order stays valid (time-dependent policies fold time into the key
// algebraically — see internal/core for how DAS does this).
type keyFunc func(op *Op) float64

// opHeap is a min-heap of operations ordered by (key, seq): equal keys
// fall back to FIFO, which keeps every policy starvation-deterministic
// under ties.
type opHeap struct {
	ops []*Op
	key keyFunc
	seq uint64

	backlog time.Duration
}

func newOpHeap(key keyFunc) *opHeap { return &opHeap{key: key} }

// keyOf exposes the heap's ordering key for sched.Keyer implementations.
func (h *opHeap) keyOf(op *Op) float64 { return h.key(op) }

func (h *opHeap) push(op *Op, now time.Duration) {
	op.Enqueued = now
	op.seq = h.seq
	h.seq++
	// Keys are static by contract, so compute once at admission instead
	// of on every heap comparison.
	op.prioKey = h.key(op)
	h.backlog += op.Demand
	heap.Push((*opHeapImpl)(h), op)
}

func (h *opHeap) pop() *Op {
	if len(h.ops) == 0 {
		return nil
	}
	op, ok := heap.Pop((*opHeapImpl)(h)).(*Op)
	if !ok {
		return nil
	}
	h.backlog -= op.Demand
	return op
}

func (h *opHeap) len() int { return len(h.ops) }

func (h *opHeap) backlogDemand() time.Duration { return h.backlog }

// opHeapImpl adapts opHeap to heap.Interface.
type opHeapImpl opHeap

var _ heap.Interface = (*opHeapImpl)(nil)

func (h *opHeapImpl) Len() int { return len(h.ops) }

func (h *opHeapImpl) Less(i, j int) bool {
	if h.ops[i].prioKey != h.ops[j].prioKey {
		return h.ops[i].prioKey < h.ops[j].prioKey
	}
	return h.ops[i].seq < h.ops[j].seq
}

func (h *opHeapImpl) Swap(i, j int) {
	h.ops[i], h.ops[j] = h.ops[j], h.ops[i]
	h.ops[i].heapIndex = i
	h.ops[j].heapIndex = j
}

func (h *opHeapImpl) Push(x any) {
	op, ok := x.(*Op)
	if !ok {
		return
	}
	op.heapIndex = len(h.ops)
	h.ops = append(h.ops, op)
}

func (h *opHeapImpl) Pop() any {
	old := h.ops
	n := len(old)
	op := old[n-1]
	old[n-1] = nil
	h.ops = old[:n-1]
	op.heapIndex = -1
	return op
}
