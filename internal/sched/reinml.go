package sched

import (
	"fmt"
	"time"
)

// ReinML is Rein's deployable approximation of SBF: a small number of
// priority levels with geometric bottleneck-demand thresholds, FIFO
// within a level, and weighted service across levels so large requests
// are not starved outright. This mirrors how Rein was integrated into
// Cassandra, where exact priority queues were replaced by a handful of
// weighted queues.
type ReinML struct {
	levels     []fcfsLevel
	thresholds []time.Duration
	weights    []int
	credits    []int
	backlog    time.Duration
	size       int
}

type fcfsLevel struct {
	ops  []*Op
	head int
}

var _ Policy = (*ReinML)(nil)

// NewReinML builds a multilevel queue. Level i admits operations whose
// request bottleneck demand is <= base*(factor^i); the last level is
// unbounded. Service is weighted: level i gets weight 2^(levels-1-i)
// rounds before lower-priority levels are visited.
func NewReinML(levels int, base time.Duration, factor float64) (*ReinML, error) {
	if levels < 2 {
		return nil, fmt.Errorf("reinml: need >= 2 levels, got %d", levels)
	}
	if base <= 0 {
		return nil, fmt.Errorf("reinml: base threshold %v must be positive", base)
	}
	if factor <= 1 {
		return nil, fmt.Errorf("reinml: factor %v must exceed 1", factor)
	}
	q := &ReinML{
		levels:     make([]fcfsLevel, levels),
		thresholds: make([]time.Duration, levels-1),
		weights:    make([]int, levels),
		credits:    make([]int, levels),
	}
	th := float64(base)
	for i := 0; i < levels-1; i++ {
		q.thresholds[i] = time.Duration(th)
		th *= factor
	}
	w := 1 << (levels - 1)
	for i := range q.weights {
		q.weights[i] = w
		q.credits[i] = w
		if w > 1 {
			w >>= 1
		}
	}
	return q, nil
}

// ReinMLFactory builds 4-level queues with thresholds starting at base
// and growing 4x, the shape used in Rein's evaluation.
func ReinMLFactory(base time.Duration) Factory {
	return func(uint64) Policy {
		q, err := NewReinML(4, base, 4)
		if err != nil {
			// Parameters are compile-time constants here; constructing
			// a 2-level fallback keeps the factory total.
			q, _ = NewReinML(2, time.Millisecond, 4)
		}
		return q
	}
}

// Name implements Policy.
func (q *ReinML) Name() string { return "Rein-ML" }

// Push implements Policy.
func (q *ReinML) Push(op *Op, now time.Duration) {
	op.Enqueued = now
	lvl := len(q.levels) - 1
	for i, th := range q.thresholds {
		if op.Tags.DemandBottleneck <= th {
			lvl = i
			break
		}
	}
	q.levels[lvl].ops = append(q.levels[lvl].ops, op)
	q.backlog += op.Demand
	q.size++
}

// Pop implements Policy. Levels are served by weighted round-robin:
// a level with pending work and remaining credit is served first; when
// all credits are spent they refresh.
func (q *ReinML) Pop(time.Duration) *Op {
	if q.size == 0 {
		return nil
	}
	for pass := 0; pass < 2; pass++ {
		for i := range q.levels {
			if q.levelLen(i) == 0 || q.credits[i] <= 0 {
				continue
			}
			q.credits[i]--
			return q.popLevel(i)
		}
		// All non-empty levels out of credit: refresh and retry.
		for i := range q.credits {
			q.credits[i] = q.weights[i]
		}
	}
	// Unreachable when size > 0, but stay total.
	for i := range q.levels {
		if q.levelLen(i) > 0 {
			return q.popLevel(i)
		}
	}
	return nil
}

func (q *ReinML) levelLen(i int) int { return len(q.levels[i].ops) - q.levels[i].head }

func (q *ReinML) popLevel(i int) *Op {
	l := &q.levels[i]
	op := l.ops[l.head]
	l.ops[l.head] = nil
	l.head++
	if l.head > 64 && l.head*2 >= len(l.ops) {
		n := copy(l.ops, l.ops[l.head:])
		for j := n; j < len(l.ops); j++ {
			l.ops[j] = nil
		}
		l.ops = l.ops[:n]
		l.head = 0
	}
	q.backlog -= op.Demand
	q.size--
	return op
}

// Len implements Policy.
func (q *ReinML) Len() int { return q.size }

// BacklogDemand implements Policy.
func (q *ReinML) BacklogDemand() time.Duration { return q.backlog }
