package sched_test

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/schedtest"
)

// TestPolicyInvariants runs the shared conformance suite over every
// baseline policy.
func TestPolicyInvariants(t *testing.T) {
	cases := map[string]sched.Factory{
		"fcfs":       sched.FCFSFactory,
		"random":     sched.RandomFactory,
		"sjf":        sched.SJFFactory,
		"rein-sbf":   sched.ReinSBFFactory,
		"rein-ml":    sched.ReinMLFactory(2 * time.Millisecond),
		"lrpt":       sched.LRPTFactory,
		"leastslack": sched.LeastSlackFactory,
	}
	for name, factory := range cases {
		schedtest.RunInvariants(t, name, factory)
	}
}
