package sched_test

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/schedtest"
)

// policyCases is the shared table: every baseline policy with the
// property-suite knobs matching its semantics. LRPT intentionally
// serves longest-first, so it is the one keyed policy without the
// shorter-first monotonicity claim.
var policyCases = map[string]struct {
	factory sched.Factory
	props   schedtest.Properties
}{
	"fcfs":       {factory: sched.FCFSFactory},
	"random":     {factory: sched.RandomFactory},
	"sjf":        {factory: sched.SJFFactory, props: schedtest.Properties{ShorterFirst: true}},
	"rein-sbf":   {factory: sched.ReinSBFFactory, props: schedtest.Properties{ShorterFirst: true}},
	"rein-ml":    {factory: sched.ReinMLFactory(2 * time.Millisecond)},
	"lrpt":       {factory: sched.LRPTFactory},
	"leastslack": {factory: sched.LeastSlackFactory, props: schedtest.Properties{ShorterFirst: true}},
}

// TestPolicyInvariants runs the shared conformance suite over every
// baseline policy.
func TestPolicyInvariants(t *testing.T) {
	for name, tc := range policyCases {
		schedtest.RunInvariants(t, name, tc.factory)
	}
}

// TestPolicyProperties runs the property-based suite (work
// conservation, key stability, keyed pop order, priority monotonicity)
// over the same table.
func TestPolicyProperties(t *testing.T) {
	for name, tc := range policyCases {
		schedtest.RunProperties(t, name, tc.factory, tc.props)
	}
}
