package sched

import (
	"testing"
	"time"
)

func TestNewReinMLErrors(t *testing.T) {
	if _, err := NewReinML(1, time.Millisecond, 4); err == nil {
		t.Fatal("1 level should error")
	}
	if _, err := NewReinML(4, 0, 4); err == nil {
		t.Fatal("zero base should error")
	}
	if _, err := NewReinML(4, time.Millisecond, 1); err == nil {
		t.Fatal("factor 1 should error")
	}
}

func TestReinMLLevelAssignment(t *testing.T) {
	q, err := NewReinML(3, time.Millisecond, 4) // thresholds: 1ms, 4ms
	if err != nil {
		t.Fatalf("NewReinML: %v", err)
	}
	small := op(1, time.Millisecond, 500*time.Microsecond)
	mid := op(2, time.Millisecond, 3*time.Millisecond)
	large := op(3, time.Millisecond, 100*time.Millisecond)
	// Push large first: strict FIFO would serve it first, levels won't.
	q.Push(large, 0)
	q.Push(mid, 0)
	q.Push(small, 0)
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if got := q.Pop(0).Request; got != 1 {
		t.Fatalf("first pop = request %d, want 1 (smallest bottleneck level)", got)
	}
}

func TestReinMLWeightedServiceAvoidsStarvation(t *testing.T) {
	q, err := NewReinML(2, time.Millisecond, 4)
	if err != nil {
		t.Fatalf("NewReinML: %v", err)
	}
	// Keep the high-priority level saturated; the low level must still
	// be served within a bounded number of pops.
	for i := 0; i < 20; i++ {
		q.Push(op(RequestID(100+i), time.Millisecond, 500*time.Microsecond), 0)
	}
	q.Push(op(1, time.Millisecond, time.Hour), 0) // low-priority op
	servedLow := false
	for i := 0; i < 21; i++ {
		if q.Pop(0).Request == 1 {
			servedLow = true
			break
		}
	}
	if !servedLow {
		t.Fatal("low-priority operation starved across a full drain")
	}
}

func TestReinMLDrainsEverything(t *testing.T) {
	q, err := NewReinML(4, time.Millisecond, 4)
	if err != nil {
		t.Fatalf("NewReinML: %v", err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		b := time.Duration(i%50) * time.Millisecond
		q.Push(op(RequestID(i), time.Millisecond, b), 0)
	}
	seen := map[RequestID]bool{}
	for q.Len() > 0 {
		o := q.Pop(0)
		if o == nil {
			t.Fatal("nil pop with work pending")
		}
		seen[o.Request] = true
	}
	if len(seen) != n {
		t.Fatalf("drained %d distinct ops, want %d", len(seen), n)
	}
	if q.BacklogDemand() != 0 {
		t.Fatalf("backlog after drain = %v, want 0", q.BacklogDemand())
	}
	if q.Pop(0) != nil {
		t.Fatal("Pop on empty should be nil")
	}
}

func TestReinMLFactory(t *testing.T) {
	p := ReinMLFactory(time.Millisecond)(0)
	if p.Name() != "Rein-ML" {
		t.Fatalf("Name = %q", p.Name())
	}
	p.Push(op(1, time.Millisecond, time.Millisecond), 0)
	if p.Pop(0) == nil {
		t.Fatal("factory-built queue should serve")
	}
}

func TestReinMLBacklog(t *testing.T) {
	q, err := NewReinML(2, time.Millisecond, 2)
	if err != nil {
		t.Fatalf("NewReinML: %v", err)
	}
	q.Push(op(1, 2*time.Millisecond, time.Microsecond), 0)
	q.Push(op(2, 3*time.Millisecond, time.Hour), 0)
	if q.BacklogDemand() != 5*time.Millisecond {
		t.Fatalf("backlog = %v, want 5ms", q.BacklogDemand())
	}
}
