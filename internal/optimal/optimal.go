// Package optimal implements the paper's formalized offline scheduling
// problem and an exact solver for tiny instances.
//
// The problem: a set of multiget requests is already queued; each
// request consists of operations with known demands, each bound to one
// server; every server serves its operations sequentially in some
// order. A request completes when its last operation completes, and the
// objective is the minimum mean request completion time. Choosing the
// per-server orders jointly is NP-hard in general (the paper's
// motivation for a heuristic) — the search space is the product of the
// per-server permutations, and the max-coupling between servers defeats
// the exchange arguments that make single-machine SRPT optimal.
//
// Exact enumerates that product for instances small enough to afford
// it, giving ground truth to measure how far FCFS, SJF, Rein-SBF and
// DAS land from the optimum (experiment E13).
package optimal

import (
	"fmt"
	"math"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/sched"
)

// Op is one operation of an offline instance.
type Op struct {
	// Server is the op's serving server, in [0, Servers).
	Server int
	// Demand is the service time at unit speed.
	Demand time.Duration
}

// Request is one multiget of an offline instance.
type Request struct {
	Ops []Op
}

// Instance is a static scheduling problem: all requests queued at t=0.
type Instance struct {
	Servers  int
	Requests []Request
}

// Validate checks instance consistency.
func (in Instance) Validate() error {
	if in.Servers <= 0 {
		return fmt.Errorf("optimal: servers %d must be positive", in.Servers)
	}
	if len(in.Requests) == 0 {
		return fmt.Errorf("optimal: instance has no requests")
	}
	for r, req := range in.Requests {
		if len(req.Ops) == 0 {
			return fmt.Errorf("optimal: request %d has no ops", r)
		}
		for _, op := range req.Ops {
			if op.Server < 0 || op.Server >= in.Servers {
				return fmt.Errorf("optimal: request %d op on server %d outside [0,%d)", r, op.Server, in.Servers)
			}
			if op.Demand <= 0 {
				return fmt.Errorf("optimal: request %d has non-positive demand", r)
			}
		}
	}
	return nil
}

// opRef identifies an op inside its instance.
type opRef struct {
	req, idx int
}

// perServer groups the instance's op references by server.
func (in Instance) perServer() [][]opRef {
	out := make([][]opRef, in.Servers)
	for r, req := range in.Requests {
		for i, op := range req.Ops {
			out[op.Server] = append(out[op.Server], opRef{req: r, idx: i})
		}
	}
	return out
}

// MeanRCT evaluates one schedule: orders[s] is the service order of
// server s over its op references (as produced by perServer, permuted).
func (in Instance) meanRCT(orders [][]opRef) time.Duration {
	finish := make([]time.Duration, len(in.Requests))
	for s := range orders {
		var clock time.Duration
		for _, ref := range orders[s] {
			op := in.Requests[ref.req].Ops[ref.idx]
			clock += op.Demand
			if clock > finish[ref.req] {
				finish[ref.req] = clock
			}
		}
	}
	var sum time.Duration
	for _, f := range finish {
		sum += f
	}
	return sum / time.Duration(len(in.Requests))
}

// MaxExactStates caps the schedule-space size Exact will enumerate.
const MaxExactStates = 4_000_000

// Exact returns the minimum mean RCT over all joint per-server orders.
// It errors if the instance is invalid or too large to enumerate.
func Exact(in Instance) (time.Duration, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	groups := in.perServer()
	states := 1.0
	for _, g := range groups {
		states *= factorial(len(g))
		if states > MaxExactStates {
			return 0, fmt.Errorf("optimal: schedule space exceeds %d states", MaxExactStates)
		}
	}
	best := time.Duration(math.MaxInt64)
	orders := make([][]opRef, len(groups))
	var rec func(s int)
	rec = func(s int) {
		if s == len(groups) {
			if m := in.meanRCT(orders); m < best {
				best = m
			}
			return
		}
		permute(groups[s], func(p []opRef) {
			orders[s] = p
			rec(s + 1)
		})
	}
	rec(0)
	return best, nil
}

// Evaluate runs a queueing policy on the instance: all operations are
// pushed at t=0 (statically tagged, i.e. with the information the
// policy would have without load feedback) and each server serves its
// queue to exhaustion in popped order.
func Evaluate(in Instance, factory sched.Factory) (time.Duration, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if factory == nil {
		return 0, fmt.Errorf("optimal: nil policy factory")
	}
	queues := make([]sched.Policy, in.Servers)
	for s := range queues {
		queues[s] = factory(uint64(s) + 1)
	}
	for r, req := range in.Requests {
		ops := make([]*sched.Op, len(req.Ops))
		for i, op := range req.Ops {
			ops[i] = &sched.Op{
				Request: sched.RequestID(r + 1),
				Index:   i,
				Server:  sched.ServerID(op.Server),
				Demand:  op.Demand,
			}
		}
		core.Tag(ops, nil, 0)
		for _, op := range ops {
			queues[op.Server].Push(op, 0)
		}
	}
	finish := make([]time.Duration, len(in.Requests))
	for s, q := range queues {
		var clock time.Duration
		for q.Len() > 0 {
			op := q.Pop(clock)
			if op == nil {
				return 0, fmt.Errorf("optimal: server %d queue returned nil with work pending", s)
			}
			clock += op.Demand
			r := int(op.Request) - 1
			if clock > finish[r] {
				finish[r] = clock
			}
		}
	}
	var sum time.Duration
	for _, f := range finish {
		sum += f
	}
	return sum / time.Duration(len(in.Requests)), nil
}

// permute calls fn with every permutation of g (g is reordered in
// place; fn must not retain the slice).
func permute(g []opRef, fn func([]opRef)) {
	var heapPerm func(k int)
	heapPerm = func(k int) {
		if k <= 1 {
			fn(g)
			return
		}
		for i := 0; i < k; i++ {
			heapPerm(k - 1)
			if k%2 == 0 {
				g[i], g[k-1] = g[k-1], g[i]
			} else {
				g[0], g[k-1] = g[k-1], g[0]
			}
		}
	}
	heapPerm(len(g))
}

func factorial(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}
