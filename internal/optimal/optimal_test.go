package optimal

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sched"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestValidate(t *testing.T) {
	bad := []Instance{
		{Servers: 0, Requests: []Request{{Ops: []Op{{0, ms(1)}}}}},
		{Servers: 1},
		{Servers: 1, Requests: []Request{{}}},
		{Servers: 1, Requests: []Request{{Ops: []Op{{Server: 5, Demand: ms(1)}}}}},
		{Servers: 1, Requests: []Request{{Ops: []Op{{Server: 0, Demand: 0}}}}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

func TestExactSingleServerIsSJFOnRequests(t *testing.T) {
	// One server, three single-op requests with demands 3,1,2:
	// optimal mean completion = SPT order (1,2,3): (1+3+6)/3 ms.
	in := Instance{
		Servers: 1,
		Requests: []Request{
			{Ops: []Op{{0, ms(3)}}},
			{Ops: []Op{{0, ms(1)}}},
			{Ops: []Op{{0, ms(2)}}},
		},
	}
	got, err := Exact(in)
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	want := (ms(1) + ms(3) + ms(6)) / 3
	if got != want {
		t.Fatalf("Exact = %v, want %v", got, want)
	}
}

func TestExactCouplingAcrossServers(t *testing.T) {
	// Two servers. Request A has ops (s0:1ms, s1:4ms); request B has
	// (s0:4ms). B's completion depends only on server 0's order, A's on
	// the max of both. Serving A first on s0: A done at max(1,4)=4,
	// B at 5 -> mean 4.5. Serving B first: A at max(5,4)=5, B at 4 ->
	// mean 4.5. Either way 4.5ms.
	in := Instance{
		Servers: 2,
		Requests: []Request{
			{Ops: []Op{{0, ms(1)}, {1, ms(4)}}},
			{Ops: []Op{{0, ms(4)}}},
		},
	}
	got, err := Exact(in)
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	want := ms(9) / 2
	if got != want {
		t.Fatalf("Exact = %v, want %v", got, want)
	}
}

func TestExactTooLarge(t *testing.T) {
	reqs := make([]Request, 12)
	for i := range reqs {
		reqs[i] = Request{Ops: []Op{{0, ms(1)}}}
	}
	if _, err := Exact(Instance{Servers: 1, Requests: reqs}); err == nil {
		t.Fatal("12! states should exceed the enumeration cap")
	}
}

func TestEvaluateFCFSSimple(t *testing.T) {
	in := Instance{
		Servers: 1,
		Requests: []Request{
			{Ops: []Op{{0, ms(3)}}},
			{Ops: []Op{{0, ms(1)}}},
		},
	}
	got, err := Evaluate(in, sched.FCFSFactory)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// FCFS: first request done at 3, second at 4 -> mean 3.5.
	if got != ms(7)/2 {
		t.Fatalf("Evaluate = %v, want 3.5ms", got)
	}
}

func TestEvaluateErrors(t *testing.T) {
	in := Instance{Servers: 1, Requests: []Request{{Ops: []Op{{0, ms(1)}}}}}
	if _, err := Evaluate(in, nil); err == nil {
		t.Fatal("nil factory should error")
	}
	if _, err := Evaluate(Instance{}, sched.FCFSFactory); err == nil {
		t.Fatal("invalid instance should error")
	}
}

// randomInstance builds a small random instance.
func randomInstance(seed uint64) Instance {
	rng := dist.NewRand(seed)
	const servers = 3
	n := 3 + rng.IntN(3) // 3-5 requests
	reqs := make([]Request, n)
	for r := range reqs {
		k := 1 + rng.IntN(3)
		ops := make([]Op, 0, k)
		used := map[int]bool{}
		for len(ops) < k {
			s := rng.IntN(servers)
			if used[s] {
				continue
			}
			used[s] = true
			ops = append(ops, Op{Server: s, Demand: time.Duration(1+rng.IntN(9)) * time.Millisecond})
		}
		reqs[r] = Request{Ops: ops}
	}
	return Instance{Servers: servers, Requests: reqs}
}

func TestExactLowerBoundsAllPoliciesQuick(t *testing.T) {
	factories := map[string]sched.Factory{
		"fcfs": sched.FCFSFactory,
		"sjf":  sched.SJFFactory,
		"sbf":  sched.ReinSBFFactory,
		"das":  core.Factory(core.DefaultOptions()),
	}
	f := func(seed uint64) bool {
		in := randomInstance(seed)
		opt, err := Exact(in)
		if err != nil {
			return true // instance too large: skip
		}
		for name, factory := range factories {
			got, err := Evaluate(in, factory)
			if err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			if got < opt {
				t.Logf("seed %d: %s (%v) beat the optimum (%v)", seed, name, got, opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSBFNearOptimalOnAverage(t *testing.T) {
	// Aggregate over many random instances: request-aware policies
	// should land much closer to OPT than FCFS.
	var optSum, fcfsSum, sbfSum float64
	count := 0
	for seed := uint64(1); seed <= 120; seed++ {
		in := randomInstance(seed)
		opt, err := Exact(in)
		if err != nil {
			continue
		}
		fcfs, err := Evaluate(in, sched.FCFSFactory)
		if err != nil {
			t.Fatalf("fcfs: %v", err)
		}
		sbf, err := Evaluate(in, sched.ReinSBFFactory)
		if err != nil {
			t.Fatalf("sbf: %v", err)
		}
		optSum += opt.Seconds()
		fcfsSum += fcfs.Seconds()
		sbfSum += sbf.Seconds()
		count++
	}
	if count < 50 {
		t.Fatalf("only %d instances solved", count)
	}
	fcfsRatio := fcfsSum / optSum
	sbfRatio := sbfSum / optSum
	if sbfRatio >= fcfsRatio {
		t.Fatalf("SBF/OPT = %.3f should beat FCFS/OPT = %.3f", sbfRatio, fcfsRatio)
	}
	if sbfRatio > 1.15 {
		t.Fatalf("SBF/OPT = %.3f, want within 15%% of optimal on small instances", sbfRatio)
	}
}
