package workload

import (
	"bytes"
	"math"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/dist"
)

func baseConfig() Config {
	return Config{
		Keys:       10000,
		KeySkew:    0.9,
		Fanout:     dist.UniformInt{Lo: 1, Hi: 8},
		Demand:     dist.Exponential{M: time.Millisecond},
		RatePerSec: 1000,
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Keys = 0 },
		func(c *Config) { c.Fanout = nil },
		func(c *Config) { c.Demand = nil },
		func(c *Config) { c.RatePerSec = 0 },
		func(c *Config) { c.KeySkew = -1 },
	}
	for i, mutate := range cases {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := NewGenerator(cfg, 1); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestGeneratorArrivalsIncrease(t *testing.T) {
	g, err := NewGenerator(baseConfig(), 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	var prev time.Duration
	for i := 0; i < 1000; i++ {
		r := g.Next()
		if r.Arrival <= prev {
			t.Fatalf("arrival %v not after %v", r.Arrival, prev)
		}
		prev = r.Arrival
	}
}

func TestGeneratorIDsSequential(t *testing.T) {
	g, err := NewGenerator(baseConfig(), 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for i := 1; i <= 100; i++ {
		if r := g.Next(); int(r.ID) != i {
			t.Fatalf("ID = %d, want %d", r.ID, i)
		}
	}
}

func TestGeneratorDistinctKeysPerRequest(t *testing.T) {
	cfg := baseConfig()
	cfg.Fanout = dist.ConstInt{N: 20}
	cfg.KeySkew = 1.2 // heavy collisions in the head
	g, err := NewGenerator(cfg, 3)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for i := 0; i < 200; i++ {
		r := g.Next()
		seen := map[string]bool{}
		for _, op := range r.Ops {
			if seen[op.Key] {
				t.Fatalf("request %d has duplicate key %s", r.ID, op.Key)
			}
			seen[op.Key] = true
		}
		if len(r.Ops) != 20 {
			t.Fatalf("fanout = %d, want 20", len(r.Ops))
		}
	}
}

func TestGeneratorFanoutClampedToKeyspace(t *testing.T) {
	cfg := baseConfig()
	cfg.Keys = 5
	cfg.Fanout = dist.ConstInt{N: 50}
	g, err := NewGenerator(cfg, 3)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	if r := g.Next(); len(r.Ops) != 5 {
		t.Fatalf("fanout = %d, want clamp to keyspace 5", len(r.Ops))
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	run := func() []Request {
		g, err := NewGenerator(baseConfig(), 77)
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		return g.Take(50)
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Arrival != b[i].Arrival || len(a[i].Ops) != len(b[i].Ops) {
			t.Fatal("same seed produced different streams")
		}
		for j := range a[i].Ops {
			if a[i].Ops[j] != b[i].Ops[j] {
				t.Fatal("same seed produced different ops")
			}
		}
	}
}

func TestGeneratorKeySkewShowsUp(t *testing.T) {
	cfg := baseConfig()
	cfg.KeySkew = 1.0
	cfg.Fanout = dist.ConstInt{N: 1}
	g, err := NewGenerator(cfg, 5)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next().Ops[0].Key]++
	}
	if counts[KeyName(0)] <= counts[KeyName(100)] {
		t.Fatalf("skew missing: k0=%d k100=%d", counts[KeyName(0)], counts[KeyName(100)])
	}
}

func TestMaxDemand(t *testing.T) {
	r := Request{Ops: []OpSpec{
		{Key: "a", Demand: time.Millisecond},
		{Key: "b", Demand: 5 * time.Millisecond},
		{Key: "c", Demand: 2 * time.Millisecond},
	}}
	if r.MaxDemand() != 5*time.Millisecond {
		t.Fatalf("MaxDemand = %v, want 5ms", r.MaxDemand())
	}
	if r.Fanout() != 3 {
		t.Fatalf("Fanout = %d, want 3", r.Fanout())
	}
}

func TestKeyName(t *testing.T) {
	if got := KeyName(0); got != "k0000000" {
		t.Fatalf("KeyName(0) = %q", got)
	}
	if got := KeyName(12345678); got != "k12345678" {
		t.Fatalf("KeyName(12345678) = %q", got)
	}
}

func TestRateForLoad(t *testing.T) {
	// 10 servers at unit speed, 1ms mean demand => 10k ops/s capacity;
	// mean fanout 5 => 2k req/s at rho=1, 1400 at rho=0.7.
	got, err := RateForLoad(0.7, 10, 1.0, 5, time.Millisecond)
	if err != nil {
		t.Fatalf("RateForLoad: %v", err)
	}
	if math.Abs(got-1400) > 1e-9 {
		t.Fatalf("rate = %v, want 1400", got)
	}
	if _, err := RateForLoad(0, 10, 1, 5, time.Millisecond); err == nil {
		t.Fatal("rho=0 should error")
	}
	if _, err := RateForLoad(0.5, 0, 1, 5, time.Millisecond); err == nil {
		t.Fatal("servers=0 should error")
	}
}

func TestEmpiricalLoadMatchesTarget(t *testing.T) {
	// Generate at the rate RateForLoad prescribes and verify offered
	// demand per server-second is close to rho.
	const rho, servers = 0.6, 8
	meanFanout := 4.0
	meanDemand := 2 * time.Millisecond
	rate, err := RateForLoad(rho, servers, 1.0, meanFanout, meanDemand)
	if err != nil {
		t.Fatalf("RateForLoad: %v", err)
	}
	cfg := Config{
		Keys:       100000,
		Fanout:     dist.UniformInt{Lo: 1, Hi: 7}, // mean 4
		Demand:     dist.Exponential{M: meanDemand},
		RatePerSec: rate,
	}
	g, err := NewGenerator(cfg, 9)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	var totalDemand time.Duration
	var last time.Duration
	const n = 50000
	for i := 0; i < n; i++ {
		r := g.Next()
		last = r.Arrival
		for _, op := range r.Ops {
			totalDemand += op.Demand
		}
	}
	offered := totalDemand.Seconds() / (last.Seconds() * servers)
	if math.Abs(offered-rho)/rho > 0.03 {
		t.Fatalf("offered load = %.3f, want ~%.2f", offered, rho)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g, err := NewGenerator(baseConfig(), 21)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	reqs := g.Take(100)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip length %d, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i].ID != reqs[i].ID || got[i].Arrival != reqs[i].Arrival {
			t.Fatalf("request %d differs after round trip", i)
		}
		for j := range reqs[i].Ops {
			if got[i].Ops[j] != reqs[i].Ops[j] {
				t.Fatalf("request %d op %d differs after round trip", i, j)
			}
		}
	}
}

func TestReadTraceBadInput(t *testing.T) {
	if _, err := ReadTrace(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("malformed trace should error")
	}
}
