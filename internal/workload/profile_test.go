package workload

import (
	"testing"
	"time"

	"github.com/daskv/daskv/internal/dist"
)

func TestGeneratorHonorsLoadProfile(t *testing.T) {
	cfg := Config{
		Keys:       10000,
		Fanout:     dist.ConstInt{N: 1},
		Demand:     dist.Deterministic{V: time.Millisecond},
		RatePerSec: 2000,
		Profile:    dist.SquareWaveLoad{Low: 0.1, High: 1.0, Period: 2 * time.Second},
	}
	g, err := NewGenerator(cfg, 3)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	lowCount, highCount := 0, 0
	for i := 0; i < 30000; i++ {
		r := g.Next()
		if cfg.Profile.At(r.Arrival) == 0.1 {
			lowCount++
		} else {
			highCount++
		}
	}
	ratio := float64(highCount) / float64(lowCount)
	if ratio < 7 || ratio > 13 {
		t.Fatalf("high/low arrival ratio = %.2f, want ~10", ratio)
	}
}
