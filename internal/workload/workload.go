// Package workload generates multiget request streams for the simulator
// and the live-store load driver: Poisson (optionally time-varying)
// arrivals, configurable fan-out, Zipf key popularity over a fixed
// keyspace, and per-operation service demands. Generators are
// deterministic for a given seed, and streams can be recorded to and
// replayed from JSON-lines traces.
package workload

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"time"

	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/sched"
)

// OpSpec is one key access of a request before it is routed to a server.
type OpSpec struct {
	Key    string        `json:"key"`
	Demand time.Duration `json:"demandNanos"`
	// ValueBytes is the operation's payload size (0 when the workload
	// has no value-size distribution). It rides through the simulator
	// as Tags.SizeBytes so size-aware schedulers see the same signal
	// the live wire carries.
	ValueBytes int64 `json:"valueBytes,omitempty"`
}

// Request is one end-user multiget.
type Request struct {
	ID      sched.RequestID `json:"id"`
	Arrival time.Duration   `json:"arrivalNanos"`
	Ops     []OpSpec        `json:"ops"`
}

// Fanout returns the number of operations.
func (r Request) Fanout() int { return len(r.Ops) }

// MaxDemand returns the largest operation demand (the static bottleneck).
func (r Request) MaxDemand() time.Duration {
	var m time.Duration
	for _, op := range r.Ops {
		if op.Demand > m {
			m = op.Demand
		}
	}
	return m
}

// Config describes a request stream.
type Config struct {
	// Keys is the keyspace size; keys are named k0000000..k<Keys-1>.
	Keys int
	// KeySkew is the Zipf exponent of key popularity (0 = uniform).
	KeySkew float64
	// Fanout draws the number of distinct keys per request.
	Fanout dist.Discrete
	// Demand draws each operation's service demand.
	Demand dist.Duration
	// ValueSize draws each operation's payload size in bytes (nil =
	// size-oblivious stream, ValueBytes stays 0). Its mean must stay
	// under MaxValueMean so generated values survive client batching.
	ValueSize dist.ByteSize
	// SizeDemand, when set with ValueSize, scales each sampled demand
	// by the op's size relative to the distribution mean — so a 10×
	// value costs ~10× the service time, coupling the demand tail to
	// the size tail the way a value copy does. Zero keeps demand and
	// size independent.
	SizeDemand bool
	// RatePerSec is the base request arrival rate.
	RatePerSec float64
	// Profile modulates the rate over time (nil = constant).
	Profile dist.LoadProfile
}

// MaxValueMean is the largest admissible ValueSize mean: the live
// client chunks multiset batches at 4 MiB (maxBatchBytes in
// internal/kv/client.go), and a stream whose *average* value exceeds
// one chunk cannot batch at all — every such config so far has been a
// misconfigured unit (MB vs KB), so validation rejects it outright.
const MaxValueMean = 4 << 20

func (c Config) validate() error {
	if c.Keys <= 0 {
		return fmt.Errorf("workload: keyspace size %d must be positive", c.Keys)
	}
	if c.Fanout == nil {
		return fmt.Errorf("workload: fanout distribution required")
	}
	if c.Demand == nil {
		return fmt.Errorf("workload: demand distribution required")
	}
	if c.RatePerSec <= 0 {
		return fmt.Errorf("workload: rate %v must be positive", c.RatePerSec)
	}
	if c.ValueSize != nil {
		if m := c.ValueSize.MeanBytes(); m > MaxValueMean {
			return fmt.Errorf(
				"workload: value-size %v mean %.0f bytes exceeds the %d-byte client batch chunk limit",
				c.ValueSize, m, int64(MaxValueMean))
		}
	}
	if c.SizeDemand && c.ValueSize == nil {
		return fmt.Errorf("workload: SizeDemand requires a ValueSize distribution")
	}
	return nil
}

// Generator produces a deterministic request stream.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *dist.Zipf
	arrive  *dist.Poisson
	nextID  sched.RequestID
	lastArr time.Duration
}

// NewGenerator validates cfg and builds a generator for the seed.
func NewGenerator(cfg Config, seed uint64) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	z, err := dist.NewZipf(cfg.Keys, cfg.KeySkew)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	p, err := dist.NewPoisson(cfg.RatePerSec, cfg.Profile)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return &Generator{
		cfg:    cfg,
		rng:    dist.NewRand(seed),
		zipf:   z,
		arrive: p,
		nextID: 1,
	}, nil
}

// Next returns the next request in arrival order.
func (g *Generator) Next() Request {
	g.lastArr = g.arrive.Next(g.lastArr, g.rng)
	k := g.cfg.Fanout.Sample(g.rng)
	if k < 1 {
		k = 1
	}
	if k > g.cfg.Keys {
		k = g.cfg.Keys
	}
	ops := make([]OpSpec, 0, k)
	seen := make(map[int]bool, k)
	for len(ops) < k {
		rank := g.zipf.Sample(g.rng)
		if seen[rank] {
			// Resample; for pathological skew fall back to a linear
			// probe so the loop terminates.
			rank = g.probe(rank, seen)
		}
		seen[rank] = true
		op := OpSpec{
			Key:    KeyName(rank),
			Demand: g.cfg.Demand.Sample(g.rng),
		}
		if g.cfg.ValueSize != nil {
			op.ValueBytes = g.cfg.ValueSize.SampleBytes(g.rng)
			if g.cfg.SizeDemand {
				if m := g.cfg.ValueSize.MeanBytes(); m > 0 {
					op.Demand = time.Duration(float64(op.Demand) * float64(op.ValueBytes) / m)
					if op.Demand < time.Microsecond {
						op.Demand = time.Microsecond
					}
				}
			}
		}
		ops = append(ops, op)
	}
	r := Request{ID: g.nextID, Arrival: g.lastArr, Ops: ops}
	g.nextID++
	return r
}

// probe finds the nearest unused rank when Zipf resampling keeps
// colliding (extreme skew with wide fan-out).
func (g *Generator) probe(rank int, seen map[int]bool) int {
	for tries := 0; tries < 8; tries++ {
		r := g.zipf.Sample(g.rng)
		if !seen[r] {
			return r
		}
	}
	for i := 0; i < g.cfg.Keys; i++ {
		r := (rank + i) % g.cfg.Keys
		if !seen[r] {
			return r
		}
	}
	return rank
}

// Take returns the next n requests.
func (g *Generator) Take(n int) []Request {
	out := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}

// KeyName formats the canonical key string for a key rank.
func KeyName(rank int) string { return "k" + pad7(rank) }

func pad7(n int) string {
	s := strconv.Itoa(n)
	if len(s) >= 7 {
		return s
	}
	const zeros = "0000000"
	return zeros[:7-len(s)] + s
}

// RateForLoad returns the request arrival rate (req/s) that drives an
// N-server cluster with aggregate speed capacity to utilization rho,
// given the mean fan-out and mean per-operation demand:
//
//	lambda = rho * N * meanSpeed / (E[fanout] * E[demand]).
func RateForLoad(rho float64, servers int, meanSpeed, meanFanout float64, meanDemand time.Duration) (float64, error) {
	if rho <= 0 || servers <= 0 || meanSpeed <= 0 || meanFanout <= 0 || meanDemand <= 0 {
		return 0, fmt.Errorf(
			"workload: invalid load parameters rho=%v servers=%d speed=%v fanout=%v demand=%v",
			rho, servers, meanSpeed, meanFanout, meanDemand)
	}
	opsPerSecCapacity := float64(servers) * meanSpeed / meanDemand.Seconds()
	return rho * opsPerSecCapacity / meanFanout, nil
}
