package workload

import (
	"math"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/dist"
)

func TestConfigRejectsOversizeValueMean(t *testing.T) {
	cfg := baseConfig()
	cfg.ValueSize = dist.ConstBytes{N: MaxValueMean + 1}
	if _, err := NewGenerator(cfg, 1); err == nil {
		t.Fatal("expected validation error for value mean above the batch chunk limit")
	}
	// Right at the limit is fine.
	cfg.ValueSize = dist.ConstBytes{N: MaxValueMean}
	if _, err := NewGenerator(cfg, 1); err != nil {
		t.Fatalf("mean at the limit rejected: %v", err)
	}
}

func TestConfigRejectsSizeDemandWithoutValueSize(t *testing.T) {
	cfg := baseConfig()
	cfg.SizeDemand = true
	if _, err := NewGenerator(cfg, 1); err == nil {
		t.Fatal("expected validation error for SizeDemand without ValueSize")
	}
}

func TestGeneratorAnnotatesValueBytes(t *testing.T) {
	cfg := baseConfig()
	cfg.ValueSize = dist.ConstBytes{N: 2048}
	g, err := NewGenerator(cfg, 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for _, r := range g.Take(50) {
		for _, op := range r.Ops {
			if op.ValueBytes != 2048 {
				t.Fatalf("ValueBytes = %d, want 2048", op.ValueBytes)
			}
		}
	}
	// Without a ValueSize distribution the stream stays size-oblivious.
	g2, err := NewGenerator(baseConfig(), 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for _, r := range g2.Take(10) {
		for _, op := range r.Ops {
			if op.ValueBytes != 0 {
				t.Fatalf("size-oblivious stream produced ValueBytes %d", op.ValueBytes)
			}
		}
	}
}

func TestSizeDemandScalesWithValueBytes(t *testing.T) {
	cfg := baseConfig()
	cfg.Demand = dist.Deterministic{V: time.Millisecond}
	cfg.ValueSize = dist.ParetoBytes{Lo: 1 << 10, Hi: 1 << 20, Alpha: 1.2}
	cfg.SizeDemand = true
	g, err := NewGenerator(cfg, 9)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	mean := cfg.ValueSize.MeanBytes()
	for _, r := range g.Take(200) {
		for _, op := range r.Ops {
			want := time.Duration(float64(time.Millisecond) * float64(op.ValueBytes) / mean)
			if want < time.Microsecond {
				want = time.Microsecond
			}
			if op.Demand != want {
				t.Fatalf("demand %v for %dB value, want %v", op.Demand, op.ValueBytes, want)
			}
		}
	}
}

// TestSizedStreamDeterministicPerSeed extends the generator's per-seed
// reproducibility guarantee to the size-annotated stream.
func TestSizedStreamDeterministicPerSeed(t *testing.T) {
	run := func() []Request {
		cfg := baseConfig()
		cfg.ValueSize = dist.LognormalBytes{M: 16 << 10, Sigma: 1.5, Cap: 1 << 20}
		cfg.SizeDemand = true
		g, err := NewGenerator(cfg, 77)
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		return g.Take(50)
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i].Ops {
			if a[i].Ops[j] != b[i].Ops[j] {
				t.Fatal("same seed produced different sized ops")
			}
		}
	}
}

// TestSizeDemandPreservesOfferedLoad pins the normalization: scaling
// demand by size/mean must not change the stream's mean demand, so
// RateForLoad calibration stays valid for sized workloads.
func TestSizeDemandPreservesOfferedLoad(t *testing.T) {
	cfg := baseConfig()
	cfg.Demand = dist.Deterministic{V: time.Millisecond}
	cfg.ValueSize = dist.ParetoBytes{Lo: 1 << 10, Hi: 1 << 20, Alpha: 1.2}
	cfg.SizeDemand = true
	g, err := NewGenerator(cfg, 21)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	var sum float64
	var n int
	for _, r := range g.Take(20000) {
		for _, op := range r.Ops {
			sum += float64(op.Demand)
			n++
		}
	}
	got := sum / float64(n)
	want := float64(time.Millisecond)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("mean sized demand %v, want ~%v", time.Duration(got), time.Millisecond)
	}
}
