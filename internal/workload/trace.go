package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteTrace serializes requests as JSON lines, one request per line, so
// streams can be archived and replayed bit-exactly across policies.
func WriteTrace(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range reqs {
		if err := enc.Encode(&reqs[i]); err != nil {
			return fmt.Errorf("trace: encode request %d: %w", reqs[i].ID, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadTrace parses a JSON-lines trace back into requests.
func ReadTrace(r io.Reader) ([]Request, error) {
	var out []Request
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: decode line %d: %w", len(out)+1, err)
		}
		out = append(out, req)
	}
}
