package workload

import (
	"testing"
	"time"
)

func TestPresetsAllBuildAndGenerate(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if cfg.RatePerSec != 0 {
			t.Fatalf("%s: rate should be unset", name)
		}
		rate, err := RateForLoad(0.7, 16, 1.0, cfg.Fanout.Mean(), cfg.Demand.Mean())
		if err != nil {
			t.Fatalf("%s: RateForLoad: %v", name, err)
		}
		cfg.RatePerSec = rate
		g, err := NewGenerator(cfg, 1)
		if err != nil {
			t.Fatalf("%s: NewGenerator: %v", name, err)
		}
		reqs := g.Take(200)
		if len(reqs) != 200 {
			t.Fatalf("%s: generated %d requests", name, len(reqs))
		}
		for _, r := range reqs {
			if r.Fanout() < 1 {
				t.Fatalf("%s: empty request", name)
			}
			for _, op := range r.Ops {
				if op.Demand <= 0 {
					t.Fatalf("%s: non-positive demand %v", name, op.Demand)
				}
			}
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset should error")
	}
}

func TestPresetShapesDiffer(t *testing.T) {
	social, _ := Preset("social")
	cache, _ := Preset("cache")
	if social.Fanout.Mean() <= cache.Fanout.Mean() {
		t.Fatal("social multigets should be wider than cache lookups")
	}
	if cache.Demand.Mean() >= time.Millisecond {
		t.Fatal("cache ops should be sub-millisecond")
	}
}
