package workload

import (
	"fmt"
	"sort"
	"time"

	"github.com/daskv/daskv/internal/dist"
)

// Preset returns a named canned workload shape, with RatePerSec unset —
// callers size the rate via RateForLoad. The shapes follow the
// multiget-workload characterizations in the Rein/memcached literature:
//
//	social     wide Zipf multigets over a social graph, bimodal records
//	cache      memcached-style: mostly single-key, tiny fast lookups
//	analytics  constant wide scans with heavy-tailed per-op work
//	uniform    the synthetic baseline used by the E-series experiments
func Preset(name string) (Config, error) {
	switch name {
	case "social":
		fanout, err := dist.NewZipfInt(64, 1.05)
		if err != nil {
			return Config{}, fmt.Errorf("workload: preset social: %w", err)
		}
		return Config{
			Keys:    200_000,
			KeySkew: 0.8,
			Fanout:  fanout,
			Demand: dist.Bimodal{
				Small: 600 * time.Microsecond, Large: 4600 * time.Microsecond, PSmall: 0.9,
			},
		}, nil
	case "cache":
		return Config{
			Keys:    1_000_000,
			KeySkew: 1.0,
			Fanout:  dist.GeometricInt{M: 1.5},
			Demand:  dist.Exponential{M: 300 * time.Microsecond},
		}, nil
	case "analytics":
		return Config{
			Keys:    500_000,
			KeySkew: 0.3,
			Fanout:  dist.ConstInt{N: 16},
			Demand:  dist.BoundedPareto{Lo: 500 * time.Microsecond, Hi: 50 * time.Millisecond, Alpha: 1.4},
		}, nil
	case "uniform":
		fanout, err := dist.NewZipfInt(20, 1.0)
		if err != nil {
			return Config{}, fmt.Errorf("workload: preset uniform: %w", err)
		}
		return Config{
			Keys:    100_000,
			KeySkew: 0.9,
			Fanout:  fanout,
			Demand:  dist.Exponential{M: time.Millisecond},
		}, nil
	default:
		return Config{}, fmt.Errorf("workload: unknown preset %q (want one of %v)", name, PresetNames())
	}
}

// PresetNames lists the available presets.
func PresetNames() []string {
	names := []string{"social", "cache", "analytics", "uniform"}
	sort.Strings(names)
	return names
}
