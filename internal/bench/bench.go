// Package bench is the evaluation harness: one experiment per
// reconstructed table/figure of the paper (see DESIGN.md for the
// mapping). Each experiment runs the simulator (or the live store, for
// E12) across policies and prints the table the paper would plot.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sim"
	"github.com/daskv/daskv/internal/workload"
)

// Params scales experiments: larger Requests tightens confidence at the
// cost of wall time.
type Params struct {
	// Servers is the cluster size (default 16).
	Servers int
	// Requests per simulation run (default 30000).
	Requests int
	// Seeds is how many independent runs are averaged (default 3).
	Seeds int
	// Seed is the base RNG seed (default 1).
	Seed uint64
	// Live is the wall-clock duration of each live-store (E12) run
	// (default 6s).
	Live time.Duration
	// LiveRate, when positive, paces the live clients to this total
	// offered rate (req/s) on a fixed per-client schedule instead of the
	// pure closed loop; latency is still charged from each request's
	// intended slot, so falling behind the schedule shows in the tail.
	LiveRate float64
}

func (p Params) withDefaults() Params {
	if p.Servers <= 0 {
		p.Servers = 16
	}
	if p.Requests <= 0 {
		p.Requests = 30000
	}
	if p.Seeds <= 0 {
		p.Seeds = 3
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Live <= 0 {
		p.Live = 6 * time.Second
	}
	return p
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	// ID is the experiment identifier, e.g. "E2".
	ID string
	// Title names the paper artifact it reconstructs.
	Title string
	// Run executes the experiment and writes its table to w.
	Run func(p Params, w io.Writer) error
}

// All returns every experiment in ID order.
func All() []Experiment {
	exps := []Experiment{
		{ID: "E1", Title: "Default-scenario summary (Table 1)", Run: runE1},
		{ID: "E2", Title: "Mean RCT vs load (Fig: load sweep)", Run: runE2},
		{ID: "E3", Title: "p99 RCT vs load (Fig: tail sweep)", Run: runE3},
		{ID: "E4", Title: "RCT CDF at load 0.8 (Fig: CDF)", Run: runE4},
		{ID: "E5", Title: "Mean RCT vs fan-out (Fig: request width)", Run: runE5},
		{ID: "E6", Title: "Demand distributions (Fig: traffic patterns)", Run: runE6},
		{ID: "E7", Title: "Key-popularity skew (Fig: hot partitions)", Run: runE7},
		{ID: "E8", Title: "Heterogeneous server speeds (Fig: adaptivity)", Run: runE8},
		{ID: "E9", Title: "Time-varying load and speed (Fig: adaptivity over time)", Run: runE9},
		{ID: "E10", Title: "DAS ablation (design choices)", Run: runE10},
		{ID: "E11", Title: "Scheduling overhead (Table: ns/op)", Run: runE11},
		{ID: "E12", Title: "Live-store validation (extension)", Run: runE12},
		{ID: "E13", Title: "Distance to optimal / centralized information", Run: runE13},
		{ID: "E14", Title: "Cluster-size scaling", Run: runE14},
		{ID: "E15", Title: "Workload presets", Run: runE15},
		{ID: "E16", Title: "Simulator validation vs queueing theory", Run: runE16},
		{ID: "E17", Title: "Scheduling vs hedging vs replica selection", Run: runE17},
		{ID: "E18", Title: "Preemption ablation", Run: runE18},
		{ID: "E19", Title: "Chaos resilience: crash/restart under load (extension)", Run: runE19},
		{ID: "E20", Title: "Replication: adaptive replica selection and crash masking (extension)", Run: runE20},
		{ID: "E23", Title: "Heavy-tailed value sizes: size-class worker pools (extension)", Run: runE23},
	}
	sort.Slice(exps, func(i, j int) bool { return idOrder(exps[i].ID) < idOrder(exps[j].ID) })
	return exps
}

func idOrder(id string) int {
	var n int
	_, _ = fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared workload/scenario builders --------------------------------

// defaultFanout is the multiget-width distribution used unless an
// experiment sweeps it: Zipf-shaped widths 1..20 (mean ~5.5), the
// social-graph profile the Rein literature reports.
func defaultFanout() dist.Discrete {
	f, err := dist.NewZipfInt(20, 1.0)
	if err != nil {
		// Parameters are constants; this cannot fail, but stay total.
		return dist.UniformInt{Lo: 1, Hi: 10}
	}
	return f
}

// defaultDemand is the per-op service demand unless swept.
func defaultDemand() dist.Duration { return dist.Exponential{M: time.Millisecond} }

// scenario bundles everything needed to run one policy at one load.
type scenario struct {
	p        Params
	rho      float64
	fanout   dist.Discrete
	demand   dist.Duration
	keySkew  float64
	profile  dist.LoadProfile
	speedFor func(sched.ServerID) sim.SpeedProfile
	series   time.Duration
	// meanSpeed is the cluster-average speed for load calibration.
	meanSpeed float64
}

func defaultScenario(p Params, rho float64) scenario {
	return scenario{
		p:         p,
		rho:       rho,
		fanout:    defaultFanout(),
		demand:    defaultDemand(),
		keySkew:   0.9,
		meanSpeed: 1.0,
	}
}

// policyChoice names a (factory, tagging-mode) pair.
type policyChoice struct {
	name     string
	factory  sched.Factory
	adaptive bool
}

// standardPolicies is the comparison set used by most experiments.
func standardPolicies() []policyChoice {
	return []policyChoice{
		{name: "FCFS", factory: sched.FCFSFactory},
		{name: "SJF", factory: sched.SJFFactory},
		{name: "Rein-SBF", factory: sched.ReinSBFFactory},
		{name: "Rein-ML", factory: sched.ReinMLFactory(2 * time.Millisecond)},
		{name: "DAS", factory: core.Factory(core.DefaultOptions()), adaptive: true},
	}
}

// corePolicies is the smaller set for expensive sweeps.
func corePolicies() []policyChoice {
	return []policyChoice{
		{name: "FCFS", factory: sched.FCFSFactory},
		{name: "Rein-SBF", factory: sched.ReinSBFFactory},
		{name: "DAS", factory: core.Factory(core.DefaultOptions()), adaptive: true},
	}
}

// aggregate is seed-averaged run output.
type aggregate struct {
	mean, p50, p95, p99 time.Duration
	meanQueue           float64
	series              []seriesPoint
	cdf                 []cdfPoint
}

type seriesPoint struct {
	start time.Duration
	mean  time.Duration
}

type cdfPoint struct {
	fraction float64
	value    time.Duration
}

// run executes one policy under a scenario, averaged over seeds.
func (sc scenario) run(pc policyChoice) (aggregate, error) {
	return sc.runWith(pc, false)
}

// runWith executes one policy, optionally with oracle tagging.
func (sc scenario) runWith(pc policyChoice, oracle bool) (aggregate, error) {
	var agg aggregate
	rate, err := workload.RateForLoad(sc.rho, sc.p.Servers, sc.meanSpeed, sc.fanout.Mean(), sc.demand.Mean())
	if err != nil {
		return agg, fmt.Errorf("bench: %w", err)
	}
	// Warm up for 1s, but never for more than a fifth of the run —
	// fast workloads (sub-ms ops at high rate) finish in well under a
	// second of simulated time.
	warmup := time.Second
	if expected := time.Duration(float64(sc.p.Requests) / rate * float64(time.Second)); warmup > expected/5 {
		warmup = expected / 5
	}
	var cdfAccum [][]cdfPoint
	seriesSum := map[time.Duration]struct {
		sum time.Duration
		n   int
	}{}
	for s := 0; s < sc.p.Seeds; s++ {
		cfg := sim.Config{
			Servers:  sc.p.Servers,
			Policy:   pc.factory,
			Adaptive: pc.adaptive,
			Oracle:   oracle,
			SpeedFor: sc.speedFor,
			Workload: workload.Config{
				Keys:       100_000,
				KeySkew:    sc.keySkew,
				Fanout:     sc.fanout,
				Demand:     sc.demand,
				RatePerSec: rate,
				Profile:    sc.profile,
			},
			Requests:     sc.p.Requests,
			Warmup:       warmup,
			Seed:         sc.p.Seed + uint64(s)*1000003,
			SeriesWindow: sc.series,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return agg, fmt.Errorf("bench: %s: %w", pc.name, err)
		}
		agg.mean += res.RCT.Mean() / time.Duration(sc.p.Seeds)
		agg.p50 += res.RCT.P50() / time.Duration(sc.p.Seeds)
		agg.p95 += res.RCT.P95() / time.Duration(sc.p.Seeds)
		agg.p99 += res.RCT.P99() / time.Duration(sc.p.Seeds)
		agg.meanQueue += res.MeanQueueLen / float64(sc.p.Seeds)
		if sc.series > 0 && res.Series != nil {
			for _, pt := range res.Series.Points() {
				e := seriesSum[pt.Start]
				e.sum += pt.Mean
				e.n++
				seriesSum[pt.Start] = e
			}
		}
		if s == 0 {
			cdfAccum = append(cdfAccum, toCDF(res.RCT.CDF(21)))
		}
	}
	if len(cdfAccum) > 0 {
		agg.cdf = cdfAccum[0]
	}
	if sc.series > 0 {
		starts := make([]time.Duration, 0, len(seriesSum))
		for st := range seriesSum {
			starts = append(starts, st)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		for _, st := range starts {
			e := seriesSum[st]
			agg.series = append(agg.series, seriesPoint{start: st, mean: e.sum / time.Duration(e.n)})
		}
	}
	return agg, nil
}

func toCDF(points []metrics.CDFPoint) []cdfPoint {
	out := make([]cdfPoint, len(points))
	for i, p := range points {
		out[i] = cdfPoint{fraction: p.Fraction, value: p.Value}
	}
	return out
}

// --- formatting helpers ------------------------------------------------

func header(w io.Writer, id, title, note string) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", id, title)
	if note != "" {
		fmt.Fprintf(w, "%s\n", note)
	}
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// us renders a duration in microseconds, the natural unit for send lag.
func us(d time.Duration) string {
	return fmt.Sprintf("%.0fus", float64(d)/float64(time.Microsecond))
}

// gain formats the relative reduction of b versus a ("x% better").
func gain(base, v time.Duration) string {
	if base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (1-float64(v)/float64(base))*100)
}
