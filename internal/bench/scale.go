package bench

import (
	"fmt"
	"io"
	"time"
)

// runE14 sweeps cluster size at constant per-server load, showing that
// DAS's gains persist at scale with no central coordination point — the
// deployability argument against centralized schedulers.
func runE14(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E14", "Mean RCT (ms) vs cluster size at load 0.7",
		"per-server load held constant; requests scale with the cluster.\n"+
			"key skew fixed at 0.6: with a fixed keyspace, hotter skews overload the\n"+
			"top key's server as the aggregate op rate grows (E7 covers skew itself)")
	policies := corePolicies()
	fmt.Fprintf(w, "%-9s", "servers")
	for _, pc := range policies {
		fmt.Fprintf(w, " %10s", pc.name)
	}
	fmt.Fprintf(w, " %12s\n", "DAS/FCFS")
	baseRequests := p.Requests
	for _, n := range []int{8, 16, 32, 64} {
		sp := p
		sp.Servers = n
		// Hold simulated duration roughly constant across sizes.
		sp.Requests = baseRequests * n / 16
		sc := defaultScenario(sp, 0.7)
		sc.keySkew = 0.6
		vals := map[string]time.Duration{}
		for _, pc := range policies {
			agg, err := sc.run(pc)
			if err != nil {
				return err
			}
			vals[pc.name] = agg.mean
		}
		fmt.Fprintf(w, "%-9d", n)
		for _, pc := range policies {
			fmt.Fprintf(w, " %10s", ms(vals[pc.name]))
		}
		fmt.Fprintf(w, " %12s\n", gain(vals["FCFS"], vals["DAS"]))
	}
	return nil
}

// runE15 compares workload presets at load 0.7: the same policies over
// the canned social / cache / analytics / uniform shapes.
func runE15(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E15", "Workload presets at load 0.7",
		"canned shapes from the multiget literature (internal/workload presets)")
	policies := corePolicies()
	fmt.Fprintf(w, "%-11s", "preset")
	for _, pc := range policies {
		fmt.Fprintf(w, " %22s", pc.name+" mean/p99")
	}
	fmt.Fprintln(w)
	for _, name := range presetNamesForBench() {
		sc, err := presetScenario(p, name, 0.7)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-11s", name)
		for _, pc := range policies {
			agg, err := sc.run(pc)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %22s", ms(agg.mean)+"/"+ms(agg.p99))
		}
		fmt.Fprintln(w)
	}
	return nil
}
