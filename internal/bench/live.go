package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/kv"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wire"
)

// liveCost derives a per-op service demand from the key length so client
// and server agree on demands without a side channel: keys are padded by
// the workload driver to encode 1..6ms.
func liveCost(_ wire.OpType, keyLen, _ int) time.Duration {
	demand := time.Duration(keyLen%11+2) * 500 * time.Microsecond
	return demand
}

// runE12 validates the scheduler outside simulation: a loopback cluster
// with CPU-cost-modeled operations, closed-loop multiget clients, FCFS
// versus DAS.
func runE12(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E12", "Live-store validation (beyond the paper)",
		fmt.Sprintf("4 loopback servers, 1 worker each, 24 closed-loop multiget clients, %v per policy", p.Live))
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %12s\n", "policy", "requests", "mean(ms)", "p50(ms)", "p99(ms)", "sendlag-p99")
	for _, pc := range []struct {
		name     string
		factory  sched.Factory
		adaptive bool
	}{
		{name: "FCFS", factory: sched.FCFSFactory},
		{name: "Rein-SBF", factory: sched.ReinSBFFactory},
		{name: "DAS", factory: core.Factory(core.LiveOptions()), adaptive: true},
	} {
		r, err := runLiveOnce(pc.factory, pc.adaptive, p)
		if err != nil {
			return fmt.Errorf("bench: live %s: %w", pc.name, err)
		}
		fmt.Fprintf(w, "%-10s %10d %10s %10s %10s %12s\n",
			pc.name, r.count, ms(r.rct.Mean()), ms(r.rct.P50()), ms(r.rct.P99()), us(r.sendLag.P99()))
	}
	return nil
}

// LiveResult is one policy's outcome from the live loopback benchmark,
// shaped for machine consumption (dasbench -live-json).
type LiveResult struct {
	Policy   string  `json:"policy"`
	Requests uint64  `json:"requests"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// Send lag is actual-send minus intended-start per request: in the
	// closed loop the intended start is the instant the client became
	// free (so lag is pure harness overhead); in a paced run it is the
	// request's schedule slot (so lag is how far the loop fell behind).
	// Reporting it makes these numbers comparable with the open-loop
	// frontier in BENCH_frontier.json, where the same gap is the
	// lateness readout.
	SendLagMeanUs float64 `json:"send_lag_mean_us"`
	SendLagP99Us  float64 `json:"send_lag_p99_us"`
	SendLagMaxUs  float64 `json:"send_lag_max_us"`
}

func liveResult(name string, r liveRun) LiveResult {
	return LiveResult{
		Policy:        name,
		Requests:      r.count,
		MeanMs:        float64(r.rct.Mean()) / float64(time.Millisecond),
		P50Ms:         float64(r.rct.P50()) / float64(time.Millisecond),
		P99Ms:         float64(r.rct.P99()) / float64(time.Millisecond),
		SendLagMeanUs: float64(r.sendLag.Mean()) / float64(time.Microsecond),
		SendLagP99Us:  float64(r.sendLag.P99()) / float64(time.Microsecond),
		SendLagMaxUs:  float64(r.sendLag.Max()) / float64(time.Microsecond),
	}
}

// RunLiveJSON runs the E12 live-store benchmark for each policy and
// returns structured results instead of a rendered table.
func RunLiveJSON(p Params) ([]LiveResult, error) {
	p = p.withDefaults()
	out := make([]LiveResult, 0, 3)
	for _, pc := range []struct {
		name     string
		factory  sched.Factory
		adaptive bool
	}{
		{name: "FCFS", factory: sched.FCFSFactory},
		{name: "Rein-SBF", factory: sched.ReinSBFFactory},
		{name: "DAS", factory: core.Factory(core.LiveOptions()), adaptive: true},
	} {
		r, err := runLiveOnce(pc.factory, pc.adaptive, p)
		if err != nil {
			return nil, fmt.Errorf("bench: live %s: %w", pc.name, err)
		}
		out = append(out, liveResult(pc.name, r))
	}
	return out, nil
}

// RunLiveGate is the CI regression gate for the live tail: it runs
// FCFS and DAS (only) on the E21/E22 loopback setup and fails when DAS
// p99 exceeds maxRatio times FCFS p99. One full retry absorbs CI-host
// noise — the gate exists to catch order-of-magnitude inversions like
// E21's 8.5x, not 5% jitter, so a failing first attempt re-measures
// both policies before condemning the build.
func RunLiveGate(p Params, w io.Writer, maxRatio float64, retries int) error {
	p = p.withDefaults()
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			fmt.Fprintf(w, "live-gate: retrying (%v)\n", lastErr)
		}
		fcfs, err := runLiveOnce(sched.FCFSFactory, false, p)
		if err != nil {
			return fmt.Errorf("bench: live-gate FCFS: %w", err)
		}
		das, err := runLiveOnce(core.Factory(core.LiveOptions()), true, p)
		if err != nil {
			return fmt.Errorf("bench: live-gate DAS: %w", err)
		}
		ratio := float64(das.rct.P99()) / float64(fcfs.rct.P99())
		fmt.Fprintf(w, "live-gate: FCFS p99 %s (%d reqs, sendlag p99 %s), DAS p99 %s (%d reqs, sendlag p99 %s), ratio %.3f (limit %.2f)\n",
			ms(fcfs.rct.P99()), fcfs.count, us(fcfs.sendLag.P99()),
			ms(das.rct.P99()), das.count, us(das.sendLag.P99()), ratio, maxRatio)
		if ratio <= maxRatio {
			return nil
		}
		lastErr = fmt.Errorf("bench: live DAS p99 %s exceeds %.2fx FCFS p99 %s",
			ms(das.rct.P99()), maxRatio, ms(fcfs.rct.P99()))
	}
	return lastErr
}

// liveRun is one live run's measurements: rct is charged from each
// request's intended start (the instant the client became free, or its
// pace slot), sendLag is actual-send minus intended start — the
// closed-loop bias, recorded instead of silently absorbed.
type liveRun struct {
	rct     *metrics.Summary
	sendLag *metrics.Summary
	count   uint64
}

// runLiveOnce drives one policy on a fresh loopback cluster with the
// default single-worker servers.
func runLiveOnce(factory sched.Factory, adaptive bool, p Params) (liveRun, error) {
	return runLiveConfigured(factory, adaptive, 0, 0, p.Live, p.LiveRate)
}

// runLiveConfigured is runLiveOnce with the server shape exposed:
// workers per server (0 means the server default) and the size-class
// pool split fraction (0 disables the split). The uniform-pools check
// uses it to prove the split costs nothing when every value is small.
// rate > 0 paces the clients to that total offered rate on fixed
// per-client schedules; 0 is the pure closed loop.
func runLiveConfigured(factory sched.Factory, adaptive bool, workers int, poolSplit float64, runFor time.Duration, rate float64) (liveRun, error) {
	const (
		servers   = 4
		clients   = 24
		keyspace  = 2000
		maxFanout = 6
	)
	srvs := make([]*kv.Server, 0, servers)
	addrs := make(map[sched.ServerID]string, servers)
	defer func() {
		for _, s := range srvs {
			_ = s.Close()
		}
	}()
	for i := 0; i < servers; i++ {
		srv, err := kv.NewServer(kv.ServerConfig{
			ID:        sched.ServerID(i),
			Addr:      "127.0.0.1:0",
			Policy:    factory,
			Workers:   workers,
			Cost:      liveCost,
			PoolSplit: poolSplit,
		})
		if err != nil {
			return liveRun{}, err
		}
		srvs = append(srvs, srv)
		addrs[srv.ID()] = srv.Addr()
	}
	client, err := kv.NewClient(kv.ClientConfig{
		Servers:  addrs,
		Adaptive: adaptive,
		Demand:   kv.DemandModel(liveCost),
	})
	if err != nil {
		return liveRun{}, err
	}
	defer func() { _ = client.Close() }()

	// Preload the keyspace. Key padding encodes the op demand.
	ctx := context.Background()
	keys := make([]string, keyspace)
	rng := dist.NewRand(7)
	for i := range keys {
		pad := rng.IntN(11)
		keys[i] = fmt.Sprintf("key-%04d-%s", i, "xxxxxxxxxxx"[:pad])
		if err := client.Put(ctx, keys[i], []byte("value")); err != nil {
			return liveRun{}, err
		}
	}

	// pace is each client's schedule interval when the run is rate-paced
	// (clients fixed slots apart); zero keeps the pure closed loop.
	var pace time.Duration
	if rate > 0 {
		pace = time.Duration(float64(clients) / rate * float64(time.Second))
	}

	run := liveRun{rct: metrics.NewSummary(0), sendLag: metrics.NewSummary(0)}
	var mu sync.Mutex
	begin := time.Now()
	deadline := begin.Add(runFor)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := dist.NewRand(uint64(c) + 100)
			// slot is this client's next scheduled send in paced mode; the
			// grid never slips, so falling behind surfaces as send lag.
			slot := begin.Add(pace * time.Duration(c) / time.Duration(clients))
			free := time.Now()
			for time.Now().Before(deadline) {
				// intended is when this request should have been sent: the
				// instant the client became free (closed loop), or its
				// schedule slot (paced). RCT is charged from it, and the
				// gap to the actual send is recorded rather than hidden.
				intended := free
				if pace > 0 {
					intended = slot
					slot = slot.Add(pace)
					if wait := time.Until(intended); wait > 0 {
						time.Sleep(wait)
					}
				}
				k := 1 + crng.IntN(maxFanout)
				batch := make([]string, k)
				for i := range batch {
					batch[i] = keys[crng.IntN(keyspace)]
				}
				sendAt := time.Now()
				if _, err := client.MGet(ctx, batch); err != nil {
					errCh <- err
					return
				}
				done := time.Now()
				rct := done.Sub(intended)
				lag := sendAt.Sub(intended)
				if lag < 0 {
					lag = 0
				}
				mu.Lock()
				run.rct.Observe(rct)
				run.sendLag.Observe(lag)
				run.count++
				mu.Unlock()
				free = done
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			return liveRun{}, err
		}
	}
	return run, nil
}
