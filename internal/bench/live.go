package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/kv"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/wire"
)

// liveCost derives a per-op service demand from the key length so client
// and server agree on demands without a side channel: keys are padded by
// the workload driver to encode 1..6ms.
func liveCost(_ wire.OpType, keyLen, _ int) time.Duration {
	demand := time.Duration(keyLen%11+2) * 500 * time.Microsecond
	return demand
}

// runE12 validates the scheduler outside simulation: a loopback cluster
// with CPU-cost-modeled operations, closed-loop multiget clients, FCFS
// versus DAS.
func runE12(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E12", "Live-store validation (beyond the paper)",
		fmt.Sprintf("4 loopback servers, 1 worker each, 24 closed-loop multiget clients, %v per policy", p.Live))
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s\n", "policy", "requests", "mean(ms)", "p50(ms)", "p99(ms)")
	for _, pc := range []struct {
		name     string
		factory  sched.Factory
		adaptive bool
	}{
		{name: "FCFS", factory: sched.FCFSFactory},
		{name: "Rein-SBF", factory: sched.ReinSBFFactory},
		{name: "DAS", factory: core.Factory(core.LiveOptions()), adaptive: true},
	} {
		sum, n, err := runLiveOnce(pc.factory, pc.adaptive, p.Live)
		if err != nil {
			return fmt.Errorf("bench: live %s: %w", pc.name, err)
		}
		fmt.Fprintf(w, "%-10s %10d %10s %10s %10s\n",
			pc.name, n, ms(sum.Mean()), ms(sum.P50()), ms(sum.P99()))
	}
	return nil
}

// LiveResult is one policy's outcome from the live loopback benchmark,
// shaped for machine consumption (dasbench -live-json).
type LiveResult struct {
	Policy   string  `json:"policy"`
	Requests uint64  `json:"requests"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// RunLiveJSON runs the E12 live-store benchmark for each policy and
// returns structured results instead of a rendered table.
func RunLiveJSON(p Params) ([]LiveResult, error) {
	p = p.withDefaults()
	out := make([]LiveResult, 0, 3)
	for _, pc := range []struct {
		name     string
		factory  sched.Factory
		adaptive bool
	}{
		{name: "FCFS", factory: sched.FCFSFactory},
		{name: "Rein-SBF", factory: sched.ReinSBFFactory},
		{name: "DAS", factory: core.Factory(core.LiveOptions()), adaptive: true},
	} {
		sum, n, err := runLiveOnce(pc.factory, pc.adaptive, p.Live)
		if err != nil {
			return nil, fmt.Errorf("bench: live %s: %w", pc.name, err)
		}
		out = append(out, LiveResult{
			Policy:   pc.name,
			Requests: n,
			MeanMs:   float64(sum.Mean()) / float64(time.Millisecond),
			P50Ms:    float64(sum.P50()) / float64(time.Millisecond),
			P99Ms:    float64(sum.P99()) / float64(time.Millisecond),
		})
	}
	return out, nil
}

// RunLiveGate is the CI regression gate for the live tail: it runs
// FCFS and DAS (only) on the E21/E22 loopback setup and fails when DAS
// p99 exceeds maxRatio times FCFS p99. One full retry absorbs CI-host
// noise — the gate exists to catch order-of-magnitude inversions like
// E21's 8.5x, not 5% jitter, so a failing first attempt re-measures
// both policies before condemning the build.
func RunLiveGate(p Params, w io.Writer, maxRatio float64, retries int) error {
	p = p.withDefaults()
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			fmt.Fprintf(w, "live-gate: retrying (%v)\n", lastErr)
		}
		fcfs, nf, err := runLiveOnce(sched.FCFSFactory, false, p.Live)
		if err != nil {
			return fmt.Errorf("bench: live-gate FCFS: %w", err)
		}
		das, nd, err := runLiveOnce(core.Factory(core.LiveOptions()), true, p.Live)
		if err != nil {
			return fmt.Errorf("bench: live-gate DAS: %w", err)
		}
		ratio := float64(das.P99()) / float64(fcfs.P99())
		fmt.Fprintf(w, "live-gate: FCFS p99 %s (%d reqs), DAS p99 %s (%d reqs), ratio %.3f (limit %.2f)\n",
			ms(fcfs.P99()), nf, ms(das.P99()), nd, ratio, maxRatio)
		if ratio <= maxRatio {
			return nil
		}
		lastErr = fmt.Errorf("bench: live DAS p99 %s exceeds %.2fx FCFS p99 %s",
			ms(das.P99()), maxRatio, ms(fcfs.P99()))
	}
	return lastErr
}

// runLiveOnce drives one policy on a fresh loopback cluster with the
// default single-worker servers.
func runLiveOnce(factory sched.Factory, adaptive bool, runFor time.Duration) (*metrics.Summary, uint64, error) {
	return runLiveConfigured(factory, adaptive, 0, 0, runFor)
}

// runLiveConfigured is runLiveOnce with the server shape exposed:
// workers per server (0 means the server default) and the size-class
// pool split fraction (0 disables the split). The uniform-pools check
// uses it to prove the split costs nothing when every value is small.
func runLiveConfigured(factory sched.Factory, adaptive bool, workers int, poolSplit float64, runFor time.Duration) (*metrics.Summary, uint64, error) {
	const (
		servers   = 4
		clients   = 24
		keyspace  = 2000
		maxFanout = 6
	)
	srvs := make([]*kv.Server, 0, servers)
	addrs := make(map[sched.ServerID]string, servers)
	defer func() {
		for _, s := range srvs {
			_ = s.Close()
		}
	}()
	for i := 0; i < servers; i++ {
		srv, err := kv.NewServer(kv.ServerConfig{
			ID:        sched.ServerID(i),
			Addr:      "127.0.0.1:0",
			Policy:    factory,
			Workers:   workers,
			Cost:      liveCost,
			PoolSplit: poolSplit,
		})
		if err != nil {
			return nil, 0, err
		}
		srvs = append(srvs, srv)
		addrs[srv.ID()] = srv.Addr()
	}
	client, err := kv.NewClient(kv.ClientConfig{
		Servers:  addrs,
		Adaptive: adaptive,
		Demand:   kv.DemandModel(liveCost),
	})
	if err != nil {
		return nil, 0, err
	}
	defer func() { _ = client.Close() }()

	// Preload the keyspace. Key padding encodes the op demand.
	ctx := context.Background()
	keys := make([]string, keyspace)
	rng := dist.NewRand(7)
	for i := range keys {
		pad := rng.IntN(11)
		keys[i] = fmt.Sprintf("key-%04d-%s", i, "xxxxxxxxxxx"[:pad])
		if err := client.Put(ctx, keys[i], []byte("value")); err != nil {
			return nil, 0, err
		}
	}

	sum := metrics.NewSummary(0)
	var mu sync.Mutex
	var count uint64
	deadline := time.Now().Add(runFor)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := dist.NewRand(uint64(c) + 100)
			for time.Now().Before(deadline) {
				k := 1 + crng.IntN(maxFanout)
				batch := make([]string, k)
				for i := range batch {
					batch[i] = keys[crng.IntN(keyspace)]
				}
				start := time.Now()
				if _, err := client.MGet(ctx, batch); err != nil {
					errCh <- err
					return
				}
				rct := time.Since(start)
				mu.Lock()
				sum.Observe(rct)
				count++
				mu.Unlock()
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			return nil, 0, err
		}
	}
	return sum, count, nil
}
