package bench

import (
	"fmt"

	"github.com/daskv/daskv/internal/workload"
)

// presetNamesForBench returns the preset sweep order.
func presetNamesForBench() []string { return workload.PresetNames() }

// presetScenario adapts a workload preset into a bench scenario.
func presetScenario(p Params, name string, rho float64) (scenario, error) {
	cfg, err := workload.Preset(name)
	if err != nil {
		return scenario{}, fmt.Errorf("bench: %w", err)
	}
	sc := defaultScenario(p, rho)
	sc.fanout = cfg.Fanout
	sc.demand = cfg.Demand
	sc.keySkew = cfg.KeySkew
	return sc, nil
}
