package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/kv"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sim"
	"github.com/daskv/daskv/internal/wire"
	"github.com/daskv/daskv/internal/workload"
)

// runE20 evaluates the replication subsystem on both rigs.
//
// Part A (simulator) sweeps replication factor x selector policy x load
// under heterogeneous server speeds: with slow servers in the cluster,
// oblivious routing (primary, random, round-robin) keeps paying for
// them, while the adaptive selector's backlog/speed view routes around
// them and the least-outstanding baseline lands in between.
//
// Part B (live loopback cluster) measures the availability side: one of
// three servers crashes mid-run and stays down. With R=1 every multiget
// touching its shard degrades to a PartialError; with R=3 reads fail
// over to sibling holders and complete fully.
func runE20(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E20", "Replication: adaptive replica selection and crash masking",
		"part A: sim sweep of factor x selector x load, 25% of servers at 0.25x speed\n"+
			"part B: live 3-server cluster, one server killed mid-run, R=1 vs R=3")
	if err := runE20Selection(p, w); err != nil {
		return err
	}
	return runE20CrashMasking(p, w)
}

// runE20Selection is part A: the simulated selector sweep.
func runE20Selection(p Params, w io.Writer) error {
	slow := p.Servers / 4
	speedFor := func(id sched.ServerID) sim.SpeedProfile {
		if int(id) < slow {
			return sim.ConstantSpeed{V: 0.25}
		}
		return sim.ConstantSpeed{V: 1}
	}
	// Load is calibrated against the degraded cluster capacity so the
	// slow quarter does not push the oblivious configurations past
	// saturation.
	meanSpeed := (float64(slow)*0.25 + float64(p.Servers-slow)) / float64(p.Servers)
	fanout := defaultFanout()
	demand := defaultDemand()
	type variant struct {
		name     string
		replicas int
		sel      sim.ReplicaPolicy
	}
	variants := []variant{
		{name: "R=1 primary", replicas: 1, sel: sim.PrimaryReplica},
		{name: "R=3 random", replicas: 3, sel: sim.RandomReplica},
		{name: "R=3 round-robin", replicas: 3, sel: sim.RoundRobinReplica},
		{name: "R=3 least-out", replicas: 3, sel: sim.LeastOutstandingReplica},
		{name: "R=2 adaptive", replicas: 2, sel: sim.FastestReplica},
		{name: "R=3 adaptive", replicas: 3, sel: sim.FastestReplica},
	}
	for _, rho := range []float64{0.3, 0.55} {
		rate, err := workload.RateForLoad(rho, p.Servers, meanSpeed, fanout.Mean(), demand.Mean())
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		fmt.Fprintf(w, "\nload %.2f (DAS scheduling on every server)\n", rho)
		fmt.Fprintf(w, "%-16s %12s %12s\n", "variant", "mean(ms)", "p99(ms)")
		for _, v := range variants {
			var mean, p99 time.Duration
			for s := 0; s < p.Seeds; s++ {
				res, err := sim.Run(sim.Config{
					Servers:       p.Servers,
					Policy:        core.Factory(core.DefaultOptions()),
					Adaptive:      true,
					SpeedFor:      speedFor,
					Replicas:      v.replicas,
					ReplicaSelect: v.sel,
					Workload: workload.Config{
						Keys: 100_000, KeySkew: 0.6,
						Fanout: fanout, Demand: demand, RatePerSec: rate,
					},
					Requests: p.Requests,
					Warmup:   time.Second,
					Seed:     p.Seed + uint64(s)*1000003,
				})
				if err != nil {
					return fmt.Errorf("bench: %s: %w", v.name, err)
				}
				mean += res.RCT.Mean() / time.Duration(p.Seeds)
				p99 += res.RCT.P99() / time.Duration(p.Seeds)
			}
			fmt.Fprintf(w, "%-16s %12s %12s\n", v.name, ms(mean), ms(p99))
		}
	}
	fmt.Fprintln(w, "\nthe adaptive selector routes around the slow quarter that oblivious")
	fmt.Fprintln(w, "policies keep hitting; least-outstanding recovers part of the gap without")
	fmt.Fprintln(w, "feedback, and going R=2 -> R=3 widens the set of fast escapes.")
	return nil
}

// runE20CrashMasking is part B: replication as crash masking, live.
func runE20CrashMasking(p Params, w io.Writer) error {
	runFor := p.Live / 2
	if runFor < 2*time.Second {
		runFor = 2 * time.Second
	}
	fmt.Fprintf(w, "\ncrash masking (live, 3 servers, server 0 killed at t/3, %v per row)\n", runFor)
	fmt.Fprintf(w, "%-18s %9s %9s %9s %8s\n", "config", "requests", "ok", "degraded", "errors")
	for _, cfg := range []struct {
		name     string
		replicas int
	}{
		{name: "R=1", replicas: 1},
		{name: "R=3 adaptive", replicas: 3},
	} {
		r, err := runCrashMaskingOnce(cfg.replicas, runFor)
		if err != nil {
			return fmt.Errorf("bench: crash masking %s: %w", cfg.name, err)
		}
		fmt.Fprintf(w, "%-18s %9d %9d %9d %8d\n",
			cfg.name, r.ok+r.degraded+r.failed, r.ok, r.degraded, r.failed)
	}
	fmt.Fprintln(w, "with R=1 the dead server's shard degrades every multiget touching it;")
	fmt.Fprintln(w, "with R=3 reads fail over to sibling holders and complete fully.")
	return nil
}

// runCrashMaskingOnce drives one replication factor through a
// kill-without-restart script on a live loopback cluster.
func runCrashMaskingOnce(replicas int, runFor time.Duration) (*chaosResult, error) {
	const (
		servers   = 3
		clients   = 8
		keyspace  = 400
		maxFanout = 6
	)
	// A flat modest cost keeps the survivors clear of the request
	// deadline after the crash removes a third of the capacity, so the
	// table isolates crash masking from deadline shedding.
	flatCost := func(wire.OpType, int, int) time.Duration { return time.Millisecond }
	srvs := make([]*kv.Server, servers)
	addrs := make(map[sched.ServerID]string, servers)
	defer func() {
		for _, s := range srvs {
			if s != nil {
				_ = s.Close()
			}
		}
	}()
	for i := 0; i < servers; i++ {
		srv, err := kv.NewServer(kv.ServerConfig{
			ID:          sched.ServerID(i),
			Addr:        "127.0.0.1:0",
			Policy:      core.Factory(core.DefaultOptions()),
			Cost:        flatCost,
			Replication: replicas,
		})
		if err != nil {
			return nil, err
		}
		srvs[i] = srv
		addrs[srv.ID()] = srv.Addr()
	}
	client, err := kv.NewClient(kv.ClientConfig{
		Servers:  addrs,
		Adaptive: true,
		Demand:   kv.DemandModel(flatCost),
		Replicas: replicas,
		ReadFrom: kv.FastestRead,
		// A generous budget keeps ambient scheduling stalls out of the
		// degraded column: R=1 degradation comes from the dead shard
		// being unreachable, which no deadline length repairs.
		RequestTimeout:   time.Second,
		ReadRetries:      2,
		RetryBackoff:     5 * time.Millisecond,
		ReconnectBackoff: 100 * time.Millisecond,
		Seed:             13,
	})
	if err != nil {
		return nil, err
	}
	defer func() { _ = client.Close() }()

	ctx := context.Background()
	keys := make([]string, keyspace)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
		if err := client.Put(ctx, keys[i], []byte("value")); err != nil {
			return nil, err
		}
	}

	res := &chaosResult{sum: metrics.NewSummary(0)}
	var mu sync.Mutex
	deadline := time.Now().Add(runFor)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := dist.NewRand(uint64(c) + 500)
			for time.Now().Before(deadline) {
				k := 1 + crng.IntN(maxFanout)
				batch := make([]string, k)
				for i := range batch {
					batch[i] = keys[crng.IntN(keyspace)]
				}
				start := time.Now()
				_, err := client.MGet(ctx, batch)
				rct := time.Since(start)
				var perr *kv.PartialError
				mu.Lock()
				switch {
				case err == nil:
					res.ok++
				case errors.As(err, &perr):
					res.degraded++
				default:
					res.failed++
				}
				res.sum.Observe(rct)
				if rct > res.max {
					res.max = rct
				}
				mu.Unlock()
			}
		}()
	}

	// Kill one server a third in; it stays dead for the rest of the run.
	time.Sleep(runFor / 3)
	_ = srvs[0].Close()
	srvs[0] = nil
	wg.Wait()
	return res, nil
}
