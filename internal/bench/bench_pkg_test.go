package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tiny keeps unit runs fast; the real tables use defaults via dasbench.
func tiny() Params { return Params{Servers: 8, Requests: 1500, Seeds: 1, Seed: 1} }

func TestAllExperimentsRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 21 {
		t.Fatalf("len(All) = %d, want 21", len(exps))
	}
	for i, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
		if i > 0 && idOrder(exps[i-1].ID) >= idOrder(e.ID) {
			t.Fatalf("experiments out of order at %s", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E2"); !ok {
		t.Fatal("E2 should exist")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

func TestRunE1ProducesTable(t *testing.T) {
	var buf bytes.Buffer
	if err := runE1(tiny(), &buf); err != nil {
		t.Fatalf("runE1: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"FCFS", "Rein-SBF", "DAS", "mean", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunE4CDFRows(t *testing.T) {
	var buf bytes.Buffer
	if err := runE4(tiny(), &buf); err != nil {
		t.Fatalf("runE4: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 20 {
		t.Fatalf("CDF table too short (%d lines):\n%s", len(lines), buf.String())
	}
}

func TestRunE10Ablation(t *testing.T) {
	var buf bytes.Buffer
	if err := runE10(tiny(), &buf); err != nil {
		t.Fatalf("runE10: %v", err)
	}
	for _, want := range []string{"no-slack", "no-feedback", "maxdelay1s"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("ablation missing variant %q", want)
		}
	}
}

func TestRunE11Overhead(t *testing.T) {
	var buf bytes.Buffer
	if err := runE11(Params{}, &buf); err != nil {
		t.Fatalf("runE11: %v", err)
	}
	if !strings.Contains(buf.String(), "depth 4096") {
		t.Fatalf("overhead table missing depth column:\n%s", buf.String())
	}
}

func TestMeasurePolicyLeavesQueueEmpty(t *testing.T) {
	// Regression guard: measurement must not leak queue state.
	for _, pc := range standardPolicies() {
		q := pc.factory(1)
		_ = measurePolicyNsPerOp(pc.factory, 64)
		if q.Len() != 0 {
			t.Fatalf("%s: fresh queue affected", pc.name)
		}
	}
}

func TestGainFormatting(t *testing.T) {
	if got := gain(100*time.Millisecond, 50*time.Millisecond); got != "+50.0%" {
		t.Fatalf("gain = %q, want +50.0%%", got)
	}
	if got := gain(0, time.Second); got != "-" {
		t.Fatalf("gain with zero base = %q, want -", got)
	}
}

func TestDefaultFanoutMean(t *testing.T) {
	f := defaultFanout()
	if m := f.Mean(); m < 3 || m > 9 {
		t.Fatalf("default fanout mean = %v, want moderate multiget width", m)
	}
}

func TestRunLiveOnceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster smoke test skipped in -short")
	}
	r, err := runLiveOnce(corePolicies()[2].factory, true, Params{Live: 1500 * time.Millisecond})
	if err != nil {
		t.Fatalf("runLiveOnce: %v", err)
	}
	if r.count == 0 || r.rct.Count() == 0 {
		t.Fatal("live run completed no requests")
	}
	if r.sendLag.Count() != r.rct.Count() {
		t.Fatalf("send lag recorded %d samples, rct %d", r.sendLag.Count(), r.rct.Count())
	}
	// Closed loop with no pacing: the gap between becoming free and
	// sending is harness overhead only, far below the ~ms op demands.
	if r.sendLag.P50() > time.Millisecond {
		t.Fatalf("closed-loop send lag p50 %v, want harness-overhead scale", r.sendLag.P50())
	}
}

func TestRunLivePacedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster smoke test skipped in -short")
	}
	// Pace well below capacity: the schedule must be kept (tiny lag) and
	// the request count must track the offered rate, not the closed-loop
	// maximum.
	r, err := runLiveOnce(corePolicies()[0].factory, false, Params{Live: 1500 * time.Millisecond, LiveRate: 200})
	if err != nil {
		t.Fatalf("runLiveOnce paced: %v", err)
	}
	if r.count == 0 {
		t.Fatal("paced run completed no requests")
	}
	if r.count > 600 {
		t.Fatalf("paced run sent %d requests in 1.5s at 200/s offered — pacing not applied", r.count)
	}
}
