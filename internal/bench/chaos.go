package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/kv"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/sched"
)

// runE19 measures resilience rather than scheduling quality: a loopback
// cluster loses one server mid-run and gets it back (restarted from
// snapshot) two thirds in. Clients run with per-request deadlines and
// read retries; the table reports how much traffic completed cleanly,
// how much degraded to partial results, and whether the deadline
// ceiling held through the outage.
func runE19(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E19", "Chaos resilience: crash and restart under load (beyond the paper)",
		fmt.Sprintf("3 loopback servers, server 0 killed at t/3 and restarted at 2t/3, %v per policy", p.Live))
	fmt.Fprintf(w, "%-10s %9s %9s %9s %8s %9s %9s %9s\n",
		"policy", "requests", "ok", "degraded", "errors", "mean(ms)", "p99(ms)", "max(ms)")
	for _, pc := range []struct {
		name     string
		factory  sched.Factory
		adaptive bool
	}{
		{name: "FCFS", factory: sched.FCFSFactory},
		{name: "DAS", factory: core.Factory(core.DefaultOptions()), adaptive: true},
	} {
		r, err := runChaosOnce(pc.factory, pc.adaptive, p.Live)
		if err != nil {
			return fmt.Errorf("bench: chaos %s: %w", pc.name, err)
		}
		fmt.Fprintf(w, "%-10s %9d %9d %9d %8d %9s %9s %9s\n",
			pc.name, r.ok+r.degraded+r.failed, r.ok, r.degraded, r.failed,
			ms(r.sum.Mean()), ms(r.sum.P99()), ms(r.max))
	}
	return nil
}

// chaosResult aggregates one chaos run.
type chaosResult struct {
	sum      *metrics.Summary
	max      time.Duration
	ok       uint64
	degraded uint64
	failed   uint64
}

// chaosDeadline is the per-request budget clients run with; the max(ms)
// column shows whether any call overran it (plus retry/backoff slop).
const chaosDeadline = 250 * time.Millisecond

// runChaosOnce drives one policy through the kill/restart script.
func runChaosOnce(factory sched.Factory, adaptive bool, runFor time.Duration) (*chaosResult, error) {
	const (
		servers   = 3
		clients   = 12
		keyspace  = 600
		maxFanout = 6
	)
	dir, err := os.MkdirTemp("", "daskv-chaos-")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	mkServer := func(i int, addr string) (*kv.Server, error) {
		return kv.NewServer(kv.ServerConfig{
			ID:       sched.ServerID(i),
			Addr:     addr,
			Policy:   factory,
			Cost:     liveCost,
			DataPath: fmt.Sprintf("%s/server%d.snap", dir, i),
		})
	}
	srvs := make([]*kv.Server, servers)
	addrs := make(map[sched.ServerID]string, servers)
	defer func() {
		for _, s := range srvs {
			if s != nil {
				_ = s.Close()
			}
		}
	}()
	for i := 0; i < servers; i++ {
		srv, err := mkServer(i, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srvs[i] = srv
		addrs[srv.ID()] = srv.Addr()
	}
	client, err := kv.NewClient(kv.ClientConfig{
		Servers:          addrs,
		Adaptive:         adaptive,
		Demand:           kv.DemandModel(liveCost),
		RequestTimeout:   chaosDeadline,
		ReadRetries:      1,
		RetryBackoff:     5 * time.Millisecond,
		ReconnectBackoff: 100 * time.Millisecond,
		Seed:             11,
	})
	if err != nil {
		return nil, err
	}
	defer func() { _ = client.Close() }()

	ctx := context.Background()
	keys := make([]string, keyspace)
	rng := dist.NewRand(7)
	for i := range keys {
		pad := rng.IntN(11)
		keys[i] = fmt.Sprintf("key-%04d-%s", i, "xxxxxxxxxxx"[:pad])
		if err := client.Put(ctx, keys[i], []byte("value")); err != nil {
			return nil, err
		}
	}

	res := &chaosResult{sum: metrics.NewSummary(0)}
	var mu sync.Mutex
	deadline := time.Now().Add(runFor)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := dist.NewRand(uint64(c) + 100)
			for time.Now().Before(deadline) {
				k := 1 + crng.IntN(maxFanout)
				batch := make([]string, k)
				for i := range batch {
					batch[i] = keys[crng.IntN(keyspace)]
				}
				start := time.Now()
				_, err := client.MGet(ctx, batch)
				rct := time.Since(start)
				var perr *kv.PartialError
				mu.Lock()
				switch {
				case err == nil:
					res.ok++
				case errors.As(err, &perr):
					res.degraded++
				default:
					res.failed++
				}
				res.sum.Observe(rct)
				if rct > res.max {
					res.max = rct
				}
				mu.Unlock()
			}
		}()
	}

	// The fault script: kill server 0 a third in, restart it from its
	// snapshot two thirds in.
	victimAddr := addrs[srvs[0].ID()]
	time.Sleep(runFor / 3)
	_ = srvs[0].Close()
	srvs[0] = nil
	time.Sleep(runFor / 3)
	for attempt := 0; attempt < 50; attempt++ {
		srv, rerr := mkServer(0, victimAddr)
		if rerr == nil {
			srvs[0] = srv
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	wg.Wait()
	if srvs[0] == nil {
		return nil, fmt.Errorf("server 0 never rebound to %s", victimAddr)
	}
	return res, nil
}
