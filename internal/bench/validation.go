package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/queueing"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sim"
	"github.com/daskv/daskv/internal/workload"
)

// runE16 validates the simulation substrate against closed-form
// queueing theory: M/M/1, M/D/1 and M/G/1 (Pollaczek-Khinchine) mean
// sojourns at several loads, plus the fork-join bracketing for
// multigets. All other experiments inherit their credibility from this
// table.
func runE16(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E16", "Simulator validation against queueing theory",
		"single FCFS server, fanout 1; theory columns are exact closed forms")
	requests := p.Requests * 2
	mean := time.Millisecond
	bim := dist.Bimodal{Small: 500 * time.Microsecond, Large: 5500 * time.Microsecond, PSmall: 0.9}
	type row struct {
		name   string
		demand dist.Duration
		theory func(lambda float64) (time.Duration, error)
	}
	rows := []row{
		{"M/M/1 exp(1ms)", dist.Exponential{M: mean}, func(l float64) (time.Duration, error) {
			return queueing.MM1MeanSojourn(l, mean)
		}},
		{"M/D/1 det(1ms)", dist.Deterministic{V: mean}, func(l float64) (time.Duration, error) {
			return queueing.MD1MeanSojourn(l, mean)
		}},
		{"M/G/1 bimodal", bim, func(l float64) (time.Duration, error) {
			return queueing.MG1MeanSojourn(l, bim.Mean(),
				queueing.BimodalSecondMoment(bim.Small, bim.Large, bim.PSmall))
		}},
	}
	fmt.Fprintf(w, "%-16s %6s %12s %12s %8s\n", "system", "rho", "theory(ms)", "sim(ms)", "error")
	for _, r := range rows {
		for _, rho := range []float64{0.3, 0.5, 0.7, 0.9} {
			lambda := rho / r.demand.Mean().Seconds()
			theory, err := r.theory(lambda)
			if err != nil {
				return fmt.Errorf("bench: %s theory: %w", r.name, err)
			}
			got, err := singleQueueSojourn(r.demand, lambda, requests, p.Seed)
			if err != nil {
				return err
			}
			rel := math.Abs(float64(got-theory)) / float64(theory) * 100
			fmt.Fprintf(w, "%-16s %6.1f %12s %12s %7.1f%%\n",
				r.name, rho, ms(theory), ms(got), rel)
		}
	}
	// Fork-join bracketing.
	fmt.Fprintln(w, "-- fork-join multiget (k dedicated-rate servers, rho 0.5) --")
	fmt.Fprintf(w, "%-4s %14s %14s %14s\n", "k", "single(ms)", "sim(ms)", "indep-max(ms)")
	for _, k := range []int{2, 4, 8} {
		lambda := 500.0
		single, err := queueing.MM1MeanSojourn(lambda, mean)
		if err != nil {
			return err
		}
		upper, err := queueing.ForkJoinIndependent(k, single)
		if err != nil {
			return err
		}
		res, err := sim.Run(sim.Config{
			Servers:  k,
			Policy:   sched.FCFSFactory,
			NetDelay: dist.Deterministic{V: 0},
			Workload: workload.Config{
				Keys:       100_000,
				Fanout:     dist.ConstInt{N: k},
				Demand:     dist.Exponential{M: mean},
				RatePerSec: lambda,
			},
			Requests: requests,
			Warmup:   2 * time.Second,
			Seed:     p.Seed,
		})
		if err != nil {
			return fmt.Errorf("bench: fork-join sim: %w", err)
		}
		fmt.Fprintf(w, "%-4d %14s %14s %14s\n", k, ms(single), ms(res.RCT.Mean()), ms(upper))
	}
	fmt.Fprintln(w, "sim means sit between the single-queue sojourn and (collisions aside)")
	fmt.Fprintln(w, "the independent-exponential maximum, as fork-join theory requires.")
	return nil
}

// singleQueueSojourn runs a one-server fanout-1 FCFS simulation.
func singleQueueSojourn(demand dist.Duration, lambda float64, requests int, seed uint64) (time.Duration, error) {
	res, err := sim.Run(sim.Config{
		Servers:  1,
		Policy:   sched.FCFSFactory,
		NetDelay: dist.Deterministic{V: 0},
		Workload: workload.Config{
			Keys:       1000,
			Fanout:     dist.ConstInt{N: 1},
			Demand:     demand,
			RatePerSec: lambda,
		},
		Requests: requests,
		Warmup:   2 * time.Second,
		Seed:     seed,
	})
	if err != nil {
		return 0, fmt.Errorf("bench: validation sim: %w", err)
	}
	return res.RCT.Mean(), nil
}
