package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/optimal"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sim"
)

// runE13 quantifies how far the heuristics land from ground truth:
// (a) the exact optimum on enumerable offline instances (the paper's
// NP-hard formalization), and (b) a zero-staleness oracle-information
// DAS in the full simulator (the centralized-information bound the
// paper argues is impractical to collect).
func runE13(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E13", "Distance to optimal and to centralized information",
		"(a) offline instances solved exactly; (b) oracle tagging in the dynamic simulator")

	// (a) Offline optimality gap.
	fmt.Fprintln(w, "-- E13a: mean RCT / OPT over random offline instances (3 servers, 3-5 requests) --")
	policies := []struct {
		name    string
		factory sched.Factory
	}{
		{"FCFS", sched.FCFSFactory},
		{"SJF", sched.SJFFactory},
		{"Rein-SBF", sched.ReinSBFFactory},
		{"DAS(static)", core.Factory(core.DefaultOptions())},
	}
	sums := make([]float64, len(policies))
	var optSum float64
	instances := 0
	for seed := uint64(1); instances < 150 && seed < 400; seed++ {
		inst := randomOfflineInstance(seed)
		opt, err := optimal.Exact(inst)
		if err != nil {
			continue
		}
		vals := make([]time.Duration, len(policies))
		ok := true
		for i, pc := range policies {
			v, err := optimal.Evaluate(inst, pc.factory)
			if err != nil {
				ok = false
				break
			}
			vals[i] = v
		}
		if !ok {
			continue
		}
		optSum += opt.Seconds()
		for i, v := range vals {
			sums[i] += v.Seconds()
		}
		instances++
	}
	fmt.Fprintf(w, "instances solved exactly: %d\n", instances)
	fmt.Fprintf(w, "%-12s %10s\n", "policy", "mean/OPT")
	for i, pc := range policies {
		fmt.Fprintf(w, "%-12s %10.3f\n", pc.name, sums[i]/optSum)
	}

	// (b) Staleness cost in the dynamic simulator.
	fmt.Fprintln(w, "-- E13b: piggyback feedback vs zero-staleness oracle information --")
	slow := p.Servers / 5
	scenarios := []struct {
		name string
		sc   scenario
	}{
		{"homog rho=0.8", defaultScenario(p, 0.8)},
		{"het rho=0.45", func() scenario {
			sc := defaultScenario(p, 0.45)
			sc.meanSpeed = (float64(p.Servers-slow) + 0.5*float64(slow)) / float64(p.Servers)
			sc.speedFor = func(id sched.ServerID) sim.SpeedProfile {
				if int(id) < slow {
					return sim.ConstantSpeed{V: 0.5}
				}
				return sim.ConstantSpeed{V: 1}
			}
			return sc
		}()},
	}
	fmt.Fprintf(w, "%-14s %14s %14s %14s\n", "scenario", "Rein-SBF", "DAS", "DAS-oracle")
	for _, sce := range scenarios {
		rein, err := sce.sc.run(policyChoice{name: "Rein-SBF", factory: sched.ReinSBFFactory})
		if err != nil {
			return err
		}
		das, err := sce.sc.run(policyChoice{name: "DAS", factory: core.Factory(core.DefaultOptions()), adaptive: true})
		if err != nil {
			return err
		}
		oracle, err := sce.sc.runOracle(core.Factory(core.DefaultOptions()))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %14s %14s %14s\n",
			sce.name, ms(rein.mean), ms(das.mean), ms(oracle.mean))
	}
	fmt.Fprintln(w, "oracle = same DAS policy, tags computed from true instantaneous server state;")
	fmt.Fprintln(w, "the DAS vs oracle gap is the total cost of piggybacked (delayed, partial) information.")
	return nil
}

// runOracle executes one oracle-tagged run, averaged over seeds.
func (sc scenario) runOracle(factory sched.Factory) (aggregate, error) {
	oracleSC := sc
	// Reuse run() plumbing by flagging through a dedicated choice; the
	// flag is applied in run via the oracle field below.
	return oracleSC.runWith(policyChoice{name: "DAS-oracle", factory: factory}, true)
}

// randomOfflineInstance mirrors the distributional shape of the dynamic
// workload at enumeration-friendly size.
func randomOfflineInstance(seed uint64) optimal.Instance {
	rng := dist.NewRand(seed)
	const servers = 3
	n := 3 + rng.IntN(3)
	reqs := make([]optimal.Request, n)
	demand := dist.Exponential{M: 2 * time.Millisecond}
	for r := range reqs {
		k := 1 + rng.IntN(3)
		used := map[int]bool{}
		ops := make([]optimal.Op, 0, k)
		for len(ops) < k {
			s := rng.IntN(servers)
			if used[s] {
				continue
			}
			used[s] = true
			d := demand.Sample(rng)
			if d < 100*time.Microsecond {
				d = 100 * time.Microsecond
			}
			ops = append(ops, optimal.Op{Server: s, Demand: d})
		}
		reqs[r] = optimal.Request{Ops: ops}
	}
	return optimal.Instance{Servers: servers, Requests: reqs}
}
