package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestEveryExperimentSmoke runs each registered experiment end-to-end at
// reduced scale, asserting it completes and emits its table. This is
// the regression net for the whole harness.
func TestEveryExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke skipped in -short")
	}
	p := Params{Servers: 8, Requests: 1200, Seeds: 1, Seed: 1, Live: 400 * time.Millisecond}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(p, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "== "+e.ID+":") {
				t.Fatalf("%s output missing header:\n%s", e.ID, out)
			}
			if len(out) < 200 {
				t.Fatalf("%s output suspiciously short (%d bytes)", e.ID, len(out))
			}
		})
	}
}
