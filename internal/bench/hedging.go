package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sim"
	"github.com/daskv/daskv/internal/workload"
)

// runE17 positions DAS against (and combined with) the other standard
// tail-latency techniques once replication exists: request hedging and
// load-aware replica selection. Scheduling, routing and hedging attack
// different straggler sources; the table shows what composes.
func runE17(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E17", "Scheduling vs hedging vs replica selection (3 replicas)",
		"20% of servers at 0.25x speed, load 0.2 of nominal (slow servers at 0.8),\n"+
			"key skew 0.6 so no single hot key saturates a slow server; hedge delay 10ms")
	slow := p.Servers / 5
	speedFor := func(id sched.ServerID) sim.SpeedProfile {
		if int(id) < slow {
			return sim.ConstantSpeed{V: 0.25}
		}
		return sim.ConstantSpeed{V: 1}
	}
	fanout := defaultFanout()
	demand := defaultDemand()
	rate, err := workload.RateForLoad(0.2, p.Servers, 1.0, fanout.Mean(), demand.Mean())
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	type variant struct {
		name    string
		factory sched.Factory
		adapt   bool
		hedge   time.Duration
		sel     sim.ReplicaPolicy
	}
	variants := []variant{
		{name: "FCFS", factory: sched.FCFSFactory},
		{name: "FCFS+hedge", factory: sched.FCFSFactory, hedge: 10 * time.Millisecond},
		{name: "DAS", factory: core.Factory(core.DefaultOptions()), adapt: true},
		{name: "DAS+hedge", factory: core.Factory(core.DefaultOptions()), adapt: true, hedge: 10 * time.Millisecond},
		{name: "DAS+fastest", factory: core.Factory(core.DefaultOptions()), adapt: true, sel: sim.FastestReplica},
		{name: "DAS+both", factory: core.Factory(core.DefaultOptions()), adapt: true,
			hedge: 10 * time.Millisecond, sel: sim.FastestReplica},
	}
	fmt.Fprintf(w, "%-13s %12s %12s %12s %10s\n", "variant", "mean(ms)", "p99(ms)", "hedged", "extra ops")
	for _, v := range variants {
		var mean, p99 time.Duration
		var hedgedFrac float64
		for s := 0; s < p.Seeds; s++ {
			res, err := sim.Run(sim.Config{
				Servers:       p.Servers,
				Policy:        v.factory,
				Adaptive:      v.adapt,
				SpeedFor:      speedFor,
				Replicas:      3,
				ReplicaSelect: v.sel,
				HedgeDelay:    v.hedge,
				Workload: workload.Config{
					Keys: 100_000, KeySkew: 0.6,
					Fanout: fanout, Demand: demand, RatePerSec: rate,
				},
				Requests: p.Requests,
				Warmup:   time.Second,
				Seed:     p.Seed + uint64(s)*1000003,
			})
			if err != nil {
				return fmt.Errorf("bench: %s: %w", v.name, err)
			}
			mean += res.RCT.Mean() / time.Duration(p.Seeds)
			p99 += res.RCT.P99() / time.Duration(p.Seeds)
			hedgedFrac += float64(res.HedgedOps) / float64(res.GeneratedOps) / float64(p.Seeds)
		}
		fmt.Fprintf(w, "%-13s %12s %12s %12d %9.1f%%\n",
			v.name, ms(mean), ms(p99), int(hedgedFrac*float64(p.Requests)), hedgedFrac*100)
	}
	fmt.Fprintln(w, "hedging and estimator routing both cut the slow-server tail; scheduling")
	fmt.Fprintln(w, "(DAS) is complementary — it orders whatever queue remains after routing.")
	return nil
}
