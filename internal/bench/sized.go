package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/kv"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sizeclass"
	"github.com/daskv/daskv/internal/wire"
)

// The heavy-tailed live scenario: values drawn from a bounded Pareto
// spanning three decades, so ~5% of gets move hundreds of KiB while the
// rest move a few KiB. Service cost is the bytes an op actually moves
// (sizedLiveBase per op plus sizedLiveCostPerMiB per MiB), making a
// 1 MiB get ~100x the work of a small one — the head-of-line blocking
// regime the size-class worker split exists for.
const (
	sizedLiveServers  = 4
	sizedLiveWorkers  = 2
	sizedLiveClients  = 24
	sizedLiveKeyspace = 1600

	sizedLiveLo    = 1 << 10  // 1 KiB
	sizedLiveHi    = 4 << 20  // 4 MiB
	sizedLiveAlpha = 0.5      // heavy tail: ~12% of keys above smallMax
	sizedSmallMax  = 64 << 10 // fixed small/large boundary (and report split)
	sizedLiveZipfS = 0.9      // Zipfian key skew composed with the size tail

	sizedLiveBase       = 200 * time.Microsecond
	sizedLiveCostPerMiB = 20 * time.Millisecond
)

// sizedLiveCost prices an op by the payload it moves; the server
// applies it to the bytes a get returned or a put wrote.
func sizedLiveCost(_ wire.OpType, _, valueLen int) time.Duration {
	return sizedLiveBase + time.Duration(valueLen)*sizedLiveCostPerMiB/(1<<20)
}

// sizedLiveResult separates request latency by the op's size class, the
// quantity E23 and the heavy-tailed gate act on: small-op tails are
// what head-of-line blocking destroys and what the pool split protects.
type sizedLiveResult struct {
	small *metrics.Summary
	large *metrics.Summary
	all   *metrics.Summary
	count uint64
}

// runLiveSizedOnce drives one policy on a fresh loopback cluster under
// the heavy-tailed value-size mix. poolSplit > 0 runs split worker
// pools (with the fixed sizedSmallMax admission threshold); 0 runs the
// plain single-queue pool at identical worker capacity. hints gives the
// client exact response-size foreknowledge (the SizeHint hook); without
// it every get is tagged with the static base demand and only the
// server — which owns the store — can tell mice from elephants.
func runLiveSizedOnce(factory sched.Factory, adaptive bool, poolSplit float64, hints bool, runFor time.Duration) (sizedLiveResult, error) {
	var res sizedLiveResult
	srvs := make([]*kv.Server, 0, sizedLiveServers)
	addrs := make(map[sched.ServerID]string, sizedLiveServers)
	defer func() {
		for _, s := range srvs {
			_ = s.Close()
		}
	}()
	for i := 0; i < sizedLiveServers; i++ {
		srv, err := kv.NewServer(kv.ServerConfig{
			ID:        sched.ServerID(i),
			Addr:      "127.0.0.1:0",
			Policy:    factory,
			Workers:   sizedLiveWorkers,
			Cost:      sizedLiveCost,
			PoolSplit: poolSplit,
			SizeClass: sizeclass.Config{Override: sizedSmallMax},
		})
		if err != nil {
			return res, err
		}
		srvs = append(srvs, srv)
		addrs[srv.ID()] = srv.Addr()
	}

	// The driver knows every key's value size (it wrote them), so the
	// client-side size hint is exact — the live analogue of a cache
	// front that tracks object sizes.
	sizes := make(map[string]int, sizedLiveKeyspace)
	keys := make([]string, sizedLiveKeyspace)
	sizeDist := dist.ParetoBytes{Lo: sizedLiveLo, Hi: sizedLiveHi, Alpha: sizedLiveAlpha}
	rng := dist.NewRand(7)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%05d", i)
		sizes[keys[i]] = int(sizeDist.SampleBytes(rng))
	}

	ccfg := kv.ClientConfig{
		Servers:  addrs,
		Adaptive: adaptive,
		Demand:   kv.DemandModel(sizedLiveCost),
	}
	if hints {
		ccfg.SizeHint = func(_ wire.OpType, key string) int { return sizes[key] }
	}
	client, err := kv.NewClient(ccfg)
	if err != nil {
		return res, err
	}
	defer func() { _ = client.Close() }()

	// Preload in multiset chunks so the burn parallelizes across
	// servers instead of paying ~1s of sequential service cost.
	ctx := context.Background()
	const chunk = 200
	for lo := 0; lo < len(keys); lo += chunk {
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		pairs := make(map[string][]byte, hi-lo)
		for _, k := range keys[lo:hi] {
			pairs[k] = make([]byte, sizes[k])
		}
		if err := client.MSet(ctx, pairs); err != nil {
			return res, err
		}
	}

	res.small = metrics.NewSummary(0)
	res.large = metrics.NewSummary(0)
	res.all = metrics.NewSummary(0)
	zipf, err := dist.NewZipf(sizedLiveKeyspace, sizedLiveZipfS)
	if err != nil {
		return res, err
	}
	var mu sync.Mutex
	deadline := time.Now().Add(runFor)
	var wg sync.WaitGroup
	errCh := make(chan error, sizedLiveClients)
	for c := 0; c < sizedLiveClients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := dist.NewRand(uint64(c) + 100)
			for time.Now().Before(deadline) {
				k := keys[zipf.Sample(crng)]
				start := time.Now()
				if _, err := client.MGet(ctx, []string{k}); err != nil {
					errCh <- err
					return
				}
				rct := time.Since(start)
				mu.Lock()
				if sizes[k] > sizedSmallMax {
					res.large.Observe(rct)
				} else {
					res.small.Observe(rct)
				}
				res.all.Observe(rct)
				res.count++
				mu.Unlock()
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	for c := 0; c < sizedLiveClients; c++ {
		if err := <-errCh; err != nil {
			return res, err
		}
	}
	return res, nil
}

// sizedPolicyChoice is one E23 configuration: scheduling policy, pool
// split, and whether the client predicts response sizes.
type sizedPolicyChoice struct {
	name      string
	factory   sched.Factory
	adaptive  bool
	poolSplit float64
	hints     bool
}

// sizedPolicyChoices is the E23 comparison set, all at identical worker
// capacity and offered load. Clients do not predict response sizes
// except in the DAS+hints row, which shows what client-side size
// foreknowledge alone (exact SizeHint feeding SRPT tags, one shared
// pool) buys; DAS+pools instead uses the server's own store to
// classify, protecting small ops without any client cooperation.
func sizedPolicyChoices() []sizedPolicyChoice {
	return []sizedPolicyChoice{
		{name: "FCFS", factory: sched.FCFSFactory},
		{name: "DAS", factory: core.Factory(core.LiveOptions()), adaptive: true},
		{name: "DAS+hints", factory: core.Factory(core.LiveOptions()), adaptive: true, hints: true},
		{name: "DAS+pools", factory: core.Factory(core.LiveOptions()), adaptive: true, poolSplit: 0.5},
	}
}

// runE23 measures small-op tail latency under the heavy-tailed value
// mix: with one shared pool, a burst of multi-megabyte transfers pins
// every worker and small gets inherit the elephants' service time; the
// split keeps one worker reserved for mice no matter what the tail is
// doing. The last line prints the split's small-op p99 gain over
// single-pool DAS — the number the ISSUE acceptance tracks.
func runE23(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E23", "Heavy-tailed value sizes: size-class worker pools (extension)",
		fmt.Sprintf("%d loopback servers x %d workers, %d closed-loop get clients, Zipf(%.1f) keys, Pareto(%dKiB..%dMiB, a=%.1f) values, threshold %dKiB, %v per policy",
			sizedLiveServers, sizedLiveWorkers, sizedLiveClients, sizedLiveZipfS,
			sizedLiveLo>>10, sizedLiveHi>>20, sizedLiveAlpha, sizedSmallMax>>10, p.Live))
	fmt.Fprintf(w, "%-10s %9s %11s %11s %11s %11s\n",
		"policy", "requests", "sm-p50(ms)", "sm-p99(ms)", "lg-p99(ms)", "all-p99(ms)")
	var dasSmall, poolsSmall time.Duration
	for _, pc := range sizedPolicyChoices() {
		res, err := runLiveSizedOnce(pc.factory, pc.adaptive, pc.poolSplit, pc.hints, p.Live)
		if err != nil {
			return fmt.Errorf("bench: sized live %s: %w", pc.name, err)
		}
		fmt.Fprintf(w, "%-10s %9d %11s %11s %11s %11s\n",
			pc.name, res.count, ms(res.small.P50()), ms(res.small.P99()),
			ms(res.large.P99()), ms(res.all.P99()))
		switch pc.name {
		case "DAS":
			dasSmall = res.small.P99()
		case "DAS+pools":
			poolsSmall = res.small.P99()
		}
	}
	fmt.Fprintf(w, "small-op p99, pools on vs off (DAS): %s\n", gain(dasSmall, poolsSmall))
	return nil
}

// LiveSizedResult is one policy's outcome from the heavy-tailed live
// benchmark, shaped for BENCH_live.json.
type LiveSizedResult struct {
	Policy     string  `json:"policy"`
	PoolSplit  float64 `json:"pool_split,omitempty"`
	Requests   uint64  `json:"requests"`
	SmallP50Ms float64 `json:"small_p50_ms"`
	SmallP99Ms float64 `json:"small_p99_ms"`
	LargeP99Ms float64 `json:"large_p99_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// RunLiveSizedJSON runs the E23 heavy-tailed benchmark for each policy
// variant and returns structured results.
func RunLiveSizedJSON(p Params) ([]LiveSizedResult, error) {
	p = p.withDefaults()
	out := make([]LiveSizedResult, 0, 4)
	for _, pc := range sizedPolicyChoices() {
		res, err := runLiveSizedOnce(pc.factory, pc.adaptive, pc.poolSplit, pc.hints, p.Live)
		if err != nil {
			return nil, fmt.Errorf("bench: sized live %s: %w", pc.name, err)
		}
		out = append(out, LiveSizedResult{
			Policy:     pc.name,
			PoolSplit:  pc.poolSplit,
			Requests:   res.count,
			SmallP50Ms: float64(res.small.P50()) / float64(time.Millisecond),
			SmallP99Ms: float64(res.small.P99()) / float64(time.Millisecond),
			LargeP99Ms: float64(res.large.P99()) / float64(time.Millisecond),
			P99Ms:      float64(res.all.P99()) / float64(time.Millisecond),
		})
	}
	return out, nil
}

// RunLiveSizedGate is the heavy-tailed CI gate: DAS with split pools
// versus plain FCFS at identical capacity, compared on small-op p99.
// Under this mix FCFS strands mice behind elephants on every worker, so
// the split should win outright; the ratio ceiling exists to catch the
// split regressing into the blocking it is meant to remove. Same retry
// semantics as RunLiveGate: one re-measure absorbs CI-host noise.
func RunLiveSizedGate(p Params, w io.Writer, maxRatio float64, retries int) error {
	p = p.withDefaults()
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			fmt.Fprintf(w, "sized-gate: retrying (%v)\n", lastErr)
		}
		fcfs, err := runLiveSizedOnce(sched.FCFSFactory, false, 0, false, p.Live)
		if err != nil {
			return fmt.Errorf("bench: sized-gate FCFS: %w", err)
		}
		das, err := runLiveSizedOnce(core.Factory(core.LiveOptions()), true, 0.5, false, p.Live)
		if err != nil {
			return fmt.Errorf("bench: sized-gate DAS+pools: %w", err)
		}
		ratio := float64(das.small.P99()) / float64(fcfs.small.P99())
		fmt.Fprintf(w, "sized-gate: FCFS small p99 %s (%d reqs), DAS+pools small p99 %s (%d reqs), ratio %.3f (limit %.2f)\n",
			ms(fcfs.small.P99()), fcfs.count, ms(das.small.P99()), das.count, ratio, maxRatio)
		if ratio <= maxRatio {
			return nil
		}
		lastErr = fmt.Errorf("bench: sized live DAS+pools small-op p99 %s exceeds %.2fx FCFS small-op p99 %s",
			ms(das.small.P99()), maxRatio, ms(fcfs.small.P99()))
	}
	return lastErr
}

// RunLiveUniformPoolsJSON re-runs the uniform-size E22 live comparison
// with the size-class split enabled on the DAS servers, both sides at
// two workers so capacity matches. Every value is the same few bytes,
// so the learned threshold classifies everything small and the large
// worker lives entirely on stolen work — the split must cost nothing.
// This is the committed evidence that enabling pools does not regress
// the uniform-size E22 gate.
func RunLiveUniformPoolsJSON(p Params) ([]LiveResult, error) {
	p = p.withDefaults()
	out := make([]LiveResult, 0, 2)
	for _, pc := range []struct {
		name      string
		factory   sched.Factory
		adaptive  bool
		poolSplit float64
	}{
		{name: "FCFS", factory: sched.FCFSFactory},
		{name: "DAS+pools", factory: core.Factory(core.LiveOptions()), adaptive: true, poolSplit: 0.5},
	} {
		r, err := runLiveConfigured(pc.factory, pc.adaptive, 2, pc.poolSplit, p.Live, p.LiveRate)
		if err != nil {
			return nil, fmt.Errorf("bench: uniform-pools %s: %w", pc.name, err)
		}
		out = append(out, liveResult(pc.name, r))
	}
	return out, nil
}
