package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sim"
	"github.com/daskv/daskv/internal/workload"
)

// runE18 quantifies what non-preemptive service forgoes: the same
// policies with and without in-service preemption. Deployed key-value
// servers do not preempt (an operation mid-read cannot cheaply yield);
// if the delta is small at KV operation granularity, the restriction is
// justified.
func runE18(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E18", "Preemption ablation",
		"identical policies, preemptive vs non-preemptive service; default workload")
	policies := []policyChoice{
		{name: "SJF", factory: sched.SJFFactory},
		{name: "Rein-SBF", factory: sched.ReinSBFFactory},
		{name: "DAS", factory: core.Factory(core.DefaultOptions()), adaptive: true},
	}
	fmt.Fprintf(w, "%-10s %6s %14s %14s %10s\n",
		"policy", "load", "nonpre mean", "preempt mean", "delta")
	for _, rho := range []float64{0.7, 0.9} {
		for _, pc := range policies {
			plain, err := runPreempt(p, pc, rho, false)
			if err != nil {
				return err
			}
			pre, err := runPreempt(p, pc, rho, true)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %6.1f %14s %14s %10s\n",
				pc.name, rho, ms(plain), ms(pre), gain(plain, pre))
		}
	}
	fmt.Fprintln(w, "positive delta = preemption helps; at millisecond operation granularity")
	fmt.Fprintln(w, "the bulk of the scheduling benefit needs no preemption at all.")
	return nil
}

func runPreempt(p Params, pc policyChoice, rho float64, preemptive bool) (time.Duration, error) {
	sc := defaultScenario(p, rho)
	rate, err := workload.RateForLoad(sc.rho, p.Servers, 1.0, sc.fanout.Mean(), sc.demand.Mean())
	if err != nil {
		return 0, fmt.Errorf("bench: %w", err)
	}
	var mean time.Duration
	for s := 0; s < p.Seeds; s++ {
		res, err := sim.Run(sim.Config{
			Servers:    p.Servers,
			Policy:     pc.factory,
			Adaptive:   pc.adaptive,
			Preemptive: preemptive,
			Workload: workload.Config{
				Keys: 100_000, KeySkew: sc.keySkew,
				Fanout: sc.fanout, Demand: sc.demand, RatePerSec: rate,
			},
			Requests: p.Requests,
			Warmup:   time.Second,
			Seed:     p.Seed + uint64(s)*1000003,
		})
		if err != nil {
			return 0, fmt.Errorf("bench: %s preempt=%v: %w", pc.name, preemptive, err)
		}
		mean += res.RCT.Mean() / time.Duration(p.Seeds)
	}
	return mean, nil
}
