package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/daskv/daskv/internal/core"
	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/plot"
	"github.com/daskv/daskv/internal/sched"
	"github.com/daskv/daskv/internal/sim"
)

// runE1 prints the default-scenario summary across all policies.
func runE1(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E1", "Default-scenario summary",
		fmt.Sprintf("servers=%d load=0.7 fanout=zipf(20) demand=exp(1ms) skew=0.9 (all times ms)", p.Servers))
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %10s %12s\n",
		"policy", "mean", "p50", "p95", "p99", "queue", "vs FCFS")
	sc := defaultScenario(p, 0.7)
	var fcfsMean time.Duration
	for _, pc := range standardPolicies() {
		agg, err := sc.run(pc)
		if err != nil {
			return err
		}
		if pc.name == "FCFS" {
			fcfsMean = agg.mean
		}
		fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %10.1f %12s\n",
			pc.name, ms(agg.mean), ms(agg.p50), ms(agg.p95), ms(agg.p99),
			agg.meanQueue, gain(fcfsMean, agg.mean))
	}
	return nil
}

// loadSweep renders one metric across the load axis as a table plus an
// ASCII figure.
func loadSweep(p Params, w io.Writer, ylabel string, metric func(aggregate) time.Duration) error {
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	policies := standardPolicies()
	curves := make([]plot.Series, len(policies))
	for i, pc := range policies {
		curves[i].Name = pc.name
	}
	fmt.Fprintf(w, "%-6s", "load")
	for _, pc := range policies {
		fmt.Fprintf(w, " %10s", pc.name)
	}
	fmt.Fprintf(w, " %12s %12s\n", "DAS/FCFS", "DAS/SBF")
	for _, rho := range loads {
		sc := defaultScenario(p, rho)
		vals := make(map[string]time.Duration, len(policies))
		for i, pc := range policies {
			agg, err := sc.run(pc)
			if err != nil {
				return err
			}
			vals[pc.name] = metric(agg)
			curves[i].Points = append(curves[i].Points, plot.Point{
				X: rho, Y: float64(vals[pc.name]) / float64(time.Millisecond),
			})
		}
		fmt.Fprintf(w, "%-6.1f", rho)
		for _, pc := range policies {
			fmt.Fprintf(w, " %10s", ms(vals[pc.name]))
		}
		fmt.Fprintf(w, " %12s %12s\n",
			gain(vals["FCFS"], vals["DAS"]), gain(vals["Rein-SBF"], vals["DAS"]))
	}
	fmt.Fprintln(w)
	return plot.Render(w, ylabel+" vs load", curves, plot.Options{
		LogY: true, XLabel: "offered load", YLabel: ylabel + " (ms)",
	})
}

// runE2 is the headline figure: mean RCT vs offered load.
func runE2(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E2", "Mean RCT (ms) vs load",
		"paper claim: DAS cuts mean RCT 15-50%+ vs FCFS, growing with load")
	return loadSweep(p, w, "mean RCT", func(a aggregate) time.Duration { return a.mean })
}

// runE3 is the tail-latency companion sweep.
func runE3(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E3", "p99 RCT (ms) vs load", "")
	return loadSweep(p, w, "p99 RCT", func(a aggregate) time.Duration { return a.p99 })
}

// runE4 prints the RCT CDF at load 0.8.
func runE4(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E4", "RCT CDF at load 0.8 (ms at each percentile)", "")
	sc := defaultScenario(p, 0.8)
	policies := corePolicies()
	cdfs := make(map[string][]cdfPoint, len(policies))
	for _, pc := range policies {
		agg, err := sc.run(pc)
		if err != nil {
			return err
		}
		cdfs[pc.name] = agg.cdf
	}
	fmt.Fprintf(w, "%-10s", "fraction")
	for _, pc := range policies {
		fmt.Fprintf(w, " %12s", pc.name)
	}
	fmt.Fprintln(w)
	n := len(cdfs[policies[0].name])
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%-10.2f", cdfs[policies[0].name][i].fraction)
		for _, pc := range policies {
			fmt.Fprintf(w, " %12s", ms(cdfs[pc.name][i].value))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runE5 sweeps the multiget width.
func runE5(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E5", "Mean RCT (ms) vs mean fan-out at load 0.7",
		"fanout ~ uniform[1, 2m-1] so the mean is m")
	policies := corePolicies()
	fmt.Fprintf(w, "%-8s", "fanout")
	for _, pc := range policies {
		fmt.Fprintf(w, " %10s", pc.name)
	}
	fmt.Fprintf(w, " %12s\n", "DAS/FCFS")
	for _, mean := range []int{2, 4, 8, 16, 32} {
		sc := defaultScenario(p, 0.7)
		sc.fanout = dist.UniformInt{Lo: 1, Hi: 2*mean - 1}
		vals := map[string]time.Duration{}
		for _, pc := range policies {
			agg, err := sc.run(pc)
			if err != nil {
				return err
			}
			vals[pc.name] = agg.mean
		}
		fmt.Fprintf(w, "%-8d", mean)
		for _, pc := range policies {
			fmt.Fprintf(w, " %10s", ms(vals[pc.name]))
		}
		fmt.Fprintf(w, " %12s\n", gain(vals["FCFS"], vals["DAS"]))
	}
	return nil
}

// runE6 compares service-demand distributions at equal mean.
func runE6(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E6", "Mean / p99 RCT (ms) across demand distributions at load 0.7",
		"all distributions share a 1ms mean")
	demands := []dist.Duration{
		dist.Exponential{M: time.Millisecond},
		dist.Bimodal{Small: 500 * time.Microsecond, Large: 5500 * time.Microsecond, PSmall: 0.9},
		dist.BoundedPareto{Lo: 320 * time.Microsecond, Hi: 100 * time.Millisecond, Alpha: 1.48},
		dist.Lognormal{M: time.Millisecond, Sigma: 1.5},
	}
	policies := corePolicies()
	fmt.Fprintf(w, "%-28s", "demand")
	for _, pc := range policies {
		fmt.Fprintf(w, " %22s", pc.name+" mean/p99")
	}
	fmt.Fprintln(w)
	for _, d := range demands {
		sc := defaultScenario(p, 0.7)
		sc.demand = d
		fmt.Fprintf(w, "%-28s", d.String())
		for _, pc := range policies {
			agg, err := sc.run(pc)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %22s", ms(agg.mean)+"/"+ms(agg.p99))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runE7 sweeps key-popularity skew.
func runE7(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E7", "Mean RCT (ms) vs key-popularity skew at load 0.6",
		"higher skew concentrates load on hot partitions (theta > ~1.0 overloads the hottest server)")
	policies := corePolicies()
	fmt.Fprintf(w, "%-7s", "theta")
	for _, pc := range policies {
		fmt.Fprintf(w, " %10s", pc.name)
	}
	fmt.Fprintf(w, " %12s\n", "DAS/FCFS")
	for _, theta := range []float64{0, 0.3, 0.6, 0.9, 1.0} {
		sc := defaultScenario(p, 0.6)
		sc.keySkew = theta
		vals := map[string]time.Duration{}
		for _, pc := range policies {
			agg, err := sc.run(pc)
			if err != nil {
				return err
			}
			vals[pc.name] = agg.mean
		}
		fmt.Fprintf(w, "%-7.1f", theta)
		for _, pc := range policies {
			fmt.Fprintf(w, " %10s", ms(vals[pc.name]))
		}
		fmt.Fprintf(w, " %12s\n", gain(vals["FCFS"], vals["DAS"]))
	}
	return nil
}

// hetPolicies adds the static-tag DAS to isolate adaptivity.
func hetPolicies() []policyChoice {
	return []policyChoice{
		{name: "FCFS", factory: sched.FCFSFactory},
		{name: "Rein-SBF", factory: sched.ReinSBFFactory},
		{name: "DAS", factory: core.Factory(core.DefaultOptions()), adaptive: true},
		{name: "DAS-static", factory: core.Factory(core.DefaultOptions())},
	}
}

// runE8 measures heterogeneous clusters: a fraction of servers at half
// speed, load kept stable for the slowest server.
func runE8(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E8", "Mean RCT (ms) with slow servers (0.5x speed) at load 0.45",
		"only adaptive DAS re-estimates per-server speed; Rein-SBF tags are static")
	policies := hetPolicies()
	fmt.Fprintf(w, "%-9s", "slowFrac")
	for _, pc := range policies {
		fmt.Fprintf(w, " %11s", pc.name)
	}
	fmt.Fprintf(w, " %12s\n", "DAS/SBF")
	for _, frac := range []float64{0.1, 0.2, 0.3} {
		slow := int(float64(p.Servers) * frac)
		sc := defaultScenario(p, 0.45)
		sc.meanSpeed = (float64(p.Servers-slow) + 0.5*float64(slow)) / float64(p.Servers)
		sc.speedFor = func(id sched.ServerID) sim.SpeedProfile {
			if int(id) < slow {
				return sim.ConstantSpeed{V: 0.5}
			}
			return sim.ConstantSpeed{V: 1}
		}
		vals := map[string]time.Duration{}
		for _, pc := range policies {
			agg, err := sc.run(pc)
			if err != nil {
				return err
			}
			vals[pc.name] = agg.mean
		}
		fmt.Fprintf(w, "%-9.1f", frac)
		for _, pc := range policies {
			fmt.Fprintf(w, " %11s", ms(vals[pc.name]))
		}
		fmt.Fprintf(w, " %12s\n", gain(vals["Rein-SBF"], vals["DAS"]))
	}
	return nil
}

// runE9 exercises time variation: oscillating server speeds and a
// square-wave load profile, reporting windowed mean RCT over time.
func runE9(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E9", "Time-varying conditions",
		"(a) quarter of servers oscillate 0.3x/1.0x speed; (b) square-wave offered load")

	// (a) oscillating speeds.
	fmt.Fprintln(w, "-- E9a: oscillating server speeds (period 4s), load 0.65 --")
	policies := hetPolicies()
	fmt.Fprintf(w, "%-11s %10s %10s\n", "policy", "mean(ms)", "p99(ms)")
	for _, pc := range policies {
		sc := defaultScenario(p, 0.65)
		sc.meanSpeed = (float64(p.Servers)*3/4 + 0.65*float64(p.Servers)/4) / float64(p.Servers)
		sc.speedFor = func(id sched.ServerID) sim.SpeedProfile {
			if int(id)%4 == 0 {
				return sim.SquareSpeed{Lo: 0.3, Hi: 1.0, Period: 4 * time.Second}
			}
			return sim.ConstantSpeed{V: 1}
		}
		agg, err := sc.run(pc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-11s %10s %10s\n", pc.name, ms(agg.mean), ms(agg.p99))
	}

	// (b) square-wave load: windowed series.
	fmt.Fprintln(w, "-- E9b: square-wave load 0.4/1.0 of base 0.65 (period 4s), windowed mean RCT (ms) --")
	series := map[string][]seriesPoint{}
	order := []string{}
	for _, pc := range corePolicies() {
		sc := defaultScenario(p, 0.65)
		sc.profile = dist.SquareWaveLoad{Low: 0.4, High: 1.0, Period: 4 * time.Second}
		sc.series = 500 * time.Millisecond
		agg, err := sc.run(pc)
		if err != nil {
			return err
		}
		series[pc.name] = agg.series
		order = append(order, pc.name)
	}
	fmt.Fprintf(w, "%-8s", "t(s)")
	for _, name := range order {
		fmt.Fprintf(w, " %10s", name)
	}
	fmt.Fprintln(w)
	n := len(series[order[0]])
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%-8.1f", series[order[0]][i].start.Seconds())
		for _, name := range order {
			if i < len(series[name]) {
				fmt.Fprintf(w, " %10s", ms(series[name][i].mean))
			} else {
				fmt.Fprintf(w, " %10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	curves := make([]plot.Series, 0, len(order))
	for _, name := range order {
		s := plot.Series{Name: name}
		for _, pt := range series[name] {
			s.Points = append(s.Points, plot.Point{
				X: pt.start.Seconds(), Y: float64(pt.mean) / float64(time.Millisecond),
			})
		}
		curves = append(curves, s)
	}
	return plot.Render(w, "windowed mean RCT under square-wave load", curves, plot.Options{
		XLabel: "time (s)", YLabel: "mean RCT (ms)",
	})
}

// runE10 is the ablation over DAS's design choices.
func runE10(p Params, w io.Writer) error {
	p = p.withDefaults()
	header(w, "E10", "DAS ablation",
		"homogeneous load 0.8 and heterogeneous load 0.45 (20% servers at 0.5x)")
	variants := []policyChoice{
		{name: "DAS", factory: core.Factory(core.DefaultOptions()), adaptive: true},
		{name: "no-slack", factory: core.Factory(core.Options{Beta: 0}), adaptive: true},
		{name: "no-feedback", factory: core.Factory(core.DefaultOptions())},
		{name: "aging.01", factory: core.Factory(core.Options{Alpha: 0.01, Beta: 0.1}), adaptive: true},
		{name: "maxdelay1s", factory: core.Factory(core.Options{Beta: 0.1, MaxDelay: time.Second}), adaptive: true},
		{name: "FCFS", factory: sched.FCFSFactory},
	}
	homog := defaultScenario(p, 0.8)
	slow := p.Servers / 5
	het := defaultScenario(p, 0.45)
	het.meanSpeed = (float64(p.Servers-slow) + 0.5*float64(slow)) / float64(p.Servers)
	het.speedFor = func(id sched.ServerID) sim.SpeedProfile {
		if int(id) < slow {
			return sim.ConstantSpeed{V: 0.5}
		}
		return sim.ConstantSpeed{V: 1}
	}
	fmt.Fprintf(w, "%-12s %14s %14s %14s %14s\n",
		"variant", "homog mean", "homog p99", "het mean", "het p99")
	for _, pc := range variants {
		h, err := homog.run(pc)
		if err != nil {
			return err
		}
		e, err := het.run(pc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %14s %14s %14s %14s\n",
			pc.name, ms(h.mean), ms(h.p99), ms(e.mean), ms(e.p99))
	}
	return nil
}

// runE11 measures raw scheduling cost per operation at several queue
// depths: the deployability argument.
func runE11(p Params, w io.Writer) error {
	header(w, "E11", "Scheduling overhead: push+pop cost per op",
		"steady-state queue of the given depth; time.Now-based measurement")
	policies := []policyChoice{
		{name: "FCFS", factory: sched.FCFSFactory},
		{name: "SJF", factory: sched.SJFFactory},
		{name: "Rein-SBF", factory: sched.ReinSBFFactory},
		{name: "Rein-ML", factory: sched.ReinMLFactory(2 * time.Millisecond)},
		{name: "DAS", factory: core.Factory(core.DefaultOptions()), adaptive: true},
	}
	depths := []int{16, 256, 4096, 65536}
	fmt.Fprintf(w, "%-10s", "policy")
	for _, d := range depths {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("depth %d", d))
	}
	fmt.Fprintln(w)
	for _, pc := range policies {
		fmt.Fprintf(w, "%-10s", pc.name)
		for _, depth := range depths {
			fmt.Fprintf(w, " %10.0fns", measurePolicyNsPerOp(pc.factory, depth))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// measurePolicyNsPerOp times one push+pop at a steady queue depth.
func measurePolicyNsPerOp(f sched.Factory, depth int) float64 {
	q := f(1)
	ops := make([]*sched.Op, depth)
	for i := range ops {
		ops[i] = benchOp(i)
		q.Push(ops[i], time.Duration(i))
	}
	const rounds = 20000
	start := time.Now()
	for i := 0; i < rounds; i++ {
		op := q.Pop(time.Duration(i))
		q.Push(op, time.Duration(i))
	}
	elapsed := time.Since(start)
	// Drain so the measurement isn't polluted by leftover state on
	// repeated calls.
	for q.Len() > 0 {
		q.Pop(0)
	}
	return float64(elapsed.Nanoseconds()) / rounds
}

// benchOp builds a representative tagged op.
func benchOp(i int) *sched.Op {
	d := time.Duration(1+i%7) * time.Millisecond
	return &sched.Op{
		Request: sched.RequestID(i),
		Demand:  d,
		Tags: sched.Tags{
			DemandBottleneck: d * 2,
			ScaledDemand:     d,
			RemainingTime:    d * 2,
			ExpectedFinish:   time.Duration(i) * time.Microsecond,
			RequestFinish:    time.Duration(i)*time.Microsecond + d,
			Fanout:           4,
		},
	}
}
