package load

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/daskv/daskv/internal/dist"
)

func testConfig(t *testing.T, target Target, rate float64, d time.Duration) Config {
	t.Helper()
	arr, err := dist.NewPoisson(rate, nil)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	return Config{
		Target:   target,
		Arrival:  arr,
		Rate:     rate,
		Duration: d,
		Keys:     500,
		KeySkew:  0.6,
		Fanout:   dist.UniformInt{Lo: 1, Hi: 3},
		Seed:     11,
	}
}

// recordingTarget notes every request's keys in dispatch order per
// worker and serves each after a fixed delay.
type recordingTarget struct {
	delay time.Duration
	mu    sync.Mutex
	seen  map[int][][]string
}

func newRecordingTarget(delay time.Duration) *recordingTarget {
	return &recordingTarget{delay: delay, seen: make(map[int][][]string)}
}

func (r *recordingTarget) MultiGet(_ context.Context, worker int, keys []string) error {
	r.mu.Lock()
	r.seen[worker] = append(r.seen[worker], keys)
	r.mu.Unlock()
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	return nil
}

// The open-loop property: the send schedule — instants and key sets —
// is a pure function of the config, never of response latency. A fast
// and a 30x-slower target must see the identical request sequence, and
// both must match the offline Plan of the same config.
func TestScheduleIndependentOfResponseLatency(t *testing.T) {
	const rate, d = 400.0, 400 * time.Millisecond
	fast := newRecordingTarget(0)
	slow := newRecordingTarget(3 * time.Millisecond)

	cfgFast := testConfig(t, fast, rate, d)
	resFast, err := Run(cfgFast)
	if err != nil {
		t.Fatalf("Run(fast): %v", err)
	}
	cfgSlow := testConfig(t, slow, rate, d)
	cfgSlow.Workers = cfgFast.withDefaults().Workers
	resSlow, err := Run(cfgSlow)
	if err != nil {
		t.Fatalf("Run(slow): %v", err)
	}

	if resFast.ScheduledTotal != resSlow.ScheduledTotal {
		t.Fatalf("scheduled counts diverge: fast %d, slow %d — schedule depended on latency",
			resFast.ScheduledTotal, resSlow.ScheduledTotal)
	}
	if resFast.Dropped != 0 || resSlow.Dropped != 0 {
		t.Fatalf("unexpected drops (fast %d, slow %d) at this load", resFast.Dropped, resSlow.Dropped)
	}
	for w, seqFast := range fast.seen {
		seqSlow := slow.seen[w]
		if len(seqFast) != len(seqSlow) {
			t.Fatalf("worker %d request counts diverge: %d vs %d", w, len(seqFast), len(seqSlow))
		}
		for i := range seqFast {
			if len(seqFast[i]) != len(seqSlow[i]) {
				t.Fatalf("worker %d request %d fanout diverges", w, i)
			}
			for j := range seqFast[i] {
				if seqFast[i][j] != seqSlow[i][j] {
					t.Fatalf("worker %d request %d key %d diverges: %q vs %q",
						w, i, j, seqFast[i][j], seqSlow[i][j])
				}
			}
		}
	}

	// And the live runs match the offline plan.
	times, keys, err := Plan(testConfig(t, fast, rate, d), int(resFast.ScheduledTotal))
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if uint64(len(times)) != resFast.ScheduledTotal {
		t.Fatalf("plan has %d requests, runs scheduled %d", len(times), resFast.ScheduledTotal)
	}
	workers := cfgFast.withDefaults().Workers
	perWorker := make(map[int][][]string)
	for i, k := range keys {
		w := i % workers
		perWorker[w] = append(perWorker[w], k)
	}
	for w, seq := range fast.seen {
		for i := range seq {
			if len(perWorker[w]) <= i {
				t.Fatalf("worker %d served more than planned", w)
			}
			for j := range seq[i] {
				if seq[i][j] != perWorker[w][i][j] {
					t.Fatalf("worker %d request %d differs from plan", w, i)
				}
			}
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	cfg := testConfig(t, TargetFunc(func(context.Context, int, []string) error { return nil }), 1000, time.Second)
	t1, k1, err := Plan(cfg, 500)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	t2, k2, _ := Plan(cfg, 500)
	if len(t1) != 500 || len(t2) != 500 {
		t.Fatalf("plan lengths %d/%d, want 500", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("send time %d diverges: %v vs %v", i, t1[i], t2[i])
		}
		if len(k1[i]) != len(k2[i]) {
			t.Fatalf("fanout %d diverges", i)
		}
	}
	cfg.Seed = 99
	t3, _, _ := Plan(cfg, 500)
	same := 0
	for i := range t1 {
		if t1[i] == t3[i] {
			same++
		}
	}
	if same == len(t1) {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// Overload must be measured, not hidden: a single worker at 4x its
// capacity accumulates a backlog, and because latency is charged from
// the intended send instant, the tail grows far past the per-request
// service time — the coordinated-omission signal a closed loop erases.
func TestOverloadChargedToLatency(t *testing.T) {
	const service = 5 * time.Millisecond
	target := TargetFunc(func(_ context.Context, _ int, _ []string) error {
		time.Sleep(service)
		return nil
	})
	arr, _ := dist.NewFixedRate(800) // 4x one worker's ~200/s capacity
	cfg := Config{
		Target:     target,
		Arrival:    arr,
		Rate:       800,
		Duration:   400 * time.Millisecond,
		Workers:    1,
		QueueDepth: 4096,
		Keys:       100,
		Fanout:     dist.ConstInt{N: 1},
		Seed:       5,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Latency.Max < 10*service {
		t.Fatalf("overload latency max %v, want >> service %v (backlog not charged)", res.Latency.Max, service)
	}
	if res.Lateness.P99 < 2*service {
		t.Fatalf("lateness p99 %v under overload, want queueing visible", res.Lateness.P99)
	}
	if res.Latency.P999 < res.Latency.P50 {
		t.Fatalf("p999 %v < p50 %v", res.Latency.P999, res.Latency.P50)
	}
}

func TestRunSmokeFastTarget(t *testing.T) {
	target := TargetFunc(func(context.Context, int, []string) error { return nil })
	cfg := testConfig(t, target, 2000, 300*time.Millisecond)
	cfg.Warmup = 50 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Sent == 0 || res.Completed != res.Sent {
		t.Fatalf("sent %d completed %d", res.Sent, res.Completed)
	}
	if res.Errors != 0 || res.Dropped != 0 {
		t.Fatalf("errors %d dropped %d on an instant target", res.Errors, res.Dropped)
	}
	if res.AchievedRPS < 0.5*res.OfferedRPS {
		t.Fatalf("achieved %.0f of offered %.0f on an instant target", res.AchievedRPS, res.OfferedRPS)
	}
	if res.Latency.Count != res.Completed {
		t.Fatalf("latency count %d != completed %d", res.Latency.Count, res.Completed)
	}
}

// A full worker queue sheds the request rather than blocking the
// schedule: drops are counted, the schedule length is unchanged.
func TestFullQueueDropsNotBlocks(t *testing.T) {
	block := make(chan struct{})
	target := TargetFunc(func(context.Context, int, []string) error {
		<-block
		return nil
	})
	arr, _ := dist.NewFixedRate(500)
	cfg := Config{
		Target:     target,
		Arrival:    arr,
		Rate:       500,
		Duration:   200 * time.Millisecond,
		Workers:    1,
		QueueDepth: 1,
		Timeout:    time.Second,
		Keys:       10,
		Fanout:     dist.ConstInt{N: 1},
		Seed:       3,
	}
	done := make(chan struct{})
	var res Result
	var err error
	go func() {
		res, err = Run(cfg)
		close(done)
	}()
	time.Sleep(300 * time.Millisecond)
	close(block)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run blocked on a stuck target")
	}
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Dropped == 0 {
		t.Fatalf("no drops despite a stuck worker (scheduled %d)", res.ScheduledTotal)
	}
	if res.ScheduledTotal < 80 {
		t.Fatalf("schedule stalled: only %d scheduled", res.ScheduledTotal)
	}
}

func TestConfigValidation(t *testing.T) {
	arr, _ := dist.NewFixedRate(10)
	base := Config{
		Target:   TargetFunc(func(context.Context, int, []string) error { return nil }),
		Arrival:  arr,
		Duration: time.Second,
		Keys:     10,
		Fanout:   dist.ConstInt{N: 1},
	}
	for name, mut := range map[string]func(*Config){
		"no target":   func(c *Config) { c.Target = nil },
		"no arrival":  func(c *Config) { c.Arrival = nil },
		"no duration": func(c *Config) { c.Duration = 0 },
		"no keys":     func(c *Config) { c.Keys = 0 },
		"no fanout":   func(c *Config) { c.Fanout = nil },
	} {
		c := base
		mut(&c)
		if _, err := Run(c); err == nil {
			t.Fatalf("%s: Run should error", name)
		}
	}
}
