package load

import (
	"fmt"
	"io"
	"time"

	"github.com/daskv/daskv/internal/dist"
)

// ArrivalFactory builds an arrival process at a given mean rate; sweep
// points rebuild the process per offered-rate step.
type ArrivalFactory func(rate float64) (dist.Arrival, error)

// SweepConfig drives a latency-vs-throughput frontier: one open-loop
// run per offered rate, each on a freshly booted cluster so no queue
// residue leaks between points.
type SweepConfig struct {
	// Rates are the offered request rates to step through, ascending.
	Rates []float64
	// Arrival builds the process per rate (Poisson when nil).
	Arrival ArrivalFactory
	// Duration/Warmup/Workers/QueueDepth/Timeout as in Config.
	Duration   time.Duration
	Warmup     time.Duration
	Workers    int
	QueueDepth int
	Timeout    time.Duration
	// Clients is the kv connection-pool width per point (default 8).
	Clients int
	// P99Budget is the saturation criterion: a point whose p99 exceeds
	// it is unsustainable (default 5ms).
	P99Budget time.Duration
	// MaxErrorFraction bounds (errors+drops)/sent for a sustainable
	// point (default 0.01).
	MaxErrorFraction float64
	// MaxLatenessP99 bounds the harness dispatch lateness for a point
	// to count — above it the harness, not the server, was the
	// bottleneck and the point is reported but not trusted as
	// sustainable (default 50ms).
	MaxLatenessP99 time.Duration
	// KeepGoing runs every rate even after an unsustainable point
	// (default: stop after the first, the frontier edge is found).
	KeepGoing bool
	// Seed pins schedules; every point and policy reuses it so curves
	// are compared on identical arrival sequences.
	Seed uint64
	// Log, when set, receives one progress line per point.
	Log io.Writer
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Arrival == nil {
		c.Arrival = func(rate float64) (dist.Arrival, error) { return dist.NewPoisson(rate, nil) }
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Duration / 5
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.P99Budget <= 0 {
		c.P99Budget = 5 * time.Millisecond
	}
	if c.MaxErrorFraction <= 0 {
		c.MaxErrorFraction = 0.01
	}
	if c.MaxLatenessP99 <= 0 {
		c.MaxLatenessP99 = 50 * time.Millisecond
	}
	return c
}

// FrontierPoint is one (offered rate, latency) sample of a frontier
// curve, JSON-shaped for the committed BENCH_frontier.json.
type FrontierPoint struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Sent        uint64  `json:"sent"`
	Completed   uint64  `json:"completed"`
	Errors      uint64  `json:"errors"`
	Dropped     uint64  `json:"dropped"`
	MeanMs      float64 `json:"mean_ms"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
	MaxMs       float64 `json:"max_ms"`
	// LatenessP99Ms is the harness dispatch-lateness tail: how far
	// behind its own schedule the generator sent (coordinated-omission
	// accounting, not server latency).
	LatenessP99Ms float64 `json:"lateness_p99_ms"`
	// Sustainable marks the point inside every budget (p99, errors,
	// lateness).
	Sustainable bool `json:"sustainable"`
	// WAL carries the cluster-aggregate disk economics of the point on
	// durable scenarios (absent otherwise). Under coalesce the headline
	// is DiskBytesPerOp alongside CoalescedRecords/CoalescedOps — disk
	// work tracking distinct keys rather than operations.
	WAL *WALPoint `json:"wal,omitempty"`
}

// WALPoint is the per-point durability summary of a frontier sample.
type WALPoint struct {
	Policy           string  `json:"policy"`
	Bytes            int64   `json:"bytes"`
	Records          uint64  `json:"records"`
	Fsyncs           uint64  `json:"fsyncs"`
	CoalescedOps     uint64  `json:"coalesced_ops,omitempty"`
	CoalescedRecords uint64  `json:"coalesced_records,omitempty"`
	CoalesceWindows  uint64  `json:"coalesce_windows,omitempty"`
	DiskBytesPerOp   float64 `json:"disk_bytes_per_op,omitempty"`
	// FoldRatio is coalesced_records/coalesced_ops — the fraction of
	// mutations that survived folding to reach the disk (1.0 = no
	// coalescing benefit, lower is better).
	FoldRatio float64 `json:"fold_ratio,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func pointFrom(r Result, sustainable bool) FrontierPoint {
	return FrontierPoint{
		OfferedRPS:    r.OfferedRPS,
		AchievedRPS:   r.AchievedRPS,
		Sent:          r.Sent,
		Completed:     r.Completed,
		Errors:        r.Errors,
		Dropped:       r.Dropped,
		MeanMs:        ms(r.Latency.Mean),
		P50Ms:         ms(r.Latency.P50),
		P90Ms:         ms(r.Latency.P90),
		P99Ms:         ms(r.Latency.P99),
		P999Ms:        ms(r.Latency.P999),
		MaxMs:         ms(r.Latency.Max),
		LatenessP99Ms: ms(r.Lateness.P99),
		Sustainable:   sustainable,
	}
}

// Frontier is one policy's latency-vs-throughput curve.
type Frontier struct {
	Policy string `json:"policy"`
	// SustainableRPS is the highest achieved throughput among
	// sustainable points — "max throughput at p99 < budget", the number
	// the CI gate thresholds.
	SustainableRPS float64         `json:"sustainable_rps"`
	Points         []FrontierPoint `json:"points"`
}

// sustainable applies the sweep's budgets to one run.
func (c SweepConfig) sustainable(r Result) bool {
	if r.Sent == 0 {
		return false
	}
	bad := float64(r.Errors+r.Dropped) / float64(r.Sent+r.Dropped)
	return r.Latency.P99 <= c.P99Budget &&
		bad <= c.MaxErrorFraction &&
		r.Lateness.P99 <= c.MaxLatenessP99
}

// RunSweep draws one policy's frontier over a scenario: for each
// offered rate it boots a fresh cluster, runs the open-loop harness,
// and applies the sustainability budgets. It stops stepping after the
// first unsustainable point unless KeepGoing is set.
func RunSweep(sc Scenario, pol PolicySpec, cfg SweepConfig) (Frontier, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Rates) == 0 {
		return Frontier{}, fmt.Errorf("load: sweep needs at least one rate")
	}
	sc = sc.withDefaults()
	f := Frontier{Policy: pol.Name}
	for _, rate := range cfg.Rates {
		arr, err := cfg.Arrival(rate)
		if err != nil {
			return f, fmt.Errorf("load: arrival at %.0f/s: %w", rate, err)
		}
		cluster, err := sc.Boot(pol, cfg.Clients, cfg.Seed)
		if err != nil {
			return f, err
		}
		stopFaults := cluster.StartFaults()
		res, err := Run(Config{
			Target:     cluster.Target(),
			Arrival:    arr,
			Rate:       rate,
			Duration:   cfg.Duration,
			Warmup:     cfg.Warmup,
			Workers:    cfg.Workers,
			QueueDepth: cfg.QueueDepth,
			Timeout:    cfg.Timeout,
			Keys:       sc.Keys,
			KeySkew:    sc.KeySkew,
			Fanout:     sc.Fanout,
			Seed:       cfg.Seed,
		})
		stopFaults()
		ws := cluster.WALStats()
		cerr := cluster.Close()
		if err != nil {
			return f, err
		}
		if cerr != nil {
			return f, cerr
		}
		ok := cfg.sustainable(res)
		if ok && res.AchievedRPS > f.SustainableRPS {
			f.SustainableRPS = res.AchievedRPS
		}
		pt := pointFrom(res, ok)
		if ws != nil {
			wp := &WALPoint{
				Policy: ws.Policy, Bytes: ws.Bytes, Records: ws.Appended,
				Fsyncs:           ws.Fsyncs,
				CoalescedOps:     ws.CoalescedOps,
				CoalescedRecords: ws.CoalescedRecords,
				CoalesceWindows:  ws.CoalesceWindows,
			}
			// Per-op ratios over the mutations the log actually saw
			// (appended covers preload too; on increment scenarios it is
			// the op count itself).
			if ws.Appended > 0 {
				wp.DiskBytesPerOp = float64(ws.Bytes) / float64(ws.Appended)
			}
			if ws.CoalescedOps > 0 {
				wp.FoldRatio = float64(ws.CoalescedRecords) / float64(ws.CoalescedOps)
				wp.DiskBytesPerOp = float64(ws.Bytes) / float64(ws.CoalescedOps)
			}
			pt.WAL = wp
		}
		f.Points = append(f.Points, pt)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log,
				"%-10s %8.0f req/s offered: %8.0f achieved, p50 %6.2fms p99 %7.2fms p999 %7.2fms lateness-p99 %6.2fms errs %d drops %d %s\n",
				pol.Name, rate, res.AchievedRPS, ms(res.Latency.P50), ms(res.Latency.P99),
				ms(res.Latency.P999), ms(res.Lateness.P99), res.Errors, res.Dropped,
				map[bool]string{true: "ok", false: "SATURATED"}[ok])
		}
		if !ok && !cfg.KeepGoing {
			break
		}
	}
	return f, nil
}
