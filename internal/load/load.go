// Package load is the open-loop load harness: it schedules multiget
// send times from an arrival process *independently of response
// arrival*, fires them across a pool of concurrent executors, and
// records intended-start-to-completion latency so coordinated omission
// is measured instead of hidden.
//
// The contrast with a closed-loop driver (internal/bench's live runs,
// kvctl bench) is the whole point: a closed loop sends the next request
// only after the previous response, so a server stall stops the
// question from being asked and the stall never shows in the numbers.
// Here the schedule is fixed up front by (arrival process, seed); when
// the system falls behind, requests queue at the harness, and the time
// they spend queued is charged to their latency. See
// docs/BENCHMARKING.md for the methodology.
package load

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"github.com/daskv/daskv/internal/dist"
	"github.com/daskv/daskv/internal/metrics"
	"github.com/daskv/daskv/internal/workload"
)

// Target executes one multiget against the system under test. worker
// identifies the executor slot (0..Workers-1) so pooled targets can pin
// each slot to one connection. Implementations must be safe for
// concurrent use by distinct workers.
type Target interface {
	MultiGet(ctx context.Context, worker int, keys []string) error
}

// TargetFunc adapts a function to Target.
type TargetFunc func(ctx context.Context, worker int, keys []string) error

// MultiGet implements Target.
func (f TargetFunc) MultiGet(ctx context.Context, worker int, keys []string) error {
	return f(ctx, worker, keys)
}

// Config describes one open-loop run at a fixed offered load.
type Config struct {
	// Target is the system under test.
	Target Target
	// Arrival schedules request send instants (required). Build it at
	// the offered rate — the harness never rescales it.
	Arrival dist.Arrival
	// Rate is the offered request rate the Arrival was built for,
	// recorded in results.
	Rate float64
	// Duration is the measured window; the schedule stops at
	// Warmup+Duration and in-flight requests are drained.
	Duration time.Duration
	// Warmup is the schedule prefix excluded from statistics.
	Warmup time.Duration
	// Workers is the executor pool size (default 64): the maximum
	// number of requests in service at the harness at once. More
	// workers stress server-side connection scaling; too few make the
	// harness itself the bottleneck (which the lateness readout
	// exposes).
	Workers int
	// QueueDepth is each worker's pending-request buffer (default 128).
	// When a worker's queue is full the request is counted as dropped —
	// the harness never blocks the schedule on a slow responder.
	QueueDepth int
	// Keys is the keyspace size; requests draw keys
	// workload.KeyName-style from [0, Keys).
	Keys int
	// KeySkew is the Zipf exponent of key popularity (0 = uniform).
	KeySkew float64
	// Fanout draws the number of distinct keys per multiget.
	Fanout dist.Discrete
	// Timeout bounds each request (default 10s); a timed-out request
	// counts as an error.
	Timeout time.Duration
	// Seed fixes the schedule and key sequence.
	Seed uint64
	// MaxTracked bounds the latency histograms (default 30s).
	MaxTracked time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxTracked <= 0 {
		c.MaxTracked = 30 * time.Second
	}
	return c
}

func (c Config) validate() error {
	if c.Target == nil {
		return fmt.Errorf("load: target required")
	}
	if c.Arrival == nil {
		return fmt.Errorf("load: arrival process required")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("load: duration %v must be positive", c.Duration)
	}
	if c.Keys <= 0 {
		return fmt.Errorf("load: keyspace size %d must be positive", c.Keys)
	}
	if c.Fanout == nil {
		return fmt.Errorf("load: fanout distribution required")
	}
	return nil
}

// LatencyStats is the HDR-style readout of one latency distribution.
type LatencyStats struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
	// Max is the exact largest observation (not bucket-rounded).
	Max time.Duration
}

func statsFrom(h *metrics.Histogram) LatencyStats {
	return LatencyStats{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// Result is one run's outcome.
type Result struct {
	// OfferedRPS is the configured offered rate.
	OfferedRPS float64
	// AchievedRPS is completed measured requests over the measured
	// window — at overload it caps at the system's capacity while
	// latency diverges.
	AchievedRPS float64
	// Sent counts requests handed to workers in the measured window;
	// Completed the subset that returned success; Errors failures
	// (including timeouts); Dropped requests abandoned because their
	// worker's queue was full (sustained overload).
	Sent, Completed, Errors, Dropped uint64
	// Latency is intended-send to completion — the open-loop response
	// time including any wait in the harness queue.
	Latency LatencyStats
	// Lateness is actual-send minus intended-send: how far behind
	// schedule the harness dispatched. A growing lateness tail means
	// the measured latency is dominated by harness queueing, i.e. the
	// system (or the worker pool) is saturated — exactly the signal a
	// closed-loop driver erases.
	Lateness LatencyStats
	// ScheduledTotal counts all scheduled sends including warmup.
	ScheduledTotal uint64
	// Elapsed is the wall-clock run time including warmup and drain.
	Elapsed time.Duration
}

// item is one scheduled request: the intended send offset and the keys,
// both fixed by the planner before dispatch.
type item struct {
	intended time.Duration
	keys     []string
}

// Plan materializes the first n scheduled requests of cfg: their
// intended send offsets and key sets. It consumes no wall clock and
// touches no Target — the same code path the runner's planner uses,
// exposed so tests can prove the schedule is a pure function of the
// config (open-loop property: send times cannot depend on response
// latency, because they exist before any request is sent).
func Plan(cfg Config, n int) ([]time.Duration, [][]string, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	p, err := newPlanner(cfg)
	if err != nil {
		return nil, nil, err
	}
	times := make([]time.Duration, 0, n)
	keys := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		it, ok := p.next(1 << 62)
		if !ok {
			break
		}
		times = append(times, it.intended)
		keys = append(keys, it.keys)
	}
	return times, keys, nil
}

// planner generates the deterministic request schedule: arrival
// instants from the arrival process, key sets from the Zipf/fanout
// distributions — one rng drives both, so a seed pins the whole
// schedule. It reads nothing from the data path.
type planner struct {
	cfg  Config
	rng  *rand.Rand
	zipf *dist.Zipf
	last time.Duration
}

func newPlanner(cfg Config) (*planner, error) {
	z, err := dist.NewZipf(cfg.Keys, cfg.KeySkew)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	return &planner{
		cfg:  cfg,
		rng:  dist.NewRand(cfg.Seed),
		zipf: z,
	}, nil
}

// next returns the next scheduled request, or ok=false once the
// schedule passes horizon.
func (p *planner) next(horizon time.Duration) (item, bool) {
	t := p.cfg.Arrival.Next(p.last, p.rng)
	if t > horizon {
		return item{}, false
	}
	p.last = t
	k := p.cfg.Fanout.Sample(p.rng)
	if k < 1 {
		k = 1
	}
	if k > p.cfg.Keys {
		k = p.cfg.Keys
	}
	keys := make([]string, k)
	for i := range keys {
		keys[i] = workload.KeyName(p.zipf.Sample(p.rng))
	}
	return item{intended: t, keys: keys}, true
}

// Run drives one open-loop load run: the planner goroutine walks the
// schedule in real time, dispatching each request to its worker's
// queue at (or as soon as possible after) its intended instant; workers
// execute against the target and record intended-start-based latency.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	p, err := newPlanner(cfg)
	if err != nil {
		return Result{}, err
	}

	type workerState struct {
		ch       chan item
		latency  *metrics.Histogram
		lateness *metrics.Histogram
		sent     uint64
		complete uint64
		errors   uint64
	}
	workers := make([]*workerState, cfg.Workers)
	newHist := func() *metrics.Histogram {
		return metrics.NewHistogram(10*time.Microsecond, cfg.MaxTracked, 16)
	}
	for i := range workers {
		workers[i] = &workerState{
			ch:       make(chan item, cfg.QueueDepth),
			latency:  newHist(),
			lateness: newHist(),
		}
	}

	horizon := cfg.Warmup + cfg.Duration
	start := time.Now()
	since := func() time.Duration { return time.Since(start) }

	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(worker int, w *workerState) {
			defer wg.Done()
			for it := range w.ch {
				sendAt := since()
				ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
				err := cfg.Target.MultiGet(ctx, worker, it.keys)
				cancel()
				done := since()
				if it.intended < cfg.Warmup {
					continue
				}
				w.sent++
				lat := done - it.intended
				late := sendAt - it.intended
				if late < 0 {
					late = 0
				}
				if err != nil {
					w.errors++
				} else {
					w.complete++
					w.latency.Observe(lat)
				}
				w.lateness.Observe(late)
			}
		}(i, w)
	}

	// The planner/dispatcher: sleep until each intended instant, then
	// hand the request to its worker without ever blocking on one — a
	// full worker queue drops the request on the floor and counts it.
	var scheduled, droppedWarm, droppedMeasured uint64
	next := 0
	for {
		it, ok := p.next(horizon)
		if !ok {
			break
		}
		scheduled++
		if ahead := it.intended - since(); ahead > 0 {
			time.Sleep(ahead)
		}
		w := workers[next]
		next = (next + 1) % cfg.Workers
		select {
		case w.ch <- it:
		default:
			if it.intended < cfg.Warmup {
				droppedWarm++
			} else {
				droppedMeasured++
			}
		}
	}
	for _, w := range workers {
		close(w.ch)
	}
	wg.Wait()

	latency, lateness := newHist(), newHist()
	res := Result{
		OfferedRPS:     cfg.Rate,
		Dropped:        droppedMeasured,
		ScheduledTotal: scheduled,
		Elapsed:        since(),
	}
	for _, w := range workers {
		latency.Merge(w.latency)
		lateness.Merge(w.lateness)
		res.Sent += w.sent
		res.Completed += w.complete
		res.Errors += w.errors
	}
	res.Latency = statsFrom(latency)
	res.Lateness = statsFrom(lateness)
	res.AchievedRPS = float64(res.Completed) / cfg.Duration.Seconds()
	return res, nil
}
